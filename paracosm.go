// Package paracosm is a from-scratch Go reproduction of "ParaCOSM: A
// Parallel Framework for Continuous Subgraph Matching" (ICPP 2025).
//
// This file is the public facade of the library: everything a downstream
// user needs to run continuous subgraph matching — building data graphs,
// queries and update streams, picking one of the five bundled CSM
// algorithms, and executing it under the ParaCOSM two-level parallel
// framework — re-exported from the internal packages in one import. The
// implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the CLI tools, examples/ runnable programs, and
// bench_test.go regenerates every table and figure of the paper.
//
//	g := paracosm.NewGraph(0)
//	a := g.AddVertex(1)
//	b := g.AddVertex(2)
//	q := paracosm.MustNewQuery([]paracosm.Label{1, 2})
//	q.MustAddEdge(0, 1, 0)
//	_ = q.Finalize()
//	eng := paracosm.New(paracosm.Symbi(), paracosm.Threads(8))
//	_ = eng.Init(g, q)
//	eng.ProcessUpdate(ctx, paracosm.AddEdge(a, b, 0))
package paracosm

import (
	"paracosm/internal/algo/calig"
	"paracosm/internal/algo/graphflow"
	"paracosm/internal/algo/incisomatch"
	"paracosm/internal/algo/newsp"
	"paracosm/internal/algo/sjtree"
	"paracosm/internal/algo/symbi"
	"paracosm/internal/algo/turboflux"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/dataset"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Core graph types.
type (
	// Graph is the dynamic labeled data graph G.
	Graph = graph.Graph
	// VertexID identifies a data vertex.
	VertexID = graph.VertexID
	// Label is a vertex or edge label.
	Label = graph.Label
	// Query is the query graph Q.
	Query = query.Graph
	// QueryVertexID identifies a query vertex.
	QueryVertexID = query.VertexID
	// Update is one element of the update stream ΔG.
	Update = stream.Update
	// Stream is an ordered update sequence.
	Stream = stream.Stream
)

// NoVertex is the "unmatched" sentinel in partial embeddings.
const NoVertex = graph.NoVertex

// MaxQueryVertices is the largest supported query size.
const MaxQueryVertices = query.MaxVertices

// NewGraph returns an empty data graph with capacity for n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewQuery creates a query graph with the given vertex labels; add edges
// with AddEdge and call Finalize before use.
func NewQuery(labels []Label) (*Query, error) { return query.New(labels) }

// MustNewQuery is NewQuery for known-good input.
func MustNewQuery(labels []Label) *Query { return query.MustNew(labels) }

// AddEdge builds an edge-insertion update.
func AddEdge(u, v VertexID, l Label) Update {
	return Update{Op: stream.AddEdge, U: u, V: v, ELabel: l}
}

// DeleteEdge builds an edge-deletion update.
func DeleteEdge(u, v VertexID) Update {
	return Update{Op: stream.DeleteEdge, U: u, V: v}
}

// AddVertex builds a vertex-insertion update.
func AddVertex(l Label) Update { return Update{Op: stream.AddVertex, VLabel: l} }

// DeleteVertex builds an (isolated) vertex-deletion update.
func DeleteVertex(v VertexID) Update { return Update{Op: stream.DeleteVertex, U: v} }

// Framework types.
type (
	// Engine is a ParaCOSM instance wrapping one CSM algorithm.
	Engine = core.Engine
	// Option configures an Engine.
	Option = core.Option
	// Config is the engine's effective configuration.
	Config = core.Config
	// Stats is accumulated run instrumentation.
	Stats = core.Stats
	// Algorithm is the pluggable CSM algorithm interface: the traversal
	// routine (Roots/Expand/Terminal) plus the filtering rule
	// (AffectsADS) the paper asks the user to supply.
	Algorithm = csm.Algorithm
	// State is a partial embedding (a search-tree node).
	State = csm.State
	// MatchFunc observes reported matches.
	MatchFunc = csm.MatchFunc
	// Delta is the incremental result of one update.
	Delta = csm.Delta
)

// ErrDeadline is returned when a processing budget expires mid-search.
var ErrDeadline = csm.ErrDeadline

// New creates a ParaCOSM engine around any Algorithm. Call Close when
// the engine is no longer needed to release its persistent worker pool
// (the pool starts lazily on the first parallel escalation, so engines
// that never escalate hold no goroutines).
func New(a Algorithm, opts ...Option) *Engine { return core.New(a, opts...) }

// Engine options (see core.Config for semantics).
var (
	// Threads sets the worker pool size.
	Threads = core.Threads
	// BatchSize sets the inter-update batch size k.
	BatchSize = core.BatchSize
	// SplitDepth sets SPLIT_DEPTH for adaptive task splitting.
	SplitDepth = core.SplitDepth
	// EscalateNodes sets the sequential budget before parallel escalation.
	EscalateNodes = core.EscalateNodes
	// LoadBalance toggles adaptive re-splitting.
	LoadBalance = core.LoadBalance
	// InterUpdate toggles the safe/unsafe batch executor.
	InterUpdate = core.InterUpdate
	// Simulate toggles execution-driven schedule simulation.
	Simulate = core.Simulate
)

// The five CSM baselines of the paper, ready to wrap.

// GraphFlow returns the index-free baseline (Kankanamge et al.).
func GraphFlow() Algorithm { return graphflow.New() }

// TurboFlux returns the DCG-indexed baseline (Kim et al.).
func TurboFlux() Algorithm { return turboflux.New() }

// Symbi returns the DCS-indexed baseline (Min et al.).
func Symbi() Algorithm { return symbi.New() }

// NewSP returns the CPT/EXP-decoupled baseline (Li et al.).
func NewSP() Algorithm { return newsp.New() }

// CaLiG returns the LiG kernel/shell baseline (Yang et al.) in full
// enumeration mode; CaLiGCounting returns its combinatorial counting mode.
func CaLiG() Algorithm { return calig.New() }

// CaLiGCounting returns CaLiG with turbo-boosted shell counting.
func CaLiGCounting() Algorithm { return calig.New(calig.Counting()) }

// IncIsoMatch returns the recomputation baseline (Fan et al.) — useful
// only as a lower bound; see the "recompute" experiment.
func IncIsoMatch() Algorithm { return incisomatch.New() }

// SJTree returns the join-based baseline (Choudhury et al.): materialized
// partial-match tables with delta joins. Fast per update, but its table
// memory grows as O(|E(G)|^|E(Q)|) (Table 1), so use it for small queries
// over moderate graphs only.
func SJTree() Algorithm { return sjtree.New() }

// MultiEngine runs many continuous queries over one stream, adding
// query-level parallelism on top of ParaCOSM's two levels.
type MultiEngine = core.MultiEngine

// NewMulti creates an empty multi-query engine. Call Close when done to
// release the per-query engines' worker pools.
func NewMulti(opts ...Option) *MultiEngine { return core.NewMulti(opts...) }

// Dataset synthesis (stand-ins for the paper's evaluation datasets).
type (
	// Dataset is a synthesized data graph plus insertion stream.
	Dataset = dataset.Dataset
	// DatasetSpec is a dataset's Table 5 metadata.
	DatasetSpec = dataset.Spec
	// DatasetOption configures synthesis.
	DatasetOption = dataset.Option
)

// Dataset constructors and options.
var (
	// AmazonLike synthesizes the Amazon co-purchase stand-in.
	AmazonLike = dataset.AmazonLike
	// LiveJournalLike synthesizes the LiveJournal stand-in.
	LiveJournalLike = dataset.LiveJournalLike
	// LSBenchLike synthesizes the LSBench stand-in.
	LSBenchLike = dataset.LSBenchLike
	// OrkutLike synthesizes the Orkut stand-in.
	OrkutLike = dataset.OrkutLike
	// CustomDataset synthesizes a dataset from arbitrary metadata.
	CustomDataset = dataset.Custom
	// DatasetScale multiplies the spec's vertex/edge counts.
	DatasetScale = dataset.Scale
	// DatasetSeed fixes the generation seed.
	DatasetSeed = dataset.Seed
)
