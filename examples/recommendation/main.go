// Real-time recommendation: online motif detection in a dynamic social
// graph, the Twitter-style use case the ParaCOSM paper cites (Gupta et
// al., VLDB'14).
//
// The data graph holds users and interest topics. The motif is a
// "recommendation wedge": user A follows user B and user C, who both
// follow topic T that A does not yet follow — when a new follow edge
// completes this pattern, T is a strong recommendation candidate for A.
// ParaCOSM (GraphFlow under the hood, since the motif is small and the
// stream fast) surfaces every completed wedge as it happens; the example
// aggregates them into per-user recommendation counts.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"paracosm/internal/algo/graphflow"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

const (
	user  = 0
	topic = 1
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 400 users, 50 topics, preferential topic popularity.
	g := graph.New(450)
	var users, topics []graph.VertexID
	for i := 0; i < 400; i++ {
		users = append(users, g.AddVertex(user))
	}
	for i := 0; i < 50; i++ {
		topics = append(topics, g.AddVertex(topic))
	}
	// Historical follows: user-user friendships and user-topic interests
	// with Zipf-ish topic popularity.
	pickTopic := func() graph.VertexID {
		return topics[int(float64(len(topics))*rng.Float64()*rng.Float64())]
	}
	for i := 0; i < 900; i++ {
		g.AddEdge(users[rng.Intn(len(users))], users[rng.Intn(len(users))], 0)
	}
	for i := 0; i < 800; i++ {
		g.AddEdge(users[rng.Intn(len(users))], pickTopic(), 0)
	}

	// Recommendation wedge: A follows B and C; B and C follow topic T.
	//
	//	     A(user)
	//	    /       \
	//	B(user)   C(user)
	//	    \       /
	//	     T(topic)
	q := query.MustNew([]graph.Label{user, user, user, topic})
	q.MustAddEdge(0, 1, 0) // A - B
	q.MustAddEdge(0, 2, 0) // A - C
	q.MustAddEdge(1, 3, 0) // B - T
	q.MustAddEdge(2, 3, 0) // C - T
	if err := q.Finalize(); err != nil {
		log.Fatal(err)
	}

	recs := map[graph.VertexID]map[graph.VertexID]int{} // user -> topic -> strength
	eng := core.New(graphflow.New(), core.Threads(4))
	eng.OnMatch = func(s *csm.State, count uint64, positive bool) {
		a, t := s.Map[0], s.Map[3]
		if g.HasEdge(a, t) {
			return // A already follows T; nothing to recommend
		}
		if recs[a] == nil {
			recs[a] = map[graph.VertexID]int{}
		}
		if positive {
			recs[a][t]++
		} else {
			recs[a][t]-- // wedge expired (unfollow)
		}
	}
	if err := eng.Init(g, q); err != nil {
		log.Fatal(err)
	}

	// Live follow/unfollow stream.
	sim := g.Clone()
	var events stream.Stream
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.9 {
			var u, v graph.VertexID
			u = users[rng.Intn(len(users))]
			if rng.Float64() < 0.5 {
				v = users[rng.Intn(len(users))]
			} else {
				v = pickTopic()
			}
			if u != v && !sim.HasEdge(u, v) {
				sim.AddEdge(u, v, 0)
				events = append(events, stream.Update{Op: stream.AddEdge, U: u, V: v})
			}
		} else {
			// Unfollow a random existing edge.
			u := users[rng.Intn(len(users))]
			ns := sim.Neighbors(u)
			if len(ns) > 0 {
				v := ns[rng.Intn(len(ns))].ID
				sim.RemoveEdge(u, v)
				events = append(events, stream.Update{Op: stream.DeleteEdge, U: u, V: v})
			}
		}
	}

	if _, err := eng.Run(context.Background(), events); err != nil {
		log.Fatal(err)
	}

	// Rank users by their strongest live recommendation.
	type rec struct {
		user, topic graph.VertexID
		strength    int
	}
	var best []rec
	for a, ts := range recs {
		for t, s := range ts {
			if s > 0 {
				best = append(best, rec{a, t, s})
			}
		}
	}
	sort.Slice(best, func(i, j int) bool {
		if best[i].strength != best[j].strength {
			return best[i].strength > best[j].strength
		}
		if best[i].user != best[j].user {
			return best[i].user < best[j].user
		}
		return best[i].topic < best[j].topic
	})
	st := eng.Stats()
	fmt.Printf("processed %d follow events: %d wedges formed, %d expired\n",
		st.Updates, st.Positive, st.Negative)
	fmt.Printf("live recommendations for %d users; top 5:\n", len(recs))
	for i, r := range best {
		if i == 5 {
			break
		}
		fmt.Printf("  recommend topic %d to user %d (strength %d)\n", r.topic, r.user, r.strength)
	}
}
