// Multi-query monitoring: several continuous patterns watched over one
// update stream — the workload shape of production CSM deployments (a
// risk-control system runs hundreds of rules at once). MultiEngine adds
// query-level parallelism on top of ParaCOSM's inner- and inter-update
// levels: each registered query gets its own engine and runs concurrently.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"paracosm"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Shared data graph: a small social/commerce network.
	// Labels: 0 = user, 1 = shop, 2 = item.
	g := paracosm.NewGraph(700)
	var users, shops, items []paracosm.VertexID
	for i := 0; i < 500; i++ {
		users = append(users, g.AddVertex(0))
	}
	for i := 0; i < 80; i++ {
		shops = append(shops, g.AddVertex(1))
	}
	for i := 0; i < 120; i++ {
		items = append(items, g.AddVertex(2))
	}
	for i := 0; i < 1500; i++ {
		g.AddEdge(users[rng.Intn(len(users))], users[rng.Intn(len(users))], 0)
	}
	for i := 0; i < 600; i++ {
		g.AddEdge(users[rng.Intn(len(users))], shops[rng.Intn(len(shops))], 0)
	}
	for i := 0; i < 500; i++ {
		g.AddEdge(shops[rng.Intn(len(shops))], items[rng.Intn(len(items))], 0)
	}

	// Three continuously monitored patterns.
	mkQuery := func(labels []paracosm.Label, edges [][2]uint8) *paracosm.Query {
		q := paracosm.MustNewQuery(labels)
		for _, e := range edges {
			q.MustAddEdge(e[0], e[1], 0)
		}
		if err := q.Finalize(); err != nil {
			log.Fatal(err)
		}
		return q
	}
	// friend-triangle: three mutually connected users.
	triangle := mkQuery([]paracosm.Label{0, 0, 0}, [][2]uint8{{0, 1}, {1, 2}, {2, 0}})
	// co-shopping square: two friends who both buy at the same two shops.
	square := mkQuery([]paracosm.Label{0, 0, 1, 1}, [][2]uint8{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}})
	// supply wedge: two shops selling the same item, visited by one user.
	wedge := mkQuery([]paracosm.Label{0, 1, 1, 2}, [][2]uint8{{0, 1}, {0, 2}, {1, 3}, {2, 3}})

	m := paracosm.NewMulti(paracosm.Threads(4), paracosm.BatchSize(16))
	defer m.Close()
	m.Register("friend-triangle", paracosm.Symbi(), triangle)
	m.Register("co-shopping-square", paracosm.TurboFlux(), square)
	m.Register("supply-wedge", paracosm.GraphFlow(), wedge)
	if err := m.Init(g); err != nil {
		log.Fatal(err)
	}

	// One shared event stream.
	sim := g.Clone()
	var events paracosm.Stream
	for i := 0; i < 2500; i++ {
		var u, v paracosm.VertexID
		switch rng.Intn(3) {
		case 0:
			u, v = users[rng.Intn(len(users))], users[rng.Intn(len(users))]
		case 1:
			u, v = users[rng.Intn(len(users))], shops[rng.Intn(len(shops))]
		default:
			u, v = shops[rng.Intn(len(shops))], items[rng.Intn(len(items))]
		}
		if u != v && !sim.HasEdge(u, v) {
			sim.AddEdge(u, v, 0)
			events = append(events, paracosm.AddEdge(u, v, 0))
		}
	}

	if err := m.Run(context.Background(), events); err != nil {
		log.Fatal(err)
	}

	stats := m.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("monitored %d patterns over %d shared events:\n", len(stats), len(events))
	for _, n := range names {
		st := stats[n]
		fmt.Printf("  %-20s +%7d matches  (%5.1f%% safe updates, %8d search nodes)\n",
			n, st.Positive, 100*st.SafeRatio(), st.Nodes)
	}
}
