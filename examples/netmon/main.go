// Network security monitoring: continuous detection of lateral-movement
// chains in a connection graph — the graph-based botnet/intrusion
// detection application the ParaCOSM paper cites (Lagraa et al., 2024).
//
// Hosts are labeled external / workstation / server; edges are observed
// connections labeled by protocol. The query is a lateral-movement chain:
// an external host reaches a workstation over remote-access, which fans
// out to two more workstations, one of which touches a server over an
// admin protocol. The example replays a day of connection events at full
// speed through ParaCOSM (NewSP under the hood), measures detection
// latency per event, and prints the latency distribution — the real-time
// responsiveness requirement of the motivating applications.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"paracosm/internal/algo/newsp"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/metrics"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

const (
	external    = 0
	workstation = 1
	server      = 2
)

const (
	web    = 0 // http(s)
	remote = 1 // ssh/rdp
	admin  = 2 // smb/winrm
)

func main() {
	rng := rand.New(rand.NewSource(23))

	g := graph.New(1100)
	var ext, ws, srv []graph.VertexID
	for i := 0; i < 100; i++ {
		ext = append(ext, g.AddVertex(external))
	}
	for i := 0; i < 900; i++ {
		ws = append(ws, g.AddVertex(workstation))
	}
	for i := 0; i < 100; i++ {
		srv = append(srv, g.AddVertex(server))
	}
	// Baseline traffic.
	for i := 0; i < 2500; i++ {
		g.AddEdge(ws[rng.Intn(len(ws))], ws[rng.Intn(len(ws))], web)
	}
	for i := 0; i < 800; i++ {
		g.AddEdge(ws[rng.Intn(len(ws))], srv[rng.Intn(len(srv))], web)
	}
	for i := 0; i < 400; i++ {
		g.AddEdge(ext[rng.Intn(len(ext))], ws[rng.Intn(len(ws))], web)
	}

	// Lateral-movement chain:
	//
	//	ext --remote--> ws1 --remote--> ws2 --remote--> ws3 --admin--> srv
	q := query.MustNew([]graph.Label{external, workstation, workstation, workstation, server})
	q.MustAddEdge(0, 1, remote)
	q.MustAddEdge(1, 2, remote)
	q.MustAddEdge(2, 3, remote)
	q.MustAddEdge(3, 4, admin)
	if err := q.Finalize(); err != nil {
		log.Fatal(err)
	}

	eng := core.New(newsp.New(), core.Threads(4), core.BatchSize(32))
	detections := 0
	eng.OnMatch = func(s *csm.State, count uint64, positive bool) {
		if positive {
			detections++
			if detections <= 3 {
				fmt.Printf("DETECTED lateral movement: %d -> %d -> %d -> %d -> server %d\n",
					s.Map[0], s.Map[1], s.Map[2], s.Map[3], s.Map[4])
			}
		}
	}
	if err := eng.Init(g, q); err != nil {
		log.Fatal(err)
	}

	// Connection event stream: background noise plus two slow intrusions
	// whose final hop completes the chain.
	sim := g.Clone()
	var events stream.Stream
	add := func(u, v graph.VertexID, l graph.Label) {
		if u != v && !sim.HasEdge(u, v) {
			sim.AddEdge(u, v, l)
			events = append(events, stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: l})
		}
	}
	for intrusion := 0; intrusion < 2; intrusion++ {
		for i := 0; i < 1000; i++ {
			add(ws[rng.Intn(len(ws))], ws[rng.Intn(len(ws))], web)
			if i%7 == 0 {
				add(ext[rng.Intn(len(ext))], ws[rng.Intn(len(ws))], web)
			}
			if i%11 == 0 { // benign admin traffic
				add(ws[rng.Intn(len(ws))], srv[rng.Intn(len(srv))], admin)
			}
		}
		e0 := ext[rng.Intn(len(ext))]
		w1, w2, w3 := ws[rng.Intn(len(ws))], ws[rng.Intn(len(ws))], ws[rng.Intn(len(ws))]
		s0 := srv[rng.Intn(len(srv))]
		add(e0, w1, remote)
		add(w1, w2, remote)
		add(w2, w3, remote)
		add(w3, s0, admin) // completes the chain
	}

	// Replay, measuring per-event processing latency.
	latencies := make([]time.Duration, 0, len(events))
	ctx := context.Background()
	for _, ev := range events {
		t0 := time.Now()
		if _, err := eng.ProcessUpdate(ctx, ev); err != nil {
			log.Fatal(err)
		}
		latencies = append(latencies, time.Since(t0))
	}

	st := eng.Stats()
	sum := metrics.Summarize(latencies)
	fmt.Printf("\nevents     : %d connections, %d intrusion chains detected\n", st.Updates, detections)
	fmt.Printf("latency    : p50=%v p90=%v p99=%v max=%v\n",
		sum.P50.Round(time.Microsecond), sum.P90.Round(time.Microsecond),
		sum.P99.Round(time.Microsecond), sum.Max.Round(time.Microsecond))
	fmt.Printf("throughput : %.0f events/s sustained\n", float64(len(events))/sum.Total.Seconds())
	fmt.Printf("search     : %d nodes explored, +%d/-%d matches\n", st.Nodes, st.Positive, st.Negative)
}
