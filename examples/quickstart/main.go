// Quickstart: the running example of the ParaCOSM paper (Figure 1) in a
// few dozen lines — a small labeled data graph, a query pattern, and a
// stream of edge insertions/deletions whose incremental matches ParaCOSM
// reports as they appear and expire.
package main

import (
	"context"
	"fmt"
	"log"

	"paracosm/internal/algo/symbi"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

func main() {
	// Data graph G: six vertices. Labels: 0 = person, 1 = account,
	// 2 = device.
	g := graph.New(6)
	v0 := g.AddVertex(0) // person
	v1 := g.AddVertex(1) // account
	v2 := g.AddVertex(2) // device
	v3 := g.AddVertex(0) // person
	v4 := g.AddVertex(2) // device
	v5 := g.AddVertex(1) // account
	g.AddEdge(v0, v1, 0)
	g.AddEdge(v1, v2, 0)
	g.AddEdge(v2, v3, 0)
	g.AddEdge(v3, v5, 0)

	// Query Q: person - account - device - person (a path that closes
	// into a square when the two persons share a device).
	q := query.MustNew([]graph.Label{0, 1, 2, 0})
	q.MustAddEdge(0, 1, 0) // person - account
	q.MustAddEdge(1, 2, 0) // account - device
	q.MustAddEdge(2, 3, 0) // device - person
	if err := q.Finalize(); err != nil {
		log.Fatal(err)
	}

	// Wrap any single-threaded CSM algorithm (here: Symbi) in ParaCOSM.
	eng := core.New(symbi.New(), core.Threads(4), core.BatchSize(8))
	eng.OnMatch = func(s *csm.State, count uint64, positive bool) {
		sign := "+"
		if !positive {
			sign = "-"
		}
		fmt.Printf("  %s match: person=%d account=%d device=%d person=%d\n",
			sign, s.Map[0], s.Map[1], s.Map[2], s.Map[3])
	}
	if err := eng.Init(g, q); err != nil {
		log.Fatal(err)
	}

	// Update stream ΔG: two insertions create matches, one deletion
	// expires a match.
	updates := stream.Stream{
		{Op: stream.AddEdge, U: v4, V: v5, ELabel: 0}, // device4 - account5
		{Op: stream.AddEdge, U: v0, V: v4, ELabel: 0}, // person0 - device4
		{Op: stream.DeleteEdge, U: v2, V: v3},         // expire device2 - person3
	}
	for i, upd := range updates {
		fmt.Printf("ΔG_%d = %v\n", i+1, upd)
		if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
			log.Fatal(err)
		}
	}

	st := eng.Stats()
	fmt.Printf("\nprocessed %d updates: +%d new matches, -%d expired (%d search nodes)\n",
		st.Updates, st.Positive, st.Negative, st.Nodes)
}
