// Fraud detection: the financial risk-control scenario that motivates the
// ParaCOSM paper (ByteGraph performs continuous pattern matching over
// transaction graphs with real-time responsiveness).
//
// The data graph is a synthetic payment network: accounts, merchants and
// devices. The query is a "money mule fan-in" motif: two distinct source
// accounts pay into the same mule account, which cashes out at a merchant,
// while the mule shares a device with one of the sources — a classic
// collusion signature. A stream of payment events is replayed through
// ParaCOSM (TurboFlux under the hood) and every newly completed motif is
// reported as an alert the moment the completing transaction arrives.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"paracosm/internal/algo/turboflux"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Vertex labels.
const (
	account  = 0
	merchant = 1
	device   = 2
)

// Edge labels.
const (
	pays = 0 // account -> account / merchant payment
	uses = 1 // account -> device
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Build the base payment network: 600 accounts, 60 merchants, 200
	// devices, with random historical payments and device usage.
	g := graph.New(860)
	var accounts, merchants, devices []graph.VertexID
	for i := 0; i < 600; i++ {
		accounts = append(accounts, g.AddVertex(account))
	}
	for i := 0; i < 60; i++ {
		merchants = append(merchants, g.AddVertex(merchant))
	}
	for i := 0; i < 200; i++ {
		devices = append(devices, g.AddVertex(device))
	}
	for i := 0; i < 1200; i++ {
		g.AddEdge(accounts[rng.Intn(len(accounts))], accounts[rng.Intn(len(accounts))], pays)
	}
	for i := 0; i < 500; i++ {
		g.AddEdge(accounts[rng.Intn(len(accounts))], merchants[rng.Intn(len(merchants))], pays)
	}
	for i := 0; i < 700; i++ {
		g.AddEdge(accounts[rng.Intn(len(accounts))], devices[rng.Intn(len(devices))], uses)
	}

	// Money-mule fan-in motif:
	//
	//	src1(account) --pays--> mule(account) <--pays-- src2(account)
	//	mule --pays--> cashout(merchant)
	//	mule --uses--> dev(device) <--uses-- src1
	q := query.MustNew([]graph.Label{account, account, account, merchant, device})
	q.MustAddEdge(0, 1, pays) // src1 -> mule
	q.MustAddEdge(2, 1, pays) // src2 -> mule
	q.MustAddEdge(1, 3, pays) // mule -> merchant
	q.MustAddEdge(1, 4, uses) // mule shares device
	q.MustAddEdge(0, 4, uses) // ... with src1
	if err := q.Finalize(); err != nil {
		log.Fatal(err)
	}

	eng := core.New(turboflux.New(), core.Threads(4), core.BatchSize(16))
	alerts := 0
	eng.OnMatch = func(s *csm.State, count uint64, positive bool) {
		if !positive {
			return
		}
		alerts++
		if alerts <= 5 {
			fmt.Printf("ALERT %d: mule ring src1=%d src2=%d mule=%d cashout=%d device=%d\n",
				alerts, s.Map[0], s.Map[2], s.Map[1], s.Map[3], s.Map[4])
		}
	}
	if err := eng.Init(g, q); err != nil {
		log.Fatal(err)
	}

	// Live payment stream: mostly organic noise, with a few planted mule
	// rings whose final cash-out transaction completes the motif.
	var events stream.Stream
	addIfAbsent := func(sim *graph.Graph, u, v graph.VertexID, l graph.Label) {
		if u != v && !sim.HasEdge(u, v) {
			sim.AddEdge(u, v, l)
			events = append(events, stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: l})
		}
	}
	sim := g.Clone()
	for ring := 0; ring < 4; ring++ {
		src1 := accounts[rng.Intn(len(accounts))]
		src2 := accounts[rng.Intn(len(accounts))]
		mule := accounts[rng.Intn(len(accounts))]
		dev := devices[rng.Intn(len(devices))]
		cash := merchants[rng.Intn(len(merchants))]
		// Noise between the ring's pieces.
		for i := 0; i < 120; i++ {
			addIfAbsent(sim, accounts[rng.Intn(len(accounts))], devices[rng.Intn(len(devices))], uses)
			addIfAbsent(sim, accounts[rng.Intn(len(accounts))], accounts[rng.Intn(len(accounts))], pays)
		}
		addIfAbsent(sim, src1, dev, uses)
		addIfAbsent(sim, mule, dev, uses)
		addIfAbsent(sim, src1, mule, pays)
		addIfAbsent(sim, src2, mule, pays)
		addIfAbsent(sim, mule, cash, pays) // completes the motif
	}

	t0 := time.Now()
	if _, err := eng.Run(context.Background(), events); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("\nstream    : %d payment events in %v (%.0f events/s)\n",
		st.Updates, time.Since(t0).Round(time.Millisecond),
		float64(st.Updates)/time.Since(t0).Seconds())
	fmt.Printf("alerts    : %d mule-ring completions detected\n", alerts)
	fmt.Printf("classifier: %.1f%% of events were safe (skipped search entirely)\n", 100*st.SafeRatio())
	fmt.Printf("breakdown : ADS %v, match search %v\n",
		st.TADS.Round(time.Microsecond), st.TFind.Round(time.Microsecond))
}
