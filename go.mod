module paracosm

go 1.23
