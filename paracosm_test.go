package paracosm_test

import (
	"context"
	"testing"

	"paracosm"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := paracosm.NewGraph(4)
	a := g.AddVertex(1)
	b := g.AddVertex(2)
	c := g.AddVertex(1)
	_ = g.AddVertex(2)

	q := paracosm.MustNewQuery([]paracosm.Label{1, 2})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}

	for _, mk := range []func() paracosm.Algorithm{
		paracosm.GraphFlow, paracosm.TurboFlux, paracosm.Symbi,
		paracosm.NewSP, paracosm.CaLiG, paracosm.CaLiGCounting,
	} {
		algo := mk()
		eng := paracosm.New(algo, paracosm.Threads(2), paracosm.BatchSize(4))
		gg := g.Clone()
		if err := eng.Init(gg, q); err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		ctx := context.Background()
		d, err := eng.ProcessUpdate(ctx, paracosm.AddEdge(a, b, 0))
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if d.Positive != 1 {
			t.Fatalf("%s: +%d matches, want 1", algo.Name(), d.Positive)
		}
		if _, err := eng.ProcessUpdate(ctx, paracosm.AddEdge(c, b, 0)); err != nil {
			t.Fatal(err)
		}
		d, err = eng.ProcessUpdate(ctx, paracosm.DeleteEdge(a, b))
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if d.Negative != 1 {
			t.Fatalf("%s: -%d matches, want 1", algo.Name(), d.Negative)
		}
	}
}

func TestFacadeRunStreamWithStats(t *testing.T) {
	g := paracosm.NewGraph(3)
	v0 := g.AddVertex(0)
	v1 := g.AddVertex(1)
	v2 := g.AddVertex(5) // label matching nothing

	q := paracosm.MustNewQuery([]paracosm.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}

	eng := paracosm.New(paracosm.Symbi(), paracosm.Threads(2), paracosm.InterUpdate(true))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	var seen int
	eng.OnMatch = func(s *paracosm.State, count uint64, positive bool) { seen++ }
	st, err := eng.Run(context.Background(), paracosm.Stream{
		paracosm.AddEdge(v0, v1, 0),
		paracosm.AddEdge(v0, v2, 0), // label-safe
		paracosm.AddVertex(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Positive != 1 || seen != 1 {
		t.Fatalf("positive=%d seen=%d", st.Positive, seen)
	}
	if st.SafeUpdates < 2 {
		t.Fatalf("SafeUpdates = %d, want >= 2", st.SafeUpdates)
	}
}

func TestFacadeDatasets(t *testing.T) {
	d := paracosm.LiveJournalLike(paracosm.DatasetScale(0.0002), paracosm.DatasetSeed(1))
	if d.Graph.NumVertices() == 0 || len(d.Stream) == 0 {
		t.Fatal("empty dataset")
	}
	q, err := d.RandomQuery(4)
	if err != nil {
		t.Fatal(err)
	}
	eng := paracosm.New(paracosm.GraphFlow())
	if err := eng.Init(d.Graph.Clone(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), d.Stream[:50]); err != nil {
		t.Fatal(err)
	}
}
