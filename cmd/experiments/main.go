// Command experiments regenerates the tables and figures of the ParaCOSM
// paper on the synthesized datasets.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig7,fig9 -scale 0.005 -queries 10 -budget 5s -threads 32
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paracosm/internal/bench"
	"paracosm/internal/obs"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list available experiments and exit")
		scale     = flag.Float64("scale", 0.002, "dataset scale factor relative to Table 5 sizes")
		seed      = flag.Int64("seed", 1, "generation seed")
		queries   = flag.Int("queries", 3, "queries per query size (paper: 100)")
		updates   = flag.Int("updates", 300, "max stream updates per query")
		budget    = flag.Duration("budget", 2*time.Second, "per-query time budget (paper: 1h)")
		threads   = flag.Int("threads", 0, "parallel worker count (default GOMAXPROCS; paper headline: 32)")
		sim       = flag.Bool("simulate", false, "force execution-driven schedule simulation (automatic whenever the machine has fewer CPUs than -threads)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /trace, /healthz and /debug/pprof on this address while experiments run")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.AllWithAblations() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Scale:          *scale,
		Seed:           *seed,
		QueriesPerSize: *queries,
		StreamCap:      *updates,
		Budget:         *budget,
		Threads:        *threads,
		Simulate:       *sim,
	}.Defaults()
	if *debugAddr != "" {
		cfg.Tracer = obs.NewTracer(obs.DefaultRingCap)
		dbg, err := obs.StartServer(*debugAddr, cfg.Tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", dbg.Addr())
	}

	var exps []bench.Experiment
	switch {
	case *run == "all":
		exps = bench.AllWithAblations()
	case *run == "paper":
		exps = bench.All()
	default:
		for _, id := range strings.Split(*run, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	fmt.Printf("# ParaCOSM experiments: scale=%g seed=%d queries/size=%d updates=%d budget=%v threads=%d simulate=%v\n\n",
		cfg.Scale, cfg.Seed, cfg.QueriesPerSize, cfg.StreamCap, cfg.Budget, cfg.Threads, cfg.Simulate)
	for _, e := range exps {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
