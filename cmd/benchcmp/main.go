// Command benchcmp compares two BENCH_*.json reports produced by
// cmd/benchjson, printing updates/sec and latency deltas per (dataset,
// algorithm) record. It is informational: the exit code is always 0, so CI
// can surface regressions without gating on machine-dependent numbers
// (schema 2 and 3 reports are both accepted; kernel counters print when
// present).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paracosm/internal/bench"
)

func load(path string) (bench.BenchReport, error) {
	var r bench.BenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(b, &r)
	return r, err
}

func pct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	oldPath := flag.String("old", "BENCH_pr3.json", "baseline report")
	newPath := flag.String("new", "BENCH_pr4.json", "candidate report")
	flag.Parse()

	oldRep, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(0) // non-gating by design, even on missing baselines
	}
	newRep, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(0)
	}

	byKey := make(map[string]bench.BenchRecord, len(oldRep.Records))
	for _, r := range oldRep.Records {
		byKey[r.Dataset+"/"+r.Algo] = r
	}
	fmt.Printf("%s (schema %d) -> %s (schema %d)\n", *oldPath, oldRep.Schema, *newPath, newRep.Schema)
	for _, n := range newRep.Records {
		key := n.Dataset + "/" + n.Algo
		o, ok := byKey[key]
		if !ok {
			fmt.Printf("%-24s new record: %.1f updates/sec, p99 %.1fus\n",
				key, n.UpdatesPerSec, n.LatencyP99US)
			continue
		}
		fmt.Printf("%-24s updates/sec %9.1f -> %9.1f (%s)   p99 %7.1fus -> %7.1fus (%s)\n",
			key, o.UpdatesPerSec, n.UpdatesPerSec, pct(o.UpdatesPerSec, n.UpdatesPerSec),
			o.LatencyP99US, n.LatencyP99US, pct(o.LatencyP99US, n.LatencyP99US))
		if n.Intersections > 0 {
			fmt.Printf("%-24s   kernels: %d intersections, %.1f%% galloped, %.1f%% candidate-slice hits\n",
				"", n.Intersections, 100*n.GallopedFraction, 100*n.CandidateHitRate)
		}
	}

	// Multi-query rows (schema 4): keyed by standing-query count.
	oldMQ := make(map[int]bench.MultiQueryRecord, len(oldRep.MultiQuery))
	for _, r := range oldRep.MultiQuery {
		oldMQ[r.Queries] = r
	}
	for _, n := range newRep.MultiQuery {
		key := fmt.Sprintf("multi/%s/%dq", n.Algo, n.Queries)
		o, ok := oldMQ[n.Queries]
		if !ok {
			fmt.Printf("%-24s new record: %.0f reg/sec, %.0f bytes/query (clone %.1fx), %.1f updates/sec\n",
				key, n.RegistrationsPerSec, n.BytesPerQuery, n.CloneOverQuery, n.UpdatesPerSec)
			continue
		}
		fmt.Printf("%-24s bytes/query %9.0f -> %9.0f (%s)   updates/sec %9.1f -> %9.1f (%s)\n",
			key, o.BytesPerQuery, n.BytesPerQuery, pct(o.BytesPerQuery, n.BytesPerQuery),
			o.UpdatesPerSec, n.UpdatesPerSec, pct(o.UpdatesPerSec, n.UpdatesPerSec))
		// Pipeline stage means (schema 5; absent fields read as zero).
		if n.StagePreApplyUS > 0 || n.StageCommitUS > 0 || n.StagePostApplyUS > 0 {
			fmt.Printf("%-24s   stages (mean us): pre-apply %.1f -> %.1f   commit %.2f -> %.2f   post-apply %.1f -> %.1f\n",
				"", o.StagePreApplyUS, n.StagePreApplyUS,
				o.StageCommitUS, n.StageCommitUS,
				o.StagePostApplyUS, n.StagePostApplyUS)
		}
	}

	// Windowed-executor rows (schema 6): keyed by workload, algo and
	// window size. Window==1 rows are the per-update baseline, so the
	// interesting within-report comparison (w=1 vs w=N on the same
	// workload) is printed alongside the cross-report delta.
	oldWin := make(map[string]bench.WindowRecord, len(oldRep.Window))
	for _, r := range oldRep.Window {
		oldWin[fmt.Sprintf("%s/%s/w%d", r.Workload, r.Algo, r.Window)] = r
	}
	base := make(map[string]bench.WindowRecord, len(newRep.Window))
	for _, r := range newRep.Window {
		if r.Window == 1 {
			base[r.Workload+"/"+r.Algo] = r
		}
	}
	for _, n := range newRep.Window {
		key := fmt.Sprintf("%s/%s/w%d", n.Workload, n.Algo, n.Window)
		if o, ok := oldWin[key]; ok {
			fmt.Printf("win %-22s updates/sec %9.1f -> %9.1f (%s)   p99 %7.1fus -> %7.1fus (%s)\n",
				key, o.UpdatesPerSec, n.UpdatesPerSec, pct(o.UpdatesPerSec, n.UpdatesPerSec),
				o.LatencyP99US, n.LatencyP99US, pct(o.LatencyP99US, n.LatencyP99US))
		} else {
			fmt.Printf("win %-22s new record: %.1f updates/sec, p99 %.1fus\n",
				key, n.UpdatesPerSec, n.LatencyP99US)
		}
		if n.Window > 1 {
			if b, ok := base[n.Workload+"/"+n.Algo]; ok {
				fmt.Printf("win %-22s   vs w=1 baseline: updates/sec %s   p99 %s\n",
					"", pct(b.UpdatesPerSec, n.UpdatesPerSec), pct(b.LatencyP99US, n.LatencyP99US))
			}
			fmt.Printf("win %-22s   %d windows: %d coalesced (%d annihilated pairs), %d groups (max %d, avg %.1f), %.1f%% unsafe parallel\n",
				"", n.Windows, n.Coalesced, n.AnnihilatedPairs,
				n.Groups, n.MaxGroup, n.AvgGroup, 100*n.ParallelUnsafeFraction)
		}
	}
}
