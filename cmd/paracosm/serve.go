package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paracosm/internal/core"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/server"
	"paracosm/internal/wal"
)

// serveMain implements `paracosm serve`: a long-running streaming CSM
// service over a data graph. Clients (see `paracosm client`) register
// named continuous queries, push update streams and subscribe to
// match-delta notifications. The process runs until SIGINT/SIGTERM and
// shuts down gracefully (drain admitted updates, close connections).
func serveMain(args []string) {
	fs := flag.NewFlagSet("paracosm serve", flag.ExitOnError)
	var (
		dataPath    = fs.String("data", "", "data graph file (required)")
		addr        = fs.String("addr", "127.0.0.1:7400", "TCP listen address")
		threads     = fs.Int("threads", 0, "worker threads per query engine (default GOMAXPROCS)")
		inter       = fs.Bool("inter", true, "enable inter-update (safe/unsafe batch) parallelism")
		batch       = fs.Int("batch", 0, "engine batch size k (default 4*threads)")
		batchMax    = fs.Int("batch-max", 0, "max updates folded into one ingestion batch")
		inflight    = fs.Int("inflight", 0, "ingestion queue capacity in updates")
		reject      = fs.Bool("reject", false, "reject updates when the ingestion queue is full instead of blocking")
		subQueue    = fs.Int("sub-queue", 0, "per-connection delta queue capacity (overflow drops)")
		maxConns    = fs.Int("max-conns", 0, "max concurrent connections")
		readTimeout = fs.Duration("read-timeout", 5*time.Minute, "per-connection idle read deadline (0 = none)")
		debugAddr   = fs.String("debug-addr", "", "serve /metrics, /trace, /healthz and /debug/pprof on this address")
		traceCap    = fs.Int("trace-cap", obs.DefaultRingCap, "trace ring capacity")
		window      = fs.Int("window", 0, "batch-dynamic window size in updates (0/1 = per-update execution)")
		footCap     = fs.Int("footprint-cap", 0, "conflict-footprint vertex cap before serial fallback (default 512)")
		walDir      = fs.String("wal-dir", "", "durability directory: write-ahead log + snapshots; restart recovers from it")
		snapEvery   = fs.Int("snapshot-every", 0, "snapshot cadence in applied updates (default 65536, negative disables)")
		fsyncMode   = fs.String("fsync", "interval", "WAL fsync policy: interval | always | off")
		fsyncEvery  = fs.Duration("fsync-interval", 0, "group-commit fsync cadence under -fsync interval (default 50ms)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: paracosm serve -data graph.txt [-addr host:port] [options]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dataPath == "" && *walDir == "" {
		// With -wal-dir, the graph comes from the recovered snapshot (or
		// starts empty on the very first boot), so -data is optional.
		fs.Usage()
		os.Exit(2)
	}
	fsyncPolicy, err := wal.ParsePolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}
	g := graph.New(0)
	if *dataPath != "" {
		g = mustGraph(*dataPath)
	}

	var tracer *obs.Tracer
	if *debugAddr != "" {
		tracer = obs.NewTracer(*traceCap)
	}
	srv, err := server.Start(g, server.Config{
		Addr:            *addr,
		MaxConns:        *maxConns,
		MaxInflight:     *inflight,
		Reject:          *reject,
		SubscriberQueue: *subQueue,
		BatchMax:        *batchMax,
		ReadTimeout:     *readTimeout,
		Tracer:          tracer,
		WALDir:          *walDir,
		SnapshotEvery:   *snapEvery,
		Fsync:           fsyncPolicy,
		FsyncInterval:   *fsyncEvery,
		Engine: []core.Option{
			core.Threads(*threads),
			core.InterUpdate(*inter),
			core.BatchSize(*batch),
			core.Window(*window),
			core.FootprintCap(*footCap),
		},
	})
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		// The readiness gate makes /healthz answer 503 until the WAL
		// replay completes — the debug server comes up first so probes can
		// watch recovery progress.
		mux := obs.NewMuxReady(tracer, srv.Ready, srv.WriteMetrics, srv.WriteQueryMetrics)
		mux.Handle("/queries", srv.QueriesHandler())
		dbg, err := obs.StartHandler(*debugAddr, mux)
		if err != nil {
			srv.Close()
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics /trace /queries /healthz /debug/pprof)\n", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *walDir != "" {
		// Announce only once recovery finishes (scripts wait on the
		// "serving on" line or the /healthz 200 it implies); bail out
		// cleanly if a signal lands mid-replay.
		readyc := make(chan error, 1)
		go func() { readyc <- srv.WaitReady(context.Background()) }()
		select {
		case err := <-readyc:
			if err != nil {
				srv.Close()
				fatal(err)
			}
		case <-sig:
			fmt.Fprintln(os.Stderr, "shutting down")
			srv.Close()
			return
		}
	}
	fmt.Fprintf(os.Stderr, "serving on %s (|V|=%d |E|=%d)\n", srv.Addr(), g.NumVertices(), g.NumEdges())
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	m := srv.Metrics()
	fmt.Fprintf(os.Stderr, "served %d conns, ingested %d updates (%d invalid, %d rejected), %d deltas (%d dropped)\n",
		m.ConnsTotal, m.Ingested, m.Invalid, m.Rejected, m.Deltas, m.DeltasDropped)
}

// clientMain implements `paracosm client`: register a continuous query,
// optionally subscribe to its deltas, stream a update file, flush, and
// report totals — one shot of the serving protocol, CLI-shaped so shell
// scripts can drive a server end to end.
func clientMain(args []string) {
	fs := flag.NewFlagSet("paracosm client", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7400", "server address")
		name       = fs.String("name", "", "query name to register (requires -query)")
		algoName   = fs.String("algo", "Symbi", "algorithm: CaLiG | GraphFlow | NewSP | Symbi | TurboFlux")
		queryPath  = fs.String("query", "", "query graph file to register")
		streamPath = fs.String("stream", "", "update stream file to push")
		subscribe  = fs.Bool("subscribe", false, "subscribe to the registered query's match deltas")
		chunk      = fs.Int("chunk", 256, "updates per wire frame")
		verbose    = fs.Bool("v", false, "print every delta notification")
		linger     = fs.Duration("linger", 0, "keep the connection (and its registered query) alive this long after reporting totals")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: paracosm client -name q1 -query query.txt [-stream updates.txt] [-subscribe] [options]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if (*name == "") != (*queryPath == "") {
		fatal(fmt.Errorf("client: -name and -query must be given together"))
	}

	cl, err := server.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	if *name != "" {
		q := mustQuery(*queryPath)
		if err := cl.Register(*name, *algoName, q); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "registered %q (%s, |V|=%d |E|=%d)\n", *name, *algoName, q.NumVertices(), q.NumEdges())
		if *subscribe {
			if err := cl.Subscribe(*name); err != nil {
				fatal(err)
			}
		}
	}

	// Drain deltas concurrently with streaming: a subscription busier
	// than the client's DeltaBuffer must be consumed while updates are in
	// flight, or the deltas overflow the buffer and are dropped
	// client-side.
	var frames, pos, neg, dropped uint64
	take := func(d server.Delta) {
		frames++
		pos += d.Pos
		neg += d.Neg
		dropped = d.Dropped
		if *verbose {
			fmt.Printf("delta %s %q +%d -%d\n", d.Update, d.Query, d.Pos, d.Neg)
		}
	}
	stop := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			select {
			case d, ok := <-cl.Deltas():
				if !ok {
					return
				}
				take(d)
			case <-stop:
				// The flush barrier guarantees every delta for the
				// accepted updates is already buffered locally, so a
				// final non-blocking sweep is complete.
				for {
					select {
					case d, ok := <-cl.Deltas():
						if !ok {
							return
						}
						take(d)
					default:
						return
					}
				}
			}
		}
	}()

	accepted := 0
	if *streamPath != "" {
		s := mustStream(*streamPath)
		for off := 0; off < len(s); off += *chunk {
			end := off + *chunk
			if end > len(s) {
				end = len(s)
			}
			n, err := cl.Send(s[off:end])
			accepted += n
			if err != nil {
				fatal(fmt.Errorf("client: after %d accepted updates: %w", accepted, err))
			}
		}
	}
	if err := cl.Flush(); err != nil {
		fatal(err)
	}
	close(stop)
	<-drained

	fmt.Printf("accepted       : %d\n", accepted)
	fmt.Printf("delta frames   : %d\n", frames)
	fmt.Printf("matches        : +%d / -%d (dropped %d)\n", pos, neg, dropped+cl.Dropped())
	if *linger > 0 {
		// Hold the connection open so the registered query stays live —
		// lets scripts probe the server's /queries endpoint and labeled
		// metrics while a standing query exists (see serve_smoke.sh).
		os.Stdout.Sync()
		time.Sleep(*linger)
	}
}
