package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"paracosm/internal/server"
)

// topMain implements `paracosm top`: poll a serve instance's /queries
// debug endpoint and render the N hottest standing queries, htop-style.
// One iteration with -once (for scripts); otherwise the screen refreshes
// every -interval until interrupted.
func topMain(args []string) {
	fs := flag.NewFlagSet("paracosm top", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "serve instance's debug address (the -debug-addr of paracosm serve)")
		n        = fs.Int("n", 10, "number of queries to show")
		by       = fs.String("by", "updates", "sort key: updates | matches | escalations | latency | nodes | name")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval")
		once     = fs.Bool("once", false, "render a single snapshot and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: paracosm top [-addr host:port] [-n 10] [-by updates] [-interval 2s] [-once]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	endpoint := fmt.Sprintf("http://%s/queries?by=%s&n=%d", *addr, url.QueryEscape(*by), *n)
	for {
		rows, err := fetchQueryRows(endpoint)
		if err != nil {
			fatal(err)
		}
		if !*once {
			// ANSI clear screen + home, like watch(1).
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("paracosm top — %s — %d queries shown — %s\n\n", *addr, len(rows), time.Now().Format("15:04:05"))
		}
		renderQueryRows(os.Stdout, rows)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetchQueryRows GETs and decodes one /queries snapshot.
func fetchQueryRows(endpoint string) ([]server.QueryRow, error) {
	resp, err := http.Get(endpoint)
	if err != nil {
		return nil, fmt.Errorf("top: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("top: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var rows []server.QueryRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, fmt.Errorf("top: decode /queries: %w", err)
	}
	return rows, nil
}

// renderQueryRows prints the rows as an aligned table.
func renderQueryRows(w io.Writer, rows []server.QueryRow) {
	fmt.Fprintf(w, "%-24s %10s %8s %8s %6s %10s %12s %9s %9s\n",
		"QUERY", "UPDATES", "SAFE", "ESCAL", "ESC%", "MATCHES", "NODES", "P50", "P99")
	for _, r := range rows {
		name := r.Name
		if len(name) > 24 {
			name = name[:21] + "..."
		}
		fmt.Fprintf(w, "%-24s %10d %8d %8d %5.1f%% %10d %12d %9s %9s\n",
			name, r.Updates, r.Safe, r.Escalations, 100*r.EscalationRate,
			r.Matches, r.Nodes,
			(time.Duration(r.P50Micros) * time.Microsecond).String(),
			(time.Duration(r.P99Micros) * time.Microsecond).String())
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no live queries)")
	}
}
