// Command paracosm runs one CSM algorithm — single-threaded or under the
// ParaCOSM framework — over a data graph, query graph and update stream in
// the text formats of the CSM benchmark suite (see cmd/gendata), and
// reports incremental matches plus a full instrumentation breakdown.
//
// Usage:
//
//	paracosm -data data_graph.txt -query query_6_000.txt \
//	         -stream insertion_stream.txt -algo Symbi -threads 32
//
// With -debug-addr the run exposes the observability layer over HTTP
// (/metrics, /trace, /healthz, /debug/pprof). A saved trace (-trace-out,
// or curl of /trace) is analyzed offline with the trace subcommand:
//
//	paracosm trace -top 5 trace.jsonl
//
// The serve subcommand runs the streaming service (standing queries over
// a live update stream) and client drives it:
//
//	paracosm serve -data data_graph.txt -addr 127.0.0.1:7400
//	paracosm client -name q1 -algo Symbi -query query_6_000.txt \
//	         -stream insertion_stream.txt -subscribe
//
// The top subcommand polls a serve instance's /queries debug endpoint and
// renders the N hottest standing queries:
//
//	paracosm top -addr 127.0.0.1:8080 -n 10 -by latency
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			traceMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "client":
			clientMain(os.Args[2:])
			return
		case "top":
			topMain(os.Args[2:])
			return
		}
	}
	var (
		dataPath   = flag.String("data", "", "data graph file (required)")
		queryPath  = flag.String("query", "", "query graph file (required)")
		streamPath = flag.String("stream", "", "update stream file (required)")
		algoName   = flag.String("algo", "Symbi", "algorithm: CaLiG | GraphFlow | NewSP | Symbi | TurboFlux")
		threads    = flag.Int("threads", 0, "worker threads (default GOMAXPROCS; 1 = sequential)")
		inter      = flag.Bool("inter", true, "enable inter-update (safe/unsafe batch) parallelism")
		batch      = flag.Int("batch", 0, "batch size k (default 4*threads)")
		split      = flag.Int("split", 4, "SPLIT_DEPTH for adaptive task sharing")
		budget     = flag.Duration("budget", time.Hour, "processing time budget")
		verbose    = flag.Bool("v", false, "print every incremental match")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /trace, /healthz and /debug/pprof on this address (e.g. :8080)")
		traceCap   = flag.Int("trace-cap", obs.DefaultRingCap, "trace ring capacity (older events are overwritten)")
		traceOut   = flag.String("trace-out", "", "write the trace ring as JSONL to this file at end of run")
		linger     = flag.Duration("debug-linger", 0, "keep the debug server up this long after the run (0 = exit immediately)")
	)
	flag.Parse()
	if *dataPath == "" || *queryPath == "" || *streamPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	g := mustGraph(*dataPath)
	q := mustQuery(*queryPath)
	s := mustStream(*streamPath)
	entry, err := algo.ByName(*algoName)
	if err != nil {
		fatal(err)
	}

	var tracer *obs.Tracer
	if *debugAddr != "" || *traceOut != "" {
		tracer = obs.NewTracer(*traceCap)
	}
	var dbg *obs.Server
	if *debugAddr != "" {
		dbg, err = obs.StartServer(*debugAddr, tracer)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics /trace /healthz /debug/pprof)\n", dbg.Addr())
	}

	eng := core.New(entry.New(),
		core.Threads(*threads),
		core.InterUpdate(*inter),
		core.BatchSize(*batch),
		core.SplitDepth(*split),
		core.WithTracer(tracer))
	defer eng.Close()
	if *verbose {
		eng.OnMatch = func(st *csm.State, count uint64, positive bool) {
			sign := "+"
			if !positive {
				sign = "-"
			}
			fmt.Printf("%s match x%d: %s\n", sign, count, formatMatch(st, q))
		}
	}

	t0 := time.Now()
	if err := eng.Init(g, q); err != nil {
		fatal(err)
	}
	build := time.Since(t0)

	ctx, cancel := context.WithTimeout(context.Background(), *budget)
	defer cancel()
	st, err := eng.Run(ctx, s)
	status := "ok"
	if err != nil {
		status = fmt.Sprintf("aborted: %v", err)
	}

	fmt.Printf("algorithm      : %s (%d threads, inter-update %v)\n", entry.Name, eng.Config().Threads, eng.Config().InterUpdate)
	fmt.Printf("data graph     : |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("query graph    : |V|=%d |E|=%d\n", q.NumVertices(), q.NumEdges())
	fmt.Printf("status         : %s\n", status)
	fmt.Printf("offline build  : %v\n", build.Round(time.Microsecond))
	fmt.Printf("updates        : %d (%d safe / %d unsafe, %d batches)\n", st.Updates, st.SafeUpdates, st.UnsafeUpdates, st.Batches)
	fmt.Printf("matches        : +%d / -%d (search nodes: %d)\n", st.Positive, st.Negative, st.Nodes)
	fmt.Printf("incremental t  : %v (ADS %v, find %v)\n",
		st.TTotal.Round(time.Microsecond), st.TADS.Round(time.Microsecond), st.TFind.Round(time.Microsecond))
	if st.Updates > 0 {
		fmt.Printf("throughput     : %.0f updates/s\n", float64(st.Updates)/st.TTotal.Seconds())
	}
	if tracer != nil {
		lat := tracer.Hist(obs.PhaseTotal)
		fmt.Printf("update latency : p50 %v  p90 %v  p99 %v  max %v\n",
			lat.Quantile(0.50).Round(time.Microsecond),
			lat.Quantile(0.90).Round(time.Microsecond),
			lat.Quantile(0.99).Round(time.Microsecond),
			lat.Max().Round(time.Microsecond))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracer.Ring().WriteJSONL(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%d dropped)\n",
			tracer.Ring().Len(), *traceOut, tracer.Ring().Dropped())
	}
	if dbg != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "debug server lingering for %v\n", *linger)
		time.Sleep(*linger)
	}
}

// traceMain implements `paracosm trace [-top k] <trace.jsonl>`: offline
// analysis of a trace ring dump (from -trace-out or `curl /trace`).
func traceMain(args []string) {
	fs := flag.NewFlagSet("paracosm trace", flag.ExitOnError)
	top := fs.Int("top", 10, "number of straggler updates to list")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: paracosm trace [-top k] <trace.jsonl>  (use - for stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	var rd io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rd = f
	}
	evs, err := obs.ReadJSONL(rd)
	if err != nil {
		fatal(err)
	}
	obs.Analyze(evs, *top).Render(os.Stdout)
}

func formatMatch(st *csm.State, q *query.Graph) string {
	out := "{"
	for u := 0; u < q.NumVertices(); u++ {
		if u > 0 {
			out += ", "
		}
		v := st.Map[u]
		if v == graph.NoVertex {
			out += fmt.Sprintf("u%d->?", u)
		} else {
			out += fmt.Sprintf("u%d->v%d", u, v)
		}
	}
	return out + "}"
}

func mustGraph(path string) *graph.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		fatal(err)
	}
	return g
}

func mustQuery(path string) *query.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// Query files reuse the graph text format.
	g, err := graph.Read(f)
	if err != nil {
		fatal(err)
	}
	labels := make([]graph.Label, g.NumVertices())
	for v := range labels {
		labels[v] = g.Label(graph.VertexID(v))
	}
	q, err := query.New(labels)
	if err != nil {
		fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, nb := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < nb.ID {
				if err := q.AddEdge(query.VertexID(v), query.VertexID(nb.ID), nb.ELabel); err != nil {
					fatal(err)
				}
			}
		}
	}
	if err := q.Finalize(); err != nil {
		fatal(err)
	}
	return q
}

func mustStream(path string) stream.Stream {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	s, err := stream.Read(f)
	if err != nil {
		fatal(err)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paracosm:", err)
	os.Exit(1)
}
