// Command benchjson runs the Figure 7 microbenchmark with the real
// worker pool and writes a machine-readable perf baseline
// (updates/sec, escalation rate, park/wakeup counters) for the
// repository's performance trajectory. CI runs it as a non-gating step
// via `make bench-json`.
package main

import (
	"flag"
	"fmt"
	"os"

	"paracosm/internal/bench"
)

func main() {
	out := flag.String("out", "BENCH_pr9.json", "output file for the JSON report")
	scale := flag.Float64("scale", 0.002, "dataset scale factor (Table 5 sizes)")
	queries := flag.Int("queries", 2, "random queries per algorithm")
	updates := flag.Int("updates", 200, "stream updates replayed per query")
	threads := flag.Int("threads", 0, "worker-pool size (0 = auto)")
	seed := flag.Int64("seed", 1, "RNG seed for datasets and queries")
	flag.Parse()

	cfg := bench.Config{
		Scale:          *scale,
		Seed:           *seed,
		QueriesPerSize: *queries,
		StreamCap:      *updates,
		Threads:        *threads,
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := bench.RunBenchJSON(cfg, f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
