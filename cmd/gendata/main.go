// Command gendata synthesizes a dataset (data graph, insertion stream and
// query set) and writes it to disk in the text formats used by the CSM
// benchmark suite.
//
// Usage:
//
//	gendata -dataset livejournal -scale 0.002 -out ./data/lj
//	gendata -dataset amazon -queries 100 -sizes 6,7,8,9,10 -out ./data/amazon
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"paracosm/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "livejournal", "amazon | livejournal | lsbench | orkut")
		scale   = flag.Float64("scale", 0.002, "scale factor relative to Table 5 sizes")
		seed    = flag.Int64("seed", 1, "generation seed")
		queries = flag.Int("queries", 10, "queries per size")
		sizes   = flag.String("sizes", "6,7,8,9,10", "comma-separated query sizes")
		out     = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gendata: -out is required")
		os.Exit(2)
	}

	var spec dataset.Spec
	switch strings.ToLower(*name) {
	case "amazon":
		spec = dataset.AmazonSpec
	case "livejournal":
		spec = dataset.LiveJournalSpec
	case "lsbench":
		spec = dataset.LSBenchSpec
	case "orkut":
		spec = dataset.OrkutSpec
	default:
		fmt.Fprintf(os.Stderr, "gendata: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	d := dataset.Custom(spec, dataset.Scale(*scale), dataset.Seed(*seed))
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	writeTo(filepath.Join(*out, "data_graph.txt"), func(f *os.File) error { return d.Graph.Write(f) })
	writeTo(filepath.Join(*out, "insertion_stream.txt"), func(f *os.File) error { return d.Stream.Write(f) })

	for _, szs := range strings.Split(*sizes, ",") {
		sz, err := strconv.Atoi(strings.TrimSpace(szs))
		if err != nil {
			fatal(fmt.Errorf("bad size %q: %v", szs, err))
		}
		for i := 0; i < *queries; i++ {
			q, err := d.RandomQuery(sz)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, fmt.Sprintf("query_%d_%03d.txt", sz, i))
			writeTo(path, func(f *os.File) error {
				for u := 0; u < q.NumVertices(); u++ {
					if _, err := fmt.Fprintf(f, "v %d %d\n", u, q.Label(uint8(u))); err != nil {
						return err
					}
				}
				for _, e := range q.Edges() {
					if _, err := fmt.Fprintf(f, "e %d %d %d\n", e.U, e.V, e.ELabel); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}
	fmt.Printf("gendata: wrote %s stand-in (|V|=%d |E|=%d, stream=%d) to %s\n",
		d.Name, d.Graph.NumVertices(), d.Graph.NumEdges(), len(d.Stream), *out)
}

func writeTo(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendata:", err)
	os.Exit(1)
}
