// Command metricslint validates Prometheus text-exposition scrapes from
// the paracosm debug server. Given one scrape it checks the format is
// well-formed; given two scrapes of the same server (old then new) it
// additionally checks that every `_total` counter present in both moved
// monotonically. scripts/metrics_lint.sh drives it against a live
// `paracosm serve` and CI gates on the result, so an exposition bug
// (duplicate series, broken label escaping, a counter that can go
// backwards) fails the build instead of silently corrupting dashboards.
//
// Checks, per scrape:
//
//   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
//   - label names match [a-zA-Z_][a-zA-Z0-9_]*, values are quoted with
//     only \\ \" \n escapes, and the brace block parses exactly
//   - sample values parse as Go floats (NaN/Inf spellings included)
//   - each (name, sorted label set) appears at most once
//   - at most one `# TYPE` per metric name, emitted before its samples,
//     with a known type; every sample's name has a TYPE
//   - `# HELP` at most once per name
//   - names ending in `_total` are declared `counter`
//
// Across two scrapes: for every series whose name ends in `_total` and
// which appears in both, new value >= old value.
//
// Usage:
//
//	metricslint scrape.txt
//	metricslint old.txt new.txt
package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed exposition line: a series identity and its value.
type sample struct {
	name   string
	series string // name + canonical (sorted) label rendering
	value  float64
	line   int
}

// scrape is the parsed form of one exposition document.
type scrape struct {
	path    string
	samples []sample
	types   map[string]string // metric name -> declared TYPE
}

type linter struct {
	errs int
}

func (l *linter) errorf(path string, line int, format string, args ...any) {
	l.errs++
	fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, line, fmt.Sprintf(format, args...))
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if alpha || (i > 0 && r >= '0' && r <= '9') {
			continue
		}
		return false
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// parseLabels parses a `{k="v",...}` block (s starts at '{'), returning
// the canonical sorted rendering and the offset just past '}'.
func parseLabels(s string) (canon string, rest string, err error) {
	if s == "" || s[0] != '{' {
		return "", s, fmt.Errorf("expected '{'")
	}
	s = s[1:]
	type kv struct{ k, v string }
	var labels []kv
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			s = s[1:]
			break
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", s, fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return "", s, fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if !strings.HasPrefix(s, `"`) {
			return "", s, fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			switch c {
			case '\\':
				if i+1 >= len(s) {
					return "", s, fmt.Errorf("label %s: dangling backslash", name)
				}
				esc := s[i+1]
				if esc != '\\' && esc != '"' && esc != 'n' {
					return "", s, fmt.Errorf("label %s: invalid escape \\%c", name, esc)
				}
				val.WriteByte(c)
				val.WriteByte(esc)
				i++
			case '"':
				s = s[i+1:]
				closed = true
			case '\n':
				return "", s, fmt.Errorf("label %s: unescaped newline in value", name)
			default:
				val.WriteByte(c)
			}
			if closed {
				break
			}
		}
		if !closed {
			return "", s, fmt.Errorf("label %s: unterminated value", name)
		}
		labels = append(labels, kv{name, val.String()})
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			s = s[1:]
			break
		}
		if s == "" {
			return "", s, fmt.Errorf("unterminated label block")
		}
		return "", s, fmt.Errorf("expected ',' or '}' after label %s", name)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].k < labels[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			if l.k == labels[i-1].k {
				return "", s, fmt.Errorf("duplicate label %q", l.k)
			}
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.k, l.v)
	}
	b.WriteByte('}')
	return b.String(), s, nil
}

var knownTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// parseScrape parses one exposition document, reporting format errors
// through l and returning whatever parsed cleanly.
func parseScrape(l *linter, path string) scrape {
	data, err := os.ReadFile(path)
	if err != nil {
		l.errorf(path, 0, "%v", err)
		return scrape{path: path, types: map[string]string{}}
	}
	sc := scrape{path: path, types: map[string]string{}}
	help := map[string]bool{}
	seen := map[string]int{} // series -> first line
	sampled := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		ln := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = strings.TrimSpace(fields[3])
				}
				if !validMetricName(name) {
					l.errorf(path, ln, "TYPE for invalid metric name %q", name)
					continue
				}
				if !knownTypes[typ] {
					l.errorf(path, ln, "unknown TYPE %q for %s", typ, name)
				}
				if prev, dup := sc.types[name]; dup {
					l.errorf(path, ln, "duplicate TYPE for %s (already %q)", name, prev)
					continue
				}
				if sampled[name] {
					l.errorf(path, ln, "TYPE for %s after its samples", name)
				}
				sc.types[name] = typ
				if strings.HasSuffix(name, "_total") && typ != "counter" {
					l.errorf(path, ln, "%s ends in _total but is TYPE %s", name, typ)
				}
			case "HELP":
				name := fields[2]
				if help[name] {
					l.errorf(path, ln, "duplicate HELP for %s", name)
				}
				help[name] = true
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		rest := line
		end := strings.IndexAny(rest, "{ \t")
		if end < 0 {
			l.errorf(path, ln, "sample without value: %q", line)
			continue
		}
		name := rest[:end]
		if !validMetricName(name) {
			l.errorf(path, ln, "invalid metric name %q", name)
			continue
		}
		rest = rest[end:]
		canon := "{}"
		if strings.HasPrefix(rest, "{") {
			var perr error
			canon, rest, perr = parseLabels(rest)
			if perr != nil {
				l.errorf(path, ln, "%s: %v", name, perr)
				continue
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			l.errorf(path, ln, "%s: expected value [timestamp], got %q", name, rest)
			continue
		}
		v, perr := strconv.ParseFloat(fields[0], 64)
		if perr != nil {
			l.errorf(path, ln, "%s: bad value %q", name, fields[0])
			continue
		}
		if len(fields) == 2 {
			if _, perr := strconv.ParseInt(fields[1], 10, 64); perr != nil {
				l.errorf(path, ln, "%s: bad timestamp %q", name, fields[1])
			}
		}
		series := name + canon
		if first, dup := seen[series]; dup {
			l.errorf(path, ln, "duplicate series %s (first at line %d)", series, first)
		} else {
			seen[series] = ln
		}
		sampled[name] = true
		sc.samples = append(sc.samples, sample{name: name, series: series, value: v, line: ln})
	}
	for name := range sampled {
		if _, ok := sc.types[name]; ok {
			continue
		}
		// Histogram and summary families expose their samples under
		// suffixed names covered by the base metric's single TYPE line.
		if base, ok := familyBase(name); ok {
			if t := sc.types[base]; t == "histogram" || t == "summary" {
				continue
			}
		}
		l.errorf(path, 0, "metric %s has samples but no TYPE", name)
	}
	return sc
}

// familyBase maps a histogram/summary component sample name to the
// declared family name, e.g. foo_seconds_bucket -> foo_seconds.
func familyBase(name string) (string, bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) && len(name) > len(suf) {
			return name[:len(name)-len(suf)], true
		}
	}
	return "", false
}

func main() {
	args := os.Args[1:]
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: metricslint scrape.txt [newer-scrape.txt]")
		os.Exit(2)
	}
	var l linter
	scrapes := make([]scrape, 0, 2)
	for _, p := range args {
		scrapes = append(scrapes, parseScrape(&l, p))
	}

	if len(scrapes) == 2 {
		old, nw := scrapes[0], scrapes[1]
		oldVals := make(map[string]float64, len(old.samples))
		for _, s := range old.samples {
			oldVals[s.series] = s.value
		}
		checked := 0
		for _, s := range nw.samples {
			if !strings.HasSuffix(s.name, "_total") {
				continue
			}
			ov, ok := oldVals[s.series]
			if !ok {
				continue // series appeared between scrapes; fine
			}
			checked++
			if s.value < ov {
				l.errorf(nw.path, s.line, "counter %s went backwards: %g -> %g", s.series, ov, s.value)
			}
		}
		fmt.Fprintf(os.Stderr, "metricslint: %d counters checked for monotonicity\n", checked)
	}

	total := 0
	for _, sc := range scrapes {
		total += len(sc.samples)
	}
	if l.errs > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %d problem(s) in %d sample(s)\n", l.errs, total)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "metricslint: ok (%d samples across %d scrape(s))\n", total, len(scrapes))
}
