// Command paracosmvet runs ParaCOSM's project-specific static-analysis
// suite (internal/lint) over the module: lockguard, lockescape, atomicmix,
// goroutineleak, waitgroup, chandrop, noalloc, rangedeterminism, and
// lockcopy. It exits non-zero on any finding so `make lint` and CI can gate
// on it.
//
// Usage:
//
//	go run ./cmd/paracosmvet [-checks c1,c2] [-disable c1,c2] [-json] [-ignores] [packages]
//
// where packages are go-tool-style patterns relative to the module root
// ("./...", "./internal/graph", ...). With no arguments the whole module
// is checked. Intentional violations are silenced in-source with
// //lint:ignore <check> <reason>; the directives themselves are audited —
// one naming an unknown check, or suppressing nothing for a check that ran,
// is a finding (disable with -strict-ignores=false). -ignores prints the
// full escape-hatch inventory; -json emits findings as a JSON array for
// machine consumption (CI artifacts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"paracosm/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	disable := flag.String("disable", "", "comma-separated checks to skip")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	ignores := flag.Bool("ignores", false, "report every //lint:ignore directive with its suppression count")
	strict := flag.Bool("strict-ignores", true, "fail on //lint:ignore directives that name an unknown check or suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paracosmvet [-checks c1,c2] [-disable c1,c2] [-json] [-ignores] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracosmvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracosmvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracosmvet:", err)
		os.Exit(2)
	}

	analyzers := lint.DefaultAnalyzers()
	if *checks != "" {
		analyzers, err = selectAnalyzers(analyzers, *checks, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paracosmvet:", err)
			os.Exit(2)
		}
	}
	if *disable != "" {
		analyzers, err = selectAnalyzers(analyzers, *disable, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paracosmvet:", err)
			os.Exit(2)
		}
	}

	diags, ignoreInfos := lint.RunAll(pkgs, analyzers, lint.Options{StrictIgnores: *strict})

	rel := func(name string) string {
		r, err := filepath.Rel(root, name)
		if err != nil || len(r) >= len(name) {
			return name
		}
		return r
	}

	if *ignores {
		for _, ig := range ignoreInfos {
			fmt.Printf("%s:%d: //lint:ignore %s (%s) — suppressed %d finding(s)\n",
				rel(ig.Pos.Filename), ig.Pos.Line, ig.Check, ig.Reason, ig.Matched)
		}
		fmt.Fprintf(os.Stderr, "paracosmvet: %d ignore directive(s)\n", len(ignoreInfos))
	}

	if *jsonOut {
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		outDiags := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			outDiags = append(outDiags, jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Check: d.Check, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outDiags); err != nil {
			fmt.Fprintln(os.Stderr, "paracosmvet:", err)
			os.Exit(2)
		}
	} else if !*ignores {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "paracosmvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// selectAnalyzers filters the suite: keep=true retains exactly the named
// checks, keep=false drops them. Unknown names are an error either way.
func selectAnalyzers(all []lint.Analyzer, spec string, keep bool) ([]lint.Analyzer, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		if name != "" {
			want[name] = true
		}
	}
	var out []lint.Analyzer
	for _, a := range all {
		if want[a.Name()] == keep {
			out = append(out, a)
		}
		delete(want, a.Name())
	}
	for name := range want {
		return nil, fmt.Errorf("unknown check %q", name)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
