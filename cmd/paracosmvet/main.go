// Command paracosmvet runs ParaCOSM's project-specific static-analysis
// suite (internal/lint) over the module: lockguard, atomicmix,
// goroutineleak, rangedeterminism, and lockcopy. It exits non-zero on any
// finding so `make lint` and CI can gate on it.
//
// Usage:
//
//	go run ./cmd/paracosmvet [packages]
//
// where packages are go-tool-style patterns relative to the module root
// ("./...", "./internal/graph", ...). With no arguments the whole module
// is checked. Intentional violations are silenced in-source with
// //lint:ignore <check> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"paracosm/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paracosmvet [-checks c1,c2] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracosmvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracosmvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "paracosmvet:", err)
		os.Exit(2)
	}

	analyzers := lint.DefaultAnalyzers()
	if *checks != "" {
		analyzers, err = selectAnalyzers(analyzers, *checks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paracosmvet:", err)
			os.Exit(2)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil || len(rel) >= len(d.Pos.Filename) {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "paracosmvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func selectAnalyzers(all []lint.Analyzer, spec string) ([]lint.Analyzer, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		if name != "" {
			want[name] = true
		}
	}
	var out []lint.Analyzer
	for _, a := range all {
		if want[a.Name()] {
			out = append(out, a)
			delete(want, a.Name())
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown check %q", name)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
