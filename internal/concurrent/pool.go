package concurrent

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent pool of parked worker goroutines: the execution
// substrate of the inner-update executor (Algorithm 2). Workers are
// spawned once, at construction, and reused for every escalated update;
// between epochs (and whenever the task queue drains mid-epoch) they park
// on a sync.Cond instead of spinning, so an idle pool costs nothing and
// never steals cycles from the workers that still hold tasks.
//
// One epoch = one Submit call: the caller hands over a frontier of tasks
// plus the function that executes them, and Submit blocks until the epoch
// drains. Task functions may grow the epoch by calling Push (adaptive
// re-splitting); Starved is the lock-free signal that re-splitting would
// pay. Epoch termination is the classic two-phase check, evaluated under
// the pool mutex so no wakeup can be lost: the epoch is complete exactly
// when the queue is empty AND no worker is executing a task (a running
// task may still Push, so an empty queue alone proves nothing).
//
// Submit and Close serialize against each other; task functions run
// concurrently and must synchronize any shared state themselves. Close
// joins all workers; a closed pool panics on Submit.
type Pool[T any] struct {
	size int

	mu   sync.Mutex
	work sync.Cond // workers park here; signaled by Push/Submit/Close
	done sync.Cond // the submitter parks here; signaled at epoch completion

	tasks  []T                      // guarded by mu
	head   int                      // guarded by mu
	active int                      // guarded by mu
	run    func(worker int, task T) // guarded by mu
	closed bool                     // guarded by mu

	// Lock-free mirrors for the hot-path Starved check. Both are only
	// mutated inside mu's critical sections; concurrent readers may
	// observe values a step stale, never torn — the same contract as
	// Queue.n, and exactly what an advisory re-split heuristic needs.
	qlen atomic.Int64
	idle atomic.Int32

	parks   atomic.Uint64
	wakeups atomic.Uint64

	// epochMu serializes Submit/Close so only one epoch (or shutdown) is
	// in flight; mu alone cannot, because Submit releases it while parked.
	epochMu sync.Mutex
	wg      sync.WaitGroup // joins workers; Add serialized by construction (all Adds happen in NewPool, before the pool escapes)
}

// NewPool starts size persistent workers (size < 1 is clamped to 1). The
// workers park immediately; call Close to join them.
func NewPool[T any](size int) *Pool[T] {
	if size < 1 {
		size = 1
	}
	p := &Pool[T]{size: size}
	p.work.L = &p.mu
	p.done.L = &p.mu
	for w := 0; w < size; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool[T]) Size() int { return p.size }

// worker is the persistent loop of one pool goroutine. Joined via Close
// (p.wg.Wait after the closed broadcast).
func (p *Pool[T]) worker(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for p.head >= len(p.tasks) && !p.closed {
			p.idle.Add(1)
			p.parks.Add(1)
			p.work.Wait()
			p.idle.Add(-1)
			p.wakeups.Add(1)
		}
		if p.head >= len(p.tasks) { // closed, queue drained
			p.mu.Unlock()
			return
		}
		var zero T
		task := p.tasks[p.head]
		p.tasks[p.head] = zero // release for GC
		p.head++
		p.qlen.Add(-1)
		p.active++
		run := p.run
		p.mu.Unlock()

		run(w, task)

		p.mu.Lock()
		p.active--
		if p.active == 0 && p.head >= len(p.tasks) {
			p.done.Signal()
		}
	}
}

// Submit runs one epoch: frontier is queued, parked workers are woken, and
// the call blocks until the queue is empty and every task function has
// returned. run is invoked once per task with the executing worker's index
// (0..Size-1); it may call Push to add tasks to the same epoch. Submit
// must not be called concurrently with itself and panics on a closed pool.
func (p *Pool[T]) Submit(frontier []T, run func(worker int, task T)) {
	p.epochMu.Lock()
	defer p.epochMu.Unlock()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("concurrent: Submit on closed Pool")
	}
	p.run = run
	p.tasks = append(p.tasks, frontier...)
	p.qlen.Add(int64(len(frontier)))
	p.work.Broadcast()
	for p.head < len(p.tasks) || p.active > 0 {
		p.done.Wait()
	}
	p.run = nil
	// Reuse the ring across epochs, but let an explosion's backlog go
	// back to the allocator instead of pinning its high-water mark.
	if cap(p.tasks) > 4096 {
		p.tasks = nil
	} else {
		p.tasks = p.tasks[:0]
	}
	p.head = 0
	p.mu.Unlock()
}

// Push appends one task to the current epoch and wakes a parked worker.
// Only task functions of the in-flight epoch may call it.
func (p *Pool[T]) Push(v T) {
	p.mu.Lock()
	p.tasks = append(p.tasks, v)
	p.qlen.Add(1)
	p.work.Signal()
	p.mu.Unlock()
}

// Starved reports whether at least one worker is parked while the queue is
// empty — the adaptive re-splitting trigger of Algorithm 2 (idle > 0 &&
// queue empty). Lock-free and advisory: a stale answer only delays or
// wastes one split, never breaks correctness.
func (p *Pool[T]) Starved() bool {
	return p.idle.Load() > 0 && p.qlen.Load() == 0
}

// Counters returns the cumulative park and wakeup event counts. A park is
// one transition into the idle wait (including the initial park after
// spawn and re-parks after spurious wakeups); wakeups count the matching
// transitions out.
func (p *Pool[T]) Counters() (parks, wakeups uint64) {
	return p.parks.Load(), p.wakeups.Load()
}

// Close wakes all parked workers, waits for them to exit, and marks the
// pool unusable. Idempotent: further Close calls return immediately. Must
// not be called from a task function or concurrently with Submit (it
// serializes behind any in-flight epoch).
func (p *Pool[T]) Close() {
	p.epochMu.Lock()
	defer p.epochMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.work.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
