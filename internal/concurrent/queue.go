// Package concurrent provides the small concurrency primitives ParaCOSM's
// executors are built from: a mutex-protected FIFO task queue (the CQ of
// Algorithm 2) and an idle-worker gauge used for adaptive task sharing.
package concurrent

import (
	"sync"
	"sync/atomic"
)

// Queue is a concurrent FIFO queue. The zero value is ready to use.
//
// A plain mutex-protected ring is deliberately chosen over a lock-free
// structure: ParaCOSM pushes coarse subtree tasks (thousands of search
// nodes each), so queue operations are far off the critical path and a
// simple implementation is both fast enough and obviously correct.
type Queue[T any] struct {
	mu    sync.Mutex
	items []T // guarded by mu
	head  int // guarded by mu
	// n mirrors len(items)-head for lock-free Len(). It is only mutated
	// inside mu's critical sections, so a quiescent queue always reports
	// an exact length; concurrent readers may observe the count a step
	// ahead of or behind the ring contents, never a torn value.
	n atomic.Int64
}

// Push appends one item.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.n.Add(1)
	q.mu.Unlock()
}

// PushAll appends a batch of items.
func (q *Queue[T]) PushAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	q.mu.Lock()
	q.items = append(q.items, vs...)
	q.n.Add(int64(len(vs)))
	q.mu.Unlock()
}

// Pop removes and returns the oldest item.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	q.mu.Lock()
	if q.head >= len(q.items) {
		q.mu.Unlock()
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release for GC
	q.head++
	q.n.Add(-1)
	// Compact once the dead prefix dominates, to bound memory.
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	q.mu.Unlock()
	return v, true
}

// Len returns the current number of queued items (approximate under
// concurrency, exact when quiescent).
func (q *Queue[T]) Len() int { return int(q.n.Load()) }

// Empty reports whether the queue is empty (approximate under
// concurrency).
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }
