package concurrent

import (
	"sync"
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
}

func TestQueuePushAllAndLen(t *testing.T) {
	var q Queue[string]
	q.PushAll([]string{"a", "b", "c"})
	q.PushAll(nil)
	if q.Len() != 3 || q.Empty() {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Pop()
	if q.Len() != 2 {
		t.Fatalf("Len after pop = %d", q.Len())
	}
}

func TestQueueCompaction(t *testing.T) {
	var q Queue[int]
	// Interleave pushes and pops to force the compaction path repeatedly.
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			q.Push(round*40 + i)
		}
		for i := 0; i < 40; i++ {
			v, ok := q.Pop()
			if !ok || v != next {
				t.Fatalf("Pop = (%d,%v), want %d", v, ok, next)
			}
			next++
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d at end", q.Len())
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	var q Queue[int]
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					select {
					case <-done:
						if v, ok = q.Pop(); !ok {
							return
						}
					default:
						continue
					}
				}
				mu.Lock()
				if seen[v] {
					mu.Unlock()
					t.Errorf("value %d popped twice", v)
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	if count != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", count, producers*perProducer)
	}
}
