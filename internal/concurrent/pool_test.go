package concurrent

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool[int](4)
	defer p.Close()

	var sum atomic.Int64
	tasks := make([]int, 100)
	want := int64(0)
	for i := range tasks {
		tasks[i] = i
		want += int64(i)
	}
	p.Submit(tasks, func(w int, v int) { sum.Add(int64(v)) })
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestPoolEpochsAreIndependent(t *testing.T) {
	p := NewPool[int](3)
	defer p.Close()

	for epoch := 0; epoch < 50; epoch++ {
		var n atomic.Int64
		p.Submit([]int{1, 2, 3, 4, 5}, func(w, v int) { n.Add(1) })
		if n.Load() != 5 {
			t.Fatalf("epoch %d: ran %d tasks, want 5", epoch, n.Load())
		}
	}
}

// TestPoolRecursivePush: tasks growing the epoch via Push must all run
// before Submit returns (the two-phase termination check: an empty queue
// with a task in flight is not completion).
func TestPoolRecursivePush(t *testing.T) {
	p := NewPool[int](4)
	defer p.Close()

	var n atomic.Int64
	// Each task at depth d > 0 pushes two tasks at depth d-1:
	// 2^5-1 = 31 tasks from one seed.
	p.Submit([]int{4}, func(w, depth int) {
		n.Add(1)
		if depth > 0 {
			p.Push(depth - 1)
			p.Push(depth - 1)
		}
	})
	if got := n.Load(); got != 31 {
		t.Fatalf("ran %d tasks, want 31", got)
	}
}

// TestPoolWorkersParkBetweenEpochs: the pool must not grow goroutines
// across many epochs, and idle workers must actually park (counters move).
func TestPoolWorkersParkBetweenEpochs(t *testing.T) {
	p := NewPool[int](4)
	defer p.Close()
	p.Submit([]int{1}, func(w, v int) {}) // warm up: workers spawned and parked

	base := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		p.Submit([]int{1, 2, 3}, func(w, v int) {})
	}
	if now := runtime.NumGoroutine(); now > base+2 {
		t.Fatalf("goroutines grew across epochs: %d -> %d", base, now)
	}
	parks, wakeups := p.Counters()
	if parks == 0 || wakeups == 0 {
		t.Fatalf("no park/wakeup traffic recorded (parks=%d wakeups=%d)", parks, wakeups)
	}
}

func TestPoolStarved(t *testing.T) {
	p := NewPool[int](2)
	defer p.Close()

	// Quiescent pool: both workers parked, queue empty.
	deadline := time.Now().Add(2 * time.Second)
	for !p.Starved() {
		if time.Now().After(deadline) {
			t.Fatal("pool never reported starved while quiescent")
		}
		time.Sleep(time.Millisecond)
	}

	// During an epoch where one worker blocks and the other drains the
	// queue, Starved must eventually flip true (idle sibling, empty queue).
	release := make(chan struct{})
	sawStarved := make(chan bool, 1)
	go func() {
		p.Submit([]int{0, 1}, func(w, v int) {
			if v == 0 {
				d := time.Now().Add(2 * time.Second)
				for !p.Starved() && time.Now().Before(d) {
					time.Sleep(100 * time.Microsecond)
				}
				sawStarved <- p.Starved()
			}
		})
		close(release)
	}()
	if !<-sawStarved {
		t.Fatal("running task never observed a starved sibling")
	}
	<-release
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool[int](3)
	p.Submit([]int{1, 2}, func(w, v int) {})
	p.Close()
	p.Close() // second Close must be a no-op, not a deadlock or panic
}

func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool[int](2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit on closed pool did not panic")
		}
	}()
	p.Submit([]int{1}, func(w, v int) {})
}

func TestPoolSizeClamped(t *testing.T) {
	p := NewPool[int](0)
	defer p.Close()
	if p.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", p.Size())
	}
	p.Submit([]int{7}, func(w, v int) {
		if w != 0 {
			t.Errorf("worker index %d on size-1 pool", w)
		}
	})
}

// TestPoolStress exercises concurrent Push from many tasks under -race.
func TestPoolStress(t *testing.T) {
	p := NewPool[int](8)
	defer p.Close()
	var n atomic.Int64
	for round := 0; round < 20; round++ {
		n.Store(0)
		seeds := make([]int, 16)
		for i := range seeds {
			seeds[i] = 6
		}
		p.Submit(seeds, func(w, depth int) {
			n.Add(1)
			if depth > 0 {
				p.Push(depth - 1)
				p.Push(depth - 1)
			}
		})
		// 16 seeds, each a full binary tree of depth 6: 16*(2^7-1).
		if got := n.Load(); got != 16*127 {
			t.Fatalf("round %d: ran %d tasks, want %d", round, got, 16*127)
		}
	}
}
