package concurrent

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestQueueCompactionBoundary drives the ring exactly across the
// compaction trigger (head > 64 && head*2 >= len(items)) and checks FIFO
// order, the length mirror, and memory reuse on both sides of it.
func TestQueueCompactionBoundary(t *testing.T) {
	var q Queue[int]
	const n = 130 // head reaches 65 with 130 items: 65*2 >= 130 fires
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	// Pop to one before the trigger: head = 65 needs 65 pops, so pop 64
	// (head = 64 fails the head > 64 test) and verify nothing moved.
	for i := 0; i < 64; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v)", i, v, ok)
		}
	}
	if q.head != 64 || len(q.items) != n {
		t.Fatalf("pre-trigger state: head=%d len(items)=%d, want 64,%d", q.head, len(q.items), n)
	}
	// The 65th pop crosses the threshold: head=65, 65*2 = 130 >= 130.
	if v, ok := q.Pop(); !ok || v != 64 {
		t.Fatalf("trigger Pop = (%d,%v)", v, ok)
	}
	if q.head != 0 || len(q.items) != n-65 {
		t.Fatalf("post-trigger state: head=%d len(items)=%d, want 0,%d", q.head, len(q.items), n-65)
	}
	if q.Len() != n-65 {
		t.Fatalf("Len = %d after compaction, want %d", q.Len(), n-65)
	}
	// Remaining items must still come out in order.
	for i := 65; i < n; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("post-compaction Pop = (%d,%v), want %d", v, ok, i)
		}
	}
	if v, ok := q.Pop(); ok {
		t.Fatalf("Pop on drained queue returned %d", v)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d on drained queue", q.Len())
	}
}

// TestQueueCompactionUnderPushAll interleaves batch pushes with long pop
// runs so compaction happens while live items sit past the dead prefix.
func TestQueueCompactionUnderPushAll(t *testing.T) {
	var q Queue[int]
	rng := rand.New(rand.NewSource(7))
	next, pushed := 0, 0
	for round := 0; round < 200; round++ {
		batch := make([]int, rng.Intn(40))
		for i := range batch {
			batch[i] = pushed
			pushed++
		}
		q.PushAll(batch)
		pops := rng.Intn(50)
		for i := 0; i < pops && next < pushed; i++ {
			v, ok := q.Pop()
			if !ok {
				t.Fatalf("Pop failed with %d items outstanding", pushed-next)
			}
			if v != next {
				t.Fatalf("Pop = %d, want %d (FIFO violated across compaction)", v, next)
			}
			next++
		}
		if want := pushed - next; q.Len() != want {
			t.Fatalf("round %d: Len = %d, want %d", round, q.Len(), want)
		}
	}
}

// TestQueueConcurrentPushAllPop hammers PushAll against Pop from many
// goroutines; run under -race this exercises the mutex/atomic-mirror pair
// the lockguard and atomicmix analyzers reason about. Every pushed value
// must be popped exactly once.
func TestQueueConcurrentPushAllPop(t *testing.T) {
	var q Queue[int]
	const producers, batches, batchLen = 4, 50, 32
	total := producers * batches * batchLen

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := p * batches * batchLen
			for b := 0; b < batches; b++ {
				batch := make([]int, batchLen)
				for i := range batch {
					batch[i] = base + b*batchLen + i
				}
				q.PushAll(batch)
			}
		}(p)
	}

	seen := make([]int32, total)
	var consumed sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					select {
					case <-done:
						if v, ok = q.Pop(); !ok {
							return
						}
					default:
						continue
					}
				}
				// Atomic so a double-pop shows up as a count of 2 below
				// instead of as a confusing race-detector report here.
				atomic.AddInt32(&seen[v], 1)
			}
		}()
	}
	wg.Wait()
	close(done)
	consumed.Wait()

	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
	if q.Len() != 0 || !q.Empty() {
		t.Fatalf("Len = %d, Empty = %v after drain", q.Len(), q.Empty())
	}
}
