// Package csm defines the general continuous-subgraph-matching model of the
// ParaCOSM paper (§2.2, Algorithm 1): the partial-embedding search state,
// the algorithm interface every baseline implements (its search-tree
// traversal routine and its ADS filtering rule), and a sequential engine
// that drives the offline/online two-stage process. ParaCOSM's executors
// (internal/core) reuse the same interface to parallelize any conforming
// algorithm without touching its logic.
package csm

import (
	"paracosm/internal/graph"
	"paracosm/internal/query"
)

// State is one node of the abstract search tree T: a partial embedding
// from query vertices to data vertices plus bookkeeping identifying which
// matching order the embedding is being extended along.
//
// State is a value type: copying it is how ParaCOSM forks a subtree into an
// independently executable task.
type State struct {
	// Map[u] is the data vertex matched to query vertex u, or
	// graph.NoVertex.
	Map [query.MaxVertices]graph.VertexID
	// Order identifies the matching order in use. The standard encoding
	// (used by all bundled algorithms) is 2*edgeIndex + flipped for the
	// query-edge orientation the updated data edge was mapped onto, but
	// the engine treats it as opaque.
	Order uint16
	// Depth is the number of query vertices matched so far.
	Depth uint8
}

// NewState returns an empty state (no vertices matched) for the given
// order id.
func NewState(order uint16) State {
	var s State
	for i := range s.Map {
		s.Map[i] = graph.NoVertex
	}
	s.Order = order
	return s
}

// Set records the assignment u -> v and increments Depth. It panics if u is
// already matched (programming error in an algorithm).
func (s *State) Set(u query.VertexID, v graph.VertexID) {
	if s.Map[u] != graph.NoVertex {
		panic("csm: query vertex matched twice")
	}
	s.Map[u] = v
	s.Depth++
}

// Unset removes the assignment of u and decrements Depth (used by
// sequential in-place backtracking).
func (s *State) Unset(u query.VertexID) {
	if s.Map[u] == graph.NoVertex {
		panic("csm: unset of unmatched query vertex")
	}
	s.Map[u] = graph.NoVertex
	s.Depth--
}

// Uses reports whether data vertex v already appears in the embedding
// (the injectivity test of subgraph isomorphism).
func (s *State) Uses(v graph.VertexID) bool {
	for _, m := range s.Map {
		if m == v {
			return true
		}
	}
	return false
}

// Matched returns the data vertex assigned to u, or graph.NoVertex.
func (s *State) Matched(u query.VertexID) graph.VertexID { return s.Map[u] }

// EncodeOrder packs a query-edge orientation into a State.Order value.
func EncodeOrder(eo query.EdgeOrientation) uint16 {
	o := uint16(eo.Index) << 1
	if eo.Flipped {
		o |= 1
	}
	return o
}

// DecodeOrder unpacks a State.Order value produced by EncodeOrder.
func DecodeOrder(o uint16) query.EdgeOrientation {
	return query.EdgeOrientation{Index: int(o >> 1), Flipped: o&1 == 1}
}
