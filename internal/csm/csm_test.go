package csm

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

func TestNewStateEmpty(t *testing.T) {
	s := NewState(5)
	if s.Depth != 0 || s.Order != 5 {
		t.Fatalf("NewState = %+v", s)
	}
	for u := 0; u < query.MaxVertices; u++ {
		if s.Map[u] != graph.NoVertex {
			t.Fatalf("Map[%d] = %d, want NoVertex", u, s.Map[u])
		}
	}
}

func TestStateSetUnsetUses(t *testing.T) {
	s := NewState(0)
	s.Set(3, 42)
	if s.Depth != 1 || s.Matched(3) != 42 || !s.Uses(42) || s.Uses(41) {
		t.Fatalf("after Set: %+v", s)
	}
	s.Unset(3)
	if s.Depth != 0 || s.Matched(3) != graph.NoVertex || s.Uses(42) {
		t.Fatalf("after Unset: %+v", s)
	}
}

func TestStateSetTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double Set")
		}
	}()
	s := NewState(0)
	s.Set(0, 1)
	s.Set(0, 2)
}

func TestStateUnsetUnmatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Unset of unmatched")
		}
	}()
	s := NewState(0)
	s.Unset(0)
}

func TestOrderEncodingRoundTrip(t *testing.T) {
	f := func(idx uint8, flipped bool) bool {
		eo := query.EdgeOrientation{Index: int(idx), Flipped: flipped}
		return DecodeOrder(EncodeOrder(eo)) == eo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// pathAlgo is a minimal Algorithm matching the 2-vertex query "0-1" with
// labels (0,1): every inserted (0-labeled, 1-labeled) edge is a match.
type pathAlgo struct {
	g        *graph.Graph
	q        *query.Graph
	adsCalls int
}

func (a *pathAlgo) Name() string { return "path" }
func (a *pathAlgo) Build(g *graph.Graph, q *query.Graph) error {
	a.g, a.q = g, q
	return nil
}
func (a *pathAlgo) UpdateADS(stream.Update) { a.adsCalls++ }
func (a *pathAlgo) AffectsADS(u stream.Update) bool {
	return u.IsEdge()
}
func (a *pathAlgo) Roots(u stream.Update, emit func(State)) {
	if !u.IsEdge() {
		return
	}
	lx, ly := a.g.Label(u.U), a.g.Label(u.V)
	if lx == 0 && ly == 1 {
		s := NewState(0)
		s.Set(0, u.U)
		s.Set(1, u.V)
		emit(s)
	}
	if lx == 1 && ly == 0 {
		s := NewState(0)
		s.Set(0, u.V)
		s.Set(1, u.U)
		emit(s)
	}
}
func (a *pathAlgo) Expand(*State, func(State)) {}
func (a *pathAlgo) Terminal(s *State) (uint64, bool) {
	return 1, s.Depth == 2
}

func engineFixture(t *testing.T) (*Engine, *graph.Graph) {
	t.Helper()
	g := graph.New(4)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddVertex(0)
	g.AddVertex(1)
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(&pathAlgo{})
	if err := e.Init(g, q); err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestEngineInsertionDelta(t *testing.T) {
	e, g := engineFixture(t)
	d, err := e.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Positive != 1 || d.Negative != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("edge not applied")
	}
	// Label-mismatched edge: no match.
	d, err = e.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 0, V: 2})
	if err != nil || d.Positive != 0 {
		t.Fatalf("delta = %+v err=%v", d, err)
	}
}

func TestEngineDeletionDelta(t *testing.T) {
	e, g := engineFixture(t)
	if _, err := e.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	d, err := e.ProcessUpdate(context.Background(), stream.Update{Op: stream.DeleteEdge, U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Negative != 1 || d.Positive != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
}

func TestEngineRejectsBadUpdates(t *testing.T) {
	e, _ := engineFixture(t)
	if _, err := e.ProcessUpdate(context.Background(), stream.Update{Op: stream.DeleteEdge, U: 0, V: 1}); err == nil {
		t.Fatal("deleting a missing edge should error")
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	e, _ := engineFixture(t)
	s := stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 1},
		{Op: stream.AddEdge, U: 2, V: 3},
		{Op: stream.AddVertex, VLabel: 0},
	}
	st, err := e.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 3 || st.Positive != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ADSShare() < 0 || st.FindShare() < 0 || st.ADSShare()+st.FindShare() > 1.0001 {
		t.Fatalf("shares = %v + %v", st.ADSShare(), st.FindShare())
	}
	e.ResetStats()
	if e.Stats().Updates != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestEngineOnMatchCallback(t *testing.T) {
	e, _ := engineFixture(t)
	var got []graph.VertexID
	e.OnMatch = func(s *State, count uint64, positive bool) {
		got = append(got, s.Map[0], s.Map[1])
		if count != 1 || !positive {
			t.Errorf("count=%d positive=%v", count, positive)
		}
	}
	if _, err := e.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 2, V: 1}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("OnMatch saw %v", got)
	}
}

func TestEngineInitValidation(t *testing.T) {
	e := NewEngine(&pathAlgo{})
	if err := e.Init(nil, nil); err == nil {
		t.Fatal("nil Init accepted")
	}
}

// slowAlgo emits an unbounded search tree, to exercise the deadline path.
type slowAlgo struct{ pathAlgo }

func (a *slowAlgo) Expand(s *State, emit func(State)) {
	// Keep emitting depth-0-ish states forever by never reaching Terminal.
	child := *s
	emit(child)
}
func (a *slowAlgo) Terminal(*State) (uint64, bool) { return 0, false }

func TestEngineDeadline(t *testing.T) {
	g := graph.New(2)
	g.AddVertex(0)
	g.AddVertex(1)
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(&slowAlgo{})
	if err := e.Init(g, q); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := e.ProcessUpdate(ctx, stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
