package csm

import "testing"

// rebuildAlgo implements Rebuilder for interface-shape verification.
type rebuildAlgo struct {
	pathAlgo
	consistent bool
}

func (r *rebuildAlgo) RebuildADS() bool { return r.consistent }

func TestRebuilderInterface(t *testing.T) {
	var a Algorithm = &rebuildAlgo{consistent: true}
	reb, ok := a.(Rebuilder)
	if !ok {
		t.Fatal("rebuildAlgo does not satisfy Rebuilder")
	}
	if !reb.RebuildADS() {
		t.Fatal("RebuildADS = false")
	}
	// Plain pathAlgo must NOT satisfy Rebuilder (it has no ADS).
	var b Algorithm = &pathAlgo{}
	if _, ok := b.(Rebuilder); ok {
		t.Fatal("pathAlgo unexpectedly satisfies Rebuilder")
	}
}
