package csm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// ErrDeadline is returned by Run/ProcessUpdate when the context expires
// mid-enumeration; it is what the success-rate experiments count as a
// timeout.
var ErrDeadline = errors.New("csm: deadline exceeded during enumeration")

// Delta is the result of processing a single update ΔG: the incremental
// match counts ΔM plus instrumentation.
type Delta struct {
	Positive uint64 // newly appearing matches
	Negative uint64 // expired matches
	Nodes    uint64 // search-tree nodes visited
	TADS     time.Duration
	TFind    time.Duration
}

// Stats accumulates per-run instrumentation; it backs Table 3's breakdown
// (ADS update time vs Find Matches time).
type Stats struct {
	Updates  int
	Positive uint64
	Negative uint64
	Nodes    uint64
	TADS     time.Duration
	TFind    time.Duration
	TTotal   time.Duration
}

// ADSShare returns the fraction of total time spent updating the ADS.
func (s Stats) ADSShare() float64 {
	if s.TTotal <= 0 {
		return 0
	}
	return float64(s.TADS) / float64(s.TTotal)
}

// FindShare returns the fraction of total time spent finding matches.
func (s Stats) FindShare() float64 {
	if s.TTotal <= 0 {
		return 0
	}
	return float64(s.TFind) / float64(s.TTotal)
}

// MatchFunc observes a complete match. count is usually 1; counting-mode
// algorithms may report a leaf standing for count matches. positive is
// false for matches expiring due to a deletion.
type MatchFunc func(s *State, count uint64, positive bool)

// Engine drives a single Algorithm through Algorithm 1 of the paper,
// sequentially. It is the single-threaded baseline ParaCOSM is compared
// against, and the building block ParaCOSM's executors reuse for unsafe
// updates.
type Engine struct {
	algo Algorithm
	g    *graph.Graph
	q    *query.Graph

	// OnMatch, if non-nil, is invoked for every match found.
	OnMatch MatchFunc

	// checkEvery controls how often the deadline is polled during
	// enumeration (in search-tree nodes).
	checkEvery uint64

	stats Stats
}

// NewEngine creates an engine around algo. Init must be called before
// processing updates.
func NewEngine(algo Algorithm) *Engine {
	return &Engine{algo: algo, checkEvery: 4096}
}

// Algo returns the wrapped algorithm.
func (e *Engine) Algo() Algorithm { return e.algo }

// Graph returns the engine's data graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the engine's query graph.
func (e *Engine) Query() *query.Graph { return e.q }

// Stats returns accumulated instrumentation.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated instrumentation.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Init runs the offline stage (Build_ADS / Build_Match_Order).
func (e *Engine) Init(g *graph.Graph, q *query.Graph) error {
	if g == nil || q == nil {
		return fmt.Errorf("csm: nil graph or query")
	}
	e.g, e.q = g, q
	return e.algo.Build(g, q)
}

// ProcessUpdate executes one iteration of Algorithm 1's online loop.
// The update is applied to the data graph as a side effect. If the context
// expires during enumeration, the graph and ADS are still left consistent
// (the update is fully applied) but the returned Delta undercounts and err
// is ErrDeadline — matching the paper's timeout semantics where the run is
// marked unsuccessful.
func (e *Engine) ProcessUpdate(ctx context.Context, upd stream.Update) (Delta, error) {
	var d Delta
	var err error
	t0 := time.Now()
	switch upd.Op {
	case stream.AddEdge:
		if err = upd.Apply(e.g); err != nil {
			return d, err
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		d.TADS = time.Since(tA)
		tF := time.Now()
		d.Positive, d.Nodes, err = e.findMatches(ctx, upd, true)
		d.TFind = time.Since(tF)

	case stream.DeleteEdge:
		// Deletions enumerate first: negative matches only exist while
		// the edge is still present (§2.2).
		tF := time.Now()
		d.Negative, d.Nodes, err = e.findMatches(ctx, upd, false)
		d.TFind = time.Since(tF)
		if aerr := upd.Apply(e.g); aerr != nil {
			return d, aerr
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		d.TADS = time.Since(tA)

	case stream.AddVertex, stream.DeleteVertex:
		// Isolated-vertex updates cannot affect any match (§2.2); apply
		// and maintain the ADS, no search.
		if err = upd.Apply(e.g); err != nil {
			return d, err
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		d.TADS = time.Since(tA)

	default:
		return d, fmt.Errorf("csm: unknown op %v", upd.Op)
	}

	e.stats.Updates++
	e.stats.Positive += d.Positive
	e.stats.Negative += d.Negative
	e.stats.Nodes += d.Nodes
	e.stats.TADS += d.TADS
	e.stats.TFind += d.TFind
	e.stats.TTotal += time.Since(t0)
	return d, err
}

// Run processes the whole stream, aborting on context expiry.
func (e *Engine) Run(ctx context.Context, s stream.Stream) (Stats, error) {
	for i, upd := range s {
		if _, err := e.ProcessUpdate(ctx, upd); err != nil {
			return e.stats, fmt.Errorf("update %d (%v): %w", i, upd, err)
		}
	}
	return e.stats, nil
}

// findMatches traverses the search tree of upd depth-first (the function
// Find_Matches of Algorithm 1).
func (e *Engine) findMatches(ctx context.Context, upd stream.Update, positive bool) (total, nodes uint64, err error) {
	deadline, hasDeadline := ctx.Deadline()
	aborted := false
	var dfs func(s *State)
	dfs = func(s *State) {
		if aborted {
			return
		}
		nodes++
		if hasDeadline && nodes%e.checkEvery == 0 && time.Now().After(deadline) {
			aborted = true
			return
		}
		if c, done := e.algo.Terminal(s); done {
			total += c
			if e.OnMatch != nil {
				e.OnMatch(s, c, positive)
			}
			return
		}
		e.algo.Expand(s, func(child State) { dfs(&child) })
	}
	e.algo.Roots(upd, func(root State) { dfs(&root) })
	if aborted || (hasDeadline && ctx.Err() != nil) {
		return total, nodes, ErrDeadline
	}
	return total, nodes, nil
}
