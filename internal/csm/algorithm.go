package csm

import (
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Enumerator is the user-supplied search-tree traversal routine of the
// paper (§4): it exposes the search tree T of one update as Roots (the
// first layer) plus Expand (children of an inner node), so that both the
// sequential engine and ParaCOSM's inner-update executor can traverse it
// without knowing the algorithm's internals.
type Enumerator interface {
	// Roots emits the first-layer states of the search tree for upd: one
	// state per (query-edge orientation, endpoint assignment) that the
	// updated edge can seed. For insertions Roots is called after the
	// edge is in the graph and the ADS updated; for deletions before
	// either is touched (Algorithm 1's ordering).
	Roots(upd stream.Update, emit func(State))

	// Expand emits the children of s: all valid one-vertex extensions
	// along s's matching order. Expand must not retain s or the emitted
	// states after returning.
	Expand(s *State, emit func(State))

	// Terminal reports whether s is a leaf. When done, count is the
	// number of full matches the leaf represents (1 for ordinary
	// algorithms; CaLiG's counting mode can return the product of shell
	// candidate counts).
	Terminal(s *State) (count uint64, done bool)
}

// Algorithm is a complete CSM algorithm pluggable into both the sequential
// engine and ParaCOSM. Beyond the traversal routine it provides the
// offline build and the two ADS hooks ParaCOSM's inter-update classifier
// needs: incremental maintenance (UpdateADS) and the stage-3 candidate
// filter (AffectsADS).
type Algorithm interface {
	Enumerator

	// Name returns the algorithm's display name.
	Name() string

	// Build runs the offline stage on (g, q): constructing the auxiliary
	// data structure and matching orders. The algorithm keeps references
	// to g and q; all later calls are relative to them.
	Build(g *graph.Graph, q *query.Graph) error

	// UpdateADS incrementally maintains the auxiliary data structure
	// after the graph mutation upd has been applied to g (for both
	// insertions and deletions the engine mutates g first, then calls
	// UpdateADS).
	UpdateADS(upd stream.Update)

	// AffectsADS reports whether upd would change the auxiliary data
	// structure or could contribute to a match — ParaCOSM's stage-3
	// candidate filter. It must be conservative: returning false asserts
	// that processing upd cannot change the match set or the ADS.
	// AffectsADS is called before the update is applied and must not
	// mutate anything.
	AffectsADS(upd stream.Update) bool
}

// Rebuilder is implemented by algorithms whose ADS can be reconstructed
// from scratch; tests use it to cross-check incremental maintenance.
type Rebuilder interface {
	// RebuildADS recomputes the ADS from the current graph state and
	// reports whether the incremental state matched the rebuilt state.
	RebuildADS() (consistent bool)
}

// FootprintLocal marks algorithms eligible for the windowed executor's
// parallel waves (DESIGN.md §15). Implementing it asserts two properties
// the wave phases rely on:
//
//  1. Locality: all state read by Roots/Expand/Terminal and written by
//     UpdateADS for update u is associated with data vertices within u's
//     conflict footprint, so footprint-disjoint updates cannot observe
//     each other's ADS maintenance.
//  2. Reentrancy: Roots/Expand/Terminal may run concurrently for
//     distinct footprint-disjoint updates (per-call state lives in
//     csm.State or on the stack; shared counters are atomic).
//
// Algorithms that buffer global deltas in their ADS — SJ-Tree drains a
// window-order-dependent ΔM⁺ queue in Roots — must NOT implement it;
// the windowed executor then commits their updates serially (still
// benefiting from window coalescing), which is always sound.
type FootprintLocal interface {
	// FootprintLocalFind is a marker; implementations do nothing.
	FootprintLocalFind()
}
