package core

import (
	"context"
	"fmt"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// This file threads the batch-dynamic window (window.go) through the
// MultiEngine's apply-once/fan-out lockstep driver. The per-update loop
// of runSharedLocked pays two fan-out barriers per update; the windowed
// driver coalesces a window of updates, schedules the survivors into
// independent sets with the same conflict-footprint machinery as the
// single-engine executor, and commits a whole set per barrier pair:
//
//	fan out prepare(all members)  — read-only, wave-start state
//	apply every member's mutation — window order, driver only
//	fan out commit(all members)   — ADS + new-match enumeration
//
// Disjointness is computed against the union of all active queries'
// relevance masks with the largest query's radius, so every engine's
// reads and writes for one member stay inside that member's footprint
// and the wave is indistinguishable from its sequential execution for
// every query at once. OnDelta emission is deferred to window end and
// replayed in window order from the per-engine slot buffers.

// winDriver is the MultiEngine's reusable windowed-execution scratch.
type winDriver struct {
	coal    *stream.Coalescer
	buf     stream.Stream
	sched   waveScheduler
	labelOK []bool

	// Adaptive scheduler bypass, mirroring winScratch: fruitless probes
	// (no multi-update wave) back off exponentially to serial draining.
	skipSched int
	backoff   int
}

// winCurTask publishes the current wave to the persistent fan-out
// closures, under the same publication discipline as MultiEngine.fanCur.
type winCurTask struct {
	ctx     context.Context
	batch   stream.Stream
	members []int32
	n       int // coalesced window length, for the emission pass
	base    int // global stream offset of the window, for error messages
	src     []int32
}

// ensureWinDriverLocked lazily builds the driver scratch.
func (m *MultiEngine) ensureWinDriverLocked() *winDriver {
	if m.mwin == nil {
		m.mwin = &winDriver{coal: stream.NewCoalescer()}
	}
	return m.mwin
}

// winMask recomputes the conflict radius (the largest active query's
// vertex count) and the union relevance mask over the active queries.
// Labels no query mentions are irrelevant for every engine, so a BFS
// frontier that dies for the union dies for each query individually.
func (m *MultiEngine) winMaskLocked(active []*multiQuery) (radius int, labelOK []bool) {
	w := m.mwin
	mask := w.labelOK[:0]
	for _, mq := range active {
		q := mq.eng.q
		if q.NumVertices() > radius {
			radius = q.NumVertices()
		}
		for u := 0; u < q.NumVertices(); u++ {
			l := int(q.Label(query.VertexID(u)))
			for len(mask) <= l {
				mask = append(mask, false)
			}
			mask[l] = true
		}
	}
	w.labelOK = mask
	return radius, mask
}

// runSharedWindowedLocked is runSharedLocked's windowed mode: chunk s
// into windows of cfg.Window raw updates and commit each through
// processWindowLocked. Stops early when every query has failed or a
// trusted-stream apply error aborts the pass.
func (m *MultiEngine) runSharedWindowedLocked(ctx context.Context, s stream.Stream, bt *BatchTimes, idx []int) {
	m.ensureWinDriverLocked()
	if m.fanPrepareWin == nil {
		m.fanPrepareWin = func(mq *multiQuery) {
			cur := &m.winCur
			for _, j := range cur.members {
				mq.eng.sharedPrepareInto(cur.ctx, cur.batch[j], &mq.eng.sharedBuf[j])
			}
		}
		m.fanCommitWin = func(mq *multiQuery) {
			cur := &m.winCur
			for _, j := range cur.members {
				p := &mq.eng.sharedBuf[j]
				_, err := mq.eng.sharedCommitFrom(cur.ctx, cur.batch[j], p, false)
				p.err = err
				p.done = true
			}
		}
		m.fanEmitWin = func(mq *multiQuery) {
			cur := &m.winCur
			for j := 0; j < cur.n; j++ {
				p := &mq.eng.sharedBuf[j]
				if !p.done {
					continue
				}
				if mq.eng.cfg.OnDelta != nil {
					mq.eng.cfg.OnDelta(cur.batch[j], p.d, p.err != nil)
				}
				if p.err != nil && mq.err == nil {
					gi := cur.base + int(cur.src[j])
					mq.err = fmt.Errorf("update %d (%v): %w", gi, cur.batch[j], p.err)
				}
			}
		}
	}
	off := 0
	for off < len(s) {
		k := m.cfg.Window
		if k > len(s)-off {
			k = len(s) - off
		}
		if !m.processWindowLocked(ctx, s[off:off+k], off, bt, idx) {
			return
		}
		off += k
		compact := m.active[:0]
		for _, mq := range m.active {
			if mq.err == nil {
				compact = append(compact, mq)
			}
		}
		m.active = compact
		if len(m.active) == 0 {
			return
		}
	}
}

// processWindowLocked commits one window: coalesce, schedule into waves,
// and drive each wave through one prepare barrier, one window-order
// apply pass and one commit barrier. Returns false when the pass must
// abort (trusted-stream apply error). Stage spans for wave members are
// attributed per member (the per-wave span divided by the wave size);
// raw updates dropped by coalescing still observe all five per-update
// stages with zero prepare/commit/post durations, so stage sample counts
// keep matching the applied-update count.
func (m *MultiEngine) processWindowLocked(ctx context.Context, raw stream.Stream, rawOff int, bt *BatchTimes, idx []int) bool {
	w := m.mwin
	active := m.active
	tr := m.cfg.Tracer

	tC := time.Now()
	var cst stream.CoalesceStats
	w.buf, cst = w.coal.Coalesce(w.buf[:0], raw)
	coalesceCost := time.Since(tC)
	batch := w.buf
	n := len(batch)
	src := w.coal.Src()

	origIdx := func(rawI int) int {
		gi := rawOff + rawI
		if idx != nil {
			gi = idx[gi]
		}
		return gi
	}
	if tr != nil {
		// Coalesced-out raw updates never reach the lockstep loop but were
		// counted applied by the caller: observe their stages here (real
		// queue waits, zero engine-side durations) so counts reconcile.
		si := 0
		for i := range raw {
			for si < len(src) && int(src[si]) < i {
				si++
			}
			if si < len(src) && int(src[si]) == i {
				continue
			}
			wait, assemble := bt.stageWaits(origIdx(i))
			st := tr.Stages()
			st.Observe(obs.StageIngestWait, wait)
			st.Observe(obs.StageAssemble, assemble)
			st.Observe(obs.StagePreApply, 0)
			st.Observe(obs.StageCommit, 0)
			st.Observe(obs.StagePostApply, 0)
			tr.Stage(obs.Event{
				Op: raw[i].Op.String(), U: uint32(raw[i].U), V: uint32(raw[i].V),
				IngestWait: wait, Assemble: assemble,
				Total: wait + assemble,
			})
		}
	}
	if n == 0 {
		m.statsWinLocked(WindowCounters{Windows: 1, Coalesced: cst.Removed(), Annihilated: cst.AnnihilatedPairs})
		if tr != nil {
			st := tr.Stages()
			st.Observe(obs.StageCoalesce, coalesceCost)
			tr.Window(uint64(cst.Removed()), uint64(cst.AnnihilatedPairs), 0, 0)
		}
		return true
	}

	radius, labelOK := m.winMaskLocked(active)
	for _, mq := range active {
		buf := mq.eng.sharedBuf
		if cap(buf) < n {
			buf = make([]sharedPending, n)
		}
		buf = buf[:n]
		for j := range buf {
			buf[j] = sharedPending{}
		}
		mq.eng.sharedBuf = buf
	}
	m.winCur.ctx = ctx
	m.winCur.batch = batch
	m.winCur.n = n
	m.winCur.base = rawOff
	m.winCur.src = src

	wc := WindowCounters{Windows: 1, Coalesced: cst.Removed(), Annihilated: cst.AnnihilatedPairs}
	var conflictCost, parallelSpan time.Duration
	var clk obs.StageClock
	// One non-local algorithm (no csm.FootprintLocal) forces the whole
	// window serial: waves are shared across queries, and a wave that is
	// sound for every query but one is not a wave at all.
	local := true
	for _, mq := range active {
		if _, ok := mq.eng.algo.(csm.FootprintLocal); !ok {
			local = false
			break
		}
	}

	w.sched.reset(n)
	rounds, singles := 0, 0
	probe := true
	if !local {
		probe = false
		singles = winSingleCap // always the singleton-drain branch
	} else if w.skipSched > 0 {
		w.skipSched--
		probe = false
		singles = winSingleCap // forces the singleton-drain branch
	}
	for len(w.sched.pending) > 0 {
		var members []int32
		if rounds >= winRoundCap || singles >= winSingleCap {
			// Pathological conflict chain: drain the remainder as
			// singleton waves (the v1 per-update path) to bound cost.
			members = w.sched.pending[:1]
			w.sched.pending = w.sched.pending[1:]
		} else {
			rounds++
			tB := time.Now()
			members = w.sched.nextWave(m.g, batch, radius, m.cfg.FootprintCap, labelOK)
			conflictCost += time.Since(tB)
			if len(members) == 1 {
				singles++
			} else {
				singles = 0
			}
		}
		wc.Groups++
		if len(members) > wc.MaxGroup {
			wc.MaxGroup = len(members)
		}
		if len(members) == 1 {
			wc.FallbackSerial++
		} else {
			wc.UnsafeParallel += len(members)
		}
		m.winCur.members = members

		if tr != nil {
			clk.Start()
		}
		if len(members) == 1 && !batch[members[0]].IsEdge() {
			// Vertex ops have a trivial read-only phase; skip the barrier.
			for _, mq := range active {
				mq.eng.sharedBuf[members[0]] = sharedPending{verdict: classVertexOp}
			}
		} else {
			fanOut(active, m.fanPrepareWin)
		}
		var preApply time.Duration
		if tr != nil {
			preApply = clk.Lap()
		}
		for _, j := range members {
			if err := batch[j].Apply(m.g); err != nil {
				gi := rawOff + int(src[j])
				for _, mq := range active {
					mq.err = fmt.Errorf("update %d (%v): %w", gi, batch[j], err)
				}
				return false
			}
		}
		var commitSpan time.Duration
		if tr != nil {
			commitSpan = clk.Lap()
		}
		tP := time.Now()
		fanOut(active, m.fanCommitWin)
		if len(members) > 1 {
			parallelSpan += time.Since(tP)
		}
		if tr != nil {
			postApply := clk.Lap()
			per := time.Duration(len(members))
			for _, j := range members {
				wait, assemble := bt.stageWaits(origIdx(int(src[j])))
				st := tr.Stages()
				st.Observe(obs.StageIngestWait, wait)
				st.Observe(obs.StageAssemble, assemble)
				st.Observe(obs.StagePreApply, preApply/per)
				st.Observe(obs.StageCommit, commitSpan/per)
				st.Observe(obs.StagePostApply, postApply/per)
				tr.Stage(obs.Event{
					Op: batch[j].Op.String(), U: uint32(batch[j].U), V: uint32(batch[j].V),
					IngestWait: wait, Assemble: assemble, PreApply: preApply / per,
					Commit: commitSpan / per, PostApply: postApply / per,
					Total: wait + assemble + (preApply+commitSpan+postApply)/per,
				})
			}
		}
	}

	if probe {
		if wc.UnsafeParallel > 0 {
			w.backoff = 0
		} else {
			w.backoff = w.backoff*2 + 1
			if w.backoff > winSkipCap {
				w.backoff = winSkipCap
			}
			w.skipSched = w.backoff
		}
	}

	m.statsWinLocked(wc)
	if tr != nil {
		st := tr.Stages()
		st.Observe(obs.StageCoalesce, coalesceCost)
		st.Observe(obs.StageConflictBuild, conflictCost)
		st.Observe(obs.StageParallelUnsafe, parallelSpan)
		tr.Window(uint64(wc.Coalesced), uint64(wc.Annihilated), uint64(wc.UnsafeParallel), uint64(wc.FallbackSerial))
		tr.Stage(obs.Event{
			Op: obs.OpWindow, Coalesce: coalesceCost, ConflictBuild: conflictCost,
			ParallelUnsafe: parallelSpan, Total: coalesceCost + conflictCost + parallelSpan,
		})
	}

	// Deferred emission, in window order, per engine (queries fan out
	// concurrently; within one query the loop is serial, preserving the
	// OnDelta serialization contract).
	fanOut(active, m.fanEmitWin)
	return true
}

// statsWinLocked folds one window's counters into the driver tally.
func (m *MultiEngine) statsWinLocked(wc WindowCounters) {
	m.winStats.Add(wc)
}

// WindowCounters returns the driver-level batch-dynamic counters: one
// tally per shared-graph window, counted once per update rather than per
// query. Zero-valued unless Config.Window > 1.
func (m *MultiEngine) WindowCounters() WindowCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.winStats
}
