package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/graph"
	"paracosm/internal/stream"
)

// TestProcessBatchLoggedPersistSeesValidSubsequence checks the
// write-ahead hook contract: persist observes exactly the validated
// subsequence (invalid updates filtered out), before any engine applies
// it, and the applied count matches what persist saw.
func TestProcessBatchLoggedPersistSeesValidSubsequence(t *testing.T) {
	g := graph.New(0)
	for i := 0; i < 4; i++ {
		g.AddVertex(1)
	}
	m := NewMulti()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	batch := stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 1, ELabel: 2},
		{Op: stream.AddEdge, U: 0, V: 1, ELabel: 2}, // duplicate: invalid
		{Op: stream.DeleteEdge, U: 2, V: 3},         // no such edge: invalid
		{Op: stream.AddEdge, U: 2, V: 3, ELabel: 5},
	}
	var logged []string
	applied, err := m.ProcessBatchLogged(context.Background(), batch, nil, func(s stream.Stream) error {
		for _, u := range s {
			logged = append(logged, u.String())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	want := []string{"+e 0 1 2", "+e 2 3 5"}
	if len(logged) != len(want) || logged[0] != want[0] || logged[1] != want[1] {
		t.Fatalf("persist saw %v, want %v", logged, want)
	}
	// Init clones the caller's graph, so inspect the engine's own copy.
	if err := m.ExportState(func(eg *graph.Graph, _ []QueryExport) error {
		if !eg.HasEdge(0, 1) || !eg.HasEdge(2, 3) {
			t.Fatal("valid updates not applied")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestProcessBatchLoggedPersistErrorRollsBack checks the atomicity half:
// a persist failure aborts the batch with (0, err) and the shared graph
// is byte-identical to its pre-batch state.
func TestProcessBatchLoggedPersistErrorRollsBack(t *testing.T) {
	g := graph.New(0)
	for i := 0; i < 3; i++ {
		g.AddVertex(1)
	}
	g.AddEdge(0, 1, 9)
	m := NewMulti()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	batch := stream.Stream{
		{Op: stream.AddEdge, U: 1, V: 2, ELabel: 3},
		{Op: stream.DeleteEdge, U: 0, V: 1},
	}
	applied, err := m.ProcessBatchLogged(context.Background(), batch, nil, func(stream.Stream) error {
		return boom
	})
	if applied != 0 || !errors.Is(err, boom) {
		t.Fatalf("got (%d, %v), want (0, disk full)", applied, err)
	}
	if err := m.ExportState(func(eg *graph.Graph, _ []QueryExport) error {
		if eg.HasEdge(1, 2) || !eg.HasEdge(0, 1) {
			t.Fatal("failed batch left the graph mutated")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The engine is still serviceable: the same batch goes through once
	// persist recovers.
	applied, err = m.ProcessBatchLogged(context.Background(), batch, nil, func(stream.Stream) error { return nil })
	if err != nil || applied != 2 {
		t.Fatalf("retry: (%d, %v), want (2, nil)", applied, err)
	}
}

// TestProcessBatchLoggedWithQueries runs the hook against live engines:
// persist must fire before the fan-out, and totals must match an
// unhooked run of the same stream.
func TestProcessBatchLoggedWithQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := algotest.RandomGraph(rng, 20, 40, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 30, 0.7, 1)
	f := algotest.Factories()[4] // Symbi

	run := func(persist func(stream.Stream) error) Stats {
		m := NewMulti(Threads(2))
		m.Register("q", f.New(), q)
		if err := m.Init(g.Clone()); err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		for off := 0; off < len(s); off += 7 {
			end := off + 7
			if end > len(s) {
				end = len(s)
			}
			if _, err := m.ProcessBatchLogged(context.Background(), s[off:end], nil, persist); err != nil {
				t.Fatal(err)
			}
		}
		return m.Stats()["q"]
	}

	persisted := 0
	hooked := run(func(s stream.Stream) error { persisted += len(s); return nil })
	plain := run(nil)
	if hooked.Updates != plain.Updates || hooked.Positive != plain.Positive || hooked.Negative != plain.Negative {
		t.Fatalf("hooked stats %+v != plain %+v", hooked, plain)
	}
	if persisted == 0 {
		t.Fatal("persist never saw an update")
	}
}

// TestRegisterLiveLoggedPersistErrorUnwinds checks a failed persist
// leaves no trace: the query is not registered, and the same name can
// register again once persist succeeds.
func TestRegisterLiveLoggedPersistErrorUnwinds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := algotest.RandomGraph(rng, 15, 30, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	f := algotest.Factories()[4]
	m := NewMulti()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	boom := errors.New("wal closed")
	err := m.RegisterLiveLogged("q", f.New(), q, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("RegisterLiveLogged = %v, want wal closed", err)
	}
	if m.NumQueries() != 0 {
		t.Fatalf("NumQueries after failed register = %d, want 0", m.NumQueries())
	}
	called := false
	if err := m.RegisterLiveLogged("q", f.New(), q, func() error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !called || m.NumQueries() != 1 {
		t.Fatalf("re-register: called=%v, NumQueries=%d", called, m.NumQueries())
	}
	// A duplicate name fails before persist runs — nothing must be logged
	// for a registration that cannot take effect.
	if err := m.RegisterLiveLogged("q", f.New(), q, func() error {
		t.Error("persist called for duplicate registration")
		return nil
	}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// TestDeregisterLoggedHook checks the deregistration hook: unknown names
// log nothing, persist failures keep the query live, success removes it.
func TestDeregisterLoggedHook(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := algotest.RandomGraph(rng, 15, 30, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	f := algotest.Factories()[4]
	m := NewMulti()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.RegisterLive("q", f.New(), q); err != nil {
		t.Fatal(err)
	}

	ok, err := m.DeregisterLogged("ghost", func() error {
		t.Error("persist called for unknown query")
		return nil
	})
	if ok || err != nil {
		t.Fatalf("unknown deregister = (%v, %v), want (false, nil)", ok, err)
	}

	boom := errors.New("wal closed")
	ok, err = m.DeregisterLogged("q", func() error { return boom })
	if ok || !errors.Is(err, boom) {
		t.Fatalf("failed deregister = (%v, %v), want (false, wal closed)", ok, err)
	}
	if m.NumQueries() != 1 {
		t.Fatal("failed deregister removed the query")
	}

	ok, err = m.DeregisterLogged("q", func() error { return nil })
	if !ok || err != nil {
		t.Fatalf("deregister = (%v, %v), want (true, nil)", ok, err)
	}
	if m.NumQueries() != 0 {
		t.Fatal("query still registered")
	}
}

// TestExportStateAndSeedStats checks the snapshot read path and the
// recovery write path compose: export a cut, seed a fresh engine with
// the exported baseline, and totals continue from it.
func TestExportStateAndSeedStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := algotest.RandomGraph(rng, 20, 40, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 25, 0.7, 1)
	f := algotest.Factories()[4]

	m := NewMulti()
	if err := m.Init(g.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("q", f.New(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ProcessBatch(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	var exported []QueryExport
	var slots int
	if err := m.ExportState(func(eg *graph.Graph, qs []QueryExport) error {
		slots = eg.NumVertices()
		exported = append([]QueryExport(nil), qs...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if len(exported) != 1 || exported[0].Name != "q" {
		t.Fatalf("exported %+v", exported)
	}
	if exported[0].Stats.Updates == 0 {
		t.Fatal("exported stats empty")
	}
	if slots == 0 {
		t.Fatal("exported graph empty")
	}

	// Recovery: a fresh engine seeded with the exported baseline reports
	// cumulative totals as if it had processed the pre-crash stream.
	m2 := NewMulti()
	if err := m2.Init(algotest.RandomGraph(rng, 5, 5, 1, 1)); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if err := m2.RegisterLive("q", f.New(), q); err != nil {
		t.Fatal(err)
	}
	m2.Engine("q").SeedStats(exported[0].Stats)
	got := m2.Stats()["q"]
	want := exported[0].Stats
	if got.Updates != want.Updates || got.Positive != want.Positive ||
		got.Negative != want.Negative || got.Nodes != want.Nodes {
		t.Fatalf("seeded stats %+v != exported %+v", got, want)
	}

	ex := NewMulti()
	if err := ex.ExportState(func(*graph.Graph, []QueryExport) error { return nil }); err == nil {
		t.Fatal("ExportState before Init accepted")
	}
}
