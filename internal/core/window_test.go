package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// winDeltaRec is one OnDelta observation tagged with its update, so
// windowed and oracle sequences can be compared update-for-update.
type winDeltaRec struct {
	op       stream.Op
	u, v     graph.VertexID
	pos, neg uint64
	timeout  bool
}

// runWithDeltas runs one engine over s and returns its stats, delta
// sequence, and the post-run graph (the engine mutates the graph it was
// initialized with).
func runWithDeltas(t *testing.T, algo csm.Algorithm, g *graph.Graph, q *query.Graph, s stream.Stream, opts ...Option) (Stats, []winDeltaRec, *graph.Graph) {
	t.Helper()
	var seq []winDeltaRec
	opts = append(append([]Option(nil), opts...), WithOnDelta(func(upd stream.Update, d csm.Delta, timeout bool) {
		seq = append(seq, winDeltaRec{upd.Op, upd.U, upd.V, d.Positive, d.Negative, timeout})
	}))
	eng := New(algo, opts...)
	defer eng.Close()
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return st, seq, g
}

// coalesceChunks folds s into the oracle stream the windowed executor
// commits: each window-sized chunk coalesced independently, using the
// same Coalescer the engine does.
func coalesceChunks(s stream.Stream, window int) stream.Stream {
	c := stream.NewCoalescer()
	var out stream.Stream
	for off := 0; off < len(s); off += window {
		hi := off + window
		if hi > len(s) {
			hi = len(s)
		}
		out, _ = c.Coalesce(out, s[off:hi])
	}
	return out
}

// graphFingerprint summarizes a graph's live structure for equality
// checks: live vertex labels plus every sorted adjacency list.
func graphFingerprint(g *graph.Graph) string {
	out := make([]string, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if !g.Alive(graph.VertexID(v)) {
			continue
		}
		ns := append([]graph.Neighbor(nil), g.Neighbors(graph.VertexID(v))...)
		sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
		out = append(out, fmt.Sprintf("%d/%d:%v", v, g.Label(graph.VertexID(v)), ns))
	}
	return fmt.Sprint(out)
}

// checkWindowedOracle runs s through a windowed engine and checks it
// against the sequential oracle: the delta sequence must equal a
// per-update (v1) run over the coalesced stream, and the final graph and
// net totals must equal a v1 run over the raw stream (coalescing elides
// transient within-window matches, so only the NET totals are
// raw-comparable — see DESIGN.md §15).
func checkWindowedOracle(t *testing.T, f algotest.Factory, g *graph.Graph, q *query.Graph, s stream.Stream, window int, extra ...Option) Stats {
	t.Helper()
	opts := append([]Option{Threads(4), BatchSize(8)}, extra...)

	oracleStream := coalesceChunks(s, window)
	_, wantSeq, wantG := runWithDeltas(t, f.New(), g.Clone(), q, oracleStream, opts...)
	rawSt, _, rawG := runWithDeltas(t, f.New(), g.Clone(), q, s, opts...)

	winOpts := append(append([]Option(nil), opts...), Window(window))
	gotSt, gotSeq, gotG := runWithDeltas(t, f.New(), g.Clone(), q, s, winOpts...)

	if len(gotSeq) != len(wantSeq) {
		t.Fatalf("%s w=%d: windowed emitted %d deltas, oracle %d", f.Name, window, len(gotSeq), len(wantSeq))
	}
	for i := range gotSeq {
		if gotSeq[i] != wantSeq[i] {
			t.Fatalf("%s w=%d: delta %d: windowed %+v, oracle %+v", f.Name, window, i, gotSeq[i], wantSeq[i])
		}
	}
	if got, want := graphFingerprint(gotG), graphFingerprint(wantG); got != want {
		t.Fatalf("%s w=%d: windowed final graph diverges from coalesced oracle", f.Name, window)
	}
	if got, want := graphFingerprint(gotG), graphFingerprint(rawG); got != want {
		t.Fatalf("%s w=%d: windowed final graph diverges from raw replay", f.Name, window)
	}
	gotNet := int64(gotSt.Positive) - int64(gotSt.Negative)
	rawNet := int64(rawSt.Positive) - int64(rawSt.Negative)
	if gotNet != rawNet {
		t.Fatalf("%s w=%d: windowed net matches %d, raw replay %d", f.Name, window, gotNet, rawNet)
	}
	if gotSt.Window.Windows == 0 {
		t.Fatalf("%s w=%d: windowed run recorded no windows", f.Name, window)
	}
	return gotSt
}

// TestWindowedOracleRandom is the core equality proof for the
// batch-dynamic executor: random mixed streams, several window sizes,
// two backends. Run under -race this also exercises the concurrent wave
// find phases.
func TestWindowedOracleRandom(t *testing.T) {
	for _, fi := range []int{2, 5} { // GraphFlow, Symbi
		f := algotest.Factories()[fi]
		for _, seed := range []int64{7, 19} {
			rng := rand.New(rand.NewSource(seed))
			g := algotest.RandomGraph(rng, 30, 70, 2, 1)
			q := algotest.RandomQuery(rng, g, 3)
			if q == nil {
				t.Skip("no query")
			}
			s := algotest.RandomStream(rng, g, 80, 0.6, 1)
			for _, w := range []int{4, 16, 64} {
				checkWindowedOracle(t, f, g, q, s, w)
			}
		}
	}
}

// TestWindowedOracleAnnihilation: a window stuffed with exact
// insert/delete pairs must annihilate them (no enumeration, no deltas
// for the dropped pairs) and still match the sequential oracle.
func TestWindowedOracleAnnihilation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := algotest.RandomGraph(rng, 24, 40, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	// Interleave churn pairs (+e x,y then -e x,y on fresh vertex pairs)
	// with a few real updates from the random generator.
	real := algotest.RandomStream(rng, g, 10, 0.7, 1)
	var s stream.Stream
	for i, upd := range real {
		u := graph.VertexID(rng.Intn(g.NumVertices()))
		v := graph.VertexID(rng.Intn(g.NumVertices()))
		if u != v && !g.HasEdge(u, v) {
			s = append(s,
				stream.Update{Op: stream.AddEdge, U: u, V: v},
				stream.Update{Op: stream.DeleteEdge, U: u, V: v})
		}
		_ = i
		s = append(s, upd)
	}
	st := checkWindowedOracle(t, algotest.Factories()[2], g, q, s, 32)
	if st.Window.Annihilated == 0 {
		t.Fatalf("expected annihilated pairs, got %+v", st.Window)
	}
}

// TestWindowedOracleVertexOps: vertex ops mid-window are barriers — the
// coalescer may not fold across them and the scheduler must commit them
// alone — and the result still matches the oracle.
func TestWindowedOracleVertexOps(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := algotest.RandomGraph(rng, 24, 50, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	edges := algotest.RandomStream(rng, g, 30, 0.6, 1)
	var s stream.Stream
	for i, upd := range edges {
		s = append(s, upd)
		if i%7 == 3 {
			s = append(s, stream.Update{Op: stream.AddVertex, VLabel: graph.Label(i % 2)})
		}
	}
	checkWindowedOracle(t, algotest.Factories()[2], g, q, s, 16)
}

// TestWindowedOracleFootprintCapFallback: FootprintCap(1) forces every
// footprint to overflow, so every update must take the serial fallback —
// and the run must still match the oracle exactly.
func TestWindowedOracleFootprintCapFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := algotest.RandomGraph(rng, 24, 50, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 50, 0.6, 1)
	st := checkWindowedOracle(t, algotest.Factories()[2], g, q, s, 16, FootprintCap(1))
	if st.Window.UnsafeParallel != 0 {
		t.Fatalf("cap 1 must force serial commits, got %+v", st.Window)
	}
	if st.Window.FallbackSerial == 0 {
		t.Fatalf("no serial fallbacks recorded: %+v", st.Window)
	}
}

// TestMultiWindowedOracle proves the shared-graph windowed driver
// equivalent to per-query private replays over the coalesced stream:
// every query must observe exactly the deltas of a v1 run over its own
// clone, and the driver counters must record the windows.
func TestMultiWindowedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := algotest.RandomGraph(rng, 28, 60, 2, 1)
	qA := algotest.RandomQuery(rng, g, 3)
	qB := algotest.RandomQuery(rng, g, 4)
	if qA == nil || qB == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 64, 0.6, 1)
	const window = 16
	fGF := algotest.Factories()[2]
	fSY := algotest.Factories()[5]
	opts := []Option{Threads(2), BatchSize(4), Window(window)}

	got := map[string][]winDeltaRec{}
	m := NewMulti(opts...)
	defer m.Close()
	m.OnDelta = func(name string, upd stream.Update, d csm.Delta, timeout bool) {
		got[name] = append(got[name], winDeltaRec{upd.Op, upd.U, upd.V, d.Positive, d.Negative, timeout})
	}
	m.Register("A", fGF.New(), qA)
	m.Register("B", fSY.New(), qB)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}

	oracle := coalesceChunks(s, window)
	refs := []struct {
		name string
		algo csm.Algorithm
		q    *query.Graph
	}{{"A", fGF.New(), qA}, {"B", fSY.New(), qB}}
	for _, ref := range refs {
		_, wantSeq, _ := runWithDeltas(t, ref.algo, g.Clone(), ref.q, oracle, Threads(2), BatchSize(4))
		if len(got[ref.name]) != len(wantSeq) {
			t.Fatalf("%s: shared windowed emitted %d deltas, oracle %d", ref.name, len(got[ref.name]), len(wantSeq))
		}
		for i := range wantSeq {
			if got[ref.name][i] != wantSeq[i] {
				t.Fatalf("%s: delta %d: shared %+v, oracle %+v", ref.name, i, got[ref.name][i], wantSeq[i])
			}
		}
	}
	wc := m.WindowCounters()
	if wc.Windows != (len(s)+window-1)/window {
		t.Fatalf("driver counted %d windows, want %d", wc.Windows, (len(s)+window-1)/window)
	}
	if wc.Groups == 0 {
		t.Fatalf("driver recorded no groups: %+v", wc)
	}
}

// disjointComponentsFixture builds K disconnected path components
// (labels 0-1-0, pre-edge v0-v1) and a stream whose inserts complete the
// path in distinct components — pairwise-disjoint conflict footprints by
// construction, so the scheduler must form multi-update waves.
func disjointComponentsFixture(k int) (*graph.Graph, *query.Graph, stream.Stream) {
	g := graph.New(3 * k)
	for i := 0; i < k; i++ {
		g.AddVertex(0)
		g.AddVertex(1)
		g.AddVertex(0)
		g.AddEdge(graph.VertexID(3*i), graph.VertexID(3*i+1), 0)
	}
	q := query.MustNew([]graph.Label{0, 1, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		panic(err)
	}
	var s stream.Stream
	for i := 0; i < k; i++ {
		s = append(s, stream.Update{Op: stream.AddEdge, U: graph.VertexID(3*i + 1), V: graph.VertexID(3*i + 2)})
	}
	for i := 0; i < k; i++ {
		s = append(s, stream.Update{Op: stream.DeleteEdge, U: graph.VertexID(3*i + 1), V: graph.VertexID(3*i + 2)})
	}
	return g, q, s
}

// TestWindowedOracleDisjointComponents guards the parallel wave path
// itself: with disconnected components the footprints cannot conflict,
// so both the insert window and the delete window must commit as
// multi-update waves (under -race this exercises the concurrent
// find_pos/find_neg phases), and the result must still match the
// sequential oracle.
func TestWindowedOracleDisjointComponents(t *testing.T) {
	const k = 12
	for _, fi := range []int{2, 5} { // GraphFlow, Symbi
		f := algotest.Factories()[fi]
		g, q, s := disjointComponentsFixture(k)
		st := checkWindowedOracle(t, f, g, q, s, k)
		if st.Window.UnsafeParallel == 0 {
			t.Fatalf("%s: disjoint components formed no parallel wave: %+v", f.Name, st.Window)
		}
		if st.Window.MaxGroup < 2 {
			t.Fatalf("%s: max group %d, want >= 2: %+v", f.Name, st.Window.MaxGroup, st.Window)
		}
	}
}

// TestMultiWindowedDisjointComponents is the shared-driver analogue:
// two standing queries over the disjoint-component graph must still
// commit whole independent sets per barrier (MaxGroup > 1) and match
// their private sequential replays.
func TestMultiWindowedDisjointComponents(t *testing.T) {
	const k = 10
	g, q, s := disjointComponentsFixture(k)
	fGF := algotest.Factories()[2]
	fSY := algotest.Factories()[5]

	got := map[string][]winDeltaRec{}
	m := NewMulti(Threads(2), BatchSize(4), Window(k))
	defer m.Close()
	m.OnDelta = func(name string, upd stream.Update, d csm.Delta, timeout bool) {
		got[name] = append(got[name], winDeltaRec{upd.Op, upd.U, upd.V, d.Positive, d.Negative, timeout})
	}
	m.Register("A", fGF.New(), q)
	m.Register("B", fSY.New(), q)
	if err := m.Init(g.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}

	oracle := coalesceChunks(s, k)
	for name, algo := range map[string]csm.Algorithm{"A": fGF.New(), "B": fSY.New()} {
		_, wantSeq, _ := runWithDeltas(t, algo, g.Clone(), q, oracle, Threads(2), BatchSize(4))
		if len(got[name]) != len(wantSeq) {
			t.Fatalf("%s: shared windowed emitted %d deltas, oracle %d", name, len(got[name]), len(wantSeq))
		}
		for i := range wantSeq {
			if got[name][i] != wantSeq[i] {
				t.Fatalf("%s: delta %d: shared %+v, oracle %+v", name, i, got[name][i], wantSeq[i])
			}
		}
	}
	wc := m.WindowCounters()
	if wc.UnsafeParallel == 0 || wc.MaxGroup < 2 {
		t.Fatalf("shared driver formed no parallel wave: %+v", wc)
	}
}

// TestWindowedOracleNonLocalSerial: SJ-Tree drains a window-order-
// dependent ΔM⁺ queue in Roots, so it must not implement
// csm.FootprintLocal — and the windowed executor must therefore never
// form a parallel wave for it, even over perfectly disjoint components,
// while still matching the sequential oracle (serial + coalescing only).
func TestWindowedOracleNonLocalSerial(t *testing.T) {
	f := algotest.Factories()[4] // SJ-Tree
	if _, ok := f.New().(csm.FootprintLocal); ok {
		t.Fatalf("%s implements FootprintLocal; this test needs a non-local algorithm", f.Name)
	}
	g, q, s := disjointComponentsFixture(8)
	st := checkWindowedOracle(t, f, g, q, s, 8)
	if st.Window.UnsafeParallel != 0 {
		t.Fatalf("non-local algorithm was scheduled into a parallel wave: %+v", st.Window)
	}
	if st.Window.FallbackSerial == 0 {
		t.Fatalf("no serial commits recorded: %+v", st.Window)
	}
}
