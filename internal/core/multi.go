package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// MultiEngine runs many continuous queries against the same update stream.
// It adds the third, coarsest level of parallelism — across queries — on
// top of ParaCOSM's inner-update and inter-update levels; this is the
// batch-level parallelism of Mnemonic (Table 1), generalized so that each
// query still benefits from the finer two levels internally.
//
// All queries share ONE data graph; per-query state is index state only
// (each algorithm's ADS plus engine scratch), so memory is
// O(|G| + Σ index) instead of the O(queries × |G|) a clone-per-query
// design costs, and registering a query is O(index build), not O(|G|)
// copy. The stream is processed in lockstep: for each update every query
// first runs its read-only pre-apply phase (classification, and expiring-
// match enumeration for deletions), the update is applied to the shared
// graph exactly once, then every query runs its post-apply phase (ADS
// maintenance, new-match enumeration). The phases only read the graph, so
// queries never contend beyond the two fan-out barriers per update. See
// DESIGN.md §13 for the full contract.
//
// Two operating modes coexist:
//
//   - Batch: Register every query up front, Init, then Run the whole
//     stream once (the CLI / bench path).
//
//   - Serving: Init (possibly with zero queries), then interleave
//     ProcessBatch with RegisterLive/Deregister as long-lived clients
//     come and go (the internal/server path). The shared graph always
//     holds the exact post-batch state (Run maintains it too), so a
//     query registered mid-stream starts from the registration point.
//
// All exported methods are safe for concurrent use; Run and ProcessBatch
// hold the engine lock for their whole duration, so registration changes
// serialize with stream processing at batch granularity.
type MultiEngine struct {
	cfg Config

	// OnDelta, if non-nil, observes every processed update's incremental
	// result for every registered query — the fan-in point the serving
	// layer subscribes to. Set it before Init (or before the RegisterLive
	// that should observe it); per-query invocations are serialized, but
	// different queries invoke it concurrently during Run/ProcessBatch,
	// so the callback must be safe for concurrent use.
	OnDelta func(query string, upd stream.Update, d csm.Delta, timeout bool)

	mu      sync.Mutex
	queries []*multiQuery // guarded by mu
	g       *graph.Graph  // guarded by mu — THE shared data graph (engines read it during fan-out, while mu is held by the driver)
	undo    graph.UndoLog // guarded by mu — scratch journal for ProcessBatch's speculative validation
	closed  Stats         // guarded by mu — retained tally of deregistered queries' Stats
	closedN int           // guarded by mu — number of deregistered queries folded into closed
}

type multiQuery struct {
	name string
	algo csm.Algorithm
	q    *query.Graph
	eng  *Engine
	err  error
}

// NewMulti creates an empty multi-query engine; opts configure every
// per-query engine identically.
func NewMulti(opts ...Option) *MultiEngine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.normalize()
	return &MultiEngine{cfg: cfg}
}

// Register adds a continuous query under a display name. Must be called
// before Init; use RegisterLive afterwards.
func (m *MultiEngine) Register(name string, algo csm.Algorithm, q *query.Graph) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries = append(m.queries, &multiQuery{name: name, algo: algo, q: q})
}

// NumQueries returns the number of registered queries.
func (m *MultiEngine) NumQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queries)
}

// Init clones g once into the engine's shared data graph (the caller's g
// is never retained or mutated) and builds every pre-registered query's
// index over it. Zero pre-registered queries is valid (the serving mode
// starts empty and registers live).
func (m *MultiEngine) Init(g *graph.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.g = g.Clone()
	for _, mq := range m.queries {
		if err := m.initQueryLocked(mq); err != nil {
			return err
		}
	}
	return nil
}

// initQueryLocked builds mq's engine and index over the shared graph.
func (m *MultiEngine) initQueryLocked(mq *multiQuery) error {
	mq.eng = New(mq.algo)
	mq.eng.cfg = m.cfg
	if m.OnDelta != nil {
		// One closure per query, built once at registration: tags the
		// query name onto the engine-level callback. The driver serializes
		// the shared phases per query, so per-query calls are serialized.
		name := mq.name
		mq.eng.cfg.OnDelta = func(upd stream.Update, d csm.Delta, timeout bool) {
			m.OnDelta(name, upd, d, timeout)
		}
	}
	if err := mq.eng.Init(m.g, mq.q); err != nil {
		return fmt.Errorf("query %q: %w", mq.name, err)
	}
	return nil
}

// RegisterLive adds a query after Init: its index is built over the shared
// graph, i.e. the state after every update processed so far, so the
// query's incremental results start exactly at the registration point.
// The cost is one index build — no graph copy. Names must be unique among
// live queries.
func (m *MultiEngine) RegisterLive(name string, algo csm.Algorithm, q *query.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return fmt.Errorf("core: RegisterLive before Init")
	}
	if m.findLocked(name) != nil {
		return fmt.Errorf("core: query %q already registered", name)
	}
	mq := &multiQuery{name: name, algo: algo, q: q}
	if err := m.initQueryLocked(mq); err != nil {
		return err
	}
	m.queries = append(m.queries, mq)
	return nil
}

// Deregister removes a query and closes its engine (joining its worker
// pool), so the serving layer can drop a query when its owning connection
// goes away without tearing down the engine. The dropped query's
// cumulative Stats are folded into the retained closed tally (see
// ClosedStats), so aggregate totals stay monotonic across disconnects.
// Idempotent: deregistering an unknown name reports false and does
// nothing. The remaining queries are untouched and processing continues
// normally.
func (m *MultiEngine) Deregister(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, mq := range m.queries {
		if mq.name == name {
			if mq.eng != nil {
				m.closed.Add(mq.eng.Stats())
				m.closedN++
				mq.eng.Close()
			}
			m.queries = append(m.queries[:i], m.queries[i+1:]...)
			return true
		}
	}
	return false
}

func (m *MultiEngine) findLocked(name string) *multiQuery {
	for _, mq := range m.queries {
		if mq.name == name {
			return mq
		}
	}
	return nil
}

// Run processes the whole stream through every query in lockstep and
// keeps the shared graph at the post-stream state (so RegisterLive works
// after Run as well as after ProcessBatch). Per-query failures (e.g.
// deadline) are recorded and returned as one combined error — every
// failed query contributes, joined with errors.Join — while successful
// queries keep their full results. Recorded errors are cleared once
// reported, so a failure in one Run never resurfaces from a later call.
//
// Unlike ProcessBatch, Run treats the stream as trusted: an update that
// does not apply cleanly aborts the run and fails every remaining query
// with that update's error.
func (m *MultiEngine) Run(ctx context.Context, s stream.Stream) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return fmt.Errorf("core: Run before Init")
	}
	m.runSharedLocked(ctx, s)
	return m.collectErrsLocked()
}

// ProcessBatch is the serving-mode ingestion step. Validation is a
// speculative apply against the live shared graph: every update is
// applied in order with its inverse recorded in the undo journal (an
// update is valid iff it applies cleanly, and validity of update i
// depends on updates < i being applied), the journal is rolled back to
// the pre-batch state, and the valid subsequence is then processed in
// lockstep — pre-apply fan-out, one shared apply, post-apply fan-out per
// update. Updates that do not apply cleanly (duplicate edge, missing
// edge, dead or non-isolated vertex) are filtered out before dispatch —
// applied counts the updates that went through, len(batch)-applied were
// rejected — so a malformed update from one client cannot desynchronize
// the engines or crash the service.
//
// ProcessBatch is intended to run without a context deadline (the serving
// layer bounds work by batch size instead). If ctx does carry a deadline
// and a query times out mid-batch, that query's index lags the shared
// graph and the MultiEngine should be discarded. The combined per-query
// error (errors.Join, as in Run) is returned and the recorded errors are
// cleared.
func (m *MultiEngine) ProcessBatch(ctx context.Context, batch stream.Stream) (applied int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return 0, fmt.Errorf("core: ProcessBatch before Init")
	}
	m.undo.Reset()
	valid := batch[:0:0]
	for _, upd := range batch {
		if upd.ApplyLogged(m.g, &m.undo) == nil {
			valid = append(valid, upd)
		}
	}
	if len(valid) == 0 {
		return 0, nil
	}
	if len(m.queries) == 0 {
		// No queries to drive: the speculative apply already left the
		// shared graph at the post-batch state, so keep it.
		m.undo.Reset()
		return len(valid), nil
	}
	m.undo.Rollback(m.g)
	m.runSharedLocked(ctx, valid)
	return len(valid), m.collectErrsLocked()
}

// runSharedLocked drives s through every registered query in lockstep:
// per update, fan out the read-only pre-apply phase, apply the update to
// the shared graph exactly once, then fan out the post-apply phase. All
// queries therefore observe the identical graph state around every
// update — the apply-once/fan-out contract of DESIGN.md §13. A query
// whose engine reports an error is skipped for the remainder of the call
// (its index no longer tracks the shared graph); the error is left in
// mq.err for collectErrsLocked.
func (m *MultiEngine) runSharedLocked(ctx context.Context, s stream.Stream) {
	active := make([]*multiQuery, 0, len(m.queries))
	for _, mq := range m.queries {
		if mq.err == nil {
			active = append(active, mq)
		}
	}
	// Simulated-time budget, as in Engine.Run: under schedule simulation a
	// context deadline is interpreted against accumulated simulated time.
	var simBudget time.Duration
	if dl, ok := ctx.Deadline(); ok && m.cfg.Simulate {
		simBudget = time.Until(dl)
		for _, mq := range active {
			mq.eng.simBudget = simBudget
		}
		defer func() {
			for _, mq := range m.queries {
				if mq.eng != nil {
					mq.eng.simBudget = 0
				}
			}
		}()
	}
	for i, upd := range s {
		if len(active) == 0 && len(m.queries) > 0 {
			// Every query failed; stop early — the remaining updates would
			// only advance a graph nobody observes, and the serving layer
			// discards the MultiEngine on error anyway.
			return
		}
		if upd.IsEdge() {
			// Vertex ops have a trivial pre-apply phase (classVertexOp,
			// no enumeration); skip the fan-out barrier for them.
			fanOut(active, func(mq *multiQuery) {
				mq.eng.sharedPrepare(ctx, upd)
			})
		} else {
			for _, mq := range active {
				mq.eng.shared = sharedPending{verdict: classVertexOp}
			}
		}
		if err := upd.Apply(m.g); err != nil {
			for _, mq := range active {
				mq.err = fmt.Errorf("update %d (%v): %w", i, upd, err)
			}
			return
		}
		fanOut(active, func(mq *multiQuery) {
			if _, err := mq.eng.sharedCommit(ctx, upd); err != nil {
				mq.err = fmt.Errorf("update %d (%v): %w", i, upd, err)
			} else if simBudget > 0 && mq.eng.totalElapsed() > simBudget {
				mq.err = fmt.Errorf("update %d: %w", i, csm.ErrDeadline)
			}
		})
		// Compact out queries that just failed.
		n := active[:0]
		for _, mq := range active {
			if mq.err == nil {
				n = append(n, mq)
			}
		}
		active = n
	}
}

// fanOut runs fn over every query from min(GOMAXPROCS, len(qs)) worker
// goroutines (work-stealing by atomic index, since per-query cost is
// heavy-tailed) and joins them: the barrier that keeps all queries on the
// same side of each graph mutation. The caller runs one worker itself, so
// a single query never pays a goroutine switch.
func fanOut(qs []*multiQuery, fn func(*multiQuery)) {
	if len(qs) == 0 {
		return
	}
	if len(qs) == 1 {
		fn(qs[0])
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				fn(qs[i])
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(qs) {
			break
		}
		fn(qs[i])
	}
	wg.Wait()
}

// collectErrsLocked joins every failed query's error into one combined
// error (nil when none failed) and clears the recorded errors, so a
// reported failure never resurfaces from a later Run or ProcessBatch.
func (m *MultiEngine) collectErrsLocked() error {
	var errs []error
	for _, mq := range m.queries {
		if mq.err != nil {
			errs = append(errs, fmt.Errorf("query %q: %w", mq.name, mq.err))
			mq.err = nil
		}
	}
	return errors.Join(errs...)
}

// Close releases every per-query engine's worker pool (see Engine.Close).
// Idempotent; the engines stay usable afterwards.
func (m *MultiEngine) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mq := range m.queries {
		if mq.eng != nil {
			mq.eng.Close()
		}
	}
}

// Stats returns the per-query statistics, keyed by registration name.
// Deregistered queries are not included; their retained totals are
// available from ClosedStats.
func (m *MultiEngine) Stats() map[string]Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Stats, len(m.queries))
	for _, mq := range m.queries {
		if mq.eng != nil {
			out[mq.name] = mq.eng.Stats()
		}
	}
	return out
}

// ClosedStats returns the cumulative Stats of every deregistered query
// (folded in at Deregister time) and how many queries it covers. Summing
// it with the live per-query Stats yields totals that are monotonic
// across client disconnects — the contract the serving layer's metrics
// rely on.
func (m *MultiEngine) ClosedStats() (Stats, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.closed
	s.ThreadBusy = append([]time.Duration(nil), m.closed.ThreadBusy...)
	return s, m.closedN
}

// TotalStats returns the sum of every query's Stats, live and
// deregistered alike: the monotonic aggregate view.
func (m *MultiEngine) TotalStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.closed
	total.ThreadBusy = append([]time.Duration(nil), m.closed.ThreadBusy...)
	for _, mq := range m.queries {
		if mq.eng != nil {
			total.Add(mq.eng.Stats())
		}
	}
	return total
}

// QueryNames returns the live query names in registration order.
func (m *MultiEngine) QueryNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.queries))
	for i, mq := range m.queries {
		out[i] = mq.name
	}
	return out
}

// Engine returns the per-query engine (e.g. to attach an OnMatch
// callback), or nil if the name is unknown. Must be called after Init.
// The pointer is invalidated by Deregister of the same name.
func (m *MultiEngine) Engine(name string) *Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mq := m.findLocked(name); mq != nil {
		return mq.eng
	}
	return nil
}
