package core

import (
	"context"
	"fmt"
	"sync"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// MultiEngine runs many continuous queries against the same update stream.
// It adds the third, coarsest level of parallelism — across queries — on
// top of ParaCOSM's inner-update and inter-update levels; this is the
// batch-level parallelism of Mnemonic (Table 1), generalized so that each
// query still benefits from the finer two levels internally.
//
// Each registered query owns an engine and a private copy of the data
// graph, so queries share nothing and never contend; the stream is
// broadcast. Registration happens before Init; results are queried per
// registered query.
type MultiEngine struct {
	cfg     Config
	queries []*multiQuery
}

type multiQuery struct {
	name string
	algo csm.Algorithm
	q    *query.Graph
	eng  *Engine
	g    *graph.Graph
	err  error
}

// NewMulti creates an empty multi-query engine; opts configure every
// per-query engine identically.
func NewMulti(opts ...Option) *MultiEngine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.normalize()
	return &MultiEngine{cfg: cfg}
}

// Register adds a continuous query under a display name. Must be called
// before Init.
func (m *MultiEngine) Register(name string, algo csm.Algorithm, q *query.Graph) {
	m.queries = append(m.queries, &multiQuery{name: name, algo: algo, q: q})
}

// NumQueries returns the number of registered queries.
func (m *MultiEngine) NumQueries() int { return len(m.queries) }

// Init builds every query's engine over a private clone of g.
func (m *MultiEngine) Init(g *graph.Graph) error {
	if len(m.queries) == 0 {
		return fmt.Errorf("core: no queries registered")
	}
	for _, mq := range m.queries {
		mq.g = g.Clone()
		mq.eng = New(mq.algo)
		mq.eng.cfg = m.cfg
		if err := mq.eng.Init(mq.g, mq.q); err != nil {
			return fmt.Errorf("query %q: %w", mq.name, err)
		}
	}
	return nil
}

// Run broadcasts the stream to every query concurrently and waits for all
// of them. Per-query failures (e.g. deadline) are recorded and returned as
// a combined error; successful queries keep their full results.
func (m *MultiEngine) Run(ctx context.Context, s stream.Stream) error {
	var wg sync.WaitGroup
	for _, mq := range m.queries {
		wg.Add(1)
		go func(mq *multiQuery) {
			defer wg.Done()
			_, mq.err = mq.eng.Run(ctx, s)
		}(mq)
	}
	wg.Wait()
	var firstErr error
	for _, mq := range m.queries {
		if mq.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("query %q: %w", mq.name, mq.err)
		}
	}
	return firstErr
}

// Close releases every per-query engine's worker pool (see Engine.Close).
// Idempotent; the engines stay usable afterwards.
func (m *MultiEngine) Close() {
	for _, mq := range m.queries {
		if mq.eng != nil {
			mq.eng.Close()
		}
	}
}

// Stats returns the per-query statistics, keyed by registration name.
func (m *MultiEngine) Stats() map[string]Stats {
	out := make(map[string]Stats, len(m.queries))
	for _, mq := range m.queries {
		if mq.eng != nil {
			out[mq.name] = mq.eng.Stats()
		}
	}
	return out
}

// Engine returns the per-query engine (e.g. to attach an OnMatch
// callback), or nil if the name is unknown. Must be called after Init.
func (m *MultiEngine) Engine(name string) *Engine {
	for _, mq := range m.queries {
		if mq.name == name {
			return mq.eng
		}
	}
	return nil
}
