package core

import (
	"context"
	"fmt"
	"sync"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// MultiEngine runs many continuous queries against the same update stream.
// It adds the third, coarsest level of parallelism — across queries — on
// top of ParaCOSM's inner-update and inter-update levels; this is the
// batch-level parallelism of Mnemonic (Table 1), generalized so that each
// query still benefits from the finer two levels internally.
//
// Each registered query owns an engine and a private copy of the data
// graph, so queries share nothing and never contend; the stream is
// broadcast. Two operating modes coexist:
//
//   - Batch: Register every query up front, Init, then Run the whole
//     stream once (the CLI / bench path).
//
//   - Serving: Init (possibly with zero queries), then interleave
//     ProcessBatch with RegisterLive/Deregister as long-lived clients
//     come and go (the internal/server path). Init retains a private
//     clone of the data graph that ProcessBatch keeps current, so a
//     query registered mid-stream starts from the exact post-batch
//     state.
//
// All exported methods are safe for concurrent use; Run and ProcessBatch
// hold the engine lock for their whole duration, so registration changes
// serialize with stream processing at batch granularity.
type MultiEngine struct {
	cfg Config

	// OnDelta, if non-nil, observes every processed update's incremental
	// result for every registered query — the fan-in point the serving
	// layer subscribes to. Set it before Init (or before the RegisterLive
	// that should observe it); per-query invocations are serialized, but
	// different queries invoke it concurrently during Run/ProcessBatch,
	// so the callback must be safe for concurrent use.
	OnDelta func(query string, upd stream.Update, d csm.Delta, timeout bool)

	mu      sync.Mutex
	queries []*multiQuery // guarded by mu
	base    *graph.Graph  // guarded by mu — current stream state, for RegisterLive clones
}

type multiQuery struct {
	name string
	algo csm.Algorithm
	q    *query.Graph
	eng  *Engine
	g    *graph.Graph
	err  error
}

// NewMulti creates an empty multi-query engine; opts configure every
// per-query engine identically.
func NewMulti(opts ...Option) *MultiEngine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.normalize()
	return &MultiEngine{cfg: cfg}
}

// Register adds a continuous query under a display name. Must be called
// before Init; use RegisterLive afterwards.
func (m *MultiEngine) Register(name string, algo csm.Algorithm, q *query.Graph) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries = append(m.queries, &multiQuery{name: name, algo: algo, q: q})
}

// NumQueries returns the number of registered queries.
func (m *MultiEngine) NumQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queries)
}

// Init builds every pre-registered query's engine over a private clone of
// g, plus one more clone retained as the base state RegisterLive clones
// from. Zero pre-registered queries is valid (the serving mode starts
// empty and registers live).
func (m *MultiEngine) Init(g *graph.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.base = g.Clone()
	for _, mq := range m.queries {
		if err := m.initQueryLocked(mq, g); err != nil {
			return err
		}
	}
	return nil
}

// initQueryLocked builds mq's engine over a private clone of g.
func (m *MultiEngine) initQueryLocked(mq *multiQuery, g *graph.Graph) error {
	mq.g = g.Clone()
	mq.eng = New(mq.algo)
	mq.eng.cfg = m.cfg
	if m.OnDelta != nil {
		// One closure per query, built once at registration: tags the
		// query name onto the engine-level callback. The engine invokes
		// it from the goroutine driving that engine, so per-query calls
		// are serialized.
		name := mq.name
		mq.eng.cfg.OnDelta = func(upd stream.Update, d csm.Delta, timeout bool) {
			m.OnDelta(name, upd, d, timeout)
		}
	}
	if err := mq.eng.Init(mq.g, mq.q); err != nil {
		return fmt.Errorf("query %q: %w", mq.name, err)
	}
	return nil
}

// RegisterLive adds a query after Init: its engine is built over a clone
// of the retained base graph, i.e. the state after every batch processed
// so far, so the query's incremental results start exactly at the
// registration point. Names must be unique among live queries.
func (m *MultiEngine) RegisterLive(name string, algo csm.Algorithm, q *query.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.base == nil {
		return fmt.Errorf("core: RegisterLive before Init")
	}
	if m.findLocked(name) != nil {
		return fmt.Errorf("core: query %q already registered", name)
	}
	mq := &multiQuery{name: name, algo: algo, q: q}
	if err := m.initQueryLocked(mq, m.base); err != nil {
		return err
	}
	m.queries = append(m.queries, mq)
	return nil
}

// Deregister removes a query and closes its engine (joining its worker
// pool), so the serving layer can drop a query when its owning connection
// goes away without tearing down the engine. Idempotent: deregistering an
// unknown name reports false and does nothing. The remaining queries are
// untouched and processing continues normally.
func (m *MultiEngine) Deregister(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, mq := range m.queries {
		if mq.name == name {
			if mq.eng != nil {
				mq.eng.Close()
			}
			m.queries = append(m.queries[:i], m.queries[i+1:]...)
			return true
		}
	}
	return false
}

func (m *MultiEngine) findLocked(name string) *multiQuery {
	for _, mq := range m.queries {
		if mq.name == name {
			return mq
		}
	}
	return nil
}

// Run broadcasts the stream to every query concurrently and waits for all
// of them. Per-query failures (e.g. deadline) are recorded and returned as
// a combined error; successful queries keep their full results. Run does
// not maintain the retained base graph — interleave ProcessBatch instead
// when RegisterLive will be used mid-stream.
func (m *MultiEngine) Run(ctx context.Context, s stream.Stream) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.broadcastLocked(ctx, s)
	return m.firstErrLocked()
}

// broadcastLocked fans s out to every query engine and joins them.
func (m *MultiEngine) broadcastLocked(ctx context.Context, s stream.Stream) {
	var wg sync.WaitGroup
	for _, mq := range m.queries {
		wg.Add(1)
		go func(mq *multiQuery) {
			defer wg.Done()
			_, mq.err = mq.eng.Run(ctx, s)
		}(mq)
	}
	wg.Wait()
}

func (m *MultiEngine) firstErrLocked() error {
	for _, mq := range m.queries {
		if mq.err != nil {
			return fmt.Errorf("query %q: %w", mq.name, mq.err)
		}
	}
	return nil
}

// ProcessBatch is the serving-mode ingestion step: it validates batch
// against the retained base graph, broadcasts the valid updates to every
// registered query concurrently (each running its inter-update classifier
// path) and leaves the base at the post-batch state for later
// RegisterLive calls.
//
// Updates that do not apply cleanly against the current state (duplicate
// edge, missing edge, dead vertex) are filtered out before dispatch —
// applied counts the updates that went through, len(batch)-applied were
// rejected. Filtering keeps every per-query graph in lockstep: a
// malformed update from one client cannot desynchronize the engines.
//
// ProcessBatch is intended to run without a context deadline (the serving
// layer bounds work by batch size instead). If ctx does carry a deadline
// and an engine times out mid-batch, that engine's graph lags the base
// and the MultiEngine should be discarded.
func (m *MultiEngine) ProcessBatch(ctx context.Context, batch stream.Stream) (applied int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.base == nil {
		return 0, fmt.Errorf("core: ProcessBatch before Init")
	}
	// Validation doubles as the base-graph apply: an update is valid iff
	// it applies cleanly to the current state, and validity of update i
	// depends on updates < i being applied. The engines' clones hold the
	// identical pre-batch state, so the valid sequence applies cleanly
	// there too.
	valid := batch[:0:0]
	for _, upd := range batch {
		if upd.Apply(m.base) == nil {
			valid = append(valid, upd)
		}
	}
	if len(valid) == 0 {
		return 0, nil
	}
	m.broadcastLocked(ctx, valid)
	err = m.firstErrLocked()
	for _, mq := range m.queries {
		mq.err = nil
	}
	return len(valid), err
}

// Close releases every per-query engine's worker pool (see Engine.Close).
// Idempotent; the engines stay usable afterwards.
func (m *MultiEngine) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mq := range m.queries {
		if mq.eng != nil {
			mq.eng.Close()
		}
	}
}

// Stats returns the per-query statistics, keyed by registration name.
func (m *MultiEngine) Stats() map[string]Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Stats, len(m.queries))
	for _, mq := range m.queries {
		if mq.eng != nil {
			out[mq.name] = mq.eng.Stats()
		}
	}
	return out
}

// QueryNames returns the live query names in registration order.
func (m *MultiEngine) QueryNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.queries))
	for i, mq := range m.queries {
		out[i] = mq.name
	}
	return out
}

// Engine returns the per-query engine (e.g. to attach an OnMatch
// callback), or nil if the name is unknown. Must be called after Init.
// The pointer is invalidated by Deregister of the same name.
func (m *MultiEngine) Engine(name string) *Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mq := m.findLocked(name); mq != nil {
		return mq.eng
	}
	return nil
}
