package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// MultiEngine runs many continuous queries against the same update stream.
// It adds the third, coarsest level of parallelism — across queries — on
// top of ParaCOSM's inner-update and inter-update levels; this is the
// batch-level parallelism of Mnemonic (Table 1), generalized so that each
// query still benefits from the finer two levels internally.
//
// All queries share ONE data graph; per-query state is index state only
// (each algorithm's ADS plus engine scratch), so memory is
// O(|G| + Σ index) instead of the O(queries × |G|) a clone-per-query
// design costs, and registering a query is O(index build), not O(|G|)
// copy. The stream is processed in lockstep: for each update every query
// first runs its read-only pre-apply phase (classification, and expiring-
// match enumeration for deletions), the update is applied to the shared
// graph exactly once, then every query runs its post-apply phase (ADS
// maintenance, new-match enumeration). The phases only read the graph, so
// queries never contend beyond the two fan-out barriers per update. See
// DESIGN.md §13 for the full contract.
//
// Two operating modes coexist:
//
//   - Batch: Register every query up front, Init, then Run the whole
//     stream once (the CLI / bench path).
//
//   - Serving: Init (possibly with zero queries), then interleave
//     ProcessBatch with RegisterLive/Deregister as long-lived clients
//     come and go (the internal/server path). The shared graph always
//     holds the exact post-batch state (Run maintains it too), so a
//     query registered mid-stream starts from the registration point.
//
// All exported methods are safe for concurrent use; Run and ProcessBatch
// hold the engine lock for their whole duration, so registration changes
// serialize with stream processing at batch granularity.
type MultiEngine struct {
	cfg Config

	// OnDelta, if non-nil, observes every processed update's incremental
	// result for every registered query — the fan-in point the serving
	// layer subscribes to. Set it before Init (or before the RegisterLive
	// that should observe it); per-query invocations are serialized, but
	// different queries invoke it concurrently during Run/ProcessBatch,
	// so the callback must be safe for concurrent use.
	OnDelta func(query string, upd stream.Update, d csm.Delta, timeout bool)

	mu      sync.Mutex
	queries []*multiQuery // guarded by mu
	g       *graph.Graph  // guarded by mu — THE shared data graph (engines read it during fan-out, while mu is held by the driver)
	undo    graph.UndoLog // guarded by mu — scratch journal for ProcessBatch's speculative validation
	closed  Stats         // guarded by mu — retained tally of deregistered queries' Stats
	closedN int           // guarded by mu — number of deregistered queries folded into closed

	// closedLat retains the merged per-query latency histograms of
	// deregistered queries (TrackQueries mode), mirroring closed for
	// Stats. nil until the first tracked query deregisters.
	closedLat *obs.Histogram // guarded by mu

	// valid and validIdx are ProcessBatch's reusable validation scratch:
	// the valid subsequence of the current batch and, for each valid
	// update, its index in the original batch (for BatchTimes lookup).
	// Reusing them keeps the steady-state serving path allocation-free.
	valid    stream.Stream // guarded by mu
	validIdx []int         // guarded by mu

	// active is runSharedLocked's reusable fan-out scratch (the live
	// queries of the current lockstep pass), for the same reason.
	active []*multiQuery // guarded by mu

	// fanCur is the current lockstep task, read by the persistent fan-out
	// closures below. The driver writes it under mu before each fanOut
	// barrier; worker goroutines read it only between the barrier's spawn
	// and join, during which the driver does not touch it — the same
	// publication discipline as the shared graph itself.
	fanCur struct {
		ctx       context.Context
		upd       stream.Update
		i         int
		simBudget time.Duration
	} // guarded by mu

	// fanPrepare/fanCommit are the pre-apply and post-apply fan-out
	// bodies, built once (lazily, under mu) so the per-update lockstep
	// loop allocates no closures — part of the serving path's
	// zero-allocation contract (see TestSharedPathAllocations).
	fanPrepare func(*multiQuery) // guarded by mu
	fanCommit  func(*multiQuery) // guarded by mu

	// Windowed-mode state (Config.Window > 1, see multiwindow.go): the
	// driver scratch, the current-wave task read by the wave fan-out
	// closures, and the driver-level window counter tally.
	mwin          *winDriver        // guarded by mu
	winCur        winCurTask        // guarded by mu (same discipline as fanCur)
	winStats      WindowCounters    // guarded by mu
	fanPrepareWin func(*multiQuery) // guarded by mu
	fanCommitWin  func(*multiQuery) // guarded by mu
	fanEmitWin    func(*multiQuery) // guarded by mu
}

type multiQuery struct {
	name string
	algo csm.Algorithm
	q    *query.Graph
	eng  *Engine
	err  error
}

// NewMulti creates an empty multi-query engine; opts configure every
// per-query engine identically.
func NewMulti(opts ...Option) *MultiEngine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.normalize()
	return &MultiEngine{cfg: cfg}
}

// Register adds a continuous query under a display name. Must be called
// before Init; use RegisterLive afterwards.
func (m *MultiEngine) Register(name string, algo csm.Algorithm, q *query.Graph) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries = append(m.queries, &multiQuery{name: name, algo: algo, q: q})
}

// NumQueries returns the number of registered queries.
func (m *MultiEngine) NumQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queries)
}

// Init clones g once into the engine's shared data graph (the caller's g
// is never retained or mutated) and builds every pre-registered query's
// index over it. Zero pre-registered queries is valid (the serving mode
// starts empty and registers live).
func (m *MultiEngine) Init(g *graph.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.g = g.Clone()
	for _, mq := range m.queries {
		if err := m.initQueryLocked(mq); err != nil {
			return err
		}
	}
	return nil
}

// initQueryLocked builds mq's engine and index over the shared graph.
func (m *MultiEngine) initQueryLocked(mq *multiQuery) error {
	mq.eng = New(mq.algo)
	mq.eng.cfg = m.cfg
	if m.cfg.TrackQueries {
		mq.eng.lat = obs.NewHistogram()
	}
	if m.OnDelta != nil {
		// One closure per query, built once at registration: tags the
		// query name onto the engine-level callback. The driver serializes
		// the shared phases per query, so per-query calls are serialized.
		name := mq.name
		mq.eng.cfg.OnDelta = func(upd stream.Update, d csm.Delta, timeout bool) {
			m.OnDelta(name, upd, d, timeout)
		}
	}
	if err := mq.eng.Init(m.g, mq.q); err != nil {
		return fmt.Errorf("query %q: %w", mq.name, err)
	}
	return nil
}

// RegisterLive adds a query after Init: its index is built over the shared
// graph, i.e. the state after every update processed so far, so the
// query's incremental results start exactly at the registration point.
// The cost is one index build — no graph copy. Names must be unique among
// live queries.
func (m *MultiEngine) RegisterLive(name string, algo csm.Algorithm, q *query.Graph) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return fmt.Errorf("core: RegisterLive before Init")
	}
	if m.findLocked(name) != nil {
		return fmt.Errorf("core: query %q already registered", name)
	}
	mq := &multiQuery{name: name, algo: algo, q: q}
	if err := m.initQueryLocked(mq); err != nil {
		return err
	}
	m.queries = append(m.queries, mq)
	return nil
}

// RegisterLiveLogged is RegisterLive with a durability hook: persist is
// called under the engine lock, after the index build succeeds and
// before the lock is released, so the log append and the registration
// are one atomic step with respect to batches and snapshots — the log
// order of records equals their apply order by construction. A persist
// error unwinds the registration (the engine is closed and discarded)
// and is returned: a query is either durable and live, or neither.
func (m *MultiEngine) RegisterLiveLogged(name string, algo csm.Algorithm, q *query.Graph, persist func() error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return fmt.Errorf("core: RegisterLive before Init")
	}
	if m.findLocked(name) != nil {
		return fmt.Errorf("core: query %q already registered", name)
	}
	mq := &multiQuery{name: name, algo: algo, q: q}
	if err := m.initQueryLocked(mq); err != nil {
		return err
	}
	if persist != nil {
		if err := persist(); err != nil {
			mq.eng.Close()
			return fmt.Errorf("core: persist registration: %w", err)
		}
	}
	m.queries = append(m.queries, mq)
	return nil
}

// Deregister removes a query and closes its engine (joining its worker
// pool), so the serving layer can drop a query when its owning connection
// goes away without tearing down the engine. The dropped query's
// cumulative Stats are folded into the retained closed tally (see
// ClosedStats), so aggregate totals stay monotonic across disconnects.
// Idempotent: deregistering an unknown name reports false and does
// nothing. The remaining queries are untouched and processing continues
// normally.
func (m *MultiEngine) Deregister(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deregisterLocked(name)
}

func (m *MultiEngine) deregisterLocked(name string) bool {
	for i, mq := range m.queries {
		if mq.name == name {
			if mq.eng != nil {
				m.closed.Add(mq.eng.Stats())
				m.closedN++
				if mq.eng.lat != nil {
					if m.closedLat == nil {
						m.closedLat = obs.NewHistogram()
					}
					m.closedLat.Merge(mq.eng.lat)
				}
				mq.eng.Close()
			}
			m.queries = append(m.queries[:i], m.queries[i+1:]...)
			return true
		}
	}
	return false
}

// DeregisterLogged is Deregister with a durability hook, mirroring
// RegisterLiveLogged: persist runs under the engine lock before the
// query is removed, and a persist error leaves the query untouched.
// (false, nil) means the name was unknown (nothing logged).
func (m *MultiEngine) DeregisterLogged(name string, persist func() error) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.findLocked(name) == nil {
		return false, nil
	}
	if persist != nil {
		if err := persist(); err != nil {
			return false, fmt.Errorf("core: persist deregistration: %w", err)
		}
	}
	return m.deregisterLocked(name), nil
}

func (m *MultiEngine) findLocked(name string) *multiQuery {
	for _, mq := range m.queries {
		if mq.name == name {
			return mq
		}
	}
	return nil
}

// Run processes the whole stream through every query in lockstep and
// keeps the shared graph at the post-stream state (so RegisterLive works
// after Run as well as after ProcessBatch). Per-query failures (e.g.
// deadline) are recorded and returned as one combined error — every
// failed query contributes, joined with errors.Join — while successful
// queries keep their full results. Recorded errors are cleared once
// reported, so a failure in one Run never resurfaces from a later call.
//
// Unlike ProcessBatch, Run treats the stream as trusted: an update that
// does not apply cleanly aborts the run and fails every remaining query
// with that update's error.
func (m *MultiEngine) Run(ctx context.Context, s stream.Stream) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return fmt.Errorf("core: Run before Init")
	}
	m.runSharedLocked(ctx, s, nil, nil)
	return m.collectErrsLocked()
}

// BatchTimes carries the serving layer's queue timestamps for one batch
// into ProcessBatchTimed, so the driver can attribute ingest-queue wait
// and batch-assembly dwell to each update. Enqueued[i]/Dequeued[i] are
// when batch[i] was admitted to the ingestion queue and picked up by the
// ingestion loop; Flushed is when the assembled batch was submitted.
// Missing slices or zero times observe as zero durations — the stage
// sample counts stay intact either way.
type BatchTimes struct {
	Enqueued []time.Time
	Dequeued []time.Time
	Flushed  time.Time
}

// stageWaits returns the ingest-queue wait and assembly dwell for the
// update at original batch index i (zeros when unknown). A nil receiver
// is valid: callers without queue timestamps (Run, plain ProcessBatch)
// observe zero-duration waits so counts still reconcile.
func (bt *BatchTimes) stageWaits(i int) (wait, assemble time.Duration) {
	if bt == nil {
		return 0, 0
	}
	var enq, deq time.Time
	if i < len(bt.Enqueued) {
		enq = bt.Enqueued[i]
	}
	if i < len(bt.Dequeued) {
		deq = bt.Dequeued[i]
	}
	if !enq.IsZero() && !deq.IsZero() {
		if wait = deq.Sub(enq); wait < 0 {
			wait = 0
		}
	}
	if !deq.IsZero() && !bt.Flushed.IsZero() {
		if assemble = bt.Flushed.Sub(deq); assemble < 0 {
			assemble = 0
		}
	}
	return wait, assemble
}

// ProcessBatch is the serving-mode ingestion step. Validation is a
// speculative apply against the live shared graph: every update is
// applied in order with its inverse recorded in the undo journal (an
// update is valid iff it applies cleanly, and validity of update i
// depends on updates < i being applied), the journal is rolled back to
// the pre-batch state, and the valid subsequence is then processed in
// lockstep — pre-apply fan-out, one shared apply, post-apply fan-out per
// update. Updates that do not apply cleanly (duplicate edge, missing
// edge, dead or non-isolated vertex) are filtered out before dispatch —
// applied counts the updates that went through, len(batch)-applied were
// rejected — so a malformed update from one client cannot desynchronize
// the engines or crash the service.
//
// ProcessBatch is intended to run without a context deadline (the serving
// layer bounds work by batch size instead). If ctx does carry a deadline
// and a query times out mid-batch, that query's index lags the shared
// graph and the MultiEngine should be discarded. The combined per-query
// error (errors.Join, as in Run) is returned and the recorded errors are
// cleared.
func (m *MultiEngine) ProcessBatch(ctx context.Context, batch stream.Stream) (applied int, err error) {
	return m.ProcessBatchTimed(ctx, batch, nil)
}

// ProcessBatchTimed is ProcessBatch with queue timestamps: when the
// engine has a Tracer, each applied update's ingest-queue wait and
// batch-assembly dwell (from bt, which may be nil) are observed into the
// pipeline stage histograms alongside the driver-measured pre-apply,
// commit and post-apply stages. Every per-update stage is observed
// exactly once per applied update — on the same code path that counts
// the update applied — so stage sample counts reconcile with the
// applied-update count by construction.
func (m *MultiEngine) ProcessBatchTimed(ctx context.Context, batch stream.Stream, bt *BatchTimes) (applied int, err error) {
	return m.ProcessBatchLogged(ctx, batch, bt, nil)
}

// ProcessBatchLogged is ProcessBatchTimed with a durability hook: when
// persist is non-nil it is called with the validated subsequence after
// speculative validation and before any engine observes an update (the
// write-ahead ordering — log, then apply). The slice is only valid for
// the duration of the call. A persist error aborts the batch: the
// speculative apply is rolled back, no query sees anything, and
// (0, err) is returned — an update is either durable and applied, or
// neither.
func (m *MultiEngine) ProcessBatchLogged(ctx context.Context, batch stream.Stream, bt *BatchTimes, persist func(stream.Stream) error) (applied int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return 0, fmt.Errorf("core: ProcessBatch before Init")
	}
	m.undo.Reset()
	m.valid = m.valid[:0]
	m.validIdx = m.validIdx[:0]
	// With zero queries the speculative apply below IS the commit (the
	// batch state is kept, see the zero-query branch), so the stage
	// observation happens here rather than in runSharedLocked.
	tr := m.cfg.Tracer
	stageHere := tr != nil && len(m.queries) == 0
	var clk obs.StageClock
	for i, upd := range batch {
		if stageHere {
			clk.Start()
		}
		if upd.ApplyLogged(m.g, &m.undo) == nil {
			if stageHere {
				commit := clk.Lap()
				wait, assemble := bt.stageWaits(i)
				st := tr.Stages()
				st.Observe(obs.StageIngestWait, wait)
				st.Observe(obs.StageAssemble, assemble)
				st.Observe(obs.StagePreApply, 0)
				st.Observe(obs.StageCommit, commit)
				st.Observe(obs.StagePostApply, 0)
				tr.Stage(obs.Event{
					Op: upd.Op.String(), U: uint32(upd.U), V: uint32(upd.V),
					IngestWait: wait, Assemble: assemble, Commit: commit,
					Total: wait + assemble + commit,
				})
			}
			m.valid = append(m.valid, upd)
			m.validIdx = append(m.validIdx, i)
		}
	}
	if len(m.valid) == 0 {
		return 0, nil
	}
	if persist != nil {
		if perr := persist(m.valid); perr != nil {
			m.undo.Rollback(m.g)
			return 0, fmt.Errorf("core: persist batch: %w", perr)
		}
	}
	if len(m.queries) == 0 {
		// No queries to drive: the speculative apply already left the
		// shared graph at the post-batch state, so keep it.
		m.undo.Reset()
		return len(m.valid), nil
	}
	m.undo.Rollback(m.g)
	m.runSharedLocked(ctx, m.valid, bt, m.validIdx)
	return len(m.valid), m.collectErrsLocked()
}

// runSharedLocked drives s through every registered query in lockstep:
// per update, fan out the read-only pre-apply phase, apply the update to
// the shared graph exactly once, then fan out the post-apply phase. All
// queries therefore observe the identical graph state around every
// update — the apply-once/fan-out contract of DESIGN.md §13. A query
// whose engine reports an error is skipped for the remainder of the call
// (its index no longer tracks the shared graph); the error is left in
// mq.err for collectErrsLocked.
//
// With a Tracer configured, the driver observes each fully-applied
// update's pipeline stages (ingest wait and assembly dwell from bt/idx,
// pre-apply, commit, post-apply measured here) and emits one ClassStage
// ring event. All five stages are observed together after the post-apply
// fan-out, so their sample counts are identical by construction — an
// update aborted mid-loop (trusted-stream apply error) observes nothing.
// bt may be nil (waits observe as zero); idx maps s's positions to
// original batch indices for bt lookup (nil means identity).
func (m *MultiEngine) runSharedLocked(ctx context.Context, s stream.Stream, bt *BatchTimes, idx []int) {
	active := m.active[:0]
	for _, mq := range m.queries {
		if mq.err == nil {
			active = append(active, mq)
		}
	}
	m.active = active
	if m.cfg.Window > 1 && !m.cfg.Simulate && len(active) > 0 {
		// Batch-dynamic mode: coalesce windows and commit independent
		// sets per barrier pair instead of one update at a time.
		m.runSharedWindowedLocked(ctx, s, bt, idx)
		return
	}
	if m.fanPrepare == nil {
		// Built once per MultiEngine: the closures read the current task
		// from m.fanCur, so the lockstep loop below never allocates.
		m.fanPrepare = func(mq *multiQuery) {
			mq.eng.sharedPrepare(m.fanCur.ctx, m.fanCur.upd)
		}
		m.fanCommit = func(mq *multiQuery) {
			cur := &m.fanCur
			if _, err := mq.eng.sharedCommit(cur.ctx, cur.upd); err != nil {
				mq.err = fmt.Errorf("update %d (%v): %w", cur.i, cur.upd, err)
			} else if cur.simBudget > 0 && mq.eng.totalElapsed() > cur.simBudget {
				mq.err = fmt.Errorf("update %d: %w", cur.i, csm.ErrDeadline)
			}
		}
	}
	// Simulated-time budget, as in Engine.Run: under schedule simulation a
	// context deadline is interpreted against accumulated simulated time.
	var simBudget time.Duration
	if dl, ok := ctx.Deadline(); ok && m.cfg.Simulate {
		simBudget = time.Until(dl)
		for _, mq := range active {
			mq.eng.simBudget = simBudget
		}
		defer func() {
			for _, mq := range m.queries {
				if mq.eng != nil {
					mq.eng.simBudget = 0
				}
			}
		}()
	}
	tr := m.cfg.Tracer
	var clk obs.StageClock
	for i, upd := range s {
		m.fanCur.ctx, m.fanCur.upd, m.fanCur.i, m.fanCur.simBudget = ctx, upd, i, simBudget
		if len(active) == 0 && len(m.queries) > 0 {
			// Every query failed; stop early — the remaining updates would
			// only advance a graph nobody observes, and the serving layer
			// discards the MultiEngine on error anyway.
			return
		}
		if tr != nil {
			clk.Start()
		}
		if upd.IsEdge() {
			// Vertex ops have a trivial pre-apply phase (classVertexOp,
			// no enumeration); skip the fan-out barrier for them.
			fanOut(active, m.fanPrepare)
		} else {
			for _, mq := range active {
				mq.eng.shared = sharedPending{verdict: classVertexOp}
			}
		}
		var preApply time.Duration
		if tr != nil {
			preApply = clk.Lap()
		}
		if err := upd.Apply(m.g); err != nil {
			for _, mq := range active {
				mq.err = fmt.Errorf("update %d (%v): %w", i, upd, err)
			}
			return
		}
		var commit time.Duration
		if tr != nil {
			commit = clk.Lap()
		}
		fanOut(active, m.fanCommit)
		if tr != nil {
			postApply := clk.Lap()
			orig := i
			if idx != nil {
				orig = idx[i]
			}
			wait, assemble := bt.stageWaits(orig)
			st := tr.Stages()
			st.Observe(obs.StageIngestWait, wait)
			st.Observe(obs.StageAssemble, assemble)
			st.Observe(obs.StagePreApply, preApply)
			st.Observe(obs.StageCommit, commit)
			st.Observe(obs.StagePostApply, postApply)
			tr.Stage(obs.Event{
				Op: upd.Op.String(), U: uint32(upd.U), V: uint32(upd.V),
				IngestWait: wait, Assemble: assemble, PreApply: preApply,
				Commit: commit, PostApply: postApply,
				Total: wait + assemble + preApply + commit + postApply,
			})
		}
		// Compact out queries that just failed.
		n := active[:0]
		for _, mq := range active {
			if mq.err == nil {
				n = append(n, mq)
			}
		}
		active = n
	}
}

// fanOut runs fn over every query from min(GOMAXPROCS, len(qs)) worker
// goroutines (work-stealing by atomic index, since per-query cost is
// heavy-tailed) and joins them: the barrier that keeps all queries on the
// same side of each graph mutation. The caller runs one worker itself, so
// a single query never pays a goroutine switch.
func fanOut(qs []*multiQuery, fn func(*multiQuery)) {
	if len(qs) == 0 {
		return
	}
	if len(qs) == 1 {
		fn(qs[0])
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				fn(qs[i])
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(qs) {
			break
		}
		fn(qs[i])
	}
	wg.Wait()
}

// collectErrsLocked joins every failed query's error into one combined
// error (nil when none failed) and clears the recorded errors, so a
// reported failure never resurfaces from a later Run or ProcessBatch.
func (m *MultiEngine) collectErrsLocked() error {
	var errs []error
	for _, mq := range m.queries {
		if mq.err != nil {
			errs = append(errs, fmt.Errorf("query %q: %w", mq.name, mq.err))
			mq.err = nil
		}
	}
	return errors.Join(errs...)
}

// Close releases every per-query engine's worker pool (see Engine.Close).
// Idempotent; the engines stay usable afterwards.
func (m *MultiEngine) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mq := range m.queries {
		if mq.eng != nil {
			mq.eng.Close()
		}
	}
}

// Stats returns the per-query statistics, keyed by registration name.
// Deregistered queries are not included; their retained totals are
// available from ClosedStats.
func (m *MultiEngine) Stats() map[string]Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Stats, len(m.queries))
	for _, mq := range m.queries {
		if mq.eng != nil {
			out[mq.name] = mq.eng.Stats()
		}
	}
	return out
}

// ClosedStats returns the cumulative Stats of every deregistered query
// (folded in at Deregister time) and how many queries it covers. Summing
// it with the live per-query Stats yields totals that are monotonic
// across client disconnects — the contract the serving layer's metrics
// rely on.
func (m *MultiEngine) ClosedStats() (Stats, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.closed
	s.ThreadBusy = append([]time.Duration(nil), m.closed.ThreadBusy...)
	return s, m.closedN
}

// QuerySnapshot is one live query's observability view: its cumulative
// Stats plus latency quantiles from the per-query histogram (zeros unless
// the engine was built with TrackQueries). The serving layer's /queries
// endpoint and labeled /metrics series are rendered from these.
type QuerySnapshot struct {
	Name  string
	Stats Stats
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// QuerySnapshots returns a snapshot per live query, in registration
// order. Deregistered queries are excluded; their merged latency
// histogram is available from ClosedLatency.
func (m *MultiEngine) QuerySnapshots() []QuerySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QuerySnapshot, 0, len(m.queries))
	for _, mq := range m.queries {
		if mq.eng == nil {
			continue
		}
		qs := QuerySnapshot{Name: mq.name, Stats: mq.eng.Stats()}
		if h := mq.eng.lat; h != nil && h.Count() > 0 {
			qs.P50 = h.Quantile(0.50)
			qs.P90 = h.Quantile(0.90)
			qs.P99 = h.Quantile(0.99)
			qs.Max = h.Max()
		}
		out = append(out, qs)
	}
	return out
}

// ClosedLatency returns a copy of the merged per-update latency histogram
// of every deregistered tracked query (the latency counterpart of
// ClosedStats), or nil when no tracked query has deregistered.
func (m *MultiEngine) ClosedLatency() *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closedLat == nil {
		return nil
	}
	h := obs.NewHistogram()
	h.Merge(m.closedLat)
	return h
}

// TotalStats returns the sum of every query's Stats, live and
// deregistered alike: the monotonic aggregate view.
func (m *MultiEngine) TotalStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.closed
	total.ThreadBusy = append([]time.Duration(nil), m.closed.ThreadBusy...)
	for _, mq := range m.queries {
		if mq.eng != nil {
			total.Add(mq.eng.Stats())
		}
	}
	return total
}

// QueryNames returns the live query names in registration order.
func (m *MultiEngine) QueryNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.queries))
	for i, mq := range m.queries {
		out[i] = mq.name
	}
	return out
}

// Engine returns the per-query engine (e.g. to attach an OnMatch
// callback), or nil if the name is unknown. Must be called after Init.
// The pointer is invalidated by Deregister of the same name.
func (m *MultiEngine) Engine(name string) *Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mq := m.findLocked(name); mq != nil {
		return mq.eng
	}
	return nil
}

// QueryExport is one live query's snapshot-time state for the durability
// layer: its name and cumulative Stats (the baseline recovery seeds via
// Engine.SeedStats so totals stay monotonic across a restart).
type QueryExport struct {
	Name  string
	Stats Stats
}

// ExportState hands a consistent cut of the serving state — the shared
// data graph and every live query's QueryExport, in registration order —
// to fn, all under the engine lock: no batch can commit and no query can
// register or deregister while fn runs. The snapshot writer serializes
// from inside fn; the graph pointer must not be retained after fn
// returns.
func (m *MultiEngine) ExportState(fn func(g *graph.Graph, queries []QueryExport) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.g == nil {
		return fmt.Errorf("core: ExportState before Init")
	}
	qs := make([]QueryExport, 0, len(m.queries))
	for _, mq := range m.queries {
		if mq.eng != nil {
			qs = append(qs, QueryExport{Name: mq.name, Stats: mq.eng.Stats()})
		}
	}
	return fn(m.g, qs)
}
