package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// TestTracerReconcilesWithStats runs the full inter-update path with a
// tracer attached and checks that the tracer's counters agree with
// Engine.Stats() at end of stream — the invariant the /metrics endpoint
// relies on.
func TestTracerReconcilesWithStats(t *testing.T) {
	for _, f := range algotest.Factories()[:2] {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := algotest.RandomGraph(rng, 60, 500, 2, 1)
			q := algotest.RandomQuery(rng, g, 4)
			s := algotest.RandomStream(rng, g, 400, 0.7, 1)

			tr := obs.NewTracer(64) // deliberately smaller than the stream: exercises drops
			eng := New(f.New(), Threads(4), InterUpdate(true), EscalateNodes(16), WithTracer(tr))
			defer eng.Close()
			if err := eng.Init(g, q); err != nil {
				t.Fatal(err)
			}
			st, err := eng.Run(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}

			c := tr.Counters()
			if c.Updates != uint64(st.Updates) {
				t.Errorf("tracer updates %d != stats %d", c.Updates, st.Updates)
			}
			if c.Safe != uint64(st.SafeUpdates) {
				t.Errorf("tracer safe %d != stats %d", c.Safe, st.SafeUpdates)
			}
			if c.Unsafe != uint64(st.UnsafeUpdates) {
				t.Errorf("tracer unsafe %d != stats %d", c.Unsafe, st.UnsafeUpdates)
			}
			if c.Escalations != uint64(st.Escalations) {
				t.Errorf("tracer escalations %d != stats %d", c.Escalations, st.Escalations)
			}
			if c.Reclassified != uint64(st.Reclassified) {
				t.Errorf("tracer reclassified %d != stats %d", c.Reclassified, st.Reclassified)
			}
			if c.Batches != uint64(st.Batches) {
				t.Errorf("tracer batches %d != stats %d", c.Batches, st.Batches)
			}
			if c.Matches != st.Positive+st.Negative {
				t.Errorf("tracer matches %d != stats %d", c.Matches, st.Positive+st.Negative)
			}
			if c.Nodes != st.Nodes {
				t.Errorf("tracer nodes %d != stats %d", c.Nodes, st.Nodes)
			}
			if got := tr.Hist(obs.PhaseTotal).Count(); got != uint64(st.Updates) {
				t.Errorf("latency histogram count %d != updates %d", got, st.Updates)
			}
			if tr.Ring().Total() != uint64(st.Updates) {
				t.Errorf("ring total %d != updates %d", tr.Ring().Total(), st.Updates)
			}
			if want := uint64(st.Updates) - 64; tr.Ring().Dropped() != want {
				t.Errorf("ring dropped %d, want %d", tr.Ring().Dropped(), want)
			}
			// Every retained event carries a real class and phase times
			// that sum into the histograms.
			for _, ev := range tr.Ring().Snapshot() {
				switch ev.Class {
				case obs.ClassUnsafe, obs.ClassSafeLabel, obs.ClassSafeDegree, obs.ClassSafeADS, obs.ClassVertex:
				default:
					t.Fatalf("unexpected class %q on batch path", ev.Class)
				}
				if ev.Seq == 0 {
					t.Fatal("event missing sequence number")
				}
			}
		})
	}
}

// TestTracerDirectPath checks the InterUpdate-disabled path: every event
// is ClassDirect and escalations are flagged on the events themselves.
func TestTracerDirectPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := algotest.RandomGraph(rng, 50, 500, 1, 1)
	q := algotest.RandomQuery(rng, g, 4)
	s := algotest.RandomStream(rng, g, 100, 0.8, 1)

	tr := obs.NewTracer(256)
	f := algotest.Factories()[0]
	eng := New(f.New(), Threads(4), InterUpdate(false), EscalateNodes(8), WithTracer(tr))
	defer eng.Close()
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Ring().Snapshot()
	if len(evs) != st.Updates {
		t.Fatalf("ring has %d events, want %d", len(evs), st.Updates)
	}
	escalated := 0
	for _, ev := range evs {
		if ev.Class != obs.ClassDirect {
			t.Fatalf("event class %q, want direct", ev.Class)
		}
		if ev.Escalated {
			escalated++
			if ev.Nodes <= 8 {
				t.Errorf("escalated event with only %d nodes (budget 8)", ev.Nodes)
			}
		}
	}
	if escalated != st.Escalations {
		t.Errorf("escalated events %d != stats escalations %d", escalated, st.Escalations)
	}
	if st.Escalations == 0 {
		t.Error("test workload never escalated; budget too high to be meaningful")
	}
}

// TestTracerTimeoutEvent locks in that deadline-aborted updates are
// flagged in the trace.
func TestTracerTimeoutEvent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := algotest.RandomGraph(rng, 80, 1200, 1, 1)
	q := algotest.RandomQuery(rng, g, 5)
	s := algotest.RandomStream(rng, g, 50, 1.0, 1)

	tr := obs.NewTracer(128)
	f := algotest.Factories()[0]
	eng := New(f.New(), Threads(1), InterUpdate(false), WithTracer(tr))
	defer eng.Close()
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var sawTimeout bool
	for _, upd := range s {
		if _, err := eng.ProcessUpdate(ctx, upd); err == csm.ErrDeadline {
			sawTimeout = true
			break
		}
	}
	if !sawTimeout {
		t.Skip("workload produced no search work before the deadline")
	}
	evs := tr.Ring().Snapshot()
	last := evs[len(evs)-1]
	if !last.Timeout {
		t.Fatalf("deadline-aborted update not flagged: %+v", last)
	}
	if tr.Counters().Timeouts == 0 {
		t.Fatal("timeout counter not incremented")
	}
}

// TestStatsConcurrentWithProcessUpdate hammers Stats()/ResetStats()
// concurrently with a ProcessUpdate loop. Run under -race, it locks in
// the snapshot semantics of the ThreadBusy copy in Engine.Stats: readers
// always observe a consistent copy, never the live slice the workers
// append into.
func TestStatsConcurrentWithProcessUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := algotest.RandomGraph(rng, 60, 600, 1, 1)
	q := algotest.RandomQuery(rng, g, 4)
	s := algotest.RandomStream(rng, g, 300, 0.7, 1)

	f := algotest.Factories()[0]
	tr := obs.NewTracer(32)
	eng := New(f.New(), Threads(4), InterUpdate(false), EscalateNodes(16), WithTracer(tr))
	defer eng.Close()
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(reset bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := eng.Stats()
				// Touch the snapshot so the race detector sees the read
				// of every slot; also verify the copy is self-consistent
				// (appending workers must never be visible mid-flight).
				var sum time.Duration
				for _, b := range st.ThreadBusy {
					sum += b
				}
				_ = sum
				if reset {
					eng.ResetStats()
				}
			}
		}(i == 2)
	}

	ctx := context.Background()
	for _, upd := range s {
		if _, err := eng.ProcessUpdate(ctx, upd); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// allocProbeAlgo is an intentionally allocation-free Algorithm: Roots
// emits a fixed number of states, Expand nothing, Terminal matches
// immediately. It isolates the engine's own per-update allocations so
// the nil-tracer zero-extra-allocation guarantee is testable without
// noise from algorithm internals.
type allocProbeAlgo struct{ roots int }

func (a *allocProbeAlgo) Name() string                           { return "allocprobe" }
func (a *allocProbeAlgo) Build(*graph.Graph, *query.Graph) error { return nil }
func (a *allocProbeAlgo) UpdateADS(stream.Update)                {}
func (a *allocProbeAlgo) AffectsADS(stream.Update) bool          { return true }
func (a *allocProbeAlgo) RebuildADS() bool                       { return true }
func (a *allocProbeAlgo) Roots(_ stream.Update, emit func(csm.State)) {
	for i := 0; i < a.roots; i++ {
		emit(csm.State{Depth: 2})
	}
}
func (a *allocProbeAlgo) Expand(*csm.State, func(csm.State)) {}
func (a *allocProbeAlgo) Terminal(*csm.State) (uint64, bool) { return 1, true }

func allocsPerUpdate(t *testing.T, opts ...Option) float64 {
	t.Helper()
	g := graph.New(0)
	for i := 0; i < 4; i++ {
		g.AddVertex(0)
	}
	opts = append([]Option{Threads(1), InterUpdate(false)}, opts...)
	eng := New(&allocProbeAlgo{roots: 4}, opts...)
	defer eng.Close()
	q, err := query.New([]graph.Label{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	add := stream.Update{Op: stream.AddEdge, U: 0, V: 1}
	del := stream.Update{Op: stream.DeleteEdge, U: 0, V: 1}
	cycle := func() {
		if _, err := eng.ProcessUpdate(ctx, add); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ProcessUpdate(ctx, del); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: first cycle grows adjacency slices, ThreadBusy, rootBuf.
	for i := 0; i < 16; i++ {
		cycle()
	}
	return testing.AllocsPerRun(200, cycle) / 2 // two updates per cycle
}

// TestProcessUpdateAllocations is the hot-path guarantee of the
// observability layer: with no tracer configured ProcessUpdate performs
// zero allocations per update, and even an attached tracer adds none
// (events are stack-built, the ring is preallocated, histogram memory is
// fixed). The nil-callback cases also lock in the match-delta hook's
// contract: an unset OnDelta costs one branch and no allocations, and
// even a set callback (stack-passed value args, closure built once)
// stays allocation-free.
func TestProcessUpdateAllocations(t *testing.T) {
	nilAllocs := allocsPerUpdate(t)
	tracedAllocs := allocsPerUpdate(t, WithTracer(obs.NewTracer(64)))
	var deltaUpdates uint64
	deltaAllocs := allocsPerUpdate(t, WithOnDelta(func(upd stream.Update, d csm.Delta, timeout bool) {
		deltaUpdates += d.Positive + d.Negative + 1
	}))
	if nilAllocs != 0 {
		t.Errorf("nil-tracer path allocates %.2f per update, want 0", nilAllocs)
	}
	if tracedAllocs != 0 {
		t.Errorf("traced path allocates %.2f per update, want 0", tracedAllocs)
	}
	if deltaAllocs != 0 {
		t.Errorf("OnDelta path allocates %.2f per update, want 0", deltaAllocs)
	}
	if deltaUpdates == 0 {
		t.Error("OnDelta callback never fired")
	}
}
