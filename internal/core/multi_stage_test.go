package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// TestMultiStageCountsReconcile is the acceptance invariant of the
// pipeline tracing layer: after any mix of batches — including invalid
// updates that the speculative apply filters out — every per-update
// stage histogram holds EXACTLY one sample per applied update. Run under
// -race this also exercises QuerySnapshots/TotalStats readers against
// the lockstep driver.
func TestMultiStageCountsReconcile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := algotest.RandomGraph(rng, 30, 60, 2, 1)
	qA := algotest.RandomQuery(rng, g, 3)
	qB := algotest.RandomQuery(rng, g, 3)
	if qA == nil || qB == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 120, 0.7, 1)

	tr := obs.NewTracer(1 << 10)
	m := NewMulti(Threads(2), WithTracer(tr))
	defer m.Close()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("a", algotest.Factories()[2].New(), qA); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("b", algotest.Factories()[4].New(), qB); err != nil {
		t.Fatal(err)
	}

	// Concurrent observability readers, racing the lockstep driver.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, qs := range m.QuerySnapshots() {
				_ = qs.Stats.Updates
			}
			_ = m.TotalStats()
		}
	}()

	ctx := context.Background()
	applied, submitted := 0, 0
	for off := 0; off < len(s); off += 16 {
		end := off + 16
		if end > len(s) {
			end = len(s)
		}
		chunk := append(stream.Stream(nil), s[off:end]...)
		// A guaranteed-invalid update (self-loop delete that was never
		// inserted): filtered by the speculative apply, so it must NOT
		// contribute stage samples.
		chunk = append(chunk, stream.Update{Op: stream.DeleteEdge, U: 0, V: 0})
		var bt *BatchTimes
		if off == 0 {
			// One timed batch: queue waits must flow into the wait stages.
			now := time.Now()
			bt = &BatchTimes{Flushed: now}
			for range chunk {
				bt.Enqueued = append(bt.Enqueued, now.Add(-10*time.Millisecond))
				bt.Dequeued = append(bt.Dequeued, now.Add(-2*time.Millisecond))
			}
		}
		n, err := m.ProcessBatchTimed(ctx, chunk, bt)
		if err != nil {
			t.Fatal(err)
		}
		applied += n
		submitted += len(chunk)
	}
	close(stop)
	wg.Wait()

	if applied >= submitted {
		t.Fatalf("no invalid updates filtered (applied %d of %d); the test lost its point", applied, submitted)
	}
	st := tr.Stages()
	for _, stg := range obs.UpdateStages {
		if got := st.Hist(stg).Count(); got != uint64(applied) {
			t.Errorf("stage %v count = %d, want applied %d", stg, got, applied)
		}
	}
	if ws := st.Hist(obs.StageIngestWait).Sum(); ws < 8*time.Millisecond {
		t.Errorf("ingest-wait sum %v; the timed batch's queue waits never landed", ws)
	}
	if as := st.Hist(obs.StageAssemble).Sum(); as < time.Millisecond {
		t.Errorf("assemble sum %v; the timed batch's dwell never landed", as)
	}

	// The ring carries one ClassStage event per applied update, each
	// internally consistent.
	stageEvents := 0
	for _, ev := range tr.Ring().Snapshot() {
		if ev.Class != obs.ClassStage {
			continue
		}
		stageEvents++
		if sum := ev.IngestWait + ev.Assemble + ev.PreApply + ev.Commit + ev.PostApply; sum != ev.Total {
			t.Errorf("stage event parts %v != total %v", sum, ev.Total)
		}
	}
	if stageEvents != applied {
		t.Errorf("ring stage events = %d, want applied %d", stageEvents, applied)
	}

	// Per-query engines each saw every applied update.
	for _, qs := range m.QuerySnapshots() {
		if qs.Stats.Updates != applied {
			t.Errorf("query %q processed %d updates, want %d", qs.Name, qs.Stats.Updates, applied)
		}
	}
}

// TestMultiStageZeroQueryPath: with no registered queries the speculative
// apply IS the commit, and stage counts must still reconcile with the
// applied count (pre/post-apply observed as zero-duration samples).
func TestMultiStageZeroQueryPath(t *testing.T) {
	g := graph.New(0)
	for i := 0; i < 6; i++ {
		g.AddVertex(0)
	}
	tr := obs.NewTracer(256)
	m := NewMulti(WithTracer(tr))
	defer m.Close()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	batch := stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 1},
		{Op: stream.AddEdge, U: 1, V: 2},
		{Op: stream.AddEdge, U: 0, V: 1}, // duplicate: invalid
		{Op: stream.DeleteEdge, U: 0, V: 1},
	}
	applied, err := m.ProcessBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied = %d, want 3", applied)
	}
	st := tr.Stages()
	for _, stg := range obs.UpdateStages {
		if got := st.Hist(stg).Count(); got != uint64(applied) {
			t.Errorf("stage %v count = %d, want %d", stg, got, applied)
		}
	}
	// No queries: the fan-out stages are zero-duration placeholders.
	if st.Hist(obs.StagePreApply).Sum() != 0 || st.Hist(obs.StagePostApply).Sum() != 0 {
		t.Errorf("zero-query path recorded fan-out time: pre=%v post=%v",
			st.Hist(obs.StagePreApply).Sum(), st.Hist(obs.StagePostApply).Sum())
	}
}

// TestQuerySnapshotsAndClosedLatency covers the per-query tracer
// lifecycle: TrackQueries engines expose latency quantiles through
// QuerySnapshots, and a deregistered query's histogram survives into
// ClosedLatency — as a defensive copy, not a live reference.
func TestQuerySnapshotsAndClosedLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := algotest.RandomGraph(rng, 25, 50, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 80, 0.7, 1)

	m := NewMulti(Threads(1), TrackQueries(true))
	defer m.Close()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("a", algotest.Factories()[2].New(), q); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("b", algotest.Factories()[4].New(), q); err != nil {
		t.Fatal(err)
	}
	applied, err := m.ProcessBatch(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("no updates applied")
	}

	snaps := m.QuerySnapshots()
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "b" {
		t.Fatalf("snapshots = %+v, want a,b in registration order", snaps)
	}
	for _, qs := range snaps {
		if qs.Stats.Updates != applied {
			t.Errorf("query %q updates = %d, want %d", qs.Name, qs.Stats.Updates, applied)
		}
		if qs.Max <= 0 {
			t.Errorf("query %q has no latency quantiles despite TrackQueries", qs.Name)
		}
		if qs.P50 > qs.P90 || qs.P90 > qs.P99 || qs.P99 > qs.Max {
			t.Errorf("query %q quantiles not monotone: %v %v %v %v", qs.Name, qs.P50, qs.P90, qs.P99, qs.Max)
		}
	}

	if m.ClosedLatency() != nil {
		t.Fatal("ClosedLatency non-nil before any deregistration")
	}
	if !m.Deregister("a") {
		t.Fatal("deregister failed")
	}
	cl := m.ClosedLatency()
	if cl == nil {
		t.Fatal("ClosedLatency nil after deregistering a tracked query")
	}
	if cl.Count() != uint64(applied) {
		t.Fatalf("closed latency count = %d, want %d", cl.Count(), applied)
	}
	// The returned histogram is a copy: mutating it must not leak back.
	cl.Observe(time.Hour)
	if again := m.ClosedLatency(); again.Count() != uint64(applied) {
		t.Fatalf("ClosedLatency returned a live reference (count %d)", again.Count())
	}
	if got := len(m.QuerySnapshots()); got != 1 {
		t.Fatalf("snapshots after deregister = %d, want 1", got)
	}
}

// sharedAllocsPerUpdate measures steady-state allocations per update
// through the full serving-mode path (ProcessBatchTimed over a
// MultiEngine with one registered query), with the allocation-free probe
// algorithm isolating the driver's own cost.
func sharedAllocsPerUpdate(t *testing.T, bt *BatchTimes, opts ...Option) float64 {
	t.Helper()
	g := graph.New(0)
	for i := 0; i < 4; i++ {
		g.AddVertex(0)
	}
	opts = append([]Option{Threads(1), InterUpdate(false)}, opts...)
	m := NewMulti(opts...)
	defer m.Close()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	q, err := query.New([]graph.Label{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("probe", &allocProbeAlgo{roots: 4}, q); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	batch := stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 1},
		{Op: stream.DeleteEdge, U: 0, V: 1},
	}
	cycle := func() {
		if _, err := m.ProcessBatchTimed(ctx, batch, bt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	return testing.AllocsPerRun(200, cycle) / float64(len(batch))
}

// TestSharedPathAllocations pins the serving-path zero-allocation
// guarantee end to end at the driver level: with no tracer the lockstep
// ProcessBatch path performs zero allocations per update, and attaching
// a tracer — stage clocks, stage histograms, ring events, queue
// timestamps — adds none.
func TestSharedPathAllocations(t *testing.T) {
	nilAllocs := sharedAllocsPerUpdate(t, nil)
	tracedAllocs := sharedAllocsPerUpdate(t, nil, WithTracer(obs.NewTracer(64)))
	now := time.Now()
	bt := &BatchTimes{
		Enqueued: []time.Time{now, now},
		Dequeued: []time.Time{now, now},
		Flushed:  now,
	}
	timedAllocs := sharedAllocsPerUpdate(t, bt, WithTracer(obs.NewTracer(64)))
	if nilAllocs != 0 {
		t.Errorf("nil-tracer shared path allocates %.2f per update, want 0", nilAllocs)
	}
	if tracedAllocs != 0 {
		t.Errorf("traced shared path allocates %.2f per update, want 0", tracedAllocs)
	}
	if timedAllocs != 0 {
		t.Errorf("traced+timed shared path allocates %.2f per update, want 0", timedAllocs)
	}
}
