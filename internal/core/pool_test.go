package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// treeAlgo is a synthetic csm.Algorithm with a fully controlled search
// tree, independent of the graph: Roots emits one leaf plus one "chain"
// state; a chain state with Order k expands into width leaves and one
// chain child with Order k-1. Terminal states (Order 0) count one match.
// slow delays every chain expansion, making the chain subtree the
// deliberately skewed long pole of the tree.
type treeAlgo struct {
	width int
	depth int
	slow  time.Duration
}

func (a *treeAlgo) Name() string                               { return "tree" }
func (a *treeAlgo) Build(g *graph.Graph, q *query.Graph) error { return nil }
func (a *treeAlgo) UpdateADS(upd stream.Update)                {}
func (a *treeAlgo) AffectsADS(upd stream.Update) bool          { return true }

func (a *treeAlgo) Roots(upd stream.Update, emit func(csm.State)) {
	emit(csm.State{Order: uint16(a.depth), Depth: 2}) // chain seed
	emit(csm.State{Order: 0, Depth: 2})               // plain leaf
}

func (a *treeAlgo) Expand(s *csm.State, emit func(csm.State)) {
	if a.slow > 0 {
		time.Sleep(a.slow)
	}
	for i := 0; i < a.width; i++ {
		emit(csm.State{Order: 0, Depth: s.Depth + 1})
	}
	emit(csm.State{Order: s.Order - 1, Depth: s.Depth + 1})
}

func (a *treeAlgo) Terminal(s *csm.State) (uint64, bool) {
	if s.Order == 0 {
		return 1, true
	}
	return 0, false
}

// treeEngine builds an engine around a treeAlgo over a trivial 4-vertex
// graph/query pair.
func treeEngine(t *testing.T, a *treeAlgo, opts ...Option) (*Engine, *graph.Graph) {
	t.Helper()
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(1)
	}
	q := query.MustNew([]graph.Label{1, 1, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	eng := New(a, opts...)
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	return eng, g
}

// TestPoolGoroutinesStableAcrossStream: escalated updates must reuse the
// persistent pool — the goroutine count may grow once (pool start) and
// must then stay flat across a 1000-update stream.
func TestPoolGoroutinesStableAcrossStream(t *testing.T) {
	a := &treeAlgo{width: 4, depth: 8}
	eng, _ := treeEngine(t, a, Threads(4), InterUpdate(false), EscalateNodes(4), SplitDepth(100))
	defer eng.Close()
	ctx := context.Background()

	flip := func(i int) stream.Update {
		if i%2 == 0 {
			return stream.Update{Op: stream.AddEdge, U: 0, V: 1}
		}
		return stream.Update{Op: stream.DeleteEdge, U: 0, V: 1}
	}
	if _, err := eng.ProcessUpdate(ctx, flip(0)); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 1; i <= 1000; i++ {
		if _, err := eng.ProcessUpdate(ctx, flip(i)); err != nil {
			t.Fatal(err)
		}
	}
	if now := runtime.NumGoroutine(); now > base+2 {
		t.Fatalf("goroutines grew across 1000 updates: %d -> %d", base, now)
	}
	st := eng.Stats()
	if st.Escalations < 1000 {
		t.Fatalf("only %d/1001 updates escalated; workload misconfigured", st.Escalations)
	}
	if st.Parks == 0 {
		t.Fatal("pool recorded no parks across 1000 escalated updates")
	}

	eng.Close()
	time.Sleep(10 * time.Millisecond) // let pool goroutines exit
	if now := runtime.NumGoroutine(); now > base {
		t.Fatalf("Close did not release pool goroutines: %d -> %d", base, now)
	}
}

// TestStarvationResplit: with 2 workers, a deep skewed chain and instant
// sibling leaves, the idle worker must trigger adaptive re-splitting, and
// match/node counts must equal the sequential run exactly.
func TestStarvationResplit(t *testing.T) {
	run := func(threads int) (Stats, uint64) {
		a := &treeAlgo{width: 3, depth: 100, slow: 200 * time.Microsecond}
		eng, _ := treeEngine(t, a, Threads(threads), InterUpdate(false),
			EscalateNodes(4), SplitDepth(200))
		defer eng.Close()
		d, err := eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 0, V: 1})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Stats(), d.Positive
	}

	seqStats, seqMatches := run(1)
	parStats, parMatches := run(2)
	if parMatches != seqMatches || parStats.Nodes != seqStats.Nodes {
		t.Fatalf("pooled run (+%d, %d nodes) != sequential (+%d, %d nodes)",
			parMatches, parStats.Nodes, seqMatches, seqStats.Nodes)
	}
	if parStats.Resplits == 0 {
		t.Fatal("skewed 2-worker run triggered no adaptive re-split")
	}
	if parStats.Parks == 0 || parStats.Wakeups == 0 {
		t.Fatalf("no park/wakeup traffic (parks=%d wakeups=%d)", parStats.Parks, parStats.Wakeups)
	}
}

// TestEngineCloseSemantics: Close is idempotent, works on engines that
// never escalated, and the engine stays usable afterwards (the pool
// restarts lazily on the next escalation).
func TestEngineCloseSemantics(t *testing.T) {
	fresh := New(&treeAlgo{width: 2, depth: 2})
	fresh.Close() // never initialized, never escalated: must be a no-op
	fresh.Close()

	a := &treeAlgo{width: 4, depth: 8}
	eng, _ := treeEngine(t, a, Threads(3), InterUpdate(false), EscalateNodes(4), SplitDepth(100))
	ctx := context.Background()
	upd := stream.Update{Op: stream.AddEdge, U: 0, V: 1}
	d1, err := eng.ProcessUpdate(ctx, upd)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent

	// Submit after Close at the engine level: the pool restarts lazily and
	// the update processes identically.
	d2, err := eng.ProcessUpdate(ctx, stream.Update{Op: stream.DeleteEdge, U: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Negative != d1.Positive {
		t.Fatalf("post-Close update found %d matches, pre-Close %d", d2.Negative, d1.Positive)
	}
	eng.Close()
}

// TestTimeoutContract: an expired deadline mid-search must return
// csm.ErrDeadline with the graph mutation applied — the edge present after
// AddEdge, absent after DeleteEdge — and a partial (lower-bound) Delta.
func TestTimeoutContract(t *testing.T) {
	// ~50*51+2 nodes per search: the sequential phase's deadline probe
	// (every 1024 nodes) fires mid-tree.
	a := &treeAlgo{width: 50, depth: 50}
	eng, g := treeEngine(t, a, Threads(1), InterUpdate(false))
	defer eng.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()

	// AddEdge: mutation applied before the search; must survive timeout.
	d, err := eng.ProcessUpdate(expired, stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	if err != csm.ErrDeadline {
		t.Fatalf("AddEdge err = %v, want ErrDeadline", err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("AddEdge timeout rolled back the mutation; contract says applied")
	}
	if d.Positive >= 50*51+2 {
		t.Fatalf("timed-out delta reports a full result (+%d)", d.Positive)
	}

	// DeleteEdge: find phase times out first, mutation must still apply.
	d, err = eng.ProcessUpdate(expired, stream.Update{Op: stream.DeleteEdge, U: 0, V: 1})
	if err != csm.ErrDeadline {
		t.Fatalf("DeleteEdge err = %v, want ErrDeadline", err)
	}
	if g.HasEdge(0, 1) {
		t.Fatal("DeleteEdge timeout left the edge in the graph; contract says applied")
	}
	if d.Negative >= 50*51+2 {
		t.Fatalf("timed-out delta reports a full result (-%d)", d.Negative)
	}

	// The stream can continue after a deadline error: a fresh context
	// processes the next update normally.
	if _, err := eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 2, V: 3}); err != nil {
		t.Fatalf("engine unusable after timeout: %v", err)
	}
}

// TestSequentialPhaseAttributedToSlotZero: every update's sequential find
// phase must land in ThreadBusy[0]; escalated epochs fill slots 1+.
func TestSequentialPhaseAttributedToSlotZero(t *testing.T) {
	a := &treeAlgo{width: 4, depth: 30}
	eng, _ := treeEngine(t, a, Threads(2), InterUpdate(false), EscalateNodes(8), SplitDepth(100))
	defer eng.Close()
	if _, err := eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if len(st.ThreadBusy) != 3 {
		t.Fatalf("ThreadBusy has %d slots, want 3 (caller + 2 workers)", len(st.ThreadBusy))
	}
	if st.ThreadBusy[0] <= 0 {
		t.Fatal("sequential phase not attributed to ThreadBusy[0]")
	}
	if st.ThreadBusy[1]+st.ThreadBusy[2] <= 0 {
		t.Fatal("escalated epoch recorded no worker busy time")
	}
}
