package core

import (
	"sort"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/stream"
)

// Execution-driven parallel-schedule simulation.
//
// The speedup experiments of the ParaCOSM paper ran on an 80-core Xeon;
// on machines without that parallelism (the common case for a laptop
// reproduction — and this repository's CI environment has a single core),
// wall-clock speedups are physically unmeasurable. Simulate mode keeps the
// computation exact — every search-tree node is really visited, every
// match really counted — while the *schedule* of Algorithm 2 is simulated
// for N virtual workers from the measured per-node cost:
//
//   - the search tree of each update is profiled into the atomic subtree
//     tasks the inner-update executor would place on its concurrent
//     queue (subtrees rooted at SPLIT_DEPTH);
//   - with load balancing, tasks are assigned longest-first to the
//     least-loaded worker (the greedy schedule dynamic work-sharing
//     converges to); without, tasks are assigned round-robin in
//     generation order at the coarse initial-split granularity,
//     reproducing the paper's "unbalanced" configuration (Figure 10);
//   - the simulated find time is the makespan plus explicit coordination
//     overheads (task queue operations, worker startup).
//
// Per-worker simulated loads feed Stats.ThreadBusy, so Figure 10's CDFs
// come out of the same machinery. On a real multicore, disable Simulate
// and the identical experiments measure wall-clock time instead.

// Simulated coordination overheads, charged per queue task and per worker
// wakeup. Measured once on the development machine; they only matter for
// trees near the escalation threshold.
const (
	simTaskOverhead   = 300 * time.Nanosecond
	simWorkerOverhead = 2 * time.Microsecond
	// simRealCapFactor bounds the real time spent on one update in
	// simulate mode at this multiple of the remaining simulated budget
	// (a 32-worker simulation may legitimately run 32x its simulated
	// time in wall-clock terms; this caps the damage on explosions).
	simRealCapFactor = 8
)

// initialSplitDepth is the BFS layer used as task granularity by the
// non-load-balanced ("unbalanced") configuration: the first expansion
// layer below the seed edge, matching Algorithm 2's initialization phase.
const initialSplitDepth = 3

// simProfile records the task decomposition of one update's search tree.
type simProfile struct {
	totalNodes uint64
	// coarse are subtree sizes (in nodes) at the initial-split layer.
	coarse []uint64
	// fine are subtree sizes at SPLIT_DEPTH (adaptive re-splitting
	// granularity).
	fine []uint64
}

// findMatchesSimulated explores the update's search tree sequentially,
// profiling the task decomposition, and returns the result together with
// the simulated parallel find time.
//
//paracosm:allocs simulation mode profiles the task tree into scratch slices
func (e *Engine) findMatchesSimulated(deadline time.Time, hasDeadline bool, upd stream.Update, positive bool) (innerResult, time.Duration) {
	var res innerResult
	prof := simProfile{}
	threads := e.cfg.Threads

	splitDepth := e.splitDepth
	start := time.Now()
	// simLimit is the simulated time still available for this update:
	// the run budget minus simulated time already spent. Using the
	// simulated clock here matters — real elapsed time in simulate mode
	// exceeds simulated time by up to the thread count, and comparing
	// against wall-clock deadlines would abort runs that are well within
	// their simulated budget.
	var simLimit, realCap time.Duration
	if hasDeadline {
		if e.simBudget > 0 {
			simLimit = e.simBudget - e.totalElapsed()
		} else {
			simLimit = time.Until(deadline)
		}
		if simLimit <= 0 {
			res.timeout = true
			return res, 0
		}
		realCap = simLimit * simRealCapFactor
	}

	var dfs func(s *csm.State) uint64
	dfs = func(s *csm.State) uint64 {
		if res.timeout {
			return 0
		}
		res.nodes++
		prof.totalNodes++
		if res.nodes%4096 == 0 && hasDeadline {
			el := time.Since(start)
			// Simulated elapsed time for this update is at best
			// el/threads; abort when even that optimistic bound exceeds
			// the remaining simulated budget, or when the real-time cap
			// is blown.
			if el/time.Duration(threads) > simLimit || el > realCap {
				res.timeout = true
				return 1
			}
		}
		if c, done := e.algo.Terminal(s); done {
			res.matches += c
			e.emitMatch(s, c, positive)
			return 1
		}
		sub := uint64(1)
		e.algo.Expand(s, func(child csm.State) {
			n := dfs(&child)
			sub += n
			if int(child.Depth) == initialSplitDepth {
				prof.coarse = append(prof.coarse, n)
			}
			if int(child.Depth) == splitDepth && splitDepth != initialSplitDepth {
				prof.fine = append(prof.fine, n)
			}
		})
		return sub
	}

	e.algo.Roots(upd, func(root csm.State) {
		if res.timeout {
			return
		}
		n := dfs(&root)
		// Roots are at depth 2; if the split layers coincide with the
		// root layer (tiny queries), treat each root as a task.
		if initialSplitDepth <= 2 {
			prof.coarse = append(prof.coarse, n)
		}
		if splitDepth <= 2 {
			prof.fine = append(prof.fine, n)
		}
	})
	if splitDepth == initialSplitDepth {
		prof.fine = prof.coarse
	}

	elapsed := time.Since(start)
	simFind := e.simulateSchedule(&prof, elapsed)
	return res, simFind
}

// simulateSchedule converts the profiled decomposition into a simulated
// parallel find time, and accumulates per-worker loads into ThreadBusy.
func (e *Engine) simulateSchedule(prof *simProfile, measured time.Duration) time.Duration {
	threads := e.cfg.Threads
	if prof.totalNodes == 0 {
		return 0
	}
	perNode := float64(measured) / float64(prof.totalNodes)
	// Below the escalation threshold the executor never goes parallel:
	// simulated time is the measured sequential time, attributed to the
	// caller slot (ThreadBusy[0]) like real sequential phases.
	if prof.totalNodes <= uint64(e.cfg.EscalateNodes) || threads <= 1 {
		e.statsMu.Lock()
		if len(e.stats.ThreadBusy) == 0 {
			e.stats.ThreadBusy = append(e.stats.ThreadBusy, 0)
		}
		e.stats.ThreadBusy[0] += measured
		e.statsMu.Unlock()
		return measured
	}

	var coarseTotal, fineTotal uint64
	for _, t := range prof.coarse {
		coarseTotal += t
	}
	for _, t := range prof.fine {
		fineTotal += t
	}
	// Nodes above the coarse layer are explored by the main thread during
	// initialization; everything below it is parallel work.
	pre := prof.totalNodes - coarseTotal

	tasks := prof.fine
	var loads []uint64
	var makespan uint64
	if e.cfg.LoadBalance {
		// Balanced: adaptive re-splitting shares work down to SPLIT_DEPTH
		// granularity; LPT over the fine tasks models the resulting
		// schedule. Nodes between the coarse and fine layers are abundant
		// small work that spreads evenly.
		makespan, loads = lptMakespan(tasks, threads)
		inBetween := coarseTotal - fineTotal
		per := inBetween / uint64(threads)
		for w := range loads {
			loads[w] += per
		}
		makespan = maxLoad(loads)
	} else {
		// Unbalanced: coarse tasks assigned statically, no re-splitting.
		tasks = prof.coarse
		makespan, loads = staticMakespan(prof.coarse, threads)
	}

	overhead := time.Duration(len(tasks))*simTaskOverhead/time.Duration(threads) +
		time.Duration(threads)*simWorkerOverhead
	sim := time.Duration(float64(pre+makespan)*perNode) + overhead

	e.statsMu.Lock()
	for len(e.stats.ThreadBusy) < threads+1 {
		e.stats.ThreadBusy = append(e.stats.ThreadBusy, 0)
	}
	// Slot 0 is the caller thread (initialization above the coarse split
	// layer); slots 1..threads are the simulated workers — the same
	// convention the real executor uses (see Stats.ThreadBusy).
	e.stats.ThreadBusy[0] += time.Duration(float64(pre) * perNode)
	for w, l := range loads {
		e.stats.ThreadBusy[w+1] += time.Duration(float64(l) * perNode)
	}
	e.stats.Escalations++
	e.statsMu.Unlock()
	return sim
}

// lptMakespan schedules tasks longest-first onto the least-loaded of n
// workers (the greedy approximation dynamic work-sharing converges to) and
// returns the makespan and per-worker loads.
func lptMakespan(tasks []uint64, n int) (uint64, []uint64) {
	loads := make([]uint64, n)
	if len(tasks) == 0 {
		return 0, loads
	}
	sorted := append([]uint64(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	for _, t := range sorted {
		min := 0
		for w := 1; w < n; w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += t
	}
	return maxLoad(loads), loads
}

// staticMakespan assigns tasks round-robin in generation order — no
// rebalancing, the "unbalanced" baseline of Figure 10.
func staticMakespan(tasks []uint64, n int) (uint64, []uint64) {
	loads := make([]uint64, n)
	for i, t := range tasks {
		loads[i%n] += t
	}
	return maxLoad(loads), loads
}

func maxLoad(loads []uint64) uint64 {
	var m uint64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}
