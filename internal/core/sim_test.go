package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/refmatch"
)

func TestLPTMakespanBasics(t *testing.T) {
	// Tasks 5,4,3,3,3 on 2 workers: LPT gives {5,3,3}=11? greedy:
	// 5->w0, 4->w1, 3->w1(7), 3->w0(8), 3->w1(10) => makespan 10.
	m, loads := lptMakespan([]uint64{5, 4, 3, 3, 3}, 2)
	if m != 10 {
		t.Fatalf("makespan = %d, want 10 (loads %v)", m, loads)
	}
	if loads[0]+loads[1] != 18 {
		t.Fatalf("loads don't conserve work: %v", loads)
	}
}

func TestLPTEmptyAndSingle(t *testing.T) {
	if m, _ := lptMakespan(nil, 4); m != 0 {
		t.Fatalf("empty makespan = %d", m)
	}
	if m, _ := lptMakespan([]uint64{7}, 4); m != 7 {
		t.Fatalf("single-task makespan = %d", m)
	}
}

func TestStaticMakespanRoundRobin(t *testing.T) {
	// Round-robin of 4,4,1,1 on 2 workers: w0={4,1}=5, w1={4,1}=5.
	m, _ := staticMakespan([]uint64{4, 4, 1, 1}, 2)
	if m != 5 {
		t.Fatalf("static makespan = %d, want 5", m)
	}
	// Adversarial order: 4,1,4,1 -> w0={4,4}=8.
	m, _ = staticMakespan([]uint64{4, 1, 4, 1}, 2)
	if m != 8 {
		t.Fatalf("static makespan = %d, want 8", m)
	}
}

// Property: LPT makespan is bounded below by both max task and total/n,
// above by total; and never exceeds the static round-robin makespan by
// more than rounding (LPT is the balanced schedule).
func TestMakespanProperties(t *testing.T) {
	f := func(raw []uint16, n8 uint8) bool {
		n := 1 + int(n8%16)
		tasks := make([]uint64, len(raw))
		var total, max uint64
		for i, r := range raw {
			tasks[i] = uint64(r)
			total += uint64(r)
			if uint64(r) > max {
				max = uint64(r)
			}
		}
		m, loads := lptMakespan(tasks, n)
		var sum uint64
		for _, l := range loads {
			sum += l
		}
		if sum != total {
			return false
		}
		if m < max || m > total {
			return len(tasks) == 0 && m == 0
		}
		lower := (total + uint64(n) - 1) / uint64(n)
		if m < lower {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulateMatchesReference: simulate mode changes only timing, never
// results.
func TestSimulateMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g0 := algotest.RandomGraph(rng, 30, 70, 2, 1)
		q := algotest.RandomQuery(rng, g0, 4)
		if q == nil {
			continue
		}
		s := algotest.RandomStream(rng, g0, 40, 0.7, 1)
		wantPos, wantNeg := totalsVsReference(g0, q, s, refmatch.Options{})
		f := algotest.Factories()[2] // GraphFlow
		eng := New(f.New(), Threads(16), Simulate(true), InterUpdate(true), EscalateNodes(8))
		if err := eng.Init(g0.Clone(), q); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if st.Positive != wantPos || st.Negative != wantNeg {
			t.Fatalf("seed %d: simulate totals (+%d,-%d) != reference (+%d,-%d)",
				seed, st.Positive, st.Negative, wantPos, wantNeg)
		}
	}
}

// TestSimulatedSpeedupOnHeavyTree: on a dense single-label workload the
// simulated 16-worker find time must be well below the 1-thread find time,
// and balanced scheduling must not be slower than unbalanced.
func TestSimulatedSpeedupOnHeavyTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g0 := algotest.RandomGraph(rng, 80, 1200, 1, 1)
	q := algotest.RandomQuery(rng, g0, 5)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g0, 10, 1.0, 1)
	f := algotest.Factories()[2] // GraphFlow

	run := func(threads int, sim, balance bool) time.Duration {
		eng := New(f.New(), Threads(threads), Simulate(sim), InterUpdate(false), LoadBalance(balance))
		if err := eng.Init(g0.Clone(), q); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), s); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().TFind
	}

	seq := run(1, false, true)
	par := run(16, true, true)
	unbal := run(16, true, false)
	if seq < 2*time.Millisecond {
		t.Skipf("workload too light to judge (%v)", seq)
	}
	if par >= seq {
		t.Fatalf("simulated 16-worker find (%v) not faster than sequential (%v)", par, seq)
	}
	if unbal < par/2 {
		t.Fatalf("unbalanced (%v) dramatically faster than balanced (%v)?", unbal, par)
	}
}

// TestSimulatedThreadBusySpread: balanced simulation must produce tighter
// per-worker loads than unbalanced.
func TestSimulatedThreadBusySpread(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g0 := algotest.RandomGraph(rng, 80, 1200, 1, 1)
	q := algotest.RandomQuery(rng, g0, 5)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g0, 8, 1.0, 1)
	f := algotest.Factories()[2]

	spread := func(balance bool) float64 {
		eng := New(f.New(), Threads(8), Simulate(true), InterUpdate(false), LoadBalance(balance))
		if err := eng.Init(g0.Clone(), q); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), s); err != nil {
			t.Fatal(err)
		}
		busy := eng.Stats().ThreadBusy
		if len(busy) == 0 {
			t.Skip("no parallel phase engaged")
		}
		min, max := busy[0], busy[0]
		for _, b := range busy {
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		if max == 0 {
			t.Skip("no load recorded")
		}
		return float64(max-min) / float64(max)
	}
	if sb, su := spread(true), spread(false); sb > su+0.05 {
		t.Fatalf("balanced spread %.3f worse than unbalanced %.3f", sb, su)
	}
}
