// Package core implements ParaCOSM itself: the two-level parallel
// framework of the paper. Given any csm.Algorithm (the user-supplied
// traversal routine plus filtering rule), it provides
//
//   - the inner-update executor (§4.1, Algorithm 2): fine-grained
//     decomposition of each update's search tree into subtree tasks,
//     dispatched through a concurrent queue with adaptive re-splitting
//     driven by idle-thread detection; and
//
//   - the inter-update executor (§4.2, Figure 6): a three-stage update
//     type classifier (label filter, degree filter, ADS/candidate filter)
//     run in parallel over batches, applying safe updates directly and
//     deferring everything after the first unsafe update to the next
//     batch.
package core

import (
	"runtime"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/obs"
	"paracosm/internal/stream"
)

// Config controls ParaCOSM's parallel execution.
type Config struct {
	// Threads is the worker pool size (N and M of the speedup model,
	// §4.3). Defaults to runtime.GOMAXPROCS(0). Threads == 1 degenerates
	// to faithful sequential execution.
	Threads int

	// BatchSize is k, the number of updates classified per inter-update
	// batch. Defaults to 4 * Threads.
	BatchSize int

	// SplitDepth is SPLIT_DEPTH of Algorithm 2: search-tree nodes at
	// depth below it may be re-split into queue tasks when idle threads
	// are detected. 0 (the default) auto-tunes to |V(Q)|-2 at Init, so
	// that even explosions deep in the tree can be shared; set it lower
	// to bound task-splitting overhead.
	SplitDepth int

	// EscalateNodes is the sequential node budget per update before the
	// inner-update executor escalates to the parallel phase. Update
	// streams are heavy-tailed: most search trees die within a few
	// nodes, so parallel coordination is only engaged for trees that
	// prove heavy. Defaults to 4096.
	EscalateNodes int

	// LoadBalance enables adaptive task re-splitting during the parallel
	// phase. Disabling it reproduces the "unbalanced" configuration of
	// Figure 10: tasks are only split during initialization.
	LoadBalance bool

	// InterUpdate enables the safe/unsafe batch executor. Disabling it
	// processes every update through the full (inner-parallel) path,
	// the baseline of Figure 11.
	InterUpdate bool

	// Simulate switches the executors to execution-driven schedule
	// simulation (see sim.go): the search runs for real, but parallel
	// find times, classification times and per-worker loads are computed
	// for Threads virtual workers from measured per-node costs. Use on
	// machines with fewer cores than the configuration under study.
	Simulate bool

	// Tracer, if non-nil, receives one obs.Event per processed update
	// (safe and unsafe alike) plus per-batch classification timings: the
	// always-on observability hook behind the /debug server. nil (the
	// default) costs a single predictable branch per update and zero
	// allocations — the hot path is unchanged. A single Tracer may be
	// shared across engines; its counters then aggregate.
	Tracer *obs.Tracer

	// OnDelta, if non-nil, observes every processed update's incremental
	// result — the match-delta hook the serving layer subscribes to
	// instead of polling Stats. It fires after the update is fully
	// applied (safe updates report an empty ΔM; a timed-out update
	// reports its partial lower-bound ΔM), from the goroutine driving the
	// engine, never concurrently with itself. Like Tracer, nil (the
	// default) costs one predictable branch per update and zero
	// allocations; the callback must not block — a slow consumer stalls
	// the update path.
	OnDelta DeltaFunc

	// TrackQueries attaches a per-query latency histogram to every engine
	// a MultiEngine registers, feeding QuerySnapshots and the serving
	// layer's /queries endpoint. Off by default: each histogram costs a
	// few KB, which would dominate the per-query memory footprint of
	// index-only workloads (the bench harness measures bytes/query with
	// this off). Ignored by standalone engines.
	TrackQueries bool

	// Window enables the batch-dynamic executor v2 when > 1: updates are
	// buffered into windows of up to Window updates, coalesced (exact
	// insert/delete pairs annihilate, repeated touches of one edge fold to
	// their net effect), and unsafe updates with disjoint conflict
	// footprints execute concurrently instead of serializing one at a
	// time. 0 or 1 (the default) keeps the per-update v1 executor.
	// Requires InterUpdate; ignored under Simulate (the simulator models
	// the per-update schedule).
	Window int

	// FootprintCap bounds the conflict-footprint size (vertices visited by
	// the query-relevant BFS) per update. An update whose footprint would
	// exceed the cap is treated as conflicting with everything — it runs
	// alone, exactly like the v1 serial path — so the cap trades grouping
	// opportunity for bounded conflict-build cost. Defaults to 512.
	FootprintCap int
}

// DeltaFunc observes one processed update's incremental result (see
// Config.OnDelta). timeout marks updates cut off by the context deadline,
// whose Delta is a partial lower bound on the true ΔM.
type DeltaFunc func(upd stream.Update, d csm.Delta, timeout bool)

// Option mutates a Config.
type Option func(*Config)

// Threads sets the worker pool size.
func Threads(n int) Option { return func(c *Config) { c.Threads = n } }

// BatchSize sets the inter-update batch size k.
func BatchSize(k int) Option { return func(c *Config) { c.BatchSize = k } }

// SplitDepth sets SPLIT_DEPTH for adaptive task splitting.
func SplitDepth(d int) Option { return func(c *Config) { c.SplitDepth = d } }

// EscalateNodes sets the sequential node budget before parallel
// escalation.
func EscalateNodes(n int) Option { return func(c *Config) { c.EscalateNodes = n } }

// LoadBalance toggles adaptive re-splitting (Figure 10 ablation).
func LoadBalance(on bool) Option { return func(c *Config) { c.LoadBalance = on } }

// InterUpdate toggles the batch executor (Figure 11 ablation).
func InterUpdate(on bool) Option { return func(c *Config) { c.InterUpdate = on } }

// Simulate toggles execution-driven schedule simulation.
func Simulate(on bool) Option { return func(c *Config) { c.Simulate = on } }

// WithTracer attaches an observability tracer (nil detaches).
func WithTracer(t *obs.Tracer) Option { return func(c *Config) { c.Tracer = t } }

// WithOnDelta attaches a match-delta callback (nil detaches).
func WithOnDelta(f DeltaFunc) Option { return func(c *Config) { c.OnDelta = f } }

// TrackQueries toggles per-query latency histograms in a MultiEngine.
func TrackQueries(on bool) Option { return func(c *Config) { c.TrackQueries = on } }

// Window sets the batch-dynamic window size (0 or 1 disables windowing).
func Window(n int) Option { return func(c *Config) { c.Window = n } }

// FootprintCap bounds the per-update conflict-footprint size.
func FootprintCap(n int) Option { return func(c *Config) { c.FootprintCap = n } }

func defaultConfig() Config {
	return Config{
		Threads:     runtime.GOMAXPROCS(0),
		LoadBalance: true,
		InterUpdate: true,
	}
}

func (c *Config) normalize() {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 4 * c.Threads
	}
	if c.SplitDepth < 0 {
		c.SplitDepth = 0
	}
	if c.EscalateNodes < 1 {
		c.EscalateNodes = 4096
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.FootprintCap < 1 {
		c.FootprintCap = 512
	}
}

// WindowCounters instruments the batch-dynamic (windowed) executor. A
// standalone Engine accumulates them inside its Stats; a MultiEngine
// counts at the shared driver level (once per update, not per query) and
// exposes them through MultiEngine.WindowCounters.
type WindowCounters struct {
	Windows        int // windows executed
	Coalesced      int // updates removed by window coalescing
	Annihilated    int // exact insert/delete pairs annihilated (2 updates each)
	UnsafeParallel int // updates committed in multi-update independent groups
	FallbackSerial int // conflict/overflow/barrier updates committed alone
	Groups         int // independent groups committed (including singletons)
	MaxGroup       int // largest independent group committed
}

// Add accumulates o into w (MaxGroup takes the max).
func (w *WindowCounters) Add(o WindowCounters) {
	w.Windows += o.Windows
	w.Coalesced += o.Coalesced
	w.Annihilated += o.Annihilated
	w.UnsafeParallel += o.UnsafeParallel
	w.FallbackSerial += o.FallbackSerial
	w.Groups += o.Groups
	if o.MaxGroup > w.MaxGroup {
		w.MaxGroup = o.MaxGroup
	}
}

// Stats aggregates a run's instrumentation, backing the paper's breakdown
// figures: the ADS/FindMatches split (Table 3), safe-update ratios
// (Table 4), classifier stage effectiveness (Figure 12) and per-thread
// busy times (Figure 10).
type Stats struct {
	Updates  int
	Positive uint64
	Negative uint64
	Nodes    uint64

	TADS   time.Duration
	TFind  time.Duration
	TTotal time.Duration

	// Inter-update executor counters.
	Batches       int
	SafeUpdates   int
	UnsafeUpdates int
	Reclassified  int // safe-at-classification, unsafe at re-validation
	SafeByLabel   int // rejected by stage 1
	SafeByDegree  int // passed stage 1, rejected by stage 2
	SafeByADS     int // passed stages 1-2, rejected by stage 3
	VertexUpdates int // trivially safe vertex ops

	// Inner-update executor / worker pool counters.
	Escalations int    // updates that escalated to the parallel phase
	Resplits    uint64 // subtrees re-split into pool tasks (adaptive sharing)
	Parks       uint64 // pool worker park events during escalated epochs
	Wakeups     uint64 // pool worker wakeups from park during epochs

	// Batch-dynamic executor counters (Config.Window > 1).
	Window WindowCounters

	// ThreadBusy holds cumulative per-thread busy times during
	// find-matches phases. Slot 0 is the caller thread: root collection
	// and the sequential (pre-escalation) phase of every update. Slot 1+w
	// is pool worker w during escalated parallel phases. Figure 10's CDF
	// is computed over all slots, so sequential search time is counted.
	ThreadBusy []time.Duration
}

// EscalationRate returns the fraction of updates whose search escalated to
// the parallel phase.
func (s Stats) EscalationRate() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.Escalations) / float64(s.Updates)
}

// Add accumulates o into s (counters summed, ThreadBusy merged
// elementwise). MultiEngine uses it to retain the totals of deregistered
// queries so serving-layer metrics stay monotonic across disconnects.
func (s *Stats) Add(o Stats) {
	s.Updates += o.Updates
	s.Positive += o.Positive
	s.Negative += o.Negative
	s.Nodes += o.Nodes
	s.TADS += o.TADS
	s.TFind += o.TFind
	s.TTotal += o.TTotal
	s.Batches += o.Batches
	s.SafeUpdates += o.SafeUpdates
	s.UnsafeUpdates += o.UnsafeUpdates
	s.Reclassified += o.Reclassified
	s.SafeByLabel += o.SafeByLabel
	s.SafeByDegree += o.SafeByDegree
	s.SafeByADS += o.SafeByADS
	s.VertexUpdates += o.VertexUpdates
	s.Escalations += o.Escalations
	s.Resplits += o.Resplits
	s.Parks += o.Parks
	s.Wakeups += o.Wakeups
	s.Window.Add(o.Window)
	for len(s.ThreadBusy) < len(o.ThreadBusy) {
		s.ThreadBusy = append(s.ThreadBusy, 0)
	}
	for i, d := range o.ThreadBusy {
		s.ThreadBusy[i] += d
	}
}

// SafeRatio returns the fraction of updates classified safe (γ of the
// speedup model).
func (s Stats) SafeRatio() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.SafeUpdates) / float64(s.Updates)
}
