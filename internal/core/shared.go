package core

import (
	"context"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/stream"
)

// This file is the engine side of the shared-graph multi-query path (see
// DESIGN.md §13). A MultiEngine owns ONE data graph that every registered
// query's engine reads; per-query state is index state only (ADS, scratch
// buffers, stats). The driver processes the stream in lockstep, splitting
// each update into two phases around the single graph mutation:
//
//	sharedPrepare (pre-apply, read-only):  classify the update against the
//	  current graph/ADS state; for an unsafe DeleteEdge, enumerate the
//	  expiring matches while the edge still exists.
//	-- the driver applies the update to the shared graph exactly once --
//	sharedCommit (post-apply): maintain the ADS, enumerate new matches for
//	  an unsafe AddEdge, and account/trace/report the combined delta.
//
// Neither phase mutates the graph — mutation is the driver's alone — so
// any number of engines run each phase concurrently over the shared graph
// under its concurrent-readers contract. The phases reuse the engine's
// classifier, find executor, accounting and callbacks, so a query observes
// exactly the deltas it would have produced running alone over a private
// clone; TestMultiEngineSharedOracle asserts that equivalence.

// sharedPending carries one update's state from sharedPrepare to
// sharedCommit: the classifier verdict, the pre-apply search result (for
// deletions), and the prepare-phase elapsed time. The driver serializes
// the two phases per engine, so the field needs no lock.
type sharedPending struct {
	verdict classification
	d       csm.Delta
	r       innerResult
	seqBusy time.Duration
	// prepElapsed is the caller time spent inside sharedPrepare; commit
	// adds its own share so TTotal never includes the driver's fan-out
	// barrier waits.
	prepElapsed time.Duration
	// err and done are used only by the windowed driver's slot buffer
	// (see multiwindow.go), which defers OnDelta emission to window end:
	// done marks a committed slot, err its commit error.
	err  error
	done bool
}

// sharedFullPath reports whether the verdict requires the full
// (ADS + enumeration) path.
func sharedFullPath(v classification) bool {
	return v == classUnsafe || v == classDirect
}

// sharedPrepare is the pre-apply phase of one shared-graph update: it runs
// strictly read-only against the graph. With the inter-update executor
// enabled it classifies the update against the CURRENT state (the lockstep
// driver applies one update at a time, so — unlike the batch executor's
// stage A — the verdict never needs re-validation); otherwise every edge
// update takes the full path, matching ProcessUpdate. For a DeleteEdge on
// the full path it enumerates the expiring matches now, while the edge is
// still present.
func (e *Engine) sharedPrepare(ctx context.Context, upd stream.Update) {
	e.sharedPrepareInto(ctx, upd, &e.shared)
}

// sharedPrepareInto is sharedPrepare writing into an explicit slot: the
// windowed driver keeps one sharedPending per coalesced update so a whole
// independent set can sit between its prepare and commit barriers.
func (e *Engine) sharedPrepareInto(ctx context.Context, upd stream.Update, p *sharedPending) {
	t0 := time.Now()
	*p = sharedPending{}
	switch {
	case !upd.IsEdge():
		p.verdict = classVertexOp
	case e.cfg.InterUpdate:
		p.verdict = e.classify(upd)
	default:
		p.verdict = classDirect
	}
	if upd.Op == stream.DeleteEdge && sharedFullPath(p.verdict) {
		deadline, hasDeadline := ctx.Deadline()
		simulate := e.cfg.Simulate && e.cfg.Threads > 1
		p.r, p.seqBusy = e.findPhase(deadline, hasDeadline, upd, false, simulate, &p.d)
		p.d.Negative, p.d.Nodes = p.r.matches, p.r.nodes
	}
	p.prepElapsed = time.Since(t0)
}

// sharedCommit is the post-apply phase: the driver has applied upd to the
// shared graph, every engine now maintains its own ADS and (for an unsafe
// AddEdge) enumerates the new matches. It finalizes accounting, tracing
// and the OnDelta callback exactly like the private-graph paths, and
// returns csm.ErrDeadline under the same timeout contract as
// ProcessUpdate: the mutation and ADS maintenance are applied, the Delta
// is a partial lower-bound ΔM.
func (e *Engine) sharedCommit(ctx context.Context, upd stream.Update) (csm.Delta, error) {
	return e.sharedCommitFrom(ctx, upd, &e.shared, true)
}

// sharedCommitFrom is sharedCommit reading from an explicit slot. With
// emit false the OnDelta callback is suppressed — the windowed driver
// emits slot deltas itself at window end, in window order (commuting
// updates make the delta values order-independent, so deferral only
// restores the observable order).
func (e *Engine) sharedCommitFrom(ctx context.Context, upd stream.Update, p *sharedPending, emit bool) (csm.Delta, error) {
	t0 := time.Now()
	simulate := e.cfg.Simulate && e.cfg.Threads > 1

	if sharedFullPath(p.verdict) || p.verdict == classVertexOp {
		tA := time.Now()
		e.algo.UpdateADS(upd)
		p.d.TADS = time.Since(tA)
		if upd.Op == stream.AddEdge {
			deadline, hasDeadline := ctx.Deadline()
			p.r, p.seqBusy = e.findPhase(deadline, hasDeadline, upd, true, simulate, &p.d)
			p.d.Positive, p.d.Nodes = p.r.matches, p.r.nodes
		}
		var err error
		if p.r.timeout {
			err = csm.ErrDeadline
		}
		total := p.prepElapsed + time.Since(t0)
		e.account(&p.d, p.seqBusy, total)
		if e.cfg.InterUpdate {
			// Parity with runBatch's executor counters.
			e.statsMu.Lock()
			if p.verdict == classVertexOp {
				e.stats.VertexUpdates++
				e.stats.SafeUpdates++
			} else {
				e.stats.UnsafeUpdates++
			}
			e.statsMu.Unlock()
		}
		if e.cfg.Tracer != nil {
			if simulate {
				total = p.d.TADS + p.d.TFind
			}
			e.traceUpdate(upd, p.verdict, false, &p.d, &p.r, total, err != nil)
		}
		if emit && e.cfg.OnDelta != nil {
			e.cfg.OnDelta(upd, p.d, err != nil)
		}
		return p.d, err
	}

	// Safe verdicts: the ΔM is provably empty, so enumeration is skipped.
	// Label/degree-safe updates still maintain the ADS (the degree change
	// can flip candidacy elsewhere); only stage-3 safety proves the ADS
	// untouched. Mirrors the batch executor's safe path, including the
	// simulate-mode M-way discount.
	var tads time.Duration
	if p.verdict != classSafeADS {
		tA := time.Now()
		e.algo.UpdateADS(upd)
		tads = time.Since(tA)
	}
	div := time.Duration(1)
	if simulate {
		div = time.Duration(e.cfg.Threads)
	}
	tads /= div
	total := (p.prepElapsed + time.Since(t0)) / div
	e.statsMu.Lock()
	e.stats.Updates++
	e.stats.SafeUpdates++
	e.stats.TADS += tads
	switch p.verdict {
	case classSafeLabel:
		e.stats.SafeByLabel++
	case classSafeDegree:
		e.stats.SafeByDegree++
	case classSafeADS:
		e.stats.SafeByADS++
	}
	e.stats.TTotal += total
	e.statsMu.Unlock()
	if e.lat != nil {
		e.lat.Observe(total)
	}
	p.d = csm.Delta{TADS: tads}
	if e.cfg.Tracer != nil {
		var r innerResult
		e.traceUpdate(upd, p.verdict, false, &p.d, &r, total, false)
	}
	if emit && e.cfg.OnDelta != nil {
		// Safe updates carry an empty ΔM by construction; the callback
		// still fires so subscribers observe stream progress.
		e.cfg.OnDelta(upd, p.d, false)
	}
	return p.d, nil
}
