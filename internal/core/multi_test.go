package core

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/query"
	"paracosm/internal/refmatch"
)

func TestMultiEngineMatchesIndividualRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := algotest.RandomGraph(rng, 26, 55, 2, 1)
	q1 := algotest.RandomQuery(rng, g, 3)
	q2 := algotest.RandomQuery(rng, g, 4)
	if q1 == nil || q2 == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 35, 0.7, 1)

	fGF := algotest.Factories()[2] // GraphFlow
	fSY := algotest.Factories()[4] // Symbi

	m := NewMulti(Threads(2), BatchSize(6))
	m.Register("gf-q1", fGF.New(), q1)
	m.Register("sy-q2", fSY.New(), q2)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if m.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}
	if err := m.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()

	// Reference totals per query. The diffs also verify the shared input
	// graph was untouched: each reference replay starts from g's current
	// (pre-stream) state.
	for name, qq := range map[string]*queryGraphAlias{"gf-q1": {q1}, "sy-q2": {q2}} {
		got := st[name]
		var wantPos, wantNeg uint64
		h := g.Clone()
		for _, upd := range s {
			p, n := refmatch.Delta(h, qq.g, upd, refmatch.Options{})
			wantPos += p
			wantNeg += n
			if err := upd.Apply(h); err != nil {
				t.Fatal(err)
			}
		}
		if got.Positive != wantPos || got.Negative != wantNeg {
			t.Fatalf("%s: (+%d,-%d), reference (+%d,-%d)", name, got.Positive, got.Negative, wantPos, wantNeg)
		}
	}
}

// queryGraphAlias keeps the reference-replay map literal tidy.
type queryGraphAlias struct{ g *query.Graph }

func TestMultiEngineRequiresQueries(t *testing.T) {
	m := NewMulti()
	rng := rand.New(rand.NewSource(1))
	g := algotest.RandomGraph(rng, 5, 5, 1, 1)
	if err := m.Init(g); err == nil {
		t.Fatal("Init with no queries accepted")
	}
}

func TestMultiEngineEngineLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := algotest.RandomGraph(rng, 20, 40, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	m := NewMulti(Threads(1))
	m.Register("only", algotest.Factories()[2].New(), q)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if m.Engine("only") == nil {
		t.Fatal("registered engine not found")
	}
	if m.Engine("nope") != nil {
		t.Fatal("unknown engine returned")
	}
}
