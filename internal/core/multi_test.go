package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

func TestMultiEngineMatchesIndividualRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := algotest.RandomGraph(rng, 26, 55, 2, 1)
	q1 := algotest.RandomQuery(rng, g, 3)
	q2 := algotest.RandomQuery(rng, g, 4)
	if q1 == nil || q2 == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 35, 0.7, 1)

	fGF := algotest.Factories()[2] // GraphFlow
	fSY := algotest.Factories()[4] // Symbi

	m := NewMulti(Threads(2), BatchSize(6))
	m.Register("gf-q1", fGF.New(), q1)
	m.Register("sy-q2", fSY.New(), q2)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if m.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}
	if err := m.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()

	// Reference totals per query. The diffs also verify the shared input
	// graph was untouched: each reference replay starts from g's current
	// (pre-stream) state.
	for name, qq := range map[string]*queryGraphAlias{"gf-q1": {q1}, "sy-q2": {q2}} {
		got := st[name]
		var wantPos, wantNeg uint64
		h := g.Clone()
		for _, upd := range s {
			p, n := refmatch.Delta(h, qq.g, upd, refmatch.Options{})
			wantPos += p
			wantNeg += n
			if err := upd.Apply(h); err != nil {
				t.Fatal(err)
			}
		}
		if got.Positive != wantPos || got.Negative != wantNeg {
			t.Fatalf("%s: (+%d,-%d), reference (+%d,-%d)", name, got.Positive, got.Negative, wantPos, wantNeg)
		}
	}
}

// queryGraphAlias keeps the reference-replay map literal tidy.
type queryGraphAlias struct{ g *query.Graph }

func TestMultiEngineEmptyInit(t *testing.T) {
	// Serving mode starts with zero queries: Init just retains the base
	// state, ProcessBatch advances it, and RegisterLive picks it up.
	m := NewMulti()
	rng := rand.New(rand.NewSource(1))
	g := algotest.RandomGraph(rng, 5, 5, 1, 1)
	if err := m.Init(g); err != nil {
		t.Fatalf("Init with no queries: %v", err)
	}
	if _, err := m.ProcessBatch(context.Background(), nil); err != nil {
		t.Fatalf("empty ProcessBatch: %v", err)
	}
}

func TestMultiEngineEngineLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := algotest.RandomGraph(rng, 20, 40, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	m := NewMulti(Threads(1))
	m.Register("only", algotest.Factories()[2].New(), q)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if m.Engine("only") == nil {
		t.Fatal("registered engine not found")
	}
	if m.Engine("nope") != nil {
		t.Fatal("unknown engine returned")
	}
}

// refTotals replays s against a clone of g, returning the reference
// (+,-) totals for q and leaving g untouched.
func refTotals(t *testing.T, g *graph.Graph, q *query.Graph, s stream.Stream) (pos, neg uint64) {
	t.Helper()
	h := g.Clone()
	for _, upd := range s {
		p, n := refmatch.Delta(h, q, upd, refmatch.Options{})
		pos += p
		neg += n
		if err := upd.Apply(h); err != nil {
			t.Fatal(err)
		}
	}
	return pos, neg
}

// TestMultiEngineDeregister is the register→run→deregister→run cycle of
// the serving layer: dropping one query mid-stream closes its engine
// without disturbing the others, which keep producing correct totals.
func TestMultiEngineDeregister(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := algotest.RandomGraph(rng, 24, 50, 2, 1)
	q1 := algotest.RandomQuery(rng, g, 3)
	q2 := algotest.RandomQuery(rng, g, 4)
	if q1 == nil || q2 == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 40, 0.7, 1)
	half := s[:20]
	rest := s[20:]

	wantPos, wantNeg := refTotals(t, g, q1, s)

	m := NewMulti(Threads(2), BatchSize(4))
	defer m.Close()
	m.Register("keep", algotest.Factories()[2].New(), q1) // GraphFlow
	m.Register("drop", algotest.Factories()[4].New(), q2) // Symbi
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background(), half); err != nil {
		t.Fatal(err)
	}
	if !m.Deregister("drop") {
		t.Fatal("Deregister of live query reported false")
	}
	if m.Deregister("drop") {
		t.Fatal("second Deregister not idempotent")
	}
	if m.NumQueries() != 1 || m.Engine("drop") != nil {
		t.Fatalf("dropped query still visible: n=%d", m.NumQueries())
	}
	if err := m.Run(context.Background(), rest); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if _, ok := st["drop"]; ok {
		t.Fatal("Stats still reports deregistered query")
	}
	got := st["keep"]
	if got.Positive != wantPos || got.Negative != wantNeg {
		t.Fatalf("keep: (+%d,-%d), reference (+%d,-%d)", got.Positive, got.Negative, wantPos, wantNeg)
	}
}

// TestMultiEngineRegisterLive checks the serving-mode flow: a query
// registered between batches starts from the retained base state and its
// totals match a reference replay from the registration point onward.
func TestMultiEngineRegisterLive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := algotest.RandomGraph(rng, 24, 50, 2, 1)
	q1 := algotest.RandomQuery(rng, g, 3)
	q2 := algotest.RandomQuery(rng, g, 3)
	if q1 == nil || q2 == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 40, 0.7, 1)
	first := s[:20]
	second := s[20:]

	type delta struct {
		query string
		pos   uint64
		neg   uint64
	}
	var (
		deltaMu sync.Mutex
		deltas  []delta
	)
	m := NewMulti(Threads(2), BatchSize(4))
	defer m.Close()
	m.OnDelta = func(query string, upd stream.Update, d csm.Delta, timeout bool) {
		deltaMu.Lock()
		deltas = append(deltas, delta{query, d.Positive, d.Negative})
		deltaMu.Unlock()
	}
	m.Register("early", algotest.Factories()[2].New(), q1)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if n, err := m.ProcessBatch(context.Background(), first); err != nil || n != len(first) {
		t.Fatalf("ProcessBatch(first) = %d, %v", n, err)
	}
	if err := m.RegisterLive("late", algotest.Factories()[4].New(), q2); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterLive("late", algotest.Factories()[4].New(), q2); err == nil {
		t.Fatal("duplicate RegisterLive accepted")
	}
	if n, err := m.ProcessBatch(context.Background(), second); err != nil || n != len(second) {
		t.Fatalf("ProcessBatch(second) = %d, %v", n, err)
	}

	st := m.Stats()
	wantPosE, wantNegE := refTotals(t, g, q1, s)
	if got := st["early"]; got.Positive != wantPosE || got.Negative != wantNegE {
		t.Fatalf("early: (+%d,-%d), reference (+%d,-%d)", got.Positive, got.Negative, wantPosE, wantNegE)
	}
	// The late query's reference starts from the post-first-batch state.
	mid := g.Clone()
	if err := first.ApplyAll(mid); err != nil {
		t.Fatal(err)
	}
	wantPosL, wantNegL := refTotals(t, mid, q2, second)
	if got := st["late"]; got.Positive != wantPosL || got.Negative != wantNegL {
		t.Fatalf("late: (+%d,-%d), reference (+%d,-%d)", got.Positive, got.Negative, wantPosL, wantNegL)
	}

	// OnDelta totals reconcile with Stats per query.
	sums := map[string][2]uint64{}
	deltaMu.Lock()
	for _, d := range deltas {
		s := sums[d.query]
		sums[d.query] = [2]uint64{s[0] + d.pos, s[1] + d.neg}
	}
	deltaMu.Unlock()
	for name, want := range st {
		got := sums[name]
		if got[0] != want.Positive || got[1] != want.Negative {
			t.Fatalf("%s: OnDelta sums (+%d,-%d), Stats (+%d,-%d)", name, got[0], got[1], want.Positive, want.Negative)
		}
	}
}

// TestMultiEngineProcessBatchFiltersInvalid checks that malformed updates
// (duplicate edges, deletions of missing edges) are rejected at the base
// graph and never reach the per-query engines.
func TestMultiEngineProcessBatchFiltersInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := algotest.RandomGraph(rng, 20, 30, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 10, 1.0, 1)
	// Interleave each valid update with a duplicate of itself: the
	// duplicate +e must be rejected (edge now exists).
	var batch stream.Stream
	for _, upd := range s {
		batch = append(batch, upd, upd)
	}
	m := NewMulti(Threads(1))
	defer m.Close()
	m.Register("q", algotest.Factories()[2].New(), q)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	n, err := m.ProcessBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(s) {
		t.Fatalf("applied %d of %d (want %d valid)", n, len(batch), len(s))
	}
	if got := m.Stats()["q"].Updates; got != len(s) {
		t.Fatalf("engine saw %d updates, want %d", got, len(s))
	}
}
