package core

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/stream"
)

// TestWorkerPoolCorrectness forces the real parallel phase (escalation
// after 16 nodes) on a dense workload — edge inserts, edge deletes and
// vertex ops — and checks that the pooled executor returns identical
// match and search-node counts to sequential execution for every
// algorithm and several thread counts. This is the test that actually
// exercises the persistent pool's epoch handshake, parking/termination
// protocol and adaptive re-splitting; run with -race.
func TestWorkerPoolCorrectness(t *testing.T) {
	for _, f := range algotest.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				// Dense, label-poor graph: search trees explode past the
				// tiny escalation budget on nearly every update.
				g0 := algotest.RandomGraph(rng, 60, 600, 1, 1)
				q := algotest.RandomQuery(rng, g0, 4)
				if q == nil {
					continue
				}
				s := algotest.RandomStream(rng, g0, 12, 0.8, 1)
				// Vertex ops ride the same path: add an isolated vertex
				// (id 60 on every run, graphs are clones) and delete it.
				s = append(s,
					stream.Update{Op: stream.AddVertex, VLabel: 1},
					stream.Update{Op: stream.DeleteVertex, U: 60})

				run := func(threads int) (uint64, uint64, uint64) {
					eng := New(f.New(), Threads(threads), InterUpdate(false),
						EscalateNodes(16), SplitDepth(3))
					defer eng.Close()
					if err := eng.Init(g0.Clone(), q); err != nil {
						t.Fatal(err)
					}
					st, err := eng.Run(context.Background(), s)
					if err != nil {
						t.Fatal(err)
					}
					return st.Positive, st.Negative, st.Nodes
				}
				wantPos, wantNeg, wantNodes := run(1)
				for _, threads := range []int{2, 4, 8} {
					gotPos, gotNeg, gotNodes := run(threads)
					if gotPos != wantPos || gotNeg != wantNeg || gotNodes != wantNodes {
						t.Fatalf("seed %d threads %d: (+%d,-%d,%d nodes) != sequential (+%d,-%d,%d nodes)",
							seed, threads, gotPos, gotNeg, gotNodes, wantPos, wantNeg, wantNodes)
					}
				}
			}
		})
	}
}

// TestWorkerPoolWithoutLoadBalance: disabling re-splitting must not change
// results, only scheduling.
func TestWorkerPoolWithoutLoadBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g0 := algotest.RandomGraph(rng, 60, 600, 1, 1)
	q := algotest.RandomQuery(rng, g0, 4)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g0, 10, 0.9, 1)
	f := algotest.Factories()[2] // GraphFlow

	run := func(balance bool) uint64 {
		eng := New(f.New(), Threads(4), InterUpdate(false),
			EscalateNodes(16), LoadBalance(balance))
		if err := eng.Init(g0.Clone(), q); err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		return st.Positive
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("balanced %d != unbalanced %d", a, b)
	}
}

// TestWorkerPoolOnMatchSerialized: the OnMatch callback must observe every
// match exactly once even when emitted from many workers.
func TestWorkerPoolOnMatchSerialized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g0 := algotest.RandomGraph(rng, 50, 500, 1, 1)
	q := algotest.RandomQuery(rng, g0, 4)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g0, 8, 1.0, 1)
	f := algotest.Factories()[2]

	eng := New(f.New(), Threads(4), InterUpdate(false), EscalateNodes(16))
	if err := eng.Init(g0.Clone(), q); err != nil {
		t.Fatal(err)
	}
	var callbackCount uint64
	eng.OnMatch = func(st *csm.State, count uint64, positive bool) { callbackCount += count }
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if callbackCount != st.Positive+st.Negative {
		t.Fatalf("OnMatch saw %d, stats report %d", callbackCount, st.Positive+st.Negative)
	}
}
