package core

import (
	"context"
	"testing"

	"paracosm/internal/algo/graphflow"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// pathFixture: query path a(0)-b(1)-c(0) where deg_Q(b)=2, over isolated
// data vertices v0(0), v1(1), v2(0).
func pathFixture(t *testing.T) (*Engine, *graph.Graph) {
	t.Helper()
	g := graph.New(3)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddVertex(0)
	q := query.MustNew([]graph.Label{0, 1, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	eng := New(graphflow.New(), Threads(1), InterUpdate(true), BatchSize(8))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	return eng, g
}

// TestReclassification: both insertions of the path are degree-safe when
// the batch is classified, but applying the first raises v1's degree so
// the second must be re-validated to unsafe — otherwise the completed path
// match would be silently missed.
func TestReclassification(t *testing.T) {
	eng, g := pathFixture(t)
	s := stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 1},
		{Op: stream.AddEdge, U: 1, V: 2},
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// The path a-b-c with labels (0,1,0) matches twice (two orientations).
	if st.Positive != 2 {
		t.Fatalf("Positive = %d, want 2", st.Positive)
	}
	if st.Reclassified != 1 {
		t.Fatalf("Reclassified = %d, want 1", st.Reclassified)
	}
	if st.SafeUpdates != 1 || st.UnsafeUpdates != 1 {
		t.Fatalf("safe/unsafe = %d/%d, want 1/1", st.SafeUpdates, st.UnsafeUpdates)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("edges not applied")
	}
}

// TestSafeDeletionSkipsSearch: deleting a label-irrelevant edge must be
// classified safe and applied without enumeration.
func TestSafeDeletionSkipsSearch(t *testing.T) {
	eng, g := pathFixture(t)
	// Add two same-label vertices and an edge between them; (0,0) matches
	// no query edge.
	v3 := g.AddVertex(0)
	v4 := g.AddVertex(0)
	g.AddEdge(v3, v4, 0)
	st, err := eng.Run(context.Background(), stream.Stream{
		{Op: stream.DeleteEdge, U: v3, V: v4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeUpdates != 1 || st.SafeByLabel != 1 {
		t.Fatalf("stats = %+v, want one label-safe deletion", st)
	}
	if st.Nodes != 0 {
		t.Fatalf("search ran for a safe deletion (%d nodes)", st.Nodes)
	}
	if g.HasEdge(v3, v4) {
		t.Fatal("safe deletion not applied")
	}
}

// TestBatchBoundaryDeferralProcessesEverything: a long alternating
// safe/unsafe stream across many batch boundaries must apply every update
// exactly once.
func TestBatchBoundaryDeferralProcessesEverything(t *testing.T) {
	g := graph.New(40)
	for i := 0; i < 40; i++ {
		g.AddVertex(graph.Label(i % 2))
	}
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	eng := New(graphflow.New(), Threads(2), InterUpdate(true), BatchSize(3))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	var s stream.Stream
	want := 0
	for i := 0; i < 30; i += 2 {
		u, v := graph.VertexID(i), graph.VertexID(i+1)
		// (even,odd) labels (0,1): unsafe, creates one match per edge...
		s = append(s, stream.Update{Op: stream.AddEdge, U: u, V: v})
		want++
		// (even,even): label-safe.
		if i+2 < 40 {
			s = append(s, stream.Update{Op: stream.AddEdge, U: u, V: graph.VertexID(i + 2)})
		}
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != len(s) {
		t.Fatalf("processed %d of %d updates", st.Updates, len(s))
	}
	if int(st.Positive) != want {
		t.Fatalf("Positive = %d, want %d", st.Positive, want)
	}
	if st.Batches < len(s)/3 {
		t.Fatalf("Batches = %d, suspiciously few for batch size 3 with deferrals", st.Batches)
	}
	// Every edge must exist exactly once.
	for i, upd := range s {
		if !g.HasEdge(upd.U, upd.V) {
			t.Fatalf("update %d (%v) not applied", i, upd)
		}
	}
}

// TestVertexOpsInBatches: vertex updates flowing through the batch
// executor are counted as safe and keep indexes growable.
func TestVertexOpsInBatches(t *testing.T) {
	eng, g := pathFixture(t)
	st, err := eng.Run(context.Background(), stream.Stream{
		{Op: stream.AddVertex, VLabel: 1},
		{Op: stream.AddEdge, U: 0, V: 1},
		{Op: stream.AddVertex, VLabel: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.VertexUpdates != 2 {
		t.Fatalf("VertexUpdates = %d, want 2", st.VertexUpdates)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
}

// TestInterUpdateDisabledProcessesFully: with the batch executor off every
// update takes the full path, so the safe counters stay zero.
func TestInterUpdateDisabledProcessesFully(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(graph.Label(i % 2))
	}
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	eng := New(graphflow.New(), Threads(1), InterUpdate(false))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(context.Background(), stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 2}, // (0,0): would be label-safe
		{Op: stream.AddEdge, U: 0, V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeUpdates != 0 || st.Batches != 0 {
		t.Fatalf("stats = %+v, want no batch-executor activity", st)
	}
	if st.Updates != 2 {
		t.Fatalf("Updates = %d", st.Updates)
	}
}
