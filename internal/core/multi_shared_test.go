package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// deltaRec is one observed OnDelta invocation, for sequence comparison.
type deltaRec struct {
	pos, neg uint64
}

// deltaLog collects per-query OnDelta sequences under a lock (different
// queries report concurrently during the shared fan-out).
type deltaLog struct {
	mu   sync.Mutex
	seqs map[string][]deltaRec
}

func newDeltaLog() *deltaLog { return &deltaLog{seqs: make(map[string][]deltaRec)} }

func (l *deltaLog) add(name string, d csm.Delta) {
	l.mu.Lock()
	l.seqs[name] = append(l.seqs[name], deltaRec{d.Positive, d.Negative})
	l.mu.Unlock()
}

// privateReplay runs q alone over a private clone of base through s —
// the pre-shared-graph execution model — returning its Stats and OnDelta
// sequence. This is the oracle the shared-graph MultiEngine must match.
func privateReplay(t *testing.T, algo csm.Algorithm, base *graph.Graph, q *query.Graph, s stream.Stream, opts ...Option) (Stats, []deltaRec) {
	t.Helper()
	var seq []deltaRec
	opts = append(append([]Option(nil), opts...), WithOnDelta(func(upd stream.Update, d csm.Delta, timeout bool) {
		seq = append(seq, deltaRec{d.Positive, d.Negative})
	}))
	eng := New(algo, opts...)
	defer eng.Close()
	if err := eng.Init(base.Clone(), q); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return st, seq
}

// TestMultiEngineSharedOracle is the equivalence proof for the shared-graph
// driver: queries joining and leaving mid-stream through ONE shared graph
// must observe exactly the per-update deltas and final totals they would
// have produced running alone over private clones. Run under -race this
// also exercises the fan-out phases' concurrent reads of the shared graph.
func TestMultiEngineSharedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := algotest.RandomGraph(rng, 28, 60, 2, 1)
	qA := algotest.RandomQuery(rng, g, 3)
	qB := algotest.RandomQuery(rng, g, 4)
	qC := algotest.RandomQuery(rng, g, 3)
	qD := algotest.RandomQuery(rng, g, 4)
	if qA == nil || qB == nil || qC == nil || qD == nil {
		t.Skip("no queries")
	}
	s := algotest.RandomStream(rng, g, 60, 0.7, 1)
	seg0, seg1, seg2 := s[:20], s[20:40], s[40:]

	fGF := algotest.Factories()[2] // GraphFlow
	fSY := algotest.Factories()[4] // Symbi
	opts := []Option{Threads(2), BatchSize(4)}

	// Shared run: A and B from the start; after seg0, C joins and B
	// leaves; after seg1, D joins.
	shared := newDeltaLog()
	m := NewMulti(opts...)
	defer m.Close()
	m.OnDelta = func(name string, upd stream.Update, d csm.Delta, timeout bool) {
		shared.add(name, d)
	}
	m.Register("A", fGF.New(), qA)
	m.Register("B", fSY.New(), qB)
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if n, err := m.ProcessBatch(context.Background(), seg0); err != nil || n != len(seg0) {
		t.Fatalf("seg0: %d, %v", n, err)
	}
	if err := m.RegisterLive("C", fGF.New(), qC); err != nil {
		t.Fatal(err)
	}
	bStats := m.Stats()["B"]
	if !m.Deregister("B") {
		t.Fatal("Deregister(B) = false")
	}
	if n, err := m.ProcessBatch(context.Background(), seg1); err != nil || n != len(seg1) {
		t.Fatalf("seg1: %d, %v", n, err)
	}
	if err := m.RegisterLive("D", fSY.New(), qD); err != nil {
		t.Fatal(err)
	}
	if n, err := m.ProcessBatch(context.Background(), seg2); err != nil || n != len(seg2) {
		t.Fatalf("seg2: %d, %v", n, err)
	}
	st := m.Stats()

	// Registration-point graphs for the private replays.
	mid1 := g.Clone() // post-seg0: C's view
	if err := seg0.ApplyAll(mid1); err != nil {
		t.Fatal(err)
	}
	mid2 := mid1.Clone() // post-seg1: D's view
	if err := seg1.ApplyAll(mid2); err != nil {
		t.Fatal(err)
	}
	concat := func(segs ...stream.Stream) stream.Stream {
		var out stream.Stream
		for _, sg := range segs {
			out = append(out, sg...)
		}
		return out
	}
	refs := []struct {
		name string
		algo csm.Algorithm
		base *graph.Graph
		q    *query.Graph
		s    stream.Stream
	}{
		{"A", fGF.New(), g, qA, concat(seg0, seg1, seg2)},
		{"B", fSY.New(), g, qB, seg0},
		{"C", fGF.New(), mid1, qC, concat(seg1, seg2)},
		{"D", fSY.New(), mid2, qD, seg2},
	}
	for _, ref := range refs {
		wantSt, wantSeq := privateReplay(t, ref.algo, ref.base, ref.q, ref.s, opts...)
		gotSt, ok := st[ref.name]
		if !ok {
			// B was deregistered: its totals were snapshotted beforehand.
			gotSt = bStats
		}
		if gotSt.Positive != wantSt.Positive || gotSt.Negative != wantSt.Negative {
			t.Errorf("%s: shared (+%d,-%d), private (+%d,-%d)",
				ref.name, gotSt.Positive, gotSt.Negative, wantSt.Positive, wantSt.Negative)
		}
		if gotSt.Updates != wantSt.Updates {
			t.Errorf("%s: shared saw %d updates, private %d", ref.name, gotSt.Updates, wantSt.Updates)
		}
		gotSeq := shared.seqs[ref.name]
		if len(gotSeq) != len(wantSeq) {
			t.Errorf("%s: shared fired %d deltas, private %d", ref.name, len(gotSeq), len(wantSeq))
			continue
		}
		for i := range gotSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Errorf("%s: delta %d: shared (+%d,-%d), private (+%d,-%d)",
					ref.name, i, gotSeq[i].pos, gotSeq[i].neg, wantSeq[i].pos, wantSeq[i].neg)
				break
			}
		}
	}

	// The deregistered query's work is retained, and the aggregate view is
	// the sum of live and closed.
	closed, n := m.ClosedStats()
	if n != 1 {
		t.Fatalf("ClosedStats covers %d queries, want 1", n)
	}
	if closed.Positive != bStats.Positive || closed.Negative != bStats.Negative {
		t.Fatalf("closed tally (+%d,-%d), B at deregistration (+%d,-%d)",
			closed.Positive, closed.Negative, bStats.Positive, bStats.Negative)
	}
	total := m.TotalStats()
	var wantTotal Stats
	wantTotal.Add(closed)
	for _, s := range st {
		wantTotal.Add(s)
	}
	if total.Positive != wantTotal.Positive || total.Updates != wantTotal.Updates {
		t.Fatalf("TotalStats (+%d, %d upd) != closed+live (+%d, %d upd)",
			total.Positive, total.Updates, wantTotal.Positive, wantTotal.Updates)
	}
}

// multiTreeSetup builds a MultiEngine over treeAlgo queries (controlled
// search-tree sizes, see pool_test.go) on the trivial 4-vertex graph.
func multiTreeSetup(t *testing.T, algos map[string]*treeAlgo) *MultiEngine {
	t.Helper()
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(1)
	}
	q := query.MustNew([]graph.Label{1, 1, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := NewMulti(Threads(1), InterUpdate(false))
	for name, a := range algos {
		m.Register(name, a, q)
	}
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMultiEngineRunJoinsAllErrors: when several queries fail in one Run,
// the combined error must name every failed query (not just the first)
// and spare the survivors.
func TestMultiEngineRunJoinsAllErrors(t *testing.T) {
	m := multiTreeSetup(t, map[string]*treeAlgo{
		"big1":  {width: 50, depth: 50}, // deadline probe fires mid-tree
		"big2":  {width: 50, depth: 50},
		"small": {width: 2, depth: 2}, // finishes before the first probe
	})
	defer m.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	err := m.Run(expired, stream.Stream{{Op: stream.AddEdge, U: 0, V: 1}})
	if err == nil {
		t.Fatal("Run with expired deadline returned nil")
	}
	if !errors.Is(err, csm.ErrDeadline) {
		t.Fatalf("combined error does not wrap ErrDeadline: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{`"big1"`, `"big2"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("combined error missing %s: %v", want, err)
		}
	}
	if strings.Contains(msg, `"small"`) {
		t.Errorf("combined error names the successful query: %v", err)
	}
	if st := m.Stats()["small"]; st.Updates != 1 {
		t.Fatalf("surviving query processed %d updates, want 1", st.Updates)
	}
}

// TestMultiEngineRunClearsErrors: a failure reported by one Run (or
// ProcessBatch) must not resurface from a later call — the regression
// guard for the stale-mq.err bug.
func TestMultiEngineRunClearsErrors(t *testing.T) {
	m := multiTreeSetup(t, map[string]*treeAlgo{
		"big": {width: 50, depth: 50},
	})
	defer m.Close()

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	if err := m.Run(expired, stream.Stream{{Op: stream.AddEdge, U: 0, V: 1}}); !errors.Is(err, csm.ErrDeadline) {
		t.Fatalf("first Run: err = %v, want ErrDeadline", err)
	}
	if err := m.Run(context.Background(), nil); err != nil {
		t.Fatalf("second Run resurfaced a cleared error: %v", err)
	}
	if _, err := m.ProcessBatch(context.Background(), nil); err != nil {
		t.Fatalf("ProcessBatch resurfaced a cleared error: %v", err)
	}
}

// TestMultiEngineProcessBatchNoQueriesKeepsState: with zero registered
// queries the speculative validation pass must still advance the shared
// graph (serving mode ingests before the first client registers), and a
// later RegisterLive observes the advanced state.
func TestMultiEngineProcessBatchNoQueriesKeepsState(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := algotest.RandomGraph(rng, 20, 35, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 30, 0.7, 1)
	first, second := s[:15], s[15:]

	m := NewMulti(Threads(1))
	defer m.Close()
	if err := m.Init(g); err != nil {
		t.Fatal(err)
	}
	if n, err := m.ProcessBatch(context.Background(), first); err != nil || n != len(first) {
		t.Fatalf("queryless ProcessBatch = %d, %v", n, err)
	}
	if err := m.RegisterLive("late", algotest.Factories()[2].New(), q); err != nil {
		t.Fatal(err)
	}
	if n, err := m.ProcessBatch(context.Background(), second); err != nil || n != len(second) {
		t.Fatalf("second batch = %d, %v", n, err)
	}
	mid := g.Clone()
	if err := first.ApplyAll(mid); err != nil {
		t.Fatal(err)
	}
	wantPos, wantNeg := refTotals(t, mid, q, second)
	if got := m.Stats()["late"]; got.Positive != wantPos || got.Negative != wantNeg {
		t.Fatalf("late: (+%d,-%d), reference (+%d,-%d)", got.Positive, got.Negative, wantPos, wantNeg)
	}
}
