package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"paracosm/internal/concurrent"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Engine is a ParaCOSM instance wrapping a single CSM algorithm.
type Engine struct {
	cfg  Config
	algo csm.Algorithm
	g    *graph.Graph
	q    *query.Graph

	// OnMatch, if non-nil, observes every reported match. Invocations are
	// serialized; the callback must not retain the state pointer.
	OnMatch csm.MatchFunc

	stats   Stats // guarded by statsMu
	statsMu sync.Mutex
	matchMu sync.Mutex

	// rootBuf is reused across updates for the sequential DFS stack. The
	// sequential phase pops into seqState and pushes through pushSeq: the
	// scratch node lives in the (already heap-resident) engine and the
	// callback is allocated once in New, so interface calls into
	// Roots/Terminal/Expand force no per-node escapes — the non-escalated
	// hot path performs zero allocations per update.
	rootBuf  []csm.State
	seqState csm.State
	pushSeq  func(csm.State)

	// splitDepth is the effective SPLIT_DEPTH (auto-tuned from the query
	// size when Config.SplitDepth is 0).
	splitDepth int

	// simBudget is the simulated-time budget of the current Run (simulate
	// mode only; 0 when processing updates outside Run).
	simBudget time.Duration

	// pool is the persistent worker pool of the inner-update executor,
	// started lazily on the first escalated update (see ensurePool) and
	// released by Close. nil while no workers exist.
	pool *concurrent.Pool[csm.State]

	// shared carries one update's state between the two shared-graph
	// phases (sharedPrepare/sharedCommit, see shared.go) when the engine
	// is driven in lockstep by a MultiEngine. The driver serializes the
	// phases per engine, so no lock is needed.
	shared sharedPending

	// sharedBuf is the windowed driver's slot buffer: one sharedPending
	// per coalesced window update, so a whole independent set can sit
	// between its prepare and commit barriers (see multiwindow.go). Grown
	// by the driver before each window; unused otherwise.
	sharedBuf []sharedPending

	// win is the batch-dynamic executor's reusable window scratch
	// (Config.Window > 1; see window.go), built lazily on first use.
	win *winScratch

	// winDefer, when non-nil, redirects processUpdate's OnDelta emission
	// into the pointed-to window result instead of firing the callback:
	// the windowed executor emits deltas at window end, in window order.
	// Only the serial window paths set it, so no lock is needed.
	winDefer *winResult

	// lat, if non-nil, observes every processed update's latency — the
	// exact value accumulated into Stats.TTotal, at the same sites that
	// increment Stats.Updates, so lat.Count() == Stats.Updates by
	// construction. MultiEngine attaches it at registration when
	// Config.TrackQueries is set (see QuerySnapshots); nil otherwise,
	// costing one predictable branch per update.
	lat *obs.Histogram
}

// New creates a ParaCOSM engine around algo.
func New(algo csm.Algorithm, opts ...Option) *Engine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cfg.normalize()
	e := &Engine{cfg: cfg, algo: algo}
	e.pushSeq = func(s csm.State) { e.rootBuf = append(e.rootBuf, s) }
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Algo returns the wrapped algorithm.
func (e *Engine) Algo() csm.Algorithm { return e.algo }

// Stats returns a snapshot of accumulated instrumentation.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	s := e.stats
	s.ThreadBusy = append([]time.Duration(nil), e.stats.ThreadBusy...)
	return s
}

// totalElapsed reads Stats.TTotal alone. Hot loops (the per-update
// simulate-budget check in Run, the budget probe in findMatchesSimulated)
// use it instead of Stats(), which copies the whole struct plus the
// ThreadBusy slice on every call.
func (e *Engine) totalElapsed() time.Duration {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats.TTotal
}

// Close releases the persistent worker pool, joining its goroutines. It is
// idempotent and safe on engines that never escalated (no pool exists).
// Close must not overlap an in-flight ProcessUpdate/Run; the engine stays
// usable afterwards — the next escalated update lazily restarts the pool.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// ResetStats zeroes accumulated instrumentation.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	e.stats = Stats{}
	e.statsMu.Unlock()
}

// SeedStats folds base into the engine's accumulated instrumentation —
// the recovery path uses it to restore a query's pre-crash stats
// baseline from a snapshot, so /queries totals stay monotonic across a
// restart.
func (e *Engine) SeedStats(base Stats) {
	e.statsMu.Lock()
	e.stats.Add(base)
	e.statsMu.Unlock()
}

// Init runs the offline stage of the wrapped algorithm on (g, q).
func (e *Engine) Init(g *graph.Graph, q *query.Graph) error {
	if g == nil || q == nil {
		return fmt.Errorf("core: nil graph or query")
	}
	e.g, e.q = g, q
	e.splitDepth = e.cfg.SplitDepth
	if e.splitDepth <= 0 {
		e.splitDepth = q.NumVertices() - 2
	}
	if e.splitDepth < 2 {
		e.splitDepth = 2
	}
	return e.algo.Build(g, q)
}

// ProcessUpdate executes one update through the full path: apply the
// mutation, maintain the ADS, and find incremental matches with the
// inner-update executor. It is the "unsafe update" path of the batch
// executor and the whole story when InterUpdate is disabled.
//
// Timeout contract: when the context deadline expires mid-search,
// ProcessUpdate returns csm.ErrDeadline with the graph mutation and ADS
// maintenance APPLIED — for AddEdge the edge is in the graph, for
// DeleteEdge it is gone — so the engine's state stays consistent with the
// update having happened and the stream can continue past the deadline
// error. The returned Delta then holds only the matches found before the
// cutoff: a partial ΔM, i.e. a lower bound on the true incremental result.
// Both edge paths honor the same contract; only a mutation error (invalid
// update) leaves the graph untouched.
func (e *Engine) ProcessUpdate(ctx context.Context, upd stream.Update) (csm.Delta, error) {
	return e.processUpdate(ctx, upd, classDirect, false)
}

// processUpdate is ProcessUpdate plus the caller's classification verdict
// (classDirect when the update bypassed the batch executor), which only
// feeds the trace event — execution is identical for every class. The
// body is deliberately closure-free: closures capturing the delta would
// escape to the heap and put allocations on the per-update hot path.
// TestProcessUpdateAllocations measures the contract at runtime; the
// directive below makes paracosmvet prove it at lint time.
//
//paracosm:noalloc
func (e *Engine) processUpdate(ctx context.Context, upd stream.Update, cl classification, reclassified bool) (csm.Delta, error) {
	var d csm.Delta
	var r innerResult
	var seqBusy time.Duration
	var err error
	deadline, hasDeadline := ctx.Deadline()
	t0 := time.Now()
	simulate := e.cfg.Simulate && e.cfg.Threads > 1

	switch upd.Op {
	case stream.AddEdge:
		if aerr := upd.Apply(e.g); aerr != nil {
			return d, aerr
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		d.TADS = time.Since(tA)
		r, seqBusy = e.findPhase(deadline, hasDeadline, upd, true, simulate, &d)
		d.Positive, d.Nodes = r.matches, r.nodes
		if r.timeout {
			// Mutation and ADS were applied before the search; Delta is
			// the partial ΔM found so far (see the timeout contract).
			err = csm.ErrDeadline
		}

	case stream.DeleteEdge:
		r, seqBusy = e.findPhase(deadline, hasDeadline, upd, false, simulate, &d)
		d.Negative, d.Nodes = r.matches, r.nodes
		if aerr := upd.Apply(e.g); aerr != nil {
			return d, aerr
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		d.TADS = time.Since(tA)
		if r.timeout {
			// The mutation and ADS update run even after a find-phase
			// timeout, deliberately: the timeout contract guarantees the
			// update is applied, with Delta a partial (lower-bound) ΔM.
			err = csm.ErrDeadline
		}

	case stream.AddVertex, stream.DeleteVertex:
		if aerr := upd.Apply(e.g); aerr != nil {
			return d, aerr
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		d.TADS = time.Since(tA)

	default:
		//lint:ignore noalloc malformed-stream path: formatting the error is off the per-update contract
		return d, fmt.Errorf("core: unknown op %v", upd.Op)
	}

	e.account(&d, seqBusy, time.Since(t0))
	if e.cfg.Tracer != nil {
		total := time.Since(t0)
		if simulate {
			// Wall-clock elapsed would report the sequential execution
			// the simulation replaces (see account).
			total = d.TADS + d.TFind
		}
		e.traceUpdate(upd, cl, reclassified, &d, &r, total, err != nil)
	}
	if e.winDefer != nil {
		// Windowed execution defers emission to window end (window order);
		// the result records the delta instead of firing the callback.
		e.winDefer.d = d
		e.winDefer.emit = true
	} else if e.cfg.OnDelta != nil {
		// Fires only after the update is fully applied: mutation errors
		// returned above never reach here, timeouts do (partial ΔM).
		e.cfg.OnDelta(upd, d, err != nil)
	}
	return d, err
}

// findPhase runs the find-matches phase — real or simulated — filling
// d.TFind and returning the inner result plus the caller-thread busy
// time (0 in simulate mode: simulateSchedule attributes per-worker
// loads, including the caller slot, itself).
//
//paracosm:noalloc
func (e *Engine) findPhase(deadline time.Time, hasDeadline bool, upd stream.Update, positive, simulate bool, d *csm.Delta) (innerResult, time.Duration) {
	if simulate {
		r, simFind := e.findMatchesSimulated(deadline, hasDeadline, upd, positive)
		d.TFind = simFind
		return r, 0
	}
	tF := time.Now()
	r := e.findMatchesParallel(deadline, hasDeadline, upd, positive)
	d.TFind = time.Since(tF)
	return r, r.seqBusy
}

// traceUpdate builds and emits the per-update trace event. Callers check
// cfg.Tracer != nil first, so the non-traced hot path pays one branch and
// no call; the event itself is stack-allocated and the Op/Class strings
// are constants, so even the traced path allocates nothing per update.
func (e *Engine) traceUpdate(upd stream.Update, cl classification, reclassified bool, d *csm.Delta, r *innerResult, total time.Duration, timeout bool) {
	e.cfg.Tracer.Update(obs.Event{
		Op:           upd.Op.String(),
		U:            uint32(upd.U),
		V:            uint32(upd.V),
		Class:        cl.traceClass(),
		Reclassified: reclassified,
		Escalated:    r.escalated,
		Timeout:      timeout,
		Nodes:        d.Nodes,
		Resplits:     r.resplits,
		Matches:      d.Positive + d.Negative,
		ADS:          d.TADS,
		Find:         d.TFind,
		Total:        total,
	})
}

// account accumulates one full-path update's delta into the stats.
// elapsed is the caller-thread time actually spent on this update (the
// shared-graph phases exclude fan-out barrier waits from it, so TTotal
// stays comparable to the single-engine path).
func (e *Engine) account(d *csm.Delta, seqBusy, elapsed time.Duration) {
	e.statsMu.Lock()
	e.stats.Updates++
	e.stats.Positive += d.Positive
	e.stats.Negative += d.Negative
	e.stats.Nodes += d.Nodes
	e.stats.TADS += d.TADS
	e.stats.TFind += d.TFind
	if seqBusy > 0 {
		// Attribute the sequential find phase to the caller slot so the
		// per-thread busy CDF (Figure 10) covers the whole search.
		if len(e.stats.ThreadBusy) == 0 {
			e.stats.ThreadBusy = append(e.stats.ThreadBusy, 0)
		}
		e.stats.ThreadBusy[0] += seqBusy
	}
	total := elapsed
	if e.cfg.Simulate && e.cfg.Threads > 1 {
		// In simulate mode TFind is already the simulated parallel time;
		// wall-clock elapsed would double-count the sequential execution.
		total = d.TADS + d.TFind
	}
	e.stats.TTotal += total
	e.statsMu.Unlock()
	if e.lat != nil {
		e.lat.Observe(total)
	}
}

// Run processes the whole stream. With InterUpdate enabled, updates flow
// through the batch executor; otherwise each goes through ProcessUpdate.
// In simulate mode the context deadline is interpreted against simulated
// time: the run is aborted once accumulated simulated time exceeds the
// budget remaining at the first update.
func (e *Engine) Run(ctx context.Context, s stream.Stream) (Stats, error) {
	var simBudget time.Duration
	if dl, ok := ctx.Deadline(); ok && e.cfg.Simulate {
		simBudget = time.Until(dl)
		e.simBudget = simBudget
		defer func() { e.simBudget = 0 }()
	}
	overSimBudget := func() bool {
		return simBudget > 0 && e.totalElapsed() > simBudget
	}
	if !e.cfg.InterUpdate {
		for i, upd := range s {
			if _, err := e.ProcessUpdate(ctx, upd); err != nil {
				return e.Stats(), fmt.Errorf("update %d (%v): %w", i, upd, err)
			}
			if overSimBudget() {
				return e.Stats(), fmt.Errorf("update %d: %w", i, csm.ErrDeadline)
			}
		}
		return e.Stats(), nil
	}
	if e.cfg.Window > 1 && !e.cfg.Simulate {
		i := 0
		for i < len(s) {
			n, err := e.runWindow(ctx, s[i:])
			i += n
			if err != nil {
				return e.Stats(), fmt.Errorf("window ending at update %d: %w", i-1, err)
			}
			if n == 0 {
				return e.Stats(), fmt.Errorf("core: windowed executor made no progress")
			}
		}
		return e.Stats(), nil
	}
	i := 0
	for i < len(s) {
		n, err := e.runBatch(ctx, s[i:])
		i += n
		if err != nil {
			return e.Stats(), fmt.Errorf("update %d: %w", i-1, err)
		}
		if n == 0 {
			return e.Stats(), fmt.Errorf("core: batch executor made no progress")
		}
		if overSimBudget() {
			return e.Stats(), fmt.Errorf("update %d: %w", i-1, csm.ErrDeadline)
		}
	}
	return e.Stats(), nil
}

// classification is the verdict of the three-stage update type classifier.
type classification uint8

const (
	classUnsafe classification = iota
	classSafeLabel
	classSafeDegree
	classSafeADS
	classVertexOp
	// classDirect marks updates that never went through the classifier
	// (InterUpdate disabled, or direct ProcessUpdate calls). It is a
	// trace-only value: classify() never returns it.
	classDirect
)

// traceClass maps the verdict to its trace-event label. The values are
// package constants, so building an event never allocates.
func (c classification) traceClass() string {
	switch c {
	case classUnsafe:
		return obs.ClassUnsafe
	case classSafeLabel:
		return obs.ClassSafeLabel
	case classSafeDegree:
		return obs.ClassSafeDegree
	case classSafeADS:
		return obs.ClassSafeADS
	case classVertexOp:
		return obs.ClassVertex
	}
	return obs.ClassDirect
}

// classify runs the three-stage filter of §4.2 for one update against the
// current graph/ADS state. It never mutates anything.
func (e *Engine) classify(upd stream.Update) classification {
	if !upd.IsEdge() {
		return classVertexOp
	}
	if sc, ok := e.algo.(interface {
		RelevantStages(stream.Update) (bool, bool)
	}); ok {
		passLabel, passDegree := sc.RelevantStages(upd)
		if !passLabel {
			return classSafeLabel
		}
		if !passDegree {
			return classSafeDegree
		}
	}
	if !e.algo.AffectsADS(upd) {
		return classSafeADS
	}
	return classUnsafe
}

// runBatch executes one batch round of the inter-update executor
// (Figure 6): parallel classification, direct application of the safe
// prefix, full processing of the first unsafe update, deferral of the
// rest. It returns how many updates of s were consumed.
func (e *Engine) runBatch(ctx context.Context, s stream.Stream) (int, error) {
	k := e.cfg.BatchSize
	if k > len(s) {
		k = len(s)
	}
	batch := s[:k]

	// Stage A: parallel classification (read-only against g and ADS).
	verdicts := make([]classification, k)
	classifyCost := e.classifyStageA(batch, verdicts)
	if e.cfg.Simulate && e.cfg.Threads > 1 {
		// Under schedule simulation classification runs sequentially but
		// is charged as k-way parallel work.
		classifyCost /= time.Duration(e.cfg.Threads)
	}
	e.statsMu.Lock()
	e.stats.Batches++
	e.stats.TTotal += classifyCost
	e.statsMu.Unlock()
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Classify(classifyCost)
	}

	// Stage B: ordered application. Safe updates are applied directly
	// (no ADS maintenance, no enumeration — that is the whole point);
	// the first unsafe update runs the full inner-parallel path and
	// everything after it is deferred to the next batch. Because earlier
	// updates in the batch may have changed endpoint degrees since
	// classification, safe verdicts are cheaply re-validated before
	// application.
	consumed := 0
	for j, upd := range batch {
		v := verdicts[j]
		reclassified := false
		// Earlier updates in this batch may have changed endpoint degrees
		// or the ADS since stage-A classification, so degree- and
		// ADS-based safe verdicts are re-validated against the current
		// state before application. Label-based verdicts are permanent
		// (vertex labels never change) and skip re-validation.
		if (v == classSafeDegree || v == classSafeADS) && upd.IsEdge() {
			if rv := e.classify(upd); rv == classUnsafe {
				v = classUnsafe
				reclassified = true
				e.statsMu.Lock()
				e.stats.Reclassified++
				e.statsMu.Unlock()
			} else {
				v = rv
			}
		}
		switch v {
		case classVertexOp:
			if _, err := e.processUpdate(ctx, upd, classVertexOp, false); err != nil {
				return consumed + 1, err
			}
			e.statsMu.Lock()
			e.stats.VertexUpdates++
			e.stats.SafeUpdates++
			e.statsMu.Unlock()
			consumed++

		case classSafeLabel, classSafeDegree, classSafeADS:
			t0 := time.Now()
			if err := upd.Apply(e.g); err != nil {
				return consumed + 1, err
			}
			// Safe updates skip enumeration entirely (their ΔM is empty),
			// but label/degree-safe ones must still maintain the ADS: the
			// degree change at the endpoints can flip candidacy of other
			// query vertices even though this edge matches none. Only
			// stage-3 safety (AffectsADS == false) proves the ADS is
			// untouched, so only then is maintenance skipped (this is the
			// γ·T_ADS term of the speedup model, Eq. 1).
			var tads time.Duration
			if v != classSafeADS {
				tA := time.Now()
				e.algo.UpdateADS(upd)
				tads = time.Since(tA)
			}
			// Eq. 1 models safe updates as M-way-parallel ADS maintenance
			// (γ·T_ADS/M). The paper's C++ system updates the index
			// concurrently under fine-grained locks; this Go port keeps
			// index mutation single-writer for memory-safety, so the
			// M-way discount is applied in simulate mode only and the
			// limitation is documented in DESIGN.md.
			div := time.Duration(1)
			if e.cfg.Simulate && e.cfg.Threads > 1 {
				div = time.Duration(e.cfg.Threads)
			}
			tads /= div
			total := time.Since(t0) / div
			e.statsMu.Lock()
			e.stats.Updates++
			e.stats.SafeUpdates++
			e.stats.TADS += tads
			switch v {
			case classSafeLabel:
				e.stats.SafeByLabel++
			case classSafeDegree:
				e.stats.SafeByDegree++
			case classSafeADS:
				e.stats.SafeByADS++
			}
			e.stats.TTotal += total
			e.statsMu.Unlock()
			if e.lat != nil {
				e.lat.Observe(total)
			}
			if e.cfg.Tracer != nil {
				// Safe updates skip the search, so the event carries no
				// nodes/matches — the interesting fields are the class
				// (which stage proved safety) and the tiny latency.
				d := csm.Delta{TADS: tads}
				var r innerResult
				e.traceUpdate(upd, v, false, &d, &r, total, false)
			}
			if e.cfg.OnDelta != nil {
				// Safe updates carry an empty ΔM by construction; the
				// callback still fires so subscribers observe stream
				// progress (e.g. the serving layer's flush barrier).
				e.cfg.OnDelta(upd, csm.Delta{TADS: tads}, false)
			}
			consumed++

		case classUnsafe:
			if _, err := e.processUpdate(ctx, upd, classUnsafe, reclassified); err != nil {
				return consumed + 1, err
			}
			e.statsMu.Lock()
			e.stats.UnsafeUpdates++
			e.statsMu.Unlock()
			consumed++
			// Defer the remainder of the batch (Figure 6).
			return consumed, nil
		}
	}
	return consumed, nil
}
