package core

import (
	"sync/atomic"
	"time"

	"paracosm/internal/concurrent"
	"paracosm/internal/csm"
	"paracosm/internal/stream"
)

// innerResult carries the outcome of one find-matches phase.
type innerResult struct {
	matches uint64
	nodes   uint64
	timeout bool
	// seqBusy is the caller-thread time spent in the sequential phase
	// (root collection + pre-escalation DFS); account() attributes it to
	// ThreadBusy[0] so Figure 10's CDF covers the whole search, not just
	// the post-escalation part.
	seqBusy time.Duration
	// escalated and resplits describe this update's trip through the
	// parallel phase, for the per-update trace event (simulate mode
	// never escalates for real, so they stay zero there).
	escalated bool
	resplits  uint64
}

// findMatchesParallel is the inner-update executor (Algorithm 2) with an
// adaptive escalation front end. Real update streams are extremely
// heavy-tailed: most updates produce search trees of a handful of nodes
// (where any parallel coordination would dominate the work), while a rare
// update explodes into millions of nodes. The executor therefore starts
// every update sequentially under a node budget and escalates to the
// parallel phase — BFS decomposition into the persistent worker pool's
// task queue, drained with adaptive re-splitting — only once the budget is
// exceeded, i.e. exactly for the updates where parallelism pays.
func (e *Engine) findMatchesParallel(deadline time.Time, hasDeadline bool, upd stream.Update, positive bool) innerResult {
	var res innerResult
	tSeq := time.Now()

	// Initialization: collect the first layer of the search tree. The
	// stack is the engine's reusable rootBuf, pushed through the
	// long-lived pushSeq callback and popped into the engine-resident
	// seqState scratch node — see the field docs in engine.go for why
	// this keeps the non-escalated path allocation-free.
	e.rootBuf = e.rootBuf[:0]
	e.algo.Roots(upd, e.pushSeq)
	if len(e.rootBuf) == 0 {
		res.seqBusy = time.Since(tSeq)
		return res
	}

	threads := e.cfg.Threads
	budget := uint64(e.cfg.EscalateNodes)
	if threads <= 1 {
		budget = ^uint64(0) // never escalate
	}

	// Sequential phase: explicit-stack DFS under the node budget.
	checkCounter := uint64(0)
	for len(e.rootBuf) > 0 {
		if res.nodes >= budget {
			break
		}
		e.seqState = e.rootBuf[len(e.rootBuf)-1]
		e.rootBuf = e.rootBuf[:len(e.rootBuf)-1]
		res.nodes++
		checkCounter++
		if hasDeadline && checkCounter%1024 == 0 && time.Now().After(deadline) {
			res.timeout = true
			res.seqBusy = time.Since(tSeq)
			return res
		}
		if c, done := e.algo.Terminal(&e.seqState); done {
			res.matches += c
			e.emitMatch(&e.seqState, c, positive)
			continue
		}
		e.algo.Expand(&e.seqState, e.pushSeq)
	}
	res.seqBusy = time.Since(tSeq)
	if len(e.rootBuf) == 0 {
		return res
	}

	// Escalation: hand the remaining frontier to the worker pool. Submit
	// blocks until the epoch drains, so reusing rootBuf afterwards (next
	// update) cannot race with workers reading the frontier.
	par := e.runWorkers(e.rootBuf, deadline, hasDeadline, positive)
	res.matches += par.matches
	res.nodes += par.nodes
	res.timeout = par.timeout
	res.escalated = true
	res.resplits = par.resplits
	return res
}

// runWorkers is the parallel execution phase of Algorithm 2: one pool
// epoch. The engine's persistent workers (started lazily here, released by
// Engine.Close) drain the frontier; a task that detects starved siblings
// re-splits its shallow subtrees back into the epoch's queue.
//
// Escalation is off the zero-alloc contract by design: the per-epoch
// closures and scratch slices below are amortized over the heavy updates
// that reach this point (see TestProcessUpdateAllocations, which measures
// the light-update path only).
//
//paracosm:allocs escalated epochs allocate per-epoch closures and scratch
func (e *Engine) runWorkers(frontier []csm.State, deadline time.Time, hasDeadline bool, positive bool) innerResult {
	threads := e.cfg.Threads
	pool := e.ensurePool()

	var (
		matches  atomic.Uint64
		nodes    atomic.Uint64
		aborted  atomic.Bool
		resplits atomic.Uint64
	)
	// busy[w] and checkCtr[w] are touched only by pool worker w during the
	// epoch and read by this goroutine after Submit returns; the pool's
	// internal mutex orders those accesses (task end happens-before Submit
	// returning), so plain slices suffice.
	busy := make([]time.Duration, threads)
	checkCtr := make([]uint64, threads)

	run := func(w int, root csm.State) {
		if aborted.Load() {
			return
		}
		t0 := time.Now()
		var localNodes, localMatches uint64

		var dfs func(s *csm.State)
		dfs = func(s *csm.State) {
			if aborted.Load() {
				return
			}
			localNodes++
			checkCtr[w]++
			if hasDeadline && checkCtr[w]%1024 == 0 && time.Now().After(deadline) {
				aborted.Store(true)
				return
			}
			if c, done := e.algo.Terminal(s); done {
				localMatches += c
				e.emitMatch(s, c, positive)
				return
			}
			// Adaptive task sharing: re-split shallow subtrees into
			// queue tasks when other workers are starved.
			if e.cfg.LoadBalance && int(s.Depth) < e.splitDepth && pool.Starved() {
				e.algo.Expand(s, func(child csm.State) { pool.Push(child) })
				resplits.Add(1)
				return
			}
			e.algo.Expand(s, func(child csm.State) { dfs(&child) })
		}
		dfs(&root)

		busy[w] += time.Since(t0)
		nodes.Add(localNodes)
		matches.Add(localMatches)
	}

	parks0, wakeups0 := pool.Counters()
	pool.Submit(frontier, run)
	parks1, wakeups1 := pool.Counters()

	e.statsMu.Lock()
	e.stats.Escalations++
	e.stats.Resplits += resplits.Load()
	e.stats.Parks += parks1 - parks0
	e.stats.Wakeups += wakeups1 - wakeups0
	for len(e.stats.ThreadBusy) < threads+1 {
		e.stats.ThreadBusy = append(e.stats.ThreadBusy, 0)
	}
	for w, b := range busy {
		e.stats.ThreadBusy[w+1] += b
	}
	e.statsMu.Unlock()

	return innerResult{matches: matches.Load(), nodes: nodes.Load(), timeout: aborted.Load(), escalated: true, resplits: resplits.Load()}
}

// ensurePool lazily starts the persistent worker pool: engines that never
// escalate (Threads==1, or streams of only light updates) never spawn a
// goroutine. Engine.Close releases it; a later escalation restarts it.
//
//paracosm:allocs one-time pool spin-up on first escalation
func (e *Engine) ensurePool() *concurrent.Pool[csm.State] {
	if e.pool == nil {
		e.pool = concurrent.NewPool[csm.State](e.cfg.Threads)
	}
	return e.pool
}

// emitMatch serializes OnMatch callbacks across workers.
func (e *Engine) emitMatch(s *csm.State, count uint64, positive bool) {
	if e.OnMatch == nil {
		return
	}
	e.matchMu.Lock()
	e.OnMatch(s, count, positive)
	e.matchMu.Unlock()
}
