package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/concurrent"
	"paracosm/internal/csm"
	"paracosm/internal/stream"
)

// innerResult carries the outcome of one find-matches phase.
type innerResult struct {
	matches uint64
	nodes   uint64
	timeout bool
}

// findMatchesParallel is the inner-update executor (Algorithm 2) with an
// adaptive escalation front end. Real update streams are extremely
// heavy-tailed: most updates produce search trees of a handful of nodes
// (where any parallel coordination would dominate the work), while a rare
// update explodes into millions of nodes. The executor therefore starts
// every update sequentially under a node budget and escalates to the
// parallel phase — BFS decomposition into a concurrent task queue drained
// by a worker pool with adaptive re-splitting — only once the budget is
// exceeded, i.e. exactly for the updates where parallelism pays.
func (e *Engine) findMatchesParallel(deadline time.Time, hasDeadline bool, upd stream.Update, positive bool) innerResult {
	var res innerResult

	// Initialization: collect the first layer of the search tree.
	stack := e.rootBuf[:0]
	e.algo.Roots(upd, func(s csm.State) { stack = append(stack, s) })
	e.rootBuf = stack[:0]
	if len(stack) == 0 {
		return res
	}

	threads := e.cfg.Threads
	budget := uint64(e.cfg.EscalateNodes)
	if threads <= 1 {
		budget = ^uint64(0) // never escalate
	}

	// Sequential phase: explicit-stack DFS under the node budget.
	checkCounter := uint64(0)
	for len(stack) > 0 {
		if res.nodes >= budget {
			break
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.nodes++
		checkCounter++
		if hasDeadline && checkCounter%1024 == 0 && time.Now().After(deadline) {
			res.timeout = true
			return res
		}
		if c, done := e.algo.Terminal(&s); done {
			res.matches += c
			e.emitMatch(&s, c, positive)
			continue
		}
		e.algo.Expand(&s, func(child csm.State) { stack = append(stack, child) })
	}
	if len(stack) == 0 {
		return res
	}

	// Escalation: hand the remaining frontier to the worker pool.
	par := e.runWorkers(stack, deadline, hasDeadline, positive)
	res.matches += par.matches
	res.nodes += par.nodes
	res.timeout = par.timeout
	return res
}

// runWorkers is the parallel execution phase of Algorithm 2.
func (e *Engine) runWorkers(frontier []csm.State, deadline time.Time, hasDeadline bool, positive bool) innerResult {
	threads := e.cfg.Threads
	var queue concurrent.Queue[csm.State]
	queue.PushAll(frontier)

	var (
		matches atomic.Uint64
		nodes   atomic.Uint64
		aborted atomic.Bool
		idle    atomic.Int32
		wg      sync.WaitGroup
	)

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var busy time.Duration
			var localNodes, localMatches uint64

			var dfs func(s *csm.State)
			dfs = func(s *csm.State) {
				if aborted.Load() {
					return
				}
				localNodes++
				if hasDeadline && localNodes%1024 == 0 && time.Now().After(deadline) {
					aborted.Store(true)
					return
				}
				if c, done := e.algo.Terminal(s); done {
					localMatches += c
					e.emitMatch(s, c, positive)
					return
				}
				// Adaptive task sharing: re-split shallow subtrees into
				// queue tasks when other workers are starved.
				if e.cfg.LoadBalance && int(s.Depth) < e.splitDepth &&
					idle.Load() > 0 && queue.Empty() {
					e.algo.Expand(s, func(child csm.State) { queue.Push(child) })
					return
				}
				e.algo.Expand(s, func(child csm.State) { dfs(&child) })
			}

			for {
				s, ok := queue.Pop()
				if ok {
					t0 := time.Now()
					dfs(&s)
					busy += time.Since(t0)
					continue
				}
				// Queue empty: declare idle. All workers idle with an
				// empty queue means no task exists or can appear.
				idle.Add(1)
				for {
					if aborted.Load() {
						e.finishWorker(w, busy, localNodes, localMatches, &nodes, &matches)
						return
					}
					if queue.Len() > 0 {
						idle.Add(-1)
						break
					}
					if int(idle.Load()) == threads {
						e.finishWorker(w, busy, localNodes, localMatches, &nodes, &matches)
						return
					}
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()

	return innerResult{matches: matches.Load(), nodes: nodes.Load(), timeout: aborted.Load()}
}

func (e *Engine) finishWorker(w int, busy time.Duration, localNodes, localMatches uint64, nodes, matches *atomic.Uint64) {
	nodes.Add(localNodes)
	matches.Add(localMatches)
	e.statsMu.Lock()
	for len(e.stats.ThreadBusy) <= w {
		e.stats.ThreadBusy = append(e.stats.ThreadBusy, 0)
	}
	e.stats.ThreadBusy[w] += busy
	e.statsMu.Unlock()
}

// emitMatch serializes OnMatch callbacks across workers.
func (e *Engine) emitMatch(s *csm.State, count uint64, positive bool) {
	if e.OnMatch == nil {
		return
	}
	e.matchMu.Lock()
	e.OnMatch(s, count, positive)
	e.matchMu.Unlock()
}
