package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// This file is the batch-dynamic executor v2 (DESIGN.md §15): instead of
// serializing on the first unsafe update (runBatch, Figure 6), updates
// are buffered into a window, coalesced (exact insert/delete pairs
// annihilate, repeated touches fold to their net effect), and scheduled
// into independent sets — "waves" — of updates with pairwise-disjoint
// conflict footprints, each wave committed with its unsafe enumerations
// running concurrently.
//
// Wave selection is a greedy, order-preserving independent-prefix scan:
// per round, walk the pending updates in window order, compute each
// edge update's footprint against the CURRENT graph, and select it if
// its footprint is disjoint from every footprint seen this round —
// selected or skipped alike, so an update never jumps ahead of an
// earlier conflicting one. Vertex ops and footprint overflows conflict
// with everything: they commit alone and stop the scan.
//
// Footprints must be current-state, not window-start: an insert
// committed in an earlier wave shortens distances, so a later update's
// runtime reads can escape its window-start ball. Against the current
// graph the escape is impossible — if an update's walk could cross a
// wave-mate's new edge, the crossing endpoint is reachable through
// wave-start edges within the footprint radius, putting it in both
// footprints and forcing the pair into different waves (the
// "first-crossing" argument of DESIGN.md §15).

// winRoundCap bounds wave-selection rounds per window. A window that is
// still not drained after this many rounds is a pathological conflict
// chain; the remainder commits serially (the exact v1 path), trading
// grouping for a hard bound on scheduling cost.
const winRoundCap = 32

// winSingleCap: consecutive singleton waves before the rest of the
// window drains serially. Singleton waves mean the scheduler is finding
// no disjointness (dense region or label-weak filter); each further
// round would re-pay a full footprint scan to select one update, which
// is strictly worse than the v1 serial path it degenerates to.
const winSingleCap = 2

// winConflictStreak: consecutive conflicting scans before nextWave cuts
// a round short. Once several adjacent updates in a row overlap the
// stamped set, later disjoint updates are unlikely and each test costs
// a footprint BFS; stopping early only shrinks the wave (sound — the
// remainder stays pending in window order).
const winConflictStreak = 8

// waveScheduler selects waves from a window's pending updates. The
// stamp array is epoch-stamped per round so clearing is O(1).
type waveScheduler struct {
	fs      graph.FootprintScratch
	stamp   []uint32
	epoch   uint32
	pending []int32
	members []int32
	keep    []int32
}

func (ws *waveScheduler) reset(n int) {
	ws.pending = ws.pending[:0]
	for i := 0; i < n; i++ {
		ws.pending = append(ws.pending, int32(i))
	}
}

// nextWave removes and returns the next wave from the pending updates:
// a maximal set of pairwise-disjoint updates no member of which
// conflicts with an earlier pending update. The returned slice aliases
// scheduler scratch, valid until the next call. len(result) >= 1
// whenever pending is non-empty, so the caller always makes progress.
func (ws *waveScheduler) nextWave(g *graph.Graph, batch stream.Stream, radius, max int, labelOK []bool) []int32 {
	nv := g.NumVertices()
	for len(ws.stamp) < nv {
		ws.stamp = append(ws.stamp, 0)
	}
	ws.epoch++
	if ws.epoch == 0 {
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.epoch = 1
	}
	ws.members = ws.members[:0]
	ws.keep = ws.keep[:0]
	i, streak := 0, 0
	for ; i < len(ws.pending); i++ {
		j := ws.pending[i]
		upd := batch[j]
		barrier := !upd.IsEdge()
		var f []graph.VertexID
		if !barrier {
			var over bool
			f, over = ws.fs.Footprint(g, upd.U, upd.V, radius, max, labelOK)
			barrier = over
		}
		if barrier {
			// Conflicts with everything: commits alone if it is the
			// first pending update, else waits for a later round. Either
			// way nothing after it may be selected (it would jump ahead
			// of a conflicting update), so the scan stops.
			if len(ws.members) == 0 && len(ws.keep) == 0 {
				ws.members = append(ws.members, j)
				i++
			}
			break
		}
		conflict := false
		for _, x := range f {
			if ws.stamp[x] == ws.epoch {
				conflict = true
				break
			}
		}
		for _, x := range f {
			ws.stamp[x] = ws.epoch
		}
		if conflict {
			ws.keep = append(ws.keep, j)
			streak++
			if streak >= winConflictStreak {
				i++
				break
			}
		} else {
			ws.members = append(ws.members, j)
			streak = 0
		}
	}
	ws.keep = append(ws.keep, ws.pending[i:]...)
	ws.pending, ws.keep = ws.keep, ws.pending
	return ws.members
}

// winResult accumulates one window update's outcome across the wave
// phases; OnDelta emission is deferred to window end so subscribers see
// deltas in window order regardless of wave execution order.
type winResult struct {
	d       csm.Delta
	r       innerResult
	err     error
	elapsed time.Duration // member-attributed busy time (find + apply + ADS)
	reclass bool
	// escalate marks a member whose sequential find exhausted the node
	// budget; frontier then holds the unexplored remainder for the pool.
	escalate bool
	emit     bool
	frontier []csm.State
}

func (res *winResult) reset() {
	f := res.frontier[:0]
	*res = winResult{frontier: f}
}

// winScratch is the engine's reusable windowed-executor state.
type winScratch struct {
	coal     *stream.Coalescer
	buf      stream.Stream
	verdicts []classification
	sched    waveScheduler
	results  []winResult
	neg      []int32 // unsafe deletes of the current wave
	pos      []int32 // unsafe inserts of the current wave
	labelOK  []bool
	radius   int

	// local records whether the algorithm implements csm.FootprintLocal;
	// if not, waves are never formed (every window drains serially) —
	// the algorithm's find or ADS maintenance is order-dependent beyond
	// footprint disjointness (e.g. SJ-Tree's ΔM⁺ queue).
	local bool

	// Adaptive scheduler bypass: when a probed window yields no
	// multi-update wave (dense region or label-weak filter), the
	// footprint scans were pure overhead, so the next `skipSched`
	// windows drain serially without scheduling; `backoff` doubles up
	// to winSkipCap on each fruitless probe and resets on the first
	// parallel wave. Bypassed windows are exactly the v1 serial path.
	skipSched int
	backoff   int
}

// winSkipCap bounds the scheduler-bypass backoff: at most this many
// consecutive windows run serially before the scheduler is probed again.
const winSkipCap = 32

// ensureWin lazily builds the window scratch: the conflict-footprint
// radius is the query vertex count (the maximum candidate-walk length
// and ADS cascade depth) and the label mask marks the query's vertex
// labels as relevant.
func (e *Engine) ensureWin() *winScratch {
	if e.win != nil {
		return e.win
	}
	w := &winScratch{coal: stream.NewCoalescer(), radius: e.q.NumVertices()}
	_, w.local = e.algo.(csm.FootprintLocal)
	var maxL graph.Label
	for u := 0; u < e.q.NumVertices(); u++ {
		if l := e.q.Label(query.VertexID(u)); l > maxL {
			maxL = l
		}
	}
	w.labelOK = make([]bool, maxL+1)
	for u := 0; u < e.q.NumVertices(); u++ {
		w.labelOK[e.q.Label(query.VertexID(u))] = true
	}
	e.win = w
	return w
}

// classifyStageA is Stage A of the inter-update executor: parallel
// classification of batch into verdicts (read-only against the graph
// and ADS). Returns the wall-clock cost. Shared by runBatch and
// runWindow.
func (e *Engine) classifyStageA(batch stream.Stream, verdicts []classification) time.Duration {
	t := time.Now()
	k := len(batch)
	workers := e.cfg.Threads
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for j, upd := range batch {
			verdicts[j] = e.classify(upd)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (k + workers - 1) / workers
		for x := 0; x < workers; x++ {
			lo := x * chunk
			hi := lo + chunk
			if hi > k {
				hi = k
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for j := lo; j < hi; j++ {
					verdicts[j] = e.classify(batch[j])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	return time.Since(t)
}

// runWindow executes one window of the batch-dynamic executor: coalesce
// up to cfg.Window raw updates, classify the survivors in parallel,
// schedule them into waves and commit each wave with its unsafe
// enumerations concurrent. Consumes min(cfg.Window, len(s)) raw updates
// and returns the first (window-order) per-update error, if any.
func (e *Engine) runWindow(ctx context.Context, s stream.Stream) (int, error) {
	k := e.cfg.Window
	if k > len(s) {
		k = len(s)
	}
	raw := s[:k]
	w := e.ensureWin()
	tr := e.cfg.Tracer

	tC := time.Now()
	var cst stream.CoalesceStats
	w.buf, cst = w.coal.Coalesce(w.buf[:0], raw)
	coalesceCost := time.Since(tC)
	batch := w.buf
	n := len(batch)

	for cap(w.results) < n {
		w.results = append(w.results[:cap(w.results)], winResult{})
	}
	w.results = w.results[:n]
	for i := range w.results {
		w.results[i].reset()
	}
	for len(w.verdicts) < n {
		w.verdicts = append(w.verdicts, classDirect)
	}
	w.verdicts = w.verdicts[:n]

	var classifyCost time.Duration
	if n > 0 {
		classifyCost = e.classifyStageA(batch, w.verdicts)
	}
	e.statsMu.Lock()
	e.stats.Batches++
	e.stats.TTotal += classifyCost
	e.statsMu.Unlock()
	if tr != nil {
		tr.Classify(classifyCost)
	}

	var conflictCost, parallelSpan time.Duration
	wc := WindowCounters{Windows: 1, Coalesced: cst.Removed(), Annihilated: cst.AnnihilatedPairs}
	w.sched.reset(n)
	rounds, singles := 0, 0
	probe := true
	if !w.local {
		probe = false
		singles = winSingleCap // non-local algorithm: always serial
	} else if w.skipSched > 0 && n > 0 {
		w.skipSched--
		probe = false
		singles = winSingleCap // forces the serial-drain branch
	}
	for len(w.sched.pending) > 0 {
		if rounds == winRoundCap || singles >= winSingleCap {
			// Pathological conflict chain: commit the remainder serially
			// (the v1 path), bounding scheduling cost.
			for _, j := range w.sched.pending {
				e.runWinOne(ctx, batch, int(j))
				wc.FallbackSerial++
				wc.Groups++
			}
			if wc.MaxGroup < 1 {
				wc.MaxGroup = 1
			}
			w.sched.pending = w.sched.pending[:0]
			break
		}
		rounds++
		tB := time.Now()
		members := w.sched.nextWave(e.g, batch, w.radius, e.cfg.FootprintCap, w.labelOK)
		conflictCost += time.Since(tB)
		wc.Groups++
		if len(members) > wc.MaxGroup {
			wc.MaxGroup = len(members)
		}
		if len(members) == 1 {
			singles++
			e.runWinOne(ctx, batch, int(members[0]))
			wc.FallbackSerial++
		} else {
			singles = 0
			tP := time.Now()
			e.runWinWave(ctx, batch, members)
			parallelSpan += time.Since(tP)
			wc.UnsafeParallel += len(members)
		}
	}

	if probe && n > 0 {
		if wc.UnsafeParallel > 0 {
			w.backoff = 0
		} else {
			w.backoff = w.backoff*2 + 1
			if w.backoff > winSkipCap {
				w.backoff = winSkipCap
			}
			w.skipSched = w.backoff
		}
	}

	e.statsMu.Lock()
	e.stats.Window.Add(wc)
	e.statsMu.Unlock()
	if tr != nil {
		st := tr.Stages()
		st.Observe(obs.StageCoalesce, coalesceCost)
		st.Observe(obs.StageConflictBuild, conflictCost)
		st.Observe(obs.StageParallelUnsafe, parallelSpan)
		tr.Window(uint64(wc.Coalesced), uint64(wc.Annihilated), uint64(wc.UnsafeParallel), uint64(wc.FallbackSerial))
		tr.Stage(obs.Event{
			Op: obs.OpWindow, Coalesce: coalesceCost, ConflictBuild: conflictCost,
			ParallelUnsafe: parallelSpan, Total: coalesceCost + conflictCost + parallelSpan,
		})
	}

	// Deferred OnDelta emission, in window order: wave execution order is
	// not window order, but commuting updates produce order-independent
	// deltas, so emitting here restores the sequential observable order.
	var firstErr error
	for j := 0; j < n; j++ {
		res := &w.results[j]
		if res.emit && e.cfg.OnDelta != nil {
			e.cfg.OnDelta(batch[j], res.d, res.err != nil)
		}
		if firstErr == nil && res.err != nil {
			firstErr = res.err
		}
	}
	return k, firstErr
}

// runWinOne commits the window update at index j alone — the serial
// fallback, identical to one v1 Stage-B step except that OnDelta
// emission is deferred to window end.
func (e *Engine) runWinOne(ctx context.Context, batch stream.Stream, j int) {
	w := e.win
	upd := batch[j]
	res := &w.results[j]
	v := w.verdicts[j]
	if (v == classSafeDegree || v == classSafeADS) && upd.IsEdge() {
		// Earlier waves may have changed endpoint degrees or the ADS
		// since Stage-A classification; re-validate, as runBatch does.
		if rv := e.classify(upd); rv == classUnsafe {
			v = classUnsafe
			res.reclass = true
			e.statsMu.Lock()
			e.stats.Reclassified++
			e.statsMu.Unlock()
		} else {
			v = rv
		}
		w.verdicts[j] = v
	}
	switch v {
	case classVertexOp, classUnsafe:
		e.winDefer = res
		_, err := e.processUpdate(ctx, upd, v, res.reclass)
		e.winDefer = nil
		res.err = err
		e.statsMu.Lock()
		if v == classVertexOp {
			e.stats.VertexUpdates++
			e.stats.SafeUpdates++
		} else {
			e.stats.UnsafeUpdates++
		}
		e.statsMu.Unlock()
	default:
		e.applySafe(upd, v, res)
	}
}

// applySafe commits a safe-classified update: mutation plus (below
// stage-3 safety) ADS maintenance, no enumeration — the runBatch safe
// branch with the OnDelta emission deferred into res.
func (e *Engine) applySafe(upd stream.Update, v classification, res *winResult) {
	t0 := time.Now()
	if err := upd.Apply(e.g); err != nil {
		res.err = err
		return
	}
	var tads time.Duration
	if v != classSafeADS {
		tA := time.Now()
		e.algo.UpdateADS(upd)
		tads = time.Since(tA)
	}
	total := time.Since(t0)
	e.statsMu.Lock()
	e.stats.Updates++
	e.stats.SafeUpdates++
	e.stats.TADS += tads
	switch v {
	case classSafeLabel:
		e.stats.SafeByLabel++
	case classSafeDegree:
		e.stats.SafeByDegree++
	case classSafeADS:
		e.stats.SafeByADS++
	}
	e.stats.TTotal += total
	e.statsMu.Unlock()
	if e.lat != nil {
		e.lat.Observe(total)
	}
	if e.cfg.Tracer != nil {
		d := csm.Delta{TADS: tads}
		var r innerResult
		e.traceUpdate(upd, v, false, &d, &r, total, false)
	}
	res.d = csm.Delta{TADS: tads}
	res.elapsed += total
	res.emit = true
}

// runWinWave commits one multi-update wave. Members have pairwise
// disjoint conflict footprints, so the phases below reproduce exactly
// the sequential (window-order) execution:
//
//	0. serial:   re-validate stale degree/ADS verdicts (wave-start state)
//	1. parallel: expiring-match enumeration for unsafe deletes — reads
//	   the wave-start graph, which disjointness makes indistinguishable
//	   from each member's sequential pre-state
//	1.5 serial:  finish over-budget delete searches on the worker pool
//	2. serial:   mutations + ADS maintenance, in window order
//	3. parallel: new-match enumeration for unsafe inserts (post-state)
//	3.5 serial:  finish over-budget insert searches on the worker pool
//	4. serial:   accounting, tracing, emission marking
func (e *Engine) runWinWave(ctx context.Context, batch stream.Stream, members []int32) {
	w := e.win
	deadline, hasDeadline := ctx.Deadline()

	for _, j := range members {
		v := w.verdicts[j]
		if v == classSafeDegree || v == classSafeADS {
			if rv := e.classify(batch[j]); rv != v {
				if rv == classUnsafe {
					w.results[j].reclass = true
					e.statsMu.Lock()
					e.stats.Reclassified++
					e.statsMu.Unlock()
				}
				w.verdicts[j] = rv
			}
		}
	}

	w.neg, w.pos = w.neg[:0], w.pos[:0]
	for _, j := range members {
		if w.verdicts[j] == classUnsafe {
			if batch[j].Op == stream.DeleteEdge {
				w.neg = append(w.neg, j)
			} else {
				w.pos = append(w.pos, j)
			}
		}
	}

	budget := uint64(e.cfg.EscalateNodes)
	if e.cfg.Threads <= 1 {
		budget = ^uint64(0)
	}

	e.waveFindAll(w.neg, batch, deadline, hasDeadline, false, budget)
	e.waveEscalate(w.neg, deadline, hasDeadline, false)

	for _, j := range members {
		res := &w.results[j]
		upd := batch[j]
		v := w.verdicts[j]
		if v != classUnsafe {
			e.applySafe(upd, v, res)
			continue
		}
		t0 := time.Now()
		if err := upd.Apply(e.g); err != nil {
			res.err = err
			continue
		}
		tA := time.Now()
		e.algo.UpdateADS(upd)
		res.d.TADS = time.Since(tA)
		res.elapsed += time.Since(t0)
	}

	e.waveFindAll(w.pos, batch, deadline, hasDeadline, true, budget)
	e.waveEscalate(w.pos, deadline, hasDeadline, true)

	for _, j := range members {
		res := &w.results[j]
		if w.verdicts[j] != classUnsafe || res.err != nil {
			continue // safe members were finalized by applySafe
		}
		if batch[j].Op == stream.DeleteEdge {
			res.d.Negative = res.r.matches
		} else {
			res.d.Positive = res.r.matches
		}
		res.d.Nodes = res.r.nodes
		if res.r.timeout {
			res.err = csm.ErrDeadline
		}
		e.account(&res.d, res.r.seqBusy, res.elapsed)
		e.statsMu.Lock()
		e.stats.UnsafeUpdates++
		e.statsMu.Unlock()
		if e.cfg.Tracer != nil {
			e.traceUpdate(batch[j], classUnsafe, res.reclass, &res.d, &res.r, res.elapsed, res.err != nil)
		}
		res.emit = true
	}
}

// waveFindAll runs the find phase of the listed wave members
// concurrently on up to Threads goroutines (atomic work-stealing, the
// caller runs one worker itself), skipping members that already failed.
//
//paracosm:allocs wave fan-out allocates goroutines and per-member stacks, amortized over the wave
func (e *Engine) waveFindAll(work []int32, batch stream.Stream, deadline time.Time, hasDeadline bool, positive bool, budget uint64) {
	if len(work) == 0 {
		return
	}
	w := e.win
	run := func(j int32) {
		res := &w.results[j]
		if res.err != nil {
			return
		}
		e.findLocal(res, deadline, hasDeadline, batch[j], positive, budget)
	}
	workers := e.cfg.Threads
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		for _, j := range work {
			run(j)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for x := 1; x < workers; x++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				run(work[i])
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(work) {
			break
		}
		run(work[i])
	}
	wg.Wait()
}

// findLocal is one wave member's sequential find phase: the same
// explicit-stack DFS as findMatchesParallel, but over the member's own
// stack (res.frontier) so members run concurrently — the engine-resident
// rootBuf/seqState scratch belongs to the serial paths. On budget
// exhaustion the unexplored frontier stays in res.frontier and
// res.escalate is set for waveEscalate to finish on the worker pool; no
// node is re-explored and no match double-reported.
//
//paracosm:allocs per-member stacks and closures, amortized over multi-update waves
func (e *Engine) findLocal(res *winResult, deadline time.Time, hasDeadline bool, upd stream.Update, positive bool, budget uint64) {
	t0 := time.Now()
	stack := res.frontier[:0]
	push := func(s csm.State) { stack = append(stack, s) }
	e.algo.Roots(upd, push)
	var cur csm.State
	check := uint64(0)
	for len(stack) > 0 {
		if res.r.nodes >= budget {
			res.escalate = true
			break
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.r.nodes++
		check++
		if hasDeadline && check%1024 == 0 && time.Now().After(deadline) {
			res.r.timeout = true
			break
		}
		if c, done := e.algo.Terminal(&cur); done {
			res.r.matches += c
			e.emitMatch(&cur, c, positive)
			continue
		}
		e.algo.Expand(&cur, push)
	}
	res.frontier = stack
	dt := time.Since(t0)
	res.r.seqBusy += dt
	res.d.TFind += dt
	res.elapsed += dt
}

// waveEscalate finishes over-budget member searches on the persistent
// worker pool, one member at a time (pool epochs cannot overlap),
// continuing each frontier exactly where findLocal stopped.
//
//paracosm:allocs pool epochs allocate per-epoch scratch (see runWorkers)
func (e *Engine) waveEscalate(work []int32, deadline time.Time, hasDeadline bool, positive bool) {
	w := e.win
	for _, j := range work {
		res := &w.results[j]
		if !res.escalate || res.err != nil || res.r.timeout || len(res.frontier) == 0 {
			continue
		}
		res.escalate = false
		t0 := time.Now()
		par := e.runWorkers(res.frontier, deadline, hasDeadline, positive)
		res.frontier = res.frontier[:0]
		res.r.matches += par.matches
		res.r.nodes += par.nodes
		res.r.timeout = res.r.timeout || par.timeout
		res.r.escalated = true
		res.r.resplits += par.resplits
		dt := time.Since(t0)
		res.d.TFind += dt
		res.elapsed += dt
	}
}
