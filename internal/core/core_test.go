package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

// totalsVsReference computes the reference total (pos, neg) for applying s
// to a clone of g.
func totalsVsReference(g *graph.Graph, q *query.Graph, s stream.Stream, opt refmatch.Options) (pos, neg uint64) {
	h := g.Clone()
	for _, upd := range s {
		p, n := refmatch.Delta(h, q, upd, opt)
		pos += p
		neg += n
		if err := upd.Apply(h); err != nil {
			panic(err)
		}
	}
	return pos, neg
}

// TestParaCOSMMatchesReference is the end-to-end correctness test of the
// whole framework: for every algorithm, across thread counts, with and
// without the inter-update executor, the cumulative incremental matches
// must equal the recompute-and-diff reference.
func TestParaCOSMMatchesReference(t *testing.T) {
	for _, f := range algotest.Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g0 := algotest.RandomGraph(rng, 28, 60, 2, 2)
				q := algotest.RandomQuery(rng, g0, 4)
				if q == nil {
					continue
				}
				s := algotest.RandomStream(rng, g0, 40, 0.7, 2)
				opt := refmatch.Options{IgnoreELabels: f.IgnoreELabels}
				wantPos, wantNeg := totalsVsReference(g0, q, s, opt)

				for _, threads := range []int{1, 2, 4} {
					for _, inter := range []bool{false, true} {
						g := g0.Clone()
						eng := New(f.New(), Threads(threads), InterUpdate(inter), BatchSize(7), SplitDepth(3))
						if err := eng.Init(g, q); err != nil {
							t.Fatal(err)
						}
						st, err := eng.Run(context.Background(), s)
						if err != nil {
							t.Fatalf("seed %d threads %d inter %v: %v", seed, threads, inter, err)
						}
						if st.Positive != wantPos || st.Negative != wantNeg {
							t.Fatalf("seed %d threads %d inter %v: totals (+%d,-%d), reference (+%d,-%d)",
								seed, threads, inter, st.Positive, st.Negative, wantPos, wantNeg)
						}
						if st.Updates != len(s) {
							t.Fatalf("seed %d: processed %d updates, want %d", seed, st.Updates, len(s))
						}
					}
				}
			}
		})
	}
}

// TestBatchExecutorSkippingADSIsSound verifies the core claim behind the
// stage-3 skip: after a batched run, incrementally maintained auxiliary
// structures still equal a from-scratch rebuild.
func TestBatchExecutorSkippingADSIsSound(t *testing.T) {
	for _, f := range algotest.Factories() {
		algo := f.New()
		if _, ok := algo.(csm.Rebuilder); !ok {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(50); seed < 56; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := algotest.RandomGraph(rng, 30, 65, 3, 2)
				q := algotest.RandomQuery(rng, g, 4)
				if q == nil {
					continue
				}
				s := algotest.RandomStream(rng, g, 35, 0.65, 2)
				algo := f.New()
				eng := New(algo, Threads(2), InterUpdate(true), BatchSize(5))
				if err := eng.Init(g, q); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Run(context.Background(), s); err != nil {
					t.Fatal(err)
				}
				if !algo.(csm.Rebuilder).RebuildADS() {
					t.Fatalf("seed %d: ADS inconsistent after batched run with stage-3 skips", seed)
				}
			}
		})
	}
}

// figure6Algo is a scripted algorithm reproducing the Figure 6 scenario:
// updates are safe or unsafe by fiat.
type figure6Algo struct {
	unsafeEdges map[[2]graph.VertexID]bool
	processed   []stream.Update // updates that reached UpdateADS (unsafe/full path)
}

func (a *figure6Algo) Name() string                           { return "fig6" }
func (a *figure6Algo) Build(*graph.Graph, *query.Graph) error { return nil }
func (a *figure6Algo) UpdateADS(u stream.Update)              { a.processed = append(a.processed, u) }
func (a *figure6Algo) AffectsADS(u stream.Update) bool {
	return a.unsafeEdges[[2]graph.VertexID{u.U, u.V}]
}
func (a *figure6Algo) Roots(stream.Update, func(csm.State)) {}
func (a *figure6Algo) Expand(*csm.State, func(csm.State))   {}
func (a *figure6Algo) Terminal(*csm.State) (uint64, bool)   { return 0, true }

// TestFigure6Deferral encodes the paper's Figure 6 walkthrough: in a batch
// where updates 1-3 are safe, 4 unsafe and 5 safe, update 4 must take the
// full path and update 5 must be deferred to the following batch.
func TestFigure6Deferral(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex(0)
	}
	q := query.MustNew([]graph.Label{0, 0})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	algo := &figure6Algo{unsafeEdges: map[[2]graph.VertexID]bool{{0, 4}: true}}
	eng := New(algo, Threads(2), BatchSize(5), InterUpdate(true))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	s := stream.Stream{
		{Op: stream.AddEdge, U: 0, V: 1},
		{Op: stream.AddEdge, U: 0, V: 2},
		{Op: stream.AddEdge, U: 0, V: 3},
		{Op: stream.AddEdge, U: 0, V: 4}, // unsafe
		{Op: stream.AddEdge, U: 0, V: 5},
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 2 {
		t.Fatalf("Batches = %d, want 2 (update 5 deferred)", st.Batches)
	}
	if st.SafeUpdates != 4 || st.UnsafeUpdates != 1 {
		t.Fatalf("safe/unsafe = %d/%d, want 4/1", st.SafeUpdates, st.UnsafeUpdates)
	}
	// Only the unsafe update went down the full path.
	if len(algo.processed) != 1 || algo.processed[0].V != 4 {
		t.Fatalf("full-path updates = %v, want just (0,4)", algo.processed)
	}
	// All five edges are present regardless of path.
	for v := graph.VertexID(1); v <= 5; v++ {
		if !g.HasEdge(0, v) {
			t.Fatalf("edge (0,%d) missing after run", v)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := algotest.RandomGraph(rng, 25, 55, 3, 1)
	q := algotest.RandomQuery(rng, g, 4)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 30, 0.7, 1)
	eng := New(algotest.Factories()[4].New(), Threads(2), InterUpdate(true), BatchSize(6)) // Symbi
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeUpdates+st.UnsafeUpdates != st.Updates {
		t.Fatalf("safe %d + unsafe %d != updates %d", st.SafeUpdates, st.UnsafeUpdates, st.Updates)
	}
	if st.SafeByLabel+st.SafeByDegree+st.SafeByADS+st.VertexUpdates != st.SafeUpdates {
		t.Fatalf("stage counters %d+%d+%d+%d != safe %d",
			st.SafeByLabel, st.SafeByDegree, st.SafeByADS, st.VertexUpdates, st.SafeUpdates)
	}
	if st.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	if r := st.SafeRatio(); r < 0 || r > 1 {
		t.Fatalf("SafeRatio = %v", r)
	}
}

func TestDeadlineAborts(t *testing.T) {
	// A dense single-label graph with a clique query explodes the search
	// space enough that a microsecond deadline always trips.
	rng := rand.New(rand.NewSource(9))
	g := algotest.RandomGraph(rng, 60, 900, 1, 1)
	q := query.MustNew([]graph.Label{0, 0, 0, 0, 0})
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			q.MustAddEdge(query.VertexID(i), query.VertexID(j), 0)
		}
	}
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	eng := New(algotest.Factories()[2].New(), Threads(2), InterUpdate(false)) // GraphFlow
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Microsecond))
	defer cancel()
	var sawTimeout bool
	for v := graph.VertexID(0); v < 30; v++ {
		u, w := v, (v+31)%60
		if g.HasEdge(u, w) {
			continue
		}
		_, err := eng.ProcessUpdate(ctx, stream.Update{Op: stream.AddEdge, U: u, V: w})
		if err == csm.ErrDeadline {
			sawTimeout = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawTimeout {
		t.Skip("workload finished under deadline on this machine")
	}
}

func TestThreadBusyRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := algotest.RandomGraph(rng, 40, 200, 1, 1)
	q := algotest.RandomQuery(rng, g, 4)
	if q == nil {
		t.Skip("no query")
	}
	eng := New(algotest.Factories()[2].New(), Threads(3), InterUpdate(false), EscalateNodes(1))
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	s := algotest.RandomStream(rng, g, 15, 1.0, 1)
	if _, err := eng.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if len(st.ThreadBusy) == 0 {
		t.Fatal("no per-thread busy times recorded")
	}
}

func TestConfigNormalization(t *testing.T) {
	eng := New(algotest.Factories()[2].New(), Threads(0), SplitDepth(-3))
	cfg := eng.Config()
	if cfg.Threads != 1 || cfg.SplitDepth != 0 || cfg.BatchSize != 4 || cfg.EscalateNodes != 4096 {
		t.Fatalf("normalized config = %+v", cfg)
	}
	eng2 := New(algotest.Factories()[2].New())
	if eng2.Config().Threads < 1 || eng2.Config().BatchSize < 1 {
		t.Fatalf("default config = %+v", eng2.Config())
	}
}

func TestResetStats(t *testing.T) {
	eng := New(algotest.Factories()[2].New(), Threads(1))
	rng := rand.New(rand.NewSource(21))
	g := algotest.RandomGraph(rng, 20, 40, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), algotest.RandomStream(rng, g, 10, 0.8, 1)); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Updates == 0 {
		t.Fatal("no updates recorded")
	}
	eng.ResetStats()
	if eng.Stats().Updates != 0 {
		t.Fatal("ResetStats did not clear")
	}
}
