// Package metrics provides the measurement utilities the experiment
// harness reports with: duration statistics, empirical CDFs (Figure 10)
// and fixed-width ASCII tables matching the layout of the paper's tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Rate converts an event count over an elapsed duration into events per
// second (0 when elapsed is not positive) — the unit the perf-trajectory
// baselines (BENCH_*.json: updates/sec, park/wakeup rates) report in.
func Rate(n uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// Fraction returns part/whole as a float64 (0 when whole is 0): the shape
// escalation rates and safe-update ratios are reported in.
func Fraction(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Summary holds basic order statistics of a sample of durations.
type Summary struct {
	N             int
	Min, Max      time.Duration
	Mean          time.Duration
	P50, P90, P99 time.Duration
	Total         time.Duration
}

// Summarize computes order statistics; it copies and sorts the input.
func Summarize(ds []time.Duration) Summary {
	var s Summary
	s.N = len(ds)
	if s.N == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		s.Total += d
	}
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Mean = s.Total / time.Duration(s.N)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CDF is an empirical cumulative distribution function over durations.
type CDF struct {
	xs []time.Duration // sorted sample
}

// NewCDF builds an empirical CDF from a sample.
func NewCDF(ds []time.Duration) *CDF {
	xs := append([]time.Duration(nil), ds...)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return &CDF{xs: xs}
}

// At returns P(X <= x).
func (c *CDF) At(x time.Duration) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := sort.Search(len(c.xs), func(i int) bool { return c.xs[i] > x })
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the smallest x with P(X <= x) >= p.
func (c *CDF) Quantile(p float64) time.Duration {
	return percentile(c.xs, p)
}

// Points returns n evenly spaced (x, P(X<=x)) pairs spanning the sample
// range, the series a CDF plot (Figure 10) is drawn from.
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.xs) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.xs[0], c.xs[len(c.xs)-1]
	pts := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		x := lo + time.Duration(float64(hi-lo)*float64(i)/float64(n-1))
		pts[i] = CDFPoint{X: x, P: c.At(x)}
	}
	return pts
}

// CDFPoint is one point of an empirical CDF curve.
type CDFPoint struct {
	X time.Duration
	P float64
}

// Table accumulates rows and renders a fixed-width ASCII table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		b.WriteString("|")
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		return b.String()
	}
	sep := "+"
	for _, wd := range widths {
		sep += strings.Repeat("-", wd+2) + "+"
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintln(w, sep)
	fmt.Fprintln(w, line(t.Headers))
	fmt.Fprintln(w, sep)
	for _, r := range t.rows {
		fmt.Fprintln(w, line(r))
	}
	fmt.Fprintln(w, sep)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
