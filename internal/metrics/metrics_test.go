package metrics

import (
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{ms(10), ms(30), ms(20)})
	if s.N != 3 || s.Min != ms(10) || s.Max != ms(30) || s.Mean != ms(20) || s.Total != ms(60) {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P50 != ms(20) {
		t.Fatalf("P50 = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]time.Duration{ms(1), ms(2), ms(3), ms(4)})
	if got := c.At(ms(2)); got != 0.5 {
		t.Fatalf("At(2ms) = %v, want 0.5", got)
	}
	if got := c.At(ms(0)); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(ms(10)); got != 1 {
		t.Fatalf("At(10ms) = %v", got)
	}
	if q := c.Quantile(0.5); q != ms(2) {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]time.Duration{ms(5), ms(1), ms(9), ms(3), ms(7)})
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P || pts[i].X < pts[i-1].X {
			t.Fatalf("CDF points not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatalf("final CDF point = %v, want 1", pts[len(pts)-1].P)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X: demo", "name", "value", "time")
	tb.AddRow("alpha", 1.5, ms(3))
	tb.AddRow("beta", 200.5, ms(12))
	out := tb.String()
	for _, want := range []string{"Table X: demo", "alpha", "beta", "1.500", "200.5", "3ms", "| name", "+--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableIntegerFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	if !strings.Contains(tb.String(), " 3 ") {
		t.Fatalf("integral float not compact: %s", tb.String())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(500, time.Second); got != 500 {
		t.Fatalf("Rate(500, 1s) = %v", got)
	}
	if got := Rate(100, 2*time.Second); got != 50 {
		t.Fatalf("Rate(100, 2s) = %v", got)
	}
	if got := Rate(7, 0); got != 0 {
		t.Fatalf("Rate(7, 0) = %v, want 0", got)
	}
}

func TestFraction(t *testing.T) {
	if got := Fraction(1, 4); got != 0.25 {
		t.Fatalf("Fraction(1,4) = %v", got)
	}
	if got := Fraction(3, 0); got != 0 {
		t.Fatalf("Fraction(3,0) = %v, want 0", got)
	}
}
