// Package stream models the graph update stream ΔG of the CSM problem
// (Definition 2.3): a sequence of edge/vertex insertions and deletions
// applied to the data graph, plus a text codec and generators for building
// synthetic workloads.
package stream

import (
	"fmt"

	"paracosm/internal/graph"
)

// Op is the kind of a single graph update.
type Op uint8

const (
	// AddEdge inserts edge (U,V) with label ELabel.
	AddEdge Op = iota
	// DeleteEdge removes edge (U,V).
	DeleteEdge
	// AddVertex inserts an isolated vertex with label VLabel; U receives
	// the assigned id when applied.
	AddVertex
	// DeleteVertex removes the isolated vertex U.
	DeleteVertex
)

// String returns the codec mnemonic of the op.
func (o Op) String() string {
	switch o {
	case AddEdge:
		return "+e"
	case DeleteEdge:
		return "-e"
	case AddVertex:
		return "+v"
	case DeleteVertex:
		return "-v"
	}
	//lint:ignore noalloc unknown-op fallback: every named op returns a constant above
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Update is one element ΔG of the update stream.
type Update struct {
	Op     Op
	U, V   graph.VertexID
	ELabel graph.Label // for AddEdge
	VLabel graph.Label // for AddVertex
}

// IsEdge reports whether the update mutates an edge.
func (u Update) IsEdge() bool { return u.Op == AddEdge || u.Op == DeleteEdge }

// IsInsert reports whether the update adds (rather than removes) structure.
func (u Update) IsInsert() bool { return u.Op == AddEdge || u.Op == AddVertex }

// String formats the update in the codec's line format.
func (u Update) String() string {
	switch u.Op {
	case AddEdge:
		return fmt.Sprintf("+e %d %d %d", u.U, u.V, u.ELabel)
	case DeleteEdge:
		return fmt.Sprintf("-e %d %d", u.U, u.V)
	case AddVertex:
		return fmt.Sprintf("+v %d", u.VLabel)
	case DeleteVertex:
		return fmt.Sprintf("-v %d", u.U)
	}
	return "?"
}

// Apply mutates g according to u. It returns an error when the update does
// not apply cleanly (duplicate edge, missing edge, non-isolated vertex),
// which indicates a malformed stream.
func (u Update) Apply(g *graph.Graph) error {
	switch u.Op {
	case AddEdge:
		if !g.AddEdge(u.U, u.V, u.ELabel) {
			//lint:ignore noalloc malformed-stream path: error formatting is off the per-update contract
			return fmt.Errorf("stream: +e %d %d: edge exists or self loop", u.U, u.V)
		}
	case DeleteEdge:
		if !g.RemoveEdge(u.U, u.V) {
			//lint:ignore noalloc malformed-stream path: error formatting is off the per-update contract
			return fmt.Errorf("stream: -e %d %d: edge missing", u.U, u.V)
		}
	case AddVertex:
		g.AddVertex(u.VLabel)
	case DeleteVertex:
		if !g.Alive(u.U) {
			//lint:ignore noalloc malformed-stream path: error formatting is off the per-update contract
			return fmt.Errorf("stream: -v %d: vertex missing", u.U)
		}
		g.DeleteVertex(u.U)
	default:
		//lint:ignore noalloc malformed-stream path: error formatting is off the per-update contract
		return fmt.Errorf("stream: unknown op %d", u.Op)
	}
	return nil
}

// ApplyLogged is Apply with every mutation's inverse recorded in log, so
// the caller can validate a batch by speculative application and roll the
// graph back (see graph.UndoLog). Unlike Apply, deleting a non-isolated
// vertex is reported as an error instead of panicking: ApplyLogged is the
// validation path for untrusted streams, where a malformed update must be
// rejected, not crash the process.
func (u Update) ApplyLogged(g *graph.Graph, log *graph.UndoLog) error {
	switch u.Op {
	case AddEdge:
		if !g.AddEdgeLogged(u.U, u.V, u.ELabel, log) {
			return fmt.Errorf("stream: +e %d %d: edge exists or self loop", u.U, u.V)
		}
	case DeleteEdge:
		if !g.RemoveEdgeLogged(u.U, u.V, log) {
			return fmt.Errorf("stream: -e %d %d: edge missing", u.U, u.V)
		}
	case AddVertex:
		g.AddVertexLogged(u.VLabel, log)
	case DeleteVertex:
		if !g.Alive(u.U) {
			return fmt.Errorf("stream: -v %d: vertex missing", u.U)
		}
		if g.Degree(u.U) != 0 {
			return fmt.Errorf("stream: -v %d: vertex not isolated", u.U)
		}
		g.DeleteVertexLogged(u.U, log)
	default:
		return fmt.Errorf("stream: unknown op %d", u.Op)
	}
	return nil
}

// Invert returns the update that undoes u (edge ops only).
func (u Update) Invert() (Update, error) {
	switch u.Op {
	case AddEdge:
		return Update{Op: DeleteEdge, U: u.U, V: u.V}, nil
	case DeleteEdge:
		return Update{Op: AddEdge, U: u.U, V: u.V, ELabel: u.ELabel}, nil
	}
	return Update{}, fmt.Errorf("stream: cannot invert %v", u.Op)
}

// Stream is an ordered sequence of updates.
type Stream []Update

// ApplyAll applies every update in order, stopping at the first error.
func (s Stream) ApplyAll(g *graph.Graph) error {
	for i, u := range s {
		if err := u.Apply(g); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	return nil
}

// CountOps returns the number of updates per op kind.
func (s Stream) CountOps() map[Op]int {
	m := make(map[Op]int)
	for _, u := range s {
		m[u.Op]++
	}
	return m
}
