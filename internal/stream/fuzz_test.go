package stream

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the stream codec never panics and that accepted input
// round-trips losslessly.
func FuzzRead(f *testing.F) {
	f.Add("+e 0 1 2\n-e 0 1\n+v 3\n-v 0\n")
	f.Add("# c\n+e 1 1 1\n")
	f.Add("-e 99999 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			t.Fatalf("Write after Read: %v", err)
		}
		s2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read: %v", err)
		}
		if len(s2) != len(s) {
			t.Fatalf("round trip length %d -> %d", len(s), len(s2))
		}
		for i := range s {
			if s[i] != s2[i] {
				t.Fatalf("update %d changed: %v -> %v", i, s[i], s2[i])
			}
		}
	})
}
