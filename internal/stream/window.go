package stream

import "paracosm/internal/graph"

// CoalesceStats reports what a Coalescer.Coalesce call did to one window.
type CoalesceStats struct {
	// In and Out are the update counts before and after coalescing.
	In, Out int
	// AnnihilatedPairs counts exact insert/delete (or delete/insert)
	// pairs removed: every dropped update belongs to one such pair, so
	// 2*AnnihilatedPairs == In-Out.
	AnnihilatedPairs int
	// Barriers counts vertex ops, which split the window into segments
	// (edge ops never coalesce across a vertex op).
	Barriers int
}

// Removed returns the number of updates eliminated by coalescing.
func (s CoalesceStats) Removed() int { return s.In - s.Out }

// edgeEntry accumulates the per-edge op history of one window segment.
type edgeEntry struct {
	first       int32 // window index of the edge's first touch
	count       int32 // touches in this segment
	lastOp      Op    // previous op seen, for the alternation check
	last        Update
	alternating bool
}

// Coalescer folds a window of updates into its net effect: repeated
// touches of the same edge collapse to at most two updates, and exact
// insert/delete pairs annihilate entirely. It holds reusable scratch so
// steady-state windows do not allocate; one Coalescer serves one
// goroutine at a time.
//
// Semantics (see DESIGN.md §15): vertex ops are barriers — AddVertex
// assigns ids at apply time and DeleteVertex requires isolation, so
// edge histories reset at every vertex op. Within a segment the ops on
// one edge must strictly alternate in any stream that applies cleanly;
// a non-alternating history (malformed stream) is passed through
// verbatim so the error surfaces at the same update it always did. For
// an alternating history of n touches the net effect is:
//
//	first +e, n even: nothing (the edge ends absent, as it began)
//	first +e, n odd:  the last +e alone (edge ends present, last label)
//	first -e, n odd:  the first -e alone (edge ends absent)
//	first -e, n even: -e then the last +e (a relabel/retouch: the edge
//	                  ends present, possibly with a new label, and the
//	                  original label is unknown without the graph)
//
// Kept updates are emitted at the position of the edge's first touch,
// so the output order is the window order of first touches. Distinct
// edges commute within a segment (the alive-vertex set is constant
// between barriers), so any window that applies cleanly still applies
// cleanly after coalescing and yields the same final graph.
type Coalescer struct {
	idx     map[uint64]int32 // edge key -> entries index, reset per segment
	entries []edgeEntry
	src     []int32 // per output: the window index it was emitted at
}

// NewCoalescer returns a Coalescer with empty scratch.
func NewCoalescer() *Coalescer {
	return &Coalescer{idx: make(map[uint64]int32)}
}

// edgeKey normalizes an undirected edge to a map key.
func edgeKey(u, v graph.VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// Coalesce appends the coalesced form of w to dst and returns it along
// with the window's stats. dst must not alias w; pass a reusable buffer
// (dst[:0]) to avoid allocation.
func (c *Coalescer) Coalesce(dst Stream, w Stream) (Stream, CoalesceStats) {
	st := CoalesceStats{In: len(w)}
	base := len(dst)
	c.src = c.src[:0]
	segStart := 0
	for i := 0; i <= len(w); i++ {
		if i < len(w) && w[i].IsEdge() {
			continue
		}
		// w[segStart:i] is a maximal run of edge ops; w[i] (if any) is
		// a vertex-op barrier that follows it verbatim.
		dst = c.coalesceSegment(dst, w, segStart, i, &st)
		if i < len(w) {
			dst = append(dst, w[i])
			c.src = append(c.src, int32(i))
			st.Barriers++
		}
		segStart = i + 1
	}
	st.Out = len(dst) - base
	return dst, st
}

// Src maps each output of the last Coalesce call to the window index it
// was emitted at: Src()[k] is the (first-touch) position of output k in
// the input window, nondecreasing in k. A retouch emits two outputs with
// the same source position. Window indices absent from Src were dropped
// by coalescing. Valid until the next Coalesce call.
func (c *Coalescer) Src() []int32 { return c.src }

// coalesceSegment folds the edge-op run w[lo:hi] and appends the kept
// updates to dst.
func (c *Coalescer) coalesceSegment(dst Stream, w Stream, lo, hi int, st *CoalesceStats) Stream {
	if hi-lo <= 1 {
		for i := lo; i < hi; i++ {
			c.src = append(c.src, int32(i))
		}
		return append(dst, w[lo:hi]...)
	}
	clear(c.idx)
	c.entries = c.entries[:0]

	for i := lo; i < hi; i++ {
		k := edgeKey(w[i].U, w[i].V)
		ei, ok := c.idx[k]
		if !ok {
			c.idx[k] = int32(len(c.entries))
			c.entries = append(c.entries, edgeEntry{
				first: int32(i), count: 1,
				lastOp: w[i].Op, last: w[i], alternating: true,
			})
			continue
		}
		e := &c.entries[ei]
		if w[i].Op == e.lastOp {
			e.alternating = false // malformed: same op twice in a row
		}
		e.lastOp = w[i].Op
		e.last = w[i]
		e.count++
	}

	for i := lo; i < hi; i++ {
		e := &c.entries[c.idx[edgeKey(w[i].U, w[i].V)]]
		if !e.alternating || e.count == 1 {
			dst = append(dst, w[i]) // passthrough, in place
			c.src = append(c.src, int32(i))
			continue
		}
		if int(e.first) != i {
			continue // folded into the first touch
		}
		kept := 0
		switch {
		case w[i].Op == AddEdge && e.count%2 == 0:
			// +e ... -e: annihilates entirely.
		case w[i].Op == AddEdge:
			dst = append(dst, e.last) // last touch is the surviving +e
			c.src = append(c.src, int32(i))
			kept = 1
		case e.count%2 == 1:
			dst = append(dst, w[i]) // the first -e alone
			c.src = append(c.src, int32(i))
			kept = 1
		default:
			// -e ... +e: retouch. Keep the deletion and the last insert.
			dst = append(dst, w[i], e.last)
			c.src = append(c.src, int32(i), int32(i))
			kept = 2
		}
		st.AnnihilatedPairs += (int(e.count) - kept) / 2
	}
	return dst
}
