package stream

import (
	"testing"

	"paracosm/internal/graph"
)

func upd(op Op, u, v graph.VertexID, el graph.Label) Update {
	return Update{Op: op, U: u, V: v, ELabel: el}
}

func coalesce(t *testing.T, w Stream) (Stream, CoalesceStats) {
	t.Helper()
	c := NewCoalescer()
	out, st := c.Coalesce(nil, w)
	if st.In != len(w) || st.Out != len(out) {
		t.Fatalf("stats In/Out = %d/%d, want %d/%d", st.In, st.Out, len(w), len(out))
	}
	if 2*st.AnnihilatedPairs != st.Removed() {
		t.Fatalf("2*pairs = %d but removed = %d", 2*st.AnnihilatedPairs, st.Removed())
	}
	checkSrc(t, c, w, out)
	return out, st
}

// checkSrc asserts the Src disposition map is well formed: one entry per
// output, nondecreasing, in range, and pointing at a same-edge (or same
// vertex-op) input.
func checkSrc(t *testing.T, c *Coalescer, w, out Stream) {
	t.Helper()
	src := c.Src()
	if len(src) != len(out) {
		t.Fatalf("len(Src) = %d, want %d outputs", len(src), len(out))
	}
	prev := int32(-1)
	for k, s := range src {
		if s < prev || int(s) >= len(w) {
			t.Fatalf("Src[%d] = %d out of order or range (prev %d, |w| %d)", k, s, prev, len(w))
		}
		prev = s
		in, o := w[s], out[k]
		if in.IsEdge() != o.IsEdge() {
			t.Fatalf("Src[%d] = %d: kind mismatch (%v -> %v)", k, s, in, o)
		}
		if o.IsEdge() && edgeKey(in.U, in.V) != edgeKey(o.U, o.V) {
			t.Fatalf("Src[%d] = %d: edge mismatch (%v -> %v)", k, s, in, o)
		}
	}
}

func wantStream(t *testing.T, got, want Stream) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d updates %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("update %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCoalesceAnnihilation(t *testing.T) {
	out, st := coalesce(t, Stream{upd(AddEdge, 0, 1, 2), upd(DeleteEdge, 0, 1, 0)})
	wantStream(t, out, nil)
	if st.AnnihilatedPairs != 1 {
		t.Fatalf("pairs = %d, want 1", st.AnnihilatedPairs)
	}
}

func TestCoalesceKeepsLastInsert(t *testing.T) {
	out, _ := coalesce(t, Stream{
		upd(AddEdge, 0, 1, 2), upd(DeleteEdge, 0, 1, 0), upd(AddEdge, 1, 0, 7),
	})
	// The surviving insert is the last one, endpoints and label verbatim.
	wantStream(t, out, Stream{upd(AddEdge, 1, 0, 7)})
}

func TestCoalesceRetouch(t *testing.T) {
	// First touch is a delete and the edge ends present: keep the delete
	// and the final insert (the original label is unknowable here).
	out, st := coalesce(t, Stream{
		upd(DeleteEdge, 0, 1, 0), upd(AddEdge, 0, 1, 3),
		upd(DeleteEdge, 0, 1, 0), upd(AddEdge, 0, 1, 5),
	})
	wantStream(t, out, Stream{upd(DeleteEdge, 0, 1, 0), upd(AddEdge, 0, 1, 5)})
	if st.AnnihilatedPairs != 1 {
		t.Fatalf("pairs = %d, want 1", st.AnnihilatedPairs)
	}
}

func TestCoalesceFirstDeleteOdd(t *testing.T) {
	out, _ := coalesce(t, Stream{
		upd(DeleteEdge, 0, 1, 0), upd(AddEdge, 0, 1, 3), upd(DeleteEdge, 0, 1, 0),
	})
	wantStream(t, out, Stream{upd(DeleteEdge, 0, 1, 0)})
}

func TestCoalesceVertexBarrier(t *testing.T) {
	w := Stream{
		upd(AddEdge, 0, 1, 2),
		{Op: AddVertex, VLabel: 4},
		upd(DeleteEdge, 0, 1, 0),
	}
	out, st := coalesce(t, w)
	wantStream(t, out, w) // the barrier splits the pair: nothing coalesces
	if st.Barriers != 1 {
		t.Fatalf("barriers = %d, want 1", st.Barriers)
	}
}

func TestCoalesceMalformedPassthrough(t *testing.T) {
	// A non-alternating history cannot arise from a valid stream; it is
	// passed through verbatim so the apply error surfaces unchanged.
	w := Stream{upd(AddEdge, 0, 1, 2), upd(AddEdge, 0, 1, 2), upd(DeleteEdge, 0, 1, 0)}
	out, st := coalesce(t, w)
	wantStream(t, out, w)
	if st.AnnihilatedPairs != 0 {
		t.Fatalf("pairs = %d, want 0", st.AnnihilatedPairs)
	}
}

func TestCoalesceFirstTouchOrder(t *testing.T) {
	// Kept updates surface at the position of their edge's first touch.
	out, _ := coalesce(t, Stream{
		upd(AddEdge, 0, 1, 2),            // edge A, survives (odd)
		upd(AddEdge, 2, 3, 1),            // edge B, annihilates
		upd(AddEdge, 4, 5, 6),            // edge C, untouched
		upd(DeleteEdge, 2, 3, 0),         // edge B
		upd(DeleteEdge, 0, 1, 0),         // edge A
		upd(AddEdge, 0, 1, 9),            // edge A, last insert
		upd(DeleteEdge, 6, 7, 0),         // edge D, untouched
	})
	wantStream(t, out, Stream{
		upd(AddEdge, 0, 1, 9), upd(AddEdge, 4, 5, 6), upd(DeleteEdge, 6, 7, 0),
	})
}

func TestCoalescerReuse(t *testing.T) {
	c := NewCoalescer()
	var buf Stream
	for round := 0; round < 3; round++ {
		var st CoalesceStats
		buf, st = c.Coalesce(buf[:0], Stream{
			upd(AddEdge, 0, 1, 2), upd(DeleteEdge, 0, 1, 0), upd(AddEdge, 2, 3, 1),
		})
		wantStream(t, buf, Stream{upd(AddEdge, 2, 3, 1)})
		if st.AnnihilatedPairs != 1 {
			t.Fatalf("round %d: pairs = %d, want 1", round, st.AnnihilatedPairs)
		}
	}
}

// graphsEqual compares vertex labels, liveness and full adjacency. The
// adjacency layout is deterministic (sorted by neighbor label then id),
// so equal graphs have identical Neighbors slices.
func graphsEqual(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		id := graph.VertexID(v)
		if a.Alive(id) != b.Alive(id) || a.Label(id) != b.Label(id) {
			return false
		}
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// buildValidWindow decodes fuzz bytes into a window that applies cleanly
// to the returned base graph: each candidate op is validated against (and
// applied to) a model clone as it is generated, so the window is valid by
// construction. The tiny vertex space makes repeated touches and exact
// insert/delete pairs common.
func buildValidWindow(data []byte) (*graph.Graph, Stream) {
	base := graph.New(0)
	for i := 0; i < 6; i++ {
		base.AddVertex(graph.Label(i % 3))
	}
	base.AddEdge(0, 1, 1)
	base.AddEdge(1, 2, 2)
	base.AddEdge(3, 4, 1)

	model := base.Clone()
	var w Stream
	for i := 0; i+2 < len(data); i += 3 {
		c, a, b := data[i], data[i+1], data[i+2]
		n := graph.VertexID(model.NumVertices())
		u, v := graph.VertexID(a)%n, graph.VertexID(b)%n
		var cand Update
		switch c % 8 {
		case 0, 1, 2: // insert
			cand = Update{Op: AddEdge, U: u, V: v, ELabel: graph.Label(c % 4)}
		case 3, 4, 5: // delete
			cand = Update{Op: DeleteEdge, U: u, V: v}
		case 6:
			cand = Update{Op: AddVertex, VLabel: graph.Label(a % 3)}
		default:
			cand = Update{Op: DeleteVertex, U: u}
			if model.Alive(u) && model.Degree(u) != 0 {
				continue // Apply would panic; only isolated deletes are valid
			}
		}
		if err := cand.Apply(model); err != nil {
			continue // invalid against the current state; skip
		}
		w = append(w, cand)
	}
	return base, w
}

// FuzzCoalesce checks delta-semantics preservation: for any window that
// applies cleanly, the coalesced window applies cleanly too and produces
// the same final graph, and the stats reconcile.
func FuzzCoalesce(f *testing.F) {
	f.Add([]byte{0, 0, 1, 3, 0, 1})                   // insert then delete
	f.Add([]byte{3, 0, 1, 0, 0, 1, 3, 0, 1, 0, 0, 1}) // retouch chain
	f.Add([]byte{0, 2, 3, 6, 9, 9, 3, 2, 3})          // vertex barrier mid-window
	f.Add([]byte{7, 5, 0, 0, 0, 5, 3, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		base, w := buildValidWindow(data)
		c := NewCoalescer()
		out, st := c.Coalesce(nil, w)

		if st.In != len(w) || st.Out != len(out) || st.AnnihilatedPairs*2 != st.Removed() {
			t.Fatalf("stats do not reconcile: %+v (|w|=%d |out|=%d)", st, len(w), len(out))
		}
		checkSrc(t, c, w, out)

		g1 := base.Clone()
		if err := w.ApplyAll(g1); err != nil {
			t.Fatalf("window invalid by construction: %v", err)
		}
		g2 := base.Clone()
		if err := out.ApplyAll(g2); err != nil {
			t.Fatalf("coalesced window does not apply: %v\nwindow: %v\ncoalesced: %v", err, w, out)
		}
		if !graphsEqual(g1, g2) {
			t.Fatalf("final graphs differ\nwindow: %v\ncoalesced: %v", w, out)
		}
	})
}
