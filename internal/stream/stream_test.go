package stream

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paracosm/internal/graph"
)

func smallGraph() *graph.Graph {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(graph.Label(i))
	}
	g.AddEdge(0, 1, 0)
	return g
}

func TestApplyAddEdge(t *testing.T) {
	g := smallGraph()
	u := Update{Op: AddEdge, U: 1, V: 2, ELabel: 5}
	if err := u.Apply(g); err != nil {
		t.Fatal(err)
	}
	if l, ok := g.EdgeLabel(1, 2); !ok || l != 5 {
		t.Fatalf("edge not applied: %d %v", l, ok)
	}
	if err := u.Apply(g); err == nil {
		t.Fatal("duplicate insert not rejected")
	}
}

func TestApplyDeleteEdge(t *testing.T) {
	g := smallGraph()
	if err := (Update{Op: DeleteEdge, U: 0, V: 1}).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge survives delete")
	}
	if err := (Update{Op: DeleteEdge, U: 0, V: 1}).Apply(g); err == nil {
		t.Fatal("double delete not rejected")
	}
}

func TestApplyVertexOps(t *testing.T) {
	g := smallGraph()
	n := g.NumVertices()
	if err := (Update{Op: AddVertex, VLabel: 9}).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n+1 || g.Label(graph.VertexID(n)) != 9 {
		t.Fatal("vertex not added")
	}
	if err := (Update{Op: DeleteVertex, U: graph.VertexID(n)}).Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.Alive(graph.VertexID(n)) {
		t.Fatal("vertex alive after delete")
	}
	if err := (Update{Op: DeleteVertex, U: graph.VertexID(n)}).Apply(g); err == nil {
		t.Fatal("double vertex delete not rejected")
	}
}

func TestInvert(t *testing.T) {
	add := Update{Op: AddEdge, U: 3, V: 7, ELabel: 2}
	del, err := add.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if del.Op != DeleteEdge || del.U != 3 || del.V != 7 {
		t.Fatalf("Invert(+e) = %v", del)
	}
	back, err := del.Invert()
	if err != nil || back.Op != AddEdge {
		t.Fatalf("Invert(-e) = %v, %v", back, err)
	}
	if _, err := (Update{Op: AddVertex}).Invert(); err == nil {
		t.Fatal("vertex op invert should error")
	}
}

func TestApplyAllStopsOnError(t *testing.T) {
	g := smallGraph()
	s := Stream{
		{Op: AddEdge, U: 1, V: 2, ELabel: 0},
		{Op: AddEdge, U: 1, V: 2, ELabel: 0}, // duplicate
		{Op: AddEdge, U: 2, V: 3, ELabel: 0},
	}
	if err := s.ApplyAll(g); err == nil {
		t.Fatal("ApplyAll ignored error")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("ApplyAll continued past error")
	}
}

func TestCountOps(t *testing.T) {
	s := Stream{
		{Op: AddEdge}, {Op: AddEdge}, {Op: DeleteEdge}, {Op: AddVertex},
	}
	m := s.CountOps()
	if m[AddEdge] != 2 || m[DeleteEdge] != 1 || m[AddVertex] != 1 || m[DeleteVertex] != 0 {
		t.Fatalf("CountOps = %v", m)
	}
}

func TestRoundTripCodec(t *testing.T) {
	s := Stream{
		{Op: AddEdge, U: 0, V: 1, ELabel: 3},
		{Op: DeleteEdge, U: 0, V: 1},
		{Op: AddVertex, VLabel: 2},
		{Op: DeleteVertex, U: 4},
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("update %d: got %v want %v", i, got[i], s[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, in := range []string{"+e 0 1", "-e 0", "+v", "xx 1 2", "+e a b c"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded", in)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	s, err := Read(strings.NewReader("# c\n\n% d\n+e 1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Fatalf("len = %d, want 1", len(s))
	}
}

// Property: codec round-trips arbitrary edge streams.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Stream
		for i := 0; i < 30; i++ {
			if rng.Intn(2) == 0 {
				s = append(s, Update{Op: AddEdge, U: graph.VertexID(rng.Intn(100)), V: graph.VertexID(rng.Intn(100)), ELabel: graph.Label(rng.Intn(10))})
			} else {
				s = append(s, Update{Op: DeleteEdge, U: graph.VertexID(rng.Intn(100)), V: graph.VertexID(rng.Intn(100))})
			}
		}
		var buf bytes.Buffer
		if s.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
