package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"paracosm/internal/graph"
)

// Write serializes the stream, one update per line:
//
//	+e <u> <v> <elabel>
//	-e <u> <v>
//	+v <vlabel>
//	-v <u>
//
// matching the insertion-stream format of the CSM benchmark suite.
func (s Stream) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, u := range s {
		if _, err := fmt.Fprintln(bw, u.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseUpdate parses one update line (no surrounding whitespace, no
// comment handling — callers that read framed single-update records,
// like the wire decoder and the WAL replayer, hand over exact lines).
func ParseUpdate(line string) (Update, error) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return Update{}, fmt.Errorf("stream: empty update")
	}
	parse := func(i int) (uint64, error) {
		if i >= len(f) {
			return 0, fmt.Errorf("missing field %d in %q", i, line)
		}
		return strconv.ParseUint(f[i], 10, 32)
	}
	var u Update
	var err error
	var a, b, c uint64
	switch f[0] {
	case "+e":
		if a, err = parse(1); err == nil {
			if b, err = parse(2); err == nil {
				c, err = parse(3)
			}
		}
		u = Update{Op: AddEdge, U: graph.VertexID(a), V: graph.VertexID(b), ELabel: graph.Label(c)}
	case "-e":
		if a, err = parse(1); err == nil {
			b, err = parse(2)
		}
		u = Update{Op: DeleteEdge, U: graph.VertexID(a), V: graph.VertexID(b)}
	case "+v":
		a, err = parse(1)
		u = Update{Op: AddVertex, VLabel: graph.Label(a)}
	case "-v":
		a, err = parse(1)
		u = Update{Op: DeleteVertex, U: graph.VertexID(a)}
	default:
		return Update{}, fmt.Errorf("stream: unknown op %q", f[0])
	}
	if err != nil {
		return Update{}, fmt.Errorf("stream: %v", err)
	}
	return u, nil
}

// Read parses a stream in the line format produced by Write. Lines starting
// with '#' or '%' are comments.
func Read(r io.Reader) (Stream, error) {
	var s Stream
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		u, err := ParseUpdate(line)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %v", lineNo, strings.TrimPrefix(err.Error(), "stream: "))
		}
		s = append(s, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
