package dataset

import (
	"math/rand"
	"testing"
)

func TestLabelSamplerUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := newLabelSampler(rng, 4, 0) // skew 0 = uniform
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.sample()]++
	}
	for l, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("uniform label %d count %d, want ~10000", l, c)
		}
	}
}

func TestLabelSamplerZipfOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newLabelSampler(rng, 8, 1.0)
	counts := make([]int, 8)
	for i := 0; i < 80000; i++ {
		counts[s.sample()]++
	}
	// Zipf: counts must be (statistically) decreasing in label rank, and
	// label 0 must dominate label 7 by roughly its 8x theoretical ratio.
	for l := 1; l < 8; l++ {
		if counts[l] > counts[l-1]+800 {
			t.Fatalf("Zipf counts not decreasing: %v", counts)
		}
	}
	if counts[0] < 4*counts[7] {
		t.Fatalf("skew too weak: %v", counts)
	}
}

func TestLabelSamplerSingleLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newLabelSampler(rng, 1, 0.9)
	for i := 0; i < 100; i++ {
		if s.sample() != 0 {
			t.Fatal("single-label sampler returned nonzero")
		}
	}
}

func TestLabelSamplerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, skew := range []float64{0, 0.5, 1.5} {
		s := newLabelSampler(rng, 5, skew)
		for i := 0; i < 5000; i++ {
			if l := s.sample(); int(l) >= 5 {
				t.Fatalf("skew %v: label %d out of range", skew, l)
			}
		}
	}
}
