package dataset

import (
	"math"
	"testing"

	"paracosm/internal/graph"
	"paracosm/internal/stream"
)

func TestSpecsMatchPaperTable5(t *testing.T) {
	cases := []struct {
		spec Spec
		v, e int
		vl   int
		el   int
		davg float64
	}{
		{AmazonSpec, 403_394, 2_433_408, 6, 1, 12.06},
		{LiveJournalSpec, 4_847_571, 42_841_237, 30, 1, 17.68},
		{LSBenchSpec, 5_210_099, 20_270_676, 1, 44, 7.78},
		{OrkutSpec, 3_072_441, 117_185_083, 20, 20, 76.28}, // paper rounds d(G) to 20; 2E/V is 76.28
	}
	for _, c := range cases {
		if c.spec.V != c.v || c.spec.E != c.e || c.spec.VLabels != c.vl || c.spec.ELabels != c.el {
			t.Errorf("%s spec mismatch: %+v", c.spec.Name, c.spec)
		}
		d := 2 * float64(c.spec.E) / float64(c.spec.V)
		if math.Abs(d-c.davg) > 0.01 {
			t.Errorf("%s: 2E/V = %.2f, want %.2f", c.spec.Name, d, c.davg)
		}
	}
}

func TestCustomRespectsScaleAndHoldout(t *testing.T) {
	d := Custom(Spec{Name: "t", V: 100_000, E: 500_000, VLabels: 5, ELabels: 2},
		Scale(0.01), Seed(7), HoldoutFraction(0.1))
	nV := d.Graph.NumVertices()
	if nV != 1000 {
		t.Fatalf("vertices = %d, want 1000", nV)
	}
	total := d.Graph.NumEdges() + len(d.Stream)
	if total < 4900 || total > 5000 {
		t.Fatalf("total edges = %d, want ~5000", total)
	}
	if len(d.Stream) != total/10 {
		t.Fatalf("stream length %d, want %d", len(d.Stream), total/10)
	}
}

func TestStreamAppliesCleanly(t *testing.T) {
	d := AmazonLike(Scale(0.003), Seed(3))
	g := d.Graph.Clone()
	if err := d.Stream.ApplyAll(g); err != nil {
		t.Fatalf("insertion stream does not apply: %v", err)
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := LiveJournalLike(Scale(0.001), Seed(42))
	b := LiveJournalLike(Scale(0.001), Seed(42))
	if a.Graph.NumEdges() != b.Graph.NumEdges() || len(a.Stream) != len(b.Stream) {
		t.Fatal("same seed produced different datasets")
	}
	for i := range a.Stream {
		if a.Stream[i] != b.Stream[i] {
			t.Fatalf("stream diverges at %d", i)
		}
	}
	c := LiveJournalLike(Scale(0.001), Seed(43))
	same := c.Graph.NumEdges() == a.Graph.NumEdges() && len(c.Stream) == len(a.Stream)
	if same {
		diff := false
		for i := range a.Stream {
			if a.Stream[i] != c.Stream[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestLabelAlphabets(t *testing.T) {
	d := OrkutLike(Scale(0.0005), Seed(5))
	seenV := map[graph.Label]bool{}
	for v := 0; v < d.Graph.NumVertices(); v++ {
		l := d.Graph.Label(graph.VertexID(v))
		if int(l) >= OrkutSpec.VLabels {
			t.Fatalf("vertex label %d out of alphabet", l)
		}
		seenV[l] = true
	}
	if len(seenV) < OrkutSpec.VLabels/2 {
		t.Fatalf("only %d vertex labels in use", len(seenV))
	}
	for v := 0; v < d.Graph.NumVertices(); v++ {
		for _, nb := range d.Graph.Neighbors(graph.VertexID(v)) {
			if int(nb.ELabel) >= OrkutSpec.ELabels {
				t.Fatalf("edge label %d out of alphabet", nb.ELabel)
			}
		}
	}
}

func TestDegreeSkew(t *testing.T) {
	d := LiveJournalLike(Scale(0.002), Seed(9))
	avg := d.Graph.AvgDegree()
	max := d.Graph.MaxDegree()
	if max < int(5*avg) {
		t.Fatalf("max degree %d not heavy-tailed vs avg %.1f", max, avg)
	}
}

func TestRandomQuery(t *testing.T) {
	d := AmazonLike(Scale(0.003), Seed(11))
	for size := 4; size <= 10; size++ {
		q, err := d.RandomQuery(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if q.NumVertices() != size {
			t.Fatalf("size %d: got %d vertices", size, q.NumVertices())
		}
		if q.NumEdges() < size-1 {
			t.Fatalf("size %d: only %d edges", size, q.NumEdges())
		}
	}
	if _, err := d.RandomQuery(1); err == nil {
		t.Fatal("size 1 accepted")
	}
	if _, err := d.RandomQuery(99); err == nil {
		t.Fatal("oversize accepted")
	}
}

// Queries are extracted from the data graph, so each must have at least one
// match in it — the induced embedding itself.
func TestRandomQueryLabelsComeFromGraph(t *testing.T) {
	d := LSBenchLike(Scale(0.001), Seed(13))
	q, err := d.RandomQuery(6)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < q.NumVertices(); u++ {
		if len(d.Graph.VerticesWithLabel(q.Label(uint8(u)))) == 0 {
			t.Fatalf("query label %d absent from data graph", q.Label(uint8(u)))
		}
	}
}

func TestMixedStream(t *testing.T) {
	d := AmazonLike(Scale(0.002), Seed(17))
	ms := d.MixedStream(0.5)
	ops := ms.CountOps()
	if ops[stream.AddEdge] != len(d.Stream) {
		t.Fatalf("insertions = %d, want %d", ops[stream.AddEdge], len(d.Stream))
	}
	wantDel := len(d.Stream) / 2
	if ops[stream.DeleteEdge] != wantDel {
		t.Fatalf("deletions = %d, want %d", ops[stream.DeleteEdge], wantDel)
	}
	g := d.Graph.Clone()
	if err := ms.ApplyAll(g); err != nil {
		t.Fatalf("mixed stream does not apply: %v", err)
	}
}

func TestAllReturnsFourDatasets(t *testing.T) {
	ds := All(Scale(0.0005), Seed(1))
	if len(ds) != 4 {
		t.Fatalf("All returned %d datasets", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
	}
	for _, want := range []string{"Amazon", "LiveJournal", "LSBench", "Orkut"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
}

func TestDeletionHeavyStream(t *testing.T) {
	d := AmazonLike(Scale(0.003), Seed(9))
	s := d.DeletionHeavyStream(0.4)
	if len(s) <= len(d.Stream) {
		t.Fatalf("churn stream length %d, want > holdout %d", len(s), len(d.Stream))
	}
	dels := 0
	for _, u := range s {
		if u.Op == stream.DeleteEdge {
			dels++
		}
	}
	ratio := float64(dels) / float64(len(s))
	if ratio < 0.25 || ratio > 0.55 {
		t.Fatalf("delete ratio %.2f, want around 0.4", ratio)
	}
	g := d.Graph.Clone()
	if err := s.ApplyAll(g); err != nil {
		t.Fatalf("deletion-heavy stream does not apply cleanly: %v", err)
	}
	// Deterministic: an identically-seeded dataset produces the same stream.
	s2 := AmazonLike(Scale(0.003), Seed(9)).DeletionHeavyStream(0.4)
	if len(s) != len(s2) {
		t.Fatalf("nondeterministic length: %d vs %d", len(s), len(s2))
	}
	for i := range s {
		if s[i] != s2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, s[i], s2[i])
		}
	}
}

func TestBurstyStream(t *testing.T) {
	d := AmazonLike(Scale(0.003), Seed(9))
	const burst = 5
	s := d.BurstyStream(burst)
	if len(s) != burst*len(d.Stream) {
		t.Fatalf("bursty stream length %d, want %d", len(s), burst*len(d.Stream))
	}
	// Each burst alternates +e/-e on one edge, starting with the insert.
	for i := 0; i < burst; i++ {
		want := stream.AddEdge
		if i%2 == 1 {
			want = stream.DeleteEdge
		}
		if s[i].Op != want {
			t.Fatalf("burst position %d has op %v, want %v", i, s[i].Op, want)
		}
		if s[i].U != s[0].U || s[i].V != s[0].V {
			t.Fatalf("burst position %d touches (%d,%d), want (%d,%d)", i, s[i].U, s[i].V, s[0].U, s[0].V)
		}
	}
	g := d.Graph.Clone()
	if err := s.ApplyAll(g); err != nil {
		t.Fatalf("bursty stream does not apply cleanly: %v", err)
	}
	if d.BurstyStream(0); len(d.BurstyStream(1)) != len(d.Stream) {
		t.Fatal("burstLen 1 must reproduce the holdout stream length")
	}
}
