// Package dataset synthesizes stand-ins for the four datasets of the
// ParaCOSM evaluation (Table 5): Amazon, LiveJournal, LSBench and Orkut.
//
// The real datasets are multi-gigabyte SNAP downloads; what drives CSM
// behaviour is their metadata — vertex/edge label alphabet sizes, average
// degree, and a heavy-tailed degree distribution — all of which the
// synthesizer preserves while scaling the vertex count down to
// laptop-friendly sizes. Following the CSM benchmark methodology of
// Sun et al. (VLDB'22) that the paper adopts, a fraction (default 10%) of
// edges is held out of the base graph and replayed as the insertion
// stream.
//
// Generation is fully deterministic given a seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Spec describes a dataset's metadata as reported in Table 5 of the paper.
type Spec struct {
	Name    string
	V       int // vertex count of the full dataset
	E       int // edge count of the full dataset
	VLabels int // |L(V)|
	ELabels int // |L(E)|
	// LabelSkew is the Zipf exponent of the vertex/edge label
	// distributions (0 = uniform). Real-world label frequencies are
	// heavily skewed — product categories, community interests and
	// relation types all follow power laws — and that skew is what makes
	// candidate sets large and CSM search hard; a uniform assignment
	// over the same alphabet would make every query unrealistically
	// selective.
	LabelSkew float64
}

// The four evaluation datasets (paper Table 5).
var (
	AmazonSpec      = Spec{Name: "Amazon", V: 403_394, E: 2_433_408, VLabels: 6, ELabels: 1, LabelSkew: 0.9}
	LiveJournalSpec = Spec{Name: "LiveJournal", V: 4_847_571, E: 42_841_237, VLabels: 30, ELabels: 1, LabelSkew: 0.9}
	LSBenchSpec     = Spec{Name: "LSBench", V: 5_210_099, E: 20_270_676, VLabels: 1, ELabels: 44, LabelSkew: 0.9}
	OrkutSpec       = Spec{Name: "Orkut", V: 3_072_441, E: 117_185_083, VLabels: 20, ELabels: 20, LabelSkew: 0.9}
)

// labelSampler draws labels from a truncated Zipf (or uniform) law.
type labelSampler struct {
	rng *rand.Rand
	cum []float64 // cumulative probabilities
	n   int
}

func newLabelSampler(rng *rand.Rand, n int, skew float64) *labelSampler {
	s := &labelSampler{rng: rng, n: n}
	if n <= 1 || skew <= 0 {
		return s
	}
	weights := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		weights[k] = 1 / powf(float64(k+1), skew)
		total += weights[k]
	}
	s.cum = make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += weights[k] / total
		s.cum[k] = acc
	}
	return s
}

func (s *labelSampler) sample() graph.Label {
	if s.cum == nil {
		return graph.Label(s.rng.Intn(s.n))
	}
	x := s.rng.Float64()
	lo, hi := 0, s.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return graph.Label(lo)
}

func powf(base, exp float64) float64 { return math.Pow(base, exp) }

type config struct {
	scale   float64
	seed    int64
	holdout float64
}

// Option configures dataset synthesis.
type Option func(*config)

// Scale multiplies the spec's vertex and edge counts (default 0.002, which
// turns LiveJournal into ~10k vertices / ~86k edges).
func Scale(f float64) Option { return func(c *config) { c.scale = f } }

// Seed fixes the generator seed (default 1).
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// HoldoutFraction sets the fraction of edges diverted to the insertion
// stream (default 0.1, as in the paper's methodology).
func HoldoutFraction(f float64) Option { return func(c *config) { c.holdout = f } }

// Dataset is a synthesized data graph plus its insertion stream.
type Dataset struct {
	Name   string
	Spec   Spec
	Graph  *graph.Graph  // base graph with holdout edges removed
	Stream stream.Stream // insertion stream (the held-out edges)

	rng *rand.Rand
}

// Amazon-like &co: named constructors for the four evaluation datasets.

// AmazonLike synthesizes the Amazon co-purchase stand-in.
func AmazonLike(opts ...Option) *Dataset { return Custom(AmazonSpec, opts...) }

// LiveJournalLike synthesizes the LiveJournal community-network stand-in.
func LiveJournalLike(opts ...Option) *Dataset { return Custom(LiveJournalSpec, opts...) }

// LSBenchLike synthesizes the LSBench streaming-social stand-in.
func LSBenchLike(opts ...Option) *Dataset { return Custom(LSBenchSpec, opts...) }

// OrkutLike synthesizes the Orkut social-network stand-in.
func OrkutLike(opts ...Option) *Dataset { return Custom(OrkutSpec, opts...) }

// All returns the four evaluation datasets in paper order.
func All(opts ...Option) []*Dataset {
	return []*Dataset{AmazonLike(opts...), LiveJournalLike(opts...), LSBenchLike(opts...), OrkutLike(opts...)}
}

// Custom synthesizes a dataset for an arbitrary spec.
func Custom(spec Spec, opts ...Option) *Dataset {
	c := config{scale: 0.002, seed: 1, holdout: 0.1}
	for _, o := range opts {
		o(&c)
	}
	n := int(float64(spec.V) * c.scale)
	if n < 64 {
		n = 64
	}
	m := int(float64(spec.E) * c.scale)
	if m < 2*n {
		m = 2 * n
	}
	rng := rand.New(rand.NewSource(c.seed))
	full, edges := generate(rng, n, m, spec.VLabels, spec.ELabels, spec.LabelSkew)

	// Hold out a random fraction as the insertion stream, preserving the
	// original (random) edge order.
	nHold := int(float64(len(edges)) * c.holdout)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	held := edges[:nHold]

	base := full
	var s stream.Stream
	for _, e := range held {
		base.RemoveEdge(e.u, e.v)
		s = append(s, stream.Update{Op: stream.AddEdge, U: e.u, V: e.v, ELabel: e.l})
	}
	return &Dataset{Name: spec.Name, Spec: spec, Graph: base, Stream: s, rng: rng}
}

type edge struct {
	u, v graph.VertexID
	l    graph.Label
}

// generate builds a preferential-attachment graph with n vertices, m edges
// and (optionally Zipf-skewed) vertex and edge labels.
func generate(rng *rand.Rand, n, m, vl, el int, skew float64) (*graph.Graph, []edge) {
	vs := newLabelSampler(rng, vl, skew)
	es := newLabelSampler(rng, el, skew)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(vs.sample())
	}
	var edges []edge
	// ends holds every edge endpoint once; sampling uniformly from it is
	// degree-proportional (Barabási–Albert style), producing the heavy
	// tail the real social graphs have.
	ends := make([]graph.VertexID, 0, 2*m)
	addEdge := func(u, v graph.VertexID) bool {
		if u == v || g.HasEdge(u, v) {
			return false
		}
		l := es.sample()
		g.AddEdge(u, v, l)
		edges = append(edges, edge{u, v, l})
		ends = append(ends, u, v)
		return true
	}
	// Seed ring so early vertices have degree.
	for i := 0; i < 8 && i < n; i++ {
		addEdge(graph.VertexID(i), graph.VertexID((i+1)%min(8, n)))
	}
	perVertex := m / n
	if perVertex < 1 {
		perVertex = 1
	}
	for v := 8; v < n && len(edges) < m; v++ {
		for k := 0; k < perVertex && len(edges) < m; k++ {
			var t graph.VertexID
			ok := false
			for try := 0; try < 8; try++ {
				t = ends[rng.Intn(len(ends))]
				if addEdge(graph.VertexID(v), t) {
					ok = true
					break
				}
			}
			if !ok {
				// Fall back to a uniform target to guarantee progress.
				addEdge(graph.VertexID(v), graph.VertexID(rng.Intn(n)))
			}
		}
	}
	// Top up to exactly m edges with preferential pairs.
	for guard := 0; len(edges) < m && guard < 50*m; guard++ {
		u := ends[rng.Intn(len(ends))]
		v := ends[rng.Intn(len(ends))]
		addEdge(u, v)
	}
	return g, edges
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RandomQuery extracts a connected query graph with `size` vertices by
// random walk from a random seed vertex, taking the induced subgraph of the
// visited vertex set — the query-generation methodology of the paper (§5.1).
func (d *Dataset) RandomQuery(size int) (*query.Graph, error) {
	if size < 2 || size > query.MaxVertices {
		return nil, fmt.Errorf("dataset: query size %d out of range [2,%d]", size, query.MaxVertices)
	}
	g := d.Graph
	n := g.NumVertices()
	for attempt := 0; attempt < 200; attempt++ {
		seed := graph.VertexID(d.rng.Intn(n))
		if g.Degree(seed) == 0 {
			continue
		}
		visited := make(map[graph.VertexID]int) // data vertex -> query id
		orderv := make([]graph.VertexID, 0, size)
		visit := func(v graph.VertexID) {
			if _, ok := visited[v]; !ok {
				visited[v] = len(orderv)
				orderv = append(orderv, v)
			}
		}
		visit(seed)
		cur := seed
		ids := make([]graph.VertexID, 0, 64)
		for steps := 0; len(orderv) < size && steps < size*60; steps++ {
			ns := g.Neighbors(cur)
			if len(ns) == 0 {
				break
			}
			// Pick the step uniformly among neighbors ranked by ascending
			// ID, not by position in the adjacency slice: generation must be
			// independent of the adjacency representation order, or seeded
			// workloads silently change whenever the layout does.
			ids = ids[:0]
			for _, nb := range ns {
				ids = append(ids, nb.ID)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			nxt := ids[d.rng.Intn(len(ids))]
			visit(nxt)
			cur = nxt
		}
		if len(orderv) < size {
			continue
		}
		labels := make([]graph.Label, size)
		for v, qid := range visited {
			labels[qid] = g.Label(v)
		}
		q, err := query.New(labels)
		if err != nil {
			return nil, err
		}
		for i, dv := range orderv {
			for _, nb := range g.Neighbors(dv) {
				if j, ok := visited[nb.ID]; ok && j > i {
					q.MustAddEdge(query.VertexID(i), query.VertexID(j), nb.ELabel)
				}
			}
		}
		if err := q.Finalize(); err != nil {
			continue // extremely unlikely; retry with a new seed
		}
		return q, nil
	}
	return nil, fmt.Errorf("dataset %s: failed to extract a %d-vertex query", d.Name, size)
}

// RandomQueries extracts count queries of the given size.
func (d *Dataset) RandomQueries(size, count int) ([]*query.Graph, error) {
	qs := make([]*query.Graph, 0, count)
	for i := 0; i < count; i++ {
		q, err := d.RandomQuery(size)
		if err != nil {
			return nil, err
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// MixedStream returns a stream derived from d.Stream where, after every
// insertion has been emitted, a fraction delFrac of the inserted edges are
// deleted again (in random order). It models the expired-edge workloads of
// sliding-window CSM.
func (d *Dataset) MixedStream(delFrac float64) stream.Stream {
	out := append(stream.Stream(nil), d.Stream...)
	nDel := int(float64(len(d.Stream)) * delFrac)
	idx := d.rng.Perm(len(d.Stream))
	for i := 0; i < nDel && i < len(idx); i++ {
		ins := d.Stream[idx[i]]
		del, err := ins.Invert()
		if err == nil {
			out = append(out, del)
		}
	}
	return out
}

// DeletionHeavyStream returns a churn stream over the holdout edges where
// delRatio of the updates are deletions, interleaved with the inserts
// rather than appended after them (contrast MixedStream): edges are
// inserted, randomly deleted while other inserts are still in flight, and
// about half of the deleted edges are re-inserted later. The interleaving
// creates the insert/delete proximity the batch-dynamic window coalescer
// annihilates and the delete-then-reinsert retouches it folds. delRatio
// is clamped to [0, 0.9]; the stream applies cleanly against d.Graph and
// is deterministic for a dataset built with a fixed Seed.
func (d *Dataset) DeletionHeavyStream(delRatio float64) stream.Stream {
	if delRatio < 0 {
		delRatio = 0
	}
	if delRatio > 0.9 {
		delRatio = 0.9
	}
	pending := append(stream.Stream(nil), d.Stream...)
	var alive stream.Stream
	var out stream.Stream
	budget := 3 * len(d.Stream)
	for len(out) < budget && (len(pending) > 0 || len(alive) > 0) {
		doDel := len(alive) > 0 && (len(pending) == 0 || d.rng.Float64() < delRatio)
		if !doDel {
			ins := pending[0]
			pending = pending[1:]
			out = append(out, ins)
			alive = append(alive, ins)
			continue
		}
		i := d.rng.Intn(len(alive))
		ins := alive[i]
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		del, err := ins.Invert()
		if err != nil {
			continue
		}
		out = append(out, del)
		if d.rng.Float64() < 0.5 {
			pending = append(pending, ins) // churn: the edge comes back later
		}
	}
	return out
}

// BurstyStream returns a stream where every holdout edge is touched
// burstLen times in a row, alternating insert/delete starting from the
// insert — the hot-edge burst workload. A burst folds to at most one net
// update under window coalescing (odd burstLen: the edge ends present;
// even: it annihilates entirely), so the stream stresses exactly the
// window-assembly path. burstLen < 1 is treated as 1 (the plain holdout
// stream); the result applies cleanly against d.Graph.
func (d *Dataset) BurstyStream(burstLen int) stream.Stream {
	if burstLen < 1 {
		burstLen = 1
	}
	out := make(stream.Stream, 0, burstLen*len(d.Stream))
	for _, ins := range d.Stream {
		del, err := ins.Invert()
		if err != nil {
			out = append(out, ins)
			continue
		}
		for k := 0; k < burstLen; k++ {
			if k%2 == 0 {
				out = append(out, ins)
			} else {
				out = append(out, del)
			}
		}
	}
	return out
}
