// Package lint implements paracosmvet, a project-specific static-analysis
// suite for ParaCOSM's concurrency invariants. It is built purely on the
// standard library go/ast, go/parser, go/token and go/types packages
// (respecting the module's zero-dependency constraint) and checks contracts
// that go vet cannot express:
//
//   - lockguard:         fields declared "// guarded by <mutex>" are only
//     touched while that mutex is held on the same receiver
//   - atomicmix:         a field accessed through sync/atomic is never also
//     accessed non-atomically
//   - goroutineleak:     every `go func` literal is joinable — it signals a
//     WaitGroup that saw Add in the spawning scope, or sends/closes a channel
//   - rangedeterminism:  no `for range` over maps on result-reporting or
//     matching-order code paths unless the values feed a sort
//   - lockcopy:          generics-aware detection of by-value copies of types
//     containing sync.Mutex / sync.RWMutex (covers Queue[T] instantiations)
//
// Intentional violations are annotated in-source with the escape hatch
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name, e.g. "lockguard"
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one project-specific check. Check receives every loaded
// package at once so analyzers can correlate facts across package
// boundaries (type objects are shared through the loader's import cache).
type Analyzer interface {
	Name() string
	Check(pkgs []*Package) []Diagnostic
}

// DefaultAnalyzers returns the full suite with the repo's production
// configuration: rangedeterminism is scoped to the result-reporting and
// matching-order packages.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		LockGuard{},
		AtomicMix{},
		GoroutineLeak{},
		RangeDeterminism{Paths: []string{"internal/query", "internal/csm", "internal/core"}},
		LockCopy{},
	}
}

// ignoreRe matches the escape-hatch directive. The check name and a
// non-empty reason are both mandatory.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([A-Za-z][A-Za-z0-9_-]*)\s+(\S.*)$`)

// ignoreIndex records, per file and line, which checks are suppressed.
type ignoreIndex struct {
	byFileLine map[string]map[int]map[string]bool
	malformed  []Diagnostic
}

func collectIgnores(pkgs []*Package) *ignoreIndex {
	ix := &ignoreIndex{byFileLine: map[string]map[int]map[string]bool{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//lint:ignore") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						ix.malformed = append(ix.malformed, Diagnostic{
							Pos:     pos,
							Check:   "ignore",
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					lines := ix.byFileLine[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						ix.byFileLine[pos.Filename] = lines
					}
					checks := lines[pos.Line]
					if checks == nil {
						checks = map[string]bool{}
						lines[pos.Line] = checks
					}
					checks[m[1]] = true
				}
			}
		}
	}
	return ix
}

// suppressed reports whether d is covered by an ignore directive on the
// same line or the line directly above.
func (ix *ignoreIndex) suppressed(d Diagnostic) bool {
	lines := ix.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Check] || lines[d.Pos.Line-1][d.Check]
}

// Run executes every analyzer over pkgs, filters findings through the
// //lint:ignore directives, and returns the surviving diagnostics in
// deterministic (file, line, column, check) order. Malformed ignore
// directives are themselves reported.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	ix := collectIgnores(pkgs)
	out := append([]Diagnostic(nil), ix.malformed...)
	for _, a := range analyzers {
		for _, d := range a.Check(pkgs) {
			if !ix.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
