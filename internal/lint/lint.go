// Package lint implements paracosmvet, a project-specific static-analysis
// suite for ParaCOSM's concurrency invariants. It is built purely on the
// standard library go/ast, go/parser, go/token and go/types packages
// (respecting the module's zero-dependency constraint) and checks contracts
// that go vet cannot express:
//
//   - lockguard:         fields declared "// guarded by <mutex>" are only
//     touched while that mutex is held on the same receiver; lock obligations
//     propagate through the *Locked helper convention (the helper body is
//     licensed, its callers must hold the guard)
//   - lockescape:        a guarded slice/map/pointer value must not be
//     ranged, indexed, or returned outside the region where its mutex is held
//   - atomicmix:         a field accessed through sync/atomic is never also
//     accessed non-atomically
//   - goroutineleak:     every `go func` literal is joinable — it signals a
//     WaitGroup that saw Add in the spawning scope, or sends/closes a channel
//   - waitgroup:         Add/Done/Wait discipline — no Add inside the spawned
//     goroutine, Done deferred when early returns exist, and cross-function
//     Add/Wait serialized by a mutex or a "// Add serialized by" annotation
//   - chandrop:          a select with a default arm that discards a send
//     must increment the counter named by "// drop-counted by <field>"
//   - noalloc:           a //paracosm:noalloc function is transitively free
//     of closures, map/slice literals, growing appends, interface boxing,
//     string concatenation and variadic boxing through same-module calls
//   - rangedeterminism:  no `for range` over maps on result-reporting or
//     matching-order code paths unless the values feed a sort
//   - lockcopy:          generics-aware detection of by-value copies of types
//     containing sync.Mutex / sync.RWMutex (covers Queue[T] instantiations)
//
// Intentional violations are annotated in-source with the escape hatch
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it. Ignores are
// themselves audited: RunAll in strict mode fails on a directive naming an
// unknown check or matching zero diagnostics.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name, e.g. "lockguard"
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one project-specific check. Check receives every loaded
// package at once so analyzers can correlate facts across package
// boundaries (type objects are shared through the loader's import cache).
type Analyzer interface {
	Name() string
	Check(pkgs []*Package) []Diagnostic
}

// DefaultAnalyzers returns the full suite with the repo's production
// configuration: rangedeterminism is scoped to the result-reporting and
// matching-order packages.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		LockGuard{},
		LockEscape{},
		AtomicMix{},
		GoroutineLeak{},
		WaitGroupCheck{},
		ChanDrop{},
		NoAlloc{},
		RangeDeterminism{Paths: []string{"internal/query", "internal/csm", "internal/core"}},
		LockCopy{},
	}
}

// KnownChecks returns the names of every check in the registry, whether or
// not it is selected for a given run. Strict ignore validation resolves
// //lint:ignore directives against this set: naming anything else is an
// error even when the named analyzer is disabled for the run.
func KnownChecks() map[string]bool {
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		known[a.Name()] = true
	}
	return known
}

// ignoreRe matches the escape-hatch directive. The check name and a
// non-empty reason are both mandatory.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([A-Za-z][A-Za-z0-9_-]*)\s+(\S.*)$`)

// IgnoreInfo describes one //lint:ignore directive found in the sources and
// how many diagnostics it suppressed during the run.
type IgnoreInfo struct {
	Pos     token.Position
	Check   string
	Reason  string
	Matched int // diagnostics suppressed by this directive
}

// ignoreIndex records, per file and line, which checks are suppressed, and
// tracks every well-formed directive so stale ones can be reported.
type ignoreIndex struct {
	byFileLine map[string]map[int]map[string]*IgnoreInfo
	entries    []*IgnoreInfo
	malformed  []Diagnostic
}

func collectIgnores(pkgs []*Package) *ignoreIndex {
	ix := &ignoreIndex{byFileLine: map[string]map[int]map[string]*IgnoreInfo{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//lint:ignore") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						ix.malformed = append(ix.malformed, Diagnostic{
							Pos:     pos,
							Check:   "ignore",
							Message: "malformed directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					ent := &IgnoreInfo{Pos: pos, Check: m[1], Reason: m[2]}
					ix.entries = append(ix.entries, ent)
					lines := ix.byFileLine[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]*IgnoreInfo{}
						ix.byFileLine[pos.Filename] = lines
					}
					checks := lines[pos.Line]
					if checks == nil {
						checks = map[string]*IgnoreInfo{}
						lines[pos.Line] = checks
					}
					checks[m[1]] = ent
				}
			}
		}
	}
	return ix
}

// suppressed reports whether d is covered by an ignore directive on the
// same line or the line directly above, crediting the directive's match
// count when it is.
func (ix *ignoreIndex) suppressed(d Diagnostic) bool {
	lines := ix.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if ent := lines[line][d.Check]; ent != nil {
			ent.Matched++
			return true
		}
	}
	return false
}

// Options configures a RunAll invocation.
type Options struct {
	// StrictIgnores makes the run fail on escape-hatch rot: an ignore
	// directive naming a check outside KnownChecks (always an error — a
	// typo silences nothing), or one that suppressed zero diagnostics of
	// an analyzer that actually ran (the code it excused has been fixed,
	// so the directive is stale and must be deleted).
	StrictIgnores bool
}

// Run executes every analyzer over pkgs, filters findings through the
// //lint:ignore directives, and returns the surviving diagnostics in
// deterministic (file, line, column, check) order. Malformed ignore
// directives are themselves reported.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	diags, _ := RunAll(pkgs, analyzers, Options{})
	return diags
}

// RunAll is Run with configurable ignore auditing; it additionally returns
// every well-formed //lint:ignore directive with its suppression count (in
// source order) so callers can report on the escape-hatch inventory.
func RunAll(pkgs []*Package, analyzers []Analyzer, opts Options) ([]Diagnostic, []IgnoreInfo) {
	ix := collectIgnores(pkgs)
	out := append([]Diagnostic(nil), ix.malformed...)
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name()] = true
		for _, d := range a.Check(pkgs) {
			if !ix.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	if opts.StrictIgnores {
		known := KnownChecks()
		for _, ent := range ix.entries {
			switch {
			case !known[ent.Check]:
				out = append(out, Diagnostic{Pos: ent.Pos, Check: "ignore", Message: fmt.Sprintf(
					"directive names unknown check %q (known: %s)", ent.Check, knownCheckList())})
			case ran[ent.Check] && ent.Matched == 0:
				out = append(out, Diagnostic{Pos: ent.Pos, Check: "ignore", Message: fmt.Sprintf(
					"stale directive: no %s diagnostic is suppressed here — delete it (reason was: %s)",
					ent.Check, ent.Reason)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	infos := make([]IgnoreInfo, len(ix.entries))
	for i, ent := range ix.entries {
		infos[i] = *ent
	}
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i], infos[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out, infos
}

func knownCheckList() string {
	var names []string
	for name := range KnownChecks() {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
