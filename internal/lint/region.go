package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the shared interprocedural machinery of the v2 analyzers:
// a module-wide function-declaration index (so call sites resolve to bodies
// across package boundaries — type objects are shared through the loader's
// import cache) and position-ordered lock regions (so lifetime checks like
// lockescape and waitgroup's Add-under-mutex rule can ask "is this statement
// between Lock and Unlock?" rather than only "does this function ever
// lock?").

// declSite pairs a function declaration with the package it was loaded in,
// so analyzers can resolve positions and type info for cross-package
// callees.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// declIndex maps every function/method object defined in the loaded
// packages to its declaration.
func declIndex(pkgs []*Package) map[types.Object]declSite {
	ix := map[types.Object]declSite{}
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			if o := p.Info.Defs[fd.Name]; o != nil {
				ix[o] = declSite{pkg: p, decl: fd}
			}
		}
	}
	return ix
}

// calleeDecl resolves a call expression to a function declaration in the
// loaded module, or nil for builtins, external packages, and dynamic calls
// (interface methods, function values).
func calleeDecl(p *Package, call *ast.CallExpr, ix map[types.Object]declSite) (declSite, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return declSite{}, false
	}
	site, ok := ix[obj]
	return site, ok
}

// lockRegion is one held interval of a mutex within a function body: the
// position range between a Lock/RLock call and the matching Unlock/RUnlock
// (or the end of the body for deferred unlocks). The mutex is identified by
// its rendered path ("s.mu", "p.statsMu", bare "cacheMu").
type lockRegion struct {
	mu       string
	from, to token.Pos
}

// contains reports whether pos falls inside the region.
func (r lockRegion) contains(pos token.Pos) bool {
	return r.from <= pos && pos <= r.to
}

// lockEvent is a Lock/Unlock call in source order.
type lockEvent struct {
	pos      token.Pos
	mu       string
	unlock   bool
	deferred bool
}

// lockRegions computes the position-ordered held regions for every mutex
// path in body. The model is syntactic, not a CFG: a region opens at a
// Lock/RLock call and closes at the next Unlock/RUnlock on the same path.
// Two refinements keep it faithful to the repo's idioms:
//
//   - `defer mu.Unlock()` holds to the end of the body;
//
//   - an Unlock whose innermost enclosing block ends in a terminating
//     statement (return/break/continue/goto/panic) does not close the
//     fall-through region — it is an early-exit release on a path that
//     leaves the region anyway, as in
//
//     if done { mu.Unlock(); return }   // region continues below
//
//     The function body itself is exempt from this refinement so that a
//     top-level `mu.Unlock(); return x` really does end the region before
//     the return.
func lockRegions(p *Package, body *ast.BlockStmt) []lockRegion {
	var events []lockEvent
	collect := func(n ast.Node, deferred bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		var unlock bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			unlock = false
		case "Unlock", "RUnlock":
			unlock = true
		default:
			return
		}
		if !isMutex(typeOf(p.Info, sel.X)) {
			return
		}
		mu := render(sel.X)
		if mu == "" {
			return
		}
		events = append(events, lockEvent{pos: call.Pos(), mu: mu, unlock: unlock, deferred: deferred})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			collect(n.Call, true)
			return false // the deferred call's children hold no further lock calls
		case *ast.CallExpr:
			collect(n, false)
		}
		return true
	})

	// Innermost-block lookup for the early-exit refinement.
	blocks := enclosedBlocks(body)

	var regions []lockRegion
	open := map[string]token.Pos{} // mu → region start
	for _, ev := range events {
		switch {
		case !ev.unlock:
			if _, held := open[ev.mu]; !held {
				open[ev.mu] = ev.pos
			}
		case ev.deferred:
			// defer mu.Unlock(): the mutex stays held to the end of the
			// body; nothing to close now.
		default:
			if innermostTerminates(blocks, body, ev.pos) {
				continue // early-exit release; fall-through path stays locked
			}
			if from, held := open[ev.mu]; held {
				regions = append(regions, lockRegion{mu: ev.mu, from: from, to: ev.pos})
				delete(open, ev.mu)
			}
		}
	}
	for mu, from := range open {
		regions = append(regions, lockRegion{mu: mu, from: from, to: body.End()})
	}
	return regions
}

// enclosedBlocks lists every block-like statement list nested in body
// (including body itself) with its position range.
func enclosedBlocks(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			out = append(out, b)
		}
		return true
	})
	return out
}

// innermostTerminates reports whether the smallest block containing pos —
// other than the function body itself — ends in a terminating statement.
func innermostTerminates(blocks []*ast.BlockStmt, body *ast.BlockStmt, pos token.Pos) bool {
	var inner *ast.BlockStmt
	for _, b := range blocks {
		if b.Pos() <= pos && pos <= b.End() {
			if inner == nil || (b.Pos() >= inner.Pos() && b.End() <= inner.End()) {
				inner = b
			}
		}
	}
	if inner == nil || inner == body || len(inner.List) == 0 {
		return false
	}
	return terminating(inner.List[len(inner.List)-1])
}

// terminating reports whether s unconditionally leaves the enclosing block.
func terminating(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// heldAt reports whether a region for mu covers pos.
func heldAt(regions []lockRegion, mu string, pos token.Pos) bool {
	for _, r := range regions {
		if r.mu == mu && r.contains(pos) {
			return true
		}
	}
	return false
}

// renderExt is render extended with single-level index expressions whose
// index is itself renderable or a basic literal ("g.byLabel[l]",
// "m.tab[0]"). It exists so self-append detection can match indexed
// assignment targets; like render it returns "" for anything dynamic.
func renderExt(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.IndexExpr:
		x := renderExt(e.X)
		if x == "" {
			return ""
		}
		switch ix := e.Index.(type) {
		case *ast.BasicLit:
			return x + "[" + ix.Value + "]"
		default:
			if i := render(e.Index); i != "" {
				return x + "[" + i + "]"
			}
		}
		return ""
	default:
		return render(e)
	}
}
