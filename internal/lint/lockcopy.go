package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockCopy is a generics-aware copylocks: it flags by-value copies of any
// type that (transitively, through struct fields, arrays, and instantiated
// type arguments) contains a sync.Mutex, sync.RWMutex, or other no-copy
// sync primitive. Because the check runs on go/types object types rather
// than syntax, instantiations like concurrent.Queue[csm.State] are seen
// with their concrete field types — the paths go vet's copylocks misses in
// some instantiation chains. Flagged sites: value receivers, by-value
// parameters and results, assignments, returns, call arguments, and range
// value variables.
type LockCopy struct{}

func (LockCopy) Name() string { return "lockcopy" }

func (LockCopy) Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Recv != nil {
						out = append(out, lockCopyFields(p, n.Recv, "receiver")...)
					}
					out = append(out, lockCopySignature(p, n.Type)...)
				case *ast.FuncLit:
					out = append(out, lockCopySignature(p, n.Type)...)
				case *ast.AssignStmt:
					for _, rhs := range n.Rhs {
						out = append(out, lockCopyValue(p, rhs, "assignment copies")...)
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						out = append(out, lockCopyValue(p, res, "return copies")...)
					}
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok {
						if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name != "append" {
							return true
						}
					}
					for _, arg := range n.Args {
						out = append(out, lockCopyValue(p, arg, "call passes")...)
					}
				case *ast.RangeStmt:
					if n.Value == nil {
						return true
					}
					// The value variable is a definition, so resolve through
					// Defs (typeOf) rather than the value-expression path.
					if t := typeOf(p.Info, n.Value); t != nil && containsLock(t) {
						out = append(out, diagAt(p, n.Value.Pos(), "lockcopy", fmt.Sprintf(
							"range value copies %s which contains a sync mutex; iterate by index or use pointers", t)))
					}
				}
				return true
			})
		}
	}
	return out
}

// lockCopySignature flags by-value parameters and results of lock types.
func lockCopySignature(p *Package, ft *ast.FuncType) []Diagnostic {
	var out []Diagnostic
	if ft.Params != nil {
		out = append(out, lockCopyFields(p, ft.Params, "parameter")...)
	}
	if ft.Results != nil {
		out = append(out, lockCopyFields(p, ft.Results, "result")...)
	}
	return out
}

func lockCopyFields(p *Package, fl *ast.FieldList, kind string) []Diagnostic {
	var out []Diagnostic
	for _, fld := range fl.List {
		t := typeOf(p.Info, fld.Type)
		if t == nil || !containsLock(t) {
			continue
		}
		out = append(out, diagAt(p, fld.Type.Pos(), "lockcopy", fmt.Sprintf(
			"%s passes %s by value; it contains a sync mutex — use a pointer", kind, t)))
	}
	return out
}

// lockCopyValue flags e when it reads an existing value (variable, field,
// element, or dereference) of a lock-containing type — the forms whose use
// as an rvalue performs a copy. Composite literals and calls construct
// fresh values and are exempt; &x takes no copy.
func lockCopyValue(p *Package, e ast.Expr, verb string) []Diagnostic {
	if !copySourceForm(e) {
		return nil
	}
	t := valueType(p.Info, e)
	if t == nil || !containsLock(t) {
		return nil
	}
	return []Diagnostic{diagAt(p, e.Pos(), "lockcopy", fmt.Sprintf(
		"%s %s by value; it contains a sync mutex — use a pointer", verb, t))}
}

func copySourceForm(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copySourceForm(e.X)
	}
	return false
}
