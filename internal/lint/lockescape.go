package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockEscape flags guarded reference values that outlive their lock region
// — the shape of the PR-5 fanout bug, where a "// guarded by mu" subscriber
// slice was read under the mutex but ranged after releasing it. The v1
// lockguard check is flow-insensitive: any Lock anywhere in the function
// licenses every access, so it cannot see this. LockEscape computes the
// positional Lock..Unlock regions (see lockRegions) and, for guarded fields
// whose type is a slice, map, or pointer, reports:
//
//   - ranging or indexing the field outside every region of its mutex;
//   - ranging, indexing, or returning a direct alias of the field
//     (v := x.f, v := x.f[k]) outside the region;
//   - returning the field (or an index/slice of it) at all — the reference
//     escapes to a caller that does not hold the lock. Copy first
//     (append([]T(nil), x.f...)) or return from a *Locked helper.
//
// The check only applies to functions that actually lock the guarding
// mutex: a function with no region at all is already flagged by lockguard,
// and *Locked helpers run entirely under their caller's lock.
type LockEscape struct{}

func (LockEscape) Name() string { return "lockescape" }

func (LockEscape) Check(pkgs []*Package) []Diagnostic {
	guards := collectGuards(pkgs)
	if len(guards) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			if isHelperDecl(fd) {
				continue
			}
			out = append(out, lockescapeFunc(p, fd, guards)...)
		}
	}
	return out
}

// refType reports whether t's underlying type is a slice, map, or pointer —
// the types for which holding a copy of the value still aliases the guarded
// structure.
func refType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

func lockescapeFunc(p *Package, fd *ast.FuncDecl, guards map[types.Object]string) []Diagnostic {
	locked := lockedSet(p, fd)
	if len(locked) == 0 {
		return nil
	}
	regions := lockRegions(p, fd.Body)

	// guardedRef resolves e to a guarded reference-typed field access whose
	// mutex this function locks somewhere, returning the mutex path the
	// access must be covered by.
	guardedRef := func(e ast.Expr) (want string, ok bool) {
		sel, isSel := e.(*ast.SelectorExpr)
		if !isSel {
			return "", false
		}
		obj := fieldObj(p.Info, sel)
		if obj == nil || !refType(obj.Type()) {
			return "", false
		}
		mu, guarded := guards[obj]
		if !guarded {
			return "", false
		}
		base := render(sel.X)
		want = mu
		if base != "" {
			want = base + "." + mu
		}
		if !locked[want] {
			return "", false // unguarded access: lockguard's finding, not ours
		}
		return want, true
	}

	// Pass 1: collect direct aliases — v := x.f or v := x.f[k] where the
	// alias itself still references guarded memory.
	aliases := map[types.Object]string{} // alias var → mutex path
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			src := rhs
			if ixe, isIx := src.(*ast.IndexExpr); isIx {
				src = ixe.X
			}
			want, ok := guardedRef(src)
			if !ok {
				continue
			}
			id, isID := as.Lhs[i].(*ast.Ident)
			if !isID {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil || !refType(obj.Type()) {
				continue
			}
			aliases[obj] = want
		}
		return true
	})

	aliasOf := func(e ast.Expr) (string, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return "", false
		}
		want, ok := aliases[p.Info.Uses[id]]
		return want, ok
	}

	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if want, ok := guardedRef(n.X); ok && !heldAt(regions, want, n.Pos()) {
				out = append(out, diagAt(p, n.Pos(), "lockescape", fmt.Sprintf(
					"ranging over guarded %s outside the %s region in %s: snapshot it under the lock first",
					render(n.X), want, fd.Name.Name)))
			} else if want, ok := aliasOf(n.X); ok && !heldAt(regions, want, n.Pos()) {
				out = append(out, diagAt(p, n.Pos(), "lockescape", fmt.Sprintf(
					"ranging over alias %s of a guarded value outside the %s region in %s",
					render(n.X), want, fd.Name.Name)))
			}
		case *ast.IndexExpr:
			if want, ok := guardedRef(n.X); ok && !heldAt(regions, want, n.Pos()) {
				out = append(out, diagAt(p, n.Pos(), "lockescape", fmt.Sprintf(
					"indexing guarded %s outside the %s region in %s",
					render(n.X), want, fd.Name.Name)))
			} else if want, ok := aliasOf(n.X); ok && !heldAt(regions, want, n.Pos()) {
				out = append(out, diagAt(p, n.Pos(), "lockescape", fmt.Sprintf(
					"indexing alias %s of a guarded value outside the %s region in %s",
					render(n.X), want, fd.Name.Name)))
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if !refType(typeOf(p.Info, res)) {
					continue // returning a value-typed element is a copy
				}
				src := res
				switch e := src.(type) {
				case *ast.IndexExpr:
					src = e.X
				case *ast.SliceExpr:
					src = e.X
				}
				if want, ok := guardedRef(src); ok {
					out = append(out, diagAt(p, res.Pos(), "lockescape", fmt.Sprintf(
						"returning guarded %s from %s: the reference escapes the %s region — return a copy or use a *Locked helper",
						render(src), fd.Name.Name, want)))
				} else if want, ok := aliasOf(src); ok {
					out = append(out, diagAt(p, res.Pos(), "lockescape", fmt.Sprintf(
						"returning alias %s of a guarded value from %s: the reference escapes the %s region — return a copy",
						render(src), fd.Name.Name, want)))
				}
			}
		}
		return true
	})
	return out
}
