// Package noalloc exercises the transitive zero-allocation prover: every
// construct the analyzer flags, the amortized append forms it permits, the
// //paracosm:allocs boundary, and the //lint:ignore cold-path escape.
package noalloc

import "fmt"

type buf struct {
	data []int
}

//paracosm:noalloc
func (b *buf) push(v int) {
	b.data = append(b.data, v)
}

// In-place compaction reuses the backing array and cannot grow it.
//
//paracosm:noalloc
func (b *buf) remove(i int) {
	b.data = append(b.data[:i], b.data[i+1:]...)
}

// Slice-reuse append resets length, then refills within capacity.
//
//paracosm:noalloc
func (b *buf) refill(src []int) {
	b.data = append(b.data[:0], src...)
}

//paracosm:noalloc
func grow() []int {
	return make([]int, 8) // want noalloc
}

//paracosm:noalloc
func lits() {
	_ = []int{1, 2}        // want noalloc
	_ = map[string]int{}   // want noalloc
	_ = struct{ n int }{1} // struct literals live on the stack: not flagged
}

//paracosm:noalloc
func format(n int) string {
	return fmt.Sprintf("%d", n) // want noalloc
}

func sum(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

//paracosm:noalloc
func callVariadic() int {
	return sum(1, 2, 3) // want noalloc
}

//paracosm:noalloc
func spreadVariadic(vs []int) int {
	return sum(vs...)
}

func eat(v interface{}) {}

//paracosm:noalloc
func box(b *buf) {
	eat(42) // want noalloc
	eat(b)  // a pointer fits the interface word: not flagged
}

//paracosm:noalloc
func concat(a, b string) string {
	return a + b // want noalloc
}

//paracosm:noalloc
func convert(s string) []byte {
	return []byte(s) // want noalloc
}

//paracosm:noalloc
func appendCopy(src []int) []int {
	return append(src, 1) // want noalloc
}

//paracosm:noalloc
func capture(n int) func() int {
	return func() int { return n } // want noalloc
}

func noop() {}

//paracosm:noalloc
func spawn() {
	go noop() // want noalloc
}

// The violation sits two calls deep: the diagnostic lands at the make and
// names the root.
func fresh() []int {
	return make([]int, 4) // want noalloc
}

func viaFresh() []int { return fresh() }

//paracosm:noalloc
func callsFresh() []int {
	return viaFresh()
}

// spinUp intentionally allocates; the directive fences it off as an
// audited boundary and the traversal does not descend.
//
//paracosm:allocs one-time pool spin-up
func spinUp() []int {
	return make([]int, 1024)
}

//paracosm:noalloc
func escalate() []int {
	return spinUp()
}

// Dynamic calls cannot be resolved statically; they are trusted to the
// runtime allocation guards.
//
//paracosm:noalloc
func dynamic(f func() int) int {
	return f()
}

//paracosm:noalloc
func hot(ok bool) error {
	if !ok {
		//lint:ignore noalloc cold error path: formatting is off the contract
		return fmt.Errorf("bad")
	}
	return nil
}
