// Package lockguardfix exercises the lockguard analyzer: struct fields and
// package-level variables carrying a "guarded by" marker must only be
// accessed under their mutex.
package lockguardfix

import "sync"

var (
	counter   int // guarded by counterMu
	counterMu sync.Mutex
)

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok bool
}

func lockedField(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	return b.n
}

func unguardedFieldIsFine(b *box) {
	b.ok = true
}

func unlockedRead(b *box) int {
	return b.n // want lockguard
}

func unlockedWrite(b *box) {
	b.n = 7 // want lockguard
}

func wrongReceiverLock(a, b *box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want lockguard
}

func lockedVar() {
	counterMu.Lock()
	counter++
	counterMu.Unlock()
}

func unlockedVar() int {
	return counter // want lockguard
}
