// Package lockedhelper exercises lockguard v2: the *Locked helper
// convention licenses the helper body and obliges every caller to hold the
// guard, transitively through helper-to-helper calls.
package lockedhelper

import "sync"

type reg struct {
	mu    sync.Mutex
	items []int // guarded by mu
}

// sumLocked's body is licensed: guarded accesses here become an obligation
// on the callers instead of a finding.
func (r *reg) sumLocked() int {
	t := 0
	for _, v := range r.items {
		t += v
	}
	return t
}

// doubleLocked inherits sumLocked's obligation without touching guarded
// state itself.
func (r *reg) doubleLocked() int { return r.sumLocked() * 2 }

// noopLocked has no obligations: callers need not hold anything.
func (r *reg) noopLocked() int { return 42 }

func (r *reg) Sum() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sumLocked()
}

func (r *reg) SumBare() int {
	return r.sumLocked() // want lockguard
}

func (r *reg) DoubleBare() int {
	return r.doubleLocked() // want lockguard
}

func (r *reg) DoubleHeld() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doubleLocked()
}

func (r *reg) NoopBare() int {
	return r.noopLocked()
}

// LockedSum has the prefix, not the suffix: it is a self-locking wrapper,
// not a helper, and callers owe it nothing.
func (r *reg) LockedSum() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sumLocked()
}

func callPrefixForm(r *reg) int {
	return r.LockedSum()
}

// Direct guarded access outside any helper still fires the v1 rule.
func peek(r *reg) int {
	return len(r.items) // want lockguard
}
