// Package lockescape exercises the guarded-alias escape check: reference
// values read under a mutex must not be ranged, indexed, or returned after
// the region ends — the PR-5 fanout bug shape.
package lockescape

import "sync"

type hub struct {
	mu   sync.Mutex
	subs map[string][]chan int // guarded by mu
	buf  []int                 // guarded by mu
}

// The fanout bug: an alias of the guarded slice is ranged after Unlock.
func (h *hub) fanoutBad(q string) {
	h.mu.Lock()
	subs := h.subs[q]
	h.mu.Unlock()
	for _, c := range subs { // want lockescape
		c <- 1
	}
}

// The fix: snapshot under the lock, range the copy.
func (h *hub) fanoutGood(q string) {
	h.mu.Lock()
	subs := append([]chan int(nil), h.subs[q]...)
	h.mu.Unlock()
	for _, c := range subs {
		c <- 1
	}
}

func (h *hub) rangeBad() int {
	h.mu.Lock()
	t := len(h.buf)
	h.mu.Unlock()
	for _, v := range h.buf { // want lockescape
		t += v
	}
	return t
}

func (h *hub) indexBad(i int) int {
	h.mu.Lock()
	h.mu.Unlock()
	return h.buf[i] // want lockescape
}

// Returning the guarded slice hands the reference past the unlock even
// when the return itself runs under a deferred Unlock.
func (h *hub) snapshotBad() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buf // want lockescape
}

func (h *hub) snapshotGood() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.buf...)
}

// The worker-pool shape: an early-exit Unlock inside a terminating block
// does not end the fall-through region.
func (h *hub) workerShape() int {
	for {
		h.mu.Lock()
		if len(h.buf) == 0 {
			h.mu.Unlock()
			return 0
		}
		v := h.buf[0]
		h.buf = h.buf[:len(h.buf)-1]
		h.mu.Unlock()
		_ = v
	}
}

// Swap-and-steal is sound — the old value has no other referent — and says
// so with the escape hatch.
func (h *hub) stealOK() int {
	h.mu.Lock()
	buf := h.buf
	h.buf = nil
	h.mu.Unlock()
	t := 0
	//lint:ignore lockescape buf was swapped out under the lock; this is the sole reference
	for _, v := range buf {
		t += v
	}
	return t
}
