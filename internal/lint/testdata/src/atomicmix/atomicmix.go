// Package atomicmixfix exercises the atomicmix analyzer: a field touched
// through sync/atomic anywhere must never be accessed plainly elsewhere.
package atomicmixfix

import "sync/atomic"

type stats struct {
	hits  int64
	total int64
	other int64
}

func atomicOnly(s *stats) int64 {
	atomic.AddInt64(&s.hits, 1)
	return atomic.LoadInt64(&s.hits)
}

func plainOnlyIsFine(s *stats) int64 {
	s.other++
	return s.other
}

func mixedWrite(s *stats) {
	atomic.AddInt64(&s.total, 1)
}

func mixedRead(s *stats) int64 {
	return s.total // want atomicmix
}
