// Package rangedetfix exercises the rangedeterminism analyzer: map ranges
// on result-reporting paths are flagged unless the function sorts.
package rangedetfix

import "sort"

func unsortedReport(m map[string]int, emit func(string, int)) {
	for k, v := range m { // want rangedeterminism
		emit(k, v)
	}
}

func sortedReport(m map[string]int, emit func(string, int)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, m[k])
	}
}

func sliceRangeIsFine(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
