// Package chandrop exercises the drop-and-count policy: a try-send select
// (send case + default) must be annotated with the counter its default arm
// increments.
package chandrop

import "sync/atomic"

type conn struct {
	out     chan int
	dropped uint64
	adrop   atomic.Uint64
}

// Unannotated try-send: the default arm silently loses the value.
func (c *conn) offerBad(v int) {
	select { // want chandrop
	case c.out <- v:
	default:
	}
}

// Annotated, and the default arm really does count.
func (c *conn) offerGood(v int) {
	select { // drop-counted by dropped
	case c.out <- v:
	default:
		c.dropped++
	}
}

// Annotation on the line above the select, atomic .Add increment form.
func (c *conn) offerAtomic(v int) {
	// drop-counted by adrop
	select {
	case c.out <- v:
	default:
		c.adrop.Add(1)
	}
}

// The annotation names a counter the default arm never touches.
func (c *conn) offerLying(v int) {
	select { // drop-counted by dropped // want chandrop
	case c.out <- v:
	default:
	}
}

// Receive-with-default consumes nothing when it misses: not a drop site.
func (c *conn) poll() (int, bool) {
	select {
	case v := <-c.out:
		return v, true
	default:
		return 0, false
	}
}

// Intentional fire-and-forget, waived explicitly.
func (c *conn) wake() {
	//lint:ignore chandrop best-effort wakeup: the receiver coalesces ticks
	select {
	case c.out <- 0:
	default:
	}
}
