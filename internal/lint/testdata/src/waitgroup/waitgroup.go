// Package waitgroup exercises the Add/Done/Wait discipline checks: Add
// before go, deferred Done under early returns, and the cross-function
// Add/Wait serialization annotation.
package waitgroup

import "sync"

// Rule 1: a goroutine that Adds itself to the group that joins it races
// Wait.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want waitgroup
		defer wg.Done()
	}()
	wg.Wait()
}

// The sanctioned shape: Add before the go statement.
func addBefore() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Rule 2: a plain Done after a conditional return is skipped on the early
// path and Wait hangs.
func earlyReturn(wg *sync.WaitGroup, ok bool) {
	if !ok {
		return
	}
	wg.Done() // want waitgroup
}

// No early return at this level: a plain Done is fine.
func doneNoReturn(wg *sync.WaitGroup) {
	wg.Done()
}

// Rule 3: field Add-ed in one method, Wait-ed in another, with no
// serialization annotation on the field.
type svc struct {
	mu sync.Mutex
	wg sync.WaitGroup // want waitgroup
}

func (s *svc) start() {
	s.wg.Add(1)
	go func() { defer s.wg.Done() }()
}

func (s *svc) stop() {
	s.wg.Wait()
}

// The annotation names a sibling mutex: every Add site is verified to sit
// inside that mutex's region.
type svcOK struct {
	mu sync.Mutex
	wg sync.WaitGroup // Add serialized by mu
}

func (s *svcOK) start() {
	s.mu.Lock()
	s.wg.Add(1)
	s.mu.Unlock()
	go func() { defer s.wg.Done() }()
}

func (s *svcOK) stop() {
	s.wg.Wait()
}

// Annotated "Add serialized by mu", but one Add site runs outside the mu
// region: the annotation is a lie and the verifier says so.
type svcBad struct {
	mu sync.Mutex
	wg sync.WaitGroup // Add serialized by mu
}

func (s *svcBad) start() {
	s.wg.Add(1) // want waitgroup
	go func() { defer s.wg.Done() }()
}

func (s *svcBad) stop() {
	s.wg.Wait()
}

// A non-mutex token is a trusted, documented assertion.
type svcDoc struct {
	wg sync.WaitGroup // Add serialized by construction
}

func newSvcDoc() *svcDoc {
	s := &svcDoc{}
	s.wg.Add(1)
	go func() { defer s.wg.Done() }()
	return s
}

func (s *svcDoc) stop() {
	s.wg.Wait()
}
