// Package goroutineleakfix exercises the goroutineleak analyzer: every go
// func literal must be joinable (WaitGroup Done paired with an Add in the
// spawner, or a channel send/close).
package goroutineleakfix

import "sync"

func waitGroupJoin() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func channelJoin() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

func closeJoin() <-chan int {
	ch := make(chan int)
	go func() {
		close(ch)
	}()
	return ch
}

func fireAndForget() {
	go func() { // want goroutineleak
		_ = 1 + 1
	}()
}

func doneWithoutAdd() {
	var wg sync.WaitGroup
	go func() { // want goroutineleak
		wg.Done()
	}()
}
