package goroutineleakfix

import "sync"

// The persistent-pool (join-via-Close) pattern: the constructor Add-s a
// WaitGroup per spawned worker method, the worker defers Done, and Close
// Wait-s. The spawn is a method call, not a func literal — the analyzer
// must resolve the method body in the same package.

type workerPool struct {
	wg sync.WaitGroup
}

func (p *workerPool) worker(w int) {
	defer p.wg.Done()
	_ = w
}

// loop has no Done/send/close: spawning it is fire-and-forget.
func (p *workerPool) loop() {
	for i := 0; ; i++ {
		_ = i
	}
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{}
	for w := 0; w < size; w++ {
		p.wg.Add(1)
		go p.worker(w) // ok: worker defers p.wg.Done; Close joins via Wait
	}
	return p
}

func (p *workerPool) Close() { p.wg.Wait() }

func startDaemon() *workerPool {
	p := &workerPool{}
	go p.loop() // want goroutineleak
	return p
}

// chanWorker signals completion on a channel: joinable.
func chanWorker(ch chan struct{}) {
	ch <- struct{}{}
}

func spawnChanWorker() chan struct{} {
	ch := make(chan struct{})
	go chanWorker(ch) // ok: sends on a channel the spawner holds
	return ch
}

// runForever is a plain same-package function with no join handle.
func runForever() {
	for {
	}
}

func spawnForever() {
	go runForever() // want goroutineleak
}
