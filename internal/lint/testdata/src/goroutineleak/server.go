package goroutineleakfix

import (
	"net"
	"sync"
)

// The serving-layer shape: an accept loop that spawns two goroutines per
// connection (frame reader, frame writer), all joined through a single
// WaitGroup that Close waits on. The spawner (acceptLoop) Add-s before
// each go statement and every spawned method defers Done — the analyzer
// must license method spawns whose join evidence lives in the method
// body, with the Add in the spawner.

type srv struct {
	wg sync.WaitGroup
	ln net.Listener
}

func (s *srv) readConn(c net.Conn) {
	defer s.wg.Done()
	_ = c
}

func (s *srv) writeConn(c net.Conn) {
	defer s.wg.Done()
	_ = c
}

// pollConn has no Done/send/close: a per-connection daemon nobody joins.
func (s *srv) pollConn(c net.Conn) {
	for {
		_ = c
	}
}

func (s *srv) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(2)
		go s.readConn(c)  // ok: defers s.wg.Done; Close joins via Wait
		go s.writeConn(c) // ok: defers s.wg.Done; Close joins via Wait
		go s.pollConn(c)  // want goroutineleak
	}
}

func startSrv(ln net.Listener) *srv {
	s := &srv{ln: ln}
	s.wg.Add(1)
	go s.acceptLoop() // ok: defers s.wg.Done; Close joins via Wait
	return s
}

func (s *srv) Close() {
	_ = s.ln.Close()
	s.wg.Wait()
}
