// Package staleignore exercises strict-ignore mode: a directive naming an
// unknown check and a directive that suppresses nothing are both findings
// under -strict-ignores, and both are silent under a plain run.
package staleignore

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// The access is properly locked, so this directive suppresses nothing:
// strict mode flags it as stale.
func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore lockguard pretend this access used to be unlocked
	return b.n
}

// No analyzer is named "nosuchcheck": strict mode flags the directive.
func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore nosuchcheck there is no analyzer by this name
	b.n++
}
