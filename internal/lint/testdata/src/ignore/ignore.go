// Package ignorefix exercises the //lint:ignore escape hatch against the
// lockguard analyzer.
package ignorefix

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func aboveLineForm(b *box) int {
	//lint:ignore lockguard fixture: single-writer phase
	return b.n
}

func sameLineForm(b *box) int {
	return b.n //lint:ignore lockguard fixture: single-writer phase
}

func otherCheckDoesNotSuppress(b *box) int {
	//lint:ignore atomicmix fixture: names a different check
	return b.n // want lockguard
}

func malformedDirective(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore // want ignore
	return b.n
}
