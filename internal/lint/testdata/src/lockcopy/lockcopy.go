// Package lockcopyfix exercises the generics-aware lockcopy analyzer on a
// Queue-shaped generic type whose instantiations embed a sync.Mutex.
package lockcopyfix

import "sync"

type Q[T any] struct {
	mu    sync.Mutex
	items []T
}

func (q *Q[T]) Push(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
}

func assignmentCopy() {
	var a Q[int]
	b := a // want lockcopy
	_ = b.items
}

func byValueParam(q Q[string]) int { // want lockcopy
	return len(q.items)
}

func pointerIsFine(q *Q[string]) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func rangeCopy(qs []Q[int]) {
	for _, q := range qs { // want lockcopy
		_ = q.items
	}
}

func indexIsFine(qs []Q[int]) {
	for i := range qs {
		qs[i].Push(i)
	}
}
