package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces the "// guarded by <mutexField>" convention: a struct
// field (or package-level variable) whose doc or line comment carries the
// marker may only be read or written inside a function that locks that
// mutex on the same receiver chain. The analysis is flow-insensitive within
// a function declaration: any Lock/RLock call on "<base>.<mutex>" anywhere
// in the function licenses accesses to "<base>.<field>" in that function.
//
// v2 is interprocedural through the repo's *Locked helper convention. A
// method whose name ends in "Locked" is a helper that runs with its
// receiver's guard already held: its body is licensed to touch guarded
// fields on the receiver without locking, and in exchange every caller of
// x.fooLocked() must hold x's guard at the call. The obligation — which
// mutexes the helper's body (transitively, through other *Locked helpers it
// calls) relies on — is computed by fixed point, so a helper that merely
// forwards to another helper inherits its requirements.
//
// Single-writer phases that intentionally skip the mutex must annotate with
// //lint:ignore lockguard <reason>.
type LockGuard struct{}

func (LockGuard) Name() string { return "lockguard" }

var guardRe = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)

func guardName(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// collectGuards indexes every "// guarded by" annotation across the loaded
// packages (struct fields and package-level variables) by type object, so
// cross-package accesses to exported guarded fields are still checked.
func collectGuards(pkgs []*Package) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, fld := range n.Fields.List {
						mu := guardName(fld.Doc, fld.Comment)
						if mu == "" {
							continue
						}
						for _, name := range fld.Names {
							if o := p.Info.Defs[name]; o != nil {
								guards[o] = mu
							}
						}
					}
				case *ast.GenDecl:
					if n.Tok != token.VAR {
						return true
					}
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						mu := guardName(vs.Doc, vs.Comment)
						if mu == "" && len(n.Specs) == 1 {
							mu = guardName(n.Doc)
						}
						if mu == "" {
							continue
						}
						for _, name := range vs.Names {
							if o := p.Info.Defs[name]; o != nil {
								guards[o] = mu
							}
						}
					}
				}
				return true
			})
		}
	}
	return guards
}

// lockedHelper is one *Locked-convention method: a body licensed to touch
// guarded receiver state, plus the receiver-relative obligations ("mu",
// "inner.mu") its callers must hold.
type lockedHelper struct {
	site        declSite
	recv        string
	obligations map[string]bool
}

// isHelperDecl reports whether fd is a *Locked-convention method with a
// named receiver. Functions merely *prefixed* "Locked" (graph.LockedAddEdge
// et al.) are self-locking wrappers, not helpers.
func isHelperDecl(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	name := fd.Name.Name
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

// lockedSet returns the rendered mutex paths Lock/RLock-ed anywhere in the
// function (flow-insensitive, v1 semantics).
func lockedSet(p *Package, fd *ast.FuncDecl) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if !isMutex(typeOf(p.Info, sel.X)) {
			return true
		}
		if mu := render(sel.X); mu != "" {
			locked[mu] = true
		}
		return true
	})
	return locked
}

// relTo rewrites an absolute want-path ("m.mu", "m.inner.mu") relative to
// the receiver name ("mu", "inner.mu"). ok is false when the path is not
// rooted at the receiver.
func relTo(recv, want string) (string, bool) {
	if strings.HasPrefix(want, recv+".") {
		return want[len(recv)+1:], true
	}
	return "", false
}

func (LockGuard) Check(pkgs []*Package) []Diagnostic {
	guards := collectGuards(pkgs)
	if len(guards) == 0 {
		return nil
	}
	ix := declIndex(pkgs)

	// Phase 1: identify *Locked helpers and seed their obligations with the
	// guarded receiver fields their own bodies touch without locking.
	helpers := map[types.Object]*lockedHelper{}
	lockedCache := map[*ast.FuncDecl]map[string]bool{}
	for obj, site := range ix {
		if !isHelperDecl(site.decl) {
			continue
		}
		h := &lockedHelper{
			site:        site,
			recv:        site.decl.Recv.List[0].Names[0].Name,
			obligations: map[string]bool{},
		}
		helpers[obj] = h
		locked := lockedSet(site.pkg, site.decl)
		lockedCache[site.decl] = locked
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObj(site.pkg.Info, sel)
			if obj == nil {
				return true
			}
			mu, guarded := guards[obj]
			if !guarded {
				return true
			}
			base := render(sel.X)
			if base == "" {
				return true
			}
			want := base + "." + mu
			if locked[want] {
				return true
			}
			if rel, ok := relTo(h.recv, want); ok {
				h.obligations[rel] = true
			}
			return true
		})
	}

	// Phase 2: propagate obligations through helper→helper calls on the
	// receiver chain until a fixed point.
	for changed := true; changed; {
		changed = false
		for _, h := range helpers {
			locked := lockedCache[h.site.decl]
			ast.Inspect(h.site.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				callee := helpers[h.site.pkg.Info.Uses[sel.Sel]]
				if callee == nil {
					return true
				}
				prefix := render(sel.X)
				if prefix == "" {
					return true
				}
				for ob := range callee.obligations {
					want := prefix + "." + ob
					if locked[want] {
						continue
					}
					if rel, ok := relTo(h.recv, want); ok && !h.obligations[rel] {
						h.obligations[rel] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	var out []Diagnostic
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			out = append(out, lockguardFunc(p, fd, guards, helpers)...)
		}
	}
	return out
}

// lockguardFunc checks one function declaration (including any nested
// function literals, which inherit the enclosing lock set): direct guarded
// accesses must be licensed by a Lock/RLock on the right path — or, inside
// a *Locked helper, deferred to the helper's callers — and every call to a
// *Locked helper must hold the callee's obligations.
func lockguardFunc(p *Package, fd *ast.FuncDecl, guards map[types.Object]string,
	helpers map[types.Object]*lockedHelper) []Diagnostic {
	locked := lockedSet(p, fd)
	var self *lockedHelper
	if o := p.Info.Defs[fd.Name]; o != nil {
		self = helpers[o]
	}
	// satisfied reports whether the absolute want-path is held here: either
	// locked directly, or (inside a helper) part of this helper's own
	// obligations, i.e. discharged by our callers.
	satisfied := func(want string) bool {
		if locked[want] {
			return true
		}
		if self != nil {
			if rel, ok := relTo(self.recv, want); ok && self.obligations[rel] {
				return true
			}
		}
		return false
	}

	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee := helpers[p.Info.Uses[sel.Sel]]
			if callee == nil || len(callee.obligations) == 0 {
				return true
			}
			if tv, ok := p.Info.Types[sel.X]; ok && tv.IsType() {
				return true // method expression T.fooLocked — no receiver value
			}
			prefix := render(sel.X)
			if prefix == "" {
				return true
			}
			for _, ob := range sortedKeys(callee.obligations) {
				want := prefix + "." + ob
				if !satisfied(want) {
					out = append(out, diagAt(p, n.Pos(), "lockguard", fmt.Sprintf(
						"call to %s.%s requires %s held (Lock/RLock) in %s: *Locked helpers run under their caller's lock",
						prefix, sel.Sel.Name, want, fd.Name.Name)))
				}
			}
		case *ast.SelectorExpr:
			obj := fieldObj(p.Info, n)
			if obj == nil {
				return true
			}
			mu, guarded := guards[obj]
			if !guarded {
				return true
			}
			base := render(n.X)
			want := mu
			if base != "" {
				want = base + "." + mu
			}
			if !satisfied(want) {
				out = append(out, diagAt(p, n.Pos(), "lockguard", fmt.Sprintf(
					"%s is guarded by %s but accessed without %s.Lock/RLock in %s",
					render(n), mu, want, fd.Name.Name)))
			}
		case *ast.Ident:
			// Bare identifiers only cover package-level guarded variables;
			// struct fields are handled above via their SelectorExpr (the
			// Sel ident of a field access also resolves to the field object
			// and must not fire twice).
			v, ok := p.Info.Uses[n].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if v.Parent() == nil || v.Parent().Parent() != types.Universe {
				return true
			}
			mu, guarded := guards[types.Object(v)]
			if !guarded {
				return true
			}
			if !locked[mu] {
				out = append(out, diagAt(p, n.Pos(), "lockguard", fmt.Sprintf(
					"%s is guarded by %s but accessed without %s.Lock in %s",
					n.Name, mu, mu, fd.Name.Name)))
			}
		}
		return true
	})
	return out
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	// insertion sort: obligation sets are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func diagAt(p *Package, pos token.Pos, check, msg string) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Check: check, Message: msg}
}
