package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockGuard enforces the "// guarded by <mutexField>" convention: a struct
// field (or package-level variable) whose doc or line comment carries the
// marker may only be read or written inside a function that locks that
// mutex on the same receiver chain. The analysis is flow-insensitive within
// a function declaration: any Lock/RLock call on "<base>.<mutex>" anywhere
// in the function licenses accesses to "<base>.<field>" in that function.
// Single-writer phases that intentionally skip the mutex must annotate with
// //lint:ignore lockguard <reason>.
type LockGuard struct{}

func (LockGuard) Name() string { return "lockguard" }

var guardRe = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)

func guardName(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func (LockGuard) Check(pkgs []*Package) []Diagnostic {
	// Phase 1: collect guarded objects across every package so that
	// cross-package accesses to exported guarded fields are still checked
	// (type objects are shared through the loader cache).
	guards := map[types.Object]string{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, fld := range n.Fields.List {
						mu := guardName(fld.Doc, fld.Comment)
						if mu == "" {
							continue
						}
						for _, name := range fld.Names {
							if o := p.Info.Defs[name]; o != nil {
								guards[o] = mu
							}
						}
					}
				case *ast.GenDecl:
					if n.Tok != token.VAR {
						return true
					}
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						mu := guardName(vs.Doc, vs.Comment)
						if mu == "" && len(n.Specs) == 1 {
							mu = guardName(n.Doc)
						}
						if mu == "" {
							continue
						}
						for _, name := range vs.Names {
							if o := p.Info.Defs[name]; o != nil {
								guards[o] = mu
							}
						}
					}
				}
				return true
			})
		}
	}
	if len(guards) == 0 {
		return nil
	}

	var out []Diagnostic
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			out = append(out, lockguardFunc(p, fd, guards)...)
		}
	}
	return out
}

// lockguardFunc checks one function declaration (including any nested
// function literals, which inherit the enclosing lock set).
func lockguardFunc(p *Package, fd *ast.FuncDecl, guards map[types.Object]string) []Diagnostic {
	// Locked mutex paths: "e.statsMu", "q.mu", or bare "datasetCacheMu".
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if !isMutex(typeOf(p.Info, sel.X)) {
			return true
		}
		if mu := render(sel.X); mu != "" {
			locked[mu] = true
		}
		return true
	})

	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := fieldObj(p.Info, n)
			if obj == nil {
				return true
			}
			mu, guarded := guards[obj]
			if !guarded {
				return true
			}
			base := render(n.X)
			want := mu
			if base != "" {
				want = base + "." + mu
			}
			if !locked[want] {
				out = append(out, diagAt(p, n.Pos(), "lockguard", fmt.Sprintf(
					"%s is guarded by %s but accessed without %s.Lock/RLock in %s",
					render(n), mu, want, fd.Name.Name)))
			}
		case *ast.Ident:
			// Bare identifiers only cover package-level guarded variables;
			// struct fields are handled above via their SelectorExpr (the
			// Sel ident of a field access also resolves to the field object
			// and must not fire twice).
			v, ok := p.Info.Uses[n].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			if v.Parent() == nil || v.Parent().Parent() != types.Universe {
				return true
			}
			mu, guarded := guards[types.Object(v)]
			if !guarded {
				return true
			}
			if !locked[mu] {
				out = append(out, diagAt(p, n.Pos(), "lockguard", fmt.Sprintf(
					"%s is guarded by %s but accessed without %s.Lock in %s",
					n.Name, mu, mu, fd.Name.Name)))
			}
		}
		return true
	})
	return out
}

func diagAt(p *Package, pos token.Pos, check, msg string) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Check: check, Message: msg}
}
