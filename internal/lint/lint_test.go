package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One loader (and hence one type-checking universe) per test process: the
// stdlib source importer is the expensive part and its cache is shared.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(filepath.Join("..", ".."))
})

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return p
}

// wantRe marks expected diagnostics in fixture sources: "// want <check>"
// on the line the diagnostic is reported at.
var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

type diagKey struct {
	file  string
	line  int
	check string
}

// checkFixture runs analyzers over the named fixture package (through Run,
// so //lint:ignore directives apply) and compares the findings against the
// fixture's // want markers.
func checkFixture(t *testing.T, name string, analyzers ...Analyzer) {
	t.Helper()
	p := fixture(t, name)
	diags := Run([]*Package{p}, analyzers)

	got := map[diagKey]int{}
	for _, d := range diags {
		got[diagKey{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check}]++
	}

	want := map[diagKey]int{}
	ents, err := os.ReadDir(p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(p.Dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want[diagKey{e.Name(), i + 1, m[1]}]++
			}
		}
	}

	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s:%d: want %d %q diagnostic(s), got %d", k.file, k.line, n, k.check, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s:%d: unexpected %q diagnostic (x%d)", k.file, k.line, k.check, n)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

func TestLockGuard(t *testing.T)     { checkFixture(t, "lockguard", LockGuard{}) }
func TestAtomicMix(t *testing.T)     { checkFixture(t, "atomicmix", AtomicMix{}) }
func TestGoroutineLeak(t *testing.T) { checkFixture(t, "goroutineleak", GoroutineLeak{}) }
func TestLockCopy(t *testing.T)      { checkFixture(t, "lockcopy", LockCopy{}) }

// The v2 interprocedural rules: *Locked helper obligations propagate to
// callers, guarded aliases must not outlive the lock region, WaitGroup
// Add/Wait discipline, try-send drop accounting, and the transitive
// zero-allocation prover.
func TestLockGuardHelpers(t *testing.T) { checkFixture(t, "lockedhelper", LockGuard{}) }
func TestLockEscape(t *testing.T)       { checkFixture(t, "lockescape", LockEscape{}) }
func TestWaitGroup(t *testing.T)        { checkFixture(t, "waitgroup", WaitGroupCheck{}) }
func TestChanDrop(t *testing.T)         { checkFixture(t, "chandrop", ChanDrop{}) }
func TestNoAlloc(t *testing.T)          { checkFixture(t, "noalloc", NoAlloc{}) }

func TestRangeDeterminism(t *testing.T) {
	checkFixture(t, "rangedeterminism", RangeDeterminism{})
}

// A path-scoped RangeDeterminism must not fire on packages outside its
// configured suffix list.
func TestRangeDeterminismScoped(t *testing.T) {
	p := fixture(t, "rangedeterminism")
	diags := Run([]*Package{p}, []Analyzer{RangeDeterminism{Paths: []string{"internal/query"}}})
	if len(diags) != 0 {
		t.Fatalf("scoped analyzer fired outside its paths: %v", diags)
	}
}

func TestIgnoreDirective(t *testing.T) { checkFixture(t, "ignore", LockGuard{}) }

// Strict-ignore mode turns suppression hygiene into findings: a directive
// naming an unknown check and a directive that no longer suppresses
// anything both fail the run, while a plain run stays silent.
func TestStrictIgnores(t *testing.T) {
	p := fixture(t, "staleignore")
	if diags := Run([]*Package{p}, []Analyzer{LockGuard{}}); len(diags) != 0 {
		t.Fatalf("non-strict run should be silent, got %v", diags)
	}
	diags, infos := RunAll([]*Package{p}, []Analyzer{LockGuard{}}, Options{StrictIgnores: true})
	if len(diags) != 2 {
		t.Fatalf("want 2 strict-ignore diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "ignore" {
			t.Errorf("want check %q, got %q: %s", "ignore", d.Check, d)
		}
	}
	if len(infos) != 2 {
		t.Fatalf("want 2 inventoried directives, got %d", len(infos))
	}
	for _, inf := range infos {
		if inf.Matched != 0 {
			t.Errorf("directive at %s suppressed %d finding(s); the fixture should have none", inf.Pos, inf.Matched)
		}
	}
}

// TestNoAllocPinsHotPath asserts the //paracosm:noalloc directive sits
// directly on every function the runtime allocation guards measure
// (TestProcessUpdateAllocations, TestKernelZeroAllocs), so the static
// prover and the runtime guard pin the same set.
func TestNoAllocPinsHotPath(t *testing.T) {
	pins := map[string][]string{
		"../core/engine.go": {"processUpdate", "findPhase"},
		"../graph/graph.go": {"NeighborsWithLabel", "DegreeWithLabel"},
		"../graph/intersect.go": {
			"SearchNeighbors", "FindInNeighbors", "AdvanceNeighbors",
			"SearchIDs", "AdvanceIDs",
			"IntersectNeighborIDs", "IntersectIDsNeighbors", "IntersectIDs",
		},
		"../graph/footprint.go": {"Footprint", "labelRelevant"},
		"../obs/stage.go":       {"Observe", "Start", "Mark", "Lap"},
		"../obs/tracer.go":      {"ServerEvent", "Stage"},
	}
	for file, fns := range pins {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		lines := strings.Split(string(data), "\n")
		for _, fn := range fns {
			found := false
			for i, line := range lines {
				if !strings.HasPrefix(line, "func ") || !strings.Contains(line, fn+"(") {
					continue
				}
				found = true
				if i == 0 || strings.TrimSpace(lines[i-1]) != "//paracosm:noalloc" {
					t.Errorf("%s: %s is not pinned: the line above its declaration must be //paracosm:noalloc", file, fn)
				}
				break
			}
			if !found {
				t.Errorf("%s: pinned function %s not found; update the pin list", file, fn)
			}
		}
	}
}

// TestRepoClean is the self-hosting gate: the full default suite over the
// whole module must be silent (any intentional violation carries a
// //lint:ignore annotation in-source).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern resolution is broken", len(pkgs))
	}
	// The observability layer's ring/histogram mutexes and the serving
	// layer's per-connection goroutines carry `// guarded by` annotations
	// and join-via-Close spawns; make sure the gate actually sees both
	// packages rather than silently passing on a load failure.
	for _, path := range []string{"paracosm/internal/obs", "paracosm/internal/server", "paracosm/internal/concurrent", "paracosm/internal/wal"} {
		found := false
		for _, p := range pkgs {
			if p.Path == path {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s not among loaded packages; the analyzers do not cover it", path)
		}
	}
	diags, infos := RunAll(pkgs, DefaultAnalyzers(), Options{StrictIgnores: true})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	// Every shipped //lint:ignore must earn its keep: strict mode already
	// failed above on stale ones, so just log the inventory for the record.
	for _, inf := range infos {
		t.Logf("directive: %s //lint:ignore %s (%s) — suppressed %d", inf.Pos, inf.Check, inf.Reason, inf.Matched)
	}
}
