package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("paracosm/internal/graph") or fixture tag
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module using only the
// standard library: module packages are parsed from source and type-checked
// recursively; standard-library imports are resolved with the stdlib
// "source" importer. Test files (_test.go) are excluded — the invariants
// paracosmvet enforces live in production code, and external test packages
// would need a second type-checking universe.
type Loader struct {
	ModRoot string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod

	fset  *token.FileSet
	cache map[string]*loadResult
	std   types.Importer
	sizes types.Sizes
}

type loadResult struct {
	pkg *Package
	err error
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader creates a loader rooted at the module directory containing
// go.mod. Cgo is disabled for file selection so the pure-Go variants of
// standard-library packages are type-checked.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root %s: %w", abs, err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &Loader{
		ModRoot: abs,
		ModPath: string(m[1]),
		fset:    fset,
		cache:   map[string]*loadResult{},
		std:     importer.ForCompiler(fset, "source", nil),
		sizes:   sizes,
	}, nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source; "unsafe" and the standard library are delegated.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.loadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir, caching by import path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if r, ok := l.cache[path]; ok {
		return r.pkg, r.err
	}
	// Mark in-flight to surface import cycles as errors instead of hanging.
	l.cache[path] = &loadResult{err: fmt.Errorf("lint: import cycle through %s", path)}
	pkg, err := l.check(dir, path)
	l.cache[path] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

// LoadDir loads a single directory as a package (used by fixture tests).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	return l.loadDir(dir, path)
}

func (l *Loader) check(dir, path string) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l, Sizes: l.sizes}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goSources lists the non-test Go files of dir in sorted order, skipping
// hidden/underscore files and files opting out via a "//go:build ignore"
// constraint.
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if buildIgnored(data) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

var buildIgnoreRe = regexp.MustCompile(`(?m)^//go:build\s+ignore\s*$`)

func buildIgnored(src []byte) bool {
	// Build constraints must appear before the package clause; checking the
	// first 1 KiB is enough in practice.
	head := src
	if len(head) > 1024 {
		head = head[:1024]
	}
	return buildIgnoreRe.Match(head)
}

// LoadPatterns resolves go-tool-style patterns ("./...", "./internal/graph",
// "dir/...") into loaded packages. Directories named "testdata" and hidden
// directories are skipped during recursive walks.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "all" {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goSources(p); err == nil && len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: directory %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}
