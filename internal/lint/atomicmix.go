package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags mixed atomic / non-atomic access: once a field or
// package-level variable is passed by address to any sync/atomic function
// (atomic.AddInt64(&x.f, 1), atomic.LoadUint32(&n), ...), every other
// access to the same object must also go through sync/atomic. Mixed access
// defeats the memory-ordering guarantees and is invisible to go vet and,
// on many interleavings, to the race detector. Typed atomics
// (atomic.Int64 & friends) are immune by construction and never flagged.
type AtomicMix struct{}

func (AtomicMix) Name() string { return "atomicmix" }

func (AtomicMix) Check(pkgs []*Package) []Diagnostic {
	// Phase 1: every object whose address escapes into a sync/atomic call,
	// plus the exact AST nodes of those sanctioned accesses.
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[ast.Expr]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ipkg := pkgNameOf(p.Info, sel.X)
				if ipkg == nil || ipkg.Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if obj := accessedObj(p.Info, un.X); obj != nil {
						atomicObjs[obj] = true
						sanctioned[un.X] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Phase 2: any other access to those objects is a violation.
	var out []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok || sanctioned[e] {
					return true
				}
				switch e := e.(type) {
				case *ast.SelectorExpr:
					v := fieldObj(p.Info, e)
					if v == nil {
						return true
					}
					if atomicObjs[v] {
						out = append(out, diagAt(p, e.Pos(), "atomicmix", fmt.Sprintf(
							"%s is accessed with sync/atomic elsewhere; this plain access races with it", render(e))))
						return false // don't re-flag via the Sel ident
					}
				case *ast.Ident:
					v, ok := p.Info.Uses[e].(*types.Var)
					if !ok || v.IsField() {
						return true
					}
					if atomicObjs[v] {
						out = append(out, diagAt(p, e.Pos(), "atomicmix", fmt.Sprintf(
							"%s is accessed with sync/atomic elsewhere; this plain access races with it", e.Name)))
					}
				}
				return true
			})
		}
	}
	return out
}

// accessedObj resolves the variable object behind &expr arguments: plain
// identifiers and struct-field selections.
func accessedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return accessedObj(info, e.X)
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v := fieldObj(info, e); v != nil {
			return v
		}
	}
	return nil
}
