package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RangeDeterminism flags `for range` over map values in packages on the
// result-reporting and matching-order code paths. Go randomizes map
// iteration order, so a map range that feeds match output, candidate
// ordering, or statistics aggregation makes runs non-reproducible — the
// cross-check harness and the paper's experiment tables both depend on
// determinism. The diagnostic is suppressed when the enclosing function
// visibly sorts (a call into sort or slices), which is the idiomatic fix:
// collect keys, sort, then iterate.
type RangeDeterminism struct {
	// Paths restricts the analyzer to packages whose import path ends with
	// one of these suffixes. Empty means every package (fixture tests).
	Paths []string
}

func (RangeDeterminism) Name() string { return "rangedeterminism" }

func (r RangeDeterminism) applies(p *Package) bool {
	if len(r.Paths) == 0 {
		return true
	}
	for _, s := range r.Paths {
		if p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
			return true
		}
	}
	return false
}

func (r RangeDeterminism) Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		if !r.applies(p) {
			continue
		}
		for _, fd := range funcDecls(p) {
			sorts := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if ipkg := pkgNameOf(p.Info, sel.X); ipkg != nil {
					if ipkg.Path() == "sort" || ipkg.Path() == "slices" {
						sorts = true
						return false
					}
				}
				return true
			})
			if sorts {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := typeOf(p.Info, rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				out = append(out, diagAt(p, rs.Pos(), "rangedeterminism",
					"map iteration order is randomized; sort the keys (or the collected values) in "+
						fd.Name.Name+" to keep results deterministic"))
				return true
			})
		}
	}
	return out
}
