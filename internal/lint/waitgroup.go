package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// WaitGroupCheck enforces sync.WaitGroup Add/Done/Wait discipline, the
// contract behind the serving layer's connWG shutdown shape:
//
//  1. Add must happen before `go`, not inside the spawned goroutine: a
//     goroutine that Adds itself to the group that joins it races Wait —
//     Wait can observe the counter before the goroutine has run. Detected
//     when a go'd body both Adds and Dones the same WaitGroup path at its
//     own nesting level.
//
//  2. Done must be deferred in any function with an early-return path: a
//     plain wg.Done() after a conditional return is skipped on that path
//     and Wait hangs forever.
//
//  3. When a struct-field WaitGroup is Add-ed in one function and Wait-ed
//     in another, the Add/Wait race window is real (the PR-5 connWG bug:
//     Add racing a concurrent Wait during shutdown). The field must carry a
//     "// Add serialized by <x>" annotation. If <x> names a sibling mutex
//     field, every Add site is verified to sit inside that mutex's lock
//     region; any other token ("construction", a method name) is a trusted,
//     documented assertion.
type WaitGroupCheck struct{}

func (WaitGroupCheck) Name() string { return "waitgroup" }

var serializedRe = regexp.MustCompile(`Add serialized by\s+([A-Za-z_][A-Za-z0-9_.]*)`)

// wgField is one sync.WaitGroup struct field with its annotation and the
// mutex fields declared alongside it.
type wgField struct {
	pkg     *Package
	pos     ast.Node
	name    string
	ann     string // "" when unannotated
	mutexes map[string]bool
}

// wgSite is one Add/Wait call on a WaitGroup struct field.
type wgSite struct {
	pkg  *Package
	fd   *ast.FuncDecl
	call *ast.CallExpr
	base string // receiver chain of the field access ("s" for s.connWG.Add)
}

func (WaitGroupCheck) Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic

	// Index WaitGroup struct fields with their annotations and sibling
	// mutexes (for rule 3).
	fields := map[types.Object]*wgField{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				mutexes := map[string]bool{}
				for _, fld := range st.Fields.List {
					if len(fld.Names) == 0 {
						continue
					}
					if o := p.Info.Defs[fld.Names[0]]; o != nil && isMutex(o.Type()) {
						for _, nm := range fld.Names {
							mutexes[nm.Name] = true
						}
					}
				}
				for _, fld := range st.Fields.List {
					for _, nm := range fld.Names {
						o := p.Info.Defs[nm]
						if o == nil || !isWaitGroup(o.Type()) {
							continue
						}
						wf := &wgField{pkg: p, pos: nm, name: nm.Name, mutexes: mutexes}
						for _, g := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
							if g == nil {
								continue
							}
							if m := serializedRe.FindStringSubmatch(g.Text()); m != nil {
								wf.ann = m[1]
							}
						}
						fields[o] = wf
					}
				}
				return true
			})
		}
	}

	adds := map[types.Object][]wgSite{}
	waits := map[types.Object][]wgSite{}
	seenAddInGo := map[string]bool{} // dedupe: a method go'd from several sites

	for _, p := range pkgs {
		decls := map[types.Object]*ast.FuncDecl{}
		for _, fd := range funcDecls(p) {
			if o := p.Info.Defs[fd.Name]; o != nil {
				decls[o] = fd
			}
		}
		for _, fd := range funcDecls(p) {
			// Rule 1: Add inside the goroutine it joins.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var body *ast.BlockStmt
				switch fun := g.Call.Fun.(type) {
				case *ast.FuncLit:
					body = fun.Body
				case *ast.Ident:
					if d := decls[p.Info.Uses[fun]]; d != nil {
						body = d.Body
					}
				case *ast.SelectorExpr:
					if d := decls[p.Info.Uses[fun.Sel]]; d != nil {
						body = d.Body
					}
				}
				if body != nil {
					for _, d := range addInsideGoroutine(p, body) {
						key := d.Pos.String()
						if !seenAddInGo[key] {
							seenAddInGo[key] = true
							out = append(out, d)
						}
					}
				}
				return true
			})

			// Rule 2: non-deferred Done with early returns, checked per
			// nesting level (the function body and each literal's body).
			out = append(out, nonDeferredDone(p, fd.Name.Name, fd.Body)...)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, nonDeferredDone(p, fd.Name.Name+" literal", lit.Body)...)
				}
				return true
			})

			// Rule 3 site collection: Add/Wait on struct fields.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Wait") {
					return true
				}
				if !isWaitGroup(typeOf(p.Info, sel.X)) {
					return true
				}
				fsel, ok := sel.X.(*ast.SelectorExpr)
				if !ok {
					return true // local or package-level wg: same-scope join
				}
				obj := fieldObj(p.Info, fsel)
				if obj == nil || fields[types.Object(obj)] == nil {
					return true
				}
				site := wgSite{pkg: p, fd: fd, call: call, base: render(fsel.X)}
				if sel.Sel.Name == "Add" {
					adds[obj] = append(adds[obj], site)
				} else {
					waits[obj] = append(waits[obj], site)
				}
				return true
			})
		}
	}

	// Rule 3: cross-function Add/Wait needs the serialization annotation.
	for obj, wf := range fields {
		as, ws := adds[obj], waits[obj]
		if len(as) == 0 || len(ws) == 0 {
			continue
		}
		cross := false
		for _, a := range as {
			for _, w := range ws {
				if a.fd != w.fd {
					cross = true
				}
			}
		}
		if !cross {
			continue
		}
		if wf.ann == "" {
			out = append(out, diagAt(wf.pkg, wf.pos.Pos(), "waitgroup", fmt.Sprintf(
				"%s.Add (%s) and Wait (%s) happen in different functions: annotate the field "+
					"\"// Add serialized by <mutex or mechanism>\" once the race window is closed",
				wf.name, as[0].fd.Name.Name, ws[0].fd.Name.Name)))
			continue
		}
		if wf.mutexes[wf.ann] {
			// The annotation names a sibling mutex: prove every Add site
			// sits inside that mutex's lock region.
			for _, a := range as {
				want := wf.ann
				if a.base != "" {
					want = a.base + "." + wf.ann
				}
				regions := lockRegions(a.pkg, a.fd.Body)
				if !heldAt(regions, want, a.call.Pos()) {
					out = append(out, diagAt(a.pkg, a.call.Pos(), "waitgroup", fmt.Sprintf(
						"%s.Add outside the %s region in %s, but the field says \"Add serialized by %s\"",
						wf.name, want, a.fd.Name.Name, wf.ann)))
				}
			}
		}
	}
	return out
}

// addInsideGoroutine reports Add calls in a go'd body whose WaitGroup is
// also Done-d at the same nesting level — the goroutine is adding itself to
// the group that joins it.
func addInsideGoroutine(p *Package, body *ast.BlockStmt) []Diagnostic {
	type site struct {
		pos  ast.Node
		path string
	}
	var addSites []site
	dones := map[string]bool{}
	walkSameLevel(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if sel.Sel.Name != "Add" && sel.Sel.Name != "Done" {
			return
		}
		if !isWaitGroup(typeOf(p.Info, sel.X)) {
			return
		}
		path := render(sel.X)
		if path == "" {
			return
		}
		if sel.Sel.Name == "Add" {
			addSites = append(addSites, site{pos: call, path: path})
		} else {
			dones[path] = true
		}
	})
	var out []Diagnostic
	for _, a := range addSites {
		if dones[a.path] {
			out = append(out, diagAt(p, a.pos.Pos(), "waitgroup", fmt.Sprintf(
				"%s.Add inside the goroutine it joins: Wait can run before this executes — Add before the go statement",
				a.path)))
		}
	}
	return out
}

// nonDeferredDone reports plain (non-deferred) wg.Done() calls in a body
// that also has return statements at the same nesting level: any return
// before the Done skips it and Wait hangs.
func nonDeferredDone(p *Package, where string, body *ast.BlockStmt) []Diagnostic {
	hasReturn := false
	var plainDones []*ast.CallExpr
	walkSameLevel(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			hasReturn = true
		case *ast.DeferStmt:
			// deferred Done is the sanctioned form; also don't let the
			// nested CallExpr below see it.
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return
			}
			if !isWaitGroup(typeOf(p.Info, sel.X)) {
				return
			}
			plainDones = append(plainDones, call)
		}
	})
	if !hasReturn {
		return nil
	}
	var out []Diagnostic
	for _, call := range plainDones {
		out = append(out, diagAt(p, call.Pos(), "waitgroup", fmt.Sprintf(
			"wg.Done may be skipped by an early return in %s: defer it", where)))
	}
	return out
}

// walkSameLevel visits every node in body except those inside nested
// function literals, which run in a different goroutine/activation.
func walkSameLevel(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
