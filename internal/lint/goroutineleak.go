package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak checks that every goroutine spawn is joinable by its
// spawner. Two spawn shapes are analyzed:
//
//   - `go func literal`: the body must call Done (directly or deferred) on
//     a sync.WaitGroup that saw an Add call in the enclosing function, or
//     send on / close a channel, so the spawner has a handle to wait on.
//
//   - `go x.method(...)` / `go fn(...)` resolving to a declaration in the
//     same package: the callee's body is inspected the same way. This is
//     the join-via-Close pattern of persistent worker pools
//     (concurrent.Pool): the constructor Add-s a WaitGroup per spawned
//     worker, the worker method defers Done, and Close Wait-s — the
//     goroutines are long-lived but still joined.
//
// Spawns of functions declared outside the package cannot be inspected and
// are skipped. Fire-and-forget goroutines silently outlive engine runs,
// leak under repeated Init/Run cycles, and make Stats racy; intentional
// daemons must say so with //lint:ignore goroutineleak <reason>.
type GoroutineLeak struct{}

func (GoroutineLeak) Name() string { return "goroutineleak" }

func (GoroutineLeak) Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		// Index the package's function/method declarations by type object
		// so `go x.method()` spawns resolve to their bodies.
		decls := map[types.Object]*ast.FuncDecl{}
		for _, fd := range funcDecls(p) {
			if o := p.Info.Defs[fd.Name]; o != nil {
				decls[o] = fd
			}
		}
		for _, fd := range funcDecls(p) {
			// WaitGroup bases with an Add call anywhere in the spawning
			// function (flow-insensitive; Add-after-go is pathological
			// enough not to special-case).
			added := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				if !isWaitGroup(typeOf(p.Info, sel.X)) {
					return true
				}
				if b := render(sel.X); b != "" {
					added[b] = true
				}
				return true
			})

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var body *ast.BlockStmt
				switch fun := g.Call.Fun.(type) {
				case *ast.FuncLit:
					body = fun.Body
				case *ast.Ident:
					if d := decls[p.Info.Uses[fun]]; d != nil {
						body = d.Body
					} else {
						return true // out-of-package function: uncheckable
					}
				case *ast.SelectorExpr:
					if d := decls[p.Info.Uses[fun.Sel]]; d != nil {
						body = d.Body
					} else {
						return true // out-of-package method: uncheckable
					}
				default:
					return true
				}
				if !joinable(p, body, added) {
					out = append(out, diagAt(p, g.Pos(), "goroutineleak",
						"goroutine has no join: call wg.Done for a WaitGroup Add-ed in "+
							fd.Name.Name+", or send on/close a channel the spawner can observe"))
				}
				return true
			})
		}
	}
	return out
}

// joinable reports whether the goroutine body signals completion: a Done
// call on a WaitGroup that the spawning function Add-ed, a channel send,
// or a close call.
func joinable(p *Package, body *ast.BlockStmt, added map[string]bool) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			ok = true
		case *ast.CallExpr:
			if id, isIdent := n.Fun.(*ast.Ident); isIdent && id.Name == "close" && len(n.Args) == 1 {
				ok = true
				return false
			}
			sel, isSel := n.Fun.(*ast.SelectorExpr)
			if !isSel || sel.Sel.Name != "Done" {
				return true
			}
			if !isWaitGroup(typeOf(p.Info, sel.X)) {
				return true
			}
			// The WaitGroup must be the one the spawner Add-ed. A closure
			// (or a method on the same receiver name) sees it under the
			// same rendered path; a parameter-passed WaitGroup (different
			// name) is accepted only when the spawner Add-ed some
			// WaitGroup at all.
			if b := render(sel.X); added[b] || len(added) > 0 {
				ok = true
			}
		}
		return true
	})
	return ok
}
