package lint

import (
	"go/ast"
)

// GoroutineLeak checks that every `go func literal` is joinable by its
// spawner: the body must either call Done (directly or deferred) on a
// sync.WaitGroup that saw an Add call in the enclosing function, or
// send on / close a channel, so the spawner has a handle to wait on.
// Fire-and-forget goroutines silently outlive engine runs, leak under
// repeated Init/Run cycles, and make Stats racy; intentional daemons must
// say so with //lint:ignore goroutineleak <reason>.
type GoroutineLeak struct{}

func (GoroutineLeak) Name() string { return "goroutineleak" }

func (GoroutineLeak) Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			// WaitGroup bases with an Add call anywhere in the spawning
			// function (flow-insensitive; Add-after-go is pathological
			// enough not to special-case).
			added := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				if !isWaitGroup(typeOf(p.Info, sel.X)) {
					return true
				}
				if b := render(sel.X); b != "" {
					added[b] = true
				}
				return true
			})

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				if !joinable(p, fl, added) {
					out = append(out, diagAt(p, g.Pos(), "goroutineleak",
						"go func literal has no join: call wg.Done for a WaitGroup Add-ed in "+
							fd.Name.Name+", or send on/close a channel the spawner can observe"))
				}
				return true
			})
		}
	}
	return out
}

// joinable reports whether the goroutine body signals completion: a Done
// call on a WaitGroup that the spawning function Add-ed, a channel send,
// or a close call.
func joinable(p *Package, fl *ast.FuncLit, added map[string]bool) bool {
	ok := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			ok = true
		case *ast.CallExpr:
			if id, isIdent := n.Fun.(*ast.Ident); isIdent && id.Name == "close" && len(n.Args) == 1 {
				ok = true
				return false
			}
			sel, isSel := n.Fun.(*ast.SelectorExpr)
			if !isSel || sel.Sel.Name != "Done" {
				return true
			}
			if !isWaitGroup(typeOf(p.Info, sel.X)) {
				return true
			}
			// The WaitGroup must be the one the spawner Add-ed. A closure
			// captures it under the same name; a parameter-passed WaitGroup
			// (different name) is accepted only when the spawner Add-ed
			// some WaitGroup at all.
			if b := render(sel.X); added[b] || len(added) > 0 {
				ok = true
			}
		}
		return true
	})
	return ok
}
