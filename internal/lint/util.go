package lint

import (
	"go/ast"
	"go/types"
)

// render produces a stable textual form of simple receiver/selector chains
// ("e", "q.eng", "(*p).stats"). It returns "" for expressions too dynamic
// to compare syntactically (calls, literals, arbitrary index bases).
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := render(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return render(e.X)
	case *ast.StarExpr:
		return render(e.X)
	}
	return ""
}

// typeOf resolves the static type of e, falling back to Uses/Defs for bare
// identifiers (go/types does not record every ident in Info.Types).
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if o := info.Uses[id]; o != nil {
			return o.Type()
		}
		if o := info.Defs[id]; o != nil {
			return o.Type()
		}
	}
	return nil
}

// valueType returns the type of e only when e denotes a value (not a type
// expression, package name, or builtin).
func valueType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		if !tv.IsValue() {
			return nil
		}
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v.Type()
		}
	}
	return nil
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedIn reports whether t (after unaliasing) is the named type pkg.name.
func namedIn(t types.Type, pkgPath string, names ...string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly behind
// one pointer).
func isMutex(t types.Type) bool {
	return t != nil && namedIn(deref(t), "sync", "Mutex", "RWMutex")
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind one
// pointer).
func isWaitGroup(t types.Type) bool {
	return t != nil && namedIn(deref(t), "sync", "WaitGroup")
}

// fieldObj returns the field object selected by sel when sel is a plain
// struct-field access, nil otherwise.
func fieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// pkgNameOf returns the imported package if e is a package qualifier ident
// (e.g. the "atomic" in atomic.AddInt64), nil otherwise.
func pkgNameOf(info *types.Info, e ast.Expr) *types.Package {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// containsLock reports whether a value of type t embeds a sync.Mutex or
// sync.RWMutex by value (directly, through struct fields, arrays, or
// instantiated generics). Pointers and interfaces do not propagate: copying
// them is safe.
func containsLock(t types.Type) bool {
	return lockIn(t, map[types.Type]bool{})
}

func lockIn(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return true
			}
		}
		return lockIn(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lockIn(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockIn(t.Elem(), seen)
	}
	return false
}
