package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc statically proves the hot path's zero-allocation contract — the
// property the runtime guards (TestProcessUpdateAllocations,
// TestKernelZeroAllocs) only measure on the inputs they happen to run. A
// function carrying the directive
//
//	//paracosm:noalloc
//
// in its doc comment is checked, transitively through every statically
// resolvable same-module call, for constructs that allocate:
//
//   - function literals (closure capture)
//   - slice/map composite literals, make, new
//   - appends that may grow a fresh slice — the amortized self-append
//     forms `x = append(x, ...)` and `x = append(x[:k], ...)` are allowed,
//     matching the runtime guard's steady-state measurement
//   - string concatenation and string↔[]byte/[]rune conversions
//   - interface boxing of non-pointer concrete arguments at call sites
//   - variadic calls without a ... spread (the argument slice allocates)
//   - go statements (a goroutine allocates its stack)
//   - calls into allocation-happy stdlib packages (fmt, errors, strings,
//     strconv, sort, bytes, regexp, os, io, bufio, log)
//
// Escalation points that intentionally allocate (worker-pool spin-up,
// simulation fallbacks) are fenced off with a
//
//	//paracosm:allocs <reason>
//
// doc directive: the traversal treats them as audited boundaries and does
// not descend. Cold paths inside hot functions (error formatting, panics)
// use the ordinary //lint:ignore noalloc <reason> escape on the offending
// line. Dynamic calls (interface methods, function values) cannot be seen
// statically and are trusted to the runtime guards.
type NoAlloc struct{}

func (NoAlloc) Name() string { return "noalloc" }

// allocDenylist are stdlib packages whose exported API allocates on
// essentially every call.
var allocDenylist = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"sort": true, "bytes": true, "regexp": true, "os": true,
	"io": true, "bufio": true, "log": true,
}

// funcDirective reports whether fd's doc comment carries the given
// //paracosm: directive. Directive comments are excluded from
// CommentGroup.Text, so the raw list is scanned.
func funcDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func (NoAlloc) Check(pkgs []*Package) []Diagnostic {
	ix := declIndex(pkgs)

	type workItem struct {
		site declSite
		root string
	}
	var queue []workItem
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			if funcDirective(fd, "//paracosm:noalloc") {
				queue = append(queue, workItem{site: declSite{pkg: p, decl: fd}, root: fd.Name.Name})
			}
		}
	}

	visited := map[*ast.FuncDecl]bool{}
	reported := map[token.Pos]bool{}
	var out []Diagnostic
	emit := func(p *Package, pos token.Pos, fn, root, desc string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		out = append(out, diagAt(p, pos, "noalloc", fmt.Sprintf(
			"%s in %s (reachable from //paracosm:noalloc root %s)", desc, fn, root)))
	}

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		fd := item.site.decl
		if visited[fd] {
			continue
		}
		visited[fd] = true
		p := item.site.pkg
		fn := fd.Name.Name

		allowedAppends := selfAppends(p, fd.Body)

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				emit(p, n.Pos(), fn, item.root, "function literal allocates a closure")
				return false
			case *ast.GoStmt:
				emit(p, n.Pos(), fn, item.root, "go statement allocates a goroutine")
				return true
			case *ast.CompositeLit:
				if t := typeOf(p.Info, n); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						emit(p, n.Pos(), fn, item.root, "slice literal allocates")
					case *types.Map:
						emit(p, n.Pos(), fn, item.root, "map literal allocates")
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringType(typeOf(p.Info, n.X)) {
					emit(p, n.Pos(), fn, item.root, "string concatenation allocates")
				}
			case *ast.CallExpr:
				if desc := checkCall(p, n, allowedAppends); desc != "" {
					emit(p, n.Pos(), fn, item.root, desc)
					return true
				}
				if site, ok := calleeDecl(p, n, ix); ok {
					if funcDirective(site.decl, "//paracosm:allocs") {
						return true // audited allocation boundary
					}
					if !visited[site.decl] {
						queue = append(queue, workItem{site: site, root: item.root})
					}
				}
			}
			return true
		})
	}
	return out
}

// selfAppends collects append call expressions in the sanctioned amortized
// forms `x = append(x, ...)` and `x = append(x[:k], ...)` (including
// indexed targets like g.byLabel[l]), plus the in-place compaction idiom
// `append(a[:i], a[j:]...)` whose result can never exceed a's capacity.
func selfAppends(p *Package, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	allowed := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isCompaction(p, call) {
			allowed[call] = true
			return true
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			lhs := renderExt(as.Lhs[i])
			if lhs == "" {
				continue
			}
			arg0 := call.Args[0]
			if se, isSlice := arg0.(*ast.SliceExpr); isSlice {
				arg0 = se.X
			}
			if renderExt(arg0) == lhs {
				allowed[call] = true
			}
		}
		return true
	})
	return allowed
}

// isCompaction reports whether call is `append(x[:i], x[j:]...)` — element
// removal compacting within one backing array, which cannot grow it.
func isCompaction(p *Package, call *ast.CallExpr) bool {
	if !isBuiltin(p, call.Fun, "append") || len(call.Args) != 2 || call.Ellipsis == token.NoPos {
		return false
	}
	dst, ok := call.Args[0].(*ast.SliceExpr)
	if !ok {
		return false
	}
	src, ok := call.Args[1].(*ast.SliceExpr)
	if !ok {
		return false
	}
	base := renderExt(dst.X)
	return base != "" && base == renderExt(src.X)
}

// isBuiltin reports whether e resolves to the named predeclared builtin.
func isBuiltin(p *Package, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := p.Info.Uses[id].(*types.Builtin)
	return isB
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// checkCall classifies one call expression; it returns a non-empty
// description when the call itself allocates.
func checkCall(p *Package, call *ast.CallExpr, allowedAppends map[*ast.CallExpr]bool) string {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				return "make allocates"
			case "new":
				return "new allocates"
			case "append":
				if !allowedAppends[call] {
					return "append to a fresh slice allocates; use x = append(x, ...) or x = append(x[:k], ...)"
				}
			}
			return ""
		}
	}

	// Conversions: only the string↔[]byte/[]rune pairs copy.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return ""
		}
		dst, src := tv.Type, typeOf(p.Info, call.Args[0])
		if src == nil {
			return ""
		}
		if isStringType(dst) && isByteOrRuneSlice(src) {
			return "[]byte/[]rune→string conversion allocates"
		}
		if isByteOrRuneSlice(dst) && isStringType(src) {
			return "string→[]byte/[]rune conversion allocates"
		}
		return ""
	}

	// Denylisted stdlib packages.
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		callee = p.Info.Uses[fun.Sel]
	}
	if f, ok := callee.(*types.Func); ok && f.Pkg() != nil && allocDenylist[f.Pkg().Path()] {
		return "call into " + f.Pkg().Path() + " allocates"
	}

	// Signature-driven checks: variadic boxing and interface boxing.
	sig, _ := typeOf(p.Info, call.Fun).(*types.Signature)
	if sig == nil {
		return ""
	}
	np := sig.Params().Len()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		return "variadic call without ... allocates the argument slice"
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= np-1 {
			if s, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok && call.Ellipsis == token.NoPos {
				pt = s.Elem()
			} else if call.Ellipsis != token.NoPos {
				continue
			}
		} else if i < np {
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := typeOf(p.Info, arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := p.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // a pointer fits the interface data word: no allocation
		}
		return "interface boxing of a non-pointer value allocates"
	}
	return ""
}
