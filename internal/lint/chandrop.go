package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// ChanDrop enforces the repo-wide drop-and-count policy: a select statement
// with a default arm that abandons a send (the try-send shape — offerDelta,
// enqueue's reject path, the client's delta demultiplexer) silently loses
// data unless the overflow is counted. Every such select must carry a
//
//	// drop-counted by <counter>
//
// annotation on or near the select, naming a field that the default arm
// actually increments (x.f++, x.f += n, or an atomic x.f.Add(..)). A
// receive-with-default (polling or drain loops) consumes nothing when it
// misses, so it is not a drop site and is not checked.
type ChanDrop struct{}

func (ChanDrop) Name() string { return "chandrop" }

var dropRe = regexp.MustCompile(`drop-counted by\s+([A-Za-z_][A-Za-z0-9_.]*)`)

func (ChanDrop) Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		// Per-file line → annotated counter name.
		for _, f := range p.Files {
			annAt := map[int]string{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if m := dropRe.FindStringSubmatch(c.Text); m != nil {
						annAt[p.Fset.Position(c.Pos()).Line] = m[1]
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectStmt)
				if !ok {
					return true
				}
				var def *ast.CommClause
				hasSend := false
				for _, cl := range sel.Body.List {
					cc := cl.(*ast.CommClause)
					if cc.Comm == nil {
						def = cc
					} else if _, isSend := cc.Comm.(*ast.SendStmt); isSend {
						hasSend = true
					}
				}
				if def == nil || !hasSend {
					return true
				}
				start := p.Fset.Position(sel.Pos()).Line
				end := p.Fset.Position(sel.End()).Line
				counter := ""
				for line := start - 1; line <= end; line++ {
					if c, ok := annAt[line]; ok {
						counter = c
						break
					}
				}
				if counter == "" {
					out = append(out, diagAt(p, sel.Pos(), "chandrop", "select discards a send on default "+
						"without accounting: annotate \"// drop-counted by <counter>\" and increment it in the default arm"))
					return true
				}
				if !incrementsCounter(def, counter) {
					out = append(out, diagAt(p, sel.Pos(), "chandrop", fmt.Sprintf(
						"select is annotated \"drop-counted by %s\" but the default arm never increments %s",
						counter, counter)))
				}
				return true
			})
		}
	}
	return out
}

// incrementsCounter reports whether the default arm bumps the named
// counter: x.f++, x.f += n, or x.f.Add(n) for atomics.
func incrementsCounter(def *ast.CommClause, counter string) bool {
	match := func(e ast.Expr) bool {
		r := renderExt(e)
		if r == "" {
			return false
		}
		return r == counter || hasSuffixPath(r, counter)
	}
	for _, st := range def.Body {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				if n.Tok == token.INC && match(n.X) {
					found = true
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && match(n.Lhs[0]) {
					found = true
				}
			case *ast.CallExpr:
				if s, ok := n.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Add" && match(s.X) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// hasSuffixPath reports whether rendered path r ends in ".suffix" — the
// annotation names the counter field, increments address it through a
// receiver chain ("cn.dropped" matches "dropped").
func hasSuffixPath(r, suffix string) bool {
	return len(r) > len(suffix)+1 && r[len(r)-len(suffix):] == suffix && r[len(r)-len(suffix)-1] == '.'
}
