package algo

import (
	"testing"

	"paracosm/internal/csm"
)

func TestRegistryHasPaperAlgorithms(t *testing.T) {
	want := map[string]bool{"CaLiG": true, "GraphFlow": true, "NewSP": true, "Symbi": true, "TurboFlux": true}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, e := range reg {
		if !want[e.Name] {
			t.Errorf("unexpected entry %q", e.Name)
		}
		if e.New == nil {
			t.Errorf("%s: nil constructor", e.Name)
		}
		var a csm.Algorithm = e.New()
		if a.Name() != e.Name {
			t.Errorf("entry %q constructs algorithm named %q", e.Name, a.Name())
		}
	}
}

func TestRegistryInstancesAreFresh(t *testing.T) {
	e, err := ByName("Symbi")
	if err != nil {
		t.Fatal(err)
	}
	if e.New() == e.New() {
		t.Fatal("ByName returns shared instances")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestCaLiGIgnoresELabelsFlag(t *testing.T) {
	e, err := ByName("CaLiG")
	if err != nil {
		t.Fatal(err)
	}
	if !e.IgnoreELabels {
		t.Fatal("CaLiG entry must flag IgnoreELabels")
	}
	for _, name := range []string{"GraphFlow", "NewSP", "Symbi", "TurboFlux"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.IgnoreELabels {
			t.Errorf("%s should respect edge labels", name)
		}
	}
}
