package dpindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// pathQuery builds the labeled path 0(a)-1(b)-2(c).
func pathQuery(t *testing.T) *query.Graph {
	t.Helper()
	q := query.MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return q
}

// pathData builds a data path v0(a)-v1(b)-v2(c) plus a stray vertex v3(b).
func pathData() *graph.Graph {
	g := graph.New(4)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(1)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	return g
}

func TestBuildPathCandidates(t *testing.T) {
	q := pathQuery(t)
	g := pathData()
	ix := New(g, q, DAGSkeleton(q.BuildDAG()), false)
	// v0 is the only candidate for u0, v1 for u1, v2 for u2; v3 (label b,
	// isolated) must be excluded by the degree test and lack of support.
	cases := []struct {
		u    query.VertexID
		v    graph.VertexID
		want bool
	}{
		{0, 0, true}, {1, 1, true}, {2, 2, true},
		{1, 3, false}, {0, 1, false}, {2, 0, false},
	}
	for _, c := range cases {
		if got := ix.Candidate(c.u, c.v); got != c.want {
			t.Errorf("Candidate(u%d, v%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if ix.CandidateCount(1) != 1 {
		t.Errorf("CandidateCount(u1) = %d, want 1", ix.CandidateCount(1))
	}
}

func TestTreeSkeletonWeakerThanDAG(t *testing.T) {
	// Triangle query: the DAG covers all 3 edges, the spanning tree only
	// 2 — so a data path (no closing edge) fools the tree index but not
	// the DAG index.
	q := query.MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	g := graph.New(3) // open path: labels a-b-c but no c-a edge
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	// Degrees in the triangle query are all 2, so the static filter alone
	// rejects everything here; add parallel support edges to give degree 2.
	g.AddVertex(1) // v3 label b
	g.AddVertex(2) // v4 label c
	g.AddEdge(0, 3, 0)
	g.AddEdge(3, 4, 0)
	g.AddEdge(4, 2, 0)
	g.AddEdge(1, 4, 0)

	dag := New(g, q, DAGSkeleton(q.BuildDAG()), false)
	tree := New(g, q, TreeSkeleton(q, q.BuildSpanningTree()), false)
	dagCands, treeCands := 0, 0
	for u := 0; u < 3; u++ {
		dagCands += dag.CandidateCount(query.VertexID(u))
		treeCands += tree.CandidateCount(query.VertexID(u))
	}
	if dagCands > treeCands {
		t.Fatalf("DAG candidates (%d) should not exceed tree candidates (%d)", dagCands, treeCands)
	}
}

func TestEdgeLabelsInSkeleton(t *testing.T) {
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 7)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	g := graph.New(2)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddEdge(0, 1, 3) // wrong edge label
	ix := New(g, q, DAGSkeleton(q.BuildDAG()), false)
	if ix.Candidate(0, 0) || ix.Candidate(1, 1) {
		t.Fatal("edge-label mismatch not filtered")
	}
	ixIgnore := New(g, q, DAGSkeleton(q.BuildDAG()), true)
	if !ixIgnore.Candidate(0, 0) || !ixIgnore.Candidate(1, 1) {
		t.Fatal("ignoreELabels did not bypass edge labels")
	}
}

func TestIncrementalInsertDeleteMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 18
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 30; i++ {
			g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(2)))
		}
		labels := []graph.Label{0, 1, 2, 1}
		q := query.MustNew(labels)
		q.MustAddEdge(0, 1, 0)
		q.MustAddEdge(1, 2, 0)
		q.MustAddEdge(2, 3, 1)
		q.MustAddEdge(1, 3, 0)
		if q.Finalize() != nil {
			return false
		}
		for _, sk := range []*Skeleton{DAGSkeleton(q.BuildDAG()), TreeSkeleton(q, q.BuildSpanningTree())} {
			ix := New(g.Clone(), q, sk, false)
			gg := ixGraph(ix)
			for step := 0; step < 25; step++ {
				u := graph.VertexID(rng.Intn(n))
				v := graph.VertexID(rng.Intn(n))
				var upd stream.Update
				if gg.HasEdge(u, v) {
					upd = stream.Update{Op: stream.DeleteEdge, U: u, V: v}
				} else if u != v {
					upd = stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: graph.Label(rng.Intn(2))}
				} else {
					continue
				}
				if upd.Apply(gg) != nil {
					continue
				}
				ix.ApplyUpdate(upd)
				if !ix.ConsistentWithRebuild() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// ixGraph exposes the index's graph for the property test above.
func ixGraph(ix *Index) *graph.Graph { return ix.g }

// TestWouldAffectSoundness: when WouldAffect returns false, applying the
// update and incrementally maintaining must leave the index bit-identical.
func TestWouldAffectSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 28; i++ {
			g.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 0)
		}
		q := query.MustNew([]graph.Label{0, 1, 2})
		q.MustAddEdge(0, 1, 0)
		q.MustAddEdge(1, 2, 0)
		if q.Finalize() != nil {
			return false
		}
		ix := New(g, q, DAGSkeleton(q.BuildDAG()), false)
		for step := 0; step < 20; step++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			var upd stream.Update
			if g.HasEdge(u, v) {
				upd = stream.Update{Op: stream.DeleteEdge, U: u, V: v}
			} else if u != v {
				upd = stream.Update{Op: stream.AddEdge, U: u, V: v}
			} else {
				continue
			}
			affects := ix.WouldAffect(upd)
			before := snapshot(ix)
			if upd.Apply(g) != nil {
				continue
			}
			ix.ApplyUpdate(upd)
			if !affects {
				after := snapshot(ix)
				if before != after {
					return false // claimed no effect but index changed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func snapshot(ix *Index) string {
	out := make([]byte, 0, 256)
	for u := range ix.d1 {
		for v := range ix.d1[u] {
			b := byte(0)
			if ix.d1[u][v] {
				b |= 1
			}
			if ix.d2[u][v] {
				b |= 2
			}
			out = append(out, b)
		}
	}
	return string(out)
}

func TestVertexOpsGrowIndex(t *testing.T) {
	q := pathQuery(t)
	g := pathData()
	ix := New(g, q, DAGSkeleton(q.BuildDAG()), false)
	upd := stream.Update{Op: stream.AddVertex, VLabel: 1}
	if ix.WouldAffect(upd) {
		t.Fatal("AddVertex should never affect the index")
	}
	if err := upd.Apply(g); err != nil {
		t.Fatal(err)
	}
	ix.ApplyUpdate(upd)
	nv := graph.VertexID(g.NumVertices() - 1)
	if ix.Candidate(1, nv) {
		t.Fatal("fresh isolated vertex cannot be a candidate")
	}
	// An edge touching the new vertex must now be indexable.
	e := stream.Update{Op: stream.AddEdge, U: 0, V: nv}
	if err := e.Apply(g); err != nil {
		t.Fatal(err)
	}
	ix.ApplyUpdate(e)
	if !ix.ConsistentWithRebuild() {
		t.Fatal("index inconsistent after edge to grown vertex")
	}
}
