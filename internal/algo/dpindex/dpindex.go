// Package dpindex implements a dynamically maintained bidirectional
// dynamic-programming candidate index over a directed acyclic "skeleton"
// of the query graph. It generalizes the two classic CSM auxiliary data
// structures the ParaCOSM paper parallelizes:
//
//   - TurboFlux's DCG: the skeleton is a BFS spanning tree, candidate
//     states correspond to the NULL -> IMPLICIT -> EXPLICIT transitions
//     (implicit = top-down support D1, explicit = D1 plus bottom-up
//     support D2);
//   - Symbi's DCS: the skeleton is the full BFS DAG of the query, and
//     D1/D2 are exactly Symbi's top-down and bottom-up dynamic programs.
//
// For every (query vertex u, data vertex v) the index maintains
//
//	D1[u][v] = static(u,v) AND for every skeleton parent p of u there is a
//	           neighbor w of v with a label-compatible edge and D1[p][w]
//	D2[u][v] = static(u,v) AND for every skeleton child c of u there is a
//	           neighbor w of v with a label-compatible edge and D2[c][w]
//
// where static(u,v) checks vertex label and degree. v is a candidate of u
// iff D1 and D2 both hold. Updates are maintained incrementally by a
// worklist fixpoint seeded at the updated edge's endpoints; the dependency
// structure is acyclic (D1 depends on parents only, D2 on children only),
// so the fixpoint terminates.
package dpindex

import (
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Skeleton is the DAG the dynamic programs run over.
type Skeleton struct {
	Parents  [][]query.Neighbor // per query vertex, incoming skeleton edges
	Children [][]query.Neighbor // per query vertex, outgoing skeleton edges
	TopoOrd  []query.VertexID   // topological order, roots first
}

// TreeSkeleton builds a skeleton from a spanning tree (TurboFlux).
func TreeSkeleton(q *query.Graph, t *query.SpanningTree) *Skeleton {
	n := q.NumVertices()
	s := &Skeleton{
		Parents:  make([][]query.Neighbor, n),
		Children: make([][]query.Neighbor, n),
		TopoOrd:  t.BFSOrder,
	}
	for v := 0; v < n; v++ {
		u := query.VertexID(v)
		if t.Parent[u] != u {
			el, _ := q.EdgeLabel(t.Parent[u], u)
			s.Parents[u] = append(s.Parents[u], query.Neighbor{ID: t.Parent[u], ELabel: el})
		}
		for _, c := range t.Children[u] {
			el, _ := q.EdgeLabel(u, c)
			s.Children[u] = append(s.Children[u], query.Neighbor{ID: c, ELabel: el})
		}
	}
	return s
}

// DAGSkeleton builds a skeleton from the full query DAG (Symbi).
func DAGSkeleton(d *query.DAG) *Skeleton {
	return &Skeleton{Parents: d.Parents, Children: d.Children, TopoOrd: d.TopoOrd}
}

// Index is the dynamic candidate index.
type Index struct {
	g  *graph.Graph
	q  *query.Graph
	sk *Skeleton

	ignoreELabels bool

	d1, d2 [][]bool // [query vertex][data vertex]
}

// New builds the index for (g, q) over the skeleton.
func New(g *graph.Graph, q *query.Graph, sk *Skeleton, ignoreELabels bool) *Index {
	ix := &Index{g: g, q: q, sk: sk, ignoreELabels: ignoreELabels}
	ix.rebuild()
	return ix
}

func (ix *Index) alloc() ([][]bool, [][]bool) {
	n := ix.q.NumVertices()
	nv := ix.g.NumVertices()
	d1 := make([][]bool, n)
	d2 := make([][]bool, n)
	for u := 0; u < n; u++ {
		d1[u] = make([]bool, nv)
		d2[u] = make([]bool, nv)
	}
	return d1, d2
}

func (ix *Index) rebuild() {
	ix.d1, ix.d2 = ix.computeFresh()
}

// computeFresh computes both DPs from scratch in topological order.
func (ix *Index) computeFresh() (d1, d2 [][]bool) {
	d1, d2 = ix.alloc()
	nv := ix.g.NumVertices()
	topo := ix.sk.TopoOrd
	for _, u := range topo {
		for v := 0; v < nv; v++ {
			d1[u][v] = ix.computeCell(u, graph.VertexID(v), d1, ix.sk.Parents[u])
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		u := topo[i]
		for v := 0; v < nv; v++ {
			d2[u][v] = ix.computeCell(u, graph.VertexID(v), d2, ix.sk.Children[u])
		}
	}
	return d1, d2
}

// static is the label/degree candidacy test.
func (ix *Index) static(u query.VertexID, v graph.VertexID) bool {
	return ix.g.Alive(v) && ix.g.Label(v) == ix.q.Label(u) && ix.g.Degree(v) >= ix.q.Degree(u)
}

// computeCell evaluates one DP cell from the definition, over the given
// dependency table (d1 with parents, or d2 with children).
func (ix *Index) computeCell(u query.VertexID, v graph.VertexID, tab [][]bool, deps []query.Neighbor) bool {
	if !ix.static(u, v) {
		return false
	}
	for _, dep := range deps {
		// A supporting entry tab[dep.ID][w] can only hold when w carries
		// dep's query label (static is a conjunct of every DP cell), so the
		// scan is confined to that label run of v's adjacency.
		found := false
		for _, nb := range ix.g.NeighborsWithLabel(v, ix.q.Label(dep.ID)) {
			if !ix.ignoreELabels && nb.ELabel != dep.ELabel {
				continue
			}
			if tab[dep.ID][nb.ID] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Candidate reports whether v is a full candidate of u (D1 and D2).
func (ix *Index) Candidate(u query.VertexID, v graph.VertexID) bool {
	if int(v) >= len(ix.d1[u]) {
		return false
	}
	return ix.d1[u][v] && ix.d2[u][v]
}

// D1 reports the top-down entry (TurboFlux's IMPLICIT state).
func (ix *Index) D1(u query.VertexID, v graph.VertexID) bool {
	return int(v) < len(ix.d1[u]) && ix.d1[u][v]
}

// D2 reports the bottom-up entry.
func (ix *Index) D2(u query.VertexID, v graph.VertexID) bool {
	return int(v) < len(ix.d2[u]) && ix.d2[u][v]
}

// cell identifies one DP entry in the worklist.
type cell struct {
	u     query.VertexID
	v     graph.VertexID
	which uint8 // 1 = d1, 2 = d2
}

// ApplyUpdate incrementally maintains the index after upd has been applied
// to the graph.
func (ix *Index) ApplyUpdate(upd stream.Update) {
	switch upd.Op {
	case stream.AddVertex:
		// Grow the per-vertex columns; a fresh isolated vertex is never a
		// candidate (query min degree >= 1), so all-false is correct.
		for u := range ix.d1 {
			for ix.g.NumVertices() > len(ix.d1[u]) {
				ix.d1[u] = append(ix.d1[u], false)
				ix.d2[u] = append(ix.d2[u], false)
			}
		}
	case stream.DeleteVertex:
		// An isolated vertex has no candidacy; nothing to do.
	case stream.AddEdge, stream.DeleteEdge:
		ix.propagate(upd.U, upd.V)
	}
}

// propagate re-evaluates the DP around endpoints (x, y) to a fixpoint.
func (ix *Index) propagate(x, y graph.VertexID) {
	n := ix.q.NumVertices()
	var queue []cell
	inQueue := make(map[cell]bool)
	push := func(c cell) {
		if !inQueue[c] {
			inQueue[c] = true
			queue = append(queue, c)
		}
	}
	for u := 0; u < n; u++ {
		qu := query.VertexID(u)
		push(cell{qu, x, 1})
		push(cell{qu, x, 2})
		push(cell{qu, y, 1})
		push(cell{qu, y, 2})
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		inQueue[c] = false
		var tab [][]bool
		var deps []query.Neighbor
		if c.which == 1 {
			tab, deps = ix.d1, ix.sk.Parents[c.u]
		} else {
			tab, deps = ix.d2, ix.sk.Children[c.u]
		}
		if int(c.v) >= len(tab[c.u]) {
			continue
		}
		nv := ix.computeCell(c.u, c.v, tab, deps)
		if nv == tab[c.u][c.v] {
			continue
		}
		tab[c.u][c.v] = nv
		// A changed D1[u][v] can affect D1 of u's skeleton children at
		// v's graph neighbors; symmetrically for D2 and parents.
		var affected []query.Neighbor
		if c.which == 1 {
			affected = ix.sk.Children[c.u]
		} else {
			affected = ix.sk.Parents[c.u]
		}
		for _, dep := range affected {
			// Cells (dep.ID, w) where w's label differs from dep's query
			// label are identically false (static fails) and can never
			// change, so only v's matching label run needs re-evaluation.
			for _, nb := range ix.g.NeighborsWithLabel(c.v, ix.q.Label(dep.ID)) {
				push(cell{dep.ID, nb.ID, c.which})
			}
		}
	}
}

// WouldAffect conservatively reports whether applying upd would change any
// DP entry or could contribute to a match — ParaCOSM's stage-3 candidate
// filter for DP-indexed algorithms. Called before the update is applied;
// it never mutates the index.
//
// Soundness argument: a first-order change from inserting/deleting edge
// (x,y) requires either (a) a static degree flip at x or y, or (b) a
// skeleton edge a->b whose labels match the data edge such that the
// supporting endpoint already holds the corresponding DP entry. If neither
// fires, no entry changes and no match can map a query edge onto (x,y)
// (full candidacy of both endpoints would be required).
func (ix *Index) WouldAffect(upd stream.Update) bool {
	switch upd.Op {
	case stream.AddVertex, stream.DeleteVertex:
		return false
	}
	x, y := upd.U, upd.V
	if ix.degreeFlip(x, upd.Op) || ix.degreeFlip(y, upd.Op) {
		return true
	}
	el := upd.ELabel
	if upd.Op == stream.DeleteEdge {
		if l, ok := ix.g.EdgeLabel(x, y); ok {
			el = l
		}
	}
	lx, ly := ix.g.Label(x), ix.g.Label(y)
	n := ix.q.NumVertices()
	for a := 0; a < n; a++ {
		qa := query.VertexID(a)
		for _, ch := range ix.sk.Children[qa] {
			if !ix.ignoreELabels && ch.ELabel != el {
				continue
			}
			qb := ch.ID
			la, lb := ix.q.Label(qa), ix.q.Label(qb)
			// Orientation x->a, y->b.
			if la == lx && lb == ly {
				if ix.D1(qa, x) || ix.D2(qb, y) {
					return true
				}
			}
			// Orientation y->a, x->b.
			if la == ly && lb == lx {
				if ix.D1(qa, y) || ix.D2(qb, x) {
					return true
				}
			}
		}
	}
	// The skeleton loop covers DP changes, but a match may also map a
	// non-skeleton query edge onto (x,y) (TurboFlux's tree skeleton does
	// not include non-tree edges). Since no DP entry changes at this
	// point, such a match requires both endpoints to already hold full
	// candidacy.
	for _, eo := range ix.q.MatchingEdges(lx, ly, el, ix.ignoreELabels) {
		e := ix.q.Edges()[eo.Index]
		a, b := e.U, e.V
		if eo.Flipped {
			a, b = b, a
		}
		if ix.Candidate(a, x) && ix.Candidate(b, y) {
			return true
		}
	}
	return false
}

// degreeFlip reports whether the degree change at w can flip a static
// candidacy test for some query vertex with w's label.
func (ix *Index) degreeFlip(w graph.VertexID, op stream.Op) bool {
	lw := ix.g.Label(w)
	dw := ix.g.Degree(w)
	n := ix.q.NumVertices()
	for u := 0; u < n; u++ {
		qu := query.VertexID(u)
		if ix.q.Label(qu) != lw {
			continue
		}
		dq := ix.q.Degree(qu)
		if op == stream.AddEdge && dq == dw+1 {
			return true // static flips false -> true
		}
		if op == stream.DeleteEdge && dq == dw {
			return true // static flips true -> false
		}
	}
	return false
}

// ConsistentWithRebuild recomputes both DPs from scratch and compares them
// with the incrementally maintained state (csm.Rebuilder support).
func (ix *Index) ConsistentWithRebuild() bool {
	f1, f2 := ix.computeFresh()
	nv := ix.g.NumVertices()
	for u := range f1 {
		for v := 0; v < nv; v++ {
			iv1, iv2 := false, false
			if v < len(ix.d1[u]) {
				iv1, iv2 = ix.d1[u][v], ix.d2[u][v]
			}
			if f1[u][v] != iv1 || f2[u][v] != iv2 {
				return false
			}
		}
	}
	return true
}

// CandidateCount returns the number of full candidates of u (diagnostics).
func (ix *Index) CandidateCount(u query.VertexID) int {
	c := 0
	for v := range ix.d1[u] {
		if ix.d1[u][v] && ix.d2[u][v] {
			c++
		}
	}
	return c
}
