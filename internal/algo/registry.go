// Package algo registers the bundled CSM baseline algorithms so that
// tools, benchmarks and examples can instantiate them by name.
package algo

import (
	"fmt"
	"sort"

	"paracosm/internal/algo/calig"
	"paracosm/internal/algo/graphflow"
	"paracosm/internal/algo/newsp"
	"paracosm/internal/algo/symbi"
	"paracosm/internal/algo/turboflux"
	"paracosm/internal/csm"
)

// Entry describes one registered algorithm.
type Entry struct {
	Name string
	// New constructs a fresh instance (instances are single-use: one
	// Build per instance).
	New func() csm.Algorithm
	// IgnoreELabels is true for algorithms that disregard edge labels;
	// reference comparisons must use matching semantics.
	IgnoreELabels bool
}

// Registry returns the five algorithms of the paper's evaluation, in the
// order they appear there. CaLiG is registered in counting mode, its
// native configuration for incremental match counting.
func Registry() []Entry {
	return []Entry{
		{Name: "CaLiG", New: func() csm.Algorithm { return calig.New(calig.Counting()) }, IgnoreELabels: true},
		{Name: "GraphFlow", New: func() csm.Algorithm { return graphflow.New() }},
		{Name: "NewSP", New: func() csm.Algorithm { return newsp.New() }},
		{Name: "Symbi", New: func() csm.Algorithm { return symbi.New() }},
		{Name: "TurboFlux", New: func() csm.Algorithm { return turboflux.New() }},
	}
}

// ByName looks an algorithm up case-sensitively.
func ByName(name string) (Entry, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	names := make([]string, 0, 5)
	for _, e := range Registry() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Entry{}, fmt.Errorf("algo: unknown algorithm %q (have %v)", name, names)
}
