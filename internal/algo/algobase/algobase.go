// Package algobase factors out the search-tree mechanics shared by every
// backtracking CSM baseline: mapping an updated data edge onto compatible
// query-edge orientations (the roots of the search tree T), and extending
// partial embeddings one query vertex at a time along precomputed connected
// matching orders with backward-edge validation.
//
// Algorithms differ in their auxiliary data structure, which plugs in as a
// candidate filter consulted for every (query vertex, data vertex) pair.
package algobase

import (
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// FilterFunc is an ADS candidate test: may data vertex v be matched to
// query vertex u? A nil filter admits everything (GraphFlow).
type FilterFunc func(u query.VertexID, v graph.VertexID) bool

// orderInfo caches a matching order and its backward-edge constraints.
type orderInfo struct {
	order []query.VertexID
	back  [][]query.BackEdge
}

// Base implements csm.Enumerator generically.
type Base struct {
	G *graph.Graph
	Q *query.Graph

	// IgnoreELabels disables edge-label matching (CaLiG semantics).
	IgnoreELabels bool

	// Filter is the ADS candidate test; nil admits all.
	Filter FilterFunc

	// KStats aggregates intersection-kernel counters across all candidate
	// enumerations of this engine. Typed atomics: the escalated parallel
	// phase calls Expand concurrently from pool workers.
	KStats graph.KernelStats

	infos []orderInfo // indexed by csm.EncodeOrder
}

// KernelCounters snapshots the shared intersection-kernel counters (schema 3
// of the benchjson report).
func (b *Base) KernelCounters() graph.KernelCounters { return b.KStats.Counters() }

// Init prepares the base for (g, q): it precomputes one matching order per
// query-edge orientation. Algorithms call it from Build.
func (b *Base) Init(g *graph.Graph, q *query.Graph) {
	b.G, b.Q = g, q
	ne := q.NumEdges()
	b.infos = make([]orderInfo, 2*ne)
	for i := 0; i < ne; i++ {
		for _, flip := range []bool{false, true} {
			eo := query.EdgeOrientation{Index: i, Flipped: flip}
			ord := q.Order(eo)
			b.infos[csm.EncodeOrder(eo)] = orderInfo{
				order: ord,
				back:  q.BackwardNeighbors(ord),
			}
		}
	}
}

// SetOrder overrides the matching order for one query-edge orientation
// (CaLiG reorders kernels before shells). The order must be connected and
// start with the orientation's endpoints.
func (b *Base) SetOrder(eo query.EdgeOrientation, ord []query.VertexID) {
	b.infos[csm.EncodeOrder(eo)] = orderInfo{order: ord, back: b.Q.BackwardNeighbors(ord)}
}

// Order returns the matching order registered for an orientation.
func (b *Base) Order(eo query.EdgeOrientation) []query.VertexID {
	return b.infos[csm.EncodeOrder(eo)].order
}

// Backward returns the precomputed backward-edge constraints of the order
// registered for an orientation, indexed by depth. Callers must not modify
// the result.
func (b *Base) Backward(eo query.EdgeOrientation) [][]query.BackEdge {
	return b.infos[csm.EncodeOrder(eo)].back
}

// Roots implements csm.Enumerator: one root state per query-edge
// orientation the updated edge maps onto, with both endpoint assignments
// validated by label, degree, edge label, and the ADS filter. Vertex
// updates produce no roots (they cannot affect matches, §2.2).
func (b *Base) Roots(upd stream.Update, emit func(csm.State)) {
	if !upd.IsEdge() {
		return
	}
	x, y := upd.U, upd.V
	lx, ly := b.G.Label(x), b.G.Label(y)
	el := upd.ELabel
	if upd.Op == stream.DeleteEdge {
		// The edge is still present during deletion enumeration; use its
		// actual label.
		if l, ok := b.G.EdgeLabel(x, y); ok {
			el = l
		}
	}
	for _, eo := range b.Q.MatchingEdges(lx, ly, el, b.IgnoreELabels) {
		e := b.Q.Edges()[eo.Index]
		a, bb := e.U, e.V
		if eo.Flipped {
			a, bb = bb, a
		}
		// Map x->a, y->bb.
		if b.G.Degree(x) < b.Q.Degree(a) || b.G.Degree(y) < b.Q.Degree(bb) {
			continue
		}
		if b.Filter != nil && (!b.Filter(a, x) || !b.Filter(bb, y)) {
			continue
		}
		s := csm.NewState(csm.EncodeOrder(eo))
		s.Set(a, x)
		s.Set(bb, y)
		emit(s)
	}
}

// Expand implements csm.Enumerator: emit all valid one-vertex extensions
// of s along its matching order.
func (b *Base) Expand(s *csm.State, emit func(csm.State)) {
	info := &b.infos[s.Order]
	if int(s.Depth) >= len(info.order) {
		return
	}
	u := info.order[s.Depth]
	back := info.back[s.Depth]
	b.ForEachCandidate(s, u, back, func(v graph.VertexID) {
		child := *s
		child.Set(u, v)
		emit(child)
	})
}

// ForEachCandidate enumerates the compatible set C(u, s) (Definition 2.5):
// data vertices adjacent to all matched backward neighbors of u with
// matching labels, unused, degree-feasible, and admitted by the ADS
// filter. It is exported for algorithms implementing custom expansion
// (NewSP's lookahead, CaLiG's shell counting).
//
// The enumeration is a k-way zipper over the label-sliced adjacency runs of
// the matched backward neighbors: the run with the fewest L(u)-labeled
// neighbors is the anchor, and a monotonic cursor per remaining run is
// advanced with graph.AdvanceNeighbors (linear probe + gallop). All cursor
// state lives in fixed-size stack arrays, so the enumeration itself
// allocates nothing.
func (b *Base) ForEachCandidate(s *csm.State, u query.VertexID, back []query.BackEdge, yield func(v graph.VertexID)) {
	if len(back) == 0 {
		return // only root positions have no backward neighbors
	}
	info := &b.infos[s.Order]
	lu := b.Q.Label(u)
	du := b.Q.Degree(u)

	// Anchor on the backward neighbor with the fewest lu-labeled neighbors.
	anchorIdx := 0
	anchor := s.Map[info.order[back[0].Pos]]
	anchorDeg := b.G.DegreeWithLabel(anchor, lu)
	for i, be := range back[1:] {
		w := s.Map[info.order[be.Pos]]
		if d := b.G.DegreeWithLabel(w, lu); d < anchorDeg {
			anchorIdx, anchor, anchorDeg = i+1, w, d
		}
	}
	cand := b.G.NeighborsWithLabel(anchor, lu)
	b.KStats.AddCandidateLookup(len(cand) < b.G.Degree(anchor))
	if len(cand) == 0 {
		return
	}
	anchorEL := back[anchorIdx].ELabel

	// Cursored label runs of the remaining backward neighbors.
	var (
		runs    [query.MaxVertices][]graph.Neighbor
		elabels [query.MaxVertices]graph.Label
		pos     [query.MaxVertices]int
	)
	k := 0
	for i, be := range back {
		if i == anchorIdx {
			continue
		}
		runs[k] = b.G.NeighborsWithLabel(s.Map[info.order[be.Pos]], lu)
		elabels[k] = be.ELabel
		k++
	}
	var probes, galloped uint64
zip:
	for _, nb := range cand {
		if !b.IgnoreELabels && nb.ELabel != anchorEL {
			continue
		}
		v := nb.ID
		if b.G.Degree(v) < du || s.Uses(v) {
			continue
		}
		for i := 0; i < k; i++ {
			j, g := graph.AdvanceNeighbors(runs[i], pos[i], v)
			probes++
			if g {
				galloped++
			}
			if j == len(runs[i]) {
				// This run is exhausted; no later candidate (candidates
				// ascend by ID) can satisfy its backward edge either.
				break zip
			}
			pos[i] = j
			if runs[i][j].ID != v || (!b.IgnoreELabels && runs[i][j].ELabel != elabels[i]) {
				continue zip
			}
		}
		if b.Filter != nil && !b.Filter(u, v) {
			continue
		}
		yield(v)
	}
	if k > 0 {
		b.KStats.AddIntersection(probes, galloped)
	}
}

// Terminal implements csm.Enumerator for ordinary full-enumeration
// algorithms: a state is a leaf exactly when every query vertex is matched.
func (b *Base) Terminal(s *csm.State) (uint64, bool) {
	if int(s.Depth) == b.Q.NumVertices() {
		return 1, true
	}
	return 0, false
}

// Relevant implements the label and degree filters (stages 1-2 of
// ParaCOSM's update classifier) from the pre-application viewpoint: for an
// insertion the endpoint degrees are taken as they will be once the edge
// exists. It reports whether the update could map onto any query edge.
func (b *Base) Relevant(upd stream.Update) bool {
	if !upd.IsEdge() {
		return false
	}
	x, y := upd.U, upd.V
	lx, ly := b.G.Label(x), b.G.Label(y)
	el := upd.ELabel
	if upd.Op == stream.DeleteEdge {
		if l, ok := b.G.EdgeLabel(x, y); ok {
			el = l
		}
	}
	dx, dy := b.G.Degree(x), b.G.Degree(y)
	if upd.Op == stream.AddEdge {
		dx, dy = dx+1, dy+1
	}
	for _, eo := range b.Q.MatchingEdges(lx, ly, el, b.IgnoreELabels) {
		e := b.Q.Edges()[eo.Index]
		a, bb := e.U, e.V
		if eo.Flipped {
			a, bb = bb, a
		}
		if dx >= b.Q.Degree(a) && dy >= b.Q.Degree(bb) {
			return true
		}
	}
	return false
}

// RelevantStages reports the outcome of the label filter and the degree
// filter separately, for the classifier's per-stage statistics (Figure 12).
func (b *Base) RelevantStages(upd stream.Update) (passLabel, passDegree bool) {
	if !upd.IsEdge() {
		return false, false
	}
	x, y := upd.U, upd.V
	lx, ly := b.G.Label(x), b.G.Label(y)
	el := upd.ELabel
	if upd.Op == stream.DeleteEdge {
		if l, ok := b.G.EdgeLabel(x, y); ok {
			el = l
		}
	}
	eos := b.Q.MatchingEdges(lx, ly, el, b.IgnoreELabels)
	if len(eos) == 0 {
		return false, false
	}
	dx, dy := b.G.Degree(x), b.G.Degree(y)
	if upd.Op == stream.AddEdge {
		dx, dy = dx+1, dy+1
	}
	for _, eo := range eos {
		e := b.Q.Edges()[eo.Index]
		a, bb := e.U, e.V
		if eo.Flipped {
			a, bb = bb, a
		}
		if dx >= b.Q.Degree(a) && dy >= b.Q.Degree(bb) {
			return true, true
		}
	}
	return true, false
}
