package algobase

import (
	"testing"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// fixture: data graph with two triangles sharing edge (0,1); query is a
// labeled triangle.
func fixture(t *testing.T) (*Base, *graph.Graph, *query.Graph) {
	t.Helper()
	g := graph.New(5)
	g.AddVertex(0) // v0: a
	g.AddVertex(1) // v1: b
	g.AddVertex(2) // v2: c
	g.AddVertex(2) // v3: c
	g.AddVertex(0) // v4: a (isolated)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(3, 0, 0)

	q := query.MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &Base{}
	b.Init(g, q)
	return b, g, q
}

func collectRoots(b *Base, upd stream.Update) []csm.State {
	var roots []csm.State
	b.Roots(upd, func(s csm.State) { roots = append(roots, s) })
	return roots
}

func TestRootsOrientation(t *testing.T) {
	b, _, _ := fixture(t)
	// Edge (v0,v1) has labels (a,b): exactly one query edge (u0,u1)
	// matches, unflipped.
	roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	s := roots[0]
	if s.Matched(0) != 0 || s.Matched(1) != 1 || s.Depth != 2 {
		t.Fatalf("seed state = %+v", s)
	}
	// Reversed endpoints: same query edge, flipped orientation.
	roots = collectRoots(b, stream.Update{Op: stream.AddEdge, U: 1, V: 0})
	if len(roots) != 1 || roots[0].Matched(0) != 0 || roots[0].Matched(1) != 1 {
		t.Fatalf("flipped roots = %+v", roots)
	}
}

func TestRootsLabelMismatch(t *testing.T) {
	b, _, _ := fixture(t)
	// (v2,v3) has labels (c,c): no query edge is (c,c).
	if roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 2, V: 3}); len(roots) != 0 {
		t.Fatalf("label-mismatched roots = %v", roots)
	}
}

func TestRootsDegreeFilter(t *testing.T) {
	b, g, _ := fixture(t)
	// v4 (label a) is isolated pre-insert; after inserting (v4,v1) its
	// degree 1 < deg_Q(u0)=2 so the root must be rejected.
	g.AddEdge(4, 1, 0)
	roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 4, V: 1})
	if len(roots) != 0 {
		t.Fatalf("degree-infeasible root emitted: %v", roots)
	}
}

func TestRootsVertexOpsEmpty(t *testing.T) {
	b, _, _ := fixture(t)
	if roots := collectRoots(b, stream.Update{Op: stream.AddVertex, VLabel: 0}); len(roots) != 0 {
		t.Fatal("vertex op produced roots")
	}
}

func TestExpandFindsTriangleCompletions(t *testing.T) {
	b, _, _ := fixture(t)
	roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	var leaves []csm.State
	b.Expand(&roots[0], func(s csm.State) { leaves = append(leaves, s) })
	// u2 (label c) can map to v2 or v3: two children.
	if len(leaves) != 2 {
		t.Fatalf("children = %d, want 2", len(leaves))
	}
	for _, s := range leaves {
		if c, done := b.Terminal(&s); !done || c != 1 {
			t.Fatalf("leaf not terminal: %+v", s)
		}
	}
}

func TestExpandRespectsInjectivity(t *testing.T) {
	g := graph.New(3)
	g.AddVertex(0)
	g.AddVertex(0)
	g.AddVertex(0)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	q := query.MustNew([]graph.Label{0, 0, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &Base{}
	b.Init(g, q)
	roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	for _, r := range roots {
		b.Expand(&r, func(s csm.State) {
			seen := map[graph.VertexID]bool{}
			for u := 0; u < 3; u++ {
				v := s.Matched(query.VertexID(u))
				if seen[v] {
					t.Fatalf("non-injective state %+v", s)
				}
				seen[v] = true
			}
		})
	}
}

func TestFilterHook(t *testing.T) {
	b, _, _ := fixture(t)
	b.Filter = func(u query.VertexID, v graph.VertexID) bool { return v != 3 }
	roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 0, V: 1})
	var children []csm.State
	b.Expand(&roots[0], func(s csm.State) { children = append(children, s) })
	if len(children) != 1 || children[0].Matched(2) != 2 {
		t.Fatalf("filter not applied: %+v", children)
	}
	// Filter rejecting a seed endpoint kills the root.
	b.Filter = func(u query.VertexID, v graph.VertexID) bool { return v != 0 }
	if roots := collectRoots(b, stream.Update{Op: stream.AddEdge, U: 0, V: 1}); len(roots) != 0 {
		t.Fatal("filtered seed still produced a root")
	}
}

func TestRelevantInsertionUsesPostDegrees(t *testing.T) {
	b, g, _ := fixture(t)
	_ = g
	// Pre-apply classification of inserting (v4,v1): v4 currently has
	// degree 0; with the edge it will have degree 1, still below
	// deg_Q(u0)=2 -> not relevant.
	if b.Relevant(stream.Update{Op: stream.AddEdge, U: 4, V: 1}) {
		t.Fatal("degree-infeasible insertion classified relevant")
	}
	// Give v4 one more edge; now post-insert degree 2 suffices.
	g.AddEdge(4, 2, 0)
	if !b.Relevant(stream.Update{Op: stream.AddEdge, U: 4, V: 1}) {
		t.Fatal("feasible insertion classified irrelevant")
	}
}

func TestRelevantDeletion(t *testing.T) {
	b, _, _ := fixture(t)
	// Deleting (v0,v1) — both endpoints have sufficient degree.
	if !b.Relevant(stream.Update{Op: stream.DeleteEdge, U: 0, V: 1}) {
		t.Fatal("match-relevant deletion classified irrelevant")
	}
	if b.Relevant(stream.Update{Op: stream.AddVertex}) {
		t.Fatal("vertex op classified relevant")
	}
}

func TestRelevantStages(t *testing.T) {
	b, g, _ := fixture(t)
	// Label fail: (v2,v3) is (c,c).
	pl, pd := b.RelevantStages(stream.Update{Op: stream.AddEdge, U: 2, V: 3})
	if pl || pd {
		t.Fatalf("label-mismatch stages = %v,%v", pl, pd)
	}
	// Label pass, degree fail: (v4,v1) is (a,b) but v4 is isolated.
	pl, pd = b.RelevantStages(stream.Update{Op: stream.AddEdge, U: 4, V: 1})
	if !pl || pd {
		t.Fatalf("degree-fail stages = %v,%v", pl, pd)
	}
	// Both pass.
	g.AddEdge(4, 2, 0)
	pl, pd = b.RelevantStages(stream.Update{Op: stream.AddEdge, U: 4, V: 1})
	if !pl || !pd {
		t.Fatalf("pass stages = %v,%v", pl, pd)
	}
}

func TestSetOrderOverride(t *testing.T) {
	b, _, q := fixture(t)
	eo := query.EdgeOrientation{Index: 0, Flipped: false}
	custom := []query.VertexID{q.Edges()[0].U, q.Edges()[0].V, 2}
	b.SetOrder(eo, custom)
	got := b.Order(eo)
	for i := range custom {
		if got[i] != custom[i] {
			t.Fatalf("Order = %v, want %v", got, custom)
		}
	}
}

func TestDeletionRootsUseActualEdgeLabel(t *testing.T) {
	// Query edge label 5; data edge stored with label 5. A deletion
	// update does not carry the label — Roots must look it up.
	g := graph.New(2)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddEdge(0, 1, 5)
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 5)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &Base{}
	b.Init(g, q)
	roots := collectRoots(b, stream.Update{Op: stream.DeleteEdge, U: 0, V: 1})
	if len(roots) != 1 {
		t.Fatalf("deletion roots = %d, want 1", len(roots))
	}
}
