// Package turboflux implements the TurboFlux baseline (Kim et al.,
// SIGMOD'18) in the general CSM model. TurboFlux maintains the
// data-centric graph (DCG): for every (query vertex, data vertex) pair an
// edge-transition state NULL -> IMPLICIT -> EXPLICIT over a spanning tree
// of the query. Here the DCG is realized as a bidirectional DP index over
// the tree skeleton (see internal/algo/dpindex): IMPLICIT corresponds to
// top-down support (D1), EXPLICIT to top-down plus bottom-up support.
// Non-tree query edges are validated during enumeration, as in the
// original system.
package turboflux

import (
	"paracosm/internal/algo/algobase"
	"paracosm/internal/algo/dpindex"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// TurboFlux is the DCG-indexed CSM baseline.
type TurboFlux struct {
	algobase.Base
	ix *dpindex.Index
}

// New returns a TurboFlux instance.
func New() *TurboFlux { return &TurboFlux{} }

var (
	_ csm.Algorithm = (*TurboFlux)(nil)
	_ csm.Rebuilder = (*TurboFlux)(nil)
)

// Name implements csm.Algorithm.
func (a *TurboFlux) Name() string { return "TurboFlux" }

// Build implements csm.Algorithm: constructs the DCG over a BFS spanning
// tree rooted at the highest-degree query vertex.
func (a *TurboFlux) Build(g *graph.Graph, q *query.Graph) error {
	a.Init(g, q)
	tree := q.BuildSpanningTree()
	a.ix = dpindex.New(g, q, dpindex.TreeSkeleton(q, tree), false)
	a.Filter = a.ix.Candidate
	return nil
}

// UpdateADS implements csm.Algorithm: incremental DCG maintenance.
func (a *TurboFlux) UpdateADS(upd stream.Update) { a.ix.ApplyUpdate(upd) }

// AffectsADS implements csm.Algorithm: stage-3 candidate filtering against
// the DCG.
func (a *TurboFlux) AffectsADS(upd stream.Update) bool {
	return a.Relevant(upd) && a.ix.WouldAffect(upd)
}

// RebuildADS implements csm.Rebuilder.
func (a *TurboFlux) RebuildADS() bool { return a.ix.ConsistentWithRebuild() }

// Index exposes the DCG for white-box tests.
func (a *TurboFlux) Index() *dpindex.Index { return a.ix }
