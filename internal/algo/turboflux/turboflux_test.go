package turboflux

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/symbi"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

func cycleQuery(t *testing.T) *query.Graph {
	t.Helper()
	// 4-cycle: contains a non-tree edge under any spanning tree, which is
	// exactly the case distinguishing the DCG from the DCS.
	q := query.MustNew([]graph.Label{0, 1, 0, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 3, 0)
	q.MustAddEdge(3, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return q
}

func randomGraphStream(seed int64) (*graph.Graph, stream.Stream) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(20)
	for i := 0; i < 20; i++ {
		g.AddVertex(graph.Label(rng.Intn(2)))
	}
	for i := 0; i < 40; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(20)), graph.VertexID(rng.Intn(20)), 0)
	}
	sim := g.Clone()
	var s stream.Stream
	for i := 0; i < 35; i++ {
		u := graph.VertexID(rng.Intn(20))
		v := graph.VertexID(rng.Intn(20))
		if sim.HasEdge(u, v) {
			sim.RemoveEdge(u, v)
			s = append(s, stream.Update{Op: stream.DeleteEdge, U: u, V: v})
		} else if u != v {
			sim.AddEdge(u, v, 0)
			s = append(s, stream.Update{Op: stream.AddEdge, U: u, V: v})
		}
	}
	return g, s
}

// TestDCGAgreesWithDCS: TurboFlux (tree index, weaker pruning) and Symbi
// (DAG index) must report identical deltas on cyclic queries, with Symbi
// visiting no more nodes.
func TestDCGAgreesWithDCS(t *testing.T) {
	q := cycleQuery(t)
	for seed := int64(0); seed < 5; seed++ {
		g, s := randomGraphStream(seed)
		run := func(a csm.Algorithm) (pos, neg, nodes uint64) {
			eng := csm.NewEngine(a)
			if err := eng.Init(g.Clone(), q); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(context.Background(), s); err != nil {
				t.Fatal(err)
			}
			st := eng.Stats()
			return st.Positive, st.Negative, st.Nodes
		}
		p1, n1, nodesTF := run(New())
		p2, n2, nodesSY := run(symbi.New())
		if p1 != p2 || n1 != n2 {
			t.Fatalf("seed %d: TurboFlux (+%d,-%d) != Symbi (+%d,-%d)", seed, p1, n1, p2, n2)
		}
		if nodesSY > nodesTF {
			t.Fatalf("seed %d: Symbi visited more nodes (%d) than TurboFlux (%d)", seed, nodesSY, nodesTF)
		}
	}
}

func TestRebuildConsistency(t *testing.T) {
	q := cycleQuery(t)
	g, s := randomGraphStream(11)
	a := New()
	eng := csm.NewEngine(a)
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	for i, upd := range s {
		if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 && !a.RebuildADS() {
			t.Fatalf("DCG inconsistent after update %d", i)
		}
	}
}

func TestName(t *testing.T) {
	if New().Name() != "TurboFlux" {
		t.Fatal("wrong name")
	}
}
