// Package sjtree implements the SJ-Tree baseline (Choudhury et al., the
// "subgraph join tree" of selectivity-based continuous pattern detection)
// in the general CSM model. Unlike every backtracking algorithm in this
// repository, SJ-Tree is *join-based*: it maintains materialized tables of
// partial matches for a left-deep join decomposition of the query — table
// T_i holds every embedding of the first i query edges — so an edge
// insertion only joins against existing tables instead of re-searching the
// graph, at the cost of the O(|E(G)|^|E(Q)|) table memory of Table 1.
//
// Incremental semantics follow the classic delta-join rule: for an
// inserted edge mapped onto join position i, new entries are
// old-prefix ⋈ Δe_i ⋈ new-suffix, which counts every new embedding exactly
// once even when the edge maps onto several positions. Deletions scan the
// tables for entries using the deleted edge; entries leaving the root
// table are the expired matches.
package sjtree

import (
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// assignment is a partial embedding keyed for table storage.
type assignment [query.MaxVertices]graph.VertexID

func emptyAssignment() assignment {
	var a assignment
	for i := range a {
		a[i] = graph.NoVertex
	}
	return a
}

func (a *assignment) key(covered []query.VertexID) string {
	b := make([]byte, 0, 4*len(covered))
	for _, u := range covered {
		v := a[u]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func (a *assignment) uses(v graph.VertexID) bool {
	for _, m := range a {
		if m == v {
			return true
		}
	}
	return false
}

// SJTree is the join-based CSM baseline.
type SJTree struct {
	g *graph.Graph
	q *query.Graph

	// order is a connected ordering of the query edges; covered[i] lists
	// the query vertices bound after joining edges order[0..i].
	order   []query.Edge
	covered [][]query.VertexID

	// tables[i] materializes all embeddings of edges order[0..i].
	tables []map[string]assignment

	// pending buffers ΔM⁺ between UpdateADS (where the delta joins
	// happen) and Roots (where the engine collects results). Deletions
	// need no buffer: Roots runs before the removal and scans the root
	// table directly.
	pending []assignment
}

// New returns an SJ-Tree instance.
func New() *SJTree { return &SJTree{} }

var _ csm.Algorithm = (*SJTree)(nil)

// Name implements csm.Algorithm.
func (a *SJTree) Name() string { return "SJ-Tree" }

// Build implements csm.Algorithm: pick a connected join order and
// materialize the initial tables bottom-up.
func (a *SJTree) Build(g *graph.Graph, q *query.Graph) error {
	a.g, a.q = g, q
	a.buildOrder()
	a.rebuildTables()
	return nil
}

// buildOrder greedily orders the query edges so each one shares a vertex
// with the prefix.
func (a *SJTree) buildOrder() {
	edges := a.q.Edges()
	used := make([]bool, len(edges))
	inCover := make(map[query.VertexID]bool)
	a.order = a.order[:0]
	a.covered = a.covered[:0]
	var cov []query.VertexID
	addVertex := func(u query.VertexID) {
		if !inCover[u] {
			inCover[u] = true
			cov = append(cov, u)
		}
	}
	for len(a.order) < len(edges) {
		pick := -1
		for i, e := range edges {
			if used[i] {
				continue
			}
			if len(a.order) == 0 || inCover[e.U] || inCover[e.V] {
				pick = i
				break
			}
		}
		if pick < 0 {
			break // disconnected queries are rejected by query.Finalize
		}
		used[pick] = true
		a.order = append(a.order, edges[pick])
		addVertex(edges[pick].U)
		addVertex(edges[pick].V)
		a.covered = append(a.covered, append([]query.VertexID(nil), cov...))
	}
}

// rebuildTables recomputes every table from the current graph.
func (a *SJTree) rebuildTables() {
	m := len(a.order)
	a.tables = make([]map[string]assignment, m)
	for i := range a.tables {
		a.tables[i] = make(map[string]assignment)
	}
	// Level 0: all embeddings of the first edge.
	e0 := a.order[0]
	a.forEachEdgeEmbedding(e0, func(x, y graph.VertexID) {
		as := emptyAssignment()
		as[e0.U], as[e0.V] = x, y
		a.tables[0][as.key(a.covered[0])] = as
	})
	// Higher levels: extend every lower entry by the next edge.
	for i := 1; i < m; i++ {
		for _, as := range a.tables[i-1] {
			as := as
			a.extend(&as, i, func(res assignment) {
				a.tables[i][res.key(a.covered[i])] = res
			})
		}
	}
}

// forEachEdgeEmbedding yields every data edge embedding of query edge e
// (both orientations when labels permit).
func (a *SJTree) forEachEdgeEmbedding(e query.Edge, yield func(x, y graph.VertexID)) {
	lu, lv := a.q.Label(e.U), a.q.Label(e.V)
	for _, x := range a.g.VerticesWithLabel(lu) {
		if !a.g.Alive(x) {
			continue
		}
		for _, nb := range a.g.NeighborsWithLabel(x, lv) {
			if nb.ELabel != e.ELabel {
				continue
			}
			yield(x, nb.ID)
		}
	}
}

// extend joins one table entry with edge order[i] against the current
// graph, yielding every consistent extension.
func (a *SJTree) extend(as *assignment, i int, yield func(assignment)) {
	e := a.order[i]
	mu, mv := as[e.U], as[e.V]
	switch {
	case mu != graph.NoVertex && mv != graph.NoVertex:
		// Closing edge: both endpoints bound; check existence.
		if l, ok := a.g.EdgeLabel(mu, mv); ok && l == e.ELabel {
			yield(*as)
		}
	case mu != graph.NoVertex:
		for _, nb := range a.g.NeighborsWithLabel(mu, a.q.Label(e.V)) {
			if nb.ELabel == e.ELabel && !as.uses(nb.ID) {
				res := *as
				res[e.V] = nb.ID
				yield(res)
			}
		}
	case mv != graph.NoVertex:
		for _, nb := range a.g.NeighborsWithLabel(mv, a.q.Label(e.U)) {
			if nb.ELabel == e.ELabel && !as.uses(nb.ID) {
				res := *as
				res[e.U] = nb.ID
				yield(res)
			}
		}
	default:
		// Unreachable for a connected join order past level 0.
	}
}

// UpdateADS implements csm.Algorithm: delta joins for insertions, table
// scans for deletions. Called after the graph mutation.
func (a *SJTree) UpdateADS(upd stream.Update) {
	switch upd.Op {
	case stream.AddEdge:
		a.applyInsert(upd)
	case stream.DeleteEdge:
		a.applyDelete(upd)
	case stream.AddVertex, stream.DeleteVertex:
		// No table content references isolated vertices.
	}
}

// applyInsert computes, for every join position the new edge maps onto,
// old-prefix ⋈ Δe ⋈ new-suffix, merging the per-level deltas afterwards
// (so prefixes stay "old" during the computation) and buffering the
// root-table delta as ΔM⁺.
func (a *SJTree) applyInsert(upd stream.Update) {
	m := len(a.order)
	deltas := make([]map[string]assignment, m)
	for i := range deltas {
		deltas[i] = make(map[string]assignment)
	}
	x, y := upd.U, upd.V
	lx, ly := a.g.Label(x), a.g.Label(y)

	for i, e := range a.order {
		lu, lv := a.q.Label(e.U), a.q.Label(e.V)
		var seeds []assignment
		addSeed := func(vx, vy graph.VertexID) {
			if i == 0 {
				as := emptyAssignment()
				as[e.U], as[e.V] = vx, vy
				seeds = append(seeds, as)
				return
			}
			for _, prev := range a.tables[i-1] {
				// Compatibility with the prefix entry: endpoint bindings
				// must agree, unbound data vertices must be fresh.
				bu, bv := prev[e.U], prev[e.V]
				if bu != graph.NoVertex && bu != vx {
					continue
				}
				if bv != graph.NoVertex && bv != vy {
					continue
				}
				if bu == graph.NoVertex && prev.uses(vx) {
					continue
				}
				if bv == graph.NoVertex && prev.uses(vy) {
					continue
				}
				as := prev
				as[e.U], as[e.V] = vx, vy
				seeds = append(seeds, as)
			}
		}
		if e.ELabel == upd.ELabel {
			if lu == lx && lv == ly {
				addSeed(x, y)
			}
			if lu == ly && lv == lx {
				addSeed(y, x)
			}
		}
		// Extend each seed through the suffix against the new graph.
		for _, seed := range seeds {
			a.extendThrough(seed, i+1, deltas)
			deltas[i][keyOf(&seed, a.covered[i])] = seed
		}
	}

	// Merge deltas and emit the root-level additions as ΔM⁺.
	for i := range deltas {
		for k, as := range deltas[i] {
			if _, exists := a.tables[i][k]; !exists {
				a.tables[i][k] = as
				if i == m-1 {
					a.pending = append(a.pending, as)
				}
			}
		}
	}
}

func keyOf(as *assignment, covered []query.VertexID) string { return as.key(covered) }

// extendThrough extends one seed assignment at level i-1 through levels
// i..m-1 against the current graph, recording every intermediate result.
func (a *SJTree) extendThrough(seed assignment, from int, deltas []map[string]assignment) {
	if from >= len(a.order) {
		return
	}
	a.extend(&seed, from, func(res assignment) {
		deltas[from][keyOf(&res, a.covered[from])] = res
		a.extendThrough(res, from+1, deltas)
	})
}

// applyDelete removes every table entry whose covered edges use the
// deleted data edge. Called after the graph mutation, so membership is
// recomputed structurally rather than against adjacency.
func (a *SJTree) applyDelete(upd stream.Update) {
	x, y := upd.U, upd.V
	for i, tab := range a.tables {
		for k, as := range tab {
			if a.assignmentUsesEdge(&as, i, x, y) {
				delete(tab, k)
			}
		}
	}
}

// assignmentUsesEdge reports whether the entry (at level i) maps one of
// its covered query edges onto data edge (x,y).
func (a *SJTree) assignmentUsesEdge(as *assignment, level int, x, y graph.VertexID) bool {
	for i := 0; i <= level; i++ {
		e := a.order[i]
		mu, mv := as[e.U], as[e.V]
		if (mu == x && mv == y) || (mu == y && mv == x) {
			return true
		}
	}
	return false
}

// AffectsADS implements csm.Algorithm: SJ-Tree has no degree pruning, so
// an update is unsafe exactly when its labels match some query edge.
func (a *SJTree) AffectsADS(upd stream.Update) bool {
	if !upd.IsEdge() {
		return false
	}
	x, y := upd.U, upd.V
	el := upd.ELabel
	if upd.Op == stream.DeleteEdge {
		if l, ok := a.g.EdgeLabel(x, y); ok {
			el = l
		}
	}
	return len(a.q.MatchingEdges(a.g.Label(x), a.g.Label(y), el, false)) > 0
}

// Roots implements csm.Enumerator. For insertions it drains the ΔM⁺
// buffered by UpdateADS; for deletions (called before the mutation) it
// scans the root table for matches using the doomed edge.
func (a *SJTree) Roots(upd stream.Update, emit func(csm.State)) {
	n := uint8(a.q.NumVertices())
	emitAssignment := func(as assignment) {
		s := csm.NewState(0)
		s.Map = as
		s.Depth = n
		emit(s)
	}
	switch upd.Op {
	case stream.AddEdge:
		for _, as := range a.pending {
			emitAssignment(as)
		}
		a.pending = a.pending[:0]
	case stream.DeleteEdge:
		root := len(a.order) - 1
		for _, as := range a.tables[root] {
			if a.assignmentUsesEdge(&as, root, upd.U, upd.V) {
				emitAssignment(as)
			}
		}
	}
}

// Expand implements csm.Enumerator: join results are complete, there is
// nothing to expand.
func (a *SJTree) Expand(*csm.State, func(csm.State)) {}

// Terminal implements csm.Enumerator: every emitted state is a full match.
func (a *SJTree) Terminal(s *csm.State) (uint64, bool) {
	return 1, s.Depth == uint8(a.q.NumVertices())
}

// RebuildADS implements csm.Rebuilder: compares incrementally maintained
// tables with a from-scratch rebuild.
func (a *SJTree) RebuildADS() bool {
	old := a.tables
	a.rebuildTables()
	fresh := a.tables
	a.tables = old
	if len(fresh) != len(old) {
		return false
	}
	for i := range fresh {
		if len(fresh[i]) != len(old[i]) {
			return false
		}
		for k := range fresh[i] {
			if _, ok := old[i][k]; !ok {
				return false
			}
		}
	}
	return true
}

// JoinOrder returns the connected join-edge ordering chosen at Build.
func (a *SJTree) JoinOrder() []query.Edge {
	return append([]query.Edge(nil), a.order...)
}

// TableSizes returns the materialized table cardinalities (the memory
// footprint Table 1 warns about).
func (a *SJTree) TableSizes() []int {
	out := make([]int, len(a.tables))
	for i, t := range a.tables {
		out[i] = len(t)
	}
	return out
}
