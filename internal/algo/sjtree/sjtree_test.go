package sjtree_test

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/algo/sjtree"
	"paracosm/internal/csm"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

// TestDeltaMatchesReference: the join-based deltas must equal the
// recompute-and-diff reference on random mixed streams.
func TestDeltaMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := algotest.RandomGraph(rng, 20, 40, 2, 2)
		q := algotest.RandomQuery(rng, g, 4)
		if q == nil {
			continue
		}
		eng := csm.NewEngine(sjtree.New())
		if err := eng.Init(g, q); err != nil {
			t.Fatal(err)
		}
		for i, upd := range algotest.RandomStream(rng, g, 30, 0.65, 2) {
			wantPos, wantNeg := refmatch.Delta(g, q, upd, refmatch.Options{})
			d, err := eng.ProcessUpdate(context.Background(), upd)
			if err != nil {
				t.Fatalf("seed %d update %d: %v", seed, i, err)
			}
			if d.Positive != wantPos || d.Negative != wantNeg {
				t.Fatalf("seed %d update %d (%v): (+%d,-%d), reference (+%d,-%d)",
					seed, i, upd, d.Positive, d.Negative, wantPos, wantNeg)
			}
		}
	}
}

// TestTablesMatchRebuild: incremental table maintenance equals a rebuild
// after every update.
func TestTablesMatchRebuild(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := algotest.RandomGraph(rng, 18, 36, 2, 1)
		q := algotest.RandomQuery(rng, g, 4)
		if q == nil {
			continue
		}
		a := sjtree.New()
		eng := csm.NewEngine(a)
		if err := eng.Init(g, q); err != nil {
			t.Fatal(err)
		}
		for i, upd := range algotest.RandomStream(rng, g, 25, 0.6, 1) {
			if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
				t.Fatal(err)
			}
			if !a.RebuildADS() {
				t.Fatalf("seed %d: tables inconsistent after update %d (%v)", seed, i, upd)
			}
		}
	}
}

// TestInitialTablesMaterializeAllMatches: after Build, the root table
// holds exactly the static match set.
func TestInitialTablesMaterializeAllMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := algotest.RandomGraph(rng, 20, 45, 2, 1)
	q := algotest.RandomQuery(rng, g, 4)
	if q == nil {
		t.Skip("no query")
	}
	a := sjtree.New()
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	sizes := a.TableSizes()
	if got, want := uint64(sizes[len(sizes)-1]), refmatch.Count(g, q, refmatch.Options{}); got != want {
		t.Fatalf("root table has %d entries, reference counts %d matches", got, want)
	}
	// Tables grow with join level coverage semantics: every level is
	// non-empty only if the previous one is.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > 0 && sizes[i-1] == 0 {
			t.Fatalf("level %d non-empty above empty level: %v", i, sizes)
		}
	}
}

// TestJoinOrderIsConnected: each join edge shares a vertex with the
// prefix.
func TestJoinOrderIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := algotest.RandomGraph(rng, 15, 30, 2, 1)
	q := algotest.RandomQuery(rng, g, 5)
	if q == nil {
		t.Skip("no query")
	}
	a := sjtree.New()
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	order := a.JoinOrder()
	if len(order) != q.NumEdges() {
		t.Fatalf("join order covers %d of %d edges", len(order), q.NumEdges())
	}
	seen := map[uint8]bool{order[0].U: true, order[0].V: true}
	for _, e := range order[1:] {
		if !seen[e.U] && !seen[e.V] {
			t.Fatalf("join order disconnected at edge (%d,%d)", e.U, e.V)
		}
		seen[e.U], seen[e.V] = true, true
	}
}

func TestAffectsADSLabelOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := algotest.RandomGraph(rng, 15, 30, 3, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	a := sjtree.New()
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	if a.AffectsADS(stream.Update{Op: stream.AddVertex}) {
		t.Fatal("vertex op classified unsafe")
	}
	// An edge whose labels match no query edge is safe.
	safeSeen, unsafeSeen := false, false
	for _, upd := range algotest.RandomStream(rng, g, 40, 0.7, 1) {
		if a.AffectsADS(upd) {
			unsafeSeen = true
		} else {
			safeSeen = true
			pos, neg := refmatch.Delta(g, q, upd, refmatch.Options{})
			if pos != 0 || neg != 0 {
				t.Fatalf("safe-classified %v has ΔM (+%d,-%d)", upd, pos, neg)
			}
		}
		if err := upd.Apply(g); err != nil {
			t.Fatal(err)
		}
		a.UpdateADS(upd)
	}
	if !safeSeen || !unsafeSeen {
		t.Skipf("degenerate stream (safe=%v unsafe=%v)", safeSeen, unsafeSeen)
	}
}

// TestMatchMultisets: emitted states carry the exact embeddings, signs
// included.
func TestMatchMultisets(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := algotest.RandomGraph(rng, 16, 32, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	a := sjtree.New()
	eng := csm.NewEngine(a)
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	eng.OnMatch = func(s *csm.State, count uint64, positive bool) {
		k := ""
		for u := 0; u < q.NumVertices(); u++ {
			v := s.Map[u]
			k += string([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
		}
		if positive {
			got[k]++
		} else {
			got[k]--
		}
	}
	for _, upd := range algotest.RandomStream(rng, g, 25, 0.7, 1) {
		got = map[string]int{}
		before := refmatch.Matches(g, q, refmatch.Options{})
		h := g.Clone()
		if err := upd.Apply(h); err != nil {
			t.Fatal(err)
		}
		after := refmatch.Matches(h, q, refmatch.Options{})
		if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
			t.Fatal(err)
		}
		for k, c := range after {
			if diff := c - before[k]; diff != 0 && got[k] != diff {
				t.Fatalf("match %q: got %+d, want %+d", k, got[k], diff)
			}
		}
		for k, c := range before {
			if diff := after[k] - c; diff != 0 && got[k] != diff {
				t.Fatalf("expired match %q: got %+d, want %+d", k, got[k], diff)
			}
		}
	}
}
