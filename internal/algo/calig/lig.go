package calig

import (
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// lig is the lighting index: lit[u][v] records whether data vertex v is
// "lighted" for query vertex u, i.e. v passes the static label/degree test
// and every query neighbor u' of u has at least one supporting data
// neighbor v' of v (matching label and sufficient degree). CaLiG ignores
// edge labels, so support is label-only.
//
// Because support consults only the labels and degrees of v's neighbors
// (not their lit state), an edge update (x,y) can change lit entries only
// for x, y and their direct neighbors, which keeps incremental maintenance
// exact and local.
type lig struct {
	g   *graph.Graph
	q   *query.Graph
	lit [][]bool // [query vertex][data vertex]
}

func newLIG(g *graph.Graph, q *query.Graph) *lig {
	ix := &lig{g: g, q: q}
	ix.lit = ix.computeAll()
	return ix
}

func (ix *lig) computeAll() [][]bool {
	n := ix.q.NumVertices()
	nv := ix.g.NumVertices()
	lit := make([][]bool, n)
	for u := 0; u < n; u++ {
		lit[u] = make([]bool, nv)
		for v := 0; v < nv; v++ {
			lit[u][v] = ix.compute(query.VertexID(u), graph.VertexID(v))
		}
	}
	return lit
}

// compute evaluates lit(u,v) against the current graph.
func (ix *lig) compute(u query.VertexID, v graph.VertexID) bool {
	if !ix.g.Alive(v) || ix.g.Label(v) != ix.q.Label(u) || ix.g.Degree(v) < ix.q.Degree(u) {
		return false
	}
	for _, uq := range ix.q.Neighbors(u) {
		du := ix.q.Degree(uq.ID)
		// Support requires a neighbor carrying uq's label: scan only that
		// label run of v's adjacency.
		found := false
		for _, nb := range ix.g.NeighborsWithLabel(v, ix.q.Label(uq.ID)) {
			if ix.g.Degree(nb.ID) >= du {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Lit reports the lighting state of (u, v).
func (ix *lig) Lit(u query.VertexID, v graph.VertexID) bool {
	return int(v) < len(ix.lit[u]) && ix.lit[u][v]
}

// apply maintains the index after upd has been applied to the graph.
func (ix *lig) apply(upd stream.Update) {
	switch upd.Op {
	case stream.AddVertex:
		for u := range ix.lit {
			for ix.g.NumVertices() > len(ix.lit[u]) {
				ix.lit[u] = append(ix.lit[u], false)
			}
		}
	case stream.DeleteVertex:
		// Isolated vertices are never lit; nothing to do.
	case stream.AddEdge, stream.DeleteEdge:
		ix.recomputeAround(upd.U)
		ix.recomputeAround(upd.V)
	}
}

// recomputeAround refreshes the lit entries of w and its neighbors (the
// exact affected set for a degree/adjacency change at w).
func (ix *lig) recomputeAround(w graph.VertexID) {
	ix.recomputeVertex(w)
	for _, nb := range ix.g.Neighbors(w) {
		ix.recomputeVertex(nb.ID)
	}
}

func (ix *lig) recomputeVertex(v graph.VertexID) {
	if int(v) >= len(ix.lit[0]) {
		return
	}
	for u := range ix.lit {
		ix.lit[u][v] = ix.compute(query.VertexID(u), v)
	}
}

// consistent recomputes the whole index and compares (csm.Rebuilder).
func (ix *lig) consistent() bool {
	fresh := ix.computeAll()
	for u := range fresh {
		for v := range fresh[u] {
			got := false
			if v < len(ix.lit[u]) {
				got = ix.lit[u][v]
			}
			if fresh[u][v] != got {
				return false
			}
		}
	}
	return true
}

// hview is a hypothetical graph view with one edge toggled relative to the
// real graph; wouldChange uses it to evaluate the post-update index without
// mutating anything.
type hview struct {
	g    *graph.Graph
	x, y graph.VertexID
	add  bool // true: edge (x,y) pretended present; false: pretended absent
}

func (h hview) degree(v graph.VertexID) int {
	d := h.g.Degree(v)
	if v == h.x || v == h.y {
		if h.add {
			d++
		} else {
			d--
		}
	}
	return d
}

func (h hview) neighbors(v graph.VertexID, yield func(graph.VertexID)) {
	other := graph.NoVertex
	if v == h.x {
		other = h.y
	} else if v == h.y {
		other = h.x
	}
	for _, nb := range h.g.Neighbors(v) {
		if !h.add && nb.ID == other {
			continue // edge pretended deleted
		}
		yield(nb.ID)
	}
	if h.add && other != graph.NoVertex {
		yield(other)
	}
}

// neighborsWithLabel is the label-sliced variant of neighbors: it yields
// only data neighbors of v carrying vertex label l, using the graph's label
// run and applying the toggled edge on top.
func (h hview) neighborsWithLabel(v graph.VertexID, l graph.Label, yield func(graph.VertexID)) {
	other := graph.NoVertex
	if v == h.x {
		other = h.y
	} else if v == h.y {
		other = h.x
	}
	for _, nb := range h.g.NeighborsWithLabel(v, l) {
		if !h.add && nb.ID == other {
			continue // edge pretended deleted
		}
		yield(nb.ID)
	}
	if h.add && other != graph.NoVertex && h.g.Label(other) == l {
		yield(other)
	}
}

// computeHypo evaluates lit(u,v) against the hypothetical view.
func (ix *lig) computeHypo(h hview, u query.VertexID, v graph.VertexID) bool {
	if !ix.g.Alive(v) || ix.g.Label(v) != ix.q.Label(u) || h.degree(v) < ix.q.Degree(u) {
		return false
	}
	for _, uq := range ix.q.Neighbors(u) {
		du := ix.q.Degree(uq.ID)
		found := false
		h.neighborsWithLabel(v, ix.q.Label(uq.ID), func(w graph.VertexID) {
			if !found && h.degree(w) >= du {
				found = true
			}
		})
		if !found {
			return false
		}
	}
	return true
}

// wouldChange reports whether applying upd would alter any lit entry.
// Called before the update is applied.
func (ix *lig) wouldChange(upd stream.Update) bool {
	if !upd.IsEdge() {
		return false
	}
	h := hview{g: ix.g, x: upd.U, y: upd.V, add: upd.Op == stream.AddEdge}
	check := func(v graph.VertexID) bool {
		for u := range ix.lit {
			if ix.computeHypo(h, query.VertexID(u), v) != ix.Lit(query.VertexID(u), v) {
				return true
			}
		}
		return false
	}
	seen := map[graph.VertexID]bool{}
	probe := func(v graph.VertexID) bool {
		if seen[v] {
			return false
		}
		seen[v] = true
		return check(v)
	}
	if probe(upd.U) || probe(upd.V) {
		return true
	}
	changed := false
	h.neighbors(upd.U, func(w graph.VertexID) {
		if !changed && probe(w) {
			changed = true
		}
	})
	if changed {
		return true
	}
	h.neighbors(upd.V, func(w graph.VertexID) {
		if !changed && probe(w) {
			changed = true
		}
	})
	return changed
}
