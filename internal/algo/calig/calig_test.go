package calig

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

func TestCountInjectiveDisjointSets(t *testing.T) {
	cands := [][]graph.VertexID{{1, 2, 3}, {4, 5}}
	if got := countInjective(cands); got != 6 {
		t.Fatalf("countInjective = %d, want 6", got)
	}
}

func TestCountInjectiveIdenticalSets(t *testing.T) {
	// Two shells sharing {1,2,3}: 3*2 = 6 injective assignments.
	cands := [][]graph.VertexID{{1, 2, 3}, {1, 2, 3}}
	if got := countInjective(cands); got != 6 {
		t.Fatalf("countInjective = %d, want 6", got)
	}
	// Three shells over {1,2}: impossible.
	cands = [][]graph.VertexID{{1, 2}, {1, 2}, {1, 2}}
	if got := countInjective(cands); got != 0 {
		t.Fatalf("countInjective = %d, want 0", got)
	}
}

func TestCountInjectivePartialOverlap(t *testing.T) {
	// C1={1,2}, C2={2,3}: (1,2),(1,3),(2,3) = 3.
	cands := [][]graph.VertexID{{1, 2}, {2, 3}}
	if got := countInjective(cands); got != 3 {
		t.Fatalf("countInjective = %d, want 3", got)
	}
}

func TestCountInjectiveEmpty(t *testing.T) {
	if got := countInjective(nil); got != 1 {
		t.Fatalf("countInjective(nil) = %d, want 1 (empty product)", got)
	}
	if got := countInjective([][]graph.VertexID{{}}); got != 0 {
		t.Fatalf("countInjective with empty set = %d, want 0", got)
	}
}

// bruteInjective counts SDRs by explicit enumeration for cross-checking.
func bruteInjective(cands [][]graph.VertexID) uint64 {
	used := map[graph.VertexID]bool{}
	var rec func(i int) uint64
	rec = func(i int) uint64 {
		if i == len(cands) {
			return 1
		}
		var total uint64
		for _, v := range cands[i] {
			if !used[v] {
				used[v] = true
				total += rec(i + 1)
				used[v] = false
			}
		}
		return total
	}
	return rec(0)
}

func TestCountInjectiveAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		cands := make([][]graph.VertexID, k)
		for i := range cands {
			m := rng.Intn(5)
			seen := map[graph.VertexID]bool{}
			for j := 0; j < m; j++ {
				v := graph.VertexID(rng.Intn(8))
				if !seen[v] {
					seen[v] = true
					cands[i] = append(cands[i], v)
				}
			}
		}
		return countInjective(cands) == bruteInjective(cands)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func buildFixture(t *testing.T, counting bool) (*CaLiG, *graph.Graph, *query.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	g := graph.New(30)
	for i := 0; i < 30; i++ {
		g.AddVertex(graph.Label(rng.Intn(2)))
	}
	for i := 0; i < 70; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(30)), graph.VertexID(rng.Intn(30)), 0)
	}
	// Star query with a tail: kernel = {center}, shells elsewhere.
	q := query.MustNew([]graph.Label{0, 1, 1, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(0, 2, 0)
	q.MustAddEdge(0, 3, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	var a *CaLiG
	if counting {
		a = New(Counting())
	} else {
		a = New()
	}
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	return a, g, q
}

func TestKernelFirstOrdersAreConnectedPermutations(t *testing.T) {
	a, _, q := buildFixture(t, false)
	for i := range q.Edges() {
		for _, flip := range []bool{false, true} {
			eo := query.EdgeOrientation{Index: i, Flipped: flip}
			ord := a.Order(eo)
			if len(ord) != q.NumVertices() {
				t.Fatalf("order %v wrong length", ord)
			}
			seen := map[query.VertexID]bool{}
			for _, v := range ord {
				if seen[v] {
					t.Fatalf("duplicate in order %v", ord)
				}
				seen[v] = true
			}
			for pos := 2; pos < len(ord); pos++ {
				connected := false
				for _, nb := range q.Neighbors(ord[pos]) {
					for p := 0; p < pos; p++ {
						if ord[p] == nb.ID {
							connected = true
						}
					}
				}
				if !connected {
					t.Fatalf("order %v disconnected at %d", ord, pos)
				}
			}
		}
	}
}

func TestCountingModeDepth(t *testing.T) {
	a, _, q := buildFixture(t, true)
	for code, cd := range a.countDepth {
		ord := a.Order(csm.DecodeOrder(uint16(code)))
		// Every position from countDepth on must be a shell.
		for pos := int(cd); pos < len(ord); pos++ {
			if !a.isShell[ord[pos]] {
				t.Fatalf("order %v: non-shell at counted suffix position %d", ord, pos)
			}
		}
		_ = q
	}
}

// TestCountingEqualsEnumeration: counting mode and full enumeration must
// report identical totals on random update streams.
func TestCountingEqualsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g0 := graph.New(25)
	for i := 0; i < 25; i++ {
		g0.AddVertex(graph.Label(rng.Intn(2)))
	}
	for i := 0; i < 50; i++ {
		g0.AddEdge(graph.VertexID(rng.Intn(25)), graph.VertexID(rng.Intn(25)), 0)
	}
	q := query.MustNew([]graph.Label{0, 1, 1, 0, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(0, 2, 0)
	q.MustAddEdge(0, 3, 0)
	q.MustAddEdge(3, 4, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}

	run := func(counting bool) (uint64, uint64) {
		var a *CaLiG
		if counting {
			a = New(Counting())
		} else {
			a = New()
		}
		eng := csm.NewEngine(a)
		g := g0.Clone()
		if err := eng.Init(g, q); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		var pos, neg uint64
		for i := 0; i < 40; i++ {
			u := graph.VertexID(rng.Intn(25))
			v := graph.VertexID(rng.Intn(25))
			var upd stream.Update
			if g.HasEdge(u, v) {
				upd = stream.Update{Op: stream.DeleteEdge, U: u, V: v}
			} else if u != v {
				upd = stream.Update{Op: stream.AddEdge, U: u, V: v}
			} else {
				continue
			}
			d, err := eng.ProcessUpdate(context.Background(), upd)
			if err != nil {
				t.Fatal(err)
			}
			pos += d.Positive
			neg += d.Negative
		}
		return pos, neg
	}
	p1, n1 := run(false)
	p2, n2 := run(true)
	if p1 != p2 || n1 != n2 {
		t.Fatalf("enumeration (+%d,-%d) != counting (+%d,-%d)", p1, n1, p2, n2)
	}
}

// TestLIGWouldChangeExact: wouldChange must predict exactly whether the
// incremental maintenance changes any lit entry.
func TestLIGWouldChangeExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(15)
		for i := 0; i < 15; i++ {
			g.AddVertex(graph.Label(rng.Intn(2)))
		}
		for i := 0; i < 25; i++ {
			g.AddEdge(graph.VertexID(rng.Intn(15)), graph.VertexID(rng.Intn(15)), 0)
		}
		q := query.MustNew([]graph.Label{0, 1, 0})
		q.MustAddEdge(0, 1, 0)
		q.MustAddEdge(1, 2, 0)
		if q.Finalize() != nil {
			return false
		}
		ix := newLIG(g, q)
		for step := 0; step < 15; step++ {
			u := graph.VertexID(rng.Intn(15))
			v := graph.VertexID(rng.Intn(15))
			var upd stream.Update
			if g.HasEdge(u, v) {
				upd = stream.Update{Op: stream.DeleteEdge, U: u, V: v}
			} else if u != v {
				upd = stream.Update{Op: stream.AddEdge, U: u, V: v}
			} else {
				continue
			}
			predicted := ix.wouldChange(upd)
			before := ligSnapshot(ix)
			if upd.Apply(g) != nil {
				continue
			}
			ix.apply(upd)
			changed := ligSnapshot(ix) != before
			// wouldChange must never under-predict; (it is exact for the
			// 1-hop lighting rule, so equality is asserted).
			if changed != predicted {
				return false
			}
		}
		return ix.consistent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func ligSnapshot(ix *lig) string {
	out := make([]byte, 0, 64)
	for u := range ix.lit {
		for _, b := range ix.lit[u] {
			if b {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}
	return string(out)
}

// TestCaLiGIgnoresEdgeLabels: CaLiG's deltas must match the reference with
// IgnoreELabels semantics even on edge-labeled graphs.
func TestCaLiGIgnoresEdgeLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.New(20)
	for i := 0; i < 20; i++ {
		g.AddVertex(graph.Label(rng.Intn(2)))
	}
	for i := 0; i < 40; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(20)), graph.VertexID(rng.Intn(20)), graph.Label(rng.Intn(3)))
	}
	q := query.MustNew([]graph.Label{0, 1, 0})
	q.MustAddEdge(0, 1, 1)
	q.MustAddEdge(1, 2, 2)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	a := New()
	eng := csm.NewEngine(a)
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		u := graph.VertexID(rng.Intn(20))
		v := graph.VertexID(rng.Intn(20))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		upd := stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: graph.Label(rng.Intn(3))}
		wantPos, _ := refmatch.Delta(g, q, upd, refmatch.Options{IgnoreELabels: true})
		d, err := eng.ProcessUpdate(context.Background(), upd)
		if err != nil {
			t.Fatal(err)
		}
		if d.Positive != wantPos {
			t.Fatalf("update %v: +%d, reference +%d", upd, d.Positive, wantPos)
		}
	}
}

func TestVertexCoverIsRecorded(t *testing.T) {
	a, _, q := buildFixture(t, false)
	kernels, shells := q.VertexCover()
	var fromAlgo []query.VertexID
	for v, sh := range a.isShell {
		if sh {
			fromAlgo = append(fromAlgo, query.VertexID(v))
		}
	}
	sort.Slice(fromAlgo, func(i, j int) bool { return fromAlgo[i] < fromAlgo[j] })
	if len(fromAlgo) != len(shells) {
		t.Fatalf("shells = %v, query.VertexCover shells = %v (kernels %v)", fromAlgo, shells, kernels)
	}
}
