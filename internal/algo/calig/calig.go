// Package calig implements the CaLiG baseline (Yang et al., SIGMOD'23) in
// the general CSM model. CaLiG maintains a candidate lighting index (LiG)
// over (query vertex, data vertex) pairs and decomposes the query into
// kernel vertices (a vertex cover) and shell vertices (the independent
// complement). Enumeration backtracks over kernels only; once every kernel
// is matched, the candidates of all remaining shell vertices are fully
// determined and matches can be counted combinatorially instead of
// enumerated (the "turbo boosting" of the original paper).
//
// As in the original system — and as in the paper's evaluation setup —
// CaLiG ignores edge labels.
package calig

import (
	"paracosm/internal/algo/algobase"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// CaLiG is the LiG-indexed kernel/shell CSM baseline.
type CaLiG struct {
	algobase.Base
	ix       *lig
	counting bool

	isShell []bool
	// countDepth[orderCode] is the position from which the order's suffix
	// consists purely of shell vertices; in counting mode enumeration
	// stops there and shells are counted combinatorially.
	countDepth []uint8
	// back[orderCode] caches backward constraints for shell counting.
	back [][][]query.BackEdge
}

// Option configures CaLiG.
type Option func(*CaLiG)

// Counting enables combinatorial shell counting: Terminal leaves represent
// (and report) the number of matches without materializing shell
// assignments. Disable (default) when complete embeddings are required.
func Counting() Option { return func(a *CaLiG) { a.counting = true } }

// New returns a CaLiG instance.
func New(opts ...Option) *CaLiG {
	a := &CaLiG{}
	for _, o := range opts {
		o(a)
	}
	return a
}

var (
	_ csm.Algorithm = (*CaLiG)(nil)
	_ csm.Rebuilder = (*CaLiG)(nil)
)

// Name implements csm.Algorithm.
func (a *CaLiG) Name() string { return "CaLiG" }

// Build implements csm.Algorithm: computes the vertex cover, builds the
// LiG and installs kernel-first matching orders.
func (a *CaLiG) Build(g *graph.Graph, q *query.Graph) error {
	a.IgnoreELabels = true
	a.Init(g, q)
	a.ix = newLIG(g, q)
	a.Filter = a.ix.Lit

	kernel, shell := q.VertexCover()
	_ = kernel
	a.isShell = make([]bool, q.NumVertices())
	for _, s := range shell {
		a.isShell[s] = true
	}

	ne := q.NumEdges()
	a.countDepth = make([]uint8, 2*ne)
	a.back = make([][][]query.BackEdge, 2*ne)
	for i := 0; i < ne; i++ {
		for _, flip := range []bool{false, true} {
			eo := query.EdgeOrientation{Index: i, Flipped: flip}
			e := q.Edges()[i]
			s0, s1 := e.U, e.V
			if flip {
				s0, s1 = s1, s0
			}
			ord := a.kernelFirstOrder(s0, s1)
			a.SetOrder(eo, ord)
			code := csm.EncodeOrder(eo)
			a.back[code] = q.BackwardNeighbors(ord)
			// Longest all-shell suffix.
			cd := len(ord)
			for cd > 2 && a.isShell[ord[cd-1]] {
				cd--
			}
			a.countDepth[code] = uint8(cd)
		}
	}
	return nil
}

// kernelFirstOrder builds a connected order starting at (s0, s1) that
// prefers kernel vertices, pushing shells as late as possible.
func (a *CaLiG) kernelFirstOrder(s0, s1 query.VertexID) []query.VertexID {
	q := a.Q
	n := q.NumVertices()
	order := make([]query.VertexID, 0, n)
	in := make([]bool, n)
	backDeg := make([]int, n)
	add := func(v query.VertexID) {
		order = append(order, v)
		in[v] = true
		for _, nb := range q.Neighbors(v) {
			backDeg[nb.ID]++
		}
	}
	add(s0)
	add(s1)
	for len(order) < n {
		best := -1
		bestShell := true
		for v := 0; v < n; v++ {
			if in[v] || backDeg[v] == 0 {
				continue
			}
			sh := a.isShell[v]
			switch {
			case best < 0:
				best, bestShell = v, sh
			case !sh && bestShell:
				best, bestShell = v, sh
			case sh == bestShell && backDeg[v] > backDeg[best]:
				best = v
			}
		}
		if best < 0 {
			break
		}
		add(query.VertexID(best))
	}
	return order
}

// UpdateADS implements csm.Algorithm: local LiG maintenance.
func (a *CaLiG) UpdateADS(upd stream.Update) { a.ix.apply(upd) }

// AffectsADS implements csm.Algorithm: stage-3 filtering — the update is
// unsafe if it would change any lighting state, or if its endpoints are
// both lit for some query edge (in which case a match could use the edge
// even though the index is unchanged).
func (a *CaLiG) AffectsADS(upd stream.Update) bool {
	if !a.Relevant(upd) {
		return false
	}
	if a.ix.wouldChange(upd) {
		return true
	}
	x, y := upd.U, upd.V
	lx, ly := a.G.Label(x), a.G.Label(y)
	for _, eo := range a.Q.MatchingEdges(lx, ly, 0, true) {
		e := a.Q.Edges()[eo.Index]
		qa, qb := e.U, e.V
		if eo.Flipped {
			qa, qb = qb, qa
		}
		if a.ix.Lit(qa, x) && a.ix.Lit(qb, y) {
			return true
		}
	}
	return false
}

// RebuildADS implements csm.Rebuilder.
func (a *CaLiG) RebuildADS() bool { return a.ix.consistent() }

// Terminal implements csm.Enumerator. In counting mode a state whose
// remaining vertices are all shells is a leaf representing the number of
// injective shell assignments; otherwise leaves are full embeddings.
func (a *CaLiG) Terminal(s *csm.State) (uint64, bool) {
	n := a.Q.NumVertices()
	if int(s.Depth) == n {
		return 1, true
	}
	if a.counting && s.Depth == a.countDepth[s.Order] {
		return a.countShells(s), true
	}
	return 0, false
}

// countShells counts the injective assignments of the remaining shell
// vertices of s, given that all their query neighbors are matched.
func (a *CaLiG) countShells(s *csm.State) uint64 {
	ord := a.Order(csm.DecodeOrder(s.Order))
	back := a.back[s.Order]
	k := len(ord) - int(s.Depth)
	cands := make([][]graph.VertexID, 0, k)
	for pos := int(s.Depth); pos < len(ord); pos++ {
		c := a.shellCandidates(s, ord, ord[pos], back[pos])
		if len(c) == 0 {
			return 0
		}
		cands = append(cands, c)
	}
	return countInjective(cands)
}

// shellCandidates materializes the candidate set of shell vertex u. Every
// query neighbor of a shell is a kernel vertex, matched before countDepth,
// so the set is the intersection of the L(u)-labeled adjacency runs of the
// matched neighbors — folded smallest-run-first through one buffer with the
// shared pairwise kernels (graph.IntersectIDsNeighbors supports the
// in-place fold) — then filtered by degree, injectivity and the lighting
// index. CaLiG ignores edge labels, so ID intersection is exact here.
func (a *CaLiG) shellCandidates(s *csm.State, ord []query.VertexID, u query.VertexID, back []query.BackEdge) []graph.VertexID {
	lu := a.Q.Label(u)
	du := a.Q.Degree(u)
	var runs [query.MaxVertices][]graph.Neighbor
	k := 0
	for _, be := range back {
		w := s.Map[ord[be.Pos]]
		runs[k] = a.G.NeighborsWithLabel(w, lu)
		a.KStats.AddCandidateLookup(len(runs[k]) < a.G.Degree(w))
		k++
	}
	if k == 0 {
		return nil // unreachable: matching orders are connected
	}
	// Smallest run first so the working set shrinks fastest.
	for i := 1; i < k; i++ {
		for j := i; j > 0 && len(runs[j]) < len(runs[j-1]); j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
	out := make([]graph.VertexID, 0, len(runs[0]))
	for i := range runs[0] {
		out = append(out, runs[0][i].ID)
	}
	for i := 1; i < k && len(out) > 0; i++ {
		out = graph.IntersectIDsNeighbors(out[:0], out, runs[i], &a.KStats)
	}
	w := 0
	for _, v := range out {
		if a.G.Degree(v) < du || s.Uses(v) {
			continue
		}
		if a.Filter != nil && !a.Filter(u, v) {
			continue
		}
		out[w] = v
		w++
	}
	return out[:w]
}

// countInjective counts systems of distinct representatives of the
// candidate sets. Data vertices are grouped by their membership signature
// (which sets contain them); within a signature group vertices are
// interchangeable, so the count follows from falling factorials over
// groups — exact and polynomial for the small shell counts of real
// queries.
func countInjective(cands [][]graph.VertexID) uint64 {
	k := len(cands)
	if k == 0 {
		return 1
	}
	sig := make(map[graph.VertexID]uint32, 16)
	for i, c := range cands {
		for _, v := range c {
			sig[v] |= 1 << uint(i)
		}
	}
	type group struct {
		mask  uint32
		total int
		used  int
	}
	gm := make(map[uint32]*group)
	for _, m := range sig {
		if g, ok := gm[m]; ok {
			g.total++
		} else {
			gm[m] = &group{mask: m, total: 1}
		}
	}
	groups := make([]*group, 0, len(gm))
	for _, g := range gm {
		groups = append(groups, g)
	}
	var rec func(i int) uint64
	rec = func(i int) uint64 {
		if i == k {
			return 1
		}
		var total uint64
		for _, g := range groups {
			if g.mask&(1<<uint(i)) == 0 || g.used >= g.total {
				continue
			}
			avail := uint64(g.total - g.used)
			g.used++
			total += avail * rec(i+1)
			g.used--
		}
		return total
	}
	return rec(0)
}

// Index exposes the LiG for white-box tests.
func (a *CaLiG) Index() interface {
	Lit(query.VertexID, graph.VertexID) bool
} {
	return a.ix
}
