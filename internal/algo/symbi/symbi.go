// Package symbi implements the Symbi baseline (Min et al., VLDB'21) in the
// general CSM model. Symbi maintains the dynamic candidate space (DCS)
// with symmetric bidirectional dynamic programming over the query's BFS
// DAG: D1 propagates top-down from the roots, D2 bottom-up from the
// leaves, and v is a candidate of u iff both hold. Because the DAG covers
// every query edge (unlike TurboFlux's spanning tree), DCS prunes strictly
// more than the DCG.
package symbi

import (
	"paracosm/internal/algo/algobase"
	"paracosm/internal/algo/dpindex"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Symbi is the DCS-indexed CSM baseline.
type Symbi struct {
	algobase.Base
	ix *dpindex.Index
}

// New returns a Symbi instance.
func New() *Symbi { return &Symbi{} }

var (
	_ csm.Algorithm      = (*Symbi)(nil)
	_ csm.Rebuilder      = (*Symbi)(nil)
	_ csm.FootprintLocal = (*Symbi)(nil)
)

// Name implements csm.Algorithm.
func (a *Symbi) Name() string { return "Symbi" }

// Build implements csm.Algorithm: constructs the DCS over the BFS DAG.
func (a *Symbi) Build(g *graph.Graph, q *query.Graph) error {
	a.Init(g, q)
	a.ix = dpindex.New(g, q, dpindex.DAGSkeleton(q.BuildDAG()), false)
	a.Filter = a.ix.Candidate
	return nil
}

// UpdateADS implements csm.Algorithm: incremental DCS maintenance.
func (a *Symbi) UpdateADS(upd stream.Update) { a.ix.ApplyUpdate(upd) }

// AffectsADS implements csm.Algorithm: stage-3 candidate filtering against
// the DCS.
func (a *Symbi) AffectsADS(upd stream.Update) bool {
	return a.Relevant(upd) && a.ix.WouldAffect(upd)
}

// RebuildADS implements csm.Rebuilder.
func (a *Symbi) RebuildADS() bool { return a.ix.ConsistentWithRebuild() }

// Index exposes the DCS for white-box tests.
func (a *Symbi) Index() *dpindex.Index { return a.ix }

// FootprintLocalFind implements csm.FootprintLocal: the DCS stores
// per-(query-vertex, data-vertex) states and ApplyUpdate propagates only
// along graph edges within query distance of the update, so maintenance
// and enumeration for footprint-disjoint updates touch disjoint entries.
func (a *Symbi) FootprintLocalFind() {}
