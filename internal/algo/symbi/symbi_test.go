package symbi

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/graphflow"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

func randomWorkload(seed int64) (*graph.Graph, *query.Graph, stream.Stream) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(24)
	for i := 0; i < 24; i++ {
		g.AddVertex(graph.Label(rng.Intn(3)))
	}
	for i := 0; i < 50; i++ {
		g.AddEdge(graph.VertexID(rng.Intn(24)), graph.VertexID(rng.Intn(24)), graph.Label(rng.Intn(2)))
	}
	q := query.MustNew([]graph.Label{0, 1, 2, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 1)
	q.MustAddEdge(2, 3, 0)
	if q.Finalize() != nil {
		panic("finalize")
	}
	sim := g.Clone()
	var s stream.Stream
	for i := 0; i < 40; i++ {
		u := graph.VertexID(rng.Intn(24))
		v := graph.VertexID(rng.Intn(24))
		if sim.HasEdge(u, v) {
			sim.RemoveEdge(u, v)
			s = append(s, stream.Update{Op: stream.DeleteEdge, U: u, V: v})
		} else if u != v {
			l := graph.Label(rng.Intn(2))
			sim.AddEdge(u, v, l)
			s = append(s, stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: l})
		}
	}
	return g, q, s
}

// TestDCSPrunesButPreservesResults: Symbi must visit no more search nodes
// than GraphFlow while reporting the same deltas.
func TestDCSPrunesButPreservesResults(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, q, s := randomWorkload(seed)
		run := func(a csm.Algorithm) (pos, neg, nodes uint64) {
			eng := csm.NewEngine(a)
			if err := eng.Init(g.Clone(), q); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(context.Background(), s); err != nil {
				t.Fatal(err)
			}
			st := eng.Stats()
			return st.Positive, st.Negative, st.Nodes
		}
		p1, n1, nodes1 := run(New())
		p2, n2, nodes2 := run(graphflow.New())
		if p1 != p2 || n1 != n2 {
			t.Fatalf("seed %d: Symbi (+%d,-%d) != GraphFlow (+%d,-%d)", seed, p1, n1, p2, n2)
		}
		if nodes1 > nodes2 {
			t.Fatalf("seed %d: Symbi visited %d nodes, GraphFlow %d — DCS not pruning", seed, nodes1, nodes2)
		}
	}
}

func TestRebuildConsistencyAfterStream(t *testing.T) {
	g, q, s := randomWorkload(42)
	a := New()
	eng := csm.NewEngine(a)
	if err := eng.Init(g, q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if !a.RebuildADS() {
		t.Fatal("DCS inconsistent with rebuild after stream")
	}
}

func TestAffectsADSConservative(t *testing.T) {
	g, q, s := randomWorkload(7)
	a := New()
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	// Any update that currently yields roots must be flagged unsafe.
	for _, upd := range s[:10] {
		if upd.Op != stream.AddEdge {
			continue
		}
		h := g.Clone()
		if upd.Apply(h) != nil {
			continue
		}
		b := New()
		if err := b.Build(h, q); err != nil {
			t.Fatal(err)
		}
		gotRoots := 0
		b.Roots(upd, func(csm.State) { gotRoots++ })
		if gotRoots > 0 && !a.AffectsADS(upd) {
			t.Fatalf("update %v yields %d roots but classified safe", upd, gotRoots)
		}
	}
}

func TestName(t *testing.T) {
	if New().Name() != "Symbi" {
		t.Fatal("wrong name")
	}
	if New().Index() != nil {
		t.Fatal("index should be nil before Build")
	}
}
