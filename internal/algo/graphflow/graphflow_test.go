package graphflow

import (
	"context"
	"testing"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

func fixture(t *testing.T) (*csm.Engine, *graph.Graph) {
	t.Helper()
	g := graph.New(4)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(2)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	q := query.MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := csm.NewEngine(New())
	if err := e.Init(g, q); err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestTriangleCompletion(t *testing.T) {
	e, _ := fixture(t)
	d, err := e.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 2, V: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Positive != 1 {
		t.Fatalf("positive = %d, want 1 (triangle closed)", d.Positive)
	}
}

func TestNoADS(t *testing.T) {
	a := New()
	g := graph.New(2)
	g.AddVertex(0)
	g.AddVertex(1)
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	// UpdateADS is a no-op and AffectsADS falls back to label/degree
	// relevance.
	upd := stream.Update{Op: stream.AddEdge, U: 0, V: 1}
	a.UpdateADS(upd)
	if !a.AffectsADS(upd) {
		t.Fatal("relevant insertion must be unsafe for an index-free algorithm")
	}
	if a.AffectsADS(stream.Update{Op: stream.AddVertex}) {
		t.Fatal("vertex op can never be unsafe")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "GraphFlow" {
		t.Fatal("wrong name")
	}
}
