// Package graphflow implements the GraphFlow baseline (Kankanamge et al.,
// SIGMOD'17) in the general CSM model: no auxiliary data structure at all
// (Table 1: O(1) index update), matches are found by direct backtracking
// from the updated edge with label/degree pruning only.
package graphflow

import (
	"paracosm/internal/algo/algobase"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// GraphFlow is the index-free CSM baseline.
type GraphFlow struct {
	algobase.Base
}

// New returns a GraphFlow instance.
func New() *GraphFlow { return &GraphFlow{} }

var (
	_ csm.Algorithm      = (*GraphFlow)(nil)
	_ csm.FootprintLocal = (*GraphFlow)(nil)
)

// Name implements csm.Algorithm.
func (a *GraphFlow) Name() string { return "GraphFlow" }

// Build implements csm.Algorithm: GraphFlow has no ADS, only matching
// orders.
func (a *GraphFlow) Build(g *graph.Graph, q *query.Graph) error {
	a.Init(g, q)
	return nil
}

// UpdateADS implements csm.Algorithm: nothing to maintain.
func (a *GraphFlow) UpdateADS(stream.Update) {}

// AffectsADS implements csm.Algorithm. With no ADS to filter against, any
// update passing the label/degree stages must be treated as potentially
// match-changing.
func (a *GraphFlow) AffectsADS(upd stream.Update) bool { return a.Relevant(upd) }

// FootprintLocalFind implements csm.FootprintLocal: GraphFlow has no ADS
// and enumerates by direct backtracking from the updated edge, touching
// only vertices within query distance of it.
func (a *GraphFlow) FootprintLocalFind() {}
