// Package algotest provides randomized workload helpers shared by the
// cross-validation tests of the CSM algorithms and of the ParaCOSM
// executors: random labeled data graphs, random-walk query extraction and
// well-formed random update streams.
package algotest

import (
	"math/rand"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"

	"paracosm/internal/algo/calig"
	"paracosm/internal/algo/graphflow"
	"paracosm/internal/algo/newsp"
	"paracosm/internal/algo/sjtree"
	"paracosm/internal/algo/symbi"
	"paracosm/internal/algo/turboflux"
)

// Factory constructs a fresh algorithm instance.
type Factory struct {
	Name string
	New  func() csm.Algorithm
	// IgnoreELabels is true for algorithms that disregard edge labels
	// (CaLiG); reference comparisons must use the same semantics.
	IgnoreELabels bool
}

// Factories returns one factory per bundled algorithm, in paper order.
// CaLiG is included twice: once enumerating, once in counting mode.
func Factories() []Factory {
	return []Factory{
		{Name: "CaLiG", New: func() csm.Algorithm { return calig.New() }, IgnoreELabels: true},
		{Name: "CaLiG-counting", New: func() csm.Algorithm { return calig.New(calig.Counting()) }, IgnoreELabels: true},
		{Name: "GraphFlow", New: func() csm.Algorithm { return graphflow.New() }},
		{Name: "NewSP", New: func() csm.Algorithm { return newsp.New() }},
		{Name: "SJ-Tree", New: func() csm.Algorithm { return sjtree.New() }},
		{Name: "Symbi", New: func() csm.Algorithm { return symbi.New() }},
		{Name: "TurboFlux", New: func() csm.Algorithm { return turboflux.New() }},
	}
}

// RandomGraph builds a random labeled graph with n vertices, ~e edges,
// vl vertex labels and el edge labels.
func RandomGraph(rng *rand.Rand, n, e, vl, el int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(vl)))
	}
	for i := 0; i < e; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		g.AddEdge(u, v, graph.Label(rng.Intn(el)))
	}
	return g
}

// RandomQuery extracts a connected query of the given size from g by
// random walk (the paper's query-generation methodology), or returns nil
// when g is too sparse to yield one.
func RandomQuery(rng *rand.Rand, g *graph.Graph, size int) *query.Graph {
	n := g.NumVertices()
	for attempt := 0; attempt < 100; attempt++ {
		seed := graph.VertexID(rng.Intn(n))
		if g.Degree(seed) == 0 {
			continue
		}
		idx := map[graph.VertexID]int{seed: 0}
		order := []graph.VertexID{seed}
		cur := seed
		for steps := 0; len(order) < size && steps < size*50; steps++ {
			ns := g.Neighbors(cur)
			if len(ns) == 0 {
				break
			}
			nxt := ns[rng.Intn(len(ns))].ID
			if _, ok := idx[nxt]; !ok {
				idx[nxt] = len(order)
				order = append(order, nxt)
			}
			cur = nxt
		}
		if len(order) < size {
			continue
		}
		labels := make([]graph.Label, size)
		for v, i := range idx {
			labels[i] = g.Label(v)
		}
		q, err := query.New(labels)
		if err != nil {
			return nil
		}
		for i, dv := range order {
			for _, nb := range g.Neighbors(dv) {
				if j, ok := idx[nb.ID]; ok && j > i {
					q.MustAddEdge(query.VertexID(i), query.VertexID(j), nb.ELabel)
				}
			}
		}
		if q.Finalize() != nil {
			continue
		}
		return q
	}
	return nil
}

// RandomStream generates length well-formed updates against a copy of g:
// inserts of absent edges (probability insertP) and deletes of present
// edges. The returned stream applies cleanly to g in order.
func RandomStream(rng *rand.Rand, g *graph.Graph, length int, insertP float64, el int) stream.Stream {
	sim := g.Clone()
	n := sim.NumVertices()
	var s stream.Stream
	for len(s) < length {
		if rng.Float64() < insertP {
			// Insert a random absent edge.
			ok := false
			for try := 0; try < 50; try++ {
				u := graph.VertexID(rng.Intn(n))
				v := graph.VertexID(rng.Intn(n))
				if u != v && !sim.HasEdge(u, v) {
					l := graph.Label(rng.Intn(el))
					sim.AddEdge(u, v, l)
					s = append(s, stream.Update{Op: stream.AddEdge, U: u, V: v, ELabel: l})
					ok = true
					break
				}
			}
			if !ok {
				break
			}
		} else {
			// Delete a random present edge.
			ok := false
			for try := 0; try < 50; try++ {
				u := graph.VertexID(rng.Intn(n))
				ns := sim.Neighbors(u)
				if len(ns) == 0 {
					continue
				}
				v := ns[rng.Intn(len(ns))].ID
				sim.RemoveEdge(u, v)
				s = append(s, stream.Update{Op: stream.DeleteEdge, U: u, V: v})
				ok = true
				break
			}
			if !ok {
				break
			}
		}
	}
	return s
}
