package algotest

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/refmatch"
	"paracosm/internal/stream"
)

// TestDeltaMatchesReference cross-validates every algorithm's incremental
// match counts against the recompute-and-diff reference on randomized
// graphs, queries and mixed insert/delete streams. This is the central
// correctness property of the whole repository: if this passes, the
// incremental semantics of Algorithm 1 are implemented faithfully.
func TestDeltaMatchesReference(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := RandomGraph(rng, 24, 50, 1+rng.Intn(3), 1+rng.Intn(2))
				q := RandomQuery(rng, g, 3+rng.Intn(3))
				if q == nil {
					continue
				}
				s := RandomStream(rng, g, 30, 0.7, 2)
				opt := refmatch.Options{IgnoreELabels: f.IgnoreELabels}

				algo := f.New()
				eng := csm.NewEngine(algo)
				if err := eng.Init(g, q); err != nil {
					t.Fatalf("seed %d: Init: %v", seed, err)
				}
				for i, upd := range s {
					wantPos, wantNeg := refmatch.Delta(g, q, upd, opt)
					d, err := eng.ProcessUpdate(context.Background(), upd)
					if err != nil {
						t.Fatalf("seed %d update %d (%v): %v", seed, i, upd, err)
					}
					if d.Positive != wantPos || d.Negative != wantNeg {
						t.Fatalf("seed %d update %d (%v): delta = (+%d,-%d), reference (+%d,-%d)",
							seed, i, upd, d.Positive, d.Negative, wantPos, wantNeg)
					}
				}
			}
		})
	}
}

// TestIncrementalADSConsistency verifies that incrementally maintained
// auxiliary structures equal a from-scratch rebuild after every update.
func TestIncrementalADSConsistency(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			algo := f.New()
			reb, ok := algo.(csm.Rebuilder)
			if !ok {
				t.Skip("no ADS to rebuild")
			}
			for seed := int64(100); seed < 106; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := RandomGraph(rng, 30, 70, 2, 2)
				q := RandomQuery(rng, g, 4)
				if q == nil {
					continue
				}
				algo = f.New()
				reb = algo.(csm.Rebuilder)
				eng := csm.NewEngine(algo)
				if err := eng.Init(g, q); err != nil {
					t.Fatal(err)
				}
				for i, upd := range RandomStream(rng, g, 25, 0.6, 2) {
					if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
						t.Fatalf("seed %d update %d: %v", seed, i, err)
					}
					if !reb.RebuildADS() {
						t.Fatalf("seed %d: ADS inconsistent after update %d (%v)", seed, i, upd)
					}
				}
			}
		})
	}
}

// TestSafetySoundness is the key inter-update property: any update the
// three-stage classifier deems safe (fails label/degree filters, or passes
// them but AffectsADS is false) must produce an empty ΔM.
func TestSafetySoundness(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			safeSeen := 0
			for seed := int64(200); seed < 212; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := RandomGraph(rng, 26, 55, 3, 2)
				q := RandomQuery(rng, g, 4)
				if q == nil {
					continue
				}
				opt := refmatch.Options{IgnoreELabels: f.IgnoreELabels}
				algo := f.New()
				eng := csm.NewEngine(algo)
				if err := eng.Init(g, q); err != nil {
					t.Fatal(err)
				}
				for i, upd := range RandomStream(rng, g, 30, 0.7, 2) {
					safe := !algo.AffectsADS(upd)
					if safe {
						safeSeen++
						pos, neg := refmatch.Delta(g, q, upd, opt)
						if pos != 0 || neg != 0 {
							t.Fatalf("seed %d update %d (%v): classified safe but ΔM = (+%d,-%d)",
								seed, i, upd, pos, neg)
						}
					}
					if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
						t.Fatal(err)
					}
				}
			}
			if safeSeen == 0 {
				t.Error("classifier never returned safe; filter is vacuous")
			}
		})
	}
}

// TestAlgorithmsAgreeOnMatchSets compares the exact multisets of matches
// reported by full-enumeration algorithms for every update against the
// reference diff (not only the counts).
func TestAlgorithmsAgreeOnMatchSets(t *testing.T) {
	for _, f := range Factories() {
		if f.Name == "CaLiG-counting" {
			continue // counting mode does not materialize embeddings
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(77))
			g := RandomGraph(rng, 20, 45, 2, 1)
			q := RandomQuery(rng, g, 4)
			if q == nil {
				t.Skip("no query extracted")
			}
			opt := refmatch.Options{IgnoreELabels: f.IgnoreELabels}
			algo := f.New()
			eng := csm.NewEngine(algo)
			if err := eng.Init(g, q); err != nil {
				t.Fatal(err)
			}
			var got []string
			eng.OnMatch = func(s *csm.State, count uint64, positive bool) {
				key := fmt.Sprintf("%v", matchKey(s, q.NumVertices(), positive))
				got = append(got, key)
			}
			for _, upd := range RandomStream(rng, g, 20, 0.7, 1) {
				got = got[:0]
				before := refmatch.Matches(g, q, opt)
				h := g.Clone()
				if err := upd.Apply(h); err != nil {
					t.Fatal(err)
				}
				after := refmatch.Matches(h, q, opt)
				var want []string
				for k, c := range after {
					for d := before[k]; d < c; d++ {
						want = append(want, fmt.Sprintf("%v", keyString(k, true)))
					}
				}
				for k, c := range before {
					for d := after[k]; d < c; d++ {
						want = append(want, fmt.Sprintf("%v", keyString(k, false)))
					}
				}
				if _, err := eng.ProcessUpdate(context.Background(), upd); err != nil {
					t.Fatal(err)
				}
				sort.Strings(got)
				sort.Strings(want)
				if len(got) != len(want) {
					t.Fatalf("update %v: %d matches reported, reference %d", upd, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("update %v: match multiset mismatch:\n got %v\nwant %v", upd, got, want)
					}
				}
			}
		})
	}
}

func matchKey(s *csm.State, n int, positive bool) string {
	b := make([]byte, 0, 4*n+1)
	for u := 0; u < n; u++ {
		v := s.Map[u]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if positive {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(b)
}

func keyString(k string, positive bool) string {
	b := []byte(k)
	if positive {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return string(b)
}

// TestVertexUpdatesAreNoOps: isolated vertex insertion/deletion never
// yields matches and keeps ADS consistent.
func TestVertexUpdatesAreNoOps(t *testing.T) {
	for _, f := range Factories() {
		rng := rand.New(rand.NewSource(5))
		g := RandomGraph(rng, 20, 40, 2, 1)
		q := RandomQuery(rng, g, 3)
		if q == nil {
			t.Skip("no query")
		}
		algo := f.New()
		eng := csm.NewEngine(algo)
		if err := eng.Init(g, q); err != nil {
			t.Fatal(err)
		}
		d, err := eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddVertex, VLabel: 1})
		if err != nil || d.Positive != 0 || d.Negative != 0 {
			t.Fatalf("%s: AddVertex delta (%v, %v)", f.Name, d, err)
		}
		newV := graph.VertexID(g.NumVertices() - 1)
		d, err = eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.DeleteVertex, U: newV})
		if err != nil || d.Positive != 0 || d.Negative != 0 {
			t.Fatalf("%s: DeleteVertex delta (%v, %v)", f.Name, d, err)
		}
		if reb, ok := algo.(csm.Rebuilder); ok && !reb.RebuildADS() {
			t.Fatalf("%s: ADS inconsistent after vertex ops", f.Name)
		}
		// An edge touching the re-grown vertex id space must work.
		d, err = eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddVertex, VLabel: q.Label(0)})
		if err != nil {
			t.Fatal(err)
		}
		_ = d
	}
}
