// Package newsp implements the NewSP baseline (Li et al., ICDE'24) in the
// general CSM model. NewSP decouples the search into CPT (compatible-set
// computation along the matching order) and EXP (expansion), deferring
// expansion until compatibility is established. In this reproduction the
// decoupling manifests as one-step-deferred expansion with forward
// checking: before a child state is expanded, the compatible sets of the
// not-yet-matched query vertices adjacent to the newly matched vertex are
// verified non-empty, pruning subtrees that plain backtracking (GraphFlow)
// would explore to failure. Like GraphFlow it keeps no auxiliary data
// structure (Table 1: O(1) index update).
package newsp

import (
	"paracosm/internal/algo/algobase"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// NewSP is the CPT/EXP-decoupled CSM baseline.
type NewSP struct {
	algobase.Base
}

// New returns a NewSP instance.
func New() *NewSP { return &NewSP{} }

var _ csm.Algorithm = (*NewSP)(nil)

// Name implements csm.Algorithm.
func (a *NewSP) Name() string { return "NewSP" }

// Build implements csm.Algorithm.
func (a *NewSP) Build(g *graph.Graph, q *query.Graph) error {
	a.Init(g, q)
	return nil
}

// UpdateADS implements csm.Algorithm: nothing to maintain.
func (a *NewSP) UpdateADS(stream.Update) {}

// AffectsADS implements csm.Algorithm: no ADS, so any label/degree-relevant
// update is potentially match-changing.
func (a *NewSP) AffectsADS(upd stream.Update) bool { return a.Relevant(upd) }

// Expand overrides the base expansion with NewSP's deferred-expansion
// pruning: a child is emitted only if, for every unmatched query vertex w
// adjacent to the newly matched vertex, the compatible set C(w, child) is
// non-empty (CPT before EXP).
func (a *NewSP) Expand(s *csm.State, emit func(csm.State)) {
	ord := a.Order(csm.DecodeOrder(s.Order))
	if int(s.Depth) >= len(ord) {
		return
	}
	u := ord[s.Depth]
	back := a.Q.BackwardNeighbors(ord)[s.Depth]
	a.ForEachCandidate(s, u, back, func(v graph.VertexID) {
		child := *s
		child.Set(u, v)
		if a.lookaheadOK(&child, u) {
			emit(child)
		}
	})
}

// lookaheadOK verifies that every unmatched query neighbor of u still has a
// compatible candidate under the extended state.
func (a *NewSP) lookaheadOK(s *csm.State, u query.VertexID) bool {
	for _, wq := range a.Q.Neighbors(u) {
		w := wq.ID
		if s.Matched(w) != graph.NoVertex {
			continue
		}
		if !a.hasCandidate(s, w) {
			return false
		}
	}
	return true
}

// hasCandidate reports whether C(w, s) is non-empty: some data vertex with
// w's label, sufficient degree, unused, and connected with matching edge
// labels to every matched query neighbor of w.
func (a *NewSP) hasCandidate(s *csm.State, w query.VertexID) bool {
	// Anchor on the matched neighbor with the smallest adjacency list.
	var anchor graph.VertexID = graph.NoVertex
	anchorDeg := 0
	for _, nb := range a.Q.Neighbors(w) {
		if m := s.Matched(nb.ID); m != graph.NoVertex {
			if d := a.G.Degree(m); anchor == graph.NoVertex || d < anchorDeg {
				anchor, anchorDeg = m, d
			}
		}
	}
	if anchor == graph.NoVertex {
		return true // no constraint reachable yet
	}
	lw := a.Q.Label(w)
	dw := a.Q.Degree(w)
	for _, nb := range a.G.Neighbors(anchor) {
		v := nb.ID
		if a.G.Label(v) != lw || a.G.Degree(v) < dw || s.Uses(v) {
			continue
		}
		ok := true
		for _, qn := range a.Q.Neighbors(w) {
			m := s.Matched(qn.ID)
			if m == graph.NoVertex {
				continue
			}
			el, exists := a.G.EdgeLabel(v, m)
			if !exists || (!a.IgnoreELabels && el != qn.ELabel) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
