// Package newsp implements the NewSP baseline (Li et al., ICDE'24) in the
// general CSM model. NewSP decouples the search into CPT (compatible-set
// computation along the matching order) and EXP (expansion), deferring
// expansion until compatibility is established. In this reproduction the
// decoupling manifests as one-step-deferred expansion with forward
// checking: before a child state is expanded, the compatible sets of the
// not-yet-matched query vertices adjacent to the newly matched vertex are
// verified non-empty, pruning subtrees that plain backtracking (GraphFlow)
// would explore to failure. Like GraphFlow it keeps no auxiliary data
// structure (Table 1: O(1) index update).
package newsp

import (
	"paracosm/internal/algo/algobase"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// NewSP is the CPT/EXP-decoupled CSM baseline.
type NewSP struct {
	algobase.Base
}

// New returns a NewSP instance.
func New() *NewSP { return &NewSP{} }

var _ csm.Algorithm = (*NewSP)(nil)

// Name implements csm.Algorithm.
func (a *NewSP) Name() string { return "NewSP" }

// Build implements csm.Algorithm.
func (a *NewSP) Build(g *graph.Graph, q *query.Graph) error {
	a.Init(g, q)
	return nil
}

// UpdateADS implements csm.Algorithm: nothing to maintain.
func (a *NewSP) UpdateADS(stream.Update) {}

// AffectsADS implements csm.Algorithm: no ADS, so any label/degree-relevant
// update is potentially match-changing.
func (a *NewSP) AffectsADS(upd stream.Update) bool { return a.Relevant(upd) }

// Expand overrides the base expansion with NewSP's deferred-expansion
// pruning: a child is emitted only if, for every unmatched query vertex w
// adjacent to the newly matched vertex, the compatible set C(w, child) is
// non-empty (CPT before EXP).
func (a *NewSP) Expand(s *csm.State, emit func(csm.State)) {
	ord := a.Order(csm.DecodeOrder(s.Order))
	if int(s.Depth) >= len(ord) {
		return
	}
	u := ord[s.Depth]
	back := a.Backward(csm.DecodeOrder(s.Order))[s.Depth]
	a.ForEachCandidate(s, u, back, func(v graph.VertexID) {
		child := *s
		child.Set(u, v)
		if a.lookaheadOK(&child, u) {
			emit(child)
		}
	})
}

// lookaheadOK verifies that every unmatched query neighbor of u still has a
// compatible candidate under the extended state.
func (a *NewSP) lookaheadOK(s *csm.State, u query.VertexID) bool {
	for _, wq := range a.Q.Neighbors(u) {
		w := wq.ID
		if s.Matched(w) != graph.NoVertex {
			continue
		}
		if !a.hasCandidate(s, w) {
			return false
		}
	}
	return true
}

// hasCandidate reports whether C(w, s) is non-empty: some data vertex with
// w's label, sufficient degree, unused, and connected with matching edge
// labels to every matched query neighbor of w. Like ForEachCandidate it is
// a k-way zipper over the L(w)-labeled adjacency runs of the matched
// neighbors, with all cursor state in fixed stack arrays (zero alloc — the
// lookahead runs on the non-escalated path too).
func (a *NewSP) hasCandidate(s *csm.State, w query.VertexID) bool {
	lw := a.Q.Label(w)
	var (
		runs    [query.MaxVertices][]graph.Neighbor
		elabels [query.MaxVertices]graph.Label
		pos     [query.MaxVertices]int
	)
	k := 0
	for _, nb := range a.Q.Neighbors(w) {
		if m := s.Matched(nb.ID); m != graph.NoVertex {
			runs[k] = a.G.NeighborsWithLabel(m, lw)
			elabels[k] = nb.ELabel
			k++
		}
	}
	if k == 0 {
		return true // no constraint reachable yet
	}
	// Anchor on the smallest run.
	ai := 0
	for i := 1; i < k; i++ {
		if len(runs[i]) < len(runs[ai]) {
			ai = i
		}
	}
	cand := runs[ai]
	anchorEL := elabels[ai]
	runs[ai], elabels[ai] = runs[k-1], elabels[k-1]
	k--
	dw := a.Q.Degree(w)
	var probes, galloped uint64
	found := false
zip:
	for _, nb := range cand {
		if !a.IgnoreELabels && nb.ELabel != anchorEL {
			continue
		}
		v := nb.ID
		if a.G.Degree(v) < dw || s.Uses(v) {
			continue
		}
		for i := 0; i < k; i++ {
			j, g := graph.AdvanceNeighbors(runs[i], pos[i], v)
			probes++
			if g {
				galloped++
			}
			if j == len(runs[i]) {
				break zip
			}
			pos[i] = j
			if runs[i][j].ID != v || (!a.IgnoreELabels && runs[i][j].ELabel != elabels[i]) {
				continue zip
			}
		}
		found = true
		break
	}
	if k > 0 {
		a.KStats.AddIntersection(probes, galloped)
	}
	return found
}
