package newsp

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/graphflow"
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// deadEndFixture builds a graph where plain backtracking explores many
// partial matches that die one level later, which NewSP's lookahead prunes
// immediately: a hub v0(a) with many b-neighbors, none of which has the
// c-neighbor the query requires except one.
func deadEndFixture(t *testing.T) (*graph.Graph, *query.Graph) {
	t.Helper()
	g := graph.New(30)
	hub := g.AddVertex(0) // a
	var bs []graph.VertexID
	for i := 0; i < 20; i++ {
		bs = append(bs, g.AddVertex(1)) // b
	}
	c := g.AddVertex(2) // c
	for _, b := range bs {
		g.AddEdge(hub, b, 0)
	}
	g.AddEdge(bs[7], c, 0) // only one b has the c continuation

	// Query: a - b - c path.
	q := query.MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g, q
}

func TestLookaheadPrunesDeadEnds(t *testing.T) {
	g, q := deadEndFixture(t)
	// Insert a fresh hub edge (hub, new b) — GraphFlow re-roots at it but
	// NewSP should prune since the new b has no c-neighbor.
	nb := g.AddVertex(1)

	run := func(a csm.Algorithm) (uint64, uint64) {
		gg := g.Clone()
		eng := csm.NewEngine(a)
		if err := eng.Init(gg, q); err != nil {
			t.Fatal(err)
		}
		d, err := eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 0, V: nb})
		if err != nil {
			t.Fatal(err)
		}
		return d.Positive, d.Nodes
	}

	posGF, nodesGF := run(graphflow.New())
	posSP, nodesSP := run(New())
	if posGF != posSP {
		t.Fatalf("match counts differ: GraphFlow %d, NewSP %d", posGF, posSP)
	}
	if nodesSP > nodesGF {
		t.Fatalf("NewSP explored %d nodes, GraphFlow %d — lookahead not pruning", nodesSP, nodesGF)
	}
}

func TestNewSPFindsAllMatches(t *testing.T) {
	g, q := deadEndFixture(t)
	eng := csm.NewEngine(New())
	gg := g.Clone()
	gg.RemoveEdge(7+1, 21) // remove the b7-c edge (ids: hub=0, bs start at 1)
	if err := eng.Init(gg, q); err != nil {
		t.Fatal(err)
	}
	// Re-adding it creates exactly one match (hub, b7, c).
	d, err := eng.ProcessUpdate(context.Background(), stream.Update{Op: stream.AddEdge, U: 8, V: 21})
	if err != nil {
		t.Fatal(err)
	}
	if d.Positive != 1 {
		t.Fatalf("positive = %d, want 1", d.Positive)
	}
}

func TestHasCandidateNoConstraint(t *testing.T) {
	g, q := deadEndFixture(t)
	a := New()
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	s := csm.NewState(0)
	// No query neighbor of u2 matched yet: vacuously satisfiable.
	if !a.hasCandidate(&s, 2) {
		t.Fatal("unconstrained compatible set reported empty")
	}
}

// Property-ish regression: NewSP and GraphFlow agree on random streams
// (already covered globally in algotest, repeated here cheaply as a guard
// for lookahead edits).
func TestAgreesWithGraphFlowOnRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g0 := graph.New(20)
	for i := 0; i < 20; i++ {
		g0.AddVertex(graph.Label(rng.Intn(3)))
	}
	for i := 0; i < 40; i++ {
		g0.AddEdge(graph.VertexID(rng.Intn(20)), graph.VertexID(rng.Intn(20)), 0)
	}
	q := query.MustNew([]graph.Label{0, 1, 2, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 3, 0)
	q.MustAddEdge(0, 3, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}

	type result struct{ pos, neg uint64 }
	run := func(a csm.Algorithm) result {
		g := g0.Clone()
		eng := csm.NewEngine(a)
		if err := eng.Init(g, q); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		var r result
		for i := 0; i < 50; i++ {
			u := graph.VertexID(rng.Intn(20))
			v := graph.VertexID(rng.Intn(20))
			var upd stream.Update
			if g.HasEdge(u, v) {
				upd = stream.Update{Op: stream.DeleteEdge, U: u, V: v}
			} else if u != v {
				upd = stream.Update{Op: stream.AddEdge, U: u, V: v}
			} else {
				continue
			}
			d, err := eng.ProcessUpdate(context.Background(), upd)
			if err != nil {
				t.Fatal(err)
			}
			r.pos += d.Positive
			r.neg += d.Negative
		}
		return r
	}
	if a, b := run(New()), run(graphflow.New()); a != b {
		t.Fatalf("NewSP %+v != GraphFlow %+v", a, b)
	}
}
