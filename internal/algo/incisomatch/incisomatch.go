// Package incisomatch implements the IncIsoMatch baseline (Fan et al.,
// SIGMOD'11 / TODS'13) in the general CSM model: no auxiliary structure
// and no update-rooted search. Every update triggers a recomputation-style
// enumeration — the search starts from all candidates of a static matching
// order rather than from the updated edge — and complete embeddings are
// filtered to those containing the updated edge, which by definition is
// the incremental result ΔM.
//
// It exists as the motivational lower bound: the experiment
// "recompute" (cmd/experiments -run recompute) measures how much
// edge-rooted incremental search buys over recomputation, the gap that
// justifies CSM systems in the first place.
package incisomatch

import (
	"paracosm/internal/csm"
	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// IncIsoMatch is the recomputation baseline.
type IncIsoMatch struct {
	g *graph.Graph
	q *query.Graph

	order []query.VertexID
	back  [][]query.BackEdge

	// pending is the edge the current update concerns; Terminal filters
	// complete embeddings to those using it.
	pendX, pendY graph.VertexID
}

// New returns an IncIsoMatch instance.
func New() *IncIsoMatch { return &IncIsoMatch{} }

var _ csm.Algorithm = (*IncIsoMatch)(nil)

// Name implements csm.Algorithm.
func (a *IncIsoMatch) Name() string { return "IncIsoMatch" }

// Build implements csm.Algorithm: only a static matching order is
// prepared (highest-degree start, connected greedy extension).
func (a *IncIsoMatch) Build(g *graph.Graph, q *query.Graph) error {
	a.g, a.q = g, q
	n := q.NumVertices()
	start := query.VertexID(0)
	for v := 1; v < n; v++ {
		if q.Degree(query.VertexID(v)) > q.Degree(start) {
			start = query.VertexID(v)
		}
	}
	order := []query.VertexID{start}
	in := make([]bool, n)
	in[start] = true
	backDeg := make([]int, n)
	for _, nb := range q.Neighbors(start) {
		backDeg[nb.ID]++
	}
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if in[v] || backDeg[v] == 0 {
				continue
			}
			if best < 0 || backDeg[v] > backDeg[best] {
				best = v
			}
		}
		if best < 0 {
			break
		}
		order = append(order, query.VertexID(best))
		in[best] = true
		for _, nb := range a.q.Neighbors(query.VertexID(best)) {
			backDeg[nb.ID]++
		}
	}
	a.order = order
	a.back = q.BackwardNeighbors(order)
	return nil
}

// UpdateADS implements csm.Algorithm: nothing is maintained.
func (a *IncIsoMatch) UpdateADS(stream.Update) {}

// AffectsADS implements csm.Algorithm: recomputation has no filtering rule
// at all — every edge update is unsafe.
func (a *IncIsoMatch) AffectsADS(upd stream.Update) bool { return upd.IsEdge() }

// Roots implements csm.Enumerator: the full static search over all
// candidates of the first order vertex (recomputation), remembering the
// updated edge so Terminal can select the incremental matches.
func (a *IncIsoMatch) Roots(upd stream.Update, emit func(csm.State)) {
	if !upd.IsEdge() {
		return
	}
	a.pendX, a.pendY = upd.U, upd.V
	u0 := a.order[0]
	for _, v := range a.g.VerticesWithLabel(a.q.Label(u0)) {
		if !a.g.Alive(v) || a.g.Degree(v) < a.q.Degree(u0) {
			continue
		}
		s := csm.NewState(0)
		s.Set(u0, v)
		emit(s)
	}
}

// Expand implements csm.Enumerator: plain backtracking extension.
func (a *IncIsoMatch) Expand(s *csm.State, emit func(csm.State)) {
	if int(s.Depth) >= len(a.order) {
		return
	}
	u := a.order[s.Depth]
	back := a.back[s.Depth]
	if len(back) == 0 {
		return
	}
	lu := a.q.Label(u)
	du := a.q.Degree(u)
	// Anchor on the backward neighbor with the fewest lu-labeled neighbors
	// and zipper the remaining label runs with monotonic cursors, exactly
	// like algobase.ForEachCandidate.
	anchorIdx := 0
	anchor := s.Map[a.order[back[0].Pos]]
	anchorDeg := a.g.DegreeWithLabel(anchor, lu)
	for i, be := range back[1:] {
		w := s.Map[a.order[be.Pos]]
		if d := a.g.DegreeWithLabel(w, lu); d < anchorDeg {
			anchorIdx, anchor, anchorDeg = i+1, w, d
		}
	}
	anchorEL := back[anchorIdx].ELabel
	var (
		runs    [query.MaxVertices][]graph.Neighbor
		elabels [query.MaxVertices]graph.Label
		pos     [query.MaxVertices]int
	)
	k := 0
	for i, be := range back {
		if i == anchorIdx {
			continue
		}
		runs[k] = a.g.NeighborsWithLabel(s.Map[a.order[be.Pos]], lu)
		elabels[k] = be.ELabel
		k++
	}
zip:
	for _, nb := range a.g.NeighborsWithLabel(anchor, lu) {
		if nb.ELabel != anchorEL {
			continue
		}
		v := nb.ID
		if a.g.Degree(v) < du || s.Uses(v) {
			continue
		}
		for i := 0; i < k; i++ {
			j, _ := graph.AdvanceNeighbors(runs[i], pos[i], v)
			if j == len(runs[i]) {
				break zip
			}
			pos[i] = j
			if runs[i][j].ID != v || runs[i][j].ELabel != elabels[i] {
				continue zip
			}
		}
		child := *s
		child.Set(u, v)
		emit(child)
	}
}

// Terminal implements csm.Enumerator: a complete embedding counts only if
// it maps some query edge onto the updated edge — the recompute-and-diff
// semantics of incremental matching.
func (a *IncIsoMatch) Terminal(s *csm.State) (uint64, bool) {
	if int(s.Depth) != a.q.NumVertices() {
		return 0, false
	}
	for _, e := range a.q.Edges() {
		mu, mv := s.Map[e.U], s.Map[e.V]
		if (mu == a.pendX && mv == a.pendY) || (mu == a.pendY && mv == a.pendX) {
			return 1, true
		}
	}
	return 0, true
}
