package incisomatch

import (
	"context"
	"math/rand"
	"testing"

	"paracosm/internal/algo/algotest"
	"paracosm/internal/csm"
	"paracosm/internal/refmatch"
)

// TestDeltaMatchesReference: recomputation must produce the exact ΔM.
func TestDeltaMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := algotest.RandomGraph(rng, 22, 45, 2, 2)
		q := algotest.RandomQuery(rng, g, 4)
		if q == nil {
			continue
		}
		eng := csm.NewEngine(New())
		if err := eng.Init(g, q); err != nil {
			t.Fatal(err)
		}
		for i, upd := range algotest.RandomStream(rng, g, 25, 0.7, 2) {
			wantPos, wantNeg := refmatch.Delta(g, q, upd, refmatch.Options{})
			d, err := eng.ProcessUpdate(context.Background(), upd)
			if err != nil {
				t.Fatalf("seed %d update %d: %v", seed, i, err)
			}
			if d.Positive != wantPos || d.Negative != wantNeg {
				t.Fatalf("seed %d update %d (%v): (+%d,-%d), reference (+%d,-%d)",
					seed, i, upd, d.Positive, d.Negative, wantPos, wantNeg)
			}
		}
	}
}

// TestRecomputationIsMoreExpensive: on the same workload IncIsoMatch must
// visit at least as many search nodes as the edge-rooted GraphFlow — the
// motivation gap for incremental CSM.
func TestRecomputationIsMoreExpensive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := algotest.RandomGraph(rng, 40, 120, 2, 1)
	q := algotest.RandomQuery(rng, g, 4)
	if q == nil {
		t.Skip("no query")
	}
	s := algotest.RandomStream(rng, g, 30, 0.8, 1)

	run := func(a csm.Algorithm) uint64 {
		eng := csm.NewEngine(a)
		if err := eng.Init(g.Clone(), q); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), s); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().Nodes
	}
	inc := run(New())
	gf := run(algotest.Factories()[2].New()) // GraphFlow
	if inc < gf {
		t.Fatalf("IncIsoMatch visited %d nodes, GraphFlow %d — recomputation should cost more", inc, gf)
	}
}

func TestEverythingIsUnsafe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := algotest.RandomGraph(rng, 10, 20, 2, 1)
	q := algotest.RandomQuery(rng, g, 3)
	if q == nil {
		t.Skip("no query")
	}
	a := New()
	if err := a.Build(g, q); err != nil {
		t.Fatal(err)
	}
	for _, upd := range algotest.RandomStream(rng, g, 10, 0.5, 1) {
		if !a.AffectsADS(upd) {
			t.Fatalf("recomputation baseline classified %v safe", upd)
		}
	}
}
