package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"paracosm/internal/algo/sjtree"
	"paracosm/internal/algo/symbi"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
)

// RunSJTree contrasts the join-based SJ-Tree with the backtracking Symbi:
// per-update latency against materialized table memory — the time/space
// trade-off Table 1 summarizes as O(|E(G)|^|E(Q)|) index cost. SJ-Tree is
// evaluated at a reduced scale because its offline materialization, not
// its incremental step, is what explodes.
func RunSJTree(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	if cfg.Scale > 0.002 {
		cfg.Scale = 0.002 // keep join-table materialization tractable
	}
	d := cfg.data(dataset.AmazonSpec)
	s := cfg.stream(d)
	qs, err := cfg.queriesFor(d, 5)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("SJ-Tree (join-based) vs Symbi (backtracking), %s stand-in, size-5 queries, %d updates",
			d.Name, len(s)),
		"Algorithm", "offline build (ms)", "incremental (ms)", "per update (µs)", "table entries")

	type contender struct {
		name string
		mk   func() csm.Algorithm
	}
	for _, c := range []contender{
		{"SJ-Tree", func() csm.Algorithm { return sjtree.New() }},
		{"Symbi", func() csm.Algorithm { return symbi.New() }},
	} {
		var build, inc time.Duration
		var updates, tableEntries int
		for _, q := range qs {
			g := d.Graph.Clone()
			a := c.mk()
			eng := core.New(a, core.Threads(1), core.InterUpdate(false))
			t0 := time.Now()
			if err := eng.Init(g, q); err != nil {
				return err
			}
			build += time.Since(t0)
			ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
			st, err := eng.Run(ctx, s)
			cancel()
			if err != nil && !errors.Is(err, csm.ErrDeadline) {
				return err
			}
			inc += st.TTotal
			updates += st.Updates
			if sj, ok := a.(*sjtree.SJTree); ok {
				for _, n := range sj.TableSizes() {
					tableEntries += n
				}
			}
		}
		perUpd := 0.0
		if updates > 0 {
			perUpd = float64(inc.Microseconds()) / float64(updates)
		}
		entries := interface{}(tableEntries)
		if c.name != "SJ-Tree" {
			entries = "n/a"
		}
		tb.AddRow(c.name, float64(build.Microseconds())/1000, float64(inc.Microseconds())/1000, perUpd, entries)
	}
	tb.Render(w)
	return nil
}
