package bench

import (
	"fmt"
	"io"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
	"paracosm/internal/stream"
)

// RunDeletions exercises the deletion path (§2.2: negative matches are
// enumerated before the edge is removed) with a sliding-window-style
// stream: every held-out edge is inserted and later deleted again. Since
// the graph ends exactly where it started, every appearing match must also
// expire — the experiment asserts the +/- conservation invariant and
// reports the relative cost of insertions vs deletions.
func RunDeletions(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.AmazonSpec)
	events := windowStream(d, cfg.StreamCap)
	qs, err := cfg.queriesFor(d, 6)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Deletion handling: insert+expire window (%s stand-in, %d events)", d.Name, len(events)),
		"Algorithm", "+matches", "-matches", "conserved", "time (ms)")
	for _, e := range algo.Registry() {
		var pos, neg uint64
		var tot time.Duration
		completed := 0
		for _, q := range qs {
			r := cfg.runOne(e, d, q, events, sequentialOpts()...)
			if !r.Success {
				// Conservation only holds for fully processed windows.
				continue
			}
			completed++
			pos += r.Stats.Positive
			neg += r.Stats.Negative
			tot += r.Stats.TTotal
		}
		if completed == 0 {
			tb.AddRow(e.Name, "TO", "TO", "n/a", "TO")
			continue
		}
		conserved := "YES"
		if pos != neg {
			conserved = fmt.Sprintf("NO (+%d vs -%d)", pos, neg)
		}
		tb.AddRow(e.Name, pos, neg, conserved, float64(tot.Microseconds())/1000)
	}
	tb.Render(w)
	return nil
}

// windowStream builds "insert the first cap held-out edges, then delete
// them again in reverse order" — a closed window returning the graph to
// its initial state.
func windowStream(d *dataset.Dataset, cap int) stream.Stream {
	ins := d.Stream
	if len(ins) > cap {
		ins = ins[:cap]
	}
	out := append(stream.Stream(nil), ins...)
	for i := len(ins) - 1; i >= 0; i-- {
		if del, err := ins[i].Invert(); err == nil {
			out = append(out, del)
		}
	}
	return out
}
