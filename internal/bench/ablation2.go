package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
	"paracosm/internal/query"
)

// Second batch of ablations: matching-order strategy, and a comparison
// with Mnemonic-style coarse-grained (one-update-one-thread) parallelism.

func ablations2() []Experiment {
	return []Experiment{
		{ID: "ablation-order", Title: "Ablation: matching-order strategy", Run: RunAblationOrder},
		{ID: "mnemonic", Title: "Comparison: ParaCOSM vs Mnemonic-style coarse-grained parallelism", Run: RunMnemonic},
		{ID: "deletions", Title: "Deletion handling: insert+expire window conservation", Run: RunDeletions},
		{ID: "sjtree", Title: "Comparison: join-based SJ-Tree vs backtracking (time/space trade-off)", Run: RunSJTree},
	}
}

// RunAblationOrder compares matching-order strategies (backward-degree
// greedy vs degree-only vs random) by search-tree size on identical
// workloads.
func RunAblationOrder(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	e, err := algo.ByName("GraphFlow")
	if err != nil {
		return err
	}
	qs, err := cfg.queriesFor(d, 8)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Ablation: matching-order strategy (%s stand-in, GraphFlow, size-8 queries)", d.Name),
		"strategy", "search nodes", "time (ms)", "vs backdeg")
	var baseNodes uint64
	for _, strat := range []query.OrderStrategy{query.OrderBackDeg, query.OrderDegree, query.OrderRandom} {
		var nodes uint64
		var tot time.Duration
		for _, q := range qs {
			q.BuildOrdersWithStrategy(strat, cfg.Seed)
			r := cfg.runOne(e, d, q, s, sequentialOpts()...)
			nodes += r.Stats.Nodes
			tot += r.Stats.TTotal
			q.BuildOrders() // restore the default for other experiments
		}
		if strat == query.OrderBackDeg {
			baseNodes = nodes
		}
		rel := "1.00x"
		if baseNodes > 0 {
			rel = fmt.Sprintf("%.2fx", float64(nodes)/float64(baseNodes))
		}
		tb.AddRow(strat.String(), nodes, float64(tot.Microseconds())/1000, rel)
	}
	tb.Render(w)
	return nil
}

// RunMnemonic contrasts ParaCOSM's fine-grained inner-update parallelism
// with Mnemonic's coarse-grained scheme (each update of a batch handled by
// one thread, no intra-update splitting). Both schedules are computed from
// the same measured per-update costs: Mnemonic's batch makespan is the
// maximum update cost in each window of Threads updates — a single
// explosive update stalls its whole batch, which is precisely the load
// imbalance ParaCOSM's task splitting removes (paper §3.2, Challenge 1).
func RunMnemonic(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	qs, err := cfg.queriesFor(d, 9)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("ParaCOSM vs Mnemonic-style coarse-grained parallelism (%s stand-in, size-9 queries, %d threads)",
			d.Name, cfg.Threads),
		"Algorithm", "sequential (ms)", "Mnemonic (ms)", "ParaCOSM (ms)", "Mnemonic speedup", "ParaCOSM speedup")
	for _, name := range []string{"GraphFlow", "Symbi"} {
		e, err := algo.ByName(name)
		if err != nil {
			return err
		}
		var seq, mnem, pcosm time.Duration
		for _, q := range qs {
			// Measure per-update costs sequentially.
			g := d.Graph.Clone()
			eng := core.New(e.New(), core.Threads(1), core.InterUpdate(false))
			if err := eng.Init(g, q); err != nil {
				return err
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
			perUpdate := make([]time.Duration, 0, len(s))
			for _, upd := range s {
				dl, err := eng.ProcessUpdate(ctx, upd)
				if err != nil {
					if errors.Is(err, csm.ErrDeadline) {
						break
					}
					cancel()
					return err
				}
				perUpdate = append(perUpdate, dl.TADS+dl.TFind)
				seq += dl.TADS + dl.TFind
			}
			cancel()
			// Mnemonic: batches of Threads updates, one per thread.
			for i := 0; i < len(perUpdate); i += cfg.Threads {
				end := i + cfg.Threads
				if end > len(perUpdate) {
					end = len(perUpdate)
				}
				max := time.Duration(0)
				for _, t := range perUpdate[i:end] {
					if t > max {
						max = t
					}
				}
				mnem += max
			}
			// ParaCOSM full two-level parallelism.
			r := cfg.runOne(e, d, q, s, cfg.parallelOpts(cfg.Threads)...)
			pcosm += r.Stats.TTotal
		}
		spM, spP := "inf", "inf"
		if mnem > 0 {
			spM = fmt.Sprintf("%.2f", float64(seq)/float64(mnem))
		}
		if pcosm > 0 {
			spP = fmt.Sprintf("%.2f", float64(seq)/float64(pcosm))
		}
		tb.AddRow(name,
			float64(seq.Microseconds())/1000,
			float64(mnem.Microseconds())/1000,
			float64(pcosm.Microseconds())/1000,
			spM, spP)
	}
	tb.Render(w)
	return nil
}
