package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
	"paracosm/internal/model"
	"paracosm/internal/query"
)

// querySizes are the paper's evaluated query sizes.
var querySizes = []int{6, 7, 8, 9, 10}

// sizeAgg aggregates per-(algorithm, size) results.
type sizeAgg struct {
	runs      int
	successes int
	elapsed   time.Duration // over successful runs
	tads      time.Duration
	tfind     time.Duration
	ttotal    time.Duration
}

func (a *sizeAgg) add(r RunResult) {
	a.runs++
	if r.Success {
		a.successes++
		a.elapsed += r.Elapsed
	}
	a.tads += r.Stats.TADS
	a.tfind += r.Stats.TFind
	a.ttotal += r.Stats.TTotal
}

func (a *sizeAgg) avgElapsed() time.Duration {
	if a.successes == 0 {
		return 0
	}
	return a.elapsed / time.Duration(a.successes)
}

func (a *sizeAgg) succRate() float64 {
	if a.runs == 0 {
		return 0
	}
	return 100 * float64(a.successes) / float64(a.runs)
}

// singleThreadSweep runs every algorithm single-threaded over the given
// dataset for all query sizes, reusing the same queries per size.
func (c Config) singleThreadSweep(d *dataset.Dataset) (map[string]map[int]*sizeAgg, error) {
	s := c.stream(d)
	out := map[string]map[int]*sizeAgg{}
	for _, e := range algo.Registry() {
		out[e.Name] = map[int]*sizeAgg{}
		for _, sz := range querySizes {
			out[e.Name][sz] = &sizeAgg{}
		}
	}
	for _, sz := range querySizes {
		qs, err := c.queriesFor(d, sz)
		if err != nil {
			return nil, err
		}
		for _, q := range qs {
			for _, e := range algo.Registry() {
				out[e.Name][sz].add(c.runOne(e, d, q, s, sequentialOpts()...))
			}
		}
	}
	return out, nil
}

// RunTable1 prints the complexity reference of existing CSM solutions.
func RunTable1(cfg Config, w io.Writer) error {
	tb := metrics.NewTable("Table 1: existing CSM solutions in recent research (CPU)",
		"System", "Para", "Index A update", "Find Matches", "Srch")
	for _, r := range model.ReferenceTable() {
		para, srch := "X", "X"
		if r.Parallel {
			para = "Y"
		}
		if r.Backtrack {
			srch = "backtrack"
		} else {
			srch = "join"
		}
		tb.AddRow(r.System, para, r.IndexCost, r.SearchCost, srch)
	}
	tb.Render(w)
	return nil
}

// RunFig4 reproduces Figure 4: average single-threaded incremental
// matching time per query size on the LiveJournal stand-in.
func RunFig4(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	sweep, err := cfg.singleThreadSweep(d)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Figure 4: single-threaded incremental matching time (ms), %s stand-in, %d queries/size, budget %v",
			d.Name, cfg.QueriesPerSize, cfg.Budget),
		"Algorithm", "size 6", "size 7", "size 8", "size 9", "size 10")
	for _, e := range algo.Registry() {
		row := []interface{}{e.Name}
		for _, sz := range querySizes {
			a := sweep[e.Name][sz]
			if a.successes == 0 {
				row = append(row, "TO")
			} else {
				row = append(row, float64(a.avgElapsed().Microseconds())/1000)
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
	return nil
}

// RunTable3 reproduces Table 3: the share of incremental time spent in ADS
// maintenance vs match enumeration, and the success rate, by query size.
func RunTable3(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	sweep, err := cfg.singleThreadSweep(d)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Table 3: ADS update %% / Find Matches %% / success rate %% by query size (%s stand-in)", d.Name),
		"Algorithm", "size", "ADS Upd %", "Find Matches %", "Succ Rate %")
	for _, e := range algo.Registry() {
		for _, sz := range querySizes {
			a := sweep[e.Name][sz]
			adsPct, findPct := 0.0, 0.0
			if a.ttotal > 0 {
				adsPct = 100 * float64(a.tads) / float64(a.ttotal)
				findPct = 100 * float64(a.tfind) / float64(a.ttotal)
			}
			if e.Name == "GraphFlow" || e.Name == "NewSP" {
				// These keep no ADS; report their (near-zero) bookkeeping
				// share anyway for comparison with the paper's N/A.
			}
			tb.AddRow(e.Name, sz, adsPct, findPct, a.succRate())
		}
	}
	tb.Render(w)
	return nil
}

// RunTable4 reproduces Table 4: the average percentage of unsafe updates
// per dataset and query size, measured with the three-stage classifier
// (Symbi's DCS as the stage-3 ADS, the strongest of the bundled filters).
func RunTable4(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	entry, err := algo.ByName("Symbi")
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Table 4: average unsafe update percentage (%%), %d queries/size", cfg.QueriesPerSize),
		"Dataset", "size 6", "size 7", "size 8", "size 9", "size 10")
	for _, spec := range []dataset.Spec{dataset.LSBenchSpec, dataset.LiveJournalSpec, dataset.OrkutSpec, dataset.AmazonSpec} {
		d := cfg.data(spec)
		s := cfg.stream(d)
		row := []interface{}{d.Name}
		for _, sz := range querySizes {
			qs, err := cfg.queriesFor(d, sz)
			if err != nil {
				return err
			}
			totalUnsafe, totalUpd := 0, 0
			for _, q := range qs {
				r := cfg.runOne(entry, d, q, s, core.Threads(cfg.Threads), core.InterUpdate(true))
				totalUnsafe += r.Stats.UnsafeUpdates
				totalUpd += r.Stats.Updates
			}
			if totalUpd == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, 100*float64(totalUnsafe)/float64(totalUpd))
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
	return nil
}

// RunFig7 reproduces Figure 7: speedup of ParaCOSM (Threads workers, full
// two-level parallelism) over the single-threaded originals, per dataset
// and algorithm. Query size 8 is used: at smaller sizes the workload is
// dominated by per-update constant costs rather than search, which is not
// the regime the paper's Figure 7 measures.
func RunFig7(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	tb := metrics.NewTable(
		fmt.Sprintf("Figure 7: ParaCOSM speedup with %d threads vs single-threaded (query size 8)", cfg.Threads),
		"Dataset", "CaLiG", "GraphFlow", "NewSP", "Symbi", "TurboFlux")
	for _, spec := range []dataset.Spec{dataset.AmazonSpec, dataset.LiveJournalSpec, dataset.LSBenchSpec, dataset.OrkutSpec} {
		d := cfg.data(spec)
		s := cfg.stream(d)
		qs, err := cfg.queriesFor(d, 8)
		if err != nil {
			return err
		}
		row := []interface{}{d.Name}
		for _, e := range algo.Registry() {
			var seq, par time.Duration
			seqOK, parOK := true, true
			for _, q := range qs {
				rs := cfg.runOne(e, d, q, s, sequentialOpts()...)
				rp := cfg.runOne(e, d, q, s, cfg.parallelOpts(cfg.Threads)...)
				seqOK = seqOK && rs.Success
				parOK = parOK && rp.Success
				seq += rs.Elapsed
				par += rp.Elapsed
			}
			switch {
			case !seqOK && !parOK:
				row = append(row, "TO/TO")
			case !seqOK:
				// Sequential timed out, parallel finished: the true
				// speedup is at least budget/parallel-time.
				lower := float64(cfg.Budget) * float64(len(qs)) / float64(par)
				row = append(row, fmt.Sprintf(">%.1f", lower))
			case par == 0:
				row = append(row, "inf")
			default:
				row = append(row, float64(seq)/float64(par))
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
	return nil
}

// RunFig8 reproduces Figure 8: ParaCOSM speedup on big query graphs
// (LiveJournal stand-in), computed over queries successful in both
// configurations.
func RunFig8(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	tb := metrics.NewTable(
		fmt.Sprintf("Figure 8: ParaCOSM speedup with %d threads on big query graphs (%s stand-in)", cfg.Threads, d.Name),
		"Algorithm", "size 6", "size 7", "size 8", "size 9", "size 10")
	for _, e := range algo.Registry() {
		row := []interface{}{e.Name}
		for _, sz := range querySizes {
			qs, err := cfg.queriesFor(d, sz)
			if err != nil {
				return err
			}
			var seq, par time.Duration
			n := 0
			for _, q := range qs {
				rs := cfg.runOne(e, d, q, s, sequentialOpts()...)
				rp := cfg.runOne(e, d, q, s, cfg.parallelOpts(cfg.Threads)...)
				if rs.Success && rp.Success {
					seq += rs.Elapsed
					par += rp.Elapsed
					n++
				}
			}
			if n == 0 || par == 0 {
				row = append(row, "TO")
			} else {
				row = append(row, float64(seq)/float64(par))
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
	return nil
}

// RunTable6 reproduces Table 6: success rates of the parallelized
// algorithms by query size, with the single-threaded rate for comparison.
func RunTable6(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	tb := metrics.NewTable(
		fmt.Sprintf("Table 6: success rate (%%) of parallel CSM algorithms with %d threads (%s stand-in); Δ vs single-threaded in parens",
			cfg.Threads, d.Name),
		"Algorithm", "size 6", "size 7", "size 8", "size 9", "size 10")
	for _, e := range algo.Registry() {
		row := []interface{}{e.Name}
		for _, sz := range querySizes {
			qs, err := cfg.queriesFor(d, sz)
			if err != nil {
				return err
			}
			seqOK, parOK := 0, 0
			for _, q := range qs {
				if cfg.runOne(e, d, q, s, sequentialOpts()...).Success {
					seqOK++
				}
				if cfg.runOne(e, d, q, s, cfg.parallelOpts(cfg.Threads)...).Success {
					parOK++
				}
			}
			n := float64(len(qs))
			row = append(row, fmt.Sprintf("%.0f (%+.0f)", 100*float64(parOK)/n, 100*float64(parOK-seqOK)/n))
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
	return nil
}

// RunFig9 reproduces Figure 9: speedup as the thread count grows, relative
// to the single-threaded baseline, on the LiveJournal stand-in.
func RunFig9(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	// Under schedule simulation the full sweep of the paper is available
	// regardless of physical cores; on real hardware cap at 4x the
	// available parallelism.
	threadCounts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	counts := []int{}
	maxT := 4 * runtime.GOMAXPROCS(0)
	for _, t := range threadCounts {
		if cfg.Simulate || t <= maxT {
			counts = append(counts, t)
		}
	}
	headers := []string{"Algorithm"}
	for _, t := range counts {
		headers = append(headers, fmt.Sprintf("%dT", t))
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Figure 9: speedup vs threads (%s stand-in, query size 8)", d.Name), headers...)
	qs, err := cfg.queriesFor(d, 8)
	if err != nil {
		return err
	}
	for _, e := range algo.Registry() {
		// Queries whose single-threaded baseline exceeds the budget are
		// excluded for this algorithm (their speedup is unmeasurable);
		// the paper's scalability figure likewise normalizes against
		// successful single-threaded runs.
		var valid []*query.Graph
		var base time.Duration
		for _, q := range qs {
			r := cfg.runOne(e, d, q, s, sequentialOpts()...)
			if r.Success {
				valid = append(valid, q)
				base += r.Elapsed
			}
		}
		row := []interface{}{e.Name}
		if len(valid) == 0 {
			for range counts {
				row = append(row, "TO")
			}
			tb.AddRow(row...)
			continue
		}
		for _, t := range counts {
			if t == 1 {
				row = append(row, 1.0)
				continue
			}
			var tot time.Duration
			ok := true
			for _, q := range valid {
				r := cfg.runOne(e, d, q, s, cfg.parallelOpts(t)...)
				ok = ok && r.Success
				tot += r.Elapsed
			}
			switch {
			case !ok:
				row = append(row, "TO")
			case tot == 0:
				row = append(row, "inf")
			default:
				row = append(row, float64(base)/float64(tot))
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(w)
	return nil
}

// RunFig10 reproduces Figure 10: the CDF of per-thread busy time for
// GraphFlow with and without adaptive load balancing.
func RunFig10(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	e, err := algo.ByName("GraphFlow")
	if err != nil {
		return err
	}
	qs, err := cfg.queriesFor(d, 7)
	if err != nil {
		return err
	}
	collect := func(balance bool) []time.Duration {
		var busy []time.Duration
		for _, q := range qs {
			r := cfg.runOne(e, d, q, s,
				core.Threads(cfg.Threads), core.InterUpdate(false), core.LoadBalance(balance), core.Simulate(cfg.Simulate))
			busy = append(busy, r.Stats.ThreadBusy...)
		}
		return busy
	}
	balanced := metrics.NewCDF(collect(true))
	unbalanced := metrics.NewCDF(collect(false))

	tb := metrics.NewTable(
		fmt.Sprintf("Figure 10: CDF of per-thread busy time, GraphFlow, %d threads (%s stand-in)", cfg.Threads, d.Name),
		"quantile", "balanced", "unbalanced")
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		tb.AddRow(fmt.Sprintf("p%02.0f", p*100), balanced.Quantile(p), unbalanced.Quantile(p))
	}
	tb.Render(w)

	bs, us := metrics.Summarize(collectDurations(balanced)), metrics.Summarize(collectDurations(unbalanced))
	fmt.Fprintf(w, "balanced spread (max/min): %.2f; unbalanced spread: %.2f\n",
		spread(bs), spread(us))
	return nil
}

func collectDurations(c *metrics.CDF) []time.Duration {
	pts := c.Points(2)
	if len(pts) == 0 {
		return nil
	}
	// Reconstruct min/max pair for spread reporting.
	return []time.Duration{pts[0].X, pts[len(pts)-1].X}
}

func spread(s metrics.Summary) float64 {
	if s.Min <= 0 {
		return 0
	}
	return float64(s.Max) / float64(s.Min)
}

// RunFig11 reproduces Figure 11: speedup from enabling the inter-update
// mechanism (batch executor) on the Orkut stand-in, at equal thread count.
func RunFig11(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.OrkutSpec)
	s := cfg.stream(d)
	tb := metrics.NewTable(
		fmt.Sprintf("Figure 11: inter-update mechanism speedup, %d threads (%s stand-in, query size 6)", cfg.Threads, d.Name),
		"Algorithm", "without (ms)", "with (ms)", "speedup")
	qs, err := cfg.queriesFor(d, 6)
	if err != nil {
		return err
	}
	for _, e := range algo.Registry() {
		var off, on time.Duration
		for _, q := range qs {
			roff := cfg.runOne(e, d, q, s, core.Threads(cfg.Threads), core.InterUpdate(false), core.Simulate(cfg.Simulate))
			ron := cfg.runOne(e, d, q, s, core.Threads(cfg.Threads), core.InterUpdate(true), core.Simulate(cfg.Simulate))
			off += roff.Elapsed
			on += ron.Elapsed
		}
		sp := "inf"
		if on > 0 {
			sp = fmt.Sprintf("%.2f", float64(off)/float64(on))
		}
		tb.AddRow(e.Name, float64(off.Microseconds())/1000, float64(on.Microseconds())/1000, sp)
	}
	tb.Render(w)
	return nil
}

// RunFig12 reproduces Figure 12: how much of the update stream each
// classifier stage prunes, for the ADS-indexed algorithms.
func RunFig12(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.OrkutSpec)
	s := cfg.stream(d)
	tb := metrics.NewTable(
		fmt.Sprintf("Figure 12: three-stage filtering effectiveness (%s stand-in, query size 6)", d.Name),
		"Algorithm", "label+degree safe %", "ADS safe % of remainder", "unsafe %")
	qs, err := cfg.queriesFor(d, 6)
	if err != nil {
		return err
	}
	for _, name := range []string{"TurboFlux", "Symbi", "CaLiG"} {
		e, err := algo.ByName(name)
		if err != nil {
			return err
		}
		var stage12, ads, unsafe, total int
		for _, q := range qs {
			r := cfg.runOne(e, d, q, s, core.Threads(cfg.Threads), core.InterUpdate(true))
			stage12 += r.Stats.SafeByLabel + r.Stats.SafeByDegree
			ads += r.Stats.SafeByADS
			unsafe += r.Stats.UnsafeUpdates
			total += r.Stats.Updates
		}
		if total == 0 {
			continue
		}
		rem := ads + unsafe
		adsPct := 0.0
		if rem > 0 {
			adsPct = 100 * float64(ads) / float64(rem)
		}
		tb.AddRow(name,
			100*float64(stage12)/float64(total),
			adsPct,
			100*float64(unsafe)/float64(total))
	}
	tb.Render(w)
	return nil
}

// RunModel prints the §4.3 analytical results next to an empirical γ
// measured on the LiveJournal stand-in.
func RunModel(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	ads, fm := model.Coefficients(model.Params{Gamma: 0.4, M: 10, N: 10})
	fmt.Fprintf(w, "Equation 3 (N=M=10, γ=0.4): T = |ΔG|(%.2f·T_ADS + %.2f·T_FM)\n", ads, fm)
	pSafe := model.SafeProbability(6, 30, 1)
	fmt.Fprintf(w, "§4.3 safe probability (LiveJournal, 6-edge query): %.4f%% (paper: 99.33%%)\n", 100*pSafe)

	// Empirical γ.
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	e, err := algo.ByName("Symbi")
	if err != nil {
		return err
	}
	q, err := d.RandomQuery(6)
	if err != nil {
		return err
	}
	r := cfg.runOne(e, d, q, s, core.Threads(cfg.Threads), core.InterUpdate(true))
	fmt.Fprintf(w, "empirical safe ratio γ on %s stand-in (size-6 query, %d updates): %.4f\n",
		d.Name, r.Stats.Updates, r.Stats.SafeRatio())

	tb := metrics.NewTable("Model speedup predictions (γ=0.4, T_FM/T_ADS=30)",
		"threads", "predicted speedup")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		tb.AddRow(n, model.Speedup(model.Params{Updates: 1, Gamma: 0.4, M: n, N: n, TADS: 1, TFM: 30}))
	}
	tb.Render(w)
	return nil
}

// Ensure query import is used even if signatures change.
var _ = query.MaxVertices
