package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"paracosm/internal/dataset"
)

// tinyConfig keeps every experiment in the sub-second range.
func tinyConfig() Config {
	return Config{
		Scale:          0.0004,
		Seed:           2,
		QueriesPerSize: 1,
		StreamCap:      60,
		Budget:         400 * time.Millisecond,
		Threads:        4,
	}.Defaults()
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Scale <= 0 || c.QueriesPerSize <= 0 || c.StreamCap <= 0 || c.Budget <= 0 || c.Threads <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	// Explicit values survive.
	c = Config{Scale: 0.5, Threads: 2, Budget: time.Minute}.Defaults()
	if c.Scale != 0.5 || c.Threads != 2 || c.Budget != time.Minute {
		t.Fatalf("explicit values overwritten: %+v", c)
	}
}

func TestByID(t *testing.T) {
	for _, e := range AllWithAblations() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestExperimentIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range AllWithAblations() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

// TestEveryExperimentRuns executes the full registry at tiny scale and
// checks each produces non-trivial tabular output.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	for _, e := range AllWithAblations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "|") && !strings.Contains(out, "=") {
				t.Fatalf("%s: no table or key figures in output:\n%s", e.ID, out)
			}
		})
	}
}

func TestStreamCapApplies(t *testing.T) {
	cfg := tinyConfig()
	d := cfg.data(dataset.AmazonSpec)
	s := cfg.stream(d)
	if len(s) > cfg.StreamCap {
		t.Fatalf("stream length %d exceeds cap %d", len(s), cfg.StreamCap)
	}
}

// TestRunWindowBench smoke-tests the schema-6 windowed-executor rows at
// tiny scale: every workload must appear at both window sizes, baselines
// must carry zero window counters, and windowed rows must record windows.
func TestRunWindowBench(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	recs, err := tinyConfig().RunWindowBench()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Workload] = true
		if r.Updates == 0 {
			t.Errorf("%s/%s w=%d: no updates ran", r.Workload, r.Algo, r.Window)
		}
		if r.Window == 1 && r.Windows != 0 {
			t.Errorf("%s/%s w=1 baseline recorded %d windows", r.Workload, r.Algo, r.Windows)
		}
		if r.Window > 1 && r.Windows == 0 {
			t.Errorf("%s/%s w=%d recorded no windows", r.Workload, r.Algo, r.Window)
		}
		if r.Window > 1 && r.Groups > 0 && r.AvgGroup <= 0 {
			t.Errorf("%s/%s w=%d: groups without avg_group", r.Workload, r.Algo, r.Window)
		}
	}
	for _, wl := range []string{"uniform", "deletion_heavy", "bursty"} {
		if !seen[wl] {
			t.Errorf("workload %s missing from records", wl)
		}
	}
	// Bursty streams are built from exact insert/delete bursts, so the
	// coalescer must annihilate pairs there.
	for _, r := range recs {
		if r.Workload == "bursty" && r.Window > 1 && r.AnnihilatedPairs == 0 {
			t.Errorf("bursty w=%d: no annihilated pairs (coalesced=%d)", r.Window, r.Coalesced)
		}
	}
}
