package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
	"paracosm/internal/obs"
)

// MultiQueryRecord is one standing-query-count row of the multi-query
// benchmark: what the shared-graph MultiEngine costs per registered query
// (memory and registration throughput) and what the lockstep driver
// sustains with that many queries observing every update.
type MultiQueryRecord struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Queries int    `json:"queries"`

	// Registration: RegisterLive throughput and the marginal heap cost of
	// one standing query (index state only — measured via runtime.MemStats
	// across the registration loop, after GC on both sides).
	RegistrationsPerSec float64 `json:"registrations_per_sec"`
	BytesPerQuery       float64 `json:"bytes_per_query"`

	// CloneBytes is the heap cost of one private clone of the data graph:
	// the per-query price of the pre-shared-graph design, so
	// CloneBytes/BytesPerQuery is the memory win of graph sharing.
	CloneBytes     uint64  `json:"clone_bytes"`
	CloneOverQuery float64 `json:"clone_over_query"`

	// Ingestion: lockstep updates/sec with Queries standing queries (every
	// query observes every update).
	Updates       int     `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Matches       uint64  `json:"matches"`

	// Per-stage mean latencies (schema 5), from the pipeline stage
	// histograms the lockstep driver feeds (see obs.Stage). The bench
	// harness submits batches directly — no ingestion queue — so the
	// ingest_wait and assemble stages are honestly ~0 here; they become
	// meaningful on serve-mode scrapes. The driver-measured stages split
	// the per-update lockstep cost: pre-apply fan-out, shared commit,
	// post-apply fan-out.
	StageIngestWaitUS float64 `json:"stage_ingest_wait_us"`
	StageAssembleUS   float64 `json:"stage_assemble_us"`
	StagePreApplyUS   float64 `json:"stage_pre_apply_us"`
	StageCommitUS     float64 `json:"stage_commit_us"`
	StagePostApplyUS  float64 `json:"stage_post_apply_us"`
}

// heapAlloc returns the live-heap size after a full collection.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunMultiBench measures the shared-graph MultiEngine at 100 / 1 000 /
// 10 000 standing queries over the Amazon stand-in: registrations/sec,
// marginal bytes per standing query against the clone-per-query baseline,
// marginal bytes per standing query, lockstep ingestion throughput, and
// (schema 5) the per-stage pipeline latency breakdown. Appended to the
// BENCH_*.json report by RunBenchJSON.
func (c Config) RunMultiBench() ([]MultiQueryRecord, error) {
	c = c.Defaults()
	d := c.data(dataset.AmazonSpec)
	entry, err := algo.ByName("GraphFlow")
	if err != nil {
		return nil, err
	}
	// A small pool of distinct query graphs, cycled across registrations:
	// each registration still builds its own index state, which is the
	// per-query cost under measurement.
	qpool, err := d.RandomQueries(4, 4)
	if err != nil {
		return nil, err
	}
	if len(qpool) == 0 {
		return nil, fmt.Errorf("bench: no multi-query pool for %s", d.Name)
	}

	// The clone-per-query baseline: what ONE private copy of the data
	// graph costs on the heap.
	pre := heapAlloc()
	clone := d.Graph.Clone()
	cloneBytes := heapAlloc() - pre
	runtime.KeepAlive(clone)

	var out []MultiQueryRecord
	for _, size := range []struct{ queries, updates int }{
		{100, 200}, {1000, 100}, {10000, 30},
	} {
		// One tracer per row for the stage histograms. TrackQueries stays
		// OFF: a per-query latency histogram would dominate the marginal
		// bytes/query being measured below.
		tr := obs.NewTracer(64)
		m := core.NewMulti(core.Threads(c.Threads), core.Simulate(false), core.WithTracer(tr))
		if err := m.Init(d.Graph); err != nil {
			return nil, err
		}
		before := heapAlloc()
		t0 := time.Now()
		for i := 0; i < size.queries; i++ {
			q := qpool[i%len(qpool)]
			if err := m.RegisterLive(fmt.Sprintf("q%d", i), entry.New(), q); err != nil {
				m.Close()
				return nil, err
			}
		}
		regElapsed := time.Since(t0)
		perQuery := float64(heapAlloc()-before) / float64(size.queries)

		s := c.stream(d)
		if len(s) > size.updates {
			s = s[:size.updates]
		}
		t0 = time.Now()
		applied, err := m.ProcessBatch(context.Background(), s)
		ingestElapsed := time.Since(t0)
		if err != nil {
			m.Close()
			return nil, err
		}
		total := m.TotalStats()
		m.Close()

		st := tr.Stages()
		rec := MultiQueryRecord{
			Dataset:             d.Name,
			Algo:                entry.Name,
			Queries:             size.queries,
			RegistrationsPerSec: metrics.Rate(uint64(size.queries), regElapsed),
			BytesPerQuery:       perQuery,
			CloneBytes:          cloneBytes,
			Updates:             applied,
			UpdatesPerSec:       metrics.Rate(uint64(applied), ingestElapsed),
			Matches:             total.Positive + total.Negative,
			StageIngestWaitUS:   usec(st.Hist(obs.StageIngestWait).Mean()),
			StageAssembleUS:     usec(st.Hist(obs.StageAssemble).Mean()),
			StagePreApplyUS:     usec(st.Hist(obs.StagePreApply).Mean()),
			StageCommitUS:       usec(st.Hist(obs.StageCommit).Mean()),
			StagePostApplyUS:    usec(st.Hist(obs.StagePostApply).Mean()),
		}
		if perQuery > 0 {
			rec.CloneOverQuery = float64(cloneBytes) / perQuery
		}
		out = append(out, rec)
	}
	return out, nil
}
