package bench

import (
	"fmt"
	"io"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/algo/incisomatch"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
)

// Ablation experiments for the design choices DESIGN.md calls out: the
// value of edge-rooted incremental search (vs IncIsoMatch recomputation),
// the inter-update batch size k, and the inner-update task granularity
// (SPLIT_DEPTH / escalation budget).

func init() {
	// Ablations are appended to the registry by being listed in All();
	// nothing to do here — the function exists to document intent.
}

// ablations returns the ablation experiments (registered in All).
func ablations() []Experiment {
	return []Experiment{
		{ID: "recompute", Title: "Ablation: incremental search vs IncIsoMatch recomputation", Run: RunRecompute},
		{ID: "ablation-batch", Title: "Ablation: inter-update batch size k", Run: RunAblationBatch},
		{ID: "ablation-split", Title: "Ablation: task granularity (SPLIT_DEPTH, escalation budget)", Run: RunAblationSplit},
	}
}

// RunRecompute quantifies the motivation for CSM: edge-rooted incremental
// algorithms vs the IncIsoMatch-style recomputation baseline, in search
// nodes and time per update.
func RunRecompute(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.AmazonSpec)
	s := cfg.stream(d)
	qs, err := cfg.queriesFor(d, 6)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Ablation: recomputation vs incremental (%s stand-in, query size 6, %d updates)", d.Name, len(s)),
		"Algorithm", "total time (ms)", "search nodes", "nodes/update")

	type contender struct {
		name string
		mk   func() csm.Algorithm
	}
	contenders := []contender{
		{"IncIsoMatch", func() csm.Algorithm { return incisomatch.New() }},
	}
	for _, e := range algo.Registry() {
		e := e
		contenders = append(contenders, contender{e.Name, e.New})
	}
	for _, c := range contenders {
		var tot time.Duration
		var nodes uint64
		var updates int
		for _, q := range qs {
			entry := algo.Entry{Name: c.name, New: c.mk}
			r := cfg.runOne(entry, d, q, s, sequentialOpts()...)
			tot += r.Stats.TTotal
			nodes += r.Stats.Nodes
			updates += r.Stats.Updates
		}
		perUpd := 0.0
		if updates > 0 {
			perUpd = float64(nodes) / float64(updates)
		}
		tb.AddRow(c.name, float64(tot.Microseconds())/1000, nodes, perUpd)
	}
	tb.Render(w)
	return nil
}

// RunAblationBatch sweeps the inter-update batch size k and reports
// incremental time and deferral behavior on the Orkut stand-in.
func RunAblationBatch(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.OrkutSpec)
	s := cfg.stream(d)
	e, err := algo.ByName("Symbi")
	if err != nil {
		return err
	}
	qs, err := cfg.queriesFor(d, 6)
	if err != nil {
		return err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Ablation: batch size k (%s stand-in, Symbi, %d threads)", d.Name, cfg.Threads),
		"k", "time (ms)", "batches", "safe %", "reclassified")
	for _, k := range []int{1, 4, 16, 64, 256} {
		var tot time.Duration
		var batches, safe, updates, reclass int
		for _, q := range qs {
			r := cfg.runOne(e, d, q, s,
				core.Threads(cfg.Threads), core.InterUpdate(true), core.BatchSize(k), core.Simulate(cfg.Simulate))
			tot += r.Stats.TTotal
			batches += r.Stats.Batches
			safe += r.Stats.SafeUpdates
			updates += r.Stats.Updates
			reclass += r.Stats.Reclassified
		}
		safePct := 0.0
		if updates > 0 {
			safePct = 100 * float64(safe) / float64(updates)
		}
		tb.AddRow(k, float64(tot.Microseconds())/1000, batches, safePct, reclass)
	}
	tb.Render(w)
	return nil
}

// RunAblationSplit sweeps the inner-update task granularity: SPLIT_DEPTH
// (how deep subtrees may still be re-split) and the escalation budget (how
// many sequential nodes before the parallel phase engages).
func RunAblationSplit(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	d := cfg.data(dataset.LiveJournalSpec)
	s := cfg.stream(d)
	e, err := algo.ByName("GraphFlow")
	if err != nil {
		return err
	}
	qs, err := cfg.queriesFor(d, 8)
	if err != nil {
		return err
	}
	run := func(opts ...core.Option) time.Duration {
		var tot time.Duration
		for _, q := range qs {
			r := cfg.runOne(e, d, q, s, opts...)
			tot += r.Stats.TFind
		}
		return tot
	}
	base := run(sequentialOpts()...)

	tb := metrics.NewTable(
		fmt.Sprintf("Ablation: task granularity (%s stand-in, GraphFlow, size-8 queries, %d threads; sequential find = %v)",
			d.Name, cfg.Threads, base.Round(time.Millisecond)),
		"SPLIT_DEPTH", "escalate", "find time (ms)", "speedup")
	for _, sd := range []int{3, 4, 6, 0 /* auto */} {
		for _, esc := range []int{512, 4096, 32768} {
			t := run(core.Threads(cfg.Threads), core.InterUpdate(false), core.Simulate(cfg.Simulate),
				core.SplitDepth(sd), core.EscalateNodes(esc))
			sdLabel := fmt.Sprintf("%d", sd)
			if sd == 0 {
				sdLabel = "auto"
			}
			sp := "inf"
			if t > 0 {
				sp = fmt.Sprintf("%.2f", float64(base)/float64(t))
			}
			tb.AddRow(sdLabel, esc, float64(t.Microseconds())/1000, sp)
		}
	}
	tb.Render(w)
	return nil
}
