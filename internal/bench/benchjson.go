package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/dataset"
	"paracosm/internal/graph"
	"paracosm/internal/metrics"
	"paracosm/internal/obs"
)

// BenchRecord is one (dataset, algorithm) row of the machine-readable perf
// baseline (`make bench-json` → BENCH_pr<N>.json): throughput plus the
// worker-pool health counters that the Fig 7 microbench exercises.
type BenchRecord struct {
	Dataset        string  `json:"dataset"`
	Algo           string  `json:"algo"`
	Queries        int     `json:"queries"`
	Updates        int     `json:"updates"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	Matches        uint64  `json:"matches"`
	Escalations    int     `json:"escalations"`
	EscalationRate float64 `json:"escalation_rate"`
	Resplits       uint64  `json:"resplits"`
	Parks          uint64  `json:"parks"`
	Wakeups        uint64  `json:"wakeups"`
	// Per-update latency quantiles (schema 2), read from the observability
	// layer's log-bucketed histogram (internal/obs): ≤~12.5% relative
	// error, fixed memory regardless of stream length.
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP90US float64 `json:"latency_p90_us"`
	LatencyP99US float64 `json:"latency_p99_us"`
	LatencyMaxUS float64 `json:"latency_max_us"`
	// Intersection-kernel counters (schema 3), aggregated across the row's
	// queries: kernel invocations, the fraction of cursor advances that
	// entered the galloping phase, and the fraction of candidate-run
	// fetches where the label partition was strictly smaller than the full
	// adjacency (see graph.KernelStats).
	Intersections    uint64  `json:"intersections"`
	GallopedFraction float64 `json:"galloped_fraction"`
	CandidateHitRate float64 `json:"candidate_hit_rate"`
}

// BenchReport is the top-level BENCH_*.json document.
type BenchReport struct {
	Schema      int           `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Threads     int           `json:"threads"`
	Scale       float64       `json:"scale"`
	Seed        int64         `json:"seed"`
	StreamCap   int           `json:"stream_cap"`
	Records     []BenchRecord `json:"records"`
	// MultiQuery rows (schema 4) measure the shared-graph MultiEngine at
	// increasing standing-query counts (see RunMultiBench); schema 5 adds
	// their per-stage pipeline latency fields (stage_*_us).
	MultiQuery []MultiQueryRecord `json:"multi_query,omitempty"`
	// Window rows (schema 6) compare the batch-dynamic windowed executor
	// against the per-update baseline across stream shapes (see
	// RunWindowBench).
	Window []WindowRecord `json:"window,omitempty"`
}

// RunBenchJSON runs the Figure 7 microbenchmark — the full inner-update
// path over the Amazon stand-in for two representative algorithms — with
// the REAL worker pool (simulate mode never parks a goroutine, so it would
// report empty counters) and writes the JSON baseline to w. A deliberately
// low escalation budget guarantees the pool is exercised even at CI-sized
// scales and thread counts.
func RunBenchJSON(cfg Config, w io.Writer) error {
	cfg = cfg.Defaults()
	threads := cfg.Threads
	if threads < 2 {
		threads = 2 // a 1-thread engine never escalates; the point is the pool
	}
	if threads > runtime.GOMAXPROCS(0)*4 {
		// Real (non-simulated) execution: don't drown a small machine in
		// simulated-80-core configurations.
		threads = runtime.GOMAXPROCS(0) * 4
		if threads < 2 {
			threads = 2
		}
	}

	report := BenchReport{
		Schema:      6,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Threads:     threads,
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		StreamCap:   cfg.StreamCap,
	}

	d := cfg.data(dataset.AmazonSpec)
	s := cfg.stream(d)
	for _, name := range []string{"GraphFlow", "Symbi"} {
		entry, err := algo.ByName(name)
		if err != nil {
			return err
		}
		qs, err := cfg.queriesFor(d, 6)
		if err != nil {
			return err
		}
		// One tracer per (dataset, algo) row: engines across queries share
		// it, so the latency histogram aggregates the whole row's updates.
		tr := obs.NewTracer(obs.DefaultRingCap)
		var agg core.Stats
		var kern graph.KernelCounters
		var elapsed time.Duration
		updates := 0
		for _, q := range qs {
			t0 := time.Now()
			r := cfg.runOne(entry, d, q, s,
				core.Threads(threads), core.InterUpdate(false),
				core.LoadBalance(true), core.EscalateNodes(256),
				core.Simulate(false), core.WithTracer(tr))
			elapsed += time.Since(t0)
			updates += r.Stats.Updates
			agg.Positive += r.Stats.Positive
			agg.Negative += r.Stats.Negative
			agg.Escalations += r.Stats.Escalations
			agg.Resplits += r.Stats.Resplits
			agg.Parks += r.Stats.Parks
			agg.Wakeups += r.Stats.Wakeups
			kern.Add(r.Kernels)
		}
		lat := tr.Hist(obs.PhaseTotal)
		report.Records = append(report.Records, BenchRecord{
			Dataset:        d.Name,
			Algo:           name,
			Queries:        len(qs),
			Updates:        updates,
			ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
			UpdatesPerSec:  metrics.Rate(uint64(updates), elapsed),
			Matches:        agg.Positive + agg.Negative,
			Escalations:    agg.Escalations,
			EscalationRate: metrics.Fraction(uint64(agg.Escalations), uint64(updates)),
			Resplits:       agg.Resplits,
			Parks:          agg.Parks,
			Wakeups:        agg.Wakeups,
			LatencyP50US:   usec(lat.Quantile(0.50)),
			LatencyP90US:   usec(lat.Quantile(0.90)),
			LatencyP99US:   usec(lat.Quantile(0.99)),
			LatencyMaxUS:   usec(lat.Max()),

			Intersections:    kern.Intersections,
			GallopedFraction: metrics.Fraction(kern.Galloped, kern.Probes),
			CandidateHitRate: metrics.Fraction(kern.CandHits, kern.CandLookups),
		})
	}

	mq, err := cfg.RunMultiBench()
	if err != nil {
		return err
	}
	report.MultiQuery = mq

	win, err := cfg.RunWindowBench()
	if err != nil {
		return err
	}
	report.Window = win

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// usec converts a duration to float microseconds for the JSON report.
func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
