package bench

import (
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/dataset"
	"paracosm/internal/metrics"
	"paracosm/internal/obs"
	"paracosm/internal/stream"
)

// WindowRecord is one (workload, algo, window) row of the batch-dynamic
// executor benchmark (schema 6). Window == 1 rows are the per-update v1
// baseline the windowed rows are compared against; the window counters
// are zero there by construction.
type WindowRecord struct {
	Dataset       string  `json:"dataset"`
	Workload      string  `json:"workload"` // uniform | deletion_heavy | bursty
	Algo          string  `json:"algo"`
	Window        int     `json:"window"`
	Updates       int     `json:"updates"` // raw updates consumed, coalesced-away ones included
	ElapsedMS     float64 `json:"elapsed_ms"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Matches       uint64  `json:"matches"`
	// Window-assembly counters: raw updates removed by coalescing and
	// the exact insert/delete pairs among them.
	Windows          int `json:"windows"`
	Coalesced        int `json:"coalesced"`
	AnnihilatedPairs int `json:"annihilated_pairs"`
	// Conflict-scheduling counters: independent-set (wave) shape and how
	// many updates committed in multi-update waves vs alone.
	Groups                 int     `json:"groups"`
	MaxGroup               int     `json:"max_group"`
	AvgGroup               float64 `json:"avg_group"`
	UnsafeParallel         int     `json:"unsafe_parallel"`
	FallbackSerial         int     `json:"fallback_serial"`
	ParallelUnsafeFraction float64 `json:"parallel_unsafe_fraction"`
	// Per-update latency quantiles, for the flat-or-better-p99 check on
	// uniform workloads.
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP99US float64 `json:"latency_p99_us"`
}

// windowBenchSizes are the window sizes each workload is measured at:
// the v1 baseline and one windowed configuration.
var windowBenchSizes = []int{1, 64}

// RunWindowBench measures the batch-dynamic executor against the
// per-update baseline on three workloads over the Amazon stand-in:
// uniform (the plain holdout insert stream), deletion-heavy churn
// (interleaved deletes with re-inserts) and bursty (hot-edge
// insert/delete bursts that coalesce away). Real execution only — the
// windowed executor is a wall-clock optimization, so simulate mode
// would measure nothing.
func (c Config) RunWindowBench() ([]WindowRecord, error) {
	c = c.Defaults()
	threads := c.Threads
	if threads > 8 {
		threads = 8 // real goroutines, not simulated workers
	}
	if threads < 2 {
		threads = 2
	}

	d := c.data(dataset.AmazonSpec)
	capped := func(s stream.Stream) stream.Stream {
		if len(s) > 2*c.StreamCap {
			s = s[:2*c.StreamCap]
		}
		return s
	}
	workloads := []struct {
		name string
		s    stream.Stream
	}{
		{"uniform", c.stream(d)},
		{"deletion_heavy", capped(d.DeletionHeavyStream(0.5))},
		{"bursty", capped(d.BurstyStream(6))},
	}

	var out []WindowRecord
	for _, wl := range workloads {
		for _, name := range []string{"GraphFlow", "Symbi"} {
			entry, err := algo.ByName(name)
			if err != nil {
				return nil, err
			}
			qs, err := c.queriesFor(d, 4)
			if err != nil {
				return nil, err
			}
			for _, win := range windowBenchSizes {
				tr := obs.NewTracer(obs.DefaultRingCap)
				var agg core.Stats
				var elapsed time.Duration
				updates := 0
				for _, q := range qs {
					t0 := time.Now()
					r := c.runOne(entry, d, q, wl.s,
						core.Threads(threads), core.InterUpdate(true),
						core.LoadBalance(true), core.Simulate(false),
						core.Window(win), core.WithTracer(tr))
					elapsed += time.Since(t0)
					// Raw throughput: committed updates plus the ones
					// coalescing removed before they reached an engine.
					updates += r.Stats.Updates + r.Stats.Window.Coalesced
					agg.Add(r.Stats)
				}
				lat := tr.Hist(obs.PhaseTotal)
				w := agg.Window
				out = append(out, WindowRecord{
					Dataset:          d.Name,
					Workload:         wl.name,
					Algo:             name,
					Window:           win,
					Updates:          updates,
					ElapsedMS:        float64(elapsed) / float64(time.Millisecond),
					UpdatesPerSec:    metrics.Rate(uint64(updates), elapsed),
					Matches:          agg.Positive + agg.Negative,
					Windows:          w.Windows,
					Coalesced:        w.Coalesced,
					AnnihilatedPairs: w.Annihilated,
					Groups:           w.Groups,
					MaxGroup:         w.MaxGroup,
					AvgGroup:         avgGroup(w),
					UnsafeParallel:   w.UnsafeParallel,
					FallbackSerial:   w.FallbackSerial,
					ParallelUnsafeFraction: metrics.Fraction(
						uint64(w.UnsafeParallel), uint64(w.UnsafeParallel+w.FallbackSerial)),
					LatencyP50US: usec(lat.Quantile(0.50)),
					LatencyP99US: usec(lat.Quantile(0.99)),
				})
			}
		}
	}
	return out, nil
}

// avgGroup is the mean independent-set size (0 when no groups formed).
func avgGroup(w core.WindowCounters) float64 {
	if w.Groups == 0 {
		return 0
	}
	return float64(w.UnsafeParallel+w.FallbackSerial) / float64(w.Groups)
}
