// Package bench is the experiment harness: for every table and figure of
// the ParaCOSM paper's motivation (§3) and evaluation (§5) it provides a
// regenerating experiment that produces the same rows/series on the
// synthesized datasets. Absolute numbers differ from the paper's testbed
// (80-core Xeon, full SNAP datasets); the shapes — which algorithm wins,
// rough factors, where scaling saturates — are the reproduction target.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"paracosm/internal/algo"
	"paracosm/internal/core"
	"paracosm/internal/csm"
	"paracosm/internal/dataset"
	"paracosm/internal/graph"
	"paracosm/internal/obs"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Config parameterizes all experiments so they scale from smoke-test to
// paper-sized runs.
type Config struct {
	// Scale multiplies the Table 5 dataset sizes (default 0.002).
	Scale float64
	// Seed drives all dataset and query generation (default 1).
	Seed int64
	// QueriesPerSize is the number of random queries per query size
	// (paper: 100; default here: 3).
	QueriesPerSize int
	// StreamCap bounds the number of stream updates replayed per query
	// (default 300).
	StreamCap int
	// Budget is the per-query processing time limit defining success
	// (paper: 1 hour; default here: 2s).
	Budget time.Duration
	// Threads is the parallel worker count (paper headline: 32; default:
	// GOMAXPROCS).
	Threads int
	// Simulate runs parallel configurations under execution-driven
	// schedule simulation (see core.Simulate). Defaults to true whenever
	// the machine has fewer CPUs than Threads, which is when wall-clock
	// speedups are unmeasurable.
	Simulate bool
	// Tracer, if non-nil, is attached to every engine the harness runs
	// (see core.WithTracer): its counters and latency histograms then
	// aggregate across all experiments, which is what the -debug-addr
	// flag of cmd/experiments serves live.
	Tracer *obs.Tracer
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.002
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueriesPerSize <= 0 {
		c.QueriesPerSize = 3
	}
	if c.StreamCap <= 0 {
		c.StreamCap = 300
	}
	if c.Budget <= 0 {
		c.Budget = 2 * time.Second
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
		if c.Threads < 8 {
			// The paper's headline configuration is 32 threads; on small
			// machines default to 32 simulated workers.
			c.Threads = 32
		}
	}
	if runtime.NumCPU() < c.Threads {
		c.Simulate = true
	}
	return c
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All returns every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: existing CSM solutions (complexity reference)", Run: RunTable1},
		{ID: "fig4", Title: "Figure 4: single-threaded incremental matching time by query size", Run: RunFig4},
		{ID: "table3", Title: "Table 3: ADS-update vs Find-Matches breakdown and success rate", Run: RunTable3},
		{ID: "table4", Title: "Table 4: average unsafe update percentage", Run: RunTable4},
		{ID: "fig7", Title: "Figure 7: ParaCOSM speedup over single-threaded baselines per dataset", Run: RunFig7},
		{ID: "fig8", Title: "Figure 8: ParaCOSM speedup on big query graphs (LiveJournal)", Run: RunFig8},
		{ID: "table6", Title: "Table 6: success rate of parallel CSM algorithms (LiveJournal)", Run: RunTable6},
		{ID: "fig9", Title: "Figure 9: speedup vs number of threads", Run: RunFig9},
		{ID: "fig10", Title: "Figure 10: CDF of per-thread busy time, balanced vs unbalanced", Run: RunFig10},
		{ID: "fig11", Title: "Figure 11: inter-update mechanism speedup (Orkut)", Run: RunFig11},
		{ID: "fig12", Title: "Figure 12: three-stage filtering pruning effectiveness (Orkut)", Run: RunFig12},
		{ID: "model", Title: "§4.3: analytical speedup model and safe-update probability", Run: RunModel},
	}
}

// AllWithAblations returns the paper experiments followed by the ablation
// studies of DESIGN.md §4.
func AllWithAblations() []Experiment {
	out := append(All(), ablations()...)
	return append(out, ablations2()...)
}

// ByID returns the experiment with the given id (including ablations).
func ByID(id string) (Experiment, error) {
	for _, e := range AllWithAblations() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// datasetCache avoids regenerating identical datasets across experiments
// in one process.
var (
	datasetCache   = map[string]*dataset.Dataset{} // guarded by datasetCacheMu
	datasetCacheMu sync.Mutex
)

func (c Config) data(spec dataset.Spec) *dataset.Dataset {
	key := fmt.Sprintf("%s/%g/%d", spec.Name, c.Scale, c.Seed)
	datasetCacheMu.Lock()
	defer datasetCacheMu.Unlock()
	if d, ok := datasetCache[key]; ok {
		return d
	}
	d := dataset.Custom(spec, dataset.Scale(c.Scale), dataset.Seed(c.Seed))
	datasetCache[key] = d
	return d
}

func (c Config) stream(d *dataset.Dataset) stream.Stream {
	s := d.Stream
	if len(s) > c.StreamCap {
		s = s[:c.StreamCap]
	}
	return s
}

// RunResult is the outcome of processing one query's stream.
type RunResult struct {
	Elapsed time.Duration // incremental matching time (TTotal)
	Stats   core.Stats
	Success bool // finished within budget
	// Kernels snapshots the engine's intersection-kernel counters when the
	// algorithm exposes them (every algobase-derived backend does).
	Kernels graph.KernelCounters
}

// kernelCounter is implemented by algorithms that share the intersection
// kernels of internal/graph (algobase.Base promotes it).
type kernelCounter interface {
	KernelCounters() graph.KernelCounters
}

// runOne processes stream s for query q over a fresh clone of d.Graph
// using the given engine options, under the per-query budget.
func (c Config) runOne(entry algo.Entry, d *dataset.Dataset, q *query.Graph, s stream.Stream, opts ...core.Option) RunResult {
	g := d.Graph.Clone()
	if c.Tracer != nil {
		// Prepend so an explicit per-call WithTracer (e.g. benchjson's
		// per-record tracer) wins over the harness-wide one.
		opts = append([]core.Option{core.WithTracer(c.Tracer)}, opts...)
	}
	eng := core.New(entry.New(), opts...)
	defer eng.Close()
	if err := eng.Init(g, q); err != nil {
		// Offline-stage failures are configuration errors, not timeouts.
		panic(fmt.Sprintf("bench: %s Init: %v", entry.Name, err))
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.Budget)
	defer cancel()
	st, err := eng.Run(ctx, s)
	res := RunResult{Elapsed: st.TTotal, Stats: st, Success: err == nil}
	if kc, ok := eng.Algo().(kernelCounter); ok {
		res.Kernels = kc.KernelCounters()
	}
	if err != nil && !errors.Is(err, csm.ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		panic(fmt.Sprintf("bench: %s run: %v", entry.Name, err))
	}
	return res
}

// sequentialOpts is the single-threaded baseline configuration.
func sequentialOpts() []core.Option {
	return []core.Option{core.Threads(1), core.InterUpdate(false)}
}

// parallelOpts is the full ParaCOSM configuration at n threads.
func (c Config) parallelOpts(n int) []core.Option {
	return []core.Option{core.Threads(n), core.InterUpdate(true), core.LoadBalance(true), core.Simulate(c.Simulate)}
}

// queriesFor deterministically extracts the experiment's query set.
func (c Config) queriesFor(d *dataset.Dataset, size int) ([]*query.Graph, error) {
	return d.RandomQueries(size, c.QueriesPerSize)
}
