package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Analysis is the offline digest of a JSONL trace: the per-phase time
// breakdown and the top-k straggler updates, the two questions a trace
// dump exists to answer ("where did the time go" and "which updates").
// Serving-layer lifecycle events (Class "server") and pipeline stage
// events (Class "stage") are segregated into their own tallies — folding
// them into the update totals would skew the phase fractions and latency
// quantiles of serve-mode trace dumps with zero-duration srv:* rows.
type Analysis struct {
	Events       int // per-update engine events only
	ByClass      map[string]int
	Escalations  int
	Timeouts     int
	Reclassified int
	Nodes        uint64
	Matches      uint64

	ADS, Find, Total time.Duration // summed per-phase time

	// P50/P90/P99/Max are quantiles of per-update Total latency,
	// computed exactly from the events (no histogram error).
	P50, P90, P99, Max time.Duration

	// Stragglers holds the k slowest updates by Total, slowest first.
	Stragglers []Event

	// ServerEvents counts Class "server" rows; ByServerOp tallies them
	// per srv:* op (the Matches field carries each event's count).
	ServerEvents int
	ByServerOp   map[string]uint64

	// StageEvents counts per-update Class "stage" rows (one per applied
	// update in a lockstep-driven trace); Stages sums their per-stage
	// durations. WindowEvents counts per-window stage rows (Op "win",
	// one per executed window of the batch-dynamic executor), summed
	// into the window stages of the breakdown.
	StageEvents  int
	WindowEvents int
	Stages       StageBreakdown
}

// StageBreakdown is the summed pipeline stage time of a trace's stage
// events (see obs.Stage for the stage model). The first five stages are
// per-update; the window stages are per-window (batch-dynamic executor).
type StageBreakdown struct {
	IngestWait, Assemble, PreApply, Commit, PostApply time.Duration
	Coalesce, ConflictBuild, ParallelUnsafe           time.Duration
}

// Total returns the summed time across all per-update stages (window
// stage time overlaps the per-update stages and is reported separately).
func (b StageBreakdown) Total() time.Duration {
	return b.IngestWait + b.Assemble + b.PreApply + b.Commit + b.PostApply
}

// WindowTotal returns the summed time across the window stages.
func (b StageBreakdown) WindowTotal() time.Duration {
	return b.Coalesce + b.ConflictBuild + b.ParallelUnsafe
}

// Analyze digests a slice of trace events; topK bounds len(Stragglers).
func Analyze(evs []Event, topK int) Analysis {
	a := Analysis{ByClass: map[string]int{}, ByServerOp: map[string]uint64{}}
	if len(evs) == 0 {
		return a
	}
	updates := make([]Event, 0, len(evs))
	for i := range evs {
		ev := &evs[i]
		switch ev.Class {
		case ClassServer:
			a.ServerEvents++
			a.ByServerOp[ev.Op] += ev.Matches
			continue
		case ClassStage:
			if ev.Op == OpWindow {
				a.WindowEvents++
				a.Stages.Coalesce += ev.Coalesce
				a.Stages.ConflictBuild += ev.ConflictBuild
				a.Stages.ParallelUnsafe += ev.ParallelUnsafe
				continue
			}
			a.StageEvents++
			a.Stages.IngestWait += ev.IngestWait
			a.Stages.Assemble += ev.Assemble
			a.Stages.PreApply += ev.PreApply
			a.Stages.Commit += ev.Commit
			a.Stages.PostApply += ev.PostApply
			continue
		}
		a.Events++
		a.ByClass[ev.Class]++
		if ev.Escalated {
			a.Escalations++
		}
		if ev.Timeout {
			a.Timeouts++
		}
		if ev.Reclassified {
			a.Reclassified++
		}
		a.Nodes += ev.Nodes
		a.Matches += ev.Matches
		a.ADS += ev.ADS
		a.Find += ev.Find
		a.Total += ev.Total
		updates = append(updates, *ev)
	}
	if a.Events == 0 {
		return a
	}
	totals := make([]time.Duration, 0, len(updates))
	for i := range updates {
		totals = append(totals, updates[i].Total)
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	q := func(p float64) time.Duration {
		idx := int(p*float64(len(totals))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(totals) {
			idx = len(totals) - 1
		}
		return totals[idx]
	}
	a.P50, a.P90, a.P99 = q(0.50), q(0.90), q(0.99)
	a.Max = totals[len(totals)-1]

	if topK > 0 {
		sorted := append([]Event(nil), updates...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total > sorted[j].Total })
		if topK > len(sorted) {
			topK = len(sorted)
		}
		a.Stragglers = sorted[:topK]
	}
	return a
}

// Render writes the analysis as a human-readable report.
func (a Analysis) Render(w io.Writer) {
	fmt.Fprintf(w, "events        : %d (%d escalated, %d timed out, %d reclassified)\n",
		a.Events, a.Escalations, a.Timeouts, a.Reclassified)
	if a.ServerEvents > 0 {
		ops := make([]string, 0, len(a.ByServerOp))
		for op := range a.ByServerOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		fmt.Fprintf(w, "server events : %d —", a.ServerEvents)
		for _, op := range ops {
			fmt.Fprintf(w, " %s=%d", op, a.ByServerOp[op])
		}
		fmt.Fprintln(w)
	}
	if a.StageEvents > 0 {
		total := a.Stages.Total()
		share := func(d time.Duration) float64 {
			if total <= 0 {
				return 0
			}
			return 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(w, "pipeline      : %d staged updates, %v total\n", a.StageEvents, total.Round(time.Microsecond))
		fmt.Fprintf(w, "stage shares  : ingest-wait %.1f%%  assemble %.1f%%  pre-apply %.1f%%  commit %.1f%%  post-apply %.1f%%\n",
			share(a.Stages.IngestWait), share(a.Stages.Assemble),
			share(a.Stages.PreApply), share(a.Stages.Commit), share(a.Stages.PostApply))
	}
	if a.WindowEvents > 0 {
		fmt.Fprintf(w, "windows       : %d executed, %v window-stage time\n",
			a.WindowEvents, a.Stages.WindowTotal().Round(time.Microsecond))
		fmt.Fprintf(w, "window stages : coalesce %v  conflict-build %v  parallel-unsafe %v\n",
			a.Stages.Coalesce.Round(time.Microsecond),
			a.Stages.ConflictBuild.Round(time.Microsecond),
			a.Stages.ParallelUnsafe.Round(time.Microsecond))
	}
	if a.Events == 0 {
		return
	}
	classes := make([]string, 0, len(a.ByClass))
	for c := range a.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "classes       :")
	for _, c := range classes {
		fmt.Fprintf(w, " %s=%d", c, a.ByClass[c])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "work          : %d search nodes, %d matches\n", a.Nodes, a.Matches)
	other := a.Total - a.ADS - a.Find
	if other < 0 {
		other = 0
	}
	share := func(d time.Duration) float64 {
		if a.Total <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(a.Total)
	}
	fmt.Fprintf(w, "phase time    : total %v = ADS %v (%.1f%%) + find %v (%.1f%%) + other %v (%.1f%%)\n",
		a.Total.Round(time.Microsecond),
		a.ADS.Round(time.Microsecond), share(a.ADS),
		a.Find.Round(time.Microsecond), share(a.Find),
		other.Round(time.Microsecond), share(other))
	fmt.Fprintf(w, "update latency: p50 %v  p90 %v  p99 %v  max %v\n",
		a.P50.Round(time.Nanosecond), a.P90.Round(time.Nanosecond),
		a.P99.Round(time.Nanosecond), a.Max.Round(time.Nanosecond))
	if len(a.Stragglers) > 0 {
		fmt.Fprintf(w, "top %d stragglers (by total latency):\n", len(a.Stragglers))
		for i, ev := range a.Stragglers {
			flags := ""
			if ev.Escalated {
				flags += " escalated"
			}
			if ev.Timeout {
				flags += " TIMEOUT"
			}
			if ev.Resplits > 0 {
				flags += fmt.Sprintf(" resplits=%d", ev.Resplits)
			}
			fmt.Fprintf(w, "  %2d. seq=%-8d %s (%d,%d) class=%-11s nodes=%-9d matches=%-7d total=%v (ads %v, find %v)%s\n",
				i+1, ev.Seq, ev.Op, ev.U, ev.V, ev.Class, ev.Nodes, ev.Matches,
				ev.Total.Round(time.Microsecond), ev.ADS.Round(time.Microsecond),
				ev.Find.Round(time.Microsecond), flags)
		}
	}
}
