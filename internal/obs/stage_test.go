package obs

import (
	"strings"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageIngestWait:     "ingest_wait",
		StageAssemble:       "assemble",
		StagePreApply:       "pre_apply",
		StageCommit:         "commit",
		StagePostApply:      "post_apply",
		StageFanout:         "fanout",
		StageSubQueue:       "sub_queue",
		StageWire:           "wire_write",
		StageCoalesce:       "coalesce",
		StageConflictBuild:  "conflict_build",
		StageParallelUnsafe: "parallel_unsafe",
		StageWALAppend:      "wal_append",
		StageSnapshot:       "snapshot",
	}
	if len(want) != NumStages {
		t.Fatalf("test covers %d stages, NumStages = %d", len(want), NumStages)
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("stage %d String() = %q, want %q", int(st), st.String(), name)
		}
	}
	if s := Stage(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range String() = %q", s)
	}
	// UpdateStages are exactly the per-update stages, in pipeline order.
	wantUpd := []Stage{StageIngestWait, StageAssemble, StagePreApply, StageCommit, StagePostApply}
	if len(UpdateStages) != len(wantUpd) {
		t.Fatalf("UpdateStages has %d entries, want %d", len(UpdateStages), len(wantUpd))
	}
	for i, st := range wantUpd {
		if UpdateStages[i] != st {
			t.Errorf("UpdateStages[%d] = %v, want %v", i, UpdateStages[i], st)
		}
	}
}

func TestStageSetObserve(t *testing.T) {
	s := NewStageSet()
	s.Observe(StageCommit, time.Millisecond)
	s.Observe(StageCommit, 3*time.Millisecond)
	s.Observe(StageFanout, time.Microsecond)
	// Out-of-range stages are dropped, never panic.
	s.Observe(Stage(-1), time.Second)
	s.Observe(Stage(NumStages), time.Second)

	if got := s.Hist(StageCommit).Count(); got != 2 {
		t.Errorf("commit count = %d, want 2", got)
	}
	if got := s.Hist(StageCommit).Sum(); got != 4*time.Millisecond {
		t.Errorf("commit sum = %v, want 4ms", got)
	}
	if got := s.Hist(StageFanout).Count(); got != 1 {
		t.Errorf("fanout count = %d, want 1", got)
	}
	if got := s.Hist(StageIngestWait).Count(); got != 0 {
		t.Errorf("untouched stage count = %d, want 0", got)
	}
	if s.Hist(Stage(-1)) != nil || s.Hist(Stage(NumStages)) != nil {
		t.Error("out-of-range Hist should be nil")
	}
}

func TestStageClockMarkAndLap(t *testing.T) {
	s := NewStageSet()
	var clk StageClock
	clk.Start()
	time.Sleep(time.Millisecond)
	d1 := clk.Mark(s, StagePreApply)
	if d1 < time.Millisecond {
		t.Errorf("first mark %v, want >= 1ms", d1)
	}
	if got := s.Hist(StagePreApply).Count(); got != 1 {
		t.Fatalf("pre_apply count = %d, want 1", got)
	}
	// Mark measures from the previous boundary, not from Start.
	d2 := clk.Mark(s, StageCommit)
	if d2 > d1 {
		t.Errorf("second mark %v measured from Start, not the previous mark (%v)", d2, d1)
	}
	// Lap advances the clock without observing anything.
	before := s.Hist(StagePostApply).Count()
	_ = clk.Lap()
	if got := s.Hist(StagePostApply).Count(); got != before {
		t.Error("Lap observed into the set")
	}
	// A deferred observation of a lapped duration lands where directed.
	time.Sleep(time.Millisecond)
	d3 := clk.Lap()
	s.Observe(StagePostApply, d3)
	if got := s.Hist(StagePostApply).Count(); got != before+1 {
		t.Errorf("deferred observe count = %d, want %d", got, before+1)
	}
	if d3 < time.Millisecond {
		t.Errorf("lap after sleep %v, want >= 1ms", d3)
	}
}

func TestStageSetWritePrometheus(t *testing.T) {
	s := NewStageSet()
	for st := Stage(0); int(st) < NumStages; st++ {
		s.Observe(st, time.Duration(st+1)*time.Millisecond)
	}
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range stageNames {
		family := "paracosm_stage_" + name + "_seconds"
		for _, want := range []string{
			"# TYPE " + family + " histogram",
			family + "_count 1",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in stage exposition", want)
			}
		}
	}
}
