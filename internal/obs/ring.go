package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one per-update trace record. The engine fills it on the
// completion of every processed update (safe or unsafe); all fields are
// plain values so appending an Event to the ring never allocates.
//
// Durations marshal as integer nanoseconds (hence the _ns JSON names),
// which keeps the JSONL trace trivially parseable by jq/awk.
type Event struct {
	// Seq is the tracer-assigned update sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Op is the stream mnemonic: "+e", "-e", "+v", "-v".
	Op string `json:"op"`
	// U, V are the update's endpoints (V is meaningless for vertex ops).
	U uint32 `json:"u"`
	V uint32 `json:"v"`
	// Class records the batch executor's verdict: "unsafe",
	// "safe:label", "safe:degree", "safe:ads", "vertex", or "direct"
	// when the update bypassed classification (InterUpdate disabled).
	Class string `json:"class"`
	// Reclassified marks an update that was safe at stage-A
	// classification but unsafe at re-validation time.
	Reclassified bool `json:"reclassified,omitempty"`
	// Escalated marks updates whose search escalated to the parallel
	// phase of the inner-update executor.
	Escalated bool `json:"escalated,omitempty"`
	// Timeout marks updates cut off by the context deadline (the Delta
	// is a partial lower bound, see the ProcessUpdate contract).
	Timeout bool `json:"timeout,omitempty"`
	// Nodes is the number of search-tree nodes visited.
	Nodes uint64 `json:"nodes"`
	// Resplits counts subtrees re-split into pool tasks for this update.
	Resplits uint64 `json:"resplits,omitempty"`
	// Matches is the incremental result size |ΔM| (positive + negative).
	Matches uint64 `json:"matches"`
	// ADS, Find and Total are the per-phase durations.
	ADS   time.Duration `json:"ads_ns"`
	Find  time.Duration `json:"find_ns"`
	Total time.Duration `json:"total_ns"`

	// Pipeline stage durations, set only on ClassStage events (one per
	// applied update, emitted by the lockstep driver; see obs.Stage).
	// Zero and omitted on per-update engine and server events.
	IngestWait time.Duration `json:"stage_ingest_wait_ns,omitempty"`
	Assemble   time.Duration `json:"stage_assemble_ns,omitempty"`
	PreApply   time.Duration `json:"stage_pre_apply_ns,omitempty"`
	Commit     time.Duration `json:"stage_commit_ns,omitempty"`
	PostApply  time.Duration `json:"stage_post_apply_ns,omitempty"`

	// Window stage durations, set only on per-window ClassStage events
	// (Op "win", one per executed window of the batch-dynamic executor).
	// Coalesce is the coalescing pass, ConflictBuild the footprint BFS +
	// grouping, ParallelUnsafe the summed concurrent execution spans of
	// the window's multi-update groups.
	Coalesce       time.Duration `json:"stage_coalesce_ns,omitempty"`
	ConflictBuild  time.Duration `json:"stage_conflict_build_ns,omitempty"`
	ParallelUnsafe time.Duration `json:"stage_parallel_unsafe_ns,omitempty"`
}

// OpWindow is the Op mnemonic of per-window stage events, distinguishing
// them from the per-update stage events inside Class "stage".
const OpWindow = "win"

// Ring is a fixed-capacity buffer of the most recent Events with
// overwrite-and-count-drops semantics: appends never block and never
// allocate once the ring is built; when full, the oldest event is
// overwritten and the drop counter incremented. All methods are safe for
// concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event // guarded by mu — fixed length, allocated once
	total uint64  // guarded by mu — events ever appended
}

// NewRing returns a ring holding the last capacity events. Capacities
// below 1 are clamped to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Append records ev, overwriting the oldest event when full.
func (r *Ring) Append(ev Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = ev
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently held (≤ Cap).
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Cap returns the ring capacity. The buffer length is fixed after NewRing,
// but taking the lock keeps the guarded-access invariant checkable.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever appended.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been overwritten.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Snapshot returns a copy of the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total < n {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	start := r.total % n
	out := make([]Event, 0, n)
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// WriteJSONL writes the retained events oldest-first, one JSON object
// per line. It snapshots the ring first, so concurrent appends during
// the write are safe (and simply not included).
func (r *Ring) WriteJSONL(w io.Writer) error {
	return writeEventsJSONL(w, r.Snapshot())
}

// writeEventsJSONL writes evs as one JSON object per line.
func writeEventsJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace (as produced by WriteJSONL or the
// /trace endpoint) back into events. Blank lines are skipped; the first
// malformed line aborts with an error.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(rd)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
