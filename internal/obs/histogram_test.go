package obs

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Bucket indexing must be monotone, total and consistent with the bucket
// bounds: every value lands in the bucket whose [lower, upper] range
// contains it.
func TestBucketIndexBounds(t *testing.T) {
	vals := []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, numBuckets)
		}
		if up := bucketUpper(i); v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			if lo := bucketUpper(i-1) + 1; v < lo {
				t.Errorf("value %d below its bucket %d lower bound %d", v, i, lo)
			}
		}
	}
	// Monotonicity of bounds and indices across the whole range.
	prev := uint64(0)
	for i := 1; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d", i, up, prev)
		}
		prev = up
	}
	if got := bucketIndex(math.MaxUint64); got != numBuckets-1 {
		t.Fatalf("MaxUint64 index = %d, want %d", got, numBuckets-1)
	}
}

// Quantiles must track the exact empirical quantiles within the
// documented sub-bucket relative error.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var sample []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of real update latency.
		d := time.Duration(math.Exp(rng.Float64()*14) * 1000) // 1µs .. ~1.2s in ns
		h.Observe(d)
		sample = append(sample, d)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact := sample[int(p*float64(len(sample)))-1]
		got := h.Quantile(p)
		rel := math.Abs(float64(got-exact)) / float64(exact)
		if rel > 0.15 {
			t.Errorf("p%v: histogram %v vs exact %v (rel err %.3f > 0.15)", p, got, exact, rel)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Errorf("extreme quantiles: q0=%v min=%v q1=%v max=%v", h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read as zeros")
	}
	h.Observe(-5 * time.Second) // clamped to 0
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Min() != 0 || h.Max() != 20*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got, want := h.Sum(), 30*time.Millisecond; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("reset did not zero the histogram")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(time.Duration(i) * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Max() != 200*time.Microsecond || a.Min() != time.Microsecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 85*time.Microsecond || med > 115*time.Microsecond {
		t.Fatalf("merged median %v far from 100µs", med)
	}
	// Self-merge and nil-merge are no-ops.
	a.Merge(a)
	a.Merge(nil)
	if a.Count() != 200 {
		t.Fatalf("self/nil merge changed count to %d", a.Count())
	}
}

// TestHistogramMergeEdgeCases covers the merge paths the serving layer
// leans on for closed-query latency folding: empty operands on either
// side, min/max propagation into a fresh histogram, and the
// merge-equals-concatenation identity (bucket counts add, so quantiles
// of a merged histogram are EXACTLY those of one histogram fed both
// sequences).
func TestHistogramMergeEdgeCases(t *testing.T) {
	// Empty into empty: still reads as zeros.
	a, b := NewHistogram(), NewHistogram()
	a.Merge(b)
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Fatalf("empty-merge histogram not zero: count=%d", a.Count())
	}

	// Populated into empty: count, sum and extrema carry over exactly.
	b.Observe(3 * time.Millisecond)
	b.Observe(7 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 || a.Sum() != 10*time.Millisecond {
		t.Fatalf("merge into empty: count=%d sum=%v", a.Count(), a.Sum())
	}
	if a.Min() != 3*time.Millisecond || a.Max() != 7*time.Millisecond {
		t.Fatalf("merge into empty extrema: min=%v max=%v", a.Min(), a.Max())
	}

	// Empty into populated: a no-op, including extrema (an empty
	// histogram's zero min must not clobber the target's).
	a.Merge(NewHistogram())
	if a.Count() != 2 || a.Min() != 3*time.Millisecond {
		t.Fatalf("empty-operand merge changed state: count=%d min=%v", a.Count(), a.Min())
	}

	// Merge equals concatenation, bucket for bucket.
	x, y, both := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 500; i++ {
		d := time.Duration(i*i) * time.Microsecond
		if i%2 == 0 {
			x.Observe(d)
		} else {
			y.Observe(d)
		}
		both.Observe(d)
	}
	x.Merge(y)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := x.Quantile(p), both.Quantile(p); got != want {
			t.Errorf("q%.2f: merged %v != concatenated %v", p, got, want)
		}
	}
	if x.Count() != both.Count() || x.Sum() != both.Sum() {
		t.Errorf("merged count/sum %d/%v != concatenated %d/%v", x.Count(), x.Sum(), both.Count(), both.Sum())
	}
}

// TestHistogramQuantileEdgeCases pins the quantile contract at the
// boundaries: empty histograms read zero everywhere, out-of-range p
// clamps to the observed extrema, and a single observation answers every
// quantile with itself (clamped to its bucket's range).
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(p); got != 0 {
			t.Errorf("empty q%v = %v, want 0", p, got)
		}
	}
	h.Observe(5 * time.Millisecond)
	for _, p := range []float64{-0.5, 0, 0.5, 0.999, 1, 1.5} {
		if got := h.Quantile(p); got != 5*time.Millisecond {
			t.Errorf("single-sample q%v = %v, want 5ms (clamped to the one observation)", p, got)
		}
	}
	// Two extreme samples: interior quantiles stay within [min, max].
	h.Observe(time.Nanosecond)
	for _, p := range []float64{0.01, 0.5, 0.99} {
		q := h.Quantile(p)
		if q < h.Min() || q > h.Max() {
			t.Errorf("q%v = %v outside observed range [%v, %v]", p, q, h.Min(), h.Max())
		}
	}
	if h.Quantile(-3) != h.Min() || h.Quantile(3) != h.Max() {
		t.Errorf("out-of-range p did not clamp: q(-3)=%v q(3)=%v", h.Quantile(-3), h.Quantile(3))
	}
}

func TestHistogramPrometheus(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	var sb strings.Builder
	if err := h.WritePrometheus(&sb, "test_seconds"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="+Inf"} 2`,
		"test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts and le bounds must be non-decreasing.
	lastCount, lastLE := uint64(0), math.Inf(-1)
	for _, line := range strings.Split(out, "\n") {
		i := strings.Index(line, `{le="`)
		if i < 0 || strings.Contains(line, "+Inf") {
			continue
		}
		rest := line[i+len(`{le="`):]
		j := strings.Index(rest, `"} `)
		if j < 0 {
			t.Fatalf("malformed bucket line %q", line)
		}
		le, err := strconv.ParseFloat(rest[:j], 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", line, err)
		}
		c, err := strconv.ParseUint(rest[j+3:], 10, 64)
		if err != nil {
			t.Fatalf("bad count in %q: %v", line, err)
		}
		if c < lastCount || le <= lastLE {
			t.Errorf("non-monotonic bucket line %q", line)
		}
		lastCount, lastLE = c, le
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}
