package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Phase identifies one of the tracer's per-phase latency histograms.
type Phase int

const (
	// PhaseTotal is end-to-end per-update latency.
	PhaseTotal Phase = iota
	// PhaseADS is the ADS-maintenance slice of an update.
	PhaseADS
	// PhaseFind is the find-matches (search) slice of an update.
	PhaseFind
	// PhaseClassify is the per-batch stage-A classification time of the
	// inter-update executor (one observation per batch, not per update).
	PhaseClassify
	numPhases
)

// String returns the phase's metric-friendly name.
func (p Phase) String() string {
	switch p {
	case PhaseTotal:
		return "total"
	case PhaseADS:
		return "ads"
	case PhaseFind:
		return "find"
	case PhaseClassify:
		return "classify"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Event class values (see Event.Class).
const (
	ClassDirect     = "direct"
	ClassUnsafe     = "unsafe"
	ClassSafeLabel  = "safe:label"
	ClassSafeDegree = "safe:degree"
	ClassSafeADS    = "safe:ads"
	ClassVertex     = "vertex"
	// ClassServer marks serving-layer lifecycle events (srv:* ops): they
	// carry no per-update phase times and bypass the update counters.
	ClassServer = "server"
	// ClassStage marks pipeline stage events emitted by the lockstep
	// driver, one per applied update, carrying the stage durations.
	ClassStage = "stage"
)

// ServerOp enumerates the serving-layer lifecycle events a Tracer counts
// (see Tracer.ServerEvent). The fixed set keeps the observation path
// allocation-free and the /metrics series stable.
type ServerOp int

const (
	SrvAccept ServerOp = iota
	SrvReject
	SrvRegister
	SrvDeregister
	SrvSubscribe
	SrvIngest
	SrvDrop
	SrvDisconnect
	SrvSnapshot
	SrvSnapshotErr
	numServerOps
)

// srvOpRingNames are the trace-ring Op strings ("srv:"-prefixed),
// precomputed so appending a server event never concatenates.
var srvOpRingNames = [numServerOps]string{
	"srv:accept", "srv:reject", "srv:register", "srv:deregister",
	"srv:subscribe", "srv:ingest", "srv:drop", "srv:disconnect",
	"srv:snapshot", "srv:snapshot_err",
}

// String returns the bare op name (the `op` label on /metrics).
func (o ServerOp) String() string {
	if o >= 0 && o < numServerOps {
		return srvOpRingNames[o][len("srv:"):]
	}
	return fmt.Sprintf("ServerOp(%d)", int(o))
}

// Tracer is the aggregation point the engine emits into (attach one via
// core.Config.Tracer). It owns a bounded trace ring of recent per-update
// events plus fixed-memory per-phase latency histograms and a handful of
// monotonic counters; total memory is constant regardless of stream
// length, and the observation path performs no allocations.
//
// One Tracer may be shared by several engines (e.g. a MultiEngine or the
// bench harness): every method is safe for concurrent use, and the
// counters then aggregate across all of them.
type Tracer struct {
	seq    atomic.Uint64
	ring   *Ring
	hists  [numPhases]*Histogram
	stages *StageSet

	srvCounts [numServerOps]atomic.Uint64

	updates     atomic.Uint64
	safe        atomic.Uint64
	unsafeN     atomic.Uint64 // "unsafe" is a keyword-adjacent builtin package name
	escalations atomic.Uint64
	timeouts    atomic.Uint64
	reclass     atomic.Uint64
	matches     atomic.Uint64
	nodes       atomic.Uint64
	batches     atomic.Uint64

	// Batch-dynamic window executor counters (see Tracer.Window).
	winCoalesced   atomic.Uint64
	winAnnihilated atomic.Uint64
	winParallel    atomic.Uint64
	winSerial      atomic.Uint64
}

// DefaultRingCap is the trace ring capacity NewTracer uses for
// ringCap <= 0: at ~150 bytes/event it retains the last 4096 updates in
// well under a megabyte.
const DefaultRingCap = 4096

// NewTracer returns a tracer whose ring retains the last ringCap events
// (DefaultRingCap when ringCap <= 0).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	t := &Tracer{ring: NewRing(ringCap), stages: NewStageSet()}
	for i := range t.hists {
		t.hists[i] = NewHistogram()
	}
	return t
}

// Stages returns the tracer's pipeline stage histograms (see stage.go):
// the lockstep driver and the serving layer observe into them directly.
func (t *Tracer) Stages() *StageSet { return t.stages }

// ServerEvent records one serving-layer lifecycle event: the per-op
// counter is incremented by n and one ClassServer event (Op "srv:<op>",
// Matches = n) enters the trace ring. Server events deliberately bypass
// Update so the per-update counters and latency histograms stay
// engine-only. Allocation-free (fixed op set, precomputed Op strings).
//
//paracosm:noalloc
func (t *Tracer) ServerEvent(op ServerOp, n uint64) {
	if op < 0 || op >= numServerOps {
		return
	}
	t.srvCounts[op].Add(n)
	t.ring.Append(Event{
		Seq:     t.NextSeq(),
		Op:      srvOpRingNames[op],
		Class:   ClassServer,
		Matches: n,
	})
}

// ServerCount returns the cumulative count for one server op.
func (t *Tracer) ServerCount(op ServerOp) uint64 {
	if op < 0 || op >= numServerOps {
		return 0
	}
	return t.srvCounts[op].Load()
}

// Stage records one pipeline stage event in the trace ring (ClassStage,
// one per applied update, emitted by the lockstep driver). The stage
// durations ride in the Event's stage fields; a Seq is assigned when
// zero. The per-stage histograms are observed separately by the driver
// (see StageSet) — this only feeds /trace.
//
//paracosm:noalloc
func (t *Tracer) Stage(ev Event) {
	if ev.Seq == 0 {
		ev.Seq = t.NextSeq()
	}
	ev.Class = ClassStage
	t.ring.Append(ev)
}

// NextSeq allocates the next update sequence number (1-based).
func (t *Tracer) NextSeq() uint64 { return t.seq.Add(1) }

// Update records one completed update: the event enters the ring and the
// phase histograms and counters are updated. If ev.Seq is zero a
// sequence number is assigned. Safe to call from concurrent engines.
func (t *Tracer) Update(ev Event) {
	if ev.Seq == 0 {
		ev.Seq = t.NextSeq()
	}
	t.updates.Add(1)
	switch ev.Class {
	case ClassSafeLabel, ClassSafeDegree, ClassSafeADS, ClassVertex:
		t.safe.Add(1)
	case ClassUnsafe:
		t.unsafeN.Add(1)
	}
	if ev.Escalated {
		t.escalations.Add(1)
	}
	if ev.Timeout {
		t.timeouts.Add(1)
	}
	if ev.Reclassified {
		t.reclass.Add(1)
	}
	t.matches.Add(ev.Matches)
	t.nodes.Add(ev.Nodes)
	t.hists[PhaseTotal].Observe(ev.Total)
	t.hists[PhaseADS].Observe(ev.ADS)
	t.hists[PhaseFind].Observe(ev.Find)
	t.ring.Append(ev)
}

// Classify records one inter-update batch's stage-A classification time.
func (t *Tracer) Classify(d time.Duration) {
	t.batches.Add(1)
	t.hists[PhaseClassify].Observe(d)
}

// Window accumulates the batch-dynamic executor counters: updates removed
// by coalescing, exact insert/delete pairs annihilated, updates committed
// in multi-update independent groups (parallel) and updates committed
// alone after a conflict/overflow/barrier (serial). Allocation-free.
//
//paracosm:noalloc
func (t *Tracer) Window(coalesced, annihilated, parallel, serial uint64) {
	if coalesced != 0 {
		t.winCoalesced.Add(coalesced)
	}
	if annihilated != 0 {
		t.winAnnihilated.Add(annihilated)
	}
	if parallel != 0 {
		t.winParallel.Add(parallel)
	}
	if serial != 0 {
		t.winSerial.Add(serial)
	}
}

// Ring returns the trace ring.
func (t *Tracer) Ring() *Ring { return t.ring }

// Hist returns the histogram for the given phase.
func (t *Tracer) Hist(p Phase) *Histogram { return t.hists[p] }

// Counters is a snapshot of the tracer's monotonic counters.
type Counters struct {
	Updates      uint64 `json:"updates"`
	Safe         uint64 `json:"safe"`
	Unsafe       uint64 `json:"unsafe"`
	Escalations  uint64 `json:"escalations"`
	Timeouts     uint64 `json:"timeouts"`
	Reclassified uint64 `json:"reclassified"`
	Matches      uint64 `json:"matches"`
	Nodes        uint64 `json:"nodes"`
	Batches      uint64 `json:"batches"`
	TraceDropped uint64 `json:"trace_dropped"`

	WindowCoalesced      uint64 `json:"window_coalesced"`
	WindowAnnihilated    uint64 `json:"window_annihilated"`
	WindowUnsafeParallel uint64 `json:"window_unsafe_parallel"`
	WindowFallbackSerial uint64 `json:"window_fallback_serial"`
}

// Counters returns a snapshot of the aggregate counters.
func (t *Tracer) Counters() Counters {
	return Counters{
		Updates:      t.updates.Load(),
		Safe:         t.safe.Load(),
		Unsafe:       t.unsafeN.Load(),
		Escalations:  t.escalations.Load(),
		Timeouts:     t.timeouts.Load(),
		Reclassified: t.reclass.Load(),
		Matches:      t.matches.Load(),
		Nodes:        t.nodes.Load(),
		Batches:      t.batches.Load(),
		TraceDropped: t.ring.Dropped(),

		WindowCoalesced:      t.winCoalesced.Load(),
		WindowAnnihilated:    t.winAnnihilated.Load(),
		WindowUnsafeParallel: t.winParallel.Load(),
		WindowFallbackSerial: t.winSerial.Load(),
	}
}

// WritePrometheus emits every counter and per-phase histogram in
// Prometheus text exposition format (the /metrics payload).
func (t *Tracer) WritePrometheus(w io.Writer) error {
	c := t.Counters()
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"paracosm_updates_total", "Updates processed (safe + unsafe + direct).", c.Updates},
		{"paracosm_safe_updates_total", "Updates the classifier proved safe (incl. vertex ops).", c.Safe},
		{"paracosm_unsafe_updates_total", "Updates that ran the full inner-parallel path after classification.", c.Unsafe},
		{"paracosm_escalations_total", "Updates whose search escalated to the parallel phase.", c.Escalations},
		{"paracosm_timeouts_total", "Updates cut off by the context deadline.", c.Timeouts},
		{"paracosm_reclassified_total", "Safe-at-classification updates found unsafe at re-validation.", c.Reclassified},
		{"paracosm_matches_total", "Incremental matches reported (positive + negative).", c.Matches},
		{"paracosm_search_nodes_total", "Search-tree nodes visited.", c.Nodes},
		{"paracosm_batches_total", "Inter-update executor batch rounds.", c.Batches},
		{"paracosm_trace_dropped_total", "Trace events overwritten in the ring.", c.TraceDropped},
		{"paracosm_window_coalesced_total", "Updates removed by window coalescing (batch-dynamic executor).", c.WindowCoalesced},
		{"paracosm_window_annihilated_total", "Exact insert/delete pairs annihilated by window coalescing (2 updates each).", c.WindowAnnihilated},
		{"paracosm_window_unsafe_parallel_total", "Updates committed in multi-update independent groups.", c.WindowUnsafeParallel},
		{"paracosm_window_fallback_serial_total", "Updates committed alone after a footprint conflict, cap overflow or window barrier.", c.WindowFallbackSerial},
	}
	for _, m := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.v); err != nil {
			return err
		}
	}
	// Serving-layer lifecycle event counts (srv:* trace events). The full
	// fixed op set is always emitted, zeros included, so the series exist
	// before the first event and scrapers can alert on their absence.
	if _, err := fmt.Fprintf(w, "# HELP paracosm_server_events_total Serving-layer lifecycle events recorded in the trace ring, by op.\n# TYPE paracosm_server_events_total counter\n"); err != nil {
		return err
	}
	for op := ServerOp(0); op < numServerOps; op++ {
		if _, err := fmt.Fprintf(w, "paracosm_server_events_total{op=%q} %d\n", op.String(), t.srvCounts[op].Load()); err != nil {
			return err
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		name := "paracosm_update_" + p.String() + "_seconds"
		if p == PhaseClassify {
			name = "paracosm_batch_classify_seconds"
		}
		if err := t.hists[p].WritePrometheus(w, name); err != nil {
			return err
		}
	}
	return t.stages.WritePrometheus(w)
}

// EscapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double-quote and newline must be backslash-escaped.
// Serving-layer metrics use it for client-supplied query names.
func EscapeLabel(v string) string {
	// Fast path: nothing to escape.
	clean := true
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	out := make([]byte, 0, len(v)+8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
