package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// MetricsFunc appends extra Prometheus text exposition lines to the
// /metrics payload — how subsystems outside the tracer (e.g. the serving
// layer's connection/queue gauges) join the same scrape endpoint.
type MetricsFunc func(w io.Writer) error

// Handler builds the debug mux for a tracer, stdlib only:
//
//	/healthz         liveness probe ("ok")
//	/metrics         Prometheus text: counters + per-phase histograms
//	/trace           recent ring events as JSONL (?n=K limits to last K)
//	/debug/vars      expvar (memstats, cmdline)
//	/debug/pprof/*   runtime profiles
//
// The handler only reads tracer state, so it can serve while engines are
// mid-stream. Any extra MetricsFuncs are appended to the /metrics payload
// after the tracer's own series.
func Handler(t *Tracer, extra ...MetricsFunc) http.Handler {
	return NewMux(t, extra...)
}

// NewMux is Handler returning the concrete mux, for callers that mount
// additional debug routes (e.g. the serving layer's /queries endpoint)
// before passing it to StartHandler.
func NewMux(t *Tracer, extra ...MetricsFunc) *http.ServeMux {
	return NewMuxReady(t, nil, extra...)
}

// NewMuxReady is NewMux with a readiness gate: while ready is non-nil
// and returns false, /healthz answers 503 "recovering" — the
// readiness-vs-liveness split the durability layer needs, since a
// recovering server is alive (the process responds) but must not be
// routed traffic until the WAL replay has caught the graph up. A nil
// ready means always ready (plain liveness).
func NewMuxReady(t *Tracer, ready func() bool, extra ...MetricsFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "recovering")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
		for _, f := range extra {
			if err := f(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		evs := t.Ring().Snapshot()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:]
			}
		}
		writeEventsJSONL(w, evs)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server. Close shuts it down and joins
// the serving goroutine.
type Server struct {
	srv  *http.Server
	addr net.Addr
	done chan struct{}
}

// StartServer listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// the debug mux for t in a background goroutine until Close. Extra
// MetricsFuncs extend the /metrics payload (see Handler).
func StartServer(addr string, t *Tracer, extra ...MetricsFunc) (*Server, error) {
	return StartHandler(addr, Handler(t, extra...))
}

// StartHandler is StartServer for a caller-built handler (e.g. a NewMux
// with extra routes mounted).
func StartHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		srv:  &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr(),
		done: make(chan struct{}),
	}
	go func() {
		// http.ErrServerClosed is the normal Close path; anything else
		// is reported through nothing — the probe endpoints simply stop
		// answering, which is what health checks are for.
		_ = s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0" listeners).
func (s *Server) Addr() string { return s.addr.String() }

// Close gracefully shuts the server down and waits for the serving
// goroutine to exit. Safe to call more than once.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
