package obs

import (
	"fmt"
	"io"
	"time"
)

// This file is the pipeline tracing substrate (DESIGN.md §14): a fixed
// set of serving-pipeline stages, one latency histogram per stage, and a
// zero-allocation clock for capturing stage boundaries. The lockstep
// driver (core.MultiEngine) observes the per-update stages; the serving
// layer (internal/server) observes the per-delta ones. Per-update stage
// sample counts reconcile with the applied-update count by construction:
// every stage is observed exactly once per update on the same code path
// that counts the update applied.

// Stage identifies one fixed stage of the serving pipeline, from wire
// ingest to subscriber delivery.
type Stage int

const (
	// StageIngestWait is time an update spent queued between admission to
	// the ingestion queue and pickup by the ingestion loop.
	StageIngestWait Stage = iota
	// StageAssemble is time between pickup and batch submission (dwell in
	// the batch being opportunistically assembled).
	StageAssemble
	// StagePreApply is the lockstep driver's read-only pre-apply fan-out
	// (classification + expiring-match enumeration across all queries).
	StagePreApply
	// StageCommit is the single shared-graph mutation.
	StageCommit
	// StagePostApply is the post-apply fan-out (ADS maintenance +
	// new-match enumeration across all queries).
	StagePostApply
	// StageFanout is the delta fan-out to subscriber queues (per nonzero
	// delta, not per update).
	StageFanout
	// StageSubQueue is a delta frame's dwell in a subscriber's outbound
	// queue (sampled per delivered delta frame).
	StageSubQueue
	// StageWire is the wire serialization + write of a delta frame
	// (sampled per delivered delta frame).
	StageWire
	// StageCoalesce is the batch-dynamic executor's window coalescing
	// pass (one observation per window, not per update).
	StageCoalesce
	// StageConflictBuild is the conflict-footprint BFS + independent-set
	// grouping over a window's updates (per window).
	StageConflictBuild
	// StageParallelUnsafe is the concurrent execution span of one
	// multi-update independent group (per group of size > 1).
	StageParallelUnsafe
	// StageWALAppend is the write-ahead-log append + durability wait for
	// one validated batch (per batch, WAL mode only).
	StageWALAppend
	// StageSnapshot is one durability snapshot write: log rotation plus
	// the atomic state-file write (per snapshot, WAL mode only).
	StageSnapshot
	numStages
)

// stageNames are the metric-friendly stage names, indexed by Stage.
var stageNames = [numStages]string{
	"ingest_wait", "assemble", "pre_apply", "commit", "post_apply",
	"fanout", "sub_queue", "wire_write",
	"coalesce", "conflict_build", "parallel_unsafe",
	"wal_append", "snapshot",
}

// String returns the stage's metric-friendly name.
func (s Stage) String() string {
	if s >= 0 && s < numStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// NumStages is the number of pipeline stages (for iteration in exports).
const NumStages = int(numStages)

// UpdateStages lists the per-update stages: the ones observed exactly
// once per applied update, whose sample counts therefore reconcile with
// the applied-update count by construction. The remaining stages
// (fanout, sub_queue, wire_write) are per-delta and sampled.
var UpdateStages = [...]Stage{
	StageIngestWait, StageAssemble, StagePreApply, StageCommit, StagePostApply,
}

// StageSet is one latency histogram per pipeline stage, all fixed-memory
// and safe for concurrent use. The zero value is not ready; use
// NewStageSet (a Tracer owns one, see Tracer.Stages).
type StageSet struct {
	hists [numStages]*Histogram
}

// NewStageSet returns a stage set with empty histograms.
func NewStageSet() *StageSet {
	s := &StageSet{}
	for i := range s.hists {
		s.hists[i] = NewHistogram()
	}
	return s
}

// Observe records one duration for the given stage. Out-of-range stages
// are ignored (never panic on the observation path).
//
//paracosm:noalloc
func (s *StageSet) Observe(st Stage, d time.Duration) {
	if st < 0 || st >= numStages {
		return
	}
	s.hists[st].Observe(d)
}

// Hist returns the histogram for one stage (nil when out of range).
func (s *StageSet) Hist(st Stage) *Histogram {
	if st < 0 || st >= numStages {
		return nil
	}
	return s.hists[st]
}

// WritePrometheus emits every stage histogram in Prometheus text
// exposition format as paracosm_stage_<name>_seconds.
func (s *StageSet) WritePrometheus(w io.Writer) error {
	for st := Stage(0); st < numStages; st++ {
		name := "paracosm_stage_" + stageNames[st] + "_seconds"
		if err := s.hists[st].WritePrometheus(w, name); err != nil {
			return err
		}
	}
	return nil
}

// StageClock captures monotonic timestamps at stage boundaries. It is a
// plain value (keep it on the stack): Start once, then Mark at each
// boundary — the elapsed time since the previous mark is observed into
// the set and returned. The observation path performs no allocations.
type StageClock struct {
	last time.Time
}

// Start begins timing: the next Mark measures from here.
//
//paracosm:noalloc
func (c *StageClock) Start() { c.last = time.Now() }

// Mark observes the time since the previous Start/Mark/Lap into set under
// st and advances the clock to now.
//
//paracosm:noalloc
func (c *StageClock) Mark(set *StageSet, st Stage) time.Duration {
	d := c.Lap()
	set.Observe(st, d)
	return d
}

// Lap returns the time since the previous Start/Mark/Lap and advances the
// clock without observing — for callers that must defer observation until
// a later boundary decides the sample counts (e.g. the lockstep driver
// observes all per-update stages together only once the update has fully
// applied, so the stage counts reconcile by construction).
//
//paracosm:noalloc
func (c *StageClock) Lap() time.Duration {
	now := time.Now()
	d := now.Sub(c.last)
	c.last = now
	return d
}
