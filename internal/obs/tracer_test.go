package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerUpdateAggregates(t *testing.T) {
	tr := NewTracer(16)
	tr.Update(Event{Op: "+e", Class: ClassUnsafe, Escalated: true, Nodes: 100, Matches: 5,
		ADS: time.Microsecond, Find: time.Millisecond, Total: 2 * time.Millisecond})
	tr.Update(Event{Op: "-e", Class: ClassSafeLabel, Nodes: 0, Total: 3 * time.Microsecond})
	tr.Update(Event{Op: "+v", Class: ClassVertex, Total: time.Microsecond})
	tr.Update(Event{Op: "+e", Class: ClassDirect, Timeout: true, Reclassified: true, Nodes: 50, Total: time.Millisecond})
	tr.Classify(10 * time.Microsecond)

	c := tr.Counters()
	if c.Updates != 4 || c.Safe != 2 || c.Unsafe != 1 || c.Escalations != 1 ||
		c.Timeouts != 1 || c.Reclassified != 1 || c.Matches != 5 || c.Nodes != 150 || c.Batches != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if got := tr.Hist(PhaseTotal).Count(); got != 4 {
		t.Fatalf("total histogram count = %d, want 4", got)
	}
	if got := tr.Hist(PhaseClassify).Count(); got != 1 {
		t.Fatalf("classify histogram count = %d, want 1", got)
	}
	// Events with Seq 0 get tracer-assigned, strictly increasing seqs.
	evs := tr.Ring().Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring has %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

func TestTracerWritePrometheus(t *testing.T) {
	tr := NewTracer(8)
	tr.Update(Event{Op: "+e", Class: ClassUnsafe, Matches: 2, Find: time.Millisecond, Total: time.Millisecond})
	var sb strings.Builder
	if err := tr.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"paracosm_updates_total 1",
		"paracosm_unsafe_updates_total 1",
		"paracosm_matches_total 2",
		"paracosm_trace_dropped_total 0",
		"# TYPE paracosm_update_total_seconds histogram",
		"paracosm_update_find_seconds_count 1",
		"# TYPE paracosm_batch_classify_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Update(Event{Op: "+e", Class: ClassUnsafe, Nodes: 1, Total: time.Microsecond})
			}
		}()
	}
	wg.Wait()
	c := tr.Counters()
	if c.Updates != 4000 || c.Nodes != 4000 {
		t.Fatalf("counters after concurrent updates: %+v", c)
	}
	if tr.Hist(PhaseTotal).Count() != 4000 {
		t.Fatalf("histogram count = %d", tr.Hist(PhaseTotal).Count())
	}
}
