package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	tr := NewTracer(16)
	tr.Update(Event{Op: "+e", U: 1, V: 2, Class: ClassUnsafe, Nodes: 10, Matches: 1,
		Find: time.Millisecond, Total: time.Millisecond})
	tr.Update(Event{Op: "-e", U: 3, V: 4, Class: ClassSafeADS, Total: time.Microsecond})

	srv, err := StartServer("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := getBody(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body := getBody(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{"paracosm_updates_total 2", "paracosm_update_total_seconds_count 2"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = getBody(t, base+"/trace")
	if code != 200 {
		t.Fatalf("/trace: status %d", code)
	}
	evs, err := ReadJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/trace not parseable JSONL: %v\n%s", err, body)
	}
	if len(evs) != 2 || evs[0].Class != ClassUnsafe || evs[1].Class != ClassSafeADS {
		t.Fatalf("/trace events = %+v", evs)
	}

	// ?n limits to the most recent K events.
	_, body = getBody(t, base+"/trace?n=1")
	evs, err = ReadJSONL(strings.NewReader(body))
	if err != nil || len(evs) != 1 || evs[0].Class != ClassSafeADS {
		t.Fatalf("/trace?n=1 = %+v (err %v)", evs, err)
	}
	if code, _ := getBody(t, base+"/trace?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/trace?n=bogus: status %d, want 400", code)
	}

	if code, body := getBody(t, base+"/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, _ := getBody(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: status %d", code)
	}
}

func TestServerCloseIdempotentEnough(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewTracer(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A second Close must not hang or panic.
	_ = srv.Close()
}
