package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func mkEvent(seq uint64) Event {
	return Event{Seq: seq, Op: "+e", U: uint32(seq), V: uint32(seq + 1), Class: ClassDirect, Total: time.Duration(seq) * time.Microsecond}
}

func TestRingOverwriteAndDrops(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("fresh ring state wrong")
	}
	for i := uint64(1); i <= 3; i++ {
		r.Append(mkEvent(i))
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 3/0", r.Len(), r.Dropped())
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("snapshot = %+v", got)
	}
	for i := uint64(4); i <= 10; i++ {
		r.Append(mkEvent(i))
	}
	if r.Len() != 4 || r.Dropped() != 6 || r.Total() != 10 {
		t.Fatalf("len=%d dropped=%d total=%d, want 4/6/10", r.Len(), r.Dropped(), r.Total())
	}
	got = r.Snapshot()
	want := []uint64{7, 8, 9, 10}
	for i, w := range want {
		if got[i].Seq != w {
			t.Fatalf("snapshot seqs = %v..., want %v (oldest first)", got[i].Seq, want)
		}
	}
}

func TestRingClampsCapacity(t *testing.T) {
	r := NewRing(0)
	r.Append(mkEvent(1))
	r.Append(mkEvent(2))
	if r.Cap() != 1 || r.Len() != 1 || r.Snapshot()[0].Seq != 2 {
		t.Fatalf("cap=%d len=%d", r.Cap(), r.Len())
	}
}

func TestRingJSONLRoundTrip(t *testing.T) {
	r := NewRing(8)
	evs := []Event{
		{Seq: 1, Op: "+e", U: 5, V: 9, Class: ClassUnsafe, Escalated: true, Nodes: 1234, Resplits: 3, Matches: 7, ADS: time.Microsecond, Find: 2 * time.Millisecond, Total: 3 * time.Millisecond},
		{Seq: 2, Op: "-v", U: 11, Class: ClassVertex, Total: 40 * time.Nanosecond},
		{Seq: 3, Op: "-e", U: 1, V: 2, Class: ClassSafeDegree, Reclassified: true, Timeout: true},
	}
	for _, ev := range evs {
		r.Append(ev)
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1; n != 3 {
		t.Fatalf("JSONL lines = %d, want 3", n)
	}
	back, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Errorf("event %d round trip mismatch:\n got %+v\nwant %+v", i, back[i], evs[i])
		}
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":1}\nnot json\n")); err == nil {
		t.Fatal("expected error on malformed line")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
				r.Dropped()
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Append(mkEvent(uint64(w*5000 + i)))
			}
		}(w)
	}
	// Writers finish, then stop the reader: join writers via a second
	// WaitGroup-free trick is overkill — just wait on total.
	for r.Total() < 20000 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if r.Total() != 20000 || r.Dropped() != 20000-64 {
		t.Fatalf("total=%d dropped=%d", r.Total(), r.Dropped())
	}
}
