package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAnalyze(t *testing.T) {
	var evs []Event
	for i := 1; i <= 100; i++ {
		evs = append(evs, Event{
			Seq: uint64(i), Op: "+e", U: uint32(i), V: uint32(i + 1),
			Class: ClassUnsafe, Nodes: 10, Matches: 1,
			ADS:   time.Microsecond,
			Find:  time.Duration(i) * time.Microsecond,
			Total: time.Duration(i) * time.Microsecond,
		})
	}
	evs[99].Escalated = true
	evs[99].Resplits = 4
	evs[99].Timeout = true

	a := Analyze(evs, 3)
	if a.Events != 100 || a.Escalations != 1 || a.Timeouts != 1 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.ByClass[ClassUnsafe] != 100 {
		t.Fatalf("ByClass = %v", a.ByClass)
	}
	if a.Nodes != 1000 || a.Matches != 100 {
		t.Fatalf("nodes/matches = %d/%d", a.Nodes, a.Matches)
	}
	if a.P50 != 50*time.Microsecond || a.P99 != 99*time.Microsecond || a.Max != 100*time.Microsecond {
		t.Fatalf("quantiles p50=%v p99=%v max=%v", a.P50, a.P99, a.Max)
	}
	if len(a.Stragglers) != 3 || a.Stragglers[0].Seq != 100 || a.Stragglers[1].Seq != 99 {
		t.Fatalf("stragglers = %+v", a.Stragglers)
	}

	var sb strings.Builder
	a.Render(&sb)
	out := sb.String()
	for _, want := range []string{"events", "unsafe=100", "top 3 stragglers", "seq=100", "TIMEOUT"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, 5)
	if a.Events != 0 || len(a.Stragglers) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
	var sb strings.Builder
	a.Render(&sb) // must not panic
}
