package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAnalyze(t *testing.T) {
	var evs []Event
	for i := 1; i <= 100; i++ {
		evs = append(evs, Event{
			Seq: uint64(i), Op: "+e", U: uint32(i), V: uint32(i + 1),
			Class: ClassUnsafe, Nodes: 10, Matches: 1,
			ADS:   time.Microsecond,
			Find:  time.Duration(i) * time.Microsecond,
			Total: time.Duration(i) * time.Microsecond,
		})
	}
	evs[99].Escalated = true
	evs[99].Resplits = 4
	evs[99].Timeout = true

	a := Analyze(evs, 3)
	if a.Events != 100 || a.Escalations != 1 || a.Timeouts != 1 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.ByClass[ClassUnsafe] != 100 {
		t.Fatalf("ByClass = %v", a.ByClass)
	}
	if a.Nodes != 1000 || a.Matches != 100 {
		t.Fatalf("nodes/matches = %d/%d", a.Nodes, a.Matches)
	}
	if a.P50 != 50*time.Microsecond || a.P99 != 99*time.Microsecond || a.Max != 100*time.Microsecond {
		t.Fatalf("quantiles p50=%v p99=%v max=%v", a.P50, a.P99, a.Max)
	}
	if len(a.Stragglers) != 3 || a.Stragglers[0].Seq != 100 || a.Stragglers[1].Seq != 99 {
		t.Fatalf("stragglers = %+v", a.Stragglers)
	}

	var sb strings.Builder
	a.Render(&sb)
	out := sb.String()
	for _, want := range []string{"events", "unsafe=100", "top 3 stragglers", "seq=100", "TIMEOUT"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeSegregatesServerAndStageEvents: serve-mode traces interleave
// per-update engine events with Class "server" lifecycle rows and Class
// "stage" pipeline rows. The latter two must land in their own tallies
// and stay OUT of the update count, phase totals and latency quantiles —
// zero-duration srv:* rows would otherwise drag p50 to zero.
func TestAnalyzeSegregatesServerAndStageEvents(t *testing.T) {
	var evs []Event
	for i := 1; i <= 10; i++ {
		evs = append(evs, Event{
			Seq: uint64(i), Op: "+e", Class: ClassUnsafe,
			Find: time.Duration(i) * time.Microsecond, Total: time.Duration(i) * time.Microsecond,
		})
	}
	evs = append(evs,
		Event{Seq: 11, Class: ClassServer, Op: "srv:ingest", Matches: 40},
		Event{Seq: 12, Class: ClassServer, Op: "srv:ingest", Matches: 2},
		Event{Seq: 13, Class: ClassServer, Op: "srv:accept", Matches: 1},
		Event{Seq: 14, Class: ClassStage, Op: "+e",
			IngestWait: 2 * time.Microsecond, Assemble: time.Microsecond,
			PreApply: 3 * time.Microsecond, Commit: time.Microsecond, PostApply: 5 * time.Microsecond},
		Event{Seq: 15, Class: ClassStage, Op: "+e", Commit: 2 * time.Microsecond},
	)

	a := Analyze(evs, 2)
	if a.Events != 10 {
		t.Fatalf("update events = %d, want 10 (server/stage rows leaked in)", a.Events)
	}
	if a.ServerEvents != 3 || a.ByServerOp["srv:ingest"] != 42 || a.ByServerOp["srv:accept"] != 1 {
		t.Fatalf("server tally = %d %v", a.ServerEvents, a.ByServerOp)
	}
	if a.StageEvents != 2 {
		t.Fatalf("stage events = %d, want 2", a.StageEvents)
	}
	want := StageBreakdown{
		IngestWait: 2 * time.Microsecond, Assemble: time.Microsecond,
		PreApply: 3 * time.Microsecond, Commit: 3 * time.Microsecond, PostApply: 5 * time.Microsecond,
	}
	if a.Stages != want {
		t.Fatalf("stage breakdown = %+v, want %+v", a.Stages, want)
	}
	if got, wantTotal := a.Stages.Total(), 14*time.Microsecond; got != wantTotal {
		t.Fatalf("stage total = %v, want %v", got, wantTotal)
	}
	// Quantiles and phase totals are over the 10 update events only.
	if a.P50 != 5*time.Microsecond || a.Max != 10*time.Microsecond {
		t.Fatalf("quantiles polluted: p50=%v max=%v", a.P50, a.Max)
	}
	if a.Total != 55*time.Microsecond {
		t.Fatalf("phase total polluted: %v", a.Total)
	}
	if a.ByClass[ClassServer] != 0 || a.ByClass[ClassStage] != 0 {
		t.Fatalf("server/stage classes leaked into ByClass: %v", a.ByClass)
	}

	var sb strings.Builder
	a.Render(&sb)
	out := sb.String()
	for _, wantLine := range []string{
		"server events : 3", "srv:ingest=42",
		"pipeline      : 2 staged updates", "stage shares", "commit 21.4%",
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("report missing %q:\n%s", wantLine, out)
		}
	}
}

// TestAnalyzeServerOnlyTrace: a trace holding nothing but lifecycle rows
// (an idle server's dump) renders the server section and no update
// sections, without dividing by zero.
func TestAnalyzeServerOnlyTrace(t *testing.T) {
	evs := []Event{
		{Seq: 1, Class: ClassServer, Op: "srv:accept", Matches: 1},
		{Seq: 2, Class: ClassServer, Op: "srv:register", Matches: 1},
	}
	a := Analyze(evs, 3)
	if a.Events != 0 || a.ServerEvents != 2 {
		t.Fatalf("analysis = %+v", a)
	}
	var sb strings.Builder
	a.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "srv:register=1") {
		t.Errorf("missing server tally:\n%s", out)
	}
	if strings.Contains(out, "update latency") {
		t.Errorf("update sections rendered for a server-only trace:\n%s", out)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, 5)
	if a.Events != 0 || len(a.Stragglers) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
	var sb strings.Builder
	a.Render(&sb) // must not panic
}
