// Package obs is the always-on observability layer: fixed-memory latency
// histograms, a bounded per-update trace ring, the Tracer hook the core
// engine emits into (see core.Config.Tracer), and a stdlib-only /debug
// HTTP server exporting all of it. Everything here is allocation-free on
// the observation path and safe for concurrent use, so a Tracer can stay
// attached to a production engine permanently.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"time"
)

// Histogram bucket layout: log-linear, like runtime/metrics and HDR
// histograms. Values (nanoseconds) below 2^subBits land in exact unit
// buckets; above that, each power of two is divided into 2^subBits linear
// sub-buckets, bounding the relative quantile error at 2^-subBits ≈ 12.5%
// per bucket width (the reported quantile interpolates inside the bucket,
// halving that in expectation). The bucket array covers the full uint64
// nanosecond range — about 584 years — in fixed memory.
const (
	subBits  = 3
	subCount = 1 << subBits // linear sub-buckets per octave

	// numBuckets is bucketIndex(math.MaxUint64)+1: the top octave has
	// bit-length 64, so the largest index is (64-subBits)*subCount + 7.
	numBuckets = (64-subBits)*subCount + subCount
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	top := bits.Len64(v) // position of the highest set bit, ≥ subBits+1
	mantissa := v >> (top - subBits - 1)
	return (top-subBits)*subCount + int(mantissa-subCount)
}

// bucketUpper returns the largest value mapping to bucket i (the
// inclusive upper bound, i.e. the Prometheus `le` boundary).
func bucketUpper(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	octave := i / subCount
	pos := uint64(i % subCount)
	return (subCount+pos+1)<<(octave-1) - 1
}

// Histogram is a fixed-memory, log-bucketed distribution of durations.
// It replaces unbounded []time.Duration samples: memory is constant
// regardless of how many observations arrive, and merging two histograms
// is bucket-wise addition. The zero value is NOT ready for use; call
// NewHistogram.
//
// All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [numBuckets]uint64 // guarded by mu
	count   uint64             // guarded by mu
	sum     uint64             // guarded by mu — total nanoseconds
	min     uint64             // guarded by mu — valid when count > 0
	max     uint64             // guarded by mu
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	i := bucketIndex(v)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.min)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.buckets = [numBuckets]uint64{}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.mu.Unlock()
}

// Merge adds other's observations into h. Merging a histogram into
// itself is a no-op rather than a double-count.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	// Snapshot other first so the two locks are never held together
	// (no ordering to deadlock on).
	other.mu.Lock()
	buckets := other.buckets
	count, sum, mn, mx := other.count, other.sum, other.min, other.max
	other.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// Quantile returns an estimate of the p-quantile (p in [0,1]) using
// linear interpolation inside the target bucket. Empty histograms return
// 0. The estimate is exact for values below 2^subBits ns and within one
// sub-bucket width (≤ 12.5% relative) otherwise.
func (h *Histogram) Quantile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.min)
	}
	if p >= 1 {
		return time.Duration(h.max)
	}
	rank := p * float64(h.count)
	cum := 0.0
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			upper := float64(bucketUpper(i))
			lower := 0.0
			if i > 0 {
				lower = float64(bucketUpper(i-1)) + 1
			}
			frac := (rank - cum) / float64(c)
			v := lower + frac*(upper-lower)
			// Clamp to the observed range so tail quantiles never
			// overshoot the true maximum.
			if m := float64(h.max); v > m {
				v = m
			}
			if m := float64(h.min); v < m {
				v = m
			}
			return time.Duration(v)
		}
		cum = next
	}
	return time.Duration(h.max)
}

// Snapshot returns the non-empty buckets as (upperBound, count) pairs in
// ascending order, plus count and sum — the raw material for custom
// exports.
func (h *Histogram) Snapshot() (buckets []HistBucket, count uint64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range h.buckets {
		if c != 0 {
			buckets = append(buckets, HistBucket{Upper: time.Duration(bucketUpper(i)), Count: c})
		}
	}
	return buckets, h.count, time.Duration(h.sum)
}

// HistBucket is one non-empty histogram bucket: Count observations with
// values ≤ Upper (and greater than the previous bucket's Upper).
type HistBucket struct {
	Upper time.Duration
	Count uint64
}

// WritePrometheus emits the histogram in Prometheus text exposition
// format under the given metric name, with values converted to seconds
// (the Prometheus base unit). Only non-empty buckets are written
// (cumulative counts stay correct; Prometheus permits sparse `le`
// boundaries), followed by the mandatory +Inf bucket, _sum and _count.
func (h *Histogram) WritePrometheus(w io.Writer, name string) error {
	buckets, count, sum := h.Snapshot()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for _, b := range buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b.Upper.Seconds(), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, sum.Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
	return err
}
