package graph

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// TestStateRoundTrip checks the snapshot codec (WriteState/ReadState)
// preserves slot-exact state: vertex IDs, dead slots with their retained
// labels, and adjacency — the property the wal recovery path depends on,
// since logged updates reference pre-crash vertex IDs.
func TestStateRoundTrip(t *testing.T) {
	g := New(0)
	for i := 0; i < 8; i++ {
		g.AddVertex(Label(i % 3))
	}
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 11)
	g.AddEdge(2, 3, 12)
	g.AddEdge(5, 6, 13)
	g.AddEdge(0, 7, 14)
	g.RemoveEdge(1, 2)
	g.RemoveEdge(2, 3)
	g.DeleteVertex(2)
	g.DeleteVertex(4)

	var buf bytes.Buffer
	if err := g.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumLive() != g.NumLive() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: got |V|=%d live=%d |E|=%d, want |V|=%d live=%d |E|=%d",
			got.NumVertices(), got.NumLive(), got.NumEdges(), g.NumVertices(), g.NumLive(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got.Alive(VertexID(v)) != g.Alive(VertexID(v)) {
			t.Fatalf("slot %d aliveness differs", v)
		}
		if got.Label(VertexID(v)) != g.Label(VertexID(v)) {
			t.Fatalf("slot %d label: got %d, want %d", v, got.Label(VertexID(v)), g.Label(VertexID(v)))
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			if got.HasEdge(VertexID(u), VertexID(v)) != g.HasEdge(VertexID(u), VertexID(v)) {
				t.Fatalf("edge (%d,%d) presence differs", u, v)
			}
		}
	}

	// Post-recovery mutations behave identically: a new vertex lands in the
	// next slot, and re-adding an edge on a live pair works.
	if a, b := got.AddVertex(9), g.AddVertex(9); a != b {
		t.Fatalf("new vertex slot: got %d, want %d", a, b)
	}
	if !got.AddEdge(1, 3, 20) {
		t.Fatal("AddEdge(1,3) rejected on recovered graph")
	}
}

func TestReadStateRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"pstate x y\n",
		"pstate 2 0\nl 1\n",               // missing slot line
		"pstate 1 0\nz 1\n",               // bad slot tag
		"pstate 2 1\nl 1\nl 2\n",          // missing edge line
		"pstate 2 1\nl 1\nl 2\ne 0 5 1\n", // edge out of range
		"pstate 2 1\nl 1\nd 2\ne 0 1 1\n", // edge to dead slot
	}
	for _, in := range cases {
		if _, err := ReadState(bufio.NewReader(strings.NewReader(in))); err == nil {
			t.Fatalf("ReadState(%q) accepted", in)
		}
	}
}

// TestReadStateComposes checks ReadState consumes exactly its section,
// leaving trailing bytes for the caller — the wal snapshot file embeds
// the state body between other line groups.
func TestReadStateComposes(t *testing.T) {
	g := New(0)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(0, 1, 3)
	var buf bytes.Buffer
	if err := g.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("trailer\n")
	r := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := ReadState(r); err != nil {
		t.Fatal(err)
	}
	rest, err := r.ReadString('\n')
	if err != nil || rest != "trailer\n" {
		t.Fatalf("after ReadState: %q, %v; want trailer line", rest, err)
	}
}
