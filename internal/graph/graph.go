// Package graph implements the dynamic labeled undirected graph used as the
// data graph G in continuous subgraph matching (Definition 2.1 of the
// ParaCOSM paper). Vertices and edges both carry labels.
//
// Adjacency layout: each vertex's adjacency list is kept sorted by
// (neighbor-vertex-label, neighbor ID) and partitioned by a compact
// per-vertex offset table (segs), so the neighbors of v carrying a given
// vertex label form one contiguous run. NeighborsWithLabel returns that run
// as a zero-allocation sub-slice — the primitive every CSM inner loop in
// this repository is built on — while membership tests, insertions and
// deletions stay O(log d) + O(d) memmove. Vertex labels are immutable after
// AddVertex, so the partition key of an adjacency entry never changes.
// See DESIGN.md §11 for the layout, aliasing rules and kernel heuristics.
//
// Concurrency contract: a Graph is safe for concurrent readers. Mutations
// must either be externally serialized, or go through the Locked* methods,
// which acquire the per-vertex shard locks (see locks.go) and may run
// concurrently with each other and with Locked reads. Both adj[v] and its
// offset table segs[v] are mutated only while v's shard lock is held (or
// under external serialization), so the pair is always observed
// consistently. This is exactly the access pattern of ParaCOSM's batch
// executor: classification performs locked reads while safe updates are
// applied with locked writes.
package graph

import (
	"fmt"
	"sync"
)

// VertexID identifies a data-graph vertex.
type VertexID uint32

// NoVertex is the sentinel for "no vertex" in partial embeddings.
const NoVertex = ^VertexID(0)

// Label is a vertex or edge label drawn from the finite alphabets
// Sigma_V / Sigma_E of the labeled graph.
type Label uint32

// NoLabel marks the absence of an edge label (datasets with |L(E)| = 1 use
// label 0 for every edge; NoLabel is only used as a lookup-miss sentinel).
const NoLabel = ^Label(0)

// Neighbor is one adjacency entry: the neighbor vertex and the label of the
// connecting edge.
type Neighbor struct {
	ID     VertexID
	ELabel Label
}

// labelSeg is one entry of a vertex's label offset table: the run of
// adjacency entries whose neighbor carries `label` starts at index `start`
// and extends to the next segment's start (or the end of the list). The
// table is sorted by label and contains no empty runs.
type labelSeg struct {
	label Label
	start uint32
}

// Graph is a dynamic labeled undirected graph.
type Graph struct {
	labels  []Label      // vertex labels, indexed by VertexID (immutable once assigned)
	adj     [][]Neighbor // adjacency lists sorted by (neighbor label, neighbor ID)
	segs    [][]labelSeg // per-vertex label offset tables, parallel to adj
	alive   []bool       // false once a vertex has been deleted
	live    int          // number of alive vertices (single-writer, like labels/adj)
	byLabel map[Label][]VertexID

	// edges is the current number of edges. It is guarded by edgeMu for
	// Locked* concurrent mutations; the plain single-writer API accesses
	// it directly under the package's external-serialization contract and
	// carries //lint:ignore lockguard annotations at each site.
	edges int // guarded by edgeMu

	locks  shardedLocks
	edgeMu sync.Mutex // guards edges under Locked* mutations
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		labels:  make([]Label, 0, n),
		adj:     make([][]Neighbor, 0, n),
		segs:    make([][]labelSeg, 0, n),
		alive:   make([]bool, 0, n),
		byLabel: make(map[Label][]VertexID),
	}
}

// AddVertex appends a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(l Label) VertexID {
	id := VertexID(len(g.labels))
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	g.segs = append(g.segs, nil)
	g.alive = append(g.alive, true)
	g.live++
	g.byLabel[l] = append(g.byLabel[l], id)
	return id
}

// DeleteVertex removes an isolated vertex. It panics if the vertex still has
// incident edges (the CSM update model only deletes isolated vertices; edge
// deletions must come first). The label-index entry is swap-removed, so
// VerticesWithLabel makes no ordering promise.
func (g *Graph) DeleteVertex(v VertexID) {
	if len(g.adj[v]) != 0 {
		//lint:ignore noalloc contract-violation panic: formatting happens once, on the way down
		panic(fmt.Sprintf("graph: DeleteVertex(%d): vertex not isolated (degree %d)", v, len(g.adj[v])))
	}
	g.alive[v] = false
	g.live--
	l := g.labels[v]
	s := g.byLabel[l]
	for i, id := range s {
		if id == v {
			s[i] = s[len(s)-1]
			g.byLabel[l] = s[:len(s)-1]
			break
		}
	}
}

// Alive reports whether v exists and has not been deleted.
func (g *Graph) Alive(v VertexID) bool {
	return int(v) < len(g.alive) && g.alive[v]
}

// NumVertices returns the number of vertex slots ever allocated (including
// deleted ones); use Alive to test liveness.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumLive returns the number of live (not deleted) vertices. Maintained
// incrementally, so it is O(1).
func (g *Graph) NumLive() int { return g.live }

// NumEdges returns the current number of edges. It takes the edge-counter
// mutex so the result is exact even while Locked* mutations are in flight.
func (g *Graph) NumEdges() int {
	g.edgeMu.Lock()
	n := g.edges
	g.edgeMu.Unlock()
	return n
}

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) Label { return g.labels[v] }

// Degree returns the current degree of v.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v, sorted by (neighbor label,
// neighbor ID). The returned slice aliases internal storage and must not be
// modified; it is invalidated by the next mutation of v's adjacency.
func (g *Graph) Neighbors(v VertexID) []Neighbor { return g.adj[v] }

// NeighborsWithLabel returns the neighbors of v whose vertex label is l, as
// a sub-slice of v's adjacency list sorted by neighbor ID. The lookup is a
// binary search over v's label offset table (O(log of distinct neighbor
// labels)) and the result is a zero-allocation view: it aliases internal
// storage, must not be modified, and is invalidated by the next mutation of
// v's adjacency (same rules as Neighbors).
//
//paracosm:noalloc
func (g *Graph) NeighborsWithLabel(v VertexID, l Label) []Neighbor {
	lo, hi := g.labelRun(v, l)
	return g.adj[v][lo:hi]
}

// DegreeWithLabel returns the number of neighbors of v carrying vertex
// label l, without materializing the slice.
//
//paracosm:noalloc
func (g *Graph) DegreeWithLabel(v VertexID, l Label) int {
	lo, hi := g.labelRun(v, l)
	return hi - lo
}

// labelRun returns the [lo, hi) bounds of v's adjacency run whose neighbors
// carry vertex label l; lo == hi when v has no such neighbor.
func (g *Graph) labelRun(v VertexID, l Label) (lo, hi int) {
	segs := g.segs[v]
	si := searchSegs(segs, l)
	if si == len(segs) || segs[si].label != l {
		return 0, 0
	}
	lo = int(segs[si].start)
	if si+1 < len(segs) {
		hi = int(segs[si+1].start)
	} else {
		hi = len(g.adj[v])
	}
	return lo, hi
}

// searchSegs returns the smallest index i with segs[i].label >= l.
func searchSegs(segs []labelSeg, l Label) int {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if segs[mid].label < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// VerticesWithLabel returns all live vertices carrying label l, in no
// particular order. The slice aliases internal storage and must not be
// modified.
func (g *Graph) VerticesWithLabel(l Label) []VertexID { return g.byLabel[l] }

// findNeighbor returns the index of u in v's adjacency list, or -1. The
// search is confined to the run carrying u's label.
func (g *Graph) findNeighbor(v, u VertexID) int {
	lo, hi := g.labelRun(v, g.labels[u])
	a := g.adj[v]
	i := lo + SearchNeighbors(a[lo:hi], u)
	if i < hi && a[i].ID == u {
		return i
	}
	return -1
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	// Search from the lower-degree endpoint.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	return g.findNeighbor(u, v) >= 0
}

// EdgeLabel returns the label of edge (u,v) and whether the edge exists.
func (g *Graph) EdgeLabel(u, v VertexID) (Label, bool) {
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	if i := g.findNeighbor(u, v); i >= 0 {
		return g.adj[u][i].ELabel, true
	}
	return NoLabel, false
}

// AddEdge inserts the undirected edge (u,v) with label l. It reports whether
// the edge was newly inserted (false if it already existed).
func (g *Graph) AddEdge(u, v VertexID, l Label) bool {
	if u == v {
		return false // no self loops in the CSM model
	}
	if !g.insertHalf(u, v, l) {
		return false
	}
	g.insertHalf(v, u, l)
	//lint:ignore lockguard plain AddEdge is the externally-serialized mutation path — audited: the shared multi-query graph is mutated only by MultiEngine's lockstep driver under m.mu (fan-out phases are read-only), and single-engine graphs are single-goroutine
	g.edges++
	return true
}

// RemoveEdge deletes the undirected edge (u,v). It reports whether the edge
// existed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if !g.removeHalf(u, v) {
		return false
	}
	g.removeHalf(v, u)
	//lint:ignore lockguard plain RemoveEdge is the externally-serialized mutation path — audited: the shared multi-query graph is mutated only by MultiEngine's lockstep driver under m.mu (fan-out phases are read-only), and single-engine graphs are single-goroutine
	g.edges--
	return true
}

// insertHalf inserts u into v's adjacency at its (label, ID) position and
// maintains the label offset table: a new segment is created when u's label
// is not yet present among v's neighbors, and every later segment shifts
// right by one.
func (g *Graph) insertHalf(v, u VertexID, l Label) bool {
	lu := g.labels[u]
	a := g.adj[v]
	segs := g.segs[v]
	si := searchSegs(segs, lu)
	var lo, hi int
	havSeg := si < len(segs) && segs[si].label == lu
	if havSeg {
		lo = int(segs[si].start)
		if si+1 < len(segs) {
			hi = int(segs[si+1].start)
		} else {
			hi = len(a)
		}
	} else if si < len(segs) {
		lo, hi = int(segs[si].start), int(segs[si].start)
	} else {
		lo, hi = len(a), len(a)
	}
	i := lo + SearchNeighbors(a[lo:hi], u)
	if i < hi && a[i].ID == u {
		return false
	}
	a = append(a, Neighbor{})
	copy(a[i+1:], a[i:])
	a[i] = Neighbor{ID: u, ELabel: l}
	g.adj[v] = a
	if !havSeg {
		segs = append(segs, labelSeg{})
		copy(segs[si+1:], segs[si:])
		segs[si] = labelSeg{label: lu, start: uint32(i)}
		g.segs[v] = segs
	}
	for j := si + 1; j < len(segs); j++ {
		segs[j].start++
	}
	return true
}

// removeHalf removes u from v's adjacency and maintains the label offset
// table, dropping the segment when its run empties.
func (g *Graph) removeHalf(v, u VertexID) bool {
	i := g.findNeighbor(v, u)
	if i < 0 {
		return false
	}
	a := g.adj[v]
	g.adj[v] = append(a[:i], a[i+1:]...)
	segs := g.segs[v]
	lu := g.labels[u]
	si := searchSegs(segs, lu)
	lo := int(segs[si].start)
	hi := len(a)
	if si+1 < len(segs) {
		hi = int(segs[si+1].start)
	}
	if hi-lo == 1 {
		// The run emptied: drop its segment.
		segs = append(segs[:si], segs[si+1:]...)
		g.segs[v] = segs
	} else {
		si++
	}
	for j := si; j < len(segs); j++ {
		segs[j].start--
	}
	return true
}

// Clone returns a deep copy of the graph (used by the reference matcher to
// snapshot state around an update).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]Label(nil), g.labels...),
		adj:    make([][]Neighbor, len(g.adj)),
		segs:   make([][]labelSeg, len(g.segs)),
		alive:  append([]bool(nil), g.alive...),
		live:   g.live,
		//lint:ignore lockguard Clone snapshots a quiescent graph — audited: MultiEngine clones only inside Init under m.mu, which excludes the Run/ProcessBatch mutators
		edges:   g.edges,
		byLabel: make(map[Label][]VertexID, len(g.byLabel)),
	}
	for i, a := range g.adj {
		c.adj[i] = append([]Neighbor(nil), a...)
	}
	for i, s := range g.segs {
		c.segs[i] = append([]labelSeg(nil), s...)
	}
	for l, s := range g.byLabel {
		c.byLabel[l] = append([]VertexID(nil), s...)
	}
	return c
}

// AvgDegree returns 2|E|/|V| over live vertices. O(1): the live-vertex
// count is maintained incrementally by AddVertex/DeleteVertex.
func (g *Graph) AvgDegree() float64 {
	if g.live == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.live)
}

// MaxDegree returns the maximum degree over live vertices.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := range g.adj {
		if g.alive[v] && len(g.adj[v]) > m {
			m = len(g.adj[v])
		}
	}
	return m
}

// NumLabels returns the number of distinct vertex labels in use.
func (g *Graph) NumLabels() int { return len(g.byLabel) }
