// Package graph implements the dynamic labeled undirected graph used as the
// data graph G in continuous subgraph matching (Definition 2.1 of the
// ParaCOSM paper). Vertices and edges both carry labels; adjacency lists are
// kept sorted by neighbor ID so that membership tests, insertions and
// deletions are O(log d) + O(d) memmove, and neighbor intersection during
// enumeration is cache friendly.
//
// Concurrency contract: a Graph is safe for concurrent readers. Mutations
// must either be externally serialized, or go through the Locked* methods,
// which acquire the per-vertex shard locks (see locks.go) and may run
// concurrently with each other and with Locked reads. This is exactly the
// access pattern of ParaCOSM's batch executor: classification performs
// locked reads while safe updates are applied with locked writes.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// VertexID identifies a data-graph vertex.
type VertexID uint32

// NoVertex is the sentinel for "no vertex" in partial embeddings.
const NoVertex = ^VertexID(0)

// Label is a vertex or edge label drawn from the finite alphabets
// Sigma_V / Sigma_E of the labeled graph.
type Label uint32

// NoLabel marks the absence of an edge label (datasets with |L(E)| = 1 use
// label 0 for every edge; NoLabel is only used as a lookup-miss sentinel).
const NoLabel = ^Label(0)

// Neighbor is one adjacency entry: the neighbor vertex and the label of the
// connecting edge.
type Neighbor struct {
	ID     VertexID
	ELabel Label
}

// Graph is a dynamic labeled undirected graph.
type Graph struct {
	labels  []Label      // vertex labels, indexed by VertexID
	adj     [][]Neighbor // sorted adjacency lists
	alive   []bool       // false once a vertex has been deleted
	byLabel map[Label][]VertexID

	// edges is the current number of edges. It is guarded by edgeMu for
	// Locked* concurrent mutations; the plain single-writer API accesses
	// it directly under the package's external-serialization contract and
	// carries //lint:ignore lockguard annotations at each site.
	edges int // guarded by edgeMu

	locks  shardedLocks
	edgeMu sync.Mutex // guards edges under Locked* mutations
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		labels:  make([]Label, 0, n),
		adj:     make([][]Neighbor, 0, n),
		alive:   make([]bool, 0, n),
		byLabel: make(map[Label][]VertexID),
	}
}

// AddVertex appends a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(l Label) VertexID {
	id := VertexID(len(g.labels))
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	g.alive = append(g.alive, true)
	g.byLabel[l] = append(g.byLabel[l], id)
	return id
}

// DeleteVertex removes an isolated vertex. It panics if the vertex still has
// incident edges (the CSM update model only deletes isolated vertices; edge
// deletions must come first).
func (g *Graph) DeleteVertex(v VertexID) {
	if len(g.adj[v]) != 0 {
		panic(fmt.Sprintf("graph: DeleteVertex(%d): vertex not isolated (degree %d)", v, len(g.adj[v])))
	}
	g.alive[v] = false
	l := g.labels[v]
	s := g.byLabel[l]
	for i, id := range s {
		if id == v {
			g.byLabel[l] = append(s[:i], s[i+1:]...)
			break
		}
	}
}

// Alive reports whether v exists and has not been deleted.
func (g *Graph) Alive(v VertexID) bool {
	return int(v) < len(g.alive) && g.alive[v]
}

// NumVertices returns the number of vertex slots ever allocated (including
// deleted ones); use Alive to test liveness.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns the current number of edges. It takes the edge-counter
// mutex so the result is exact even while Locked* mutations are in flight.
func (g *Graph) NumEdges() int {
	g.edgeMu.Lock()
	n := g.edges
	g.edgeMu.Unlock()
	return n
}

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) Label { return g.labels[v] }

// Degree returns the current degree of v.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified; it is invalidated by
// the next mutation of v's adjacency.
func (g *Graph) Neighbors(v VertexID) []Neighbor { return g.adj[v] }

// VerticesWithLabel returns all live vertices carrying label l. The slice
// aliases internal storage and must not be modified.
func (g *Graph) VerticesWithLabel(l Label) []VertexID { return g.byLabel[l] }

// findNeighbor returns the index of u in v's adjacency list, or -1.
func (g *Graph) findNeighbor(v, u VertexID) int {
	a := g.adj[v]
	i := sort.Search(len(a), func(i int) bool { return a[i].ID >= u })
	if i < len(a) && a[i].ID == u {
		return i
	}
	return -1
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	// Search from the lower-degree endpoint.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	return g.findNeighbor(u, v) >= 0
}

// EdgeLabel returns the label of edge (u,v) and whether the edge exists.
func (g *Graph) EdgeLabel(u, v VertexID) (Label, bool) {
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	if i := g.findNeighbor(u, v); i >= 0 {
		return g.adj[u][i].ELabel, true
	}
	return NoLabel, false
}

// AddEdge inserts the undirected edge (u,v) with label l. It reports whether
// the edge was newly inserted (false if it already existed).
func (g *Graph) AddEdge(u, v VertexID, l Label) bool {
	if u == v {
		return false // no self loops in the CSM model
	}
	if !g.insertHalf(u, v, l) {
		return false
	}
	g.insertHalf(v, u, l)
	//lint:ignore lockguard plain AddEdge is the externally-serialized mutation path (package contract)
	g.edges++
	return true
}

// RemoveEdge deletes the undirected edge (u,v). It reports whether the edge
// existed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if !g.removeHalf(u, v) {
		return false
	}
	g.removeHalf(v, u)
	//lint:ignore lockguard plain RemoveEdge is the externally-serialized mutation path (package contract)
	g.edges--
	return true
}

func (g *Graph) insertHalf(v, u VertexID, l Label) bool {
	a := g.adj[v]
	i := sort.Search(len(a), func(i int) bool { return a[i].ID >= u })
	if i < len(a) && a[i].ID == u {
		return false
	}
	a = append(a, Neighbor{})
	copy(a[i+1:], a[i:])
	a[i] = Neighbor{ID: u, ELabel: l}
	g.adj[v] = a
	return true
}

func (g *Graph) removeHalf(v, u VertexID) bool {
	i := g.findNeighbor(v, u)
	if i < 0 {
		return false
	}
	a := g.adj[v]
	g.adj[v] = append(a[:i], a[i+1:]...)
	return true
}

// Clone returns a deep copy of the graph (used by the reference matcher to
// snapshot state around an update).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]Label(nil), g.labels...),
		adj:    make([][]Neighbor, len(g.adj)),
		alive:  append([]bool(nil), g.alive...),
		//lint:ignore lockguard Clone snapshots a quiescent graph (no concurrent mutators by contract)
		edges:   g.edges,
		byLabel: make(map[Label][]VertexID, len(g.byLabel)),
	}
	for i, a := range g.adj {
		c.adj[i] = append([]Neighbor(nil), a...)
	}
	for l, s := range g.byLabel {
		c.byLabel[l] = append([]VertexID(nil), s...)
	}
	return c
}

// AvgDegree returns 2|E|/|V| over live vertices.
func (g *Graph) AvgDegree() float64 {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// MaxDegree returns the maximum degree over live vertices.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := range g.adj {
		if g.alive[v] && len(g.adj[v]) > m {
			m = len(g.adj[v])
		}
	}
	return m
}

// NumLabels returns the number of distinct vertex labels in use.
func (g *Graph) NumLabels() int { return len(g.byLabel) }
