package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// snapshot captures the full observable state of g for equality checks.
type snapshot struct {
	labels  []Label
	adj     [][]Neighbor
	segs    [][]labelSeg
	alive   []bool
	live    int
	edges   int
	byLabel map[Label]map[VertexID]bool
}

func snap(g *Graph) snapshot {
	s := snapshot{
		labels:  append([]Label(nil), g.labels...),
		alive:   append([]bool(nil), g.alive...),
		live:    g.live,
		edges:   g.NumEdges(),
		byLabel: make(map[Label]map[VertexID]bool),
	}
	for _, a := range g.adj {
		s.adj = append(s.adj, append([]Neighbor(nil), a...))
	}
	for _, sg := range g.segs {
		s.segs = append(s.segs, append([]labelSeg(nil), sg...))
	}
	// byLabel order is unspecified, so compare as sets; empty entries are
	// skipped because DeleteVertex (and the rollback of AddVertex) leave
	// the map key behind with an empty slice — observably equivalent.
	for l, ids := range g.byLabel {
		if len(ids) == 0 {
			continue
		}
		set := make(map[VertexID]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		s.byLabel[l] = set
	}
	return s
}

func TestUndoLogRollbackRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(16)
	for i := 0; i < 12; i++ {
		g.AddVertex(Label(rng.Intn(3)))
	}
	for i := 0; i < 25; i++ {
		u := VertexID(rng.Intn(12))
		v := VertexID(rng.Intn(12))
		if u != v {
			g.AddEdge(u, v, Label(rng.Intn(2)))
		}
	}
	// One isolated vertex to delete speculatively.
	iso := g.AddVertex(1)

	before := snap(g)
	var log UndoLog

	// A speculative batch touching every mutation kind, including edges on
	// a speculatively added vertex and a delete of a pre-existing edge.
	nv := g.AddVertexLogged(2, &log)
	if !g.AddEdgeLogged(nv, 0, 1, &log) {
		t.Fatal("AddEdgeLogged(nv, 0) failed")
	}
	if !g.AddEdgeLogged(3, 7, 0, &log) && !g.RemoveEdgeLogged(3, 7, &log) {
		t.Fatal("edge (3,7) neither addable nor removable")
	}
	removed := false
	for v := VertexID(0); v < 12 && !removed; v++ {
		for _, nb := range append([]Neighbor(nil), g.Neighbors(v)...) {
			if g.RemoveEdgeLogged(v, nb.ID, &log) {
				removed = true
				break
			}
		}
	}
	if !removed {
		t.Fatal("no edge to remove")
	}
	// Undo of AddEdge on nv must run before undo of AddVertex(nv).
	if !g.RemoveEdgeLogged(nv, 0, &log) {
		t.Fatal("RemoveEdgeLogged(nv, 0) failed")
	}
	g.DeleteVertexLogged(iso, &log)

	if log.Len() == 0 {
		t.Fatal("empty log after speculative batch")
	}
	log.Rollback(g)
	if log.Len() != 0 {
		t.Fatalf("log not reset after rollback: %d entries", log.Len())
	}
	if after := snap(g); !reflect.DeepEqual(before, after) {
		t.Fatalf("rollback did not restore graph:\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestUndoLogRandomizedRollback(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New(8)
		for i := 0; i < 8; i++ {
			g.AddVertex(Label(rng.Intn(2)))
		}
		for i := 0; i < 10; i++ {
			u := VertexID(rng.Intn(8))
			v := VertexID(rng.Intn(8))
			if u != v {
				g.AddEdge(u, v, 0)
			}
		}
		before := snap(g)
		var log UndoLog
		for i := 0; i < 30; i++ {
			n := g.NumVertices()
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			switch rng.Intn(4) {
			case 0:
				if u != v {
					g.AddEdgeLogged(u, v, Label(rng.Intn(2)), &log)
				}
			case 1:
				g.RemoveEdgeLogged(u, v, &log)
			case 2:
				g.AddVertexLogged(Label(rng.Intn(2)), &log)
			case 3:
				if g.Alive(u) && g.Degree(u) == 0 {
					g.DeleteVertexLogged(u, &log)
				}
			}
		}
		log.Rollback(g)
		if after := snap(g); !reflect.DeepEqual(before, after) {
			t.Fatalf("seed %d: rollback did not restore graph", seed)
		}
	}
}
