// Sorted-set intersection kernels over the label-partitioned adjacency.
//
// Every CSM backend's candidate computation reduces to intersecting the
// label-sliced neighbor runs of already-matched vertices (NeighborsWithLabel
// returns them sorted by neighbor ID). This file centralizes the three
// primitives those loops are built from, so each internal/algo package stops
// re-implementing scan-and-filter ad hoc:
//
//   - point lookups: SearchNeighbors / FindInNeighbors (and the []VertexID
//     twins SearchIDs),
//   - monotonic cursor advancement: AdvanceNeighbors / AdvanceIDs — a linear
//     probe of a few entries that falls back to galloping (doubling then
//     binary search), which is what makes k-way "zipper" intersection cheap
//     both when the lists are similar in size and when they are wildly
//     skewed,
//   - materializing pairwise intersection: IntersectNeighborIDs /
//     IntersectIDsNeighbors / IntersectIDs, which pick linear merge or
//     galloping adaptively by size ratio (GallopRatio) and append into a
//     caller-provided buffer so the caller controls allocation.
//
// All kernels are allocation-free; KernelStats aggregates counters with
// typed atomics so concurrent escalated workers can share one stats block.
// See DESIGN.md §11 for the selection heuristic and measured crossover.
package graph

import "sync/atomic"

const (
	// gallopLinear is the number of entries AdvanceNeighbors/AdvanceIDs
	// probe linearly before switching to doubling search. Small forward
	// steps dominate zipper intersection of similar-size runs; the linear
	// phase keeps those branch-predictable and cache-local.
	gallopLinear = 4

	// GallopRatio is the |large|/|small| size ratio above which the
	// pairwise intersection kernels switch from linear merge to galloping
	// over the large side. Merge is O(|a|+|b|); galloping is
	// O(|small| · log |large|), which wins once the lists are skewed by
	// roughly this factor (see BenchmarkIntersectCrossover).
	GallopRatio = 8
)

// SearchNeighbors returns the smallest index i with a[i].ID >= v, assuming a
// is sorted by ID (which every NeighborsWithLabel run is).
//
//paracosm:noalloc
func SearchNeighbors(a []Neighbor, v VertexID) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].ID < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// FindInNeighbors reports whether v occurs in the ID-sorted run a, and the
// label of the connecting edge if so (NoLabel otherwise).
//
//paracosm:noalloc
func FindInNeighbors(a []Neighbor, v VertexID) (Label, bool) {
	i := SearchNeighbors(a, v)
	if i < len(a) && a[i].ID == v {
		return a[i].ELabel, true
	}
	return NoLabel, false
}

// AdvanceNeighbors returns the smallest index j >= from with a[j].ID >= v
// (len(a) if none), assuming a[from:] is sorted by ID. It probes gallopLinear
// entries linearly, then gallops: doubling steps to bracket v followed by a
// binary search. The second result reports whether the gallop phase ran —
// callers feed it into KernelStats to expose the galloped fraction.
//
// Intended use is a monotonically advancing cursor: intersecting a candidate
// run against k other runs costs one AdvanceNeighbors per (candidate, run)
// pair, and each cursor only ever moves forward.
//
//paracosm:noalloc
func AdvanceNeighbors(a []Neighbor, from int, v VertexID) (int, bool) {
	n := len(a)
	end := from + gallopLinear
	if end > n {
		end = n
	}
	for j := from; j < end; j++ {
		if a[j].ID >= v {
			return j, false
		}
	}
	if end == n {
		return n, false
	}
	// Gallop: double the probe offset until a[end+off] >= v (or the list
	// ends), then binary-search the bracketed half-open window.
	off := 1
	for end+off < n && a[end+off].ID < v {
		off <<= 1
	}
	lo, hi := end+off/2, end+off
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].ID < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// SearchIDs returns the smallest index i with a[i] >= v, assuming a sorted.
//
//paracosm:noalloc
func SearchIDs(a []VertexID, v VertexID) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AdvanceIDs is AdvanceNeighbors over a sorted []VertexID.
//
//paracosm:noalloc
func AdvanceIDs(a []VertexID, from int, v VertexID) (int, bool) {
	n := len(a)
	end := from + gallopLinear
	if end > n {
		end = n
	}
	for j := from; j < end; j++ {
		if a[j] >= v {
			return j, false
		}
	}
	if end == n {
		return n, false
	}
	off := 1
	for end+off < n && a[end+off] < v {
		off <<= 1
	}
	lo, hi := end+off/2, end+off
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// IntersectNeighborIDs appends to dst every vertex ID present in both
// ID-sorted runs a and b, in ascending order, and returns the extended
// buffer. Edge labels are ignored (callers that filter on edge labels use
// the zipper primitives directly). The kernel is chosen adaptively: linear
// merge for similar sizes, galloping over the larger run when the sizes
// differ by GallopRatio or more. dst must not alias a or b.
//
//paracosm:noalloc
func IntersectNeighborIDs(dst []VertexID, a, b []Neighbor, st *KernelStats) []VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		if st != nil {
			st.AddIntersection(0, 0)
		}
		return dst
	}
	var probes, galloped uint64
	if len(b) >= GallopRatio*len(a) {
		pos := 0
		for i := range a {
			v := a[i].ID
			j, g := AdvanceNeighbors(b, pos, v)
			probes++
			if g {
				galloped++
			}
			if j == len(b) {
				break
			}
			pos = j
			if b[j].ID == v {
				dst = append(dst, v)
			}
		}
	} else {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			av, bv := a[i].ID, b[j].ID
			switch {
			case av == bv:
				dst = append(dst, av)
				i++
				j++
			case av < bv:
				i++
			default:
				j++
			}
		}
	}
	if st != nil {
		st.AddIntersection(probes, galloped)
	}
	return dst
}

// IntersectIDsNeighbors appends to dst every ID present in both the sorted
// ID slice ids and the ID-sorted run b, in ascending order. dst == ids[:0]
// is explicitly allowed (in-place fold): the write cursor never overtakes
// the read cursor and every written value equals the element it replaces,
// so folding a k-way intersection through one buffer needs no second one.
//
//paracosm:noalloc
func IntersectIDsNeighbors(dst, ids []VertexID, b []Neighbor, st *KernelStats) []VertexID {
	if len(ids) == 0 || len(b) == 0 {
		if st != nil {
			st.AddIntersection(0, 0)
		}
		return dst
	}
	var probes, galloped uint64
	switch {
	case len(b) >= GallopRatio*len(ids):
		pos := 0
		for _, v := range ids {
			j, g := AdvanceNeighbors(b, pos, v)
			probes++
			if g {
				galloped++
			}
			if j == len(b) {
				break
			}
			pos = j
			if b[j].ID == v {
				dst = append(dst, v)
			}
		}
	case len(ids) >= GallopRatio*len(b):
		pos := 0
		for i := range b {
			v := b[i].ID
			j, g := AdvanceIDs(ids, pos, v)
			probes++
			if g {
				galloped++
			}
			if j == len(ids) {
				break
			}
			pos = j
			if ids[j] == v {
				dst = append(dst, v)
			}
		}
	default:
		i, j := 0, 0
		for i < len(ids) && j < len(b) {
			av, bv := ids[i], b[j].ID
			switch {
			case av == bv:
				dst = append(dst, av)
				i++
				j++
			case av < bv:
				i++
			default:
				j++
			}
		}
	}
	if st != nil {
		st.AddIntersection(probes, galloped)
	}
	return dst
}

// IntersectIDs appends to dst every ID present in both sorted slices a and
// b, in ascending order, choosing merge or gallop by size ratio. dst must
// not alias b; dst == a[:0] is allowed (same argument as
// IntersectIDsNeighbors).
//
//paracosm:noalloc
func IntersectIDs(dst, a, b []VertexID, st *KernelStats) []VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		if st != nil {
			st.AddIntersection(0, 0)
		}
		return dst
	}
	var probes, galloped uint64
	if len(b) >= GallopRatio*len(a) {
		pos := 0
		for _, v := range a {
			j, g := AdvanceIDs(b, pos, v)
			probes++
			if g {
				galloped++
			}
			if j == len(b) {
				break
			}
			pos = j
			if b[j] == v {
				dst = append(dst, v)
			}
		}
	} else {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			av, bv := a[i], b[j]
			switch {
			case av == bv:
				dst = append(dst, av)
				i++
				j++
			case av < bv:
				i++
			default:
				j++
			}
		}
	}
	if st != nil {
		st.AddIntersection(probes, galloped)
	}
	return dst
}

// KernelStats aggregates intersection-kernel counters. All fields are typed
// atomics: the escalated parallel phase runs Expand concurrently on pool
// workers, so one stats block is shared by every worker of an engine.
// Counters are monotonically increasing over an engine's lifetime; snapshot
// with Counters.
type KernelStats struct {
	// Intersections counts kernel invocations: one per materializing
	// pairwise call and one per k-way zipper enumeration (k >= 1 cursored
	// runs beyond the anchor).
	Intersections atomic.Uint64
	// Probes counts cursor advances (AdvanceNeighbors/AdvanceIDs calls)
	// performed inside kernels; Galloped counts the subset that entered
	// the doubling phase. Galloped/Probes is the galloped fraction
	// reported by benchjson.
	Probes   atomic.Uint64
	Galloped atomic.Uint64
	// CandLookups counts NeighborsWithLabel candidate-run fetches on the
	// enumeration path; CandHits counts those where the run was strictly
	// smaller than the vertex's full adjacency — i.e. where the label
	// partition actually pruned the scan.
	CandLookups atomic.Uint64
	CandHits    atomic.Uint64
}

// AddIntersection records one kernel invocation with its probe counts.
func (s *KernelStats) AddIntersection(probes, galloped uint64) {
	s.Intersections.Add(1)
	if probes != 0 {
		s.Probes.Add(probes)
		if galloped != 0 {
			s.Galloped.Add(galloped)
		}
	}
}

// AddCandidateLookup records one candidate-run fetch and whether the label
// slice was strictly smaller than the full adjacency.
func (s *KernelStats) AddCandidateLookup(hit bool) {
	s.CandLookups.Add(1)
	if hit {
		s.CandHits.Add(1)
	}
}

// KernelCounters is a plain (non-atomic) snapshot of KernelStats.
type KernelCounters struct {
	Intersections uint64
	Probes        uint64
	Galloped      uint64
	CandLookups   uint64
	CandHits      uint64
}

// Counters snapshots the current counter values.
func (s *KernelStats) Counters() KernelCounters {
	return KernelCounters{
		Intersections: s.Intersections.Load(),
		Probes:        s.Probes.Load(),
		Galloped:      s.Galloped.Load(),
		CandLookups:   s.CandLookups.Load(),
		CandHits:      s.CandHits.Load(),
	}
}

// Add accumulates another snapshot into c (used by the bench harness to
// aggregate across queries).
func (c *KernelCounters) Add(o KernelCounters) {
	c.Intersections += o.Intersections
	c.Probes += o.Probes
	c.Galloped += o.Galloped
	c.CandLookups += o.CandLookups
	c.CandHits += o.CandHits
}
