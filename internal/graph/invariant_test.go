package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLabelIndexConsistency: VerticesWithLabel must list exactly the live
// vertices carrying each label, under arbitrary vertex/edge churn.
func TestLabelIndexConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(0)
		var live []VertexID
		for step := 0; step < 120; step++ {
			switch rng.Intn(5) {
			case 0, 1: // add vertex
				live = append(live, g.AddVertex(Label(rng.Intn(4))))
			case 2, 3: // add/remove edge between live vertices
				if len(live) >= 2 {
					u := live[rng.Intn(len(live))]
					v := live[rng.Intn(len(live))]
					if g.HasEdge(u, v) {
						g.RemoveEdge(u, v)
					} else {
						g.AddEdge(u, v, 0)
					}
				}
			case 4: // delete an isolated vertex if any
				for i, v := range live {
					if g.Degree(v) == 0 {
						g.DeleteVertex(v)
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
		}
		// Verify the label index against ground truth.
		want := map[Label]map[VertexID]bool{}
		for _, v := range live {
			l := g.Label(v)
			if want[l] == nil {
				want[l] = map[VertexID]bool{}
			}
			want[l][v] = true
		}
		for l := Label(0); l < 4; l++ {
			got := g.VerticesWithLabel(l)
			if len(got) != len(want[l]) {
				return false
			}
			for _, v := range got {
				if !want[l][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeCountMatchesAdjacency: NumEdges is always half the sum of
// degrees.
func TestEdgeCountMatchesAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 24
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(0)
		}
		for step := 0; step < 100; step++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				g.AddEdge(u, v, 0)
			} else {
				g.RemoveEdge(u, v)
			}
		}
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(VertexID(v))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNumLabels(t *testing.T) {
	g := New(3)
	g.AddVertex(2)
	g.AddVertex(2)
	g.AddVertex(7)
	if g.NumLabels() != 2 {
		t.Fatalf("NumLabels = %d, want 2", g.NumLabels())
	}
}
