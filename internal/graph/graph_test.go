package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(Label(i % 3))
	}
	for i := 0; i+1 < n; i++ {
		if !g.AddEdge(VertexID(i), VertexID(i+1), 0) {
			t.Fatalf("AddEdge(%d,%d) = false", i, i+1)
		}
	}
	return g
}

func TestAddVertexAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 10; i++ {
		if id := g.AddVertex(Label(i)); id != VertexID(i) {
			t.Fatalf("AddVertex #%d returned id %d", i, id)
		}
	}
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := buildPath(t, 5)
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge (1,2) missing in one direction")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("phantom edge (0,4)")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees = %d,%d want 1,2", g.Degree(0), g.Degree(2))
	}
}

func TestAddEdgeRejectsDuplicatesAndLoops(t *testing.T) {
	g := buildPath(t, 3)
	if g.AddEdge(0, 1, 0) {
		t.Fatal("duplicate edge accepted")
	}
	if g.AddEdge(2, 2, 0) {
		t.Fatal("self loop accepted")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildPath(t, 4)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) = false")
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge survives removal")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("second RemoveEdge succeeded")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestEdgeLabel(t *testing.T) {
	g := New(2)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddEdge(0, 1, 7)
	if l, ok := g.EdgeLabel(1, 0); !ok || l != 7 {
		t.Fatalf("EdgeLabel = %d,%v want 7,true", l, ok)
	}
	if _, ok := g.EdgeLabel(0, 0); ok {
		t.Fatal("EdgeLabel on missing edge reported ok")
	}
}

func TestNeighborsSorted(t *testing.T) {
	// Mixed neighbor labels: adjacency must come back sorted by
	// (neighbor label, neighbor ID).
	g := New(7)
	g.AddVertex(9)
	for i := 1; i < 7; i++ {
		g.AddVertex(Label(i % 3))
	}
	for _, v := range []VertexID{5, 2, 4, 1, 3, 6} {
		g.AddEdge(0, v, 0)
	}
	ns := g.Neighbors(0)
	if len(ns) != 6 {
		t.Fatalf("degree = %d, want 6", len(ns))
	}
	key := func(n Neighbor) uint64 { return uint64(g.Label(n.ID))<<32 | uint64(n.ID) }
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return key(ns[i]) < key(ns[j]) }) {
		t.Fatalf("adjacency not sorted by (label, id): %v", ns)
	}
}

func TestNeighborsWithLabel(t *testing.T) {
	g := New(8)
	g.AddVertex(5)
	for i := 1; i < 8; i++ {
		g.AddVertex(Label(i % 3))
	}
	for _, v := range []VertexID{7, 3, 1, 6, 2, 5, 4} {
		g.AddEdge(0, v, Label(v))
	}
	for l := Label(0); l < 4; l++ {
		var want []Neighbor
		for _, nb := range g.Neighbors(0) {
			if g.Label(nb.ID) == l {
				want = append(want, nb)
			}
		}
		got := g.NeighborsWithLabel(0, l)
		if len(got) != len(want) {
			t.Fatalf("label %d: got %v, want %v", l, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("label %d: got %v, want %v", l, got, want)
			}
		}
		if d := g.DegreeWithLabel(0, l); d != len(want) {
			t.Fatalf("DegreeWithLabel(0,%d) = %d, want %d", l, d, len(want))
		}
	}
	if got := g.NeighborsWithLabel(3, 5); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("NeighborsWithLabel(3,5) = %v, want [{0 3}]", got)
	}
}

func TestNumLiveAndAvgDegreeAfterDelete(t *testing.T) {
	g := buildPath(t, 4)
	if g.NumLive() != 4 {
		t.Fatalf("NumLive = %d, want 4", g.NumLive())
	}
	g.RemoveEdge(0, 1)
	g.DeleteVertex(0)
	if g.NumLive() != 3 {
		t.Fatalf("NumLive after delete = %d, want 3", g.NumLive())
	}
	// 2 edges over 3 live vertices.
	if got, want := g.AvgDegree(), 4.0/3.0; got != want {
		t.Fatalf("AvgDegree = %v, want %v", got, want)
	}
}

func TestVerticesWithLabel(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex(Label(i % 2))
	}
	if got := len(g.VerticesWithLabel(0)); got != 3 {
		t.Fatalf("label 0 count = %d, want 3", got)
	}
	if got := len(g.VerticesWithLabel(9)); got != 0 {
		t.Fatalf("label 9 count = %d, want 0", got)
	}
}

func TestDeleteVertex(t *testing.T) {
	g := buildPath(t, 3)
	g.RemoveEdge(0, 1)
	g.DeleteVertex(0)
	if g.Alive(0) {
		t.Fatal("vertex 0 alive after deletion")
	}
	for _, v := range g.VerticesWithLabel(0) {
		if v == 0 {
			t.Fatal("deleted vertex still in label index")
		}
	}
}

func TestDeleteVertexPanicsOnNonIsolated(t *testing.T) {
	g := buildPath(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic deleting non-isolated vertex")
		}
	}()
	g.DeleteVertex(1)
}

func TestCloneIsDeep(t *testing.T) {
	g := buildPath(t, 4)
	c := g.Clone()
	g.AddEdge(0, 3, 5)
	g.RemoveEdge(1, 2)
	if c.HasEdge(0, 3) {
		t.Fatal("clone sees edge added to original")
	}
	if !c.HasEdge(1, 2) {
		t.Fatal("clone lost edge removed from original")
	}
	if c.NumEdges() != 3 {
		t.Fatalf("clone NumEdges = %d, want 3", c.NumEdges())
	}
}

func TestAvgAndMaxDegree(t *testing.T) {
	g := buildPath(t, 4) // degrees 1,2,2,1
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Fatalf("MaxDegree = %d, want 2", got)
	}
}

// TestInsertRemoveRoundTrip is a property test: applying a random sequence
// of insertions and then removing everything restores an edgeless graph
// with all degrees zero.
func TestInsertRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 20
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(Label(rng.Intn(4)))
		}
		type edge struct{ u, v VertexID }
		var added []edge
		for i := 0; i < 60; i++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			if g.AddEdge(u, v, Label(rng.Intn(3))) {
				added = append(added, edge{u, v})
			}
		}
		if g.NumEdges() != len(added) {
			return false
		}
		rng.Shuffle(len(added), func(i, j int) { added[i], added[j] = added[j], added[i] })
		for _, e := range added {
			if !g.RemoveEdge(e.u, e.v) {
				return false
			}
		}
		if g.NumEdges() != 0 {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(VertexID(v)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAdjacencySymmetry: after arbitrary mutations, u in N(v) iff v in N(u),
// and edge labels agree in both directions.
func TestAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 16
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(0)
		}
		for i := 0; i < 80; i++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			if rng.Intn(3) == 0 {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdge(u, v, Label(rng.Intn(5)))
			}
		}
		for v := 0; v < n; v++ {
			for _, nb := range g.Neighbors(VertexID(v)) {
				l, ok := g.EdgeLabel(nb.ID, VertexID(v))
				if !ok || l != nb.ELabel {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedMutationsConcurrent(t *testing.T) {
	const n = 64
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(0)
	}
	var wg sync.WaitGroup
	// Insert a disjoint perfect matching concurrently, plus concurrent reads.
	for i := 0; i < n; i += 2 {
		wg.Add(1)
		go func(u VertexID) {
			defer wg.Done()
			g.LockedAddEdge(u, u+1, 1)
			g.LockedDegrees(u, u+1)
			g.LockedHasEdge(u, u+1)
		}(VertexID(i))
	}
	wg.Wait()
	if g.NumEdges() != n/2 {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), n/2)
	}
	for i := 0; i < n; i += 2 {
		wg.Add(1)
		go func(u VertexID) {
			defer wg.Done()
			g.LockedRemoveEdge(u, u+1)
		}(VertexID(i))
	}
	wg.Wait()
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after removal, want 0", g.NumEdges())
	}
}

func TestLockedAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(1)
	g.AddVertex(0)
	if g.LockedAddEdge(0, 0, 0) {
		t.Fatal("LockedAddEdge accepted self loop")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	g := New(4)
	g.AddVertex(3)
	g.AddVertex(1)
	g.AddVertex(1)
	g.AddVertex(0)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 0)
	g.AddEdge(0, 3, 9)

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 3 {
		t.Fatalf("round trip size mismatch: %d vertices %d edges", h.NumVertices(), h.NumEdges())
	}
	for v := 0; v < 4; v++ {
		if h.Label(VertexID(v)) != g.Label(VertexID(v)) {
			t.Fatalf("label mismatch at %d", v)
		}
	}
	if l, ok := h.EdgeLabel(0, 3); !ok || l != 9 {
		t.Fatalf("edge label lost: %d %v", l, ok)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"v 0",            // missing label
		"v 1 0",          // non-dense id
		"e 0 1 0",        // edge before vertices
		"x 0 0 0",        // unknown record
		"v 0 0\ne 0",     // short edge
		"v 0 0\ne 0 5 0", // unknown endpoint
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestReadAllowsCommentsAndUnlabeledEdges(t *testing.T) {
	in := "# comment\nv 0 1\nv 1 2\n% another\ne 0 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if l, _ := g.EdgeLabel(0, 1); l != 0 {
		t.Fatalf("default edge label = %d, want 0", l)
	}
}
