package graph

// UndoLog records the inverse of speculatively applied mutations so a
// caller can validate a whole update batch against the live graph —
// validity of update i depends on updates < i being applied — and then
// roll the graph back to its pre-batch state. This is the journal behind
// MultiEngine.ProcessBatch's shared-graph validation: with one data graph
// shared by every standing query there is no per-query clone to apply
// against, so validation applies speculatively and undoes.
//
// The log is bounded by the batch it validates: one entry per applied
// mutation, and Reset reuses the backing array across batches. It is NOT
// safe for concurrent use; the owner must serialize all logged mutations
// and the rollback (MultiEngine keeps the log and the graph under one
// mutex — see the "guarded by" annotations there).
type UndoLog struct {
	ops []undoOp
}

// undoKind discriminates the inverse operation of one journal entry.
type undoKind uint8

const (
	undoAddEdge      undoKind = iota // inverse: remove edge (u,v)
	undoRemoveEdge                   // inverse: re-add edge (u,v,l)
	undoAddVertex                    // inverse: pop vertex slot u
	undoDeleteVertex                 // inverse: revive vertex u
)

// undoOp is one recorded inverse operation.
type undoOp struct {
	kind undoKind
	u, v VertexID
	l    Label
}

// Len returns the number of recorded mutations.
func (u *UndoLog) Len() int { return len(u.ops) }

// Reset empties the log, retaining its capacity for the next batch.
func (u *UndoLog) Reset() { u.ops = u.ops[:0] }

// Rollback undoes every recorded mutation in reverse order, restoring the
// graph to its state before the first logged mutation, then resets the
// log. Mutations interleaved with the logged ones (not going through the
// *Logged methods) break the restore — the owner's single-writer
// discipline must prevent that.
func (u *UndoLog) Rollback(g *Graph) {
	for i := len(u.ops) - 1; i >= 0; i-- {
		op := u.ops[i]
		switch op.kind {
		case undoAddEdge:
			g.RemoveEdge(op.u, op.v)
		case undoRemoveEdge:
			g.AddEdge(op.u, op.v, op.l)
		case undoAddVertex:
			g.popVertex(op.u)
		case undoDeleteVertex:
			g.reviveVertex(op.u)
		}
	}
	u.Reset()
}

// AddEdgeLogged is AddEdge with the inverse recorded in log on success.
func (g *Graph) AddEdgeLogged(u, v VertexID, l Label, log *UndoLog) bool {
	if !g.AddEdge(u, v, l) {
		return false
	}
	log.ops = append(log.ops, undoOp{kind: undoAddEdge, u: u, v: v})
	return true
}

// RemoveEdgeLogged is RemoveEdge with the inverse (including the removed
// edge's label) recorded in log on success.
func (g *Graph) RemoveEdgeLogged(u, v VertexID, log *UndoLog) bool {
	l, ok := g.EdgeLabel(u, v)
	if !ok {
		return false
	}
	if !g.RemoveEdge(u, v) {
		return false
	}
	log.ops = append(log.ops, undoOp{kind: undoRemoveEdge, u: u, v: v, l: l})
	return true
}

// AddVertexLogged is AddVertex with the inverse recorded in log.
func (g *Graph) AddVertexLogged(l Label, log *UndoLog) VertexID {
	id := g.AddVertex(l)
	log.ops = append(log.ops, undoOp{kind: undoAddVertex, u: id})
	return id
}

// DeleteVertexLogged is DeleteVertex with the inverse recorded in log. Like
// DeleteVertex it requires v to be alive and isolated.
func (g *Graph) DeleteVertexLogged(v VertexID, log *UndoLog) {
	g.DeleteVertex(v)
	log.ops = append(log.ops, undoOp{kind: undoDeleteVertex, u: v})
}

// popVertex removes the most recently added vertex slot entirely (the
// rollback of AddVertex). v must be the last slot, with no incident edges —
// guaranteed when undoing in reverse order, since any logged edges touching
// v were already rolled back.
func (g *Graph) popVertex(v VertexID) {
	if int(v) != len(g.labels)-1 {
		panic("graph: popVertex: not the last vertex slot")
	}
	if len(g.adj[v]) != 0 {
		panic("graph: popVertex: vertex not isolated")
	}
	if g.alive[v] {
		g.live--
		l := g.labels[v]
		s := g.byLabel[l]
		for i, id := range s {
			if id == v {
				s[i] = s[len(s)-1]
				g.byLabel[l] = s[:len(s)-1]
				break
			}
		}
	}
	g.labels = g.labels[:v]
	g.adj = g.adj[:v]
	g.segs = g.segs[:v]
	g.alive = g.alive[:v]
}

// reviveVertex undoes DeleteVertex: the slot becomes alive again and
// rejoins the label index (order within VerticesWithLabel is unspecified,
// so re-appending is enough).
func (g *Graph) reviveVertex(v VertexID) {
	if g.alive[v] {
		panic("graph: reviveVertex: vertex alive")
	}
	g.alive[v] = true
	g.live++
	l := g.labels[v]
	g.byLabel[l] = append(g.byLabel[l], v)
}
