package graph

import (
	"sort"
	"testing"
)

// pathGraph builds 0-1-2-...-(n-1) with vertex labels given by lab(i).
func pathGraph(n int, lab func(int) Label) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(lab(i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1), 0)
	}
	return g
}

func footIDs(t *testing.T, fs *FootprintScratch, g *Graph, u, v VertexID, radius, max int, ok []bool) []int {
	t.Helper()
	f, over := fs.Footprint(g, u, v, radius, max, ok)
	if over {
		t.Fatalf("Footprint(%d,%d) overflowed unexpectedly", u, v)
	}
	out := make([]int, len(f))
	for i, x := range f {
		out[i] = int(x)
	}
	sort.Ints(out)
	return out
}

func TestFootprintRadius(t *testing.T) {
	g := pathGraph(10, func(int) Label { return 0 })
	var fs FootprintScratch
	got := footIDs(t, &fs, g, 4, 5, 2, 100, nil)
	// Radius 2 around the edge (4,5) on a path: 2..7.
	want := []int{2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("footprint = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("footprint = %v, want %v", got, want)
		}
	}
}

func TestFootprintLabelFilter(t *testing.T) {
	// Vertices 0..9 on a path, odd ids labeled 1, even labeled 0. With
	// only label 0 relevant, expansion stops at the first irrelevant
	// vertex in each direction: it is included (it was pushed as a
	// neighbor read) but never expanded through.
	g := pathGraph(10, func(i int) Label { return Label(i % 2) })
	var fs FootprintScratch
	got := footIDs(t, &fs, g, 4, 5, 4, 100, []bool{true, false})
	// 4 and 5 are endpoints (included unconditionally, expanded
	// unconditionally). Only relevant-labeled neighbors are pulled in:
	// from 4, neighbor 3 (label 1) is skipped; from 5, neighbor 6
	// (label 0) joins. 6 expands but its neighbor 7 (label 1) is skipped,
	// so the walk dies at the label frontier in both directions.
	want := []int{4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("footprint = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("footprint = %v, want %v", got, want)
		}
	}
}

func TestFootprintOverflow(t *testing.T) {
	// A star: the center's footprint at radius 1 is every vertex, which
	// exceeds a small cap and must report overflow.
	g := New(0)
	c := g.AddVertex(0)
	for i := 0; i < 20; i++ {
		v := g.AddVertex(0)
		g.AddEdge(c, v, 0)
	}
	var fs FootprintScratch
	if _, over := fs.Footprint(g, c, 1, 2, 8, nil); !over {
		t.Fatal("want overflow with cap 8 on a 21-vertex star")
	}
	// The same walk with a generous cap completes.
	if f, over := fs.Footprint(g, c, 1, 2, 100, nil); over || len(f) != 21 {
		t.Fatalf("want full 21-vertex footprint, got %d (over=%v)", len(f), over)
	}
}

func TestFootprintOutOfRangeEndpoint(t *testing.T) {
	g := pathGraph(3, func(int) Label { return 0 })
	var fs FootprintScratch
	if _, over := fs.Footprint(g, 0, 99, 2, 100, nil); !over {
		t.Fatal("out-of-range endpoint must report overflow (serial fallback)")
	}
}

func TestFootprintScratchReuse(t *testing.T) {
	g := pathGraph(8, func(int) Label { return 0 })
	var fs FootprintScratch
	a := footIDs(t, &fs, g, 0, 1, 1, 100, nil)
	b := footIDs(t, &fs, g, 6, 7, 1, 100, nil)
	// Epoch-stamped visited state: the second call must not see the
	// first call's marks.
	if len(a) != 3 || len(b) != 3 { // {0,1,2} and {5,6,7}
		t.Fatalf("footprints %v / %v, want 3 vertices each", a, b)
	}
	for _, x := range b {
		if x < 5 {
			t.Fatalf("second footprint leaked first call's vertices: %v", b)
		}
	}
}

func TestFootprintZeroAllocSteadyState(t *testing.T) {
	g := pathGraph(64, func(i int) Label { return Label(i % 3) })
	var fs FootprintScratch
	ok := []bool{true, true, true}
	fs.Footprint(g, 10, 11, 4, 512, ok) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		fs.Footprint(g, 30, 31, 4, 512, ok)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Footprint allocates %.1f/op, want 0", allocs)
	}
}
