package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec follows the format used by the CSM benchmark suite of
// Sun et al. (VLDB'22), which the ParaCOSM paper's datasets are distributed
// in:
//
//	v <id> <vertex-label>
//	e <src> <dst> <edge-label>
//
// Vertex lines must precede edge lines referencing them. Lines starting
// with '#' or '%' are comments.

// Write serializes g in the text format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < len(g.labels); v++ {
		if !g.alive[v] {
			continue
		}
		if _, err := fmt.Fprintf(bw, "v %d %d\n", v, g.labels[v]); err != nil {
			return err
		}
	}
	for v := 0; v < len(g.adj); v++ {
		for _, n := range g.adj[v] {
			if VertexID(v) < n.ID { // emit each undirected edge once
				if _, err := fmt.Fprintf(bw, "e %d %d %d\n", v, n.ID, n.ELabel); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format. Vertex IDs must be dense
// (0..n-1); sparse IDs are rejected to keep the in-memory layout compact.
func Read(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "v":
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex line %q", lineNo, line)
			}
			id, err1 := strconv.ParseUint(f[1], 10, 32)
			lab, err2 := strconv.ParseUint(f[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex fields %q", lineNo, line)
			}
			if VertexID(id) != VertexID(g.NumVertices()) {
				return nil, fmt.Errorf("graph: line %d: non-dense vertex id %d (expected %d)", lineNo, id, g.NumVertices())
			}
			g.AddVertex(Label(lab))
		case "e":
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
			}
			u, err1 := strconv.ParseUint(f[1], 10, 32)
			v, err2 := strconv.ParseUint(f[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge fields %q", lineNo, line)
			}
			var lab uint64
			if len(f) >= 4 {
				var err error
				lab, err = strconv.ParseUint(f[3], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad edge label %q", lineNo, f[3])
				}
			}
			if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: edge references unknown vertex", lineNo)
			}
			g.AddEdge(VertexID(u), VertexID(v), Label(lab))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteState serializes the COMPLETE slot-level state of g, unlike Write
// which emits only the live subgraph: every vertex slot appears in ID
// order — deleted slots included, with their retained labels — so
// ReadState reconstructs a graph whose vertex IDs, dead slots and
// adjacency are identical to g's. This is the snapshot codec of the
// durability layer (internal/wal), where ID stability is load-bearing:
// logged updates reference pre-crash vertex IDs.
//
//	pstate <slots> <edges>
//	l <label>        one per slot, in ID order (alive)
//	d <label>        one per slot, in ID order (deleted)
//	e <u> <v> <elabel>  each undirected edge once (u < v)
func (g *Graph) WriteState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "pstate %d %d\n", len(g.labels), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < len(g.labels); v++ {
		tag := byte('l')
		if !g.alive[v] {
			tag = 'd'
		}
		if _, err := fmt.Fprintf(bw, "%c %d\n", tag, g.labels[v]); err != nil {
			return err
		}
	}
	for v := 0; v < len(g.adj); v++ {
		for _, n := range g.adj[v] {
			if VertexID(v) < n.ID {
				if _, err := fmt.Fprintf(bw, "e %d %d %d\n", v, n.ID, n.ELabel); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadState reconstructs a graph written by WriteState. It consumes
// exactly the state section from r (header plus the announced slot and
// edge lines), so it composes inside larger line-oriented formats like
// the wal snapshot file.
func ReadState(r *bufio.Reader) (*Graph, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("graph: state header: %w", err)
	}
	var slots, edges int
	if _, err := fmt.Sscanf(line, "pstate %d %d", &slots, &edges); err != nil || slots < 0 || edges < 0 {
		return nil, fmt.Errorf("graph: bad state header %q", strings.TrimSpace(line))
	}
	g := New(slots)
	for v := 0; v < slots; v++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("graph: state slot %d: %w", v, err)
		}
		f := strings.Fields(line)
		if len(f) != 2 || (f[0] != "l" && f[0] != "d") {
			return nil, fmt.Errorf("graph: bad state slot line %q", strings.TrimSpace(line))
		}
		lab, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad state slot label %q", f[1])
		}
		id := g.AddVertex(Label(lab))
		if f[0] == "d" {
			// A freshly added vertex is isolated, so the deletion that
			// reproduces the dead slot is always legal here.
			g.DeleteVertex(id)
		}
	}
	for i := 0; i < edges; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("graph: state edge %d: %w", i, err)
		}
		var u, v, lab uint64
		if _, err := fmt.Sscanf(line, "e %d %d %d", &u, &v, &lab); err != nil {
			return nil, fmt.Errorf("graph: bad state edge line %q", strings.TrimSpace(line))
		}
		if int(u) >= slots || int(v) >= slots {
			return nil, fmt.Errorf("graph: state edge (%d,%d) out of range", u, v)
		}
		if !g.Alive(VertexID(u)) || !g.Alive(VertexID(v)) {
			// WriteState never emits one: DeleteVertex requires isolation,
			// so a dead slot has no incident edges. Corruption, reject.
			return nil, fmt.Errorf("graph: state edge (%d,%d) touches a deleted slot", u, v)
		}
		if !g.AddEdge(VertexID(u), VertexID(v), Label(lab)) {
			return nil, fmt.Errorf("graph: state edge (%d,%d) rejected (duplicate, self loop or dead endpoint)", u, v)
		}
	}
	return g, nil
}
