package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec follows the format used by the CSM benchmark suite of
// Sun et al. (VLDB'22), which the ParaCOSM paper's datasets are distributed
// in:
//
//	v <id> <vertex-label>
//	e <src> <dst> <edge-label>
//
// Vertex lines must precede edge lines referencing them. Lines starting
// with '#' or '%' are comments.

// Write serializes g in the text format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < len(g.labels); v++ {
		if !g.alive[v] {
			continue
		}
		if _, err := fmt.Fprintf(bw, "v %d %d\n", v, g.labels[v]); err != nil {
			return err
		}
	}
	for v := 0; v < len(g.adj); v++ {
		for _, n := range g.adj[v] {
			if VertexID(v) < n.ID { // emit each undirected edge once
				if _, err := fmt.Fprintf(bw, "e %d %d %d\n", v, n.ID, n.ELabel); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format. Vertex IDs must be dense
// (0..n-1); sparse IDs are rejected to keep the in-memory layout compact.
func Read(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "v":
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex line %q", lineNo, line)
			}
			id, err1 := strconv.ParseUint(f[1], 10, 32)
			lab, err2 := strconv.ParseUint(f[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex fields %q", lineNo, line)
			}
			if VertexID(id) != VertexID(g.NumVertices()) {
				return nil, fmt.Errorf("graph: line %d: non-dense vertex id %d (expected %d)", lineNo, id, g.NumVertices())
			}
			g.AddVertex(Label(lab))
		case "e":
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
			}
			u, err1 := strconv.ParseUint(f[1], 10, 32)
			v, err2 := strconv.ParseUint(f[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge fields %q", lineNo, line)
			}
			var lab uint64
			if len(f) >= 4 {
				var err error
				lab, err = strconv.ParseUint(f[3], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad edge label %q", lineNo, f[3])
				}
			}
			if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: edge references unknown vertex", lineNo)
			}
			g.AddEdge(VertexID(u), VertexID(v), Label(lab))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
