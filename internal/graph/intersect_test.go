package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sortedNeighbors builds a strictly ID-sorted []Neighbor of n entries drawn
// from [0, span), with pseudo-random edge labels.
func sortedNeighbors(rng *rand.Rand, n, span int) []Neighbor {
	seen := make(map[VertexID]bool, n)
	out := make([]Neighbor, 0, n)
	for len(out) < n && len(seen) < span {
		v := VertexID(rng.Intn(span))
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, Neighbor{ID: v, ELabel: Label(rng.Intn(4))})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func idsOf(a []Neighbor) []VertexID {
	out := make([]VertexID, len(a))
	for i := range a {
		out[i] = a[i].ID
	}
	return out
}

// naiveIntersect is the reference: common IDs of two sorted ID sets.
func naiveIntersect(a, b []VertexID) []VertexID {
	in := make(map[VertexID]bool, len(b))
	for _, v := range b {
		in[v] = true
	}
	var out []VertexID
	for _, v := range a {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

func sameIDs(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSearchAndAdvanceAgainstLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := sortedNeighbors(rng, rng.Intn(60), 200)
		ids := idsOf(a)
		for trial := 0; trial < 40; trial++ {
			v := VertexID(rng.Intn(210))
			want := 0
			for want < len(a) && a[want].ID < v {
				want++
			}
			if got := SearchNeighbors(a, v); got != want {
				t.Errorf("SearchNeighbors(%v, %d) = %d, want %d", a, v, got, want)
				return false
			}
			if got := SearchIDs(ids, v); got != want {
				return false
			}
			from := 0
			if len(a) > 0 {
				from = rng.Intn(len(a) + 1)
			}
			wantAdv := from
			for wantAdv < len(a) && a[wantAdv].ID < v {
				wantAdv++
			}
			if got, _ := AdvanceNeighbors(a, from, v); got != wantAdv {
				t.Errorf("AdvanceNeighbors(%v, %d, %d) = %d, want %d", a, from, v, got, wantAdv)
				return false
			}
			if got, _ := AdvanceIDs(ids, from, v); got != wantAdv {
				return false
			}
			l, ok := FindInNeighbors(a, v)
			found := false
			var wantL Label = NoLabel
			for _, nb := range a {
				if nb.ID == v {
					found, wantL = true, nb.ELabel
				}
			}
			if ok != found || l != wantL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectKernelsAgree: every materializing kernel agrees with the
// naive reference across size skews covering both the merge and the gallop
// path, and the stats block counts each invocation.
func TestIntersectKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := [][2]int{{0, 10}, {3, 3}, {8, 60}, {5, 200}, {40, 45}, {1, 500}, {64, 64}, {2, 17}}
	var st KernelStats
	calls := uint64(0)
	for _, sz := range sizes {
		for trial := 0; trial < 20; trial++ {
			a := sortedNeighbors(rng, sz[0], 600)
			b := sortedNeighbors(rng, sz[1], 600)
			want := naiveIntersect(idsOf(a), idsOf(b))

			got := IntersectNeighborIDs(nil, a, b, &st)
			calls++
			if !sameIDs(got, want) {
				t.Fatalf("IntersectNeighborIDs(%v, %v) = %v, want %v", a, b, got, want)
			}
			got = IntersectIDsNeighbors(nil, idsOf(a), b, &st)
			calls++
			if !sameIDs(got, want) {
				t.Fatalf("IntersectIDsNeighbors(%v, %v) = %v, want %v", a, b, got, want)
			}
			got = IntersectIDs(nil, idsOf(a), idsOf(b), &st)
			calls++
			if !sameIDs(got, want) {
				t.Fatalf("IntersectIDs = %v, want %v", got, want)
			}
		}
	}
	c := st.Counters()
	if c.Intersections != calls {
		t.Fatalf("Intersections = %d, want %d", c.Intersections, calls)
	}
	if c.Galloped > c.Probes {
		t.Fatalf("Galloped %d > Probes %d", c.Galloped, c.Probes)
	}
}

// TestIntersectInPlaceFold: IntersectIDsNeighbors documents that
// dst == ids[:0] is safe; fold a k-way intersection through one buffer and
// compare with the naive reference.
func TestIntersectInPlaceFold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		runs := make([][]Neighbor, k)
		for i := range runs {
			runs[i] = sortedNeighbors(rng, 5+rng.Intn(80), 120)
		}
		out := idsOf(runs[0])
		want := idsOf(runs[0])
		for i := 1; i < k; i++ {
			out = IntersectIDsNeighbors(out[:0], out, runs[i], nil)
			want = naiveIntersect(want, idsOf(runs[i]))
		}
		return sameIDs(out, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelZeroAllocs mirrors TestProcessUpdateAllocations for the kernel
// layer: lookups, cursor advances and intersections into caller-provided
// buffers must not allocate, and NeighborsWithLabel must be a pure
// sub-slice view.
func TestKernelZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := sortedNeighbors(rng, 12, 400)
	big := sortedNeighbors(rng, 300, 400)
	ids := idsOf(small)
	dst := make([]VertexID, 0, 400)
	var st KernelStats

	g := New(64)
	for i := 0; i < 64; i++ {
		g.AddVertex(Label(i % 7))
	}
	for i := 1; i < 64; i++ {
		g.AddEdge(0, VertexID(i), Label(i%3))
	}

	cases := []struct {
		name string
		fn   func()
	}{
		{"NeighborsWithLabel", func() {
			for l := Label(0); l < 7; l++ {
				if len(g.NeighborsWithLabel(0, l)) == 0 {
					t.Fatal("empty label run")
				}
			}
		}},
		{"DegreeWithLabel", func() { _ = g.DegreeWithLabel(0, 3) }},
		{"FindInNeighbors", func() { _, _ = FindInNeighbors(big, 123) }},
		{"AdvanceNeighbors", func() { _, _ = AdvanceNeighbors(big, 0, 399) }},
		{"IntersectNeighborIDs/merge", func() { dst = IntersectNeighborIDs(dst[:0], big, big, &st) }},
		{"IntersectNeighborIDs/gallop", func() { dst = IntersectNeighborIDs(dst[:0], small, big, &st) }},
		{"IntersectIDsNeighbors", func() { dst = IntersectIDsNeighbors(dst[:0], ids, big, &st) }},
		{"IntersectIDs", func() { dst = IntersectIDs(dst[:0], ids, ids, &st) }},
	}
	for _, c := range cases {
		c.fn() // warm up
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s: %v allocs per run, want 0", c.name, n)
		}
	}
}

func BenchmarkNeighborsWithLabel(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const nv, deg = 2048, 256
	g := New(nv)
	for i := 0; i < nv; i++ {
		g.AddVertex(Label(i % 16))
	}
	for i := 0; i < deg; i++ {
		g.AddEdge(0, VertexID(1+rng.Intn(nv-1)), 0)
	}
	b.Run("labelSlice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.NeighborsWithLabel(0, Label(i%16))
		}
	})
	b.Run("scanFilter", func(b *testing.B) {
		// The pre-partitioning access pattern, for comparison.
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			l := Label(i % 16)
			for _, nb := range g.Neighbors(0) {
				if g.Label(nb.ID) == l {
					n++
				}
			}
		}
		_ = n
	})
}

// BenchmarkIntersectCrossover measures the adaptive kernel against an
// always-merge reference across size ratios, exhibiting where galloping
// starts to win (GallopRatio).
func BenchmarkIntersectCrossover(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const small = 32
	for _, ratio := range []int{1, 4, 8, 16, 64} {
		a := sortedNeighbors(rng, small, small*ratio*4)
		bb := sortedNeighbors(rng, small*ratio, small*ratio*4)
		dst := make([]VertexID, 0, small)
		b.Run("adaptive/ratio="+itoa(ratio), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = IntersectNeighborIDs(dst[:0], a, bb, nil)
			}
		})
		b.Run("merge/ratio="+itoa(ratio), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				dst = dst[:0]
				i, j := 0, 0
				for i < len(a) && j < len(bb) {
					av, bv := a[i].ID, bb[j].ID
					switch {
					case av == bv:
						dst = append(dst, av)
						i++
						j++
					case av < bv:
						i++
					default:
						j++
					}
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
