package graph

import "sync"

// shardCount is the number of vertex lock shards. Power of two so the shard
// of a vertex is a cheap mask. 256 shards keeps contention negligible for
// the batch sizes ParaCOSM uses (tens of updates in flight).
const shardCount = 256

// shardedLocks provides fine-grained reader/writer locking over vertices.
// Vertex v maps to shard v & (shardCount-1). Multi-shard acquisition is
// always performed in ascending shard order to rule out deadlock.
type shardedLocks struct {
	shards [shardCount]sync.RWMutex
}

func shardOf(v VertexID) int { return int(v) & (shardCount - 1) }

// lockPair write-locks the shards of u and v (once if they collide).
func (s *shardedLocks) lockPair(u, v VertexID) {
	a, b := shardOf(u), shardOf(v)
	if a > b {
		a, b = b, a
	}
	s.shards[a].Lock()
	if b != a {
		s.shards[b].Lock()
	}
}

func (s *shardedLocks) unlockPair(u, v VertexID) {
	a, b := shardOf(u), shardOf(v)
	if a > b {
		a, b = b, a
	}
	if b != a {
		s.shards[b].Unlock()
	}
	s.shards[a].Unlock()
}

// rlockPair read-locks the shards of u and v (once if they collide).
func (s *shardedLocks) rlockPair(u, v VertexID) {
	a, b := shardOf(u), shardOf(v)
	if a > b {
		a, b = b, a
	}
	s.shards[a].RLock()
	if b != a {
		s.shards[b].RLock()
	}
}

func (s *shardedLocks) runlockPair(u, v VertexID) {
	a, b := shardOf(u), shardOf(v)
	if a > b {
		a, b = b, a
	}
	if b != a {
		s.shards[b].RUnlock()
	}
	s.shards[a].RUnlock()
}

// LockedAddEdge inserts edge (u,v) under the vertex shard locks. Safe to
// call concurrently with other Locked* operations. Note that the global
// edge counter is maintained with a dedicated mutex because edges spanning
// different shards would otherwise race on it.
func (g *Graph) LockedAddEdge(u, v VertexID, l Label) bool {
	g.locks.lockPair(u, v)
	if u == v {
		g.locks.unlockPair(u, v)
		return false
	}
	ok := g.insertHalf(u, v, l)
	if ok {
		g.insertHalf(v, u, l)
	}
	g.locks.unlockPair(u, v)
	if ok {
		g.edgeMu.Lock()
		g.edges++
		g.edgeMu.Unlock()
	}
	return ok
}

// LockedRemoveEdge deletes edge (u,v) under the vertex shard locks.
func (g *Graph) LockedRemoveEdge(u, v VertexID) bool {
	g.locks.lockPair(u, v)
	ok := g.removeHalf(u, v)
	if ok {
		g.removeHalf(v, u)
	}
	g.locks.unlockPair(u, v)
	if ok {
		g.edgeMu.Lock()
		g.edges--
		g.edgeMu.Unlock()
	}
	return ok
}

// LockedDegrees returns the degrees of u and v under read locks, so the
// result is consistent with concurrently applied Locked mutations.
func (g *Graph) LockedDegrees(u, v VertexID) (du, dv int) {
	g.locks.rlockPair(u, v)
	du, dv = len(g.adj[u]), len(g.adj[v])
	g.locks.runlockPair(u, v)
	return du, dv
}

// LockedHasEdge reports edge existence under read locks.
func (g *Graph) LockedHasEdge(u, v VertexID) bool {
	g.locks.rlockPair(u, v)
	ok := g.findNeighbor(u, v) >= 0
	g.locks.runlockPair(u, v)
	return ok
}
