package graph

// This file computes conflict footprints for the batch-dynamic executor
// (DESIGN.md §15). The footprint of an edge update (u,v) is the set of
// vertices whose adjacency lists or per-vertex index (ADS) entries the
// update's processing may read or write: both endpoints, plus every
// vertex reachable from them within `radius` hops through query-relevant
// labels. Two updates with disjoint footprints commute — neither's
// classification, enumeration, mutation or ADS maintenance can observe
// the other's effects — so the executor may run them concurrently.
//
// Why relevant-label expansion is enough: the candidate walk only ever
// stands on vertices whose label matches a query vertex, and the ADS
// cascade only propagates through candidacy changes, which are likewise
// confined to label-matching vertices. Reads and writes of a vertex x's
// adjacency list are both detected at x itself (the list owner), never
// at the far endpoint, so irrelevant-labeled neighbors need not be
// pulled into the set — only the two endpoints are included
// unconditionally, because Apply writes their lists whatever their
// labels are.

// FootprintScratch holds the reusable state of footprint BFS walks: an
// epoch-stamped visited array (cleared in O(1) per call by bumping the
// epoch), the BFS frontier, and the output buffer. One scratch serves
// one goroutine at a time; steady-state calls allocate nothing once the
// buffers have grown to the working-set size.
type FootprintScratch struct {
	stamp []uint32 // stamp[v] == epoch ⇔ v visited in the current call
	epoch uint32
	queue []VertexID
	out   []VertexID
}

// Footprint returns the conflict footprint of the edge (u, v): every
// vertex within radius hops of either endpoint, expanding only through
// vertices whose label is relevant (labelOK[label] is true; labels at or
// beyond len(labelOK) — including every label when labelOK is nil — are
// conservatively treated as relevant: a too-large footprint only costs
// grouping opportunity, never correctness). The returned slice aliases
// the scratch and is valid until the next call.
//
// The walk aborts once the footprint would exceed max vertices,
// returning overflow == true with a partial (meaningless) set: the
// caller must then treat the update as conflicting with everything.
// Out-of-range endpoints (an update racing a vertex op) also report
// overflow, which degrades to the serial path where the usual apply
// error surfaces.
//
//paracosm:noalloc
func (fs *FootprintScratch) Footprint(g *Graph, u, v VertexID, radius, max int, labelOK []bool) ([]VertexID, bool) {
	n := g.NumVertices()
	for len(fs.stamp) < n {
		fs.stamp = append(fs.stamp, 0)
	}
	fs.epoch++
	if fs.epoch == 0 { // wrapped: stale stamps could collide, reset them
		for i := range fs.stamp {
			fs.stamp[i] = 0
		}
		fs.epoch = 1
	}
	fs.out = fs.out[:0]
	fs.queue = fs.queue[:0]
	if int(u) >= n || int(v) >= n {
		return fs.out, true
	}

	fs.stamp[u] = fs.epoch
	fs.out = append(fs.out, u)
	fs.queue = append(fs.queue, u)
	if v != u {
		fs.stamp[v] = fs.epoch
		fs.out = append(fs.out, v)
		fs.queue = append(fs.queue, v)
	}
	if len(fs.out) > max {
		return fs.out, true
	}

	head := 0
	levelEnd := len(fs.queue) // frontier boundary of the current depth
	depth := 0
	for head < len(fs.queue) {
		if head == levelEnd {
			depth++
			levelEnd = len(fs.queue)
		}
		if depth >= radius {
			break
		}
		x := fs.queue[head]
		head++
		// Expansion happens only through relevant-labeled vertices (the
		// endpoints expand unconditionally: their lists are written by
		// Apply regardless of label).
		if depth > 0 && !labelRelevant(labelOK, g.labels[x]) {
			continue
		}
		for i := range g.adj[x] {
			y := g.adj[x][i].ID
			if fs.stamp[y] == fs.epoch || !labelRelevant(labelOK, g.labels[y]) {
				continue
			}
			fs.stamp[y] = fs.epoch
			fs.out = append(fs.out, y)
			if len(fs.out) > max {
				return fs.out, true
			}
			fs.queue = append(fs.queue, y)
		}
	}
	return fs.out, false
}

// labelRelevant reports whether l is query-relevant under the mask.
//
//paracosm:noalloc
func labelRelevant(mask []bool, l Label) bool {
	return int(l) >= len(mask) || mask[l]
}
