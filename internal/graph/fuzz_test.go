package graph

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// FuzzRead ensures the graph codec never panics on arbitrary input and
// that anything it accepts round-trips through Write/Read losslessly.
func FuzzRead(f *testing.F) {
	f.Add("v 0 1\nv 1 2\ne 0 1 3\n")
	f.Add("# comment\nv 0 0\n")
	f.Add("e 0 1 2\n")
	f.Add("v 0 0\nv 1 0\ne 0 1\ne 1 0 5\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of Write output: %v\n%s", err, buf.String())
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			if g.Label(VertexID(v)) != h.Label(VertexID(v)) {
				t.Fatalf("label of %d changed", v)
			}
			if g.Degree(VertexID(v)) != h.Degree(VertexID(v)) {
				t.Fatalf("degree of %d changed", v)
			}
		}
	})
}

// checkLabelIndexInvariants asserts every structural invariant of the
// label-partitioned adjacency:
//
//   - each adjacency list is strictly sorted by (neighbor label, neighbor ID),
//   - each label offset table is strictly sorted, covers the list exactly,
//     and contains no empty runs,
//   - NeighborsWithLabel(v, l) equals the filter of Neighbors(v) by label l
//     (and is empty for labels not present),
//   - the per-label degrees sum to the degree, degrees sum to 2|E|,
//   - NumLive counts exactly the alive vertices, and the byLabel index
//     lists exactly the live vertices of each label.
func checkLabelIndexInvariants(t *testing.T, g *Graph) {
	t.Helper()
	degSum, liveCount := 0, 0
	for vi := 0; vi < g.NumVertices(); vi++ {
		v := VertexID(vi)
		if g.Alive(v) {
			liveCount++
		}
		adj := g.Neighbors(v)
		degSum += len(adj)
		key := func(n Neighbor) uint64 { return uint64(g.Label(n.ID))<<32 | uint64(n.ID) }
		for i := 1; i < len(adj); i++ {
			if key(adj[i-1]) >= key(adj[i]) {
				t.Fatalf("vertex %d: adjacency not strictly (label,id)-sorted: %v", v, adj)
			}
		}
		segs := g.segs[v]
		if len(segs) == 0 && len(adj) != 0 {
			t.Fatalf("vertex %d: non-empty adjacency with empty offset table", v)
		}
		if len(segs) > 0 && segs[0].start != 0 {
			t.Fatalf("vertex %d: first run starts at %d", v, segs[0].start)
		}
		for i, s := range segs {
			if i > 0 && (segs[i-1].label >= s.label || segs[i-1].start >= s.start) {
				t.Fatalf("vertex %d: offset table not strictly sorted: %+v", v, segs)
			}
			hi := len(adj)
			if i+1 < len(segs) {
				hi = int(segs[i+1].start)
			}
			if int(s.start) >= hi {
				t.Fatalf("vertex %d: empty run for label %d", v, s.label)
			}
			for _, nb := range adj[s.start:hi] {
				if g.Label(nb.ID) != s.label {
					t.Fatalf("vertex %d: neighbor %d (label %d) inside run of label %d",
						v, nb.ID, g.Label(nb.ID), s.label)
				}
			}
		}
		// Label slices must equal the filter view, and per-label degrees
		// must sum to the degree. Include one label absent from the list.
		probe := make(map[Label]bool)
		for _, nb := range adj {
			probe[g.Label(nb.ID)] = true
		}
		probe[Label(250)] = true
		total := 0
		for l := range probe {
			var want []Neighbor
			for _, nb := range adj {
				if g.Label(nb.ID) == l {
					want = append(want, nb)
				}
			}
			got := g.NeighborsWithLabel(v, l)
			if len(got) != len(want) {
				t.Fatalf("vertex %d label %d: NeighborsWithLabel = %v, filter = %v", v, l, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("vertex %d label %d: NeighborsWithLabel = %v, filter = %v", v, l, got, want)
				}
			}
			if d := g.DegreeWithLabel(v, l); d != len(want) {
				t.Fatalf("vertex %d label %d: DegreeWithLabel = %d, want %d", v, l, d, len(want))
			}
			total += len(want)
		}
		if total != len(adj) {
			t.Fatalf("vertex %d: per-label degrees sum to %d, degree %d", v, total, len(adj))
		}
	}
	if liveCount != g.NumLive() {
		t.Fatalf("NumLive = %d, counted %d", g.NumLive(), liveCount)
	}
	if degSum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*NumEdges %d", degSum, 2*g.NumEdges())
	}
	perLabel := make(map[Label]int)
	for vi := 0; vi < g.NumVertices(); vi++ {
		if g.Alive(VertexID(vi)) {
			perLabel[g.Label(VertexID(vi))]++
		}
	}
	for l, n := range perLabel {
		vs := g.VerticesWithLabel(l)
		if len(vs) != n {
			t.Fatalf("VerticesWithLabel(%d) has %d entries, want %d", l, len(vs), n)
		}
		for _, v := range vs {
			if !g.Alive(v) || g.Label(v) != l {
				t.Fatalf("VerticesWithLabel(%d) lists %d (alive=%v label=%d)", l, v, g.Alive(v), g.Label(v))
			}
		}
	}
}

// FuzzLabelIndex drives random add-vertex / toggle-edge / delete-vertex
// sequences from the fuzz input and asserts the full label-index invariant
// set, then replays more mutations through the Locked* API from several
// goroutines (meaningful under -race) and asserts the invariants again.
func FuzzLabelIndex(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 4, 0x10, 5, 0x21, 4, 0x20, 12, 3})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 4, 0x01, 4, 0x12, 4, 0x23, 4, 0x30, 12, 0})
	f.Add([]byte{0, 4, 4, 0x01, 8, 0x01, 12, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const maxV = 16
		g := New(maxV)
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			n := g.NumVertices()
			switch op % 4 {
			case 0: // add vertex with a small label
				if n < maxV {
					g.AddVertex(Label(arg % 5))
				}
			case 1, 2: // toggle an edge between two existing vertices
				if n >= 2 {
					u := VertexID(arg&0x0f) % VertexID(n)
					v := VertexID(arg>>4) % VertexID(n)
					if g.HasEdge(u, v) {
						g.RemoveEdge(u, v)
					} else {
						g.AddEdge(u, v, Label(op%3))
					}
				}
			case 3: // delete the first isolated live vertex
				for vi := 0; vi < n; vi++ {
					v := VertexID(vi)
					if g.Alive(v) && g.Degree(v) == 0 {
						g.DeleteVertex(v)
						break
					}
				}
			}
		}
		checkLabelIndexInvariants(t, g)

		// Concurrent phase: partition the input among goroutines mutating
		// through the Locked* API. The final state is input-dependent but
		// the invariants must hold regardless of interleaving.
		if n := g.NumVertices(); n >= 2 {
			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i+1 < len(ops); i += workers {
						u := VertexID(ops[i]&0x0f) % VertexID(n)
						v := VertexID(ops[i]>>4) % VertexID(n)
						if !g.Alive(u) || !g.Alive(v) {
							continue // stay within the model: no edges at deleted vertices
						}
						if ops[i+1]%2 == 0 {
							g.LockedAddEdge(u, v, Label(ops[i+1]%7))
						} else {
							g.LockedRemoveEdge(u, v)
						}
						g.LockedHasEdge(u, v)
						g.LockedDegrees(u, v)
					}
				}(w)
			}
			wg.Wait()
			checkLabelIndexInvariants(t, g)
		}
	})
}
