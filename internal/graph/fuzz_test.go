package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the graph codec never panics on arbitrary input and
// that anything it accepts round-trips through Write/Read losslessly.
func FuzzRead(f *testing.F) {
	f.Add("v 0 1\nv 1 2\ne 0 1 3\n")
	f.Add("# comment\nv 0 0\n")
	f.Add("e 0 1 2\n")
	f.Add("v 0 0\nv 1 0\ne 0 1\ne 1 0 5\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of Write output: %v\n%s", err, buf.String())
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			if g.Label(VertexID(v)) != h.Label(VertexID(v)) {
				t.Fatalf("label of %d changed", v)
			}
			if g.Degree(VertexID(v)) != h.Degree(VertexID(v)) {
				t.Fatalf("degree of %d changed", v)
			}
		}
	})
}
