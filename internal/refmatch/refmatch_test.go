package refmatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// trianglesGraph: data graph with two labeled triangles sharing an edge.
//
//	0(a)-1(b), 1-2(c), 2-0, 1-3(c), 3-0  => triangles {0,1,2} and {0,1,3}
func trianglesGraph() *graph.Graph {
	g := graph.New(4)
	g.AddVertex(0) // a
	g.AddVertex(1) // b
	g.AddVertex(2) // c
	g.AddVertex(2) // c
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(3, 0, 0)
	return g
}

func triangleQuery(t *testing.T) *query.Graph {
	t.Helper()
	q := query.MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCountTriangles(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	// Each labeled triangle has exactly one mapping (labels pin vertices):
	// {0,1,2} and {0,1,3}.
	if got := Count(g, q, Options{}); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestCountUnlabeledTriangleAutomorphisms(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex(0)
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	q := query.MustNew([]graph.Label{0, 0, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	// All 3! injective mappings are matches.
	if got := Count(g, q, Options{}); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
}

func TestEdgeLabelsRespected(t *testing.T) {
	g := graph.New(2)
	g.AddVertex(0)
	g.AddVertex(1)
	g.AddEdge(0, 1, 5)
	q := query.MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 7)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := Count(g, q, Options{}); got != 0 {
		t.Fatalf("label-mismatched edge matched: %d", got)
	}
	if got := Count(g, q, Options{IgnoreELabels: true}); got != 1 {
		t.Fatalf("IgnoreELabels: Count = %d, want 1", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	calls := 0
	Enumerate(g, q, Options{}, func(m []graph.VertexID) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("Enumerate visited %d matches after stop", calls)
	}
}

func TestMatchesMultiset(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	m := Matches(g, q, Options{})
	total := 0
	for _, c := range m {
		total += c
	}
	if total != 2 || len(m) != 2 {
		t.Fatalf("Matches = %v", m)
	}
}

func TestDeltaInsertion(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	// Add vertex 4 labeled c and edge (1,4); then (4,0) closes a triangle.
	g.AddVertex(2)
	g.AddEdge(1, 4, 0)
	pos, neg := Delta(g, q, stream.Update{Op: stream.AddEdge, U: 4, V: 0, ELabel: 0}, Options{})
	if pos != 1 || neg != 0 {
		t.Fatalf("Delta(+e) = (%d,%d), want (1,0)", pos, neg)
	}
}

func TestDeltaDeletion(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	pos, neg := Delta(g, q, stream.Update{Op: stream.DeleteEdge, U: 0, V: 1}, Options{})
	// Edge (0,1) is in both triangles.
	if pos != 0 || neg != 2 {
		t.Fatalf("Delta(-e) = (%d,%d), want (0,2)", pos, neg)
	}
}

func TestDeltaDoesNotMutate(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	edges := g.NumEdges()
	Delta(g, q, stream.Update{Op: stream.DeleteEdge, U: 0, V: 1}, Options{})
	if g.NumEdges() != edges {
		t.Fatal("Delta mutated the input graph")
	}
}

func TestDeltaInapplicableUpdate(t *testing.T) {
	g := trianglesGraph()
	q := triangleQuery(t)
	pos, neg := Delta(g, q, stream.Update{Op: stream.DeleteEdge, U: 2, V: 3}, Options{})
	if g.HasEdge(2, 3) {
		t.Fatal("test setup: edge should not exist")
	}
	if pos != 0 || neg != 0 {
		t.Fatalf("Delta(inapplicable) = (%d,%d)", pos, neg)
	}
}

// Property: Count is symmetric under relabeling of data vertex IDs
// (building the same graph with a permuted insertion order must not change
// the match count).
func TestCountInvariantUnderInsertionOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 10
		type e struct{ u, v graph.VertexID }
		var edges []e
		labels := make([]graph.Label, n)
		for i := range labels {
			labels[i] = graph.Label(rng.Intn(2))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					edges = append(edges, e{graph.VertexID(u), graph.VertexID(v)})
				}
			}
		}
		build := func(perm []int) *graph.Graph {
			g := graph.New(n)
			for i := 0; i < n; i++ {
				g.AddVertex(labels[i])
			}
			for _, i := range perm {
				g.AddEdge(edges[i].u, edges[i].v, 0)
			}
			return g
		}
		p1 := rng.Perm(len(edges))
		p2 := rng.Perm(len(edges))
		q := query.MustNew([]graph.Label{0, 1, 0})
		q.MustAddEdge(0, 1, 0)
		q.MustAddEdge(1, 2, 0)
		if q.Finalize() != nil {
			return false
		}
		return Count(build(p1), q, Options{}) == Count(build(p2), q, Options{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
