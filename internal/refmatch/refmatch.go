// Package refmatch is an independent, deliberately simple static subgraph
// matcher. It recomputes the full match set M(Q,G) from scratch and diffs
// it across an update — the IncIsoMatch-style recomputation baseline of
// Table 1 — providing the ground truth every incremental algorithm and
// every ParaCOSM configuration is validated against.
//
// It shares no code with the incremental algorithms so that a bug in the
// shared machinery cannot hide in both sides of a comparison.
package refmatch

import (
	"sort"

	"paracosm/internal/graph"
	"paracosm/internal/query"
	"paracosm/internal/stream"
)

// Options tweak matching semantics.
type Options struct {
	// IgnoreELabels disables edge-label comparison (the paper strips edge
	// labels when evaluating CaLiG, which does not support them).
	IgnoreELabels bool
}

// Count returns |M(Q,G)|: the number of injective label- and
// edge-preserving mappings V(Q) -> V(G) (Definition 2.2).
func Count(g *graph.Graph, q *query.Graph, opt Options) uint64 {
	var n uint64
	enumerate(g, q, opt, func([]graph.VertexID) bool { n++; return true })
	return n
}

// Enumerate invokes yield for every match; the mapping slice is reused
// between calls (copy it to retain). Returning false stops enumeration.
func Enumerate(g *graph.Graph, q *query.Graph, opt Options, yield func(m []graph.VertexID) bool) {
	enumerate(g, q, opt, yield)
}

// Matches returns every match as a canonical string key -> count multiset,
// for exact set comparisons in tests.
func Matches(g *graph.Graph, q *query.Graph, opt Options) map[string]int {
	out := make(map[string]int)
	buf := make([]byte, 0, 64)
	enumerate(g, q, opt, func(m []graph.VertexID) bool {
		buf = buf[:0]
		for _, v := range m {
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		out[string(buf)]++
		return true
	})
	return out
}

// Delta recomputes the incremental match set ΔM for applying upd to g:
// pos matches appear, neg matches expire. g is not modified.
func Delta(g *graph.Graph, q *query.Graph, upd stream.Update, opt Options) (pos, neg uint64) {
	before := Matches(g, q, opt)
	h := g.Clone()
	if err := upd.Apply(h); err != nil {
		// An inapplicable update changes nothing.
		return 0, 0
	}
	after := Matches(h, q, opt)
	for k, c := range after {
		if c > before[k] {
			pos += uint64(c - before[k])
		}
	}
	for k, c := range before {
		if c > after[k] {
			neg += uint64(c - after[k])
		}
	}
	return pos, neg
}

// enumerate is a straightforward connected-order backtracking matcher.
func enumerate(g *graph.Graph, q *query.Graph, opt Options, yield func([]graph.VertexID) bool) {
	n := q.NumVertices()
	order := staticOrder(g, q)
	back := q.BackwardNeighbors(order)

	mapping := make([]graph.VertexID, n) // query vertex -> data vertex
	for i := range mapping {
		mapping[i] = graph.NoVertex
	}
	out := make([]graph.VertexID, n)
	stopped := false

	var rec func(pos int)
	rec = func(pos int) {
		if stopped {
			return
		}
		if pos == n {
			copy(out, mapping)
			if !yield(out) {
				stopped = true
			}
			return
		}
		u := order[pos]
		for _, v := range candidates(g, q, opt, u, order, back[pos], mapping) {
			mapping[u] = v
			rec(pos + 1)
			mapping[u] = graph.NoVertex
			if stopped {
				return
			}
		}
	}
	rec(0)
}

// candidates returns the compatible set C(u, mapping) (Definition 2.5).
func candidates(g *graph.Graph, q *query.Graph, opt Options, u query.VertexID, order []query.VertexID, back []query.BackEdge, mapping []graph.VertexID) []graph.VertexID {
	var cands []graph.VertexID
	if len(back) == 0 {
		// First vertex: all data vertices with the right label and degree.
		for _, v := range g.VerticesWithLabel(q.Label(u)) {
			if g.Alive(v) && g.Degree(v) >= q.Degree(u) {
				cands = append(cands, v)
			}
		}
	} else {
		// Seed from the matched backward neighbor with minimum degree.
		bestPos := back[0].Pos
		for _, b := range back[1:] {
			if g.Degree(mapping[order[b.Pos]]) < g.Degree(mapping[order[bestPos]]) {
				bestPos = b.Pos
			}
		}
		anchor := mapping[order[bestPos]]
		for _, nb := range g.Neighbors(anchor) {
			v := nb.ID
			if g.Label(v) != q.Label(u) || g.Degree(v) < q.Degree(u) {
				continue
			}
			cands = append(cands, v)
		}
	}
	// Filter by injectivity and all backward edges (with labels).
	outIdx := 0
	for _, v := range cands {
		ok := true
		for _, m := range mapping {
			if m == v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, b := range back {
			w := mapping[order[b.Pos]]
			el, exists := g.EdgeLabel(v, w)
			if !exists || (!opt.IgnoreELabels && el != b.ELabel) {
				ok = false
				break
			}
		}
		if ok {
			cands[outIdx] = v
			outIdx++
		}
	}
	return cands[:outIdx]
}

// staticOrder picks a connected matching order: start at the query vertex
// with the fewest data candidates per degree, then greedily extend by most
// backward neighbors.
func staticOrder(g *graph.Graph, q *query.Graph) []query.VertexID {
	n := q.NumVertices()
	type cand struct {
		u     query.VertexID
		score int
	}
	cs := make([]cand, n)
	for u := 0; u < n; u++ {
		cs[u] = cand{query.VertexID(u), len(g.VerticesWithLabel(q.Label(query.VertexID(u))))}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].score != cs[j].score {
			return cs[i].score < cs[j].score
		}
		return q.Degree(cs[i].u) > q.Degree(cs[j].u)
	})
	start := cs[0].u

	order := make([]query.VertexID, 0, n)
	inOrder := make([]bool, n)
	order = append(order, start)
	inOrder[start] = true
	backDeg := make([]int, n)
	for _, nb := range q.Neighbors(start) {
		backDeg[nb.ID]++
	}
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if inOrder[v] || backDeg[v] == 0 {
				continue
			}
			if best < 0 || backDeg[v] > backDeg[best] ||
				(backDeg[v] == backDeg[best] && q.Degree(query.VertexID(v)) > q.Degree(query.VertexID(best))) {
				best = v
			}
		}
		if best < 0 {
			break
		}
		order = append(order, query.VertexID(best))
		inOrder[best] = true
		for _, nb := range q.Neighbors(query.VertexID(best)) {
			backDeg[nb.ID]++
		}
	}
	return order
}
