package model

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperWorkedExample reproduces Equation (3): with N = M = 10 and
// γ = 0.4 the runtime is |ΔG|(0.64 T_ADS + 0.06 T_FM).
func TestPaperWorkedExample(t *testing.T) {
	ads, fm := Coefficients(Params{Gamma: 0.4, M: 10, N: 10})
	if math.Abs(ads-0.64) > 1e-12 {
		t.Fatalf("ADS coefficient = %v, want 0.64", ads)
	}
	if math.Abs(fm-0.06) > 1e-12 {
		t.Fatalf("FM coefficient = %v, want 0.06", fm)
	}
	rt := Runtime(Params{Updates: 1000, Gamma: 0.4, M: 10, N: 10, TADS: 2, TFM: 50})
	want := 1000 * (0.64*2 + 0.06*50)
	if math.Abs(rt-want) > 1e-9 {
		t.Fatalf("Runtime = %v, want %v", rt, want)
	}
}

// TestPaperSafeProbability reproduces the LiveJournal estimate of §4.3:
// 6 query edges, 30 vertex labels, 1 edge label -> P(unsafe) = 6/900,
// P(safe) ≈ 99.33%.
func TestPaperSafeProbability(t *testing.T) {
	p := SafeProbability(6, 30, 1)
	if math.Abs(p-(1-6.0/900.0)) > 1e-12 {
		t.Fatalf("SafeProbability = %v, want %v", p, 1-6.0/900.0)
	}
	if p < 0.9933-0.0001 || p > 0.9934 {
		t.Fatalf("SafeProbability = %v, want ≈ 0.9933", p)
	}
}

func TestRuntimeSequentialIdentity(t *testing.T) {
	// With M = N = 1 the model reduces to |ΔG|(T_ADS + (1-γ)T_FM).
	p := Params{Updates: 10, Gamma: 0.5, M: 1, N: 1, TADS: 3, TFM: 7}
	want := 10 * (3 + 0.5*7)
	if got := Runtime(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Runtime = %v, want %v", got, want)
	}
}

func TestSpeedupProperties(t *testing.T) {
	f := func(g8 uint8, m8, n8 uint8) bool {
		gamma := float64(g8%101) / 100
		m := 1 + int(m8%64)
		n := 1 + int(n8%64)
		p := Params{Updates: 100, Gamma: gamma, M: m, N: n, TADS: 1, TFM: 20}
		s := Speedup(p)
		// Parallelism never hurts in the ideal model, and is bounded by
		// max(M, N).
		if s < 1-1e-9 {
			return false
		}
		bound := float64(m)
		if n > m {
			bound = float64(n)
		}
		return s <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupMonotoneInThreads(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		s := Speedup(Params{Updates: 1, Gamma: 0.4, M: n, N: n, TADS: 1, TFM: 30})
		if s < prev {
			t.Fatalf("speedup not monotone at N=%d: %v < %v", n, s, prev)
		}
		prev = s
	}
}

func TestSafeProbabilityBounds(t *testing.T) {
	if p := SafeProbability(1000000, 1, 1); p != 0 {
		t.Fatalf("oversaturated unsafe probability should clamp: %v", p)
	}
	if p := SafeProbability(0, 5, 5); p != 1 {
		t.Fatalf("no query edges -> always safe: %v", p)
	}
	if p := SafeProbability(6, 0, 0); p < 0 || p > 1 {
		t.Fatalf("degenerate alphabets: %v", p)
	}
}

func TestReferenceTable(t *testing.T) {
	rows := ReferenceTable()
	if len(rows) != 10 {
		t.Fatalf("Table 1 has %d CPU rows, want 10", len(rows))
	}
	parallel := map[string]bool{}
	for _, r := range rows {
		parallel[r.System] = r.Parallel
	}
	// Spot-check Table 1's parallelism column.
	for sys, want := range map[string]bool{
		"TurboFlux": false, "Symbi": false, "CaLiG": false, "NewSP": false,
		"Graphflow": true, "Mnemonic": true, "RapidFlow": true,
	} {
		if parallel[sys] != want {
			t.Fatalf("%s parallel = %v, want %v", sys, parallel[sys], want)
		}
	}
}
