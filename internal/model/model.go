// Package model implements the analytical results of §4.3 of the ParaCOSM
// paper: the two-level speedup model (Equations 1-3), the label-filtering
// estimate of the safe-update probability, and the complexity reference
// table (Table 1).
package model

// Params are the inputs of the speedup model.
type Params struct {
	Updates int     // |ΔG|
	Gamma   float64 // γ, ratio of safe updates
	TADS    float64 // per-update ADS maintenance time (arbitrary unit)
	TFM     float64 // per-update match enumeration time
	M       int     // threads for ADS maintenance
	N       int     // threads for match search
}

// Runtime evaluates Equation (1)/(2):
//
//	T = |ΔG| [ (1 + γ(1/M - 1)) T_ADS + ((1-γ)/N) T_FM ]
//
// Unsafe updates pay both T_ADS and T_FM/N; safe updates pay only the
// M-way-parallel ADS maintenance.
func Runtime(p Params) float64 {
	if p.M < 1 {
		p.M = 1
	}
	if p.N < 1 {
		p.N = 1
	}
	adsCoef := 1 + p.Gamma*(1/float64(p.M)-1)
	fmCoef := (1 - p.Gamma) / float64(p.N)
	return float64(p.Updates) * (adsCoef*p.TADS + fmCoef*p.TFM)
}

// Coefficients returns the (T_ADS, T_FM) multipliers of Equation (2). For
// the paper's worked example (N = M = 10, γ = 0.4) they are 0.64 and 0.06
// (Equation 3).
func Coefficients(p Params) (adsCoef, fmCoef float64) {
	if p.M < 1 {
		p.M = 1
	}
	if p.N < 1 {
		p.N = 1
	}
	return 1 + p.Gamma*(1/float64(p.M)-1), (1 - p.Gamma) / float64(p.N)
}

// Speedup returns the model's predicted speedup over single-threaded
// execution (M = N = 1) at the same γ: safe updates skip T_FM in both
// configurations, so the sequential baseline is γ·T_ADS + (1-γ)(T_ADS+T_FM).
func Speedup(p Params) float64 {
	seq := p
	seq.M, seq.N = 1, 1
	t := Runtime(p)
	if t == 0 {
		return 0
	}
	return Runtime(seq) / t
}

// SafeProbability estimates P(safe) via uniform-label filtering (§4.3):
// an inserted edge is unsafe only if its label triple matches one of the
// |E(Q)| query edges, each with probability 1/(|L_E|·|L_V|²).
func SafeProbability(queryEdges, vertexLabels, edgeLabels int) float64 {
	if vertexLabels < 1 {
		vertexLabels = 1
	}
	if edgeLabels < 1 {
		edgeLabels = 1
	}
	pUnsafe := float64(queryEdges) / (float64(edgeLabels) * float64(vertexLabels) * float64(vertexLabels))
	if pUnsafe > 1 {
		pUnsafe = 1
	}
	return 1 - pUnsafe
}

// Complexity describes one row of Table 1.
type Complexity struct {
	System     string
	Parallel   bool
	IndexCost  string // asymptotic ADS update cost per graph update
	SearchCost string // asymptotic match-finding cost
	Backtrack  bool   // true = backtracking search, false = join-based
}

// ReferenceTable returns the CPU rows of Table 1.
func ReferenceTable() []Complexity {
	return []Complexity{
		{System: "IncIsoMatch", Parallel: false, IndexCost: "recomputation", SearchCost: "n/a", Backtrack: true},
		{System: "SJ-Tree", Parallel: true, IndexCost: "O(|E(G)|^|E(Q)|)", SearchCost: "O(|E(G)|^|E(Q)|)", Backtrack: false},
		{System: "Graphflow", Parallel: true, IndexCost: "O(1)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: false},
		{System: "TurboFlux", Parallel: false, IndexCost: "O(|E(G)||V(Q)|)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: true},
		{System: "IEDyn", Parallel: false, IndexCost: "O(|E(G)||V(Q)|)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: true},
		{System: "Symbi", Parallel: false, IndexCost: "O(|E(G)||E(Q)|)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: true},
		{System: "RapidFlow", Parallel: true, IndexCost: "O(|E(G)||E(Q)|)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: true},
		{System: "Mnemonic", Parallel: true, IndexCost: "O(1)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: true},
		{System: "CaLiG", Parallel: false, IndexCost: "O(|E(G)||E(Q)|)", SearchCost: "O(|V(G)|^K)", Backtrack: true},
		{System: "NewSP", Parallel: false, IndexCost: "O(1)", SearchCost: "O(d(G)^|V(Q)|)", Backtrack: true},
	}
}
