// Package wal is the durability layer of the serving stack (DESIGN.md
// §16): a write-ahead log of accepted updates and registration changes,
// periodic snapshots of the shared graph + standing queries, and the
// recovery scan that replays the log tail after a crash.
//
// The log is a sequence of framed text records, one per line:
//
//	<lsn> <crc32-hex8> <kind> <len> <payload>\n
//
// where lsn is the monotone log sequence number (records in one
// directory are numbered 1,2,3,... with no gaps), the CRC32 (IEEE)
// covers "<lsn> <kind> <payload>", kind is a single byte ('u' update,
// 'r' register, 'd' deregister), and len is the payload byte length.
// Update payloads reuse the internal/stream text codec ("+e u v l",
// "-e u v", ...), so a WAL's update records are directly replayable
// through the batch CLI; register/deregister payloads are one-line JSON.
// Payloads must not contain newlines — the frame boundary is the line
// boundary, which is what makes a torn final record (a crash mid-write)
// detectable and truncatable without a length-prefixed binary format.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
)

// Kind discriminates the record types in the log.
type Kind byte

const (
	// KindUpdate is one accepted graph update (stream text codec).
	KindUpdate Kind = 'u'
	// KindRegister is one standing-query registration (JSON RegPayload).
	KindRegister Kind = 'r'
	// KindDeregister drops a standing query (JSON-encoded name string).
	KindDeregister Kind = 'd'
)

func (k Kind) valid() bool {
	return k == KindUpdate || k == KindRegister || k == KindDeregister
}

// Record is one framed log entry. LSN is assigned by Log.Append; the
// payload's interpretation depends on Kind.
type Record struct {
	LSN     uint64
	Kind    Kind
	Payload []byte
}

// errTorn marks an incomplete record at the end of a buffer: the frame
// has no terminating newline, i.e. the process died mid-write. Recovery
// truncates the file at the last complete record and continues.
var errTorn = errors.New("wal: torn record")

// crcRecord computes the record checksum: CRC32 (IEEE) over the decimal
// LSN, the kind byte and the payload, space-separated — everything the
// frame carries except the length field (implied by the payload) and the
// checksum itself.
func crcRecord(lsn uint64, kind Kind, payload []byte) uint32 {
	var hdr [24]byte
	h := strconv.AppendUint(hdr[:0], lsn, 10)
	h = append(h, ' ', byte(kind), ' ')
	crc := crc32.Update(0, crc32.IEEETable, h)
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// appendRecord encodes r onto buf and returns the extended buffer. The
// payload must not contain a newline (see the package comment); Append
// validates that before encoding, so this low-level helper assumes it.
func appendRecord(buf []byte, r Record) []byte {
	buf = strconv.AppendUint(buf, r.LSN, 10)
	buf = append(buf, ' ')
	crc := crcRecord(r.LSN, r.Kind, r.Payload)
	buf = appendHex8(buf, crc)
	buf = append(buf, ' ', byte(r.Kind), ' ')
	buf = strconv.AppendUint(buf, uint64(len(r.Payload)), 10)
	buf = append(buf, ' ')
	buf = append(buf, r.Payload...)
	buf = append(buf, '\n')
	return buf
}

// appendHex8 appends crc as exactly eight lowercase hex digits.
func appendHex8(buf []byte, crc uint32) []byte {
	const hexdigits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		buf = append(buf, hexdigits[(crc>>uint(shift))&0xf])
	}
	return buf
}

// decodeOne parses the first record in buf, returning it and the bytes
// consumed. It returns errTorn when buf holds no complete line (the
// torn-tail case) and a descriptive error for a structurally broken or
// checksum-failing frame. The payload aliases buf.
func decodeOne(buf []byte) (Record, int, error) {
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		return Record{}, 0, errTorn
	}
	line := buf[:nl]
	// Header fields are positional: lsn, crc, kind, len, then the payload
	// (which may itself contain spaces).
	f1 := bytes.IndexByte(line, ' ')
	if f1 < 0 {
		return Record{}, 0, fmt.Errorf("wal: record missing crc field")
	}
	rest := line[f1+1:]
	f2 := bytes.IndexByte(rest, ' ')
	if f2 < 0 {
		return Record{}, 0, fmt.Errorf("wal: record missing kind field")
	}
	rest2 := rest[f2+1:]
	f3 := bytes.IndexByte(rest2, ' ')
	if f3 < 0 {
		return Record{}, 0, fmt.Errorf("wal: record missing length field")
	}
	rest3 := rest2[f3+1:]
	f4 := bytes.IndexByte(rest3, ' ')
	if f4 < 0 {
		return Record{}, 0, fmt.Errorf("wal: record missing payload separator")
	}
	lsn, err := strconv.ParseUint(string(line[:f1]), 10, 64)
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal: bad record lsn %q", line[:f1])
	}
	crcWant, err := strconv.ParseUint(string(rest[:f2]), 16, 32)
	if err != nil || f2 != 8 {
		return Record{}, 0, fmt.Errorf("wal: bad record crc %q", rest[:f2])
	}
	if f3 != 1 || !Kind(rest2[0]).valid() {
		return Record{}, 0, fmt.Errorf("wal: bad record kind %q", rest2[:f3])
	}
	kind := Kind(rest2[0])
	plen, err := strconv.ParseUint(string(rest3[:f4]), 10, 31)
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal: bad record length %q", rest3[:f4])
	}
	payload := rest3[f4+1:]
	if uint64(len(payload)) != plen {
		return Record{}, 0, fmt.Errorf("wal: record lsn %d: payload is %d bytes, header says %d", lsn, len(payload), plen)
	}
	if got := crcRecord(lsn, kind, payload); uint32(crcWant) != got {
		return Record{}, 0, fmt.Errorf("wal: record lsn %d: crc mismatch (want %08x, got %08x)", lsn, crcWant, got)
	}
	return Record{LSN: lsn, Kind: kind, Payload: payload}, nl + 1, nil
}

// scanRecords walks buf record by record, calling fn for each valid one,
// and returns the byte length of the longest valid prefix plus the last
// LSN seen. expect is the LSN the first record must carry (0 accepts
// any); each subsequent record must be exactly previous+1 — a jump means
// lost bytes, which is treated like corruption: the scan stops at the
// last contiguous record. A torn or corrupt frame ends the scan without
// error (the tail error is returned separately so callers can
// distinguish clean EOF from truncation).
func scanRecords(buf []byte, expect uint64, fn func(Record) error) (validLen int, last uint64, tailErr error, err error) {
	off := 0
	last = expect - 1
	if expect == 0 {
		last = 0
	}
	for off < len(buf) {
		rec, n, derr := decodeOne(buf[off:])
		if derr != nil {
			return off, last, derr, nil
		}
		if expect == 0 {
			expect = rec.LSN
			last = rec.LSN - 1
		}
		if rec.LSN != last+1 {
			return off, last, fmt.Errorf("wal: record lsn %d out of sequence (want %d)", rec.LSN, last+1), nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, last, nil, err
			}
		}
		last = rec.LSN
		off += n
	}
	return off, last, nil, nil
}
