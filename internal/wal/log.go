package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"paracosm/internal/stream"
)

// SyncPolicy selects when appended records are fsynced. Independent of
// the policy, Append always waits for the records to be written to the
// OS (write(2)) before returning — log-before-apply, which makes the
// log complete against process death (kill -9: the page cache survives).
// fsync governs the stronger power-loss/kernel-crash durability.
type SyncPolicy int

const (
	// SyncInterval (the default) batches fsync on a group-commit cadence:
	// the flusher goroutine syncs at most once per Options.Interval, so
	// many appends share one disk flush.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before every Append returns (each append may
	// still cover a whole group of records queued behind it).
	SyncAlways
	// SyncOff never fsyncs automatically (Sync still forces one).
	SyncOff
)

// String returns the -fsync flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return "interval"
}

// ParsePolicy parses the -fsync flag value.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want interval, always or off)", s)
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy (SyncInterval when zero).
	Policy SyncPolicy
	// Interval is the group-commit fsync cadence under SyncInterval
	// (50ms when zero).
	Interval time.Duration
}

func (o *Options) normalize() {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
}

const (
	segSuffix  = ".wal"
	snapSuffix = ".pcsnap"
)

// segName formats the segment filename for its first LSN; the fixed-width
// decimal keeps lexicographic and numeric order identical.
func segName(first uint64) string {
	return fmt.Sprintf("%020d%s", first, segSuffix)
}

// segment is one on-disk log file, named by the LSN of its first record
// (so an empty active segment still pins the next LSN across restarts).
type segment struct {
	first uint64
	path  string
}

// Metrics is a counter snapshot for the paracosm_wal_* series.
type Metrics struct {
	Records  uint64 // records appended since open
	Bytes    uint64 // encoded bytes appended since open
	Flushes  uint64 // write(2) calls by the flusher
	Fsyncs   uint64 // fsync calls
	LastLSN  uint64 // highest assigned LSN
	Segments int    // live segment files
}

// Log is an append-only segmented write-ahead log. Appends from any
// goroutine are serialized into a pending buffer and written by one
// dedicated flusher goroutine (joined by Close), so concurrent appenders
// group-commit: one write(2) — and under the sync policies one fsync —
// covers every record queued while the previous flush was in progress.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // paired with mu; broadcast when written/synced advance
	pending []byte     // guarded by mu — encoded records awaiting write(2)
	nextLSN uint64     // guarded by mu — next LSN to assign
	written uint64     // guarded by mu — highest LSN written to the OS
	synced  uint64     // guarded by mu — highest LSN covered by an fsync
	syncReq uint64     // guarded by mu — explicit Sync barrier target
	closed  bool       // guarded by mu
	err     error      // guarded by mu — first terminal I/O error (log is dead after)
	f       *os.File   // guarded by mu — the active segment (all I/O runs under mu)
	segs    []segment  // guarded by mu — all segments, ascending by first LSN

	wake chan struct{} // 1-buffered flusher doorbell
	done chan struct{} // closed when flushLoop exits

	records atomic.Uint64
	bytes   atomic.Uint64
	flushes atomic.Uint64
	fsyncs  atomic.Uint64
}

// Open opens (or creates) the log in dir, validates the existing
// segments, truncates a torn tail off the last one, and starts the
// flusher goroutine. The returned log appends after the last valid
// record. Call Replay before the first Append to read the existing
// records back.
func Open(dir string, opts Options) (*Log, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.recoverSegments(segs); err != nil {
		return nil, err
	}
	go l.flushLoop()
	return l, nil
}

// recoverSegments validates the on-disk segments, truncates a torn tail
// off the last one, and seats the LSN cursors. Runs under mu only to
// honor the guarded-field contract — the flusher has not started yet.
func (l *Log) recoverSegments(segs []segment) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.segs = segs
	if len(l.segs) == 0 {
		l.segs = []segment{{first: 1, path: filepath.Join(l.dir, segName(1))}}
	}
	// Validate every segment: interior segments must be fully intact (a
	// crash only ever tears the file being appended), the last one may
	// carry a torn tail, which is truncated to the longest valid prefix.
	next := l.segs[0].first
	for i, seg := range l.segs {
		buf, err := os.ReadFile(seg.path)
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: %w", err)
		}
		validLen, last, tailErr, _ := scanRecords(buf, seg.first, nil)
		if tailErr != nil {
			if i != len(l.segs)-1 {
				return fmt.Errorf("wal: segment %s corrupt mid-log: %w", filepath.Base(seg.path), tailErr)
			}
			if err := os.Truncate(seg.path, int64(validLen)); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		if len(buf[:validLen]) > 0 {
			next = last + 1
		} else {
			next = seg.first
		}
	}
	l.nextLSN = next
	l.written = next - 1
	l.synced = next - 1
	active := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	return nil
}

// listSegments returns dir's segment files ascending by first LSN.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: stray segment file %q", name)
		}
		segs = append(segs, segment{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Append assigns consecutive LSNs to recs (in place), queues them for
// the flusher and blocks until they are written to the OS — and, under
// SyncAlways, fsynced. Returns the last assigned LSN.
func (l *Log) Append(recs []Record) (last uint64, err error) {
	if len(recs) == 0 {
		return l.LastLSN(), nil
	}
	for _, r := range recs {
		if bytes.IndexByte(r.Payload, '\n') >= 0 {
			return 0, fmt.Errorf("wal: payload contains newline")
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log closed")
	}
	nbytes := len(l.pending)
	for i := range recs {
		recs[i].LSN = l.nextLSN
		l.nextLSN++
		l.pending = appendRecord(l.pending, recs[i])
	}
	last = l.nextLSN - 1
	l.records.Add(uint64(len(recs)))
	l.bytes.Add(uint64(len(l.pending) - nbytes))
	l.mu.Unlock()
	l.kick()
	return last, l.waitDurable(last)
}

// AppendUpdates appends one KindUpdate record per update, encoding the
// stream text codec directly into the pending buffer (no per-record
// payload allocation — this is the serving hot path's durability point).
// Same blocking contract as Append.
func (l *Log) AppendUpdates(s stream.Stream) (last uint64, err error) {
	if len(s) == 0 {
		return l.LastLSN(), nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log closed")
	}
	nbytes := len(l.pending)
	var payload [64]byte
	for _, u := range s {
		p := appendUpdate(payload[:0], u)
		l.pending = appendRecord(l.pending, Record{LSN: l.nextLSN, Kind: KindUpdate, Payload: p})
		l.nextLSN++
	}
	last = l.nextLSN - 1
	l.records.Add(uint64(len(s)))
	l.bytes.Add(uint64(len(l.pending) - nbytes))
	l.mu.Unlock()
	l.kick()
	return last, l.waitDurable(last)
}

// appendUpdate encodes u in the stream text codec onto buf (the same
// lines stream.Stream.Write emits, without an allocation per update).
func appendUpdate(buf []byte, u stream.Update) []byte {
	switch u.Op {
	case stream.AddEdge:
		buf = append(buf, '+', 'e', ' ')
		buf = strconv.AppendUint(buf, uint64(u.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(u.V), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(u.ELabel), 10)
	case stream.DeleteEdge:
		buf = append(buf, '-', 'e', ' ')
		buf = strconv.AppendUint(buf, uint64(u.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(u.V), 10)
	case stream.AddVertex:
		buf = append(buf, '+', 'v', ' ')
		buf = strconv.AppendUint(buf, uint64(u.VLabel), 10)
	case stream.DeleteVertex:
		buf = append(buf, '-', 'v', ' ')
		buf = strconv.AppendUint(buf, uint64(u.U), 10)
	}
	return buf
}

// waitDurable blocks until target is written (and fsynced under
// SyncAlways) or the log hits a terminal error.
func (l *Log) waitDurable(target uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.err == nil && l.written < target {
		l.cond.Wait()
	}
	if l.opts.Policy == SyncAlways {
		for l.err == nil && l.synced < target {
			l.cond.Wait()
		}
	}
	return l.err
}

// kick rings the flusher doorbell without blocking (capacity-1 channel:
// a pending wake already covers this work).
func (l *Log) kick() {
	//lint:ignore chandrop best-effort doorbell: a buffered wake already covers this flush
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Sync forces an fsync covering every record appended so far and blocks
// until it completes — the flush-barrier durability point under
// SyncInterval (explicit Sync outranks the policy, including SyncOff).
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.nextLSN - 1
	if l.syncReq < target {
		l.syncReq = target
	}
	l.mu.Unlock()
	l.kick()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.err == nil && l.synced < target {
		l.cond.Wait()
	}
	return l.err
}

// flushLoop is the dedicated flusher goroutine: it drains the pending
// buffer with one write(2) per wakeup (group commit) and applies the
// fsync policy. It exits when Close has been called and the buffer is
// drained; Close joins it through the done channel.
func (l *Log) flushLoop() {
	defer close(l.done)
	var tick <-chan time.Time
	if l.opts.Policy == SyncInterval {
		t := time.NewTicker(l.opts.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		syncDue := false
		select {
		case <-l.wake:
		case <-tick:
			syncDue = true
		}
		if l.flushOnce(syncDue) {
			return
		}
	}
}

// flushOnce performs one flusher iteration under the lock; reports true
// when the log is closed and fully drained.
func (l *Log) flushOnce(syncDue bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) > 0 && l.err == nil {
		if _, err := l.f.Write(l.pending); err != nil {
			l.err = fmt.Errorf("wal: write: %w", err)
		} else {
			l.written = l.nextLSN - 1
			l.flushes.Add(1)
		}
		l.pending = l.pending[:0]
	}
	needSync := l.err == nil && l.synced < l.written &&
		(l.opts.Policy == SyncAlways || syncDue || l.syncReq > l.synced)
	if needSync {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		} else {
			l.synced = l.written
			l.fsyncs.Add(1)
		}
	}
	l.cond.Broadcast()
	return l.closed && len(l.pending) == 0
}

// Replay streams every record with LSN > after to fn, in order. Must be
// called before the first Append (recovery runs before serving), while
// the segment files are quiescent. fn's error aborts the scan.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	for _, seg := range segs {
		buf, err := os.ReadFile(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("wal: %w", err)
		}
		_, _, tailErr, err := scanRecords(buf, seg.first, func(r Record) error {
			if r.LSN <= after {
				return nil
			}
			return fn(r)
		})
		if err != nil {
			return err
		}
		// tailErr here means the tail was already truncated by Open and
		// nothing has been appended since — impossible unless the file
		// changed under us, which the Replay-before-Append contract rules
		// out. Surface it rather than silently under-replaying.
		if tailErr != nil {
			return fmt.Errorf("wal: segment %s changed during replay: %w", filepath.Base(seg.path), tailErr)
		}
	}
	return nil
}

// LastLSN returns the highest assigned LSN (0 when the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Rotate seals the active segment (draining pending writes and syncing
// it) and opens a new one starting at the next LSN. Callers serialize
// Rotate against their own Appends; the snapshot path runs it before
// capturing the snapshot LSN so the sealed segments hold exactly the
// records the snapshot covers.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	for l.err == nil && l.written < l.nextLSN-1 {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.synced < l.written && l.opts.Policy != SyncOff {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
			return l.err
		}
		l.synced = l.written
		l.fsyncs.Add(1)
	}
	if l.segs[len(l.segs)-1].first == l.nextLSN {
		// The active segment is empty — it already starts at the next LSN,
		// so rotating would just reopen the same file. Nothing to seal.
		return nil
	}
	seg := segment{first: l.nextLSN, path: filepath.Join(l.dir, segName(l.nextLSN))}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, seg)
	return nil
}

// RemoveObsolete deletes sealed segments fully covered by a snapshot at
// snapLSN: a segment is removable when it is not the active one and the
// following segment starts at or below snapLSN+1 (so no record above
// snapLSN is lost). Called after a snapshot has been durably written.
func (l *Log) RemoveObsolete(snapLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.segs[:0]
	for i, seg := range l.segs {
		if i < len(l.segs)-1 && l.segs[i+1].first <= snapLSN+1 {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				// Keep it in the list; a leftover segment is re-candidates
				// on the next snapshot and harmless to recovery.
				keep = append(keep, seg)
				continue
			}
			continue
		}
		keep = append(keep, seg)
	}
	l.segs = keep
	return nil
}

// Close drains and joins the flusher goroutine, issues a final fsync
// (unless the policy is SyncOff) and closes the active segment. Safe to
// call more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.err
	}
	l.closed = true
	l.mu.Unlock()
	l.kick()
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil && l.synced < l.written && l.opts.Policy != SyncOff {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		} else {
			l.synced = l.written
			l.fsyncs.Add(1)
		}
	}
	if err := l.f.Close(); err != nil && l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
	}
	return l.err
}

// Metrics returns a counter snapshot for the paracosm_wal_* series.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	lsn := l.nextLSN - 1
	nsegs := len(l.segs)
	l.mu.Unlock()
	return Metrics{
		Records:  l.records.Load(),
		Bytes:    l.bytes.Load(),
		Flushes:  l.flushes.Load(),
		Fsyncs:   l.fsyncs.Load(),
		LastLSN:  lsn,
		Segments: nsegs,
	}
}
