package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"paracosm/internal/graph"
)

// A snapshot captures the serving state at one log position: the shared
// data graph (exact slot state, deleted vertices included), every
// standing query's registration payload, its per-query produced-delta
// watermark (the durable Seq resume point) and its cumulative stats
// baseline. Text format, one section per line group:
//
//	pcsnap v1
//	lsn <snapLSN>
//	graph
//	<graph.WriteState body>
//	queries <n>
//	<n one-line JSON QueryState rows>
//	end <crc32-hex8 of every byte above>
//
// The trailing CRC line is what makes a snapshot *valid*: a crash while
// writing leaves a file without it (or with a mismatching digest), and
// recovery falls back to the previous snapshot. Written atomically:
// temp file in the same directory, fsync, rename, directory fsync.

// RegPayload is the registration record payload (KindRegister) and the
// registration half of a QueryState: everything needed to rebuild the
// query server-side without the original client.
type RegPayload struct {
	Name   string      `json:"name"`
	Algo   string      `json:"algo"`
	Labels []uint32    `json:"labels"`
	Edges  [][3]uint32 `json:"edges"`
}

// QueryState is one standing query's snapshot row: its registration,
// the produced-delta watermark Seq resumes from, and the stats baseline
// recovery seeds so /queries totals stay monotonic across a restart.
type QueryState struct {
	RegPayload
	Produced uint64 `json:"produced"`

	Updates     int    `json:"updates"`
	Safe        int    `json:"safe"`
	Unsafe      int    `json:"unsafe"`
	Escalations int    `json:"escalations"`
	Positive    uint64 `json:"positive"`
	Negative    uint64 `json:"negative"`
	Nodes       uint64 `json:"nodes"`
}

// Snapshot is a loaded snapshot: the state to rebuild before replaying
// records with LSN > LSN.
type Snapshot struct {
	LSN     uint64
	Graph   *graph.Graph
	Queries []QueryState
}

func snapName(lsn uint64) string {
	return fmt.Sprintf("%020d%s", lsn, snapSuffix)
}

// crcWriter tees writes into a running CRC32 so the snapshot digest is
// computed in one pass with the serialization.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// WriteSnapshot atomically writes a snapshot at lsn into dir and returns
// its path. The caller guarantees g and queries are a consistent cut at
// lsn (no record ≤ lsn unapplied, none > lsn applied).
func WriteSnapshot(dir string, lsn uint64, g *graph.Graph, queries []QueryState) (string, error) {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	cw := &crcWriter{w: bufio.NewWriter(tmp)}
	werr := func() error {
		if _, err := fmt.Fprintf(cw, "pcsnap v1\nlsn %d\ngraph\n", lsn); err != nil {
			return err
		}
		if err := g.WriteState(cw); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(cw, "queries %d\n", len(queries)); err != nil {
			return err
		}
		for _, q := range queries {
			row, err := json.Marshal(q)
			if err != nil {
				return err
			}
			if _, err := cw.Write(append(row, '\n')); err != nil {
				return err
			}
		}
		// The end line authenticates everything above it (it is excluded
		// from its own digest).
		if _, err := fmt.Fprintf(cw.w, "end %08x\n", cw.crc); err != nil {
			return err
		}
		if err := cw.w.Flush(); err != nil {
			return err
		}
		return tmp.Sync()
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("wal: snapshot: %w", werr)
	}
	path := filepath.Join(dir, snapName(lsn))
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// LoadSnapshot loads the newest valid snapshot in dir, or (nil, nil)
// when none exists. Invalid snapshots (torn write, digest mismatch) are
// skipped in favor of older valid ones — the crash-between-write-and-
// rename window never loses recoverability, only freshness that the log
// replay restores anyway.
func LoadSnapshot(dir string) (*Snapshot, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var lsns []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(name, snapSuffix), 10, 64)
		if err != nil {
			continue // stray file; not ours
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	var firstErr error
	for _, lsn := range lsns {
		s, err := readSnapshot(filepath.Join(dir, snapName(lsn)))
		if err == nil {
			return s, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if len(lsns) > 0 {
		return nil, fmt.Errorf("wal: no valid snapshot among %d candidates: %w", len(lsns), firstErr)
	}
	return nil, nil
}

// RemoveSnapshotsBefore deletes snapshots older than lsn (the newest one
// is always kept); called after a new snapshot lands.
func RemoveSnapshotsBefore(dir string, lsn uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		old, err := strconv.ParseUint(strings.TrimSuffix(name, snapSuffix), 10, 64)
		if err != nil || old >= lsn {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// Validate the trailing end line first: everything before it must
	// digest to the recorded CRC.
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("wal: snapshot %s: truncated", filepath.Base(path))
	}
	body := data[:len(data)-1]
	nl := bytes.LastIndexByte(body, '\n')
	endLine := string(body[nl+1:])
	body = data[:nl+1] // includes the newline ending the authenticated region
	want, ok := strings.CutPrefix(endLine, "end ")
	if !ok {
		return nil, fmt.Errorf("wal: snapshot %s: missing end marker", filepath.Base(path))
	}
	crcWant, err := strconv.ParseUint(want, 16, 32)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: bad end digest %q", filepath.Base(path), want)
	}
	if got := crc32.ChecksumIEEE(body); uint32(crcWant) != got {
		return nil, fmt.Errorf("wal: snapshot %s: digest mismatch", filepath.Base(path))
	}
	r := bufio.NewReader(bytes.NewReader(body))
	line := func() (string, error) {
		s, err := r.ReadString('\n')
		return strings.TrimSuffix(s, "\n"), err
	}
	hdr, err := line()
	if err != nil || hdr != "pcsnap v1" {
		return nil, fmt.Errorf("wal: snapshot %s: bad header %q", filepath.Base(path), hdr)
	}
	lsnLine, err := line()
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
	}
	lsnStr, ok := strings.CutPrefix(lsnLine, "lsn ")
	if !ok {
		return nil, fmt.Errorf("wal: snapshot %s: missing lsn line", filepath.Base(path))
	}
	lsn, err := strconv.ParseUint(lsnStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: bad lsn %q", filepath.Base(path), lsnStr)
	}
	if g, err := line(); err != nil || g != "graph" {
		return nil, fmt.Errorf("wal: snapshot %s: missing graph section", filepath.Base(path))
	}
	g, err := graph.ReadState(r)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
	}
	qLine, err := line()
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
	}
	nStr, ok := strings.CutPrefix(qLine, "queries ")
	if !ok {
		return nil, fmt.Errorf("wal: snapshot %s: missing queries section", filepath.Base(path))
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("wal: snapshot %s: bad query count %q", filepath.Base(path), nStr)
	}
	queries := make([]QueryState, 0, n)
	for i := 0; i < n; i++ {
		row, err := line()
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: query row %d: %w", filepath.Base(path), i, err)
		}
		var q QueryState
		if err := json.Unmarshal([]byte(row), &q); err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: query row %d: %w", filepath.Base(path), i, err)
		}
		queries = append(queries, q)
	}
	return &Snapshot{LSN: lsn, Graph: g, Queries: queries}, nil
}
