package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paracosm/internal/graph"
)

// testGraph builds a small graph with a deleted vertex, so the snapshot
// codec must preserve exact slot state, not just live topology.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(0)
	for i := 0; i < 5; i++ {
		g.AddVertex(graph.Label(i % 3))
	}
	g.AddEdge(0, 1, 7)
	g.AddEdge(1, 2, 8)
	g.AddEdge(3, 4, 9)
	g.RemoveEdge(1, 2)
	g.DeleteVertex(2)
	return g
}

func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape: got |V|=%d |E|=%d, want |V|=%d |E|=%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := 0; v < want.NumVertices(); v++ {
		if got.Label(graph.VertexID(v)) != want.Label(graph.VertexID(v)) {
			t.Fatalf("vertex %d label: got %d, want %d", v, got.Label(graph.VertexID(v)), want.Label(graph.VertexID(v)))
		}
	}
	for u := 0; u < want.NumVertices(); u++ {
		for v := u + 1; v < want.NumVertices(); v++ {
			if got.HasEdge(graph.VertexID(u), graph.VertexID(v)) != want.HasEdge(graph.VertexID(u), graph.VertexID(v)) {
				t.Fatalf("edge (%d,%d) presence differs", u, v)
			}
		}
	}
}

func testQueries() []QueryState {
	return []QueryState{
		{
			RegPayload: RegPayload{Name: "q1", Algo: "Symbi", Labels: []uint32{0, 1}, Edges: [][3]uint32{{0, 1, 7}}},
			Produced:   42, Updates: 100, Safe: 90, Unsafe: 10, Escalations: 2, Positive: 33, Negative: 9, Nodes: 1234,
		},
		{
			RegPayload: RegPayload{Name: "q2", Algo: "GraphFlow", Labels: []uint32{2}, Edges: nil},
			Produced:   0,
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	qs := testQueries()
	path, err := WriteSnapshot(dir, 17, g, qs)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != snapName(17) {
		t.Fatalf("snapshot path %q", path)
	}
	s, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.LSN != 17 {
		t.Fatalf("loaded %+v, want lsn 17", s)
	}
	sameGraph(t, s.Graph, g)
	if len(s.Queries) != 2 {
		t.Fatalf("loaded %d queries, want 2", len(s.Queries))
	}
	q := s.Queries[0]
	if q.Name != "q1" || q.Algo != "Symbi" || q.Produced != 42 || q.Updates != 100 ||
		q.Safe != 90 || q.Unsafe != 10 || q.Escalations != 2 ||
		q.Positive != 33 || q.Negative != 9 || q.Nodes != 1234 {
		t.Fatalf("query row 0 = %+v", q)
	}
	if len(q.Labels) != 2 || len(q.Edges) != 1 || q.Edges[0] != [3]uint32{0, 1, 7} {
		t.Fatalf("query row 0 payload = %+v", q.RegPayload)
	}
}

func TestSnapshotEmptyDir(t *testing.T) {
	s, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing"))
	if err != nil || s != nil {
		t.Fatalf("LoadSnapshot on missing dir = %+v, %v; want nil, nil", s, err)
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	if _, err := WriteSnapshot(dir, 10, g, nil); err != nil {
		t.Fatal(err)
	}
	newer, err := WriteSnapshot(dir, 20, g, testQueries())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newer snapshot: flip one byte in the middle. Loading must
	// fall back to the older valid one.
	buf, err := os.ReadFile(newer)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(newer, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.LSN != 10 {
		t.Fatalf("fallback loaded %+v, want lsn 10", s)
	}

	// A torn newest snapshot (no end line at all) also falls back.
	if err := os.WriteFile(filepath.Join(dir, snapName(30)), buf[:len(buf)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = LoadSnapshot(dir)
	if err != nil || s == nil || s.LSN != 10 {
		t.Fatalf("torn fallback loaded %+v, %v; want lsn 10", s, err)
	}
}

func TestSnapshotAllCorruptErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName(5)), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(dir); err == nil || !strings.Contains(err.Error(), "no valid snapshot") {
		t.Fatalf("LoadSnapshot = %v, want no-valid-snapshot error", err)
	}
}

func TestRemoveSnapshotsBefore(t *testing.T) {
	dir := t.TempDir()
	g := graph.New(0)
	for _, lsn := range []uint64{5, 10, 15} {
		if _, err := WriteSnapshot(dir, lsn, g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveSnapshotsBefore(dir, 15); err != nil {
		t.Fatal(err)
	}
	for _, lsn := range []uint64{5, 10} {
		if _, err := os.Stat(filepath.Join(dir, snapName(lsn))); !os.IsNotExist(err) {
			t.Fatalf("snapshot %d not removed", lsn)
		}
	}
	s, err := LoadSnapshot(dir)
	if err != nil || s == nil || s.LSN != 15 {
		t.Fatalf("after GC: %+v, %v; want lsn 15", s, err)
	}
}
