package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"paracosm/internal/stream"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Kind: KindUpdate, Payload: []byte("+e 0 1 2")},
		{LSN: 2, Kind: KindRegister, Payload: []byte(`{"name":"q1","algo":"Symbi","labels":[0,1],"edges":[[0,1,0]]}`)},
		{LSN: 3, Kind: KindDeregister, Payload: []byte(`"q1"`)},
		{LSN: 4, Kind: KindUpdate, Payload: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeOne(buf[off:])
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got.LSN != want.LSN || got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d round-trip: got %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestRecordCorruptionRejected(t *testing.T) {
	base := appendRecord(nil, Record{LSN: 7, Kind: KindUpdate, Payload: []byte("+e 10 20 3")})
	// Flipping any single byte of the frame must fail decoding — either the
	// CRC catches it or the frame structure breaks.
	for i := 0; i < len(base)-1; i++ { // skip the newline: that is the torn case
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x01
		if rec, _, err := decodeOne(mut); err == nil {
			t.Fatalf("byte %d flipped: decoded %+v, want error", i, rec)
		}
	}
}

func TestRecordTornTail(t *testing.T) {
	var buf []byte
	for i := 1; i <= 5; i++ {
		buf = appendRecord(buf, Record{LSN: uint64(i), Kind: KindUpdate, Payload: []byte(fmt.Sprintf("+e %d %d 1", i, i+1))})
	}
	// Any cut strictly inside the last record must recover exactly the
	// records fully before the cut.
	full := len(buf)
	lastStart := bytes.LastIndexByte(buf[:full-1], '\n') + 1
	for cut := lastStart + 1; cut < full; cut++ {
		var got int
		validLen, last, tailErr, err := scanRecords(buf[:cut], 1, func(Record) error { got++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if tailErr != errTorn {
			t.Fatalf("cut %d: tailErr = %v, want errTorn", cut, tailErr)
		}
		if got != 4 || last != 4 || validLen != lastStart {
			t.Fatalf("cut %d: recovered %d records (last %d, validLen %d), want 4/%d/%d", cut, got, last, validLen, 4, lastStart)
		}
	}
}

func TestScanRecordsLSNGap(t *testing.T) {
	buf := appendRecord(nil, Record{LSN: 1, Kind: KindUpdate, Payload: []byte("+v 0")})
	buf = appendRecord(buf, Record{LSN: 3, Kind: KindUpdate, Payload: []byte("+v 1")})
	_, last, tailErr, err := scanRecords(buf, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if last != 1 || tailErr == nil {
		t.Fatalf("gap scan: last %d, tailErr %v; want 1 and out-of-sequence error", last, tailErr)
	}
}

func mustUpdates(t *testing.T, lines ...string) stream.Stream {
	t.Helper()
	var s stream.Stream
	for _, ln := range lines {
		u, err := stream.ParseUpdate(ln)
		if err != nil {
			t.Fatal(err)
		}
		s = append(s, u)
	}
	return s
}

func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(after, func(r Record) error {
		out = append(out, Record{LSN: r.LSN, Kind: r.Kind, Payload: append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLogAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if last, err := l.AppendUpdates(mustUpdates(t, "+e 0 1 2", "-e 0 1", "+v 7", "-v 3")); err != nil || last != 4 {
		t.Fatalf("AppendUpdates: last %d, err %v", last, err)
	}
	if last, err := l.Append([]Record{{Kind: KindRegister, Payload: []byte(`{"name":"q"}`)}}); err != nil || last != 5 {
		t.Fatalf("Append: last %d, err %v", last, err)
	}
	if _, err := l.Append([]Record{{Kind: KindUpdate, Payload: []byte("bad\npayload")}}); err == nil {
		t.Fatal("newline payload accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after reopen = %d, want 5", got)
	}
	recs := replayAll(t, l2, 0)
	want := []string{"+e 0 1 2", "-e 0 1", "+v 7", "-v 3", `{"name":"q"}`}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || string(r.Payload) != want[i] {
			t.Fatalf("record %d = lsn %d %q, want lsn %d %q", i, r.LSN, r.Payload, i+1, want[i])
		}
	}
	if tail := replayAll(t, l2, 3); len(tail) != 2 || tail[0].LSN != 4 {
		t.Fatalf("Replay(after=3) = %d records starting at %d, want 2 starting at 4", len(tail), tail[0].LSN)
	}
	// New appends continue the sequence.
	if last, err := l2.AppendUpdates(mustUpdates(t, "+e 5 6 0")); err != nil || last != 6 {
		t.Fatalf("append after reopen: last %d, err %v", last, err)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendUpdates(mustUpdates(t, "+e 0 1 2", "+e 1 2 3", "+e 2 3 4")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: chop bytes off the tail of the segment.
	seg := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after torn tail = %d, want 2", got)
	}
	if recs := replayAll(t, l2, 0); len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	// The log is usable again: the torn record's LSN is reassigned.
	if last, err := l2.AppendUpdates(mustUpdates(t, "-e 0 1")); err != nil || last != 3 {
		t.Fatalf("append after truncation: last %d, err %v", last, err)
	}
}

func TestLogRotateAndRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendUpdates(mustUpdates(t, "+e 0 1 2", "+e 1 2 3")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Rotating an empty active segment is a no-op — it must not reopen the
	// same file or duplicate the segment list.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Segments != 2 {
		t.Fatalf("segments after double rotate = %d, want 2", m.Segments)
	}
	if _, err := l.AppendUpdates(mustUpdates(t, "+e 2 3 4")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Segments != 3 {
		t.Fatalf("segments = %d, want 3", m.Segments)
	}
	// A snapshot at LSN 2 covers only the first segment.
	if err := l.RemoveObsolete(2); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Segments != 2 {
		t.Fatalf("segments after RemoveObsolete(2) = %d, want 2", m.Segments)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not removed: %v", err)
	}
	// Records above the snapshot LSN are still replayable.
	if recs := replayAll(t, l, 2); len(recs) != 1 || recs[0].LSN != 3 {
		t.Fatalf("replay after GC = %+v, want one record at lsn 3", recs)
	}
	if _, err := l.AppendUpdates(mustUpdates(t, "-e 1 2")); err != nil {
		t.Fatal(err)
	}
}

func TestLogConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const appenders, each = 8, 50
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append([]Record{{Kind: KindUpdate, Payload: []byte(fmt.Sprintf("+e %d %d 1", a, i))}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	m := l.Metrics()
	if m.Records != appenders*each || m.LastLSN != appenders*each {
		t.Fatalf("metrics = %+v, want %d records", m, appenders*each)
	}
	// Group commit: concurrent appenders share fsyncs, so there must be
	// strictly fewer fsyncs than records (with 8 goroutines racing, many
	// appends ride one flush).
	if m.Fsyncs == 0 || m.Fsyncs >= m.Records {
		t.Fatalf("fsyncs = %d for %d records; want 0 < fsyncs < records", m.Fsyncs, m.Records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := replayAll(t, l2, 0); len(recs) != appenders*each {
		t.Fatalf("replayed %d records, want %d", len(recs), appenders*each)
	}
}

func TestLogSyncBarrier(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendUpdates(mustUpdates(t, "+e 0 1 2")); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Fsyncs != 0 {
		t.Fatalf("fsyncs under SyncOff = %d, want 0", m.Fsyncs)
	}
	// Explicit Sync outranks the policy.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Fsyncs != 1 {
		t.Fatalf("fsyncs after Sync = %d, want 1", m.Fsyncs)
	}
}

func TestLogCloseIdempotent(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Record{{Kind: KindUpdate, Payload: []byte("+v 0")}}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// FuzzWALRecord exercises the frame codec: every encoded record must
// decode back to itself, every single-byte corruption must be rejected,
// and a cut anywhere in a multi-record buffer must recover exactly the
// records fully before the cut (the torn-tail recovery invariant).
func FuzzWALRecord(f *testing.F) {
	f.Add(uint64(1), byte('u'), []byte("+e 0 1 2"), 0, -1)
	f.Add(uint64(42), byte('r'), []byte(`{"name":"q1"}`), 3, 5)
	f.Add(uint64(1<<40), byte('d'), []byte(`"q"`), 7, 0)
	f.Add(uint64(2), byte('u'), []byte(""), 1, 2)
	f.Fuzz(func(t *testing.T, lsn uint64, kind byte, payload []byte, flip int, cut int) {
		if lsn == 0 || !Kind(kind).valid() || bytes.IndexByte(payload, '\n') >= 0 {
			t.Skip()
		}
		rec := Record{LSN: lsn, Kind: Kind(kind), Payload: payload}
		buf := appendRecord(nil, rec)

		got, n, err := decodeOne(buf)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if n != len(buf) || got.LSN != lsn || got.Kind != rec.Kind || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("round-trip mismatch: got %+v (%d bytes), want %+v (%d)", got, n, rec, len(buf))
		}

		if flip >= 0 && flip < len(buf)-1 { // skip the newline: that is a torn frame, tested below
			mut := append([]byte(nil), buf...)
			mut[flip] ^= 0x01
			if mutRec, _, err := decodeOne(mut); err == nil &&
				mutRec.LSN == lsn && mutRec.Kind == rec.Kind && bytes.Equal(mutRec.Payload, payload) {
				t.Fatalf("corruption at byte %d decoded to the original record", flip)
			}
		}

		// Two-record buffer cut mid-second-record: scan must recover exactly
		// the first and report a torn/corrupt tail, never invent a record.
		second := Record{LSN: lsn + 1, Kind: rec.Kind, Payload: payload}
		two := appendRecord(append([]byte(nil), buf...), second)
		if cut >= len(buf) && cut < len(two) {
			count := 0
			validLen, last, tailErr, err := scanRecords(two[:cut], lsn, func(Record) error { count++; return nil })
			if err != nil {
				t.Fatal(err)
			}
			if count != 1 || last != lsn || validLen != len(buf) {
				t.Fatalf("cut %d: recovered %d records (last %d, validLen %d), want 1/%d/%d", cut, count, last, validLen, lsn, len(buf))
			}
			if cut > len(buf) && tailErr == nil {
				t.Fatalf("cut %d: no tail error for truncated second record", cut)
			}
		}
	})
}
