package query

import "math/rand"

// OrderStrategy selects how per-edge matching orders are constructed.
// The order determines which query vertex each search level binds and is
// the single biggest lever on search-tree size; the "ablation-order"
// experiment quantifies the differences.
type OrderStrategy int

const (
	// OrderBackDeg (the default) greedily picks the vertex with the most
	// already-ordered neighbors, maximizing backward constraints per
	// level (RI-style). Ties break toward higher degree.
	OrderBackDeg OrderStrategy = iota
	// OrderDegree picks the highest-degree eligible vertex regardless of
	// how many of its neighbors are already ordered (GraphQL-style).
	OrderDegree
	// OrderRandom picks uniformly among eligible (connected) vertices —
	// the no-heuristic lower bound.
	OrderRandom
)

// String returns the strategy's display name.
func (s OrderStrategy) String() string {
	switch s {
	case OrderBackDeg:
		return "backdeg"
	case OrderDegree:
		return "degree"
	case OrderRandom:
		return "random"
	}
	return "unknown"
}

// BuildOrdersWithStrategy rebuilds all per-edge matching orders using the
// given strategy. seed is used only by OrderRandom (deterministic given
// the seed). Finalize installs OrderBackDeg; callers may switch afterwards.
func (q *Graph) BuildOrdersWithStrategy(s OrderStrategy, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	q.orders = make([][]VertexID, len(q.edges))
	for i, e := range q.edges {
		q.orders[i] = q.buildOrderStrategy(e.U, e.V, s, rng)
	}
}

func (q *Graph) buildOrderStrategy(a, b VertexID, strat OrderStrategy, rng *rand.Rand) []VertexID {
	if strat == OrderBackDeg {
		return q.buildOrderFrom(a, b)
	}
	n := len(q.labels)
	order := make([]VertexID, 0, n)
	inOrder := make([]bool, n)
	backDeg := make([]int, n)
	add := func(v VertexID) {
		order = append(order, v)
		inOrder[v] = true
		for _, nb := range q.adj[v] {
			backDeg[nb.ID]++
		}
	}
	add(a)
	add(b)
	for len(order) < n {
		var eligible []VertexID
		for v := 0; v < n; v++ {
			if !inOrder[v] && backDeg[v] > 0 {
				eligible = append(eligible, VertexID(v))
			}
		}
		if len(eligible) == 0 {
			break
		}
		var pick VertexID
		switch strat {
		case OrderDegree:
			pick = eligible[0]
			for _, v := range eligible[1:] {
				if len(q.adj[v]) > len(q.adj[pick]) {
					pick = v
				}
			}
		case OrderRandom:
			pick = eligible[rng.Intn(len(eligible))]
		default:
			pick = eligible[0]
		}
		add(pick)
	}
	return order
}
