// Package query implements the query graph Q of the CSM problem together
// with the structural precomputations the baseline algorithms need:
// per-edge matching orders (GraphFlow/NewSP/Symbi-style search), a BFS
// spanning tree (TurboFlux's DCG), a BFS DAG (Symbi's DCS) and a greedy
// vertex cover (CaLiG's kernel set).
//
// Query graphs are small (the paper evaluates 6-10 vertices); MaxVertices
// caps them at 16 so partial embeddings fit in a fixed-size array that can
// be copied cheaply between ParaCOSM worker tasks.
package query

import (
	"fmt"
	"sort"

	"paracosm/internal/graph"
)

// MaxVertices is the largest supported query size. The ParaCOSM evaluation
// uses 6-10 query vertices; 16 leaves headroom for the "large query"
// experiments while keeping search states copyable in a few cache lines.
const MaxVertices = 16

// VertexID identifies a query vertex (0..n-1).
type VertexID = uint8

// Edge is an undirected, labeled query edge with U < V.
type Edge struct {
	U, V   VertexID
	ELabel graph.Label
}

// Graph is a connected, labeled query graph.
type Graph struct {
	labels []graph.Label
	adj    [][]Neighbor // sorted by neighbor id
	edges  []Edge       // canonical U<V order, sorted

	// orders[e][k] is the matching order used when the updated data edge is
	// mapped onto query edge edges[e]; see BuildOrders.
	orders [][]VertexID
}

// Neighbor is one query adjacency entry.
type Neighbor struct {
	ID     VertexID
	ELabel graph.Label
}

// New creates a query graph with the given vertex labels. Edges are added
// with AddEdge; Finalize must be called before the graph is used.
func New(labels []graph.Label) (*Graph, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("query: empty query graph")
	}
	if len(labels) > MaxVertices {
		return nil, fmt.Errorf("query: %d vertices exceeds MaxVertices=%d", len(labels), MaxVertices)
	}
	return &Graph{
		labels: append([]graph.Label(nil), labels...),
		adj:    make([][]Neighbor, len(labels)),
	}, nil
}

// MustNew is New for tests and examples with known-good input.
func MustNew(labels []graph.Label) *Graph {
	q, err := New(labels)
	if err != nil {
		panic(err)
	}
	return q
}

// AddEdge inserts the undirected edge (u,v) with label l.
func (q *Graph) AddEdge(u, v VertexID, l graph.Label) error {
	if int(u) >= len(q.labels) || int(v) >= len(q.labels) {
		return fmt.Errorf("query: edge (%d,%d) references unknown vertex", u, v)
	}
	if u == v {
		return fmt.Errorf("query: self loop on %d", u)
	}
	if q.HasEdge(u, v) {
		return fmt.Errorf("query: duplicate edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	q.edges = append(q.edges, Edge{U: u, V: v, ELabel: l})
	q.adj[u] = append(q.adj[u], Neighbor{ID: v, ELabel: l})
	q.adj[v] = append(q.adj[v], Neighbor{ID: u, ELabel: l})
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (q *Graph) MustAddEdge(u, v VertexID, l graph.Label) {
	if err := q.AddEdge(u, v, l); err != nil {
		panic(err)
	}
}

// Finalize validates connectivity, sorts adjacency lists and precomputes
// the per-edge matching orders. It must be called once after all edges are
// added and before the query is used for matching.
func (q *Graph) Finalize() error {
	if len(q.edges) == 0 && len(q.labels) > 1 {
		return fmt.Errorf("query: %d vertices but no edges", len(q.labels))
	}
	for v := range q.adj {
		a := q.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].ID < a[j].ID })
	}
	sort.Slice(q.edges, func(i, j int) bool {
		if q.edges[i].U != q.edges[j].U {
			return q.edges[i].U < q.edges[j].U
		}
		return q.edges[i].V < q.edges[j].V
	})
	if !q.connected() {
		return fmt.Errorf("query: graph is not connected")
	}
	q.BuildOrders()
	return nil
}

func (q *Graph) connected() bool {
	n := len(q.labels)
	if n == 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []VertexID{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range q.adj[v] {
			if !seen[nb.ID] {
				seen[nb.ID] = true
				cnt++
				stack = append(stack, nb.ID)
			}
		}
	}
	return cnt == n
}

// NumVertices returns |V(Q)|.
func (q *Graph) NumVertices() int { return len(q.labels) }

// NumEdges returns |E(Q)|.
func (q *Graph) NumEdges() int { return len(q.edges) }

// Label returns the label of query vertex u.
func (q *Graph) Label(u VertexID) graph.Label { return q.labels[u] }

// Degree returns the degree of query vertex u.
func (q *Graph) Degree(u VertexID) int { return len(q.adj[u]) }

// Neighbors returns the sorted adjacency of u (do not modify).
func (q *Graph) Neighbors(u VertexID) []Neighbor { return q.adj[u] }

// Edges returns the canonical edge list (do not modify).
func (q *Graph) Edges() []Edge { return q.edges }

// HasEdge reports whether (u,v) is a query edge.
func (q *Graph) HasEdge(u, v VertexID) bool {
	for _, nb := range q.adj[u] {
		if nb.ID == v {
			return true
		}
	}
	return false
}

// EdgeLabel returns the label of query edge (u,v) and whether it exists.
func (q *Graph) EdgeLabel(u, v VertexID) (graph.Label, bool) {
	for _, nb := range q.adj[u] {
		if nb.ID == v {
			return nb.ELabel, true
		}
	}
	return graph.NoLabel, false
}

// EdgeIndex returns the position of edge (u,v) in Edges(), or -1.
func (q *Graph) EdgeIndex(u, v VertexID) int {
	if u > v {
		u, v = v, u
	}
	for i, e := range q.edges {
		if e.U == u && e.V == v {
			return i
		}
	}
	return -1
}

// MatchingEdges returns the indices of query edges whose endpoint labels
// and edge label are compatible with a data edge carrying (lu, lv, le) --
// the label-filter primitive shared by all algorithms and by ParaCOSM's
// update classifier. Both orientations are considered; each returned
// orientation is (edge index, flipped) where flipped means the data
// endpoint carrying lu maps to edge.V.
func (q *Graph) MatchingEdges(lu, lv, le graph.Label, ignoreELabel bool) []EdgeOrientation {
	var out []EdgeOrientation
	for i, e := range q.edges {
		if !ignoreELabel && e.ELabel != le {
			continue
		}
		if q.labels[e.U] == lu && q.labels[e.V] == lv {
			out = append(out, EdgeOrientation{Index: i, Flipped: false})
		}
		if q.labels[e.U] == lv && q.labels[e.V] == lu && (lu != lv) {
			out = append(out, EdgeOrientation{Index: i, Flipped: true})
		}
		// lu == lv: both orientations map the same label pair; the search
		// must try both assignments, so emit the flipped variant too.
		if lu == lv && q.labels[e.U] == lu && q.labels[e.V] == lu {
			out = append(out, EdgeOrientation{Index: i, Flipped: true})
		}
	}
	return out
}

// EdgeOrientation identifies a query edge together with the orientation in
// which a data edge is mapped onto it.
type EdgeOrientation struct {
	Index   int  // into Edges()
	Flipped bool // data (u,v) maps to (edge.V, edge.U)
}
