package query

import (
	"math/rand"
	"testing"

	"paracosm/internal/graph"
)

func strategyFixture(t *testing.T) *Graph {
	t.Helper()
	q := MustNew([]graph.Label{0, 1, 2, 1, 0})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 3, 0)
	q.MustAddEdge(3, 4, 0)
	q.MustAddEdge(1, 3, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return q
}

func validateOrders(t *testing.T, q *Graph, name string) {
	t.Helper()
	for i, e := range q.Edges() {
		ord := q.Order(EdgeOrientation{Index: i})
		if len(ord) != q.NumVertices() {
			t.Fatalf("%s: edge %d order %v wrong length", name, i, ord)
		}
		if ord[0] != e.U || ord[1] != e.V {
			t.Fatalf("%s: edge %d order %v does not start with edge", name, i, ord)
		}
		seen := map[VertexID]bool{}
		for _, v := range ord {
			if seen[v] {
				t.Fatalf("%s: duplicate vertex in %v", name, ord)
			}
			seen[v] = true
		}
		for pos := 1; pos < len(ord); pos++ {
			connected := false
			for _, nb := range q.Neighbors(ord[pos]) {
				for p := 0; p < pos; p++ {
					if ord[p] == nb.ID {
						connected = true
					}
				}
			}
			if !connected {
				t.Fatalf("%s: order %v not connected at %d", name, ord, pos)
			}
		}
	}
}

func TestAllStrategiesProduceValidOrders(t *testing.T) {
	q := strategyFixture(t)
	for _, s := range []OrderStrategy{OrderBackDeg, OrderDegree, OrderRandom} {
		q.BuildOrdersWithStrategy(s, 7)
		validateOrders(t, q, s.String())
	}
}

func TestRandomStrategyIsSeedDeterministic(t *testing.T) {
	q := strategyFixture(t)
	q.BuildOrdersWithStrategy(OrderRandom, 42)
	a := append([]VertexID(nil), q.Order(EdgeOrientation{Index: 0})...)
	q.BuildOrdersWithStrategy(OrderRandom, 42)
	b := q.Order(EdgeOrientation{Index: 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave %v then %v", a, b)
		}
	}
}

func TestBackDegMatchesDefault(t *testing.T) {
	q := strategyFixture(t)
	def := append([]VertexID(nil), q.Order(EdgeOrientation{Index: 0})...)
	q.BuildOrdersWithStrategy(OrderBackDeg, 0)
	got := q.Order(EdgeOrientation{Index: 0})
	for i := range def {
		if def[i] != got[i] {
			t.Fatalf("BackDeg strategy %v differs from Finalize default %v", got, def)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if OrderBackDeg.String() != "backdeg" || OrderDegree.String() != "degree" ||
		OrderRandom.String() != "random" || OrderStrategy(99).String() != "unknown" {
		t.Fatal("strategy names wrong")
	}
}

// Random strategy over many seeds still always yields connected orders.
func TestRandomStrategyAlwaysConnected(t *testing.T) {
	q := strategyFixture(t)
	for seed := int64(0); seed < 30; seed++ {
		q.BuildOrdersWithStrategy(OrderRandom, seed)
		validateOrders(t, q, "random")
	}
	_ = rand.Int
}
