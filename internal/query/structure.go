package query

import "sort"

// SpanningTree is a rooted BFS spanning tree of the query graph, the shape
// TurboFlux's data-centric graph (DCG) is organized around. Non-tree query
// edges are kept separately and validated during enumeration.
type SpanningTree struct {
	Root     VertexID
	Parent   []VertexID   // Parent[Root] == Root
	Children [][]VertexID // tree children per vertex
	NonTree  []Edge       // query edges not in the tree
	BFSOrder []VertexID   // root first
}

// BuildSpanningTree builds a BFS spanning tree rooted at the query vertex
// with the highest degree (ties: lowest id), matching TurboFlux's heuristic
// of rooting the DCG at the most selective hub.
func (q *Graph) BuildSpanningTree() *SpanningTree {
	n := len(q.labels)
	root := VertexID(0)
	for v := 1; v < n; v++ {
		if len(q.adj[v]) > len(q.adj[root]) {
			root = VertexID(v)
		}
	}
	t := &SpanningTree{
		Root:     root,
		Parent:   make([]VertexID, n),
		Children: make([][]VertexID, n),
	}
	inTree := make([]bool, n)
	t.Parent[root] = root
	inTree[root] = true
	queue := []VertexID{root}
	t.BFSOrder = append(t.BFSOrder, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range q.adj[u] {
			if !inTree[nb.ID] {
				inTree[nb.ID] = true
				t.Parent[nb.ID] = u
				t.Children[u] = append(t.Children[u], nb.ID)
				queue = append(queue, nb.ID)
				t.BFSOrder = append(t.BFSOrder, nb.ID)
			}
		}
	}
	treeEdge := func(a, b VertexID) bool {
		return t.Parent[a] == b || t.Parent[b] == a
	}
	for _, e := range q.edges {
		if !treeEdge(e.U, e.V) {
			t.NonTree = append(t.NonTree, e)
		}
	}
	return t
}

// DAG is the BFS-directed acyclic version of the query graph used by
// Symbi's dynamic candidate space (DCS): every edge is directed from the
// vertex closer to the root (parents point to children).
type DAG struct {
	Root     VertexID
	Parents  [][]Neighbor // incoming edges per vertex (from closer to root)
	Children [][]Neighbor // outgoing edges per vertex
	TopoOrd  []VertexID   // topological order, root first
}

// BuildDAG directs every query edge by BFS level from the root with the
// highest (degree / label frequency is unknown here, so degree) rank;
// within a level, lower id is closer to the root. This reproduces the
// q-DAG construction of Symbi.
func (q *Graph) BuildDAG() *DAG {
	n := len(q.labels)
	root := VertexID(0)
	for v := 1; v < n; v++ {
		if len(q.adj[v]) > len(q.adj[root]) {
			root = VertexID(v)
		}
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := []VertexID{root}
	var topo []VertexID
	topo = append(topo, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range q.adj[u] {
			if level[nb.ID] < 0 {
				level[nb.ID] = level[u] + 1
				queue = append(queue, nb.ID)
				topo = append(topo, nb.ID)
			}
		}
	}
	d := &DAG{
		Root:     root,
		Parents:  make([][]Neighbor, n),
		Children: make([][]Neighbor, n),
		TopoOrd:  topo,
	}
	// before reports whether a precedes b in the BFS layering (a is the
	// parent side of the directed edge).
	before := func(a, b VertexID) bool {
		if level[a] != level[b] {
			return level[a] < level[b]
		}
		return a < b
	}
	for _, e := range q.edges {
		u, v := e.U, e.V
		if !before(u, v) {
			u, v = v, u
		}
		d.Children[u] = append(d.Children[u], Neighbor{ID: v, ELabel: e.ELabel})
		d.Parents[v] = append(d.Parents[v], Neighbor{ID: u, ELabel: e.ELabel})
	}
	// TopoOrd from BFS levels is a valid topological order because every
	// edge goes from a lower (level,id) pair to a higher one; re-sort to
	// make that invariant explicit and deterministic.
	sort.SliceStable(d.TopoOrd, func(i, j int) bool {
		return before(d.TopoOrd[i], d.TopoOrd[j])
	})
	return d
}

// VertexCover returns a greedy minimal vertex cover of the query graph --
// CaLiG's kernel vertices. The complement (shell vertices) forms an
// independent set, so once all kernels are matched every shell vertex's
// candidates are determined independently.
func (q *Graph) VertexCover() (kernel, shell []VertexID) {
	n := len(q.labels)
	covered := make([]bool, len(q.edges))
	inKernel := make([]bool, n)
	remaining := len(q.edges)
	for remaining > 0 {
		// Pick the vertex covering the most uncovered edges (ties: higher
		// degree, then lower id).
		bestV, bestC := -1, 0
		for v := 0; v < n; v++ {
			if inKernel[v] {
				continue
			}
			c := 0
			for i, e := range q.edges {
				if !covered[i] && (int(e.U) == v || int(e.V) == v) {
					c++
				}
			}
			if c > bestC || (c == bestC && c > 0 && bestV >= 0 && len(q.adj[v]) > len(q.adj[bestV])) {
				bestV, bestC = v, c
			}
		}
		if bestV < 0 {
			break
		}
		inKernel[bestV] = true
		for i, e := range q.edges {
			if !covered[i] && (int(e.U) == bestV || int(e.V) == bestV) {
				covered[i] = true
				remaining--
			}
		}
	}
	for v := 0; v < n; v++ {
		if inKernel[v] {
			kernel = append(kernel, VertexID(v))
		} else {
			shell = append(shell, VertexID(v))
		}
	}
	return kernel, shell
}
