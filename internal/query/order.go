package query

import (
	"sort"

	"paracosm/internal/graph"
)

// BuildOrders precomputes, for every query edge e = (a,b), a matching order
// that starts with {a,b} and extends one query vertex at a time such that
// every added vertex has at least one already-ordered neighbor (a connected
// order). Connected orders guarantee the compatible set of the next vertex
// can always be seeded from a matched neighbor's adjacency, which is what
// makes incremental search from an updated edge efficient (paper §2.2).
//
// Among eligible vertices the order prefers (1) more ordered neighbors
// (maximizing pruning, RI-style), then (2) higher degree, then (3) lower id
// for determinism.
func (q *Graph) BuildOrders() {
	q.orders = make([][]VertexID, len(q.edges))
	for i, e := range q.edges {
		q.orders[i] = q.buildOrderFrom(e.U, e.V)
	}
}

func (q *Graph) buildOrderFrom(a, b VertexID) []VertexID {
	n := len(q.labels)
	order := make([]VertexID, 0, n)
	inOrder := make([]bool, n)
	order = append(order, a, b)
	inOrder[a], inOrder[b] = true, true

	backDeg := make([]int, n) // # neighbors already in order
	for _, nb := range q.adj[a] {
		backDeg[nb.ID]++
	}
	for _, nb := range q.adj[b] {
		backDeg[nb.ID]++
	}

	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if inOrder[v] || backDeg[v] == 0 {
				continue
			}
			if best < 0 {
				best = v
				continue
			}
			switch {
			case backDeg[v] > backDeg[best]:
				best = v
			case backDeg[v] == backDeg[best] && len(q.adj[v]) > len(q.adj[best]):
				best = v
			}
		}
		if best < 0 {
			// Disconnected queries are rejected in Finalize; this is
			// unreachable for valid graphs but keeps the loop safe.
			break
		}
		v := VertexID(best)
		order = append(order, v)
		inOrder[v] = true
		for _, nb := range q.adj[v] {
			backDeg[nb.ID]++
		}
	}
	return order
}

// Order returns the matching order for query edge index e under the given
// orientation. The first two entries are the edge endpoints in the order
// the data edge maps onto them.
func (q *Graph) Order(eo EdgeOrientation) []VertexID {
	base := q.orders[eo.Index]
	if !eo.Flipped {
		return base
	}
	// Flipped orientation: swap the two seed vertices; the remaining order
	// is still connected because the seed pair is unchanged as a set.
	f := q.flippedOrder(eo.Index)
	return f
}

// flippedOrder caches nothing: orders are tiny (<=16) and flips are rare
// enough that rebuilding the 2-element swap on demand is cheaper than a
// second table. It returns base with the first two entries swapped.
func (q *Graph) flippedOrder(idx int) []VertexID {
	base := q.orders[idx]
	f := make([]VertexID, len(base))
	copy(f, base)
	f[0], f[1] = f[1], f[0]
	return f
}

// BackwardNeighbors returns, for each position i in order, the positions
// j < i whose vertex order[j] is adjacent to order[i], along with the edge
// labels. Algorithms use this to validate candidate extensions: a data
// vertex v is compatible at position i iff it is adjacent (with matching
// edge labels) to the data vertices at every backward-neighbor position.
func (q *Graph) BackwardNeighbors(order []VertexID) [][]BackEdge {
	pos := make([]int, len(q.labels))
	for i, u := range order {
		pos[u] = i
	}
	out := make([][]BackEdge, len(order))
	for i, u := range order {
		var bs []BackEdge
		for _, nb := range q.adj[u] {
			if pos[nb.ID] < i {
				bs = append(bs, BackEdge{Pos: pos[nb.ID], ELabel: nb.ELabel})
			}
		}
		sort.Slice(bs, func(a, b int) bool { return bs[a].Pos < bs[b].Pos })
		out[i] = bs
	}
	return out
}

// BackEdge is a backward constraint in a matching order: the current query
// vertex is adjacent to the vertex at position Pos with edge label ELabel.
type BackEdge struct {
	Pos    int
	ELabel graph.Label
}
