package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paracosm/internal/graph"
)

// triangleWithTail builds the 4-vertex query 0-1, 1-2, 2-0, 2-3.
func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	q := MustNew([]graph.Label{0, 1, 2, 1})
	q.MustAddEdge(0, 1, 0)
	q.MustAddEdge(1, 2, 0)
	q.MustAddEdge(2, 0, 0)
	q.MustAddEdge(2, 3, 0)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := New(make([]graph.Label, MaxVertices+1)); err == nil {
		t.Fatal("oversized query accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	q := MustNew([]graph.Label{0, 1})
	if err := q.AddEdge(0, 0, 0); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := q.AddEdge(0, 5, 0); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := q.AddEdge(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(1, 0, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestFinalizeRejectsDisconnected(t *testing.T) {
	q := MustNew([]graph.Label{0, 1, 2})
	q.MustAddEdge(0, 1, 0)
	if err := q.Finalize(); err == nil {
		t.Fatal("disconnected query accepted")
	}
}

func TestBasicAccessors(t *testing.T) {
	q := triangleWithTail(t)
	if q.NumVertices() != 4 || q.NumEdges() != 4 {
		t.Fatalf("size = (%d,%d), want (4,4)", q.NumVertices(), q.NumEdges())
	}
	if q.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d, want 3", q.Degree(2))
	}
	if !q.HasEdge(3, 2) || q.HasEdge(3, 0) {
		t.Fatal("HasEdge wrong")
	}
	if l, ok := q.EdgeLabel(0, 2); !ok || l != 0 {
		t.Fatalf("EdgeLabel(0,2) = %d,%v", l, ok)
	}
	if q.EdgeIndex(2, 0) < 0 || q.EdgeIndex(0, 3) >= 0 {
		t.Fatal("EdgeIndex wrong")
	}
}

func TestMatchingEdges(t *testing.T) {
	q := triangleWithTail(t)
	// Data edge with labels (1,2): matches query edges (1,2) and (3,2).
	eos := q.MatchingEdges(1, 2, 0, false)
	if len(eos) != 2 {
		t.Fatalf("MatchingEdges(1,2) returned %d orientations, want 2", len(eos))
	}
	// Data edge with labels (2,1): edge (1,2) matches flipped, edge (2,3)
	// has labels (2,1) so it matches unflipped.
	rev := q.MatchingEdges(2, 1, 0, false)
	if len(rev) != 2 {
		t.Fatalf("MatchingEdges(2,1) returned %d orientations, want 2", len(rev))
	}
	nFlipped := 0
	for _, eo := range rev {
		if eo.Flipped {
			nFlipped++
		}
	}
	if nFlipped != 1 {
		t.Fatalf("MatchingEdges(2,1): %d flipped orientations, want 1", nFlipped)
	}
	// No query edge has labels (0,0).
	if got := q.MatchingEdges(0, 0, 0, false); len(got) != 0 {
		t.Fatalf("MatchingEdges(0,0) = %v, want empty", got)
	}
}

func TestMatchingEdgesEqualLabelsBothOrientations(t *testing.T) {
	q := MustNew([]graph.Label{5, 5})
	q.MustAddEdge(0, 1, 3)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	eos := q.MatchingEdges(5, 5, 3, false)
	if len(eos) != 2 {
		t.Fatalf("equal-label edge should yield 2 orientations, got %d", len(eos))
	}
	if eos[0].Flipped == eos[1].Flipped {
		t.Fatal("orientations should differ in Flipped")
	}
}

func TestMatchingEdgesRespectsEdgeLabels(t *testing.T) {
	q := MustNew([]graph.Label{0, 1})
	q.MustAddEdge(0, 1, 7)
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := q.MatchingEdges(0, 1, 3, false); len(got) != 0 {
		t.Fatal("edge label mismatch not filtered")
	}
	if got := q.MatchingEdges(0, 1, 3, true); len(got) != 1 {
		t.Fatal("ignoreELabel did not bypass edge label filter")
	}
}

func TestOrdersAreConnectedPermutations(t *testing.T) {
	q := triangleWithTail(t)
	for i, e := range q.Edges() {
		for _, flip := range []bool{false, true} {
			ord := q.Order(EdgeOrientation{Index: i, Flipped: flip})
			if len(ord) != q.NumVertices() {
				t.Fatalf("edge %d: order length %d", i, len(ord))
			}
			seen := map[VertexID]bool{}
			for _, v := range ord {
				if seen[v] {
					t.Fatalf("edge %d: duplicate vertex %d in order", i, v)
				}
				seen[v] = true
			}
			a, b := ord[0], ord[1]
			if flip {
				a, b = b, a
			}
			if a != e.U || b != e.V {
				t.Fatalf("edge %d flip=%v: order starts %v, want (%d,%d)", i, flip, ord[:2], e.U, e.V)
			}
			// Connectivity: each vertex after position 0 has an earlier neighbor.
			for pos := 1; pos < len(ord); pos++ {
				ok := false
				for _, nb := range q.Neighbors(ord[pos]) {
					for p := 0; p < pos; p++ {
						if ord[p] == nb.ID {
							ok = true
						}
					}
				}
				if !ok {
					t.Fatalf("edge %d: order %v not connected at pos %d", i, ord, pos)
				}
			}
		}
	}
}

func TestBackwardNeighbors(t *testing.T) {
	q := triangleWithTail(t)
	ord := []VertexID{0, 1, 2, 3}
	back := q.BackwardNeighbors(ord)
	if len(back[0]) != 0 {
		t.Fatalf("position 0 has backward neighbors %v", back[0])
	}
	if len(back[1]) != 1 || back[1][0].Pos != 0 {
		t.Fatalf("back[1] = %v, want [{0 0}]", back[1])
	}
	if len(back[2]) != 2 {
		t.Fatalf("back[2] = %v, want two entries", back[2])
	}
	if len(back[3]) != 1 || back[3][0].Pos != 2 {
		t.Fatalf("back[3] = %v, want [{2 0}]", back[3])
	}
}

func TestSpanningTree(t *testing.T) {
	q := triangleWithTail(t)
	tr := q.BuildSpanningTree()
	if tr.Root != 2 {
		t.Fatalf("root = %d, want 2 (max degree)", tr.Root)
	}
	if tr.Parent[tr.Root] != tr.Root {
		t.Fatal("root parent must be itself")
	}
	// Tree has n-1 edges; 4 query edges => 1 non-tree edge.
	if len(tr.NonTree) != 1 {
		t.Fatalf("non-tree edges = %v, want 1", tr.NonTree)
	}
	if len(tr.BFSOrder) != q.NumVertices() {
		t.Fatalf("BFSOrder length %d", len(tr.BFSOrder))
	}
	// Every non-root vertex's parent appears earlier in BFS order.
	pos := map[VertexID]int{}
	for i, v := range tr.BFSOrder {
		pos[v] = i
	}
	for v := 0; v < q.NumVertices(); v++ {
		if VertexID(v) == tr.Root {
			continue
		}
		if pos[tr.Parent[v]] >= pos[VertexID(v)] {
			t.Fatalf("parent of %d not before it in BFS order", v)
		}
	}
}

func TestDAG(t *testing.T) {
	q := triangleWithTail(t)
	d := q.BuildDAG()
	// Every query edge appears exactly once as a directed edge.
	total := 0
	for v := 0; v < q.NumVertices(); v++ {
		total += len(d.Children[v])
	}
	if total != q.NumEdges() {
		t.Fatalf("directed edges = %d, want %d", total, q.NumEdges())
	}
	// Parents/Children are mirror images.
	for v := 0; v < q.NumVertices(); v++ {
		for _, c := range d.Children[v] {
			found := false
			for _, p := range d.Parents[c.ID] {
				if p.ID == VertexID(v) && p.ELabel == c.ELabel {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from Parents", v, c.ID)
			}
		}
	}
	// TopoOrd respects edge direction.
	pos := map[VertexID]int{}
	for i, v := range d.TopoOrd {
		pos[v] = i
	}
	for v := 0; v < q.NumVertices(); v++ {
		for _, c := range d.Children[v] {
			if pos[VertexID(v)] >= pos[c.ID] {
				t.Fatalf("topo order violates edge %d->%d", v, c.ID)
			}
		}
	}
	if d.TopoOrd[0] != d.Root {
		t.Fatalf("topo order does not start at root")
	}
}

func TestVertexCover(t *testing.T) {
	q := triangleWithTail(t)
	kernel, shell := q.VertexCover()
	if len(kernel)+len(shell) != q.NumVertices() {
		t.Fatal("kernel/shell not a partition")
	}
	inKernel := map[VertexID]bool{}
	for _, v := range kernel {
		inKernel[v] = true
	}
	// Cover: every edge has a kernel endpoint.
	for _, e := range q.Edges() {
		if !inKernel[e.U] && !inKernel[e.V] {
			t.Fatalf("edge (%d,%d) uncovered", e.U, e.V)
		}
	}
	// Shell is an independent set.
	for _, a := range shell {
		for _, b := range shell {
			if a != b && q.HasEdge(a, b) {
				t.Fatalf("shell vertices %d,%d adjacent", a, b)
			}
		}
	}
}

// randomConnectedQuery builds a random connected query of size n.
func randomConnectedQuery(rng *rand.Rand, n int) *Graph {
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = graph.Label(rng.Intn(3))
	}
	q := MustNew(labels)
	// Random spanning tree, then random extra edges.
	for v := 1; v < n; v++ {
		q.MustAddEdge(VertexID(rng.Intn(v)), VertexID(v), graph.Label(rng.Intn(2)))
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		if u != v && !q.HasEdge(u, v) {
			q.MustAddEdge(u, v, graph.Label(rng.Intn(2)))
		}
	}
	if err := q.Finalize(); err != nil {
		panic(err)
	}
	return q
}

// Property: on random connected queries, structural invariants hold for
// spanning tree, DAG and vertex cover.
func TestStructuresOnRandomQueries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(MaxVertices-3)
		q := randomConnectedQuery(rng, n)

		tr := q.BuildSpanningTree()
		treeEdges := 0
		for v := range tr.Children {
			treeEdges += len(tr.Children[v])
		}
		if treeEdges != n-1 || treeEdges+len(tr.NonTree) != q.NumEdges() {
			return false
		}

		d := q.BuildDAG()
		total := 0
		for v := 0; v < n; v++ {
			total += len(d.Children[v])
		}
		if total != q.NumEdges() {
			return false
		}

		kernel, shell := q.VertexCover()
		inK := make([]bool, n)
		for _, v := range kernel {
			inK[v] = true
		}
		for _, e := range q.Edges() {
			if !inK[e.U] && !inK[e.V] {
				return false
			}
		}
		_ = shell
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
