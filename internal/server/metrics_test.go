package server

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"paracosm/internal/core"
)

// metricValue extracts one series' value from Prometheus text exposition.
func metricValue(t *testing.T, text, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSpace(line[len(name)+1:]), 10, 64)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s missing from metrics output:\n%s", name, text)
	return 0
}

// TestServerMetricsMonotonicAcrossDisconnect: a client registers a query,
// streams matches through it, and disconnects (which deregisters the
// query). The query-work counters must not shrink — the deregistered
// engine's totals are retained in the MultiEngine's closed tally — and
// the disconnect itself must be visible in queries_closed_total.
func TestServerMetricsMonotonicAcrossDisconnect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := uniformGraph(24)
	q := singleEdgeQuery(t)
	s := insertOnlyStream(rng, g, 60, 1)

	srv := startTestServer(t, g, Config{
		Engine: []core.Option{core.Threads(1)},
	})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("q1", "GraphFlow", q); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.Send(s); err != nil || n != len(s) {
		t.Fatalf("send: %d, %v", n, err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	before := srv.Metrics()
	if before.QueryUpdates != uint64(len(s)) {
		t.Fatalf("QueryUpdates = %d, want %d", before.QueryUpdates, len(s))
	}
	// Every label-0 edge insert yields two matches of the one-edge query.
	if want := 2 * uint64(len(s)); before.QueryPositive != want {
		t.Fatalf("QueryPositive = %d, want %d", before.QueryPositive, want)
	}
	if before.QueriesClosed != 0 || before.Queries != 1 {
		t.Fatalf("before disconnect: closed=%d live=%d", before.QueriesClosed, before.Queries)
	}

	// Disconnect: teardown deregisters q1 and closes its engine.
	cl.Close()
	waitUntil(t, "query deregistered", func() bool { return srv.NumQueries() == 0 })

	after := srv.Metrics()
	if after.QueriesClosed != 1 {
		t.Fatalf("QueriesClosed = %d, want 1", after.QueriesClosed)
	}
	if after.QueryUpdates < before.QueryUpdates ||
		after.QueryPositive < before.QueryPositive ||
		after.QueryNegative < before.QueryNegative ||
		after.QuerySafe < before.QuerySafe ||
		after.QueryNodesSeen < before.QueryNodesSeen {
		t.Fatalf("query totals shrank across disconnect:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.QueryUpdates != before.QueryUpdates || after.QueryPositive != before.QueryPositive {
		t.Fatalf("query totals changed with no further updates:\nbefore %+v\nafter  %+v", before, after)
	}

	// The exposition format carries the same retained totals.
	var sb strings.Builder
	if err := srv.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if got := metricValue(t, text, "paracosm_query_updates_total"); got != after.QueryUpdates {
		t.Fatalf("exposition updates_total = %d, snapshot %d", got, after.QueryUpdates)
	}
	if got := metricValue(t, text, "paracosm_server_queries_closed_total"); got != 1 {
		t.Fatalf("exposition queries_closed_total = %d, want 1", got)
	}
	if got := metricValue(t, text, "paracosm_query_matches_positive_total"); got != after.QueryPositive {
		t.Fatalf("exposition matches_positive_total = %d, snapshot %d", got, after.QueryPositive)
	}
}
